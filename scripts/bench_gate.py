#!/usr/bin/env python3
"""Throughput regression gate for the perf benches.

Usage: bench_gate.py BASELINE FRESH [TOL_PERCENT]

BASELINE may be '-' to read the baseline JSON from stdin (scripts/bench_perf.sh
pipes `git show HEAD:BENCH_*.json` in, so no temp file is needed). Every
metric present in BOTH files is compared:

  * results_ns_per_op.*                   lower is better
  * throughput.*                          higher is better
  * levels[].snapshots_per_s              higher is better (keyed by sessions)
  * variants[].stats.snapshots_per_s      higher is better (keyed by isa/precision)
  * ensembles[].member_snapshots_per_s    higher is better (keyed by ensemble k)

A metric that moved more than TOL_PERCENT (default 10) in the slow direction
is a regression: the script prints a delta table and exits 1. Metrics that
exist on only one side (new rows, retired rows) are ignored — the gate
compares the intersection, so adding a bench never trips it.
"""

import json
import sys


def collect(doc):
    """Flatten a BENCH_*.json into {metric_name: (value, higher_is_better)}."""
    metrics = {}
    for name, v in doc.get("results_ns_per_op", {}).items():
        if isinstance(v, (int, float)):
            metrics[f"ns_per_op/{name}"] = (float(v), False)
    for name, v in doc.get("throughput", {}).items():
        if isinstance(v, (int, float)):
            metrics[f"throughput/{name}"] = (float(v), True)
    for lvl in doc.get("levels", []):
        v = lvl.get("snapshots_per_s")
        if isinstance(v, (int, float)):
            metrics[f"serve/sessions={lvl.get('sessions')}"] = (float(v), True)
    for ens in doc.get("ensembles", []):
        v = ens.get("member_snapshots_per_s")
        if isinstance(v, (int, float)):
            metrics[f"serve/ensemble_k={ens.get('k')}"] = (float(v), True)
    for var in doc.get("variants", []):
        stats = var.get("stats")
        if not isinstance(stats, dict):
            continue
        v = stats.get("snapshots_per_s")
        if isinstance(v, (int, float)):
            key = f"serve/isa={var.get('isa')}/precision={var.get('precision')}"
            metrics[key] = (float(v), True)
    return metrics


def main(argv):
    base_arg, fresh_path = argv[1], argv[2]
    tol = float(argv[3]) / 100.0 if len(argv) > 3 else 0.10
    base_doc = json.load(sys.stdin if base_arg == "-" else open(base_arg))
    fresh_doc = json.load(open(fresh_path))

    base = collect(base_doc)
    fresh = collect(fresh_doc)
    shared = sorted(set(base) & set(fresh))
    if not shared:
        print(f"bench_gate: {fresh_path}: no shared metrics with baseline; skipped")
        return 0

    rows = []
    regressions = 0
    for name in shared:
        old, higher_better = base[name]
        new, _ = fresh[name]
        if old <= 0.0:
            continue
        # Normalize so delta > 0 always means "got slower".
        delta = (old / new - 1.0) if higher_better else (new / old - 1.0)
        bad = delta > tol
        regressions += bad
        rows.append((name, old, new, delta, bad))

    if regressions:
        print(f"bench_gate: {fresh_path}: {regressions} metric(s) regressed "
              f"more than {tol * 100:.0f}% vs committed baseline")
        width = max(len(r[0]) for r in rows)
        print(f"  {'metric':<{width}}  {'baseline':>12}  {'fresh':>12}  {'slowdown':>9}")
        for name, old, new, delta, bad in rows:
            flag = "  <-- REGRESSION" if bad else ""
            print(f"  {name:<{width}}  {old:>12.4g}  {new:>12.4g}  "
                  f"{delta * 100:>+8.1f}%{flag}")
        return 1

    print(f"bench_gate: {fresh_path}: {len(rows)} metrics within "
          f"{tol * 100:.0f}% of committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
