#!/usr/bin/env bash
# Perf trajectory: build and run the perf harnesses, leaving
# BENCH_spectral.json and BENCH_inference.json at the repo root.
#
# bench_perf_train times the batched 2-D FFT, SpectralConv fwd/bwd with mode
# pruning on and off (full-transform baseline), the GEMM panel kernels, and
# a full fixture train step, and records the fft/pruned_lines_skipped /
# fft/lines_total coverage counters. Per-ISA rows (_scalar / _avx2) re-time
# the GEMM shapes and a raw c2c transform under each forced SIMD tier; the
# summary below reports the avx2-vs-scalar kernel speedups where measured.
# Factorized rows (fact_m12 / dense_m20 / fact_m20) time the F-FNO separable
# spectral layer against the dense weight at 12 and 20 modes.
#
# bench_perf_infer times the serving engine against the training-path
# forward at the paper shape (N=64, 12 modes) — the two are timed in
# interleaved batches and produce bitwise-identical outputs — plus rollout
# and batched-rollout cost per snapshot, and records the engine's
# zero-steady-state-allocation counters and arena footprint. A variant
# matrix ({dense, factorized} × {fp32, bf16, fp16} at 12 and 20 modes)
# records per-variant forward cost, weight bytes, and relative-L2 error vs
# the same model's fp32 engine.
#
# bench_perf_serve drives the concurrent serving layer at 1/64/512 sessions,
# recording throughput, p50/p99 session latency, and micro-batch occupancy;
# it self-verifies that concurrent sessions are bitwise identical to
# sequential rollouts at pool widths 1 and 4, that bf16 engine-pool serving
# stays within the documented rel-L2 bound of fp32, and that an overfilled
# queue rejects with serve/admission_rejects. Variant rows re-run a 64-session
# level per forced ISA and per serving precision. Ensemble rows serve 16
# logical sessions at K ∈ {1,2,4,8} members each (member-snapshot throughput
# plus mean relative spread), and the ensemble reduction contract —
# identical members → exactly-zero variance, perturbed members → finite
# positive variance, every member stream accounted — gates the exit code.
#
# After the runs, a regression gate (scripts/bench_gate.py) compares the
# fresh numbers against the BENCH_*.json committed at HEAD and fails with a
# delta table if any shared throughput metric regressed by more than 10%.
#
# Usage: scripts/bench_perf.sh [build-dir]   (default: build)
#   BENCH_OUT=path           spectral output JSON (default: BENCH_spectral.json)
#   BENCH_INFER_OUT=path     inference output JSON (default: BENCH_inference.json)
#   BENCH_SERVE_OUT=path     serving output JSON (default: BENCH_serving.json)
#   TURBFNO_BENCH_ARGS=...   extra flags for all benches
#   BENCH_GATE=0             skip the regression gate (re-baselining)
#   BENCH_GATE_TOL=pct      regression tolerance in percent (default 10)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${BENCH_OUT:-BENCH_spectral.json}"
INFER_OUT="${BENCH_INFER_OUT:-BENCH_inference.json}"
SERVE_OUT="${BENCH_SERVE_OUT:-BENCH_serving.json}"

cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j \
    --target bench_perf_train bench_perf_infer bench_perf_serve > /dev/null

# shellcheck disable=SC2086  # intentional word splitting of extra args
"$BUILD_DIR/bench/bench_perf_train" --out "$OUT" ${TURBFNO_BENCH_ARGS:-}

python3 - "$OUT" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["version"] == 1, "unexpected schema version"
s = d["speedup"]["spectral_fwdbwd_pruned_vs_full"]
skipped = d["counters"]["fft/pruned_lines_skipped"]
total = d["counters"]["fft/lines_total"]
print(f"bench_perf: spectral fwd+bwd pruned-vs-full speedup {s:.2f}x, "
      f"pruning coverage {skipped}/{total} lines "
      f"({100.0 * skipped / max(total, 1):.1f}%)")
gemm = d["speedup"].get("gemm_nn_192cubed_avx2_vs_scalar")
c2c = d["speedup"].get("fft_c2c_n256_avx2_vs_scalar")
if gemm is not None and c2c is not None:
    print(f"bench_perf: avx2 vs scalar — gemm 192^3 {gemm:.2f}x, "
          f"c2c n=256 {c2c:.2f}x")
else:
    print("bench_perf: no avx2 on this host; per-ISA speedup rows omitted")
f12 = d["speedup"]["spectral_fwdbwd_fact_vs_dense_m12"]
f20 = d["speedup"]["spectral_fwdbwd_fact_vs_dense_m20"]
print(f"bench_perf: factorized vs dense spectral fwd+bwd — "
      f"m=12 {f12:.2f}x, m=20 {f20:.2f}x")
EOF

# shellcheck disable=SC2086
"$BUILD_DIR/bench/bench_perf_infer" --min-seconds 0.5 --out "$INFER_OUT" \
    ${TURBFNO_BENCH_ARGS:-}

python3 - "$INFER_OUT" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["version"] == 1, "unexpected schema version"
s = d["speedup"]["engine_forward_vs_train"]
allocs = d["counters"]["infer/steady_state_allocs"]
assert allocs == 0, f"engine allocated in steady state ({allocs} allocations)"
print(f"bench_perf: engine forward {s:.2f}x vs training-path forward, "
      f"steady-state allocations {allocs}, "
      f"arena {d['gauges']['infer/arena_bytes'] / 1e6:.1f} MB")
isa = d["speedup"].get("engine_forward_avx2_vs_scalar")
if isa is not None:
    print(f"bench_perf: engine forward avx2 vs scalar {isa:.2f}x")
f12 = d["speedup"]["engine_forward_fact_vs_dense_m12"]
f20 = d["speedup"]["engine_forward_fact_vs_dense_m20"]
print(f"bench_perf: factorized vs dense engine forward — "
      f"m=12 {f12:.2f}x, m=20 {f20:.2f}x")
for v in d["variants"]:
    if v["precision"] != "fp32":
        assert 0.0 < v["rel_l2_vs_fp32"] < 0.05, \
            f"{v['name']}: rel-L2 {v['rel_l2_vs_fp32']} out of range"
bf16 = [v for v in d["variants"] if v["precision"] == "bf16"]
worst = max(v["rel_l2_vs_fp32"] for v in bf16)
half = all(v["spectral_weight_bytes"] > 0 for v in d["variants"])
assert half, "spectral_weight_bytes missing from variant rows"
print(f"bench_perf: bf16 engine worst forward rel-L2 {worst:.2e} "
      f"across {len(bf16)} variants")
EOF

# shellcheck disable=SC2086
"$BUILD_DIR/bench/bench_perf_serve" --out "$SERVE_OUT" \
    ${TURBFNO_BENCH_ARGS:-}

python3 - "$SERVE_OUT" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["version"] == 1, "unexpected schema version"
assert d["bitwise_identical_threads_1_4"] is True, \
    "concurrent serving diverged from sequential rollouts"
assert d["counters"]["infer/steady_state_allocs"] == 0, \
    "serving allocated in engine steady state"
assert d["saturation"]["rejected"] >= 1, "admission control never rejected"
cs = d["compressed_serving"]
assert cs["within_bound"] is True, \
    f"bf16 serving rel-L2 {cs['worst_snapshot_rel_l2_vs_fp32']} over bound"
top = max(d["levels"], key=lambda lvl: lvl["sessions"])
print(f"bench_perf: serving {top['sessions']} sessions at "
      f"{top['snapshots_per_s']:.0f} snapshots/s, "
      f"p50 {top['latency_p50_ms']:.1f} ms / p99 {top['latency_p99_ms']:.1f} ms, "
      f"batch occupancy {top['batch_occupancy_mean']:.1f}")
print(f"bench_perf: bf16 serving worst per-snapshot rel-L2 "
      f"{cs['worst_snapshot_rel_l2_vs_fp32']:.2e} (bound {cs['bound']})")
for v in d["variants"]:
    s = v["stats"]
    print(f"bench_perf: serve variant isa={v['isa']:<6} "
          f"precision={v['precision']:<4} "
          f"{s['snapshots_per_s']:.0f} snapshots/s at {s['sessions']} sessions")
assert d["ensemble_contract"]["ok"] is True, "ensemble contract failed"
for e in d["ensembles"]:
    print(f"bench_perf: serve ensemble k={e['k']} "
          f"{e['member_snapshots_per_s']:.0f} member-snapshots/s "
          f"at {e['sessions']} sessions, "
          f"mean rel spread {e['mean_rel_spread']:.2e}")
EOF
# --- regression gate ---------------------------------------------------------
# Compare the fresh numbers against the baselines committed at HEAD: a >10%
# throughput regression (slower ns/op, fewer snapshots/s) on any metric
# present in both prints a delta table and fails the run. Metrics only on one
# side are ignored, so adding a bench never trips the gate. Disable with
# BENCH_GATE=0 (e.g. when re-baselining on different hardware); tolerance in
# percent via BENCH_GATE_TOL.
if [[ "${BENCH_GATE:-1}" == "1" ]]; then
  gate_fail=0
  for pair in "BENCH_spectral.json:$OUT" "BENCH_inference.json:$INFER_OUT" \
              "BENCH_serving.json:$SERVE_OUT"; do
    committed="${pair%%:*}"
    fresh="${pair#*:}"
    if baseline=$(git show "HEAD:$committed" 2> /dev/null); then
      printf '%s' "$baseline" \
        | python3 scripts/bench_gate.py - "$fresh" "${BENCH_GATE_TOL:-10}" \
        || gate_fail=1
    else
      echo "bench_perf: no committed baseline for $committed; gate skipped"
    fi
  done
  if [[ "$gate_fail" != "0" ]]; then
    echo "bench_perf: FAIL (throughput regression vs HEAD baselines;" \
         "BENCH_GATE=0 to re-baseline)"
    exit 1
  fi
fi

echo "bench_perf: OK ($OUT, $INFER_OUT, $SERVE_OUT)"
