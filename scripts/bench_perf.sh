#!/usr/bin/env bash
# Spectral perf trajectory: build and run bench_perf_train, leaving
# BENCH_spectral.json at the repo root (override with BENCH_OUT).
#
# The bench times the batched 2-D FFT, SpectralConv fwd/bwd with mode
# pruning on and off (full-transform baseline), the GEMM panel kernels, and
# a full fixture train step, and records the fft/pruned_lines_skipped /
# fft/lines_total coverage counters.
#
# Usage: scripts/bench_perf.sh [build-dir]   (default: build)
#   BENCH_OUT=path           output JSON (default: BENCH_spectral.json)
#   TURBFNO_BENCH_ARGS=...   extra flags for bench_perf_train
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${BENCH_OUT:-BENCH_spectral.json}"

cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j --target bench_perf_train > /dev/null

# shellcheck disable=SC2086  # intentional word splitting of extra args
"$BUILD_DIR/bench/bench_perf_train" --out "$OUT" ${TURBFNO_BENCH_ARGS:-}

python3 - "$OUT" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["version"] == 1, "unexpected schema version"
s = d["speedup"]["spectral_fwdbwd_pruned_vs_full"]
skipped = d["counters"]["fft/pruned_lines_skipped"]
total = d["counters"]["fft/lines_total"]
print(f"bench_perf: spectral fwd+bwd pruned-vs-full speedup {s:.2f}x, "
      f"pruning coverage {skipped}/{total} lines "
      f"({100.0 * skipped / max(total, 1):.1f}%)")
EOF
echo "bench_perf: OK ($OUT)"
