#!/usr/bin/env bash
# Tier-1 gate: configure, build, run the unit tests at two pool widths, then
# smoke-check the observability pipeline.
#
#  1. ctest under TURBFNO_THREADS=1 and again under TURBFNO_THREADS=4. The
#     determinism suite writes its trained-weight dumps
#     (determinism_weights_*.tnn) into the test working directory; the two
#     runs' dumps are diffed byte-for-byte, extending the thread-count
#     determinism contract across processes and pool widths.
#  2. One bench with --metrics-out, asserting the exported JSON contains the
#     fft/*, nn/*, and train/* spans plus the mode-pruning coverage counters.
#  3. A perf-harness smoke: bench_perf_train at a tiny measurement budget,
#     asserting it produces a well-formed BENCH_spectral.json (the recorded
#     numbers are non-gating; only the schema is checked here).
#  4. Optionally (TURBFNO_TIER1_SANITIZE=1), an AddressSanitizer + UBSan
#     build of the test suite in a sibling build dir, with ctest run once.
#
# Usage: scripts/check_tier1.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j

DUMP_DIR="$BUILD_DIR/tests"
DUMPS=(determinism_weights_t1.tnn determinism_weights_t2.tnn
       determinism_weights_t4.tnn determinism_weights_global.tnn)
SAVE_DIR="$BUILD_DIR/determinism_threads1"

run_ctest() {
  TURBFNO_THREADS="$1" ctest --test-dir "$BUILD_DIR" --output-on-failure \
      -j "$(nproc)"
}

rm -rf "$SAVE_DIR" && mkdir -p "$SAVE_DIR"
run_ctest 1
for dump in "${DUMPS[@]}"; do
  [[ -f "$DUMP_DIR/$dump" ]] || {
    echo "check_tier1: determinism dump $dump missing after ctest run" >&2
    exit 1
  }
  cp "$DUMP_DIR/$dump" "$SAVE_DIR/$dump"
done

run_ctest 4
for dump in "${DUMPS[@]}"; do
  cmp "$SAVE_DIR/$dump" "$DUMP_DIR/$dump" || {
    echo "check_tier1: $dump differs between TURBFNO_THREADS=1 and =4 runs" >&2
    exit 1
  }
done

METRICS="$BUILD_DIR/check_tier1_metrics.json"
rm -f "$METRICS"
TURBFNO_SCALE=ci "$BUILD_DIR/bench/bench_fig5_channels" \
    --metrics-out "$METRICS" > /dev/null

for span in '"fft/r2c"' '"nn/linear_fwd"' '"train/forward"' \
            '"fft/pruned_lines_skipped"' '"fft/lines_total"'; do
  grep -q "$span" "$METRICS" || {
    echo "check_tier1: span $span missing from $METRICS" >&2
    exit 1
  }
done
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$METRICS"

# Perf-harness smoke: tiny budget, schema-only assertions (numbers are the
# job of scripts/bench_perf.sh and are not gated here).
PERF_JSON="$BUILD_DIR/check_tier1_bench_spectral.json"
rm -f "$PERF_JSON"
"$BUILD_DIR/bench/bench_perf_train" --min-seconds 0.01 --out "$PERF_JSON" \
    > /dev/null
python3 - "$PERF_JSON" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["version"] == 1, "unexpected BENCH_spectral schema version"
assert "spectral/fwdbwd_pruned" in d["results_ns_per_op"], \
    "spectral/fwdbwd_pruned timing missing"
assert "spectral_fwdbwd_pruned_vs_full" in d["speedup"], "speedup missing"
assert "fft/pruned_lines_skipped" in d["counters"], "pruning counter missing"
assert "fft/lines_total" in d["counters"], "lines_total counter missing"
EOF

if [[ "${TURBFNO_TIER1_SANITIZE:-0}" == "1" ]]; then
  ASAN_DIR="$BUILD_DIR-asan"
  cmake -B "$ASAN_DIR" -S . -DTURBFNO_SANITIZE=ON -DTURBFNO_BUILD_BENCH=OFF \
      -DTURBFNO_BUILD_EXAMPLES=OFF
  cmake --build "$ASAN_DIR" -j
  TURBFNO_THREADS=2 ctest --test-dir "$ASAN_DIR" --output-on-failure \
      -j "$(nproc)"
fi

echo "check_tier1: OK (tests passed at 1 and 4 threads, determinism dumps identical, metrics JSON valid: $METRICS, perf smoke JSON valid: $PERF_JSON)"
