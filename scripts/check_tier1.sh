#!/usr/bin/env bash
# Tier-1 gate: configure, build, run the unit tests at two pool widths, then
# smoke-check the observability pipeline.
#
#  1. ctest under TURBFNO_THREADS=1 and again under TURBFNO_THREADS=4. The
#     determinism suite writes its trained-weight dumps
#     (determinism_weights_*.tnn) into the test working directory; the two
#     runs' dumps are diffed byte-for-byte, extending the thread-count
#     determinism contract across processes and pool widths.
#  1b. Dual-ISA determinism leg: the determinism suite re-run with the SIMD
#     dispatch forced to each tier (TURBFNO_ISA=scalar and =avx2) at pool
#     widths 1 and 4, diffing the weight dumps byte-for-byte within each
#     ISA. Dumps are only comparable within a fixed ISA (Tier A); across
#     ISAs the contract is the bounded Tier B agreement tested by
#     tests/test_isa.cpp. The avx2 leg is skipped with a notice on hosts
#     whose /proc/cpuinfo lacks avx2+fma.
#  2. One bench with --metrics-out, asserting the exported JSON contains the
#     fft/*, nn/*, and train/* spans plus the mode-pruning coverage counters.
#  3. A perf-harness smoke: bench_perf_train at a tiny measurement budget,
#     asserting it produces a well-formed BENCH_spectral.json (the recorded
#     numbers are non-gating; only the schema is checked here) and that the
#     batched line-FFT path engaged (fft/batched_lines > 0).
#  4. An inference-engine smoke: bench_perf_infer at a tiny budget with
#     --metrics-out, asserting the nn/infer_* spans are exported, the
#     zero-steady-state-allocation contract holds
#     (infer/steady_state_allocs == 0), the engine drove the batched FFT
#     path (fft/batched_lines > 0), the plan-cache memo stayed hit-only
#     across a steady-state repeat (fft/plan_cache_misses_steady_delta == 0),
#     and the BENCH_inference.json schema is well formed.
#  5. A serving smoke: bench_perf_serve at a tiny grid/horizon, asserting
#     concurrent sessions are bitwise identical to sequential rollouts at
#     pool widths 1 and 4, the saturation exercise bumps
#     serve/admission_rejects, and warm sessions keep
#     infer/steady_state_allocs at 0. The same run covers the compressed
#     serving contract: the bf16 engine-pool rollouts must stay within the
#     documented per-snapshot relative-L2 bound of the fp32 results
#     (compressed_serving.within_bound) with steady-state allocations still
#     zero after the bf16 legs, and per-ISA / per-precision variant rows
#     must be present. The ensemble UQ leg is asserted from the same run:
#     per-K ensemble rows exist, serve/ensemble_members accounted every
#     fanned-out member stream, identical members reduced to exactly-zero
#     variance, perturbed members to finite positive variance
#     (ensemble_contract.ok), and steady-state allocations stayed zero
#     across the ensemble legs too.
#  6. A fault-injection smoke: examples/robust_smoke corrupts a checkpoint
#     (loader must reject it and bump robust/corrupt_rejected), checks the
#     checkpoint format matrix (TNN3 bf16 round-trip quantized exactly,
#     legacy TNN2/TNN1 still load), and forces a divergent hybrid rollout
#     (guard must trip, trajectory must stay finite, PDE fallback windows
#     must appear); the exported robust/* counters are asserted.
#  7. Optionally (TURBFNO_TIER1_SANITIZE=1), an AddressSanitizer + UBSan
#     build of the test suite in a sibling build dir, with ctest run once.
#
# Usage: scripts/check_tier1.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j

DUMP_DIR="$BUILD_DIR/tests"
DUMPS=(determinism_weights_t1.tnn determinism_weights_t2.tnn
       determinism_weights_t4.tnn determinism_weights_global.tnn)
SAVE_DIR="$BUILD_DIR/determinism_threads1"

run_ctest() {
  TURBFNO_THREADS="$1" ctest --test-dir "$BUILD_DIR" --output-on-failure \
      -j "$(nproc)"
}

rm -rf "$SAVE_DIR" && mkdir -p "$SAVE_DIR"
run_ctest 1
for dump in "${DUMPS[@]}"; do
  [[ -f "$DUMP_DIR/$dump" ]] || {
    echo "check_tier1: determinism dump $dump missing after ctest run" >&2
    exit 1
  }
  cp "$DUMP_DIR/$dump" "$SAVE_DIR/$dump"
done

run_ctest 4
for dump in "${DUMPS[@]}"; do
  cmp "$SAVE_DIR/$dump" "$DUMP_DIR/$dump" || {
    echo "check_tier1: $dump differs between TURBFNO_THREADS=1 and =4 runs" >&2
    exit 1
  }
done

# Dual-ISA leg: within each forced ISA, the determinism dumps must be
# byte-identical across pool widths 1 and 4 (cross-process Tier A). The
# scalar leg always runs; the avx2 leg needs avx2+fma in /proc/cpuinfo.
ISA_LEGS=(scalar)
if [[ -r /proc/cpuinfo ]] && grep -q avx2 /proc/cpuinfo \
    && grep -q fma /proc/cpuinfo; then
  ISA_LEGS+=(avx2)
else
  echo "check_tier1: host lacks avx2+fma (or /proc/cpuinfo unreadable);" \
       "skipping the avx2 determinism leg"
fi
for isa in "${ISA_LEGS[@]}"; do
  ISA_SAVE_DIR="$BUILD_DIR/determinism_isa_$isa"
  rm -rf "$ISA_SAVE_DIR" && mkdir -p "$ISA_SAVE_DIR"
  (cd "$DUMP_DIR" && TURBFNO_ISA="$isa" TURBFNO_THREADS=1 \
      ./test_determinism --gtest_brief=1 > /dev/null)
  for dump in "${DUMPS[@]}"; do
    cp "$DUMP_DIR/$dump" "$ISA_SAVE_DIR/$dump"
  done
  (cd "$DUMP_DIR" && TURBFNO_ISA="$isa" TURBFNO_THREADS=4 \
      ./test_determinism --gtest_brief=1 > /dev/null)
  for dump in "${DUMPS[@]}"; do
    cmp "$ISA_SAVE_DIR/$dump" "$DUMP_DIR/$dump" || {
      echo "check_tier1: $dump differs between TURBFNO_THREADS=1 and =4" \
           "under TURBFNO_ISA=$isa" >&2
      exit 1
    }
  done
  echo "check_tier1: determinism dumps identical across widths under" \
       "TURBFNO_ISA=$isa"
done

METRICS="$BUILD_DIR/check_tier1_metrics.json"
rm -f "$METRICS"
TURBFNO_SCALE=ci "$BUILD_DIR/bench/bench_fig5_channels" \
    --metrics-out "$METRICS" > /dev/null

for span in '"fft/r2c"' '"nn/linear_fwd"' '"train/forward"' \
            '"fft/pruned_lines_skipped"' '"fft/lines_total"'; do
  grep -q "$span" "$METRICS" || {
    echo "check_tier1: span $span missing from $METRICS" >&2
    exit 1
  }
done
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$METRICS"

# Perf-harness smoke: tiny budget, schema-only assertions (numbers are the
# job of scripts/bench_perf.sh and are not gated here).
PERF_JSON="$BUILD_DIR/check_tier1_bench_spectral.json"
rm -f "$PERF_JSON"
"$BUILD_DIR/bench/bench_perf_train" --min-seconds 0.01 --out "$PERF_JSON" \
    > /dev/null
python3 - "$PERF_JSON" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["version"] == 1, "unexpected BENCH_spectral schema version"
assert "spectral/fwdbwd_pruned" in d["results_ns_per_op"], \
    "spectral/fwdbwd_pruned timing missing"
assert "spectral_fwdbwd_pruned_vs_full" in d["speedup"], "speedup missing"
assert "fft/pruned_lines_skipped" in d["counters"], "pruning counter missing"
assert "fft/lines_total" in d["counters"], "lines_total counter missing"
assert d["counters"]["fft/batched_lines"] > 0, \
    "batched line-FFT path never engaged"
assert "fft/batch_tail_lines" in d["counters"], "batch tail counter missing"
EOF

# Inference-engine smoke: spans present, zero steady-state allocations,
# BENCH_inference.json schema valid. Timings are non-gating here.
INFER_JSON="$BUILD_DIR/check_tier1_bench_inference.json"
INFER_METRICS="$BUILD_DIR/check_tier1_infer_metrics.json"
rm -f "$INFER_JSON" "$INFER_METRICS"
"$BUILD_DIR/bench/bench_perf_infer" --min-seconds 0.01 --out "$INFER_JSON" \
    --metrics-out "$INFER_METRICS" > /dev/null
for span in '"nn/infer_plan"' '"nn/infer_forward"' '"nn/infer_lift"' \
            '"nn/infer_spectral"' '"nn/infer_project"' '"nn/infer_rollout"'; do
  grep -q "$span" "$INFER_METRICS" || {
    echo "check_tier1: span $span missing from $INFER_METRICS" >&2
    exit 1
  }
done
python3 - "$INFER_JSON" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["version"] == 1, "unexpected BENCH_inference schema version"
for key in ("infer/train_forward_n64", "infer/engine_forward_n64",
            "infer/rollout_step_n64", "infer/batched_rollout_step_n64"):
    assert key in d["results_ns_per_op"], f"{key} timing missing"
assert "engine_forward_vs_train" in d["speedup"], "speedup missing"
assert d["counters"]["infer/steady_state_allocs"] == 0, \
    "inference engine allocated in steady state"
assert d["gauges"]["infer/arena_bytes"] > 0, "arena gauge missing"
assert d["counters"]["fft/batched_lines"] > 0, \
    "batched line-FFT path never engaged in the engine"
assert d["counters"]["fft/plan_cache_misses_steady_delta"] == 0, \
    "plan cache missed during the steady-state repeat (memo thrashing)"
EOF

# Serving smoke: a small bench_perf_serve run must report concurrent ==
# sequential bitwise identity, at least one admission rejection from the
# saturation exercise, and zero engine steady-state allocations across warm
# sessions. Throughput numbers are non-gating here.
SERVE_JSON="$BUILD_DIR/check_tier1_bench_serving.json"
SERVE_METRICS="$BUILD_DIR/check_tier1_serve_metrics.json"
rm -f "$SERVE_JSON" "$SERVE_METRICS"
"$BUILD_DIR/bench/bench_perf_serve" --grid 16 --steps 2 --out "$SERVE_JSON" \
    --metrics-out "$SERVE_METRICS" > /dev/null
for name in '"serve/round"' '"serve/batch"' '"serve/admission_rejects"' \
            '"serve/batches"' '"serve/queue_depth"' '"isa/active"' \
            '"serve/ensemble_sessions"' '"serve/ensemble_members"' \
            '"serve/ensemble_rounds"' '"serve/ensemble_energy_rel_spread"' \
            '"isa/gemm_dispatch_scalar"' '"isa/fft_dispatch_scalar"'; do
  grep -q "$name" "$SERVE_METRICS" || {
    echo "check_tier1: metric $name missing from $SERVE_METRICS" >&2
    exit 1
  }
done
python3 - "$SERVE_JSON" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["version"] == 1, "unexpected BENCH_serving schema version"
assert d["bitwise_identical_threads_1_4"] is True, \
    "concurrent serving diverged from sequential rollouts"
levels = {lvl["sessions"] for lvl in d["levels"]}
assert 512 in levels, "512-session level missing"
for lvl in d["levels"]:
    assert "latency_p50_ms" in lvl and "latency_p99_ms" in lvl, \
        "latency percentiles missing"
    assert "batch_occupancy_mean" in lvl, "occupancy stats missing"
assert d["counters"]["serve/admission_rejects"] >= 1, \
    "admission control never rejected"
assert d["counters"]["infer/steady_state_allocs"] == 0, \
    "serving allocated in engine steady state (incl. the bf16 legs)"
cs = d["compressed_serving"]
assert cs["precision"] == "bf16", "compressed serving leg missing"
assert cs["within_bound"] is True, (
    f"bf16 serving rel-L2 {cs['worst_snapshot_rel_l2_vs_fp32']} "
    f"exceeded bound {cs['bound']}")
assert 0.0 < cs["worst_snapshot_rel_l2_vs_fp32"] <= cs["bound"], \
    "bf16 rel-L2 outside (0, bound]"
variants = {(v["isa"], v["precision"]) for v in d["variants"]}
assert ("scalar", "fp32") in variants, "per-ISA variant rows missing"
assert any(p == "bf16" for _, p in variants), "bf16 variant row missing"
ks = {row["k"] for row in d["ensembles"]}
assert {1, 2, 4, 8} <= ks, f"per-K ensemble rows missing (got {ks})"
for row in d["ensembles"]:
    assert row["member_snapshots_per_s"] > 0, "ensemble throughput missing"
ec = d["ensemble_contract"]
assert ec["identical_members_zero_variance"] is True, \
    "identical ensemble members did not reduce to exactly-zero variance"
assert ec["perturbed_variance_finite_positive"] is True, \
    "perturbed ensemble members lack finite positive variance"
assert ec["members_counter_delta"] == ec["members_counter_expected"], \
    "serve/ensemble_members counter did not account every member stream"
assert ec["ok"] is True, "ensemble contract failed"
assert d["counters"]["serve/ensemble_members"] >= 4, \
    "serve/ensemble_members counter missing from the serving bench"
EOF

# Fault-injection smoke: corrupt checkpoints rejected, divergent rollouts
# detected and degraded to the PDE. robust_smoke exits non-zero on any failed
# expectation; the counters prove the events flowed through the obs registry.
ROBUST_METRICS="$BUILD_DIR/check_tier1_robust_metrics.json"
rm -f "$ROBUST_METRICS"
(cd "$BUILD_DIR" && ./examples/robust_smoke \
    --metrics-out check_tier1_robust_metrics.json > /dev/null)
python3 - "$ROBUST_METRICS" <<'EOF'
import json, sys
c = json.load(open(sys.argv[1]))["counters"]
assert c["robust/corrupt_rejected"] >= 2, "corrupt checkpoints were not rejected"
assert c["robust/guard_trips"] >= 1, "rollout guard never tripped"
assert c["robust/fallback_windows"] >= 1, "no PDE fallback windows recorded"
assert c["robust/checkpoint_writes"] >= 1, "no atomic checkpoint writes recorded"
EOF

if [[ "${TURBFNO_TIER1_SANITIZE:-0}" == "1" ]]; then
  ASAN_DIR="$BUILD_DIR-asan"
  cmake -B "$ASAN_DIR" -S . -DTURBFNO_SANITIZE=ON -DTURBFNO_BUILD_BENCH=OFF \
      -DTURBFNO_BUILD_EXAMPLES=OFF
  cmake --build "$ASAN_DIR" -j
  TURBFNO_THREADS=2 ctest --test-dir "$ASAN_DIR" --output-on-failure \
      -j "$(nproc)"
fi

echo "check_tier1: OK (tests passed at 1 and 4 threads, determinism dumps identical incl. forced-ISA legs [${ISA_LEGS[*]}], metrics JSON valid: $METRICS, perf smoke JSON valid: $PERF_JSON, inference smoke JSON valid: $INFER_JSON, serving smoke JSON valid: $SERVE_JSON, fault-injection smoke valid: $ROBUST_METRICS)"
