#!/usr/bin/env bash
# Tier-1 gate: configure, build, run the unit tests, then smoke-check the
# observability pipeline by running one bench with --metrics-out and
# verifying the JSON contains the fft/*, nn/*, and train/* spans.
#
# Usage: scripts/check_tier1.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

METRICS="$BUILD_DIR/check_tier1_metrics.json"
rm -f "$METRICS"
TURBFNO_SCALE=ci "$BUILD_DIR/bench/bench_fig5_channels" \
    --metrics-out "$METRICS" > /dev/null

for span in '"fft/r2c"' '"nn/linear_fwd"' '"train/forward"'; do
  grep -q "$span" "$METRICS" || {
    echo "check_tier1: span $span missing from $METRICS" >&2
    exit 1
  }
done
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$METRICS"

echo "check_tier1: OK (tests passed, metrics JSON valid: $METRICS)"
