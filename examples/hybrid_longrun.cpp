// Hybrid FNO–PDE long-time rollout — the paper's headline experiment
// (§VI-C, Figs. 8–9) as a runnable example.
//
// Trains a 10-in/5-out 2D FNO on LBM-generated decaying turbulence, then
// rolls the same initial condition forward three ways:
//   * pure PDE     (reference physics),
//   * pure FNO     (fast but drifts unphysical),
//   * hybrid       (alternating 5 FNO / 5 PDE snapshots).
// Prints kinetic energy, enstrophy, and divergence per snapshot and writes
// final-state vorticity images for all three.
//
// A serving-layer leg rides along at the end: the trained model is exposed
// through serve::RolloutServer (unified RolloutRequest API), a small crowd
// of guarded sessions is micro-batched through the shared engine pool, and
// the admission / occupancy / latency counters are printed — the serving
// quickstart from the README, end to end. The --serve-* runtime flags
// (see util/cli.hpp) size the server.
//
// With --serve-ensemble-k K (K >= 2) an ensemble UQ leg follows: one
// logical session fans into K member streams micro-batched together, the
// guard bands are calibrated from the rolling across-member spread, and the
// mean prediction is reported with its per-snapshot uncertainty band.
//
// Run:  ./hybrid_longrun [--grid 32] [--samples 6] [--epochs 30]
//                        [--horizon 40] [--outdir .] [--serve-sessions 8]
//                        [--serve-ensemble-k 4]
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/turbfno.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/image.hpp"
#include "util/table.hpp"

namespace {

using namespace turb;

core::History seed_history_from_series(const data::SnapshotSeries& series,
                                       index_t count, double dt_tc) {
  core::History history;
  const index_t frame = series.height() * series.width();
  for (index_t s = 0; s < count; ++s) {
    core::FieldSnapshot snap;
    snap.t = dt_tc * static_cast<double>(s);
    snap.u1 = TensorD({series.height(), series.width()});
    snap.u2 = TensorD({series.height(), series.width()});
    for (index_t i = 0; i < frame; ++i) {
      snap.u1[i] = series.u1[s * frame + i];
      snap.u2[i] = series.u2[s * frame + i];
    }
    history.push_back(std::move(snap));
  }
  return history;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  apply_runtime_flags(args);
  const index_t grid = args.get_int("grid", 32);
  const index_t n_samples = args.get_int("samples", 6);
  const index_t epochs = args.get_int("epochs", 30);
  const index_t horizon = args.get_int("horizon", 40);
  const std::string outdir = args.get("outdir", ".");

  // --- data + training --------------------------------------------------
  data::GeneratorConfig gen;
  gen.grid = grid;
  gen.reynolds = 1000.0;
  gen.dt_tc = 0.01;
  gen.t_end_tc = 0.6;
  std::printf("generating %lld training trajectories...\n",
              static_cast<long long>(n_samples));
  const data::TurbulenceDataset dataset =
      data::generate_ensemble(gen, n_samples);

  data::WindowSpec spec;
  spec.in_channels = 10;
  spec.out_channels = 5;
  TensorF inputs, targets;
  data::make_velocity_channel_windows(dataset, spec, inputs, targets);
  const analysis::Normalizer norm = analysis::Normalizer::fit(inputs);
  norm.apply(inputs);
  norm.apply(targets);

  fno::FnoConfig cfg;
  cfg.in_channels = 10;
  cfg.out_channels = 5;
  cfg.width = 12;
  cfg.n_layers = 4;
  cfg.n_modes = {12, 12};
  cfg.lifting_channels = 32;
  cfg.projection_channels = 32;
  Rng rng(3);
  fno::Fno model(cfg, rng);
  nn::DataLoader loader(inputs, targets, 8, true, 5);
  fno::TrainConfig tc;
  tc.epochs = epochs;
  tc.lr = 2e-3;
  std::printf("training FNO (%lld windows, %lld epochs)...\n",
              static_cast<long long>(inputs.dim(0)),
              static_cast<long long>(epochs));
  const fno::TrainResult train = fno::train_fno(model, loader, tc);
  std::printf("  final loss %.4f in %.1fs\n", train.final_train_loss(),
              train.total_seconds);

  // --- three rollouts from a held-out initial condition ------------------
  const data::SnapshotSeries fresh = data::generate_sample(gen, 777);
  const core::History seed = seed_history_from_series(fresh, 10, gen.dt_tc);

  const auto make_pde = [&] {
    ns::NsConfig ns_cfg;
    ns_cfg.n = grid;
    ns_cfg.viscosity = 1.0 / gen.reynolds;
    ns_cfg.dt = gen.dt_tc / 10.0;
    return std::make_unique<ns::SpectralNsSolver>(ns_cfg);
  };
  core::FnoPropagator fno_prop(model, norm, gen.dt_tc);
  core::PdePropagator pde_a(make_pde(), gen.dt_tc);
  core::PdePropagator pde_b(make_pde(), gen.dt_tc);
  core::PdePropagator pde_c(make_pde(), gen.dt_tc);

  core::RolloutRequest roll_req;
  roll_req.seed = seed;
  roll_req.steps = horizon;
  const core::RolloutResult pde_run = core::run_rollout(pde_a, roll_req);
  const core::RolloutResult fno_run = core::run_rollout(fno_prop, roll_req);
  core::HybridConfig hybrid_cfg;
  hybrid_cfg.fno_snapshots = 5;
  hybrid_cfg.pde_snapshots = 5;
  core::HybridScheduler scheduler(fno_prop, pde_b, hybrid_cfg);
  const core::RolloutResult hybrid_run = scheduler.run(seed, horizon);

  SeriesTable table("hybrid_longrun");
  table.set_columns({"t_over_tc", "ke_pde", "ke_fno", "ke_hybrid", "ens_pde",
                     "ens_fno", "ens_hybrid", "div_fno", "div_hybrid"});
  for (index_t s = 0; s < horizon; ++s) {
    const auto us = static_cast<std::size_t>(s);
    table.add_row({pde_run.metrics[us].t, pde_run.metrics[us].kinetic_energy,
                   fno_run.metrics[us].kinetic_energy,
                   hybrid_run.metrics[us].kinetic_energy,
                   pde_run.metrics[us].enstrophy,
                   fno_run.metrics[us].enstrophy,
                   hybrid_run.metrics[us].enstrophy,
                   fno_run.metrics[us].divergence_linf,
                   hybrid_run.metrics[us].divergence_linf});
  }
  table.print_csv(std::cout);

  const auto dump = [&](const core::RolloutResult& run, const char* name) {
    const auto& last = run.trajectory.back();
    const TensorD omega = ns::vorticity_from_velocity(last.u1, last.u2);
    write_ppm_diverging(outdir + "/hybrid_" + std::string(name) + ".ppm",
                        omega.span(), static_cast<int>(grid),
                        static_cast<int>(grid));
  };
  dump(pde_run, "pde");
  dump(fno_run, "fno");
  dump(hybrid_run, "hybrid");
  std::printf("final-state vorticity images written to %s\n", outdir.c_str());

  // The FNO legs above ran through the serving engine (FnoPropagator plans
  // once for the seed shape, then every window advances allocation-free).
  std::printf("\nserving engine: arena %.1f MB, %lld steady-state allocs\n",
              static_cast<double>(fno_prop.engine().arena_bytes()) / 1e6,
              static_cast<long long>(
                  obs::counter("infer/steady_state_allocs").value()));

  const auto& pm = pde_run.metrics.back();
  const auto& fm = fno_run.metrics.back();
  const auto& hm = hybrid_run.metrics.back();
  std::printf("\nat t=%.2f t_c:  KE error  FNO %.1f%%  hybrid %.1f%%\n", pm.t,
              core::percentage_error(fm.kinetic_energy, pm.kinetic_energy),
              core::percentage_error(hm.kinetic_energy, pm.kinetic_energy));
  std::printf("               div(u)    FNO %.2e  hybrid %.2e\n",
              fm.divergence_linf, hm.divergence_linf);

  // --- serving leg: the trained model behind the request API -------------
  // Each session is a guarded RolloutRequest from a time-shifted seed; the
  // server micro-batches them through the pooled engines while the guard
  // keeps any diverging stream on PDE physics. --serve-* flags size the
  // server (ServeConfig::from_runtime).
  const index_t n_sessions = args.get_int("serve-sessions", 8);
  serve::RolloutServer server(fno_prop, &pde_c,
                              serve::ServeConfig::from_runtime());
  std::vector<serve::SessionId> session_ids;
  core::History serve_seed = seed;
  for (index_t s = 0; s < n_sessions; ++s) {
    core::RolloutRequest request;
    request.seed = serve_seed;
    request.steps = horizon;
    request.guard.enabled = true;
    request.guard.cooldown_snapshots = 5;
    request.tag = "session-" + std::to_string(s);
    const serve::Admission admission = server.submit(std::move(request));
    if (!admission.admitted) {
      std::printf("serving: session %lld rejected (%s)\n",
                  static_cast<long long>(s), admission.reason.c_str());
      continue;
    }
    session_ids.push_back(admission.id);
    // Shift the next seed one snapshot forward so sessions are distinct.
    serve_seed.pop_front();
    serve_seed.push_back(pde_c.advance(serve_seed, 1).front());
  }
  server.drain();

  index_t degraded_sessions = 0;
  for (const serve::SessionId id : session_ids) {
    const core::RolloutResult run = server.take(id);
    if (run.guard_trips() > 0) ++degraded_sessions;
  }
  const serve::RolloutServer::LatencyStats latency = server.latency_stats();
  std::printf(
      "\nserving: %zu sessions x %lld snapshots  occupancy %.1f  "
      "p50 %.1f ms  p99 %.1f ms\n",
      session_ids.size(), static_cast<long long>(horizon),
      server.mean_batch_occupancy(), latency.p50_ms, latency.p99_ms);
  std::printf(
      "serving: %lld guard-degraded sessions, %lld admission rejects, "
      "%lld engine buckets (%.1f MB arenas)\n",
      static_cast<long long>(degraded_sessions),
      static_cast<long long>(
          obs::counter("serve/admission_rejects").value()),
      static_cast<long long>(server.engine_pool().size()),
      static_cast<double>(server.engine_pool().total_arena_bytes()) / 1e6);

  // --- ensemble UQ leg: K members, spread-calibrated guard bands ----------
  // One logical session fanned into --serve-ensemble-k member streams
  // (K = 1 skips the leg): the members co-batch through the same pool, the
  // guard bands are calibrated from the rolling across-member spread, and
  // the result is the mean prediction with a per-snapshot uncertainty band.
  const index_t ensemble_k = serve::ServeConfig::from_runtime().ensemble_k;
  if (ensemble_k > 1) {
    core::RolloutRequest request;
    request.seed = seed;
    request.steps = horizon;
    request.ensemble_k = ensemble_k;
    request.ensemble_eps = 1e-3;
    request.guard.enabled = true;
    request.guard.spread_calibrated = true;
    request.guard.cooldown_snapshots = 5;
    request.tag = "ensemble";
    const serve::Admission admission = server.submit(std::move(request));
    if (!admission.admitted) {
      std::printf("ensemble: rejected (%s)\n", admission.reason.c_str());
      return 1;
    }
    server.drain();
    const core::RolloutResult ensemble = server.take(admission.id);
    double worst_rel_spread = 0.0;
    for (const core::EnsembleSnapshotSpread& row : ensemble.spread) {
      worst_rel_spread = std::max(worst_rel_spread, row.rel_spread);
    }
    const auto& last = ensemble.spread.back();
    std::printf(
        "\nensemble: K=%lld members  %lld snapshots  guard trips %lld\n",
        static_cast<long long>(ensemble.ensemble_members),
        static_cast<long long>(ensemble.trajectory.size()),
        static_cast<long long>(ensemble.guard_trips()));
    std::printf(
        "ensemble: final KE %.4f ± %.2e  enstrophy %.4f ± %.2e  "
        "worst rel spread %.2e\n",
        last.energy_mean, last.energy_spread, last.enstrophy_mean,
        last.enstrophy_spread, worst_rel_spread);
  }
  return 0;
}
