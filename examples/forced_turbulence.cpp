// Forced (Kolmogorov) turbulence — the paper's outlook extension from
// decaying to forced flows, on both substrates:
//   * entropic LBM with a Guo-scheme body force (data generation side),
//   * spectral NS with the matching vorticity forcing (hybrid partner side).
// Both runs are driven at the same non-dimensional parameters and the
// example reports their statistically steady kinetic energies side by side.
//
// Run:  ./forced_turbulence [--grid 48] [--re 1500] [--tc 4.0]
#include <cstdio>
#include <iostream>

#include "core/turbfno.hpp"
#include "util/cli.hpp"
#include "util/image.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace turb;
  const CliArgs args(argc, argv);
  apply_runtime_flags(args);
  const index_t grid = args.get_int("grid", 48);
  const double re = args.get_double("re", 1500.0);
  const double t_end = args.get_double("tc", 4.0);
  const index_t force_k = args.get_int("force-k", 2);

  // --- lattice Boltzmann run -------------------------------------------
  const double u0 = 0.03;
  lbm::LbmConfig lcfg;
  lcfg.nx = grid;
  lcfg.ny = grid;
  lcfg.viscosity = u0 * static_cast<double>(grid) / re;
  lcfg.collision = lbm::Collision::kEntropic;
  lcfg.force_k = force_k;
  // Amplitude chosen for a laminar peak of u0 — the instability of the
  // Kolmogorov profile then feeds the turbulence.
  const double k_lat =
      2.0 * std::numbers::pi * static_cast<double>(force_k) / grid;
  lcfg.force_amplitude = u0 * lcfg.viscosity * k_lat * k_lat;
  lbm::LbmSolver lbm_solver(lcfg);
  Rng rng(args.get_int("seed", 5));
  const auto init = lbm::random_vortex_velocity(grid, grid, 4.0, 0.5 * u0, rng);
  lbm_solver.initialize(init.u1, init.u2);

  // --- spectral NS run (same non-dimensional parameters) ----------------
  ns::NsConfig ncfg;
  ncfg.n = grid;
  ncfg.viscosity = 1.0 / re;
  ncfg.dt = 2e-4;
  ncfg.forcing_k = force_k;
  const double k_nd = 2.0 * std::numbers::pi * static_cast<double>(force_k);
  ncfg.forcing_amplitude = ncfg.viscosity * k_nd * k_nd;  // peak u = 1
  ns::SpectralNsSolver ns_solver(ncfg);
  TensorD u1n = init.u1, u2n = init.u2;
  u1n *= 1.0 / u0;
  u2n *= 1.0 / u0;
  ns_solver.set_velocity(u1n, u2n);

  const double tc_steps = static_cast<double>(grid) / u0;
  const index_t blocks = 16;
  SeriesTable table("forced_turbulence");
  table.set_columns({"t_over_tc", "ke_lbm_nondim", "ke_ns"});
  for (index_t blk = 1; blk <= blocks; ++blk) {
    const double t = t_end * static_cast<double>(blk) / blocks;
    lbm_solver.step(static_cast<index_t>(t_end * tc_steps / blocks));
    ns_solver.step(static_cast<index_t>(t_end / (ncfg.dt * blocks)));
    const TensorD lu1 = lbm_solver.velocity_x();
    const TensorD lu2 = lbm_solver.velocity_y();
    TensorD su1, su2;
    ns_solver.velocity(su1, su2);
    // LBM KE rescaled to the U₀ = 1 convention for comparison.
    const double ke_lbm =
        analysis::kinetic_energy(lu1, lu2) / (u0 * u0);
    table.add_row({t, ke_lbm, analysis::kinetic_energy(su1, su2)});
  }
  table.print_pretty(std::cout);
  table.print_csv(std::cout);

  const TensorD omega = ns::vorticity_from_velocity(
      lbm_solver.velocity_x(), lbm_solver.velocity_y());
  write_ppm_diverging("forced_vorticity.ppm", omega.span(),
                      static_cast<int>(grid), static_cast<int>(grid));
  std::printf("wrote forced_vorticity.ppm\n");
  std::printf("expectation: both kinetic energies level off (forcing "
              "balances dissipation) instead of decaying to zero\n");
  return 0;
}
