// Quickstart: the whole pipeline in ~80 lines.
//
//   1. generate a small ensemble of 2-D decaying turbulence with the
//      entropic lattice Boltzmann solver,
//   2. cut it into (10-in, 5-out) temporal-channel windows,
//   3. train a small 2D FNO on the velocity fields,
//   4. evaluate the one-shot error and an iterative rollout.
//
// Run:  ./quickstart [--samples 4] [--grid 32] [--epochs 20]
#include <cstdio>

#include "core/turbfno.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace turb;
  const CliArgs args(argc, argv);
  apply_runtime_flags(args);
  const index_t n_samples = args.get_int("samples", 4);
  const index_t grid = args.get_int("grid", 32);
  const index_t epochs = args.get_int("epochs", 20);

  // 1. Data: ensemble of decaying-turbulence trajectories.
  data::GeneratorConfig gen;
  gen.grid = grid;
  gen.reynolds = 1000.0;
  gen.dt_tc = 0.02;
  gen.t_end_tc = 0.5;
  std::printf("generating %lld trajectories on a %lldx%lld grid...\n",
              static_cast<long long>(n_samples), static_cast<long long>(grid),
              static_cast<long long>(grid));
  Timer timer;
  const data::TurbulenceDataset dataset =
      data::generate_ensemble(gen, n_samples);
  std::printf("  done in %.1fs (%lld snapshots/trajectory)\n", timer.seconds(),
              static_cast<long long>(dataset.samples.front().steps()));

  // 2. Windows: 10 input snapshots -> 5 output snapshots, both components.
  data::WindowSpec spec;
  spec.in_channels = 10;
  spec.out_channels = 5;
  TensorF inputs, targets;
  data::make_velocity_channel_windows(dataset, spec, inputs, targets);
  const analysis::Normalizer norm = analysis::Normalizer::fit(inputs);
  norm.apply(inputs);
  norm.apply(targets);
  std::printf("window tensor: %lld pairs of (10 -> 5) snapshots\n",
              static_cast<long long>(inputs.dim(0)));

  // 3. Train a small FNO.
  fno::FnoConfig cfg;
  cfg.in_channels = 10;
  cfg.out_channels = 5;
  cfg.width = 12;
  cfg.n_layers = 4;
  cfg.n_modes = {12, 12};
  cfg.lifting_channels = 32;
  cfg.projection_channels = 32;
  Rng rng(7);
  fno::Fno model(cfg, rng);
  std::printf("model: width %lld, %lld layers, %lld parameters\n",
              static_cast<long long>(cfg.width),
              static_cast<long long>(cfg.n_layers),
              static_cast<long long>(model.parameter_count()));

  nn::DataLoader loader(inputs, targets, 8, /*shuffle=*/true, 11);
  fno::TrainConfig tc;
  tc.epochs = epochs;
  tc.lr = 2e-3;
  tc.verbose = true;
  timer.reset();
  const fno::TrainResult train = fno::train_fno(model, loader, tc);
  std::printf("training: %.1fs, final relative-L2 loss %.4f\n",
              train.total_seconds, train.final_train_loss());

  // 4. Evaluate one-shot error and a 15-step rollout on a held-out sample.
  const data::SnapshotSeries fresh = data::generate_sample(gen, 1000);
  const index_t frame = grid * grid;
  TensorF history({10, grid, grid});
  std::copy_n(fresh.u1.data(), 10 * frame, history.data());
  norm.apply(history);
  infer::InferenceEngine engine(model);
  TensorF traj;
  engine.rollout_channels_into(history, 15, traj);
  for (const index_t step : {index_t{1}, index_t{5}, index_t{15}}) {
    TensorD pred({grid, grid}), truth({grid, grid});
    for (index_t i = 0; i < frame; ++i) {
      pred[i] = traj[(step - 1) * frame + i] * norm.stddev() + norm.mean();
      truth[i] = fresh.u1[(10 + step - 1) * frame + i];
    }
    std::printf("rollout step %2lld: relative-L2 error %.4f\n",
                static_cast<long long>(step),
                analysis::relative_l2_difference(pred, truth));
  }
  std::printf("quickstart complete.\n");
  return 0;
}
