// Decaying 2-D turbulence with the entropic lattice Boltzmann solver —
// the paper's data-generation workflow (§III) as a standalone run.
//
// Evolves one sample, prints the global statistics the paper tracks (mean,
// std, enstrophy, kinetic energy) and writes diverging-colormap vorticity
// frames (omega_*.ppm) like the paper's Fig. 8 top row.
//
// Run:  ./decaying_turbulence [--grid 64] [--re 2000] [--tc 1.0]
//                             [--frames 5] [--outdir .]
#include <cstdio>
#include <iostream>
#include <string>

#include "core/turbfno.hpp"
#include "util/cli.hpp"
#include "util/image.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace turb;
  const CliArgs args(argc, argv);
  apply_runtime_flags(args);
  const index_t grid = args.get_int("grid", 64);
  const double re = args.get_double("re", 2000.0);
  const double t_end = args.get_double("tc", 1.0);
  const index_t frames = args.get_int("frames", 5);
  const std::string outdir = args.get("outdir", ".");

  lbm::LbmConfig cfg;
  cfg.nx = grid;
  cfg.ny = grid;
  const double u0 = 0.05;
  cfg.viscosity = u0 * static_cast<double>(grid) / re;
  cfg.collision = lbm::Collision::kEntropic;
  lbm::LbmSolver solver(cfg);

  Rng rng(args.get_int("seed", 42));
  const auto init = lbm::random_vortex_velocity(grid, grid, 4.0, u0, rng);
  solver.initialize(init.u1, init.u2);

  const double tc_steps = static_cast<double>(grid) / u0;
  const auto steps_per_frame =
      static_cast<index_t>(t_end * tc_steps / static_cast<double>(frames));

  std::printf("entropic D2Q9, %lldx%lld, Re=%g (nu=%.2e), t_c=%g steps\n",
              static_cast<long long>(grid), static_cast<long long>(grid), re,
              cfg.viscosity, tc_steps);

  SeriesTable table("decaying_turbulence_stats");
  table.set_columns({"t_over_tc", "kinetic_energy", "enstrophy",
                     "vorticity_mean", "vorticity_std", "alpha_min"});
  for (index_t f = 0; f <= frames; ++f) {
    if (f > 0) solver.step(steps_per_frame);
    const TensorD u1 = solver.velocity_x();
    const TensorD u2 = solver.velocity_y();
    const TensorD omega = ns::vorticity_from_velocity(u1, u2);
    const analysis::FieldStats stats = analysis::field_stats(omega);
    const double t = static_cast<double>(f) * t_end /
                     static_cast<double>(frames);
    table.add_row({t, analysis::kinetic_energy(u1, u2),
                   analysis::enstrophy(omega), stats.mean, stats.stddev,
                   solver.entropic_stats().alpha_min});
    char name[64];
    std::snprintf(name, sizeof(name), "/omega_%03lld.ppm",
                  static_cast<long long>(f));
    write_ppm_diverging(outdir + name, omega.span(), static_cast<int>(grid),
                        static_cast<int>(grid));
  }
  table.print_pretty(std::cout);
  table.print_csv(std::cout);
  std::printf("wrote %lld vorticity frames to %s\n",
              static_cast<long long>(frames + 1), outdir.c_str());
  return 0;
}
