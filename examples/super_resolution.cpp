// Zero-shot super-resolution — the resolution-agnostic property of neural
// operators (§II): an FNO trained on coarse-grid data evaluates directly on
// a finer grid, because its weights live in mode space, not on the grid.
//
// Trains a one-step velocity predictor at 32², then evaluates the SAME
// weights on 64² trajectories of the same flow physics and reports errors
// at both resolutions.
//
// Run:  ./super_resolution [--coarse 32] [--fine 64] [--epochs 25]
#include <cstdio>

#include "core/turbfno.hpp"
#include "util/cli.hpp"

namespace {

using namespace turb;

/// Mean one-shot relative L2 of `model` on windows of `dataset`.
double window_error(fno::Fno& model, const data::TurbulenceDataset& dataset,
                    const data::WindowSpec& spec,
                    const analysis::Normalizer& norm) {
  TensorF x, y;
  data::make_velocity_channel_windows(dataset, spec, x, y);
  norm.apply(x);
  norm.apply(y);
  return fno::evaluate_fno(model, x, y, 4).rel_l2;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  apply_runtime_flags(args);
  const index_t coarse = args.get_int("coarse", 32);
  const index_t fine = args.get_int("fine", 64);
  const index_t epochs = args.get_int("epochs", 25);
  TURB_CHECK(fine > coarse);

  data::GeneratorConfig gen;
  gen.grid = coarse;
  gen.reynolds = 1000.0;
  gen.dt_tc = 0.01;
  gen.t_end_tc = 0.5;
  std::printf("generating %lldx%lld training data...\n",
              static_cast<long long>(coarse), static_cast<long long>(coarse));
  const data::TurbulenceDataset coarse_train = data::generate_ensemble(gen, 6);
  data::GeneratorConfig gen_heldout = gen;
  gen_heldout.seed = 999331;
  const data::TurbulenceDataset coarse_test =
      data::generate_ensemble(gen_heldout, 2);

  data::GeneratorConfig gen_fine = gen_heldout;
  gen_fine.grid = fine;
  std::printf("generating %lldx%lld evaluation data (same physics)...\n",
              static_cast<long long>(fine), static_cast<long long>(fine));
  const data::TurbulenceDataset fine_test =
      data::generate_ensemble(gen_fine, 2);

  data::WindowSpec spec;
  spec.in_channels = 10;
  spec.out_channels = 5;
  TensorF x, y;
  data::make_velocity_channel_windows(coarse_train, spec, x, y);
  const analysis::Normalizer norm = analysis::Normalizer::fit(x);
  norm.apply(x);
  norm.apply(y);

  fno::FnoConfig cfg;
  cfg.in_channels = 10;
  cfg.out_channels = 5;
  cfg.width = 12;
  cfg.n_layers = 4;
  cfg.n_modes = {12, 12};  // modes ≤ coarse grid: usable on ANY finer grid
  cfg.lifting_channels = 32;
  cfg.projection_channels = 32;
  Rng rng(7);
  fno::Fno model(cfg, rng);

  nn::DataLoader loader(x, y, 8, true, 11);
  fno::TrainConfig tc;
  tc.epochs = epochs;
  tc.lr = 2e-3;
  std::printf("training at %lld^2 (%lld windows)...\n",
              static_cast<long long>(coarse),
              static_cast<long long>(x.dim(0)));
  const fno::TrainResult train = fno::train_fno(model, loader, tc);
  std::printf("  final loss %.4f in %.1fs\n", train.final_train_loss(),
              train.total_seconds);

  const double err_coarse = window_error(model, coarse_test, spec, norm);
  const double err_fine = window_error(model, fine_test, spec, norm);
  std::printf("\nheld-out relative-L2 error:\n");
  std::printf("  trained resolution   %3lld^2: %.4f\n",
              static_cast<long long>(coarse), err_coarse);
  std::printf("  zero-shot resolution %3lld^2: %.4f\n",
              static_cast<long long>(fine), err_fine);
  std::printf("\nthe same %lld weights served both grids — no retraining, "
              "no interpolation.\n",
              static_cast<long long>(model.parameter_count()));
  return 0;
}
