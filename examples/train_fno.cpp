// CLI training tool: generate (or load) a data set, train an FNO with the
// paper's hyperparameters, report errors, and save a checkpoint.
//
// Run:  ./train_fno --width 12 --modes 12 --layers 4 --epochs 50
//                   --in 10 --out 5 --samples 8 --grid 32
//                   [--dataset path.tds] [--save model.tnn] [--load model.tnn]
//                   [--checkpoint ckpt.tnn --checkpoint-every 10 --resume]
#include <cstdio>
#include <string>

#include "core/turbfno.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace turb;
  const CliArgs args(argc, argv);
  apply_runtime_flags(args);

  // --- data ---------------------------------------------------------------
  data::TurbulenceDataset dataset;
  const std::string dataset_path = args.get("dataset", "");
  if (!dataset_path.empty() && args.get_flag("reuse-dataset")) {
    std::printf("loading dataset %s\n", dataset_path.c_str());
    dataset = data::load_dataset(dataset_path);
  } else {
    data::GeneratorConfig gen;
    gen.grid = args.get_int("grid", 32);
    gen.reynolds = args.get_double("re", 1000.0);
    gen.dt_tc = args.get_double("dt", 0.01);
    gen.t_end_tc = args.get_double("tc", 0.5);
    gen.seed = args.get_int("seed", 12345);
    const index_t n_samples = args.get_int("samples", 8);
    std::printf("generating %lld trajectories (grid %lld, Re %g)...\n",
                static_cast<long long>(n_samples),
                static_cast<long long>(gen.grid), gen.reynolds);
    dataset = data::generate_ensemble(gen, n_samples);
    if (!dataset_path.empty()) {
      data::save_dataset(dataset_path, dataset);
      std::printf("saved dataset to %s\n", dataset_path.c_str());
    }
  }

  data::WindowSpec spec;
  spec.in_channels = args.get_int("in", 10);
  spec.out_channels = args.get_int("out", 5);
  spec.max_windows = args.get_int("max-windows", 0);
  TensorF inputs, targets;
  data::make_velocity_channel_windows(dataset, spec, inputs, targets);
  const analysis::Normalizer norm = analysis::Normalizer::fit(inputs);
  norm.apply(inputs);
  norm.apply(targets);

  // Hold out the last 20% of windows for evaluation.
  const index_t n_total = inputs.dim(0);
  const index_t n_train = std::max<index_t>(1, n_total * 4 / 5);
  const index_t per_x = inputs.size() / n_total;
  const index_t per_y = targets.size() / n_total;
  TensorF train_x({n_train, spec.in_channels, inputs.dim(2), inputs.dim(3)});
  TensorF train_y({n_train, spec.out_channels, inputs.dim(2), inputs.dim(3)});
  std::copy_n(inputs.data(), n_train * per_x, train_x.data());
  std::copy_n(targets.data(), n_train * per_y, train_y.data());
  const index_t n_test = n_total - n_train;
  TensorF test_x({std::max<index_t>(n_test, 1), spec.in_channels,
                  inputs.dim(2), inputs.dim(3)});
  TensorF test_y({std::max<index_t>(n_test, 1), spec.out_channels,
                  inputs.dim(2), inputs.dim(3)});
  if (n_test > 0) {
    std::copy_n(inputs.data() + n_train * per_x, n_test * per_x,
                test_x.data());
    std::copy_n(targets.data() + n_train * per_y, n_test * per_y,
                test_y.data());
  }
  std::printf("windows: %lld train, %lld test\n",
              static_cast<long long>(n_train), static_cast<long long>(n_test));

  // --- model ----------------------------------------------------------------
  fno::FnoConfig cfg;
  cfg.in_channels = spec.in_channels;
  cfg.out_channels = spec.out_channels;
  cfg.width = args.get_int("width", 12);
  cfg.n_layers = args.get_int("layers", 4);
  const index_t modes = args.get_int("modes", 12);
  cfg.n_modes = {modes, modes};
  cfg.lifting_channels = args.get_int("lifting", 32);
  cfg.projection_channels = args.get_int("projection", 32);
  Rng rng(args.get_int("model-seed", 1));
  fno::Fno model(cfg, rng);
  std::printf("FNO: width %lld, layers %lld, modes %lld -> %lld parameters\n",
              static_cast<long long>(cfg.width),
              static_cast<long long>(cfg.n_layers),
              static_cast<long long>(modes),
              static_cast<long long>(model.parameter_count()));

  const std::string load_path = args.get("load", "");
  if (!load_path.empty()) {
    nn::Metadata meta;
    nn::load_parameters(load_path, model.parameters(), &meta);
    std::printf("loaded checkpoint %s", load_path.c_str());
    if (meta.count("norm_mean")) {
      std::printf(" (normalizer mean %.5g std %.5g, dt %.4g t_c)",
                  meta["norm_mean"], meta["norm_std"], meta["dt_tc"]);
    }
    std::printf("\n");
  }

  // --- train ------------------------------------------------------------------
  nn::DataLoader loader(train_x, train_y, args.get_int("batch", 8), true, 5);
  fno::TrainConfig tc;
  tc.epochs = args.get_int("epochs", 50);
  tc.lr = args.get_double("lr", 1e-3);
  tc.scheduler_step = args.get_int("scheduler-step", 100);
  tc.scheduler_gamma = args.get_double("scheduler-gamma", 0.5);
  tc.verbose = args.get_flag("verbose", true);
  // Crash-safe training: periodic atomic checkpoints, resume, and
  // NaN-loss recovery (restore + LR backoff) are all on the trainer.
  tc.checkpoint_path = args.get("checkpoint", "");
  tc.checkpoint_every = args.get_int("checkpoint-every", 0);
  tc.resume = args.get_flag("resume");
  tc.lr_backoff = args.get_double("lr-backoff", 0.5);
  tc.max_recoveries = args.get_int("max-recoveries", 3);
  const fno::TrainResult result = fno::train_fno(model, loader, tc);
  if (result.start_epoch > 0) {
    std::printf("resumed from epoch %lld\n",
                static_cast<long long>(result.start_epoch));
  }
  if (result.recoveries > 0) {
    std::printf("%s %lld non-finite-loss event(s) by restore + LR backoff\n",
                result.aborted ? "aborted after" : "recovered",
                static_cast<long long>(result.recoveries));
  }
  std::printf("trained %lld epochs in %.1fs (%.2fs/epoch)\n",
              static_cast<long long>(tc.epochs), result.total_seconds,
              result.total_seconds / static_cast<double>(tc.epochs));

  if (n_test > 0) {
    const fno::EvalResult eval = fno::evaluate_fno(model, test_x, test_y);
    std::printf("held-out relative-L2 error: %.4f (%lld samples, %.2fs)\n",
                eval.rel_l2, static_cast<long long>(eval.n_samples),
                eval.seconds);
  }

  const std::string save_path = args.get("save", "");
  if (!save_path.empty()) {
    // The normaliser and cadence travel with the weights — a checkpoint is
    // unusable for rollouts without them.
    const nn::Metadata meta{{"norm_mean", norm.mean()},
                            {"norm_std", norm.stddev()},
                            {"dt_tc", dataset.dt_tc}};
    nn::save_parameters(save_path, model.parameters(), meta);
    std::printf("saved checkpoint to %s (normalizer: mean %.5g std %.5g)\n",
                save_path.c_str(), norm.mean(), norm.stddev());
  }
  return 0;
}
