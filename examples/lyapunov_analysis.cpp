// Lyapunov-time estimation for 2-D decaying turbulence (paper §IV, Fig. 4).
//
// Launches two Navier–Stokes trajectories whose initial u₁ fields differ by
// δx₀ = 1e-2 (the paper's perturbation), tracks the separation of both
// velocity components, and reports the finite-time exponents λᵢ, the
// time-weighted Λ (Eq. 1), and T_L = 1/Λ.
//
// Run:  ./lyapunov_analysis [--grid 48] [--re 2000] [--tc 1.5] [--delta0 1e-2]
#include <cstdio>
#include <iostream>

#include "core/turbfno.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace turb;
  const CliArgs args(argc, argv);
  apply_runtime_flags(args);
  const index_t grid = args.get_int("grid", 48);
  const double re = args.get_double("re", 2000.0);
  const double t_end = args.get_double("tc", 1.5);
  const double delta0_target = args.get_double("delta0", 1e-2);

  ns::NsConfig cfg;
  cfg.n = grid;
  cfg.viscosity = 1.0 / re;
  cfg.dt = 1e-3;
  ns::SpectralNsSolver traj_a(cfg), traj_b(cfg);

  Rng rng(args.get_int("seed", 21));
  const auto field = lbm::random_vortex_velocity(grid, grid, 4.0, 1.0, rng);
  traj_a.set_velocity(field.u1, field.u2);

  // Perturb u1 so that ‖u1_A − u1_B‖₂ = δx₀ (paper §IV).
  TensorD u1p = field.u1;
  Rng prng(rng.next_u64());
  TensorD noise({grid, grid});
  noise.fill_normal(prng, 0.0, 1.0);
  noise *= delta0_target / noise.norm();
  u1p += noise;
  traj_b.set_velocity(u1p, field.u2);

  TensorD a1, a2, b1, b2;
  traj_a.velocity(a1, a2);
  traj_b.velocity(b1, b2);
  const double d0_u1 = analysis::field_separation(a1, b1);
  const double d0_u2 = std::max(analysis::field_separation(a2, b2), 1e-12);
  analysis::LyapunovEstimator est_u1(d0_u1), est_u2(d0_u2);
  std::printf("delta0: u1 %.3e, u2 %.3e (u2 perturbed only via projection)\n",
              d0_u1, d0_u2);

  SeriesTable table("lyapunov_exponents");
  table.set_columns({"t_over_tc", "sep_u1", "sep_u2", "lambda_u1",
                     "lambda_u2"});
  const index_t blocks = 30;
  const auto steps_per_block = static_cast<index_t>(
      t_end / (cfg.dt * static_cast<double>(blocks)));
  for (index_t blk = 1; blk <= blocks; ++blk) {
    traj_a.step(steps_per_block);
    traj_b.step(steps_per_block);
    traj_a.velocity(a1, a2);
    traj_b.velocity(b1, b2);
    const double t = traj_a.time();
    est_u1.record_fields(t, a1, b1);
    est_u2.record_fields(t, a2, b2);
    table.add_row({t, est_u1.series().back().separation,
                   est_u2.series().back().separation,
                   est_u1.series().back().lambda,
                   est_u2.series().back().lambda});
  }
  table.print_csv(std::cout);

  // Exclude near-saturated points, as in the paper's discussion.
  const double lam1 = est_u1.weighted_exponent(0.8);
  const double lam2 = est_u2.weighted_exponent(0.8);
  const double lambda_max = std::max(lam1, lam2);
  std::printf("\n<lambda> (Eq. 1):  u1 %.3f, u2 %.3f  (paper: max 2.15, avg 1.7)\n",
              lam1, lam2);
  if (lambda_max > 0.0) {
    std::printf("Lyapunov time T_L = 1/Lambda = %.3f t_c  (paper: ~0.45 t_c)\n",
                1.0 / lambda_max);
  } else {
    std::printf("no positive exponent detected (flow too viscous?)\n");
  }
  return 0;
}
