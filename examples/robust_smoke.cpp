// Fault-injection smoke check for the robustness layer, run by
// scripts/check_tier1.sh:
//
//   1. save a checkpoint, corrupt it (bit flip, truncation), and verify the
//      loader rejects each corruption with a "corrupt checkpoint" error
//      while `robust/corrupt_rejected` increments;
//   1b. checkpoint format matrix: a TNN3 bf16 save round-trips to exactly
//      the RNE-quantized values, and legacy v2 (CRC) and v1 (pre-CRC)
//      payloads still load;
//   2. run a hybrid rollout whose surrogate is forced to diverge
//      (core::DivergentPropagator) and verify the guard trips, the
//      trajectory stays finite, and PDE fallback windows appear.
//
// Exits non-zero on the first failed expectation. Pass --metrics-out F to
// dump the robust/* counters for the script to assert on.
//
// Run:  ./robust_smoke [--grid 32] [--snapshots 16] [--metrics-out m.json]
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/fault_injection.hpp"
#include "core/turbfno.hpp"
#include "nn/linear.hpp"
#include "util/cli.hpp"
#include "util/precision.hpp"

namespace {

int g_failures = 0;

void expect(bool ok, const char* what) {
  std::printf("%s  %s\n", ok ? "ok  " : "FAIL", what);
  if (!ok) ++g_failures;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// True when loading `path` throws a CheckError mentioning "corrupt".
bool load_rejected(const std::string& path,
                   const std::vector<turb::nn::Parameter*>& params) {
  try {
    turb::nn::load_parameters(path, params);
  } catch (const turb::CheckError& e) {
    return std::strstr(e.what(), "corrupt checkpoint") != nullptr;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace turb;
  const CliArgs args(argc, argv);
  apply_runtime_flags(args);

  // --- corrupted checkpoints are rejected, not half-loaded ---------------
  const std::string ckpt = "robust_smoke_ckpt.tnn";
  Rng rng(1);
  nn::Linear layer(4, 4, rng);
  nn::save_parameters(ckpt, layer.parameters(), {{"dt_tc", 0.01}});
  const std::string good = read_file(ckpt);
  expect(good.size() > 12 && good.compare(0, 4, "TNN2") == 0,
         "checkpoint saved in TNN2 format");

  nn::load_parameters(ckpt, layer.parameters());
  expect(true, "uncorrupted checkpoint loads");

  std::string flipped = good;
  flipped[good.size() / 2] = static_cast<char>(
      static_cast<unsigned char>(flipped[good.size() / 2]) ^ 0x20u);
  write_file(ckpt, flipped);
  expect(load_rejected(ckpt, layer.parameters()),
         "bit-flipped checkpoint rejected as corrupt");

  write_file(ckpt, good.substr(0, good.size() / 2));
  expect(load_rejected(ckpt, layer.parameters()),
         "truncated checkpoint rejected as corrupt");

  write_file(ckpt, good);
  nn::load_parameters(ckpt, layer.parameters());
  expect(true, "restored checkpoint loads again");

  // --- checkpoint format matrix: v3 round-trip, v2 + v1 backcompat -------
  {
    nn::Linear saved(4, 4, rng), loaded(4, 4, rng);
    nn::SaveOptions v3opts;
    v3opts.precision = util::Precision::kBf16;
    nn::save_parameters(ckpt, saved.parameters(), {{"dt_tc", 0.01}}, v3opts);
    const std::string v3bytes = read_file(ckpt);
    expect(v3bytes.compare(0, 4, "TNN3") == 0,
           "compressed checkpoint saved in TNN3 format");
    nn::load_parameters(ckpt, loaded.parameters());
    bool quantized_ok = true;
    for (index_t i = 0; i < saved.weight().value.size(); ++i) {
      const float expected = util::bf16_to_float(
          util::float_to_bf16(saved.weight().value[i]));
      quantized_ok = quantized_ok && loaded.weight().value[i] == expected;
    }
    expect(quantized_ok, "TNN3 bf16 payload round-trips RNE-quantized");

    // v2 is what the plain save above wrote ("restored checkpoint loads
    // again" is the v2 leg); v1 needs a hand-rolled pre-CRC payload.
    std::string v1 = "TNN1";
    const auto put_u32 = [&v1](std::uint32_t v) {
      v1.append(reinterpret_cast<const char*>(&v), 4);
    };
    const std::vector<nn::Parameter*> params = saved.parameters();
    put_u32(static_cast<std::uint32_t>(params.size()));
    for (const nn::Parameter* p : params) {
      put_u32(static_cast<std::uint32_t>(p->name.size()));
      v1 += p->name;
      put_u32(static_cast<std::uint32_t>(p->value.rank()));
      for (const index_t d : p->value.shape()) {
        const auto d64 = static_cast<std::int64_t>(d);
        v1.append(reinterpret_cast<const char*>(&d64), 8);
      }
      v1.append(reinterpret_cast<const char*>(p->value.data()),
                static_cast<std::size_t>(p->value.size()) * sizeof(float));
    }
    put_u32(0);  // empty metadata
    write_file(ckpt, v1);
    nn::load_parameters(ckpt, loaded.parameters());
    bool v1_ok = true;
    for (index_t i = 0; i < saved.weight().value.size(); ++i) {
      v1_ok = v1_ok && loaded.weight().value[i] == saved.weight().value[i];
    }
    expect(v1_ok, "legacy TNN1 checkpoint still loads");
  }
  std::remove(ckpt.c_str());

  // --- divergent rollout is detected and degrades to the PDE -------------
  const auto grid = static_cast<index_t>(args.get_int("grid", 32));
  const auto snapshots = static_cast<index_t>(args.get_int("snapshots", 16));
  const auto make_solver = [grid] {
    ns::NsConfig cfg;
    cfg.n = grid;
    cfg.viscosity = 1e-3;
    cfg.dt = 1e-3;
    return std::make_unique<ns::SpectralNsSolver>(cfg);
  };
  constexpr double kDtSnap = 0.01;
  core::PdePropagator inner(make_solver(), kDtSnap);
  core::DivergentPropagator divergent(inner, /*healthy_snapshots=*/2,
                                      core::DivergentPropagator::Mode::nan);
  core::PdePropagator pde(make_solver(), kDtSnap);

  core::HybridConfig hybrid;
  hybrid.fno_snapshots = 4;
  hybrid.pde_snapshots = 3;
  hybrid.guard.enabled = true;
  hybrid.guard.cooldown_snapshots = 3;
  core::HybridScheduler scheduler(divergent, pde, hybrid);

  Rng seed_rng(7);
  const auto field =
      lbm::random_vortex_velocity(grid, grid, 4.0, 1.0, seed_rng);
  core::History seed;
  core::FieldSnapshot snap;
  snap.t = 0.0;
  snap.u1 = field.u1;
  snap.u2 = field.u2;
  seed.push_back(std::move(snap));

  const core::RolloutResult result = scheduler.run(seed, snapshots);
  expect(static_cast<index_t>(result.trajectory.size()) == snapshots,
         "guarded rollout produced the full trajectory");
  expect(result.guard_trips() > 0, "guard tripped on the divergent surrogate");

  bool finite = true;
  for (const core::FieldSnapshot& s : result.trajectory) {
    for (index_t i = 0; i < s.u1.size(); ++i) {
      if (!std::isfinite(s.u1[i]) || !std::isfinite(s.u2[i])) finite = false;
    }
  }
  expect(finite, "trajectory is finite everywhere");

  bool saw_fallback = false;
  for (const std::string& producer : result.producer) {
    if (producer.find("_fallback") != std::string::npos) saw_fallback = true;
  }
  expect(saw_fallback, "PDE fallback windows recorded in producer");

  if (g_failures > 0) {
    std::printf("robust_smoke: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("robust_smoke: all checks passed\n");
  return 0;
}
