// Finite-difference gradient verification.
//
// Every analytic backward pass in this library is validated against central
// differences. Checks run in float, so tolerances are necessarily loose
// (~1e-2 relative); systematic errors (wrong adjoint, missing conjugate,
// wrong scale) show up orders of magnitude above that.
#pragma once

#include <functional>

#include "nn/module.hpp"

namespace turb::nn {

struct GradcheckResult {
  double max_rel_error = 0.0;    ///< worst relative disagreement seen
  double max_abs_error = 0.0;    ///< worst absolute disagreement seen
  index_t checked = 0;           ///< number of coordinates probed
  bool ok(double tol = 2e-2) const { return max_rel_error <= tol; }
};

/// Verify d(scalar loss)/d(input) of `module` at `x` against central
/// differences. The scalar loss is 0.5‖y − y₀‖² for a fixed random y₀, whose
/// gradient is (y − y₀). Probes `probes` randomly chosen input coordinates.
GradcheckResult gradcheck_input(Module& module, const TensorF& x,
                                index_t probes = 40, float eps = 1e-2f,
                                std::uint64_t seed = 1234);

/// Verify d(scalar loss)/dθ for every parameter of `module` (probing up to
/// `probes` coordinates per parameter).
GradcheckResult gradcheck_parameters(Module& module, const TensorF& x,
                                     index_t probes = 40, float eps = 1e-2f,
                                     std::uint64_t seed = 1234);

}  // namespace turb::nn
