#include "nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace turb::nn {

namespace {

/// 0.5‖y − y₀‖², accumulated in double.
double half_sq_diff(const TensorF& y, const TensorF& y0) {
  double acc = 0.0;
  for (index_t i = 0; i < y.size(); ++i) {
    const double d = static_cast<double>(y[i]) - y0[i];
    acc += d * d;
  }
  return 0.5 * acc;
}

TensorF loss_grad(const TensorF& y, const TensorF& y0) {
  TensorF g(y.shape());
  for (index_t i = 0; i < y.size(); ++i) g[i] = y[i] - y0[i];
  return g;
}

void update(GradcheckResult& res, double analytic, double numeric,
            double tensor_scale) {
  const double abs_err = std::abs(analytic - numeric);
  // Relative to the coordinate itself, floored by a fraction of the whole
  // gradient's magnitude: float32 central differences cannot resolve entries
  // far below the tensor's typical gradient scale, while systematic adjoint
  // bugs (missing conjugate, wrong scale) corrupt the large entries too.
  const double denom = std::max(
      {std::abs(analytic), std::abs(numeric), 0.05 * tensor_scale, 1e-4});
  res.max_abs_error = std::max(res.max_abs_error, abs_err);
  res.max_rel_error = std::max(res.max_rel_error, abs_err / denom);
  ++res.checked;
}

}  // namespace

GradcheckResult gradcheck_input(Module& module, const TensorF& x,
                                index_t probes, float eps,
                                std::uint64_t seed) {
  Rng rng(seed);
  TensorF y = module.forward(x);
  TensorF y0(y.shape());
  y0.fill_normal(rng, 0.0, 1.0);

  module.zero_grad();
  const TensorF analytic = module.backward(loss_grad(y, y0));

  GradcheckResult res;
  const double scale = analytic.max_abs();
  TensorF xp = x;
  for (index_t probe = 0; probe < std::min<index_t>(probes, x.size());
       ++probe) {
    const index_t i =
        static_cast<index_t>(rng.uniform_int(static_cast<std::uint64_t>(x.size())));
    const float orig = xp[i];
    xp[i] = orig + eps;
    const double lp = half_sq_diff(module.forward(xp), y0);
    xp[i] = orig - eps;
    const double lm = half_sq_diff(module.forward(xp), y0);
    xp[i] = orig;
    update(res, analytic[i], (lp - lm) / (2.0 * eps), scale);
  }
  return res;
}

GradcheckResult gradcheck_parameters(Module& module, const TensorF& x,
                                     index_t probes, float eps,
                                     std::uint64_t seed) {
  Rng rng(seed);
  TensorF y = module.forward(x);
  TensorF y0(y.shape());
  y0.fill_normal(rng, 0.0, 1.0);

  module.zero_grad();
  (void)module.backward(loss_grad(y, y0));

  GradcheckResult res;
  for (Parameter* p : module.parameters()) {
    const double scale = p->grad.max_abs();
    for (index_t probe = 0; probe < std::min<index_t>(probes, p->size());
         ++probe) {
      const index_t i = static_cast<index_t>(
          rng.uniform_int(static_cast<std::uint64_t>(p->size())));
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const double lp = half_sq_diff(module.forward(x), y0);
      p->value[i] = orig - eps;
      const double lm = half_sq_diff(module.forward(x), y0);
      p->value[i] = orig;
      update(res, p->grad[i], (lp - lm) / (2.0 * eps), scale);
    }
  }
  return res;
}

}  // namespace turb::nn
