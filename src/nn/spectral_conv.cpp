#include "nn/spectral_conv.hpp"

#include <cmath>
#include <vector>

#include "fft/fftnd.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace turb::nn {

namespace {

Shape weight_shape(index_t in_ch, index_t out_ch,
                   const std::vector<index_t>& n_modes) {
  Shape s{in_ch, out_ch};
  for (std::size_t d = 0; d + 1 < n_modes.size(); ++d) s.push_back(n_modes[d]);
  s.push_back(n_modes.back() / 2 + 1);
  s.push_back(2);  // real/imag
  return s;
}

/// Process-wide pruning switch (results are bitwise independent of it, so a
/// plain global — no synchronisation needed beyond what callers already do).
bool g_prune_transforms = true;

}  // namespace

void SpectralLayer::set_pruning(bool on) { g_prune_transforms = on; }

bool SpectralLayer::pruning() { return g_prune_transforms; }

SpectralLayer::SpectralLayer(index_t in_channels, index_t out_channels,
                             std::vector<index_t> n_modes, std::string name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      n_modes_(std::move(n_modes)),
      name_(std::move(name)) {
  TURB_CHECK_MSG(n_modes_.size() == 2 || n_modes_.size() == 3,
                 "SpectralConv supports rank 2 or 3");
  for (const index_t m : n_modes_) {
    TURB_CHECK_MSG(m >= 2 && m % 2 == 0, "n_modes must be even, got " << m);
  }
  const std::size_t rank = n_modes_.size();
  wdims_.resize(rank);
  for (std::size_t d = 0; d + 1 < rank; ++d) wdims_[d] = n_modes_[d];
  wdims_[rank - 1] = n_modes_.back() / 2 + 1;
  kept_modes_ = 1;
  for (const index_t m : wdims_) kept_modes_ *= m;
}

void SpectralLayer::build_mode_map(const Shape& spatial) {
  if (spatial == mapped_spatial_) return;
  const std::size_t rank = n_modes_.size();
  TURB_CHECK(spatial.size() == rank);
  for (std::size_t d = 0; d + 1 < rank; ++d) {
    TURB_CHECK_MSG(n_modes_[d] <= spatial[d],
                   name_ << ": n_modes[" << d << "]=" << n_modes_[d]
                         << " exceeds grid extent " << spatial[d]);
  }
  TURB_CHECK_MSG(n_modes_.back() <= spatial.back(),
                 name_ << ": last-axis modes exceed grid extent");

  // Spectrum extents: last axis is halved by rfft.
  Shape spec = spatial;
  spec.back() = spatial.back() / 2 + 1;
  spec_slab_ = numel(spec);
  norm_m_ = 1.0;
  for (const index_t s : spatial) norm_m_ *= static_cast<double>(s);

  // Enumerate kept-mode multi-indices in the weight's row-major order and
  // record the matching flat offset in the spectrum slab.
  spec_offsets_.assign(static_cast<std::size_t>(kept_modes_), 0);
  bin_weight_.assign(static_cast<std::size_t>(kept_modes_), 1.0f);
  const Shape spec_strides = row_major_strides(spec);

  std::vector<index_t> k(rank, 0);
  for (index_t flat = 0; flat < kept_modes_; ++flat) {
    index_t offset = 0;
    for (std::size_t d = 0; d < rank; ++d) {
      index_t s_index;
      if (d + 1 < rank) {
        // Half the modes are positive frequencies [0, m/2), half negative
        // [S - m/2, S).
        const index_t half = n_modes_[d] / 2;
        s_index = (k[d] < half) ? k[d] : spatial[d] - (n_modes_[d] - k[d]);
      } else {
        s_index = k[d];
      }
      offset += s_index * spec_strides[d];
    }
    spec_offsets_[static_cast<std::size_t>(flat)] = offset;
    // rfft-axis multiplicity: interior bins represent two Hermitian
    // coefficients of the full spectrum.
    const index_t klast = k[rank - 1];
    const bool edge = (klast == 0) || (klast == spatial.back() / 2);
    bin_weight_[static_cast<std::size_t>(flat)] = edge ? 1.0f : 2.0f;
    // Increment multi-index.
    for (std::size_t d = rank; d-- > 0;) {
      if (++k[d] < wdims_[d]) break;
      k[d] = 0;
    }
  }

  // Per-axis kept-coordinate flags for the pruned transforms: the same
  // corner-of-modes pattern as the offsets above (half positive / half
  // negative frequencies on c2c axes, leading non-negative bins on the rfft
  // axis).
  mode_mask_.assign(rank, {});
  for (std::size_t d = 0; d < rank; ++d) {
    if (d + 1 < rank) {
      std::vector<std::uint8_t> keep(static_cast<std::size_t>(spatial[d]), 0);
      const index_t half = n_modes_[d] / 2;
      for (index_t s = 0; s < half; ++s) keep[static_cast<std::size_t>(s)] = 1;
      for (index_t s = spatial[d] - half; s < spatial[d]; ++s) {
        keep[static_cast<std::size_t>(s)] = 1;
      }
      mode_mask_[d] = std::move(keep);
    } else {
      std::vector<std::uint8_t> keep(
          static_cast<std::size_t>(spec.back()), 0);
      for (index_t s = 0; s < n_modes_.back() / 2 + 1; ++s) {
        keep[static_cast<std::size_t>(s)] = 1;
      }
      mode_mask_[d] = std::move(keep);
    }
  }

  mapped_spatial_ = spatial;
}

TensorF SpectralLayer::forward(const TensorF& x) {
  TURB_TRACE_SCOPE("nn/spectral_conv_fwd");
  const std::size_t rank = n_modes_.size();
  TURB_CHECK_MSG(x.rank() == rank + 2,
                 name_ << ": expected (N, C, spatial...) input");
  TURB_CHECK(x.dim(1) == in_channels_);
  Shape spatial(x.shape().begin() + 2, x.shape().end());
  build_mode_map(spatial);
  in_shape_ = x.shape();

  const index_t batch = x.dim(0);
  // Pruned transform into the member workspace: only kept-mode coordinates
  // of x_spec_ are valid, which is all the contraction below (and the dW
  // accumulation in backward) ever reads.
  fft::rfftn_into(x, static_cast<int>(rank), x_spec_, prune_mask());

  Shape yspec_shape = x_spec_.shape();
  yspec_shape[1] = out_channels_;
  // Zero-initialised on (re)allocation; on reuse every kept offset is
  // overwritten below and the rest stays zero.
  if (y_spec_.shape() != yspec_shape) y_spec_ = Tensor<cpxf>(yspec_shape);

  const index_t K = kept_modes_;
  const float* w = dense_weight();
  const cpxf* xs = x_spec_.data();
  cpxf* ys = y_spec_.data();
  const index_t ci = in_channels_, co = out_channels_;

  parallel_for(0, batch, [&](index_t n) {
    const cpxf* xn = xs + n * ci * spec_slab_;
    cpxf* yn = ys + n * co * spec_slab_;
    for (index_t k = 0; k < K; ++k) {
      const index_t off = spec_offsets_[static_cast<std::size_t>(k)];
      for (index_t o = 0; o < co; ++o) {
        float ar = 0.0f, ai = 0.0f;
        for (index_t i = 0; i < ci; ++i) {
          // W[i, o, k]: weight layout (C_in, C_out, K, 2).
          const float* wk = w + ((i * co + o) * K + k) * 2;
          const cpxf xv = xn[i * spec_slab_ + off];
          ar += wk[0] * xv.real() - wk[1] * xv.imag();
          ai += wk[0] * xv.imag() + wk[1] * xv.real();
        }
        yn[o * spec_slab_ + off] = cpxf(ar, ai);
      }
    }
  });

  return fft::irfftn(y_spec_, static_cast<int>(rank), spatial.back(),
                     prune_mask());
}

TensorF SpectralLayer::backward(const TensorF& grad_out) {
  TURB_TRACE_SCOPE("nn/spectral_conv_bwd");
  TURB_CHECK_MSG(!in_shape_.empty(), name_ << ": backward before forward");
  const std::size_t rank = n_modes_.size();
  TURB_CHECK(grad_out.rank() == rank + 2 && grad_out.dim(1) == out_channels_);
  const index_t batch = in_shape_[0];
  const index_t ci = in_channels_, co = out_channels_;
  const index_t K = kept_modes_;

  // dŶ = rfftn(dy) ⊙ w / M (kept modes only are consumed below, so the
  // transform is pruned like the forward one).
  fft::rfftn_into(grad_out, static_cast<int>(rank), g_spec_, prune_mask());
  const float inv_m = static_cast<float>(1.0 / norm_m_);

  // dX̂ (kept modes only, zero elsewhere — zeroed on allocation, kept
  // offsets fully overwritten on reuse).
  if (dx_spec_.shape() != x_spec_.shape()) {
    dx_spec_ = Tensor<cpxf>(x_spec_.shape());
  }

  const float* w = dense_weight();
  const cpxf* gs = g_spec_.data();
  const cpxf* xs = x_spec_.data();
  cpxf* dxs = dx_spec_.data();

  // dX̂[n,i] = Σ_o conj(W[i,o]) · dŶ[n,o]  — parallel over batch.
  parallel_for(0, batch, [&](index_t n) {
    const cpxf* gn = gs + n * co * spec_slab_;
    cpxf* dxn = dxs + n * ci * spec_slab_;
    for (index_t k = 0; k < K; ++k) {
      const index_t off = spec_offsets_[static_cast<std::size_t>(k)];
      // Fold the two scale factors: dŶ gets bin_weight/M, dX̂ gets M/bin_weight
      // — they cancel along this path, so apply none here.
      for (index_t i = 0; i < ci; ++i) {
        float ar = 0.0f, ai = 0.0f;
        for (index_t o = 0; o < co; ++o) {
          const float* wk = w + ((i * co + o) * K + k) * 2;
          const cpxf gv = gn[o * spec_slab_ + off];
          // conj(W) * g
          ar += wk[0] * gv.real() + wk[1] * gv.imag();
          ai += wk[0] * gv.imag() - wk[1] * gv.real();
        }
        dxn[i * spec_slab_ + off] = cpxf(ar, ai);
      }
    }
  });

  // dW[i,o,k] += Σ_n conj(X̂[n,i,k]) · dŶ[n,o,k] · bin_weight/M.
  //
  // Batch-parallel with per-slab gradient scratch: the batch is split into a
  // fixed number of contiguous slabs (independent of the pool width — see
  // parallel_for_slabs), each slab accumulates its partial dW into private
  // scratch, and the slabs are folded in ascending slot order. That fixed
  // reduction tree makes the gradient bitwise identical at every thread
  // count; atomics on the float accumulators would not be.
  const index_t wsize = ci * co * K * 2;
  const index_t slabs = slab_count(0, batch, kGradSlabs);
  // assign() zeroes the accumulators while reusing the capacity from the
  // previous step.
  grad_scratch_.assign(static_cast<std::size_t>(slabs * wsize), 0.0f);
  std::vector<float>& scratch = grad_scratch_;
  parallel_for_slabs(0, batch, kGradSlabs,
                     [&](index_t slot, index_t nb, index_t ne) {
    float* acc = scratch.data() + slot * wsize;
    for (index_t n = nb; n < ne; ++n) {
      const cpxf* xn = xs + n * ci * spec_slab_;
      const cpxf* gn = gs + n * co * spec_slab_;
      for (index_t i = 0; i < ci; ++i) {
        for (index_t k = 0; k < K; ++k) {
          const index_t off = spec_offsets_[static_cast<std::size_t>(k)];
          const cpxf xv = xn[i * spec_slab_ + off];
          for (index_t o = 0; o < co; ++o) {
            const cpxf gv = gn[o * spec_slab_ + off];
            float* a = acc + ((i * co + o) * K + k) * 2;
            // conj(x) * g
            a[0] += xv.real() * gv.real() + xv.imag() * gv.imag();
            a[1] += xv.real() * gv.imag() - xv.imag() * gv.real();
          }
        }
      }
    }
  });
  // Fold slabs in fixed order. Each weight element is written by one task
  // only (disjoint ranges), so this inner parallelism is also deterministic.
  // Dense layers accumulate straight into their parameter gradient (the
  // historical rounding sequence); factorized layers fold into zeroed dense
  // scratch and scatter in finalize_grad().
  float* gw = dense_grad_accumulator();
  parallel_for_chunked(0, ci * co, [&](index_t pb, index_t pe) {
    for (index_t p = pb; p < pe; ++p) {
      for (index_t k = 0; k < K; ++k) {
        const float scale = bin_weight_[static_cast<std::size_t>(k)] * inv_m;
        float ar = 0.0f, ai = 0.0f;
        for (index_t s = 0; s < slabs; ++s) {
          const float* a = scratch.data() + s * wsize + (p * K + k) * 2;
          ar += a[0];
          ai += a[1];
        }
        float* wk = gw + (p * K + k) * 2;
        wk[0] += ar * scale;
        wk[1] += ai * scale;
      }
    }
  });
  finalize_grad();

  // dx = M · irfftn(dX̂ ⊙ 1/w) — combined with the 1/M ⊙ w of dŶ, the scale
  // factors cancel exactly, so dx = irfftn-adjoint path with no extra scaling:
  // dx = irfftn(dX̂) · M · (1/M) ... both factors were folded above, leaving
  // plain irfftn on the unscaled product.
  TensorF dx = fft::irfftn(dx_spec_, static_cast<int>(rank), in_shape_.back(),
                           prune_mask());
  return dx;
}

SpectralConv::SpectralConv(index_t in_channels, index_t out_channels,
                           std::vector<index_t> n_modes, Rng& rng,
                           std::string name)
    : SpectralLayer(in_channels, out_channels, std::move(n_modes),
                    std::move(name)),
      weight_(name_ + ".weight",
              weight_shape(in_channels_, out_channels_, n_modes_)) {
  // neuraloperator init: N(0, 2/(C_in + C_out)) on both components.
  const double std =
      std::sqrt(2.0 / static_cast<double>(in_channels_ + out_channels_));
  weight_.value.fill_normal(rng, 0.0, std);
}

void SpectralConv::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
}

FactorizedSpectralConv::FactorizedSpectralConv(index_t in_channels,
                                               index_t out_channels,
                                               std::vector<index_t> n_modes,
                                               Rng& rng, std::string name,
                                               FactorizedSpectralConv* share_with)
    : SpectralLayer(in_channels, out_channels, std::move(n_modes),
                    std::move(name)) {
  const std::size_t r = rank();
  // Flat kept index → per-axis index (row-major over wdims_), precomputed so
  // materialisation and gradient folding avoid per-mode div/mod.
  kidx_.assign(r, {});
  for (std::size_t d = 0; d < r; ++d) {
    kidx_[d].resize(static_cast<std::size_t>(kept_modes_));
  }
  {
    std::vector<index_t> k(r, 0);
    for (index_t flat = 0; flat < kept_modes_; ++flat) {
      for (std::size_t d = 0; d < r; ++d) {
        kidx_[d][static_cast<std::size_t>(flat)] = k[d];
      }
      for (std::size_t d = r; d-- > 0;) {
        if (++k[d] < wdims_[d]) break;
        k[d] = 0;
      }
    }
  }

  factors_.resize(r);
  if (share_with != nullptr) {
    TURB_CHECK_MSG(share_with->in_channels() == in_channels_ &&
                       share_with->out_channels() == out_channels_ &&
                       share_with->n_modes() == n_modes_,
                   name_ << ": shared factors require identical geometry");
    shared_ = true;
    for (std::size_t d = 0; d < r; ++d) {
      factors_[d] = share_with->factors_[d];
    }
    return;
  }

  // Effective per-mode weight is a product of r independent complex factors.
  // Choosing each factor component iid N(0, s²) with s = (σ²/2^{r-1})^{1/2r}
  // gives the product per-component variance σ² = 2/(C_in+C_out) — the same
  // dense neuraloperator init scale — since each complex multiply doubles
  // the accumulated component variance.
  const double sigma2 =
      2.0 / static_cast<double>(in_channels_ + out_channels_);
  const double s = std::pow(
      sigma2 / std::pow(2.0, static_cast<double>(r - 1)),
      1.0 / (2.0 * static_cast<double>(r)));
  owned_.reserve(r);
  for (std::size_t d = 0; d < r; ++d) {
    owned_.push_back(std::make_unique<Parameter>(
        name_ + ".factor" + std::to_string(d),
        Shape{in_channels_, out_channels_, wdims_[d], 2}));
    owned_.back()->value.fill_normal(rng, 0.0, s);
    factors_[d] = owned_.back().get();
  }
}

void FactorizedSpectralConv::collect_parameters(std::vector<Parameter*>& out) {
  for (auto& p : owned_) out.push_back(p.get());
}

index_t FactorizedSpectralConv::factor_parameter_count() const {
  index_t sum = 0;
  for (const index_t m : wdims_) sum += m;
  return in_channels_ * out_channels_ * sum * 2;
}

const float* FactorizedSpectralConv::dense_weight() {
  const index_t K = kept_modes_;
  const index_t pairs = in_channels_ * out_channels_;
  w_eff_.resize(static_cast<std::size_t>(pairs * K * 2));
  const std::size_t r = rank();
  const float* fv[3] = {nullptr, nullptr, nullptr};
  const index_t* ki[3] = {nullptr, nullptr, nullptr};
  index_t fm[3] = {0, 0, 0};
  for (std::size_t d = 0; d < r; ++d) {
    fv[d] = factors_[d]->value.data();
    ki[d] = kidx_[d].data();
    fm[d] = wdims_[d];
  }
  float* we = w_eff_.data();
  // Left-to-right complex product ((A₁·A₂)·A₃) — the inference engine's
  // factorized contraction composes in the identical order (in registers,
  // so engine agreement at fp32 is bounded rather than bitwise; see the
  // DESIGN.md codegen caveat).
  parallel_for_chunked(0, pairs, [&](index_t pb, index_t pe) {
    for (index_t p = pb; p < pe; ++p) {
      for (index_t k = 0; k < K; ++k) {
        const float* f0 = fv[0] + (p * fm[0] + ki[0][k]) * 2;
        float wr = f0[0], wi = f0[1];
        for (std::size_t d = 1; d < r; ++d) {
          const float* f = fv[d] + (p * fm[d] + ki[d][k]) * 2;
          const float nr = wr * f[0] - wi * f[1];
          const float ni = wr * f[1] + wi * f[0];
          wr = nr;
          wi = ni;
        }
        float* wk = we + (p * K + k) * 2;
        wk[0] = wr;
        wk[1] = wi;
      }
    }
  });
  return we;
}

float* FactorizedSpectralConv::dense_grad_accumulator() {
  dw_eff_.assign(
      static_cast<std::size_t>(in_channels_ * out_channels_ * kept_modes_ * 2),
      0.0f);
  return dw_eff_.data();
}

void FactorizedSpectralConv::finalize_grad() {
  const index_t K = kept_modes_;
  const index_t pairs = in_channels_ * out_channels_;
  const std::size_t r = rank();
  const float* dw = dw_eff_.data();
  const float* fv[3] = {nullptr, nullptr, nullptr};
  float* fg[3] = {nullptr, nullptr, nullptr};
  const index_t* ki[3] = {nullptr, nullptr, nullptr};
  index_t fm[3] = {0, 0, 0};
  for (std::size_t d = 0; d < r; ++d) {
    fv[d] = factors_[d]->value.data();
    fg[d] = factors_[d]->grad.data();
    ki[d] = kidx_[d].data();
    fm[d] = wdims_[d];
  }
  // dA_d[i,o,k_d] += Σ_{k: k_d fixed} dW[i,o,k] · conj(∏_{e≠d} A_e[i,o,k_e]).
  // Writes for a given (i,o) pair touch only that pair's factor rows, so the
  // chunked parallelism over pairs is race-free; the inner ascending-k order
  // is fixed, so the accumulation is bitwise deterministic at any thread
  // count. When factors are shared across layers, each layer's backward runs
  // this fold sequentially (Fno::backward walks layers one at a time), so
  // the shared gradient accumulates in a fixed layer order too.
  parallel_for_chunked(0, pairs, [&](index_t pb, index_t pe) {
    for (index_t p = pb; p < pe; ++p) {
      for (index_t k = 0; k < K; ++k) {
        const float gr = dw[(p * K + k) * 2];
        const float gi = dw[(p * K + k) * 2 + 1];
        float vr[3], vi[3];
        for (std::size_t d = 0; d < r; ++d) {
          const float* f = fv[d] + (p * fm[d] + ki[d][k]) * 2;
          vr[d] = f[0];
          vi[d] = f[1];
        }
        for (std::size_t d = 0; d < r; ++d) {
          float pr = 1.0f, pi = 0.0f;
          for (std::size_t e = 0; e < r; ++e) {
            if (e == d) continue;
            const float nr = pr * vr[e] - pi * vi[e];
            const float ni = pr * vi[e] + pi * vr[e];
            pr = nr;
            pi = ni;
          }
          float* g = fg[d] + (p * fm[d] + ki[d][k]) * 2;
          // g += dW · conj(prod)
          g[0] += gr * pr + gi * pi;
          g[1] += gi * pr - gr * pi;
        }
      }
    }
  });
}

}  // namespace turb::nn
