#include "nn/loss.hpp"

#include <cmath>
#include <vector>

#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace turb::nn {

namespace {

/// Slab count for the elementwise loss reductions — fixed (independent of
/// the pool width) so the partial-sum fold order, and therefore the float
/// result, is identical at every thread count.
constexpr index_t kLossSlabs = 16;

}  // namespace

LossResult mse_loss(const TensorF& pred, const TensorF& target) {
  TURB_CHECK(pred.shape() == target.shape());
  const index_t n = pred.size();
  TURB_CHECK(n > 0);
  LossResult res;
  res.grad = TensorF(pred.shape());
  const float* p = pred.data();
  const float* t = target.data();
  float* g = res.grad.data();
  const float scale = 2.0f / static_cast<float>(n);
  const index_t slabs = slab_count(0, n, kLossSlabs);
  std::vector<double> partial(static_cast<std::size_t>(slabs), 0.0);
  parallel_for_slabs(0, n, kLossSlabs,
                     [&](index_t slot, index_t ib, index_t ie) {
    double acc = 0.0;
    for (index_t i = ib; i < ie; ++i) {
      const float d = p[i] - t[i];
      acc += static_cast<double>(d) * d;
      g[i] = scale * d;
    }
    partial[static_cast<std::size_t>(slot)] = acc;
  });
  double acc = 0.0;
  for (index_t slot = 0; slot < slabs; ++slot) {
    acc += partial[static_cast<std::size_t>(slot)];
  }
  res.value = acc / static_cast<double>(n);
  return res;
}

LossResult relative_l2_loss(const TensorF& pred, const TensorF& target) {
  TURB_CHECK(pred.shape() == target.shape());
  TURB_CHECK(pred.rank() >= 1);
  const index_t batch = pred.dim(0);
  const index_t per = pred.size() / batch;
  LossResult res;
  res.grad = TensorF(pred.shape());
  const float* p = pred.data();
  const float* t = target.data();
  float* g = res.grad.data();

  // Per-sample norms and gradients are independent — parallel over the
  // batch; the scalar loss is then folded serially in sample order, so the
  // value matches the serial loop bitwise at every thread count.
  std::vector<double> ratio(static_cast<std::size_t>(batch), 0.0);
  parallel_for(0, batch, [&](index_t n) {
    const float* pn = p + n * per;
    const float* tn = t + n * per;
    double diff2 = 0.0, targ2 = 0.0;
    for (index_t i = 0; i < per; ++i) {
      const double d = static_cast<double>(pn[i]) - tn[i];
      diff2 += d * d;
      targ2 += static_cast<double>(tn[i]) * tn[i];
    }
    const double dn = std::sqrt(diff2);
    const double tn_norm = std::sqrt(std::max(targ2, 1e-30));
    ratio[static_cast<std::size_t>(n)] = dn / tn_norm;
    // dL/dpred_n = (pred-target) / (‖diff‖·‖target‖·N)
    const double denom = std::max(dn, 1e-30) * tn_norm *
                         static_cast<double>(batch);
    const float s = static_cast<float>(1.0 / denom);
    float* gn = g + n * per;
    for (index_t i = 0; i < per; ++i) {
      gn[i] = s * (pn[i] - tn[i]);
    }
  });
  double total = 0.0;
  for (index_t n = 0; n < batch; ++n) {
    total += ratio[static_cast<std::size_t>(n)];
  }
  res.value = total / static_cast<double>(batch);
  return res;
}

double relative_l2_error(const TensorF& pred, const TensorF& target) {
  TURB_CHECK(pred.shape() == target.shape());
  const index_t batch = pred.dim(0);
  const index_t per = pred.size() / batch;
  const float* p = pred.data();
  const float* t = target.data();
  std::vector<double> ratio(static_cast<std::size_t>(batch), 0.0);
  parallel_for(0, batch, [&](index_t n) {
    double diff2 = 0.0, targ2 = 0.0;
    for (index_t i = 0; i < per; ++i) {
      const double d = static_cast<double>(p[n * per + i]) - t[n * per + i];
      diff2 += d * d;
      targ2 += static_cast<double>(t[n * per + i]) * t[n * per + i];
    }
    ratio[static_cast<std::size_t>(n)] =
        std::sqrt(diff2) / std::sqrt(std::max(targ2, 1e-30));
  });
  double total = 0.0;
  for (index_t n = 0; n < batch; ++n) {
    total += ratio[static_cast<std::size_t>(n)];
  }
  return total / static_cast<double>(batch);
}

}  // namespace turb::nn
