#include "nn/loss.hpp"

#include <cmath>

#include "util/common.hpp"

namespace turb::nn {

LossResult mse_loss(const TensorF& pred, const TensorF& target) {
  TURB_CHECK(pred.shape() == target.shape());
  const index_t n = pred.size();
  TURB_CHECK(n > 0);
  LossResult res;
  res.grad = TensorF(pred.shape());
  double acc = 0.0;
  const float* p = pred.data();
  const float* t = target.data();
  float* g = res.grad.data();
  const float scale = 2.0f / static_cast<float>(n);
  for (index_t i = 0; i < n; ++i) {
    const float d = p[i] - t[i];
    acc += static_cast<double>(d) * d;
    g[i] = scale * d;
  }
  res.value = acc / static_cast<double>(n);
  return res;
}

LossResult relative_l2_loss(const TensorF& pred, const TensorF& target) {
  TURB_CHECK(pred.shape() == target.shape());
  TURB_CHECK(pred.rank() >= 1);
  const index_t batch = pred.dim(0);
  const index_t per = pred.size() / batch;
  LossResult res;
  res.grad = TensorF(pred.shape());
  const float* p = pred.data();
  const float* t = target.data();
  float* g = res.grad.data();

  double total = 0.0;
  for (index_t n = 0; n < batch; ++n) {
    const float* pn = p + n * per;
    const float* tn = t + n * per;
    double diff2 = 0.0, targ2 = 0.0;
    for (index_t i = 0; i < per; ++i) {
      const double d = static_cast<double>(pn[i]) - tn[i];
      diff2 += d * d;
      targ2 += static_cast<double>(tn[i]) * tn[i];
    }
    const double dn = std::sqrt(diff2);
    const double tn_norm = std::sqrt(std::max(targ2, 1e-30));
    total += dn / tn_norm;
    // dL/dpred_n = (pred-target) / (‖diff‖·‖target‖·N)
    const double denom = std::max(dn, 1e-30) * tn_norm *
                         static_cast<double>(batch);
    const float s = static_cast<float>(1.0 / denom);
    float* gn = g + n * per;
    for (index_t i = 0; i < per; ++i) {
      gn[i] = s * (pn[i] - tn[i]);
    }
  }
  res.value = total / static_cast<double>(batch);
  return res;
}

double relative_l2_error(const TensorF& pred, const TensorF& target) {
  TURB_CHECK(pred.shape() == target.shape());
  const index_t batch = pred.dim(0);
  const index_t per = pred.size() / batch;
  const float* p = pred.data();
  const float* t = target.data();
  double total = 0.0;
  for (index_t n = 0; n < batch; ++n) {
    double diff2 = 0.0, targ2 = 0.0;
    for (index_t i = 0; i < per; ++i) {
      const double d = static_cast<double>(p[n * per + i]) - t[n * per + i];
      diff2 += d * d;
      targ2 += static_cast<double>(t[n * per + i]) * t[n * per + i];
    }
    total += std::sqrt(diff2) / std::sqrt(std::max(targ2, 1e-30));
  }
  return total / static_cast<double>(batch);
}

}  // namespace turb::nn
