// Spectral convolution — the core FNO layer.
//
// Forward:  y = irfftn( W ⊙ rfftn(x) )   restricted to a retained corner of
// Fourier modes. The complex weight has shape
//   (C_in, C_out, m₁, …, m_{r-1}, m_r/2+1, 2)
// where r is the spatial rank (2 or 3), m_d = n_modes[d]; non-last axes keep
// m_d modes split half positive / half negative frequency, the last (rfft)
// axis keeps m_r/2+1 non-negative frequencies. This is the modern
// `neuraloperator` SpectralConv convention — chosen because it reproduces all
// twelve parameter counts of the paper's Table I exactly.
//
// Backward: hand-derived adjoint. With M = ∏ transformed extents and w the
// per-bin multiplicity (2 for interior rfft-axis bins, 1 for DC/Nyquist):
//   dŶ = rfftn(dy) ⊙ w / M
//   dX̂ = Wᴴ dŶ           (conjugate transpose over channels, kept modes only)
//   dW = conj(X̂) dŶᵀ      (accumulated over batch)
//   dx = M · irfftn(dX̂ ⊙ 1/w)
// Each identity is validated by finite-difference gradchecks in the tests.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "fft/fftnd.hpp"
#include "nn/module.hpp"
#include "util/rng.hpp"

namespace turb::nn {

class SpectralConv : public Module {
 public:
  SpectralConv(index_t in_channels, index_t out_channels,
               std::vector<index_t> n_modes, Rng& rng,
               std::string name = "spectral_conv");

  /// Globally enable/disable mode-pruned FFTs (default on). The results are
  /// bitwise identical either way — pruning only skips transform lines whose
  /// outputs are never read (forward) or whose inputs are exactly zero
  /// (inverse) — so this switch exists for baseline measurements
  /// (bench_perf_train times both settings).
  static void set_pruning(bool on);
  [[nodiscard]] static bool pruning();

  TensorF forward(const TensorF& x) override;
  TensorF backward(const TensorF& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] index_t in_channels() const { return in_channels_; }
  [[nodiscard]] index_t out_channels() const { return out_channels_; }
  [[nodiscard]] const std::vector<index_t>& n_modes() const {
    return n_modes_;
  }
  [[nodiscard]] Parameter& weight() { return weight_; }

  /// Retained-mode count K = m₁·…·m_{r-1}·(m_r/2+1).
  [[nodiscard]] index_t kept_modes() const { return kept_modes_; }

  /// (Re)build the mode map for a spatial shape and expose it, so the
  /// inference engine can drive the identical pruned-FFT + kept-mode
  /// contraction out of its own arena. Idempotent per shape.
  void ensure_mode_map(const Shape& spatial) {
    if (spatial != mapped_spatial_) build_mode_map(spatial);
  }
  [[nodiscard]] const std::vector<index_t>& spec_offsets() const {
    return spec_offsets_;
  }
  [[nodiscard]] index_t spec_slab() const { return spec_slab_; }
  [[nodiscard]] const fft::ModeMask& mode_mask() const { return mode_mask_; }

 private:
  using cpxf = std::complex<float>;

  /// (Re)build the kept-mode → spectrum-offset map for a spatial shape.
  void build_mode_map(const Shape& spatial);

  index_t in_channels_;
  index_t out_channels_;
  std::vector<index_t> n_modes_;
  index_t kept_modes_;
  std::string name_;
  Parameter weight_;

  /// Mask to pass to the fft entry points (nullptr when pruning is off).
  [[nodiscard]] const fft::ModeMask* prune_mask() const {
    return pruning() ? &mode_mask_ : nullptr;
  }

  // Mode map state (rebuilt when the spatial shape changes — FNO is
  // resolution-agnostic, so the same weights serve any grid ≥ the modes).
  Shape mapped_spatial_;
  std::vector<index_t> spec_offsets_;  // per kept mode: offset inside a slab
  std::vector<float> bin_weight_;      // per kept mode: 1 or 2 (rfft edge/interior)
  index_t spec_slab_ = 0;              // spectrum elements per (n, c) slab
  double norm_m_ = 1.0;                // ∏ spatial extents
  fft::ModeMask mode_mask_;            // per-axis kept-coordinate flags

  // Cached activations and reused spectrum workspaces. y_spec_ / dx_spec_
  // rely on an invariant: they are zero-initialised on (re)allocation and
  // only ever written at kept-mode offsets, which the contraction loops
  // fully overwrite on every call — so the zeros outside the kept set never
  // need refreshing.
  Shape in_shape_;
  Tensor<cpxf> x_spec_;   // rfftn(x), kept for dW
  Tensor<cpxf> y_spec_;   // forward output spectrum
  Tensor<cpxf> g_spec_;   // backward: rfftn(grad_out)
  Tensor<cpxf> dx_spec_;  // backward: dX̂
  std::vector<float> grad_scratch_;  // per-slab dW partials
};

}  // namespace turb::nn
