// Spectral convolution — the core FNO layer — behind a common interface
// with two weight parameterisations:
//
//   * SpectralConv: dense per-mode complex weight (C_in, C_out, K) — the
//     modern `neuraloperator` convention (reproduces the paper's Table I
//     parameter counts exactly).
//   * FactorizedSpectralConv: F-FNO-style separable per-axis complex
//     factors (Tran et al., arXiv 2111.13802) with an optional
//     shared-across-layers mode. The effective per-mode weight is the
//     product of per-axis factors,
//       W[i, o, (k₁, …, k_r)] = A₁[i, o, k₁] · … · A_r[i, o, k_r],
//     which cuts the parameter count from C_in·C_out·∏m_d to
//     C_in·C_out·Σm_d complex values — the factors stay L2-resident at
//     paper-scale mode counts where the dense weight does not.
//
// Forward:  y = irfftn( W ⊙ rfftn(x) )   restricted to a retained corner of
// Fourier modes. The effective complex weight has shape
//   (C_in, C_out, m₁, …, m_{r-1}, m_r/2+1, 2)
// where r is the spatial rank (2 or 3), m_d = n_modes[d]; non-last axes keep
// m_d modes split half positive / half negative frequency, the last (rfft)
// axis keeps m_r/2+1 non-negative frequencies.
//
// Backward: hand-derived adjoint. With M = ∏ transformed extents and w the
// per-bin multiplicity (2 for interior rfft-axis bins, 1 for DC/Nyquist):
//   dŶ = rfftn(dy) ⊙ w / M
//   dX̂ = Wᴴ dŶ           (conjugate transpose over channels, kept modes only)
//   dW = conj(X̂) dŶᵀ      (accumulated over batch)
//   dx = M · irfftn(dX̂ ⊙ 1/w)
// The factorized layer additionally applies the product chain rule
//   dA_d[k_d] = Σ_{k: k_d fixed} dW[k] · conj(∏_{e≠d} A_e[k_e])
// (all factors are holomorphic in each A_d, so the complex chain rule takes
// this conjugate form). Each identity is validated by finite-difference
// gradchecks in the tests.
#pragma once

#include <complex>
#include <memory>
#include <string>
#include <vector>

#include "fft/fftnd.hpp"
#include "nn/module.hpp"
#include "util/rng.hpp"

namespace turb::nn {

/// Weight parameterisation of a spectral layer — the inference engine
/// branches on this to pick the matching prepacked layout.
enum class SpectralKind { kDense, kFactorized };

/// Common machinery of both spectral layers: the kept-mode map, the pruned
/// rfftn/irfftn transforms, and the kept-mode contraction over an effective
/// dense (C_in, C_out, K, 2) weight view supplied by the subclass. The
/// forward/backward arithmetic lives here once, so both parameterisations
/// share the identical per-element operation sequence (the bitwise
/// determinism contract covers them equally).
class SpectralLayer : public Module {
 public:
  SpectralLayer(index_t in_channels, index_t out_channels,
                std::vector<index_t> n_modes, std::string name);

  /// Globally enable/disable mode-pruned FFTs (default on). The results are
  /// bitwise identical either way — pruning only skips transform lines whose
  /// outputs are never read (forward) or whose inputs are exactly zero
  /// (inverse) — so this switch exists for baseline measurements
  /// (bench_perf_train times both settings).
  static void set_pruning(bool on);
  [[nodiscard]] static bool pruning();

  [[nodiscard]] virtual SpectralKind kind() const = 0;

  TensorF forward(const TensorF& x) final;
  TensorF backward(const TensorF& grad_out) final;
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] index_t in_channels() const { return in_channels_; }
  [[nodiscard]] index_t out_channels() const { return out_channels_; }
  [[nodiscard]] const std::vector<index_t>& n_modes() const {
    return n_modes_;
  }

  /// Retained-mode count K = m₁·…·m_{r-1}·(m_r/2+1).
  [[nodiscard]] index_t kept_modes() const { return kept_modes_; }

  /// Per-axis kept extents (m_d for c2c axes, m_r/2+1 for the rfft axis);
  /// the flat kept-mode index enumerates these row-major.
  [[nodiscard]] const std::vector<index_t>& axis_kept() const {
    return wdims_;
  }

  /// (Re)build the mode map for a spatial shape and expose it, so the
  /// inference engine can drive the identical pruned-FFT + kept-mode
  /// contraction out of its own arena. Idempotent per shape.
  void ensure_mode_map(const Shape& spatial) {
    if (spatial != mapped_spatial_) build_mode_map(spatial);
  }
  [[nodiscard]] const std::vector<index_t>& spec_offsets() const {
    return spec_offsets_;
  }
  [[nodiscard]] index_t spec_slab() const { return spec_slab_; }
  [[nodiscard]] const fft::ModeMask& mode_mask() const { return mode_mask_; }

 protected:
  using cpxf = std::complex<float>;

  /// Effective dense weight, layout (C_in, C_out, K, 2). Called once at the
  /// top of forward() and backward(); factorized layers re-materialise the
  /// per-axis product here, dense layers return the parameter directly.
  [[nodiscard]] virtual const float* dense_weight() = 0;

  /// Buffer the deterministic slab fold accumulates dW into (+=, layout as
  /// dense_weight). Dense layers hand out their parameter gradient so the
  /// fold writes it directly (the historical rounding sequence); factorized
  /// layers hand out a zeroed scratch buffer. Called once per backward(),
  /// immediately before the fold.
  [[nodiscard]] virtual float* dense_grad_accumulator() = 0;

  /// Runs after the dense dW fold; factorized layers scatter the dense
  /// gradient into the per-axis factor gradients here.
  virtual void finalize_grad() {}

  index_t in_channels_;
  index_t out_channels_;
  std::vector<index_t> n_modes_;
  index_t kept_modes_;
  std::vector<index_t> wdims_;  // per-axis kept extents
  std::string name_;

 private:
  /// Mask to pass to the fft entry points (nullptr when pruning is off).
  [[nodiscard]] const fft::ModeMask* prune_mask() const {
    return pruning() ? &mode_mask_ : nullptr;
  }

  /// (Re)build the kept-mode → spectrum-offset map for a spatial shape.
  void build_mode_map(const Shape& spatial);

  // Mode map state (rebuilt when the spatial shape changes — FNO is
  // resolution-agnostic, so the same weights serve any grid ≥ the modes).
  Shape mapped_spatial_;
  std::vector<index_t> spec_offsets_;  // per kept mode: offset inside a slab
  std::vector<float> bin_weight_;      // per kept mode: 1 or 2 (rfft edge/interior)
  index_t spec_slab_ = 0;              // spectrum elements per (n, c) slab
  double norm_m_ = 1.0;                // ∏ spatial extents
  fft::ModeMask mode_mask_;            // per-axis kept-coordinate flags

  // Cached activations and reused spectrum workspaces. y_spec_ / dx_spec_
  // rely on an invariant: they are zero-initialised on (re)allocation and
  // only ever written at kept-mode offsets, which the contraction loops
  // fully overwrite on every call — so the zeros outside the kept set never
  // need refreshing.
  Shape in_shape_;
  Tensor<cpxf> x_spec_;   // rfftn(x), kept for dW
  Tensor<cpxf> y_spec_;   // forward output spectrum
  Tensor<cpxf> g_spec_;   // backward: rfftn(grad_out)
  Tensor<cpxf> dx_spec_;  // backward: dX̂
  std::vector<float> grad_scratch_;  // per-slab dW partials
};

/// Dense per-mode weight — the original SpectralConv.
class SpectralConv final : public SpectralLayer {
 public:
  SpectralConv(index_t in_channels, index_t out_channels,
               std::vector<index_t> n_modes, Rng& rng,
               std::string name = "spectral_conv");

  [[nodiscard]] SpectralKind kind() const override {
    return SpectralKind::kDense;
  }
  void collect_parameters(std::vector<Parameter*>& out) override;
  [[nodiscard]] Parameter& weight() { return weight_; }

 protected:
  const float* dense_weight() override { return weight_.value.data(); }
  float* dense_grad_accumulator() override { return weight_.grad.data(); }

 private:
  Parameter weight_;
};

/// F-FNO separable per-axis factors. Each factor has shape
/// (C_in, C_out, m_d_kept, 2); the effective dense weight is materialised
/// per forward/backward call (cheap next to the transforms). With
/// `share_with` set, this layer aliases the other layer's factor parameters
/// instead of owning its own (F-FNO weight sharing) — only the owning layer
/// reports them via collect_parameters, and gradients from every sharing
/// layer accumulate into the shared buffers in backward order.
class FactorizedSpectralConv final : public SpectralLayer {
 public:
  FactorizedSpectralConv(index_t in_channels, index_t out_channels,
                         std::vector<index_t> n_modes, Rng& rng,
                         std::string name = "factorized_spectral_conv",
                         FactorizedSpectralConv* share_with = nullptr);

  [[nodiscard]] SpectralKind kind() const override {
    return SpectralKind::kFactorized;
  }
  void collect_parameters(std::vector<Parameter*>& out) override;

  [[nodiscard]] std::size_t rank() const { return n_modes_.size(); }
  [[nodiscard]] bool shares_factors() const { return shared_; }
  /// Factor parameter for spatial axis d (the owning layer's when shared).
  [[nodiscard]] Parameter& factor(std::size_t d) { return *factors_[d]; }
  [[nodiscard]] const Parameter& factor(std::size_t d) const {
    return *factors_[d];
  }

  /// Trainable parameters of one (non-shared) layer:
  /// C_in·C_out·(Σ_d kept_d)·2.
  [[nodiscard]] index_t factor_parameter_count() const;

 protected:
  const float* dense_weight() override;
  float* dense_grad_accumulator() override;
  void finalize_grad() override;

 private:
  std::vector<std::unique_ptr<Parameter>> owned_;  // empty when sharing
  std::vector<Parameter*> factors_;                // size rank
  bool shared_ = false;
  std::vector<std::vector<index_t>> kidx_;  // [axis][flat k] → axis index
  std::vector<float> w_eff_;   // materialised dense weight (C_in,C_out,K,2)
  std::vector<float> dw_eff_;  // dense gradient scratch, zeroed per backward
};

}  // namespace turb::nn
