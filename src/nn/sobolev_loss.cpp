#include "nn/sobolev_loss.hpp"

#include <cmath>

#include "fft/fftnd.hpp"

namespace turb::nn {

namespace {

using cpxf = std::complex<float>;

double signed_freq(index_t i, index_t n) {
  return (i <= n / 2) ? static_cast<double>(i)
                      : static_cast<double>(i) - static_cast<double>(n);
}

/// Weighted spectral energy Σ_k m_k w_k |f̂_k|² / M of one (H, W) channel,
/// and optionally the physical-space image of ΛᵀΛ f (for the gradient).
double weighted_energy(const float* f, index_t h, index_t w, double s,
                       TensorF* lambda2_f) {
  TensorF field({h, w});
  std::copy_n(f, h * w, field.data());
  Tensor<cpxf> spec = fft::rfftn(field, 2);
  const double inv_m = 1.0 / static_cast<double>(h * w);
  double energy = 0.0;
  for (index_t iy = 0; iy < h; ++iy) {
    const double ky = signed_freq(iy, h);
    for (index_t ix = 0; ix < w / 2 + 1; ++ix) {
      const double kx = static_cast<double>(ix);
      const double weight = 1.0 + s * (kx * kx + ky * ky);
      const double mult = (ix == 0 || 2 * ix == w) ? 1.0 : 2.0;
      energy += mult * weight * std::norm(spec(iy, ix)) * inv_m;
      if (lambda2_f != nullptr) {
        spec(iy, ix) *= static_cast<float>(weight);
      }
    }
  }
  if (lambda2_f != nullptr) {
    *lambda2_f = fft::irfftn(spec, 2, w);
  }
  return energy;
}

void check_inputs(const TensorF& pred, const TensorF& target) {
  TURB_CHECK(pred.shape() == target.shape());
  TURB_CHECK_MSG(pred.rank() == 4, "sobolev loss expects (N, C, H, W)");
}

}  // namespace

LossResult sobolev_loss(const TensorF& pred, const TensorF& target,
                        double s) {
  check_inputs(pred, target);
  TURB_CHECK(s >= 0.0);
  const index_t batch = pred.dim(0);
  const index_t channels = pred.dim(1);
  const index_t h = pred.dim(2);
  const index_t w = pred.dim(3);
  const index_t frame = h * w;

  LossResult res;
  res.grad = TensorF(pred.shape());
  double total = 0.0;
  std::vector<float> diff(static_cast<std::size_t>(frame));
  for (index_t n = 0; n < batch; ++n) {
    double num2 = 0.0, den2 = 0.0;
    std::vector<TensorF> lambda2(static_cast<std::size_t>(channels));
    for (index_t c = 0; c < channels; ++c) {
      const float* p = pred.data() + (n * channels + c) * frame;
      const float* t = target.data() + (n * channels + c) * frame;
      for (index_t i = 0; i < frame; ++i) diff[static_cast<std::size_t>(i)] = p[i] - t[i];
      num2 += weighted_energy(diff.data(), h, w, s,
                              &lambda2[static_cast<std::size_t>(c)]);
      den2 += weighted_energy(t, h, w, s, nullptr);
    }
    const double num = std::sqrt(std::max(num2, 1e-30));
    const double den = std::sqrt(std::max(den2, 1e-30));
    total += num / den;
    const double scale = 1.0 / (num * den * static_cast<double>(batch));
    for (index_t c = 0; c < channels; ++c) {
      float* g = res.grad.data() + (n * channels + c) * frame;
      const TensorF& l2f = lambda2[static_cast<std::size_t>(c)];
      for (index_t i = 0; i < frame; ++i) {
        g[i] = static_cast<float>(l2f[i] * scale);
      }
    }
  }
  res.value = total / static_cast<double>(batch);
  return res;
}

double sobolev_error(const TensorF& pred, const TensorF& target, double s) {
  check_inputs(pred, target);
  const index_t batch = pred.dim(0);
  const index_t channels = pred.dim(1);
  const index_t h = pred.dim(2);
  const index_t w = pred.dim(3);
  const index_t frame = h * w;
  std::vector<float> diff(static_cast<std::size_t>(frame));
  double total = 0.0;
  for (index_t n = 0; n < batch; ++n) {
    double num2 = 0.0, den2 = 0.0;
    for (index_t c = 0; c < channels; ++c) {
      const float* p = pred.data() + (n * channels + c) * frame;
      const float* t = target.data() + (n * channels + c) * frame;
      for (index_t i = 0; i < frame; ++i) diff[static_cast<std::size_t>(i)] = p[i] - t[i];
      num2 += weighted_energy(diff.data(), h, w, s, nullptr);
      den2 += weighted_energy(t, h, w, s, nullptr);
    }
    total += std::sqrt(std::max(num2, 1e-30)) /
             std::sqrt(std::max(den2, 1e-30));
  }
  return total / static_cast<double>(batch);
}

}  // namespace turb::nn
