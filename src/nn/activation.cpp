#include "nn/activation.hpp"

#include <cmath>
#include <numbers>

#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace turb::nn {

TensorF Gelu::forward(const TensorF& x) {
  TURB_TRACE_SCOPE("nn/gelu_fwd");
  input_ = x;
  TensorF y(x.shape());
  const float* in = x.data();
  float* out = y.data();
  parallel_for_chunked(0, x.size(), [&](index_t b, index_t e) {
    constexpr float inv_sqrt2 = 0.70710678118654752f;
    for (index_t i = b; i < e; ++i) {
      const float v = in[i];
      out[i] = 0.5f * v * (1.0f + std::erf(v * inv_sqrt2));
    }
  });
  return y;
}

TensorF Gelu::backward(const TensorF& grad_out) {
  TURB_TRACE_SCOPE("nn/gelu_bwd");
  TURB_CHECK(grad_out.size() == input_.size());
  TensorF grad_in(input_.shape());
  const float* in = input_.data();
  const float* g = grad_out.data();
  float* out = grad_in.data();
  parallel_for_chunked(0, input_.size(), [&](index_t b, index_t e) {
    constexpr float inv_sqrt2 = 0.70710678118654752f;
    constexpr float inv_sqrt2pi = 0.39894228040143268f;
    for (index_t i = b; i < e; ++i) {
      const float v = in[i];
      const float phi = std::exp(-0.5f * v * v) * inv_sqrt2pi;   // pdf
      const float cdf = 0.5f * (1.0f + std::erf(v * inv_sqrt2));  // cdf
      out[i] = g[i] * (cdf + v * phi);
    }
  });
  return grad_in;
}

}  // namespace turb::nn
