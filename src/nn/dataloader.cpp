#include "nn/dataloader.hpp"

#include <algorithm>
#include <numeric>

#include "util/common.hpp"

namespace turb::nn {

DataLoader::DataLoader(TensorF inputs, TensorF targets, index_t batch_size,
                       bool shuffle, std::uint64_t seed)
    : inputs_(std::move(inputs)),
      targets_(std::move(targets)),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed) {
  TURB_CHECK(inputs_.rank() >= 1 && targets_.rank() >= 1);
  TURB_CHECK_MSG(inputs_.dim(0) == targets_.dim(0),
                 "inputs/targets sample counts differ");
  TURB_CHECK(batch_size_ >= 1);
  order_.resize(static_cast<std::size_t>(inputs_.dim(0)));
  std::iota(order_.begin(), order_.end(), index_t{0});
  start_epoch();
}

void DataLoader::start_epoch() {
  cursor_ = 0;
  if (shuffle_) {
    // Fisher–Yates with our deterministic RNG.
    for (std::size_t i = order_.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(rng_.uniform_int(i));
      std::swap(order_[i - 1], order_[j]);
    }
  }
}

bool DataLoader::next(Batch& out) {
  const index_t n = num_samples();
  if (cursor_ >= n) return false;
  const index_t count = std::min(batch_size_, n - cursor_);

  Shape xs = inputs_.shape();
  Shape ys = targets_.shape();
  xs[0] = count;
  ys[0] = count;
  out.x = TensorF(xs);
  out.y = TensorF(ys);
  const index_t x_per = inputs_.size() / n;
  const index_t y_per = targets_.size() / n;
  for (index_t b = 0; b < count; ++b) {
    const index_t src = order_[static_cast<std::size_t>(cursor_ + b)];
    std::copy_n(inputs_.data() + src * x_per, x_per, out.x.data() + b * x_per);
    std::copy_n(targets_.data() + src * y_per, y_per,
                out.y.data() + b * y_per);
  }
  cursor_ += count;
  return true;
}

}  // namespace turb::nn
