// Trainable parameter: value and gradient buffers of identical shape.
#pragma once

#include <string>
#include <utility>

#include "tensor/tensor.hpp"

namespace turb::nn {

/// A named trainable tensor. Gradients are accumulated (+=) by backward
/// passes and cleared by Optimizer::zero_grad(). Complex-valued weights
/// (spectral convolutions) are stored with a trailing real/imag axis of
/// extent 2 so optimizers can treat every parameter as a flat float array.
struct Parameter {
  Parameter() = default;
  Parameter(std::string name_, Shape shape)
      : name(std::move(name_)), value(shape), grad(std::move(shape)) {}

  std::string name;
  TensorF value;
  TensorF grad;

  [[nodiscard]] index_t size() const { return value.size(); }
};

}  // namespace turb::nn
