// Training losses.
#pragma once

#include <utility>

#include "tensor/tensor.hpp"

namespace turb::nn {

/// Loss result: scalar value plus gradient w.r.t. the prediction.
struct LossResult {
  double value = 0.0;
  TensorF grad;
};

/// Mean squared error over all elements.
LossResult mse_loss(const TensorF& pred, const TensorF& target);

/// Relative L2 loss averaged over the batch (the standard FNO training
/// loss, `LpLoss(p=2)` of the reference implementation):
///   L = (1/N) Σ_n ‖pred_n − target_n‖₂ / ‖target_n‖₂
LossResult relative_l2_loss(const TensorF& pred, const TensorF& target);

/// Batch-averaged relative L2 *metric* (no gradient) — the error the paper's
/// figures report.
double relative_l2_error(const TensorF& pred, const TensorF& target);

}  // namespace turb::nn
