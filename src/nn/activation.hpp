// Pointwise activation layers.
#pragma once

#include <string>

#include "nn/module.hpp"

namespace turb::nn {

/// Exact (erf-based) GELU, matching PyTorch's default:
///   gelu(x) = x · Φ(x) = x/2 · (1 + erf(x/√2))
class Gelu : public Module {
 public:
  explicit Gelu(std::string name = "gelu") : name_(std::move(name)) {}

  TensorF forward(const TensorF& x) override;
  TensorF backward(const TensorF& grad_out) override;
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::string name_;
  TensorF input_;
};

/// Identity layer (placeholder in configurable stacks).
class Identity : public Module {
 public:
  TensorF forward(const TensorF& x) override { return x; }
  TensorF backward(const TensorF& g) override { return g; }
  [[nodiscard]] std::string name() const override { return "identity"; }
};

}  // namespace turb::nn
