// Binary (de)serialisation of model parameters.
//
// Format "TNN1": little-endian; header, then per parameter: name length +
// bytes, rank, extents, float32 payload. Loading matches parameters by name
// and validates shapes, so a checkpoint survives refactors that reorder
// layers but not ones that rename or resize them.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nn/parameter.hpp"

namespace turb::nn {

/// Optional scalar metadata stored alongside the weights (normaliser
/// statistics, snapshot cadence, config hashes, …).
using Metadata = std::map<std::string, double>;

/// Save parameters (and metadata) to `path`. Throws CheckError on failure.
void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params,
                     const Metadata& metadata = {});

/// Load into existing parameters (matched by name, shape-checked). When
/// `metadata` is non-null it receives the stored key/value pairs.
void load_parameters(const std::string& path,
                     const std::vector<Parameter*>& params,
                     Metadata* metadata = nullptr);

}  // namespace turb::nn
