// Binary (de)serialisation of model parameters.
//
// Format "TNN2" (default write): little-endian; magic, then per parameter:
// name length + bytes, rank, extents, float32 payload; then scalar metadata;
// then a CRC-32 of everything between the magic and the checksum. Writes go
// through a tmp-file + rename (util::AtomicFileWriter), so a crash mid-save
// never leaves a plausible-looking truncated checkpoint at the final path.
//
// Format "TNN3" (written when SaveOptions are passed): identical framing,
// plus one dtype byte per parameter between the extents and the payload
// (0 = fp32, 1 = bf16, 2 = fp16) and the payload stored in that dtype —
// bf16/fp16 checkpoints are half the size and deserve the same CRC + atomic
// protection as fp32 ones. Factorized-FNO checkpoints need nothing special:
// their per-axis factors are ordinary named parameters.
//
// Loading accepts TNN3, TNN2, and the legacy "TNN1" (TNN2 layout, no CRC);
// compressed payloads are widened to fp32 on load. Every header field is
// bounds-validated against the bytes actually present before any
// allocation, duplicate parameter entries are rejected, and the model is
// only written after the whole file — including the CRC — has been verified
// (strong exception guarantee). Parameters are matched by name and
// shape-checked, so a checkpoint survives refactors that reorder layers but
// not ones that rename or resize them. Rejected-as-corrupt loads increment
// the `robust/corrupt_rejected` counter.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nn/parameter.hpp"
#include "util/precision.hpp"

namespace turb::nn {

/// Optional scalar metadata stored alongside the weights (normaliser
/// statistics, snapshot cadence, config hashes, …).
using Metadata = std::map<std::string, double>;

/// Checkpoint write options. Passing these (even at fp32) selects the TNN3
/// format with per-parameter dtype tags.
struct SaveOptions {
  util::Precision precision = util::Precision::kFp32;
};

/// Save parameters (and metadata) to `path`. Throws CheckError on failure.
void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params,
                     const Metadata& metadata = {});

/// TNN3 variant: store payloads at `options.precision` (fp32 values are
/// round-tripped through that precision on load — the error-bounded serving
/// contract applies, see DESIGN.md "Precision tiers").
void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params,
                     const Metadata& metadata, const SaveOptions& options);

/// Load into existing parameters (matched by name, shape-checked). When
/// `metadata` is non-null it receives the stored key/value pairs.
void load_parameters(const std::string& path,
                     const std::vector<Parameter*>& params,
                     Metadata* metadata = nullptr);

}  // namespace turb::nn
