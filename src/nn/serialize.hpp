// Binary (de)serialisation of model parameters.
//
// Format "TNN2" (written): little-endian; magic, then per parameter: name
// length + bytes, rank, extents, float32 payload; then scalar metadata; then
// a CRC-32 of everything between the magic and the checksum. Writes go
// through a tmp-file + rename (util::AtomicFileWriter), so a crash mid-save
// never leaves a plausible-looking truncated checkpoint at the final path.
//
// Loading accepts both TNN2 and the legacy "TNN1" (same layout, no CRC).
// Every header field is bounds-validated against the bytes actually present
// before any allocation, duplicate parameter entries are rejected, and the
// model is only written after the whole file — including the CRC — has been
// verified (strong exception guarantee). Parameters are matched by name and
// shape-checked, so a checkpoint survives refactors that reorder layers but
// not ones that rename or resize them. Rejected-as-corrupt loads increment
// the `robust/corrupt_rejected` counter.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nn/parameter.hpp"

namespace turb::nn {

/// Optional scalar metadata stored alongside the weights (normaliser
/// statistics, snapshot cadence, config hashes, …).
using Metadata = std::map<std::string, double>;

/// Save parameters (and metadata) to `path`. Throws CheckError on failure.
void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params,
                     const Metadata& metadata = {});

/// Load into existing parameters (matched by name, shape-checked). When
/// `metadata` is non-null it receives the stored key/value pairs.
void load_parameters(const std::string& path,
                     const std::vector<Parameter*>& params,
                     Metadata* metadata = nullptr);

}  // namespace turb::nn
