#include "nn/linear.hpp"

#include <cmath>
#include <vector>

#include "obs/obs.hpp"
#include "tensor/gemm.hpp"
#include "util/thread_pool.hpp"

namespace turb::nn {

namespace {

/// Spatial extent: product of dims after (N, C).
index_t spatial_size(const Shape& shape) {
  TURB_CHECK_MSG(shape.size() >= 2, "linear input must be (N, C, ...)");
  index_t s = 1;
  for (std::size_t i = 2; i < shape.size(); ++i) s *= shape[i];
  return s;
}

}  // namespace

Linear::Linear(index_t in_channels, index_t out_channels, Rng& rng, bool bias,
               std::string name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      has_bias_(bias),
      name_(std::move(name)),
      weight_(name_ + ".weight", {out_channels, in_channels}) {
  TURB_CHECK(in_channels >= 1 && out_channels >= 1);
  // PyTorch nn.Linear default: U(-k, k) with k = 1/sqrt(fan_in).
  const double k = 1.0 / std::sqrt(static_cast<double>(in_channels));
  weight_.value.fill_uniform(rng, -k, k);
  if (has_bias_) {
    bias_ = Parameter(name_ + ".bias", {out_channels});
    bias_.value.fill_uniform(rng, -k, k);
  }
}

TensorF Linear::forward(const TensorF& x) {
  TURB_TRACE_SCOPE("nn/linear_fwd");
  TURB_CHECK_MSG(x.rank() >= 2 && x.dim(1) == in_channels_,
                 name_ << ": expected channel dim " << in_channels_ << ", got "
                       << shape_to_string(x.shape()));
  input_ = x;
  const index_t batch = x.dim(0);
  const index_t s = spatial_size(x.shape());

  Shape out_shape = x.shape();
  out_shape[1] = out_channels_;
  TensorF y(out_shape);

  const float* w = weight_.value.data();
  parallel_for(0, batch, [&](index_t n) {
    const float* xn = x.data() + n * in_channels_ * s;
    float* yn = y.data() + n * out_channels_ * s;
    gemm_nn<float>(out_channels_, s, in_channels_, 1.0f, w, in_channels_, xn,
                   s, 0.0f, yn, s);
    if (has_bias_) {
      const float* b = bias_.value.data();
      for (index_t o = 0; o < out_channels_; ++o) {
        float* row = yn + o * s;
        for (index_t j = 0; j < s; ++j) row[j] += b[o];
      }
    }
  });
  return y;
}

TensorF Linear::backward(const TensorF& grad_out) {
  TURB_TRACE_SCOPE("nn/linear_bwd");
  TURB_CHECK_MSG(!input_.empty(), name_ << ": backward before forward");
  TURB_CHECK(grad_out.rank() >= 2 && grad_out.dim(1) == out_channels_);
  const index_t batch = input_.dim(0);
  const index_t s = spatial_size(input_.shape());
  TURB_CHECK(grad_out.size() == batch * out_channels_ * s);

  TensorF grad_in(input_.shape());
  const float* w = weight_.value.data();

  // dX[n] = Wᵀ (C_in×C_out) · dY[n] (C_out×S)
  parallel_for(0, batch, [&](index_t n) {
    const float* gn = grad_out.data() + n * out_channels_ * s;
    float* gi = grad_in.data() + n * in_channels_ * s;
    gemm_tn<float>(in_channels_, s, out_channels_, 1.0f, w, in_channels_, gn,
                   s, 0.0f, gi, s);
  });

  // dW += Σ_n dY[n] (C_out×S) · X[n]ᵀ (S×C_in);  db += Σ_{n,s} dY.
  // Batch-parallel with per-slab scratch folded in slot order: the slab
  // partition is a fixed function of the batch size (see parallel_for_slabs),
  // so the accumulation tree — and therefore the float result — is bitwise
  // identical at every thread count, with no races and no atomics.
  const index_t wsize = out_channels_ * in_channels_;
  const index_t slabs = slab_count(0, batch, kGradSlabs);
  std::vector<float> wscratch(static_cast<std::size_t>(slabs * wsize), 0.0f);
  std::vector<float> bscratch(
      has_bias_ ? static_cast<std::size_t>(slabs * out_channels_) : 0, 0.0f);
  parallel_for_slabs(0, batch, kGradSlabs,
                     [&](index_t slot, index_t nb, index_t ne) {
    float* gw_s = wscratch.data() + slot * wsize;
    for (index_t n = nb; n < ne; ++n) {
      const float* gn = grad_out.data() + n * out_channels_ * s;
      const float* xn = input_.data() + n * in_channels_ * s;
      gemm_nt<float>(out_channels_, in_channels_, s, 1.0f, gn, s, xn, s, 1.0f,
                     gw_s, in_channels_);
    }
    if (has_bias_) {
      float* gb_s = bscratch.data() + slot * out_channels_;
      for (index_t n = nb; n < ne; ++n) {
        const float* gn = grad_out.data() + n * out_channels_ * s;
        for (index_t o = 0; o < out_channels_; ++o) {
          const float* row = gn + o * s;
          double acc = 0.0;
          for (index_t j = 0; j < s; ++j) acc += row[j];
          gb_s[o] += static_cast<float>(acc);
        }
      }
    }
  });
  float* gw = weight_.grad.data();
  for (index_t slot = 0; slot < slabs; ++slot) {
    const float* gw_s = wscratch.data() + slot * wsize;
    for (index_t j = 0; j < wsize; ++j) gw[j] += gw_s[j];
  }
  if (has_bias_) {
    float* gb = bias_.grad.data();
    for (index_t slot = 0; slot < slabs; ++slot) {
      const float* gb_s = bscratch.data() + slot * out_channels_;
      for (index_t o = 0; o < out_channels_; ++o) gb[o] += gb_s[o];
    }
  }
  return grad_in;
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

}  // namespace turb::nn
