// DeepONet baseline (Lu et al. 2021, the paper's §II related work).
//
// An unstacked DeepONet learns G(a)(y) = Σ_p b_p(a)·t_p(y) + c: a branch
// MLP encodes the input function (here the flattened window of snapshots)
// into p coefficients per output channel, a trunk MLP maps grid coordinates
// to p basis values shared across outputs. Unlike the FNO it is tied to the
// training grid on the branch side — the comparison bench quantifies the
// accuracy/cost trade against the FNO on identical data.
#pragma once

#include <memory>
#include <vector>

#include "nn/activation.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace turb::nn {

struct DeepONetConfig {
  index_t in_channels = 10;
  index_t out_channels = 5;
  index_t height = 32;          ///< training grid (branch input is flattened)
  index_t width = 32;
  index_t basis = 64;           ///< p, number of branch/trunk basis pairs
  index_t branch_hidden = 128;  ///< branch MLP hidden width
  index_t trunk_hidden = 64;    ///< trunk MLP hidden width
  index_t trunk_layers = 3;     ///< trunk depth (≥ 2)
};

class DeepONet : public Module {
 public:
  DeepONet(DeepONetConfig config, Rng& rng);

  /// x: (N, C_in, H, W) → (N, C_out, H, W).
  TensorF forward(const TensorF& x) override;
  TensorF backward(const TensorF& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  [[nodiscard]] std::string name() const override { return "deeponet"; }

  [[nodiscard]] const DeepONetConfig& config() const { return config_; }

 private:
  /// Trunk features for every grid point: (1, basis, H·W).
  TensorF trunk_forward();
  TensorF coords_;  // (1, 2, H·W) normalised grid coordinates

  DeepONetConfig config_;
  // Branch: flatten(C_in·H·W) → hidden → C_out·basis.
  Linear branch1_;
  Gelu branch_act_;
  Linear branch2_;
  // Trunk: (x, y) → hidden… → basis.
  std::vector<std::unique_ptr<Linear>> trunk_;
  std::vector<std::unique_ptr<Gelu>> trunk_acts_;
  Parameter bias_;  // per output channel

  // Cached activations.
  TensorF branch_out_;  // (N, C_out·basis, 1)
  TensorF trunk_out_;   // (1, basis, H·W)
};

/// Closed-form trainable parameter count.
index_t deeponet_parameter_count(const DeepONetConfig& config);

}  // namespace turb::nn
