// Physics-informed training loss (paper §VI-C / §VII outlook).
//
// The paper observes that FNO predictions are not divergence-free because
// "the incompressibility of velocity fields was not incorporated in the loss
// function while training", and names embedding the governing equations in
// the loss as future work. This module implements that extension: a
// spectral divergence penalty on velocity-pair predictions,
//
//   L_div = (1/(N·K·M)) Σ_{n,k,cells} (∂x u₁ + ∂y u₂)²
//
// whose gradient uses the exact skew-adjointness of the spectral derivative
// (∂ᵀ = −∂ under this library's transform conventions), combined with the
// standard relative-L2 data term.
//
// Velocity-pair layout: predictions and targets are (N, 2K, H, W) tensors
// holding K chronological u₁ snapshots followed by K u₂ snapshots
// (see data::make_velocity_pair_windows).
#pragma once

#include "nn/loss.hpp"

namespace turb::nn {

/// Mean squared divergence of K velocity-pair snapshots, with gradient.
/// @param pred (N, 2K, H, W) velocity-pair tensor.
LossResult divergence_penalty(const TensorF& pred, index_t k_steps);

/// Mean |∇·u|² metric only (no gradient allocation).
double mean_squared_divergence(const TensorF& pred, index_t k_steps);

/// relative_l2_loss(pred, target) + div_weight · divergence_penalty(pred).
LossResult physics_informed_loss(const TensorF& pred, const TensorF& target,
                                 index_t k_steps, double div_weight);

}  // namespace turb::nn
