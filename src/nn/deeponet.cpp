#include "nn/deeponet.hpp"

#include "tensor/gemm.hpp"
#include "util/thread_pool.hpp"

namespace turb::nn {

DeepONet::DeepONet(DeepONetConfig config, Rng& rng)
    : config_(config),
      branch1_(config.in_channels * config.height * config.width,
               config.branch_hidden, rng, true, "branch.0"),
      branch_act_("branch.act"),
      branch2_(config.branch_hidden, config.out_channels * config.basis, rng,
               true, "branch.1"),
      bias_("output.bias", {config.out_channels}) {
  TURB_CHECK(config_.trunk_layers >= 2);
  TURB_CHECK(config_.basis >= 1);
  // Trunk MLP: 2 → hidden → … → basis.
  for (index_t l = 0; l < config_.trunk_layers; ++l) {
    const index_t in = (l == 0) ? 2 : config_.trunk_hidden;
    const index_t out =
        (l + 1 == config_.trunk_layers) ? config_.basis : config_.trunk_hidden;
    trunk_.push_back(std::make_unique<Linear>(
        in, out, rng, true, "trunk." + std::to_string(l)));
    if (l + 1 < config_.trunk_layers) {
      trunk_acts_.push_back(
          std::make_unique<Gelu>("trunk.act" + std::to_string(l)));
    }
  }
  // Grid coordinates on [0,1)², channel layout (1, 2, H·W).
  coords_ = TensorF({1, 2, config_.height * config_.width});
  for (index_t iy = 0; iy < config_.height; ++iy) {
    for (index_t ix = 0; ix < config_.width; ++ix) {
      const index_t j = iy * config_.width + ix;
      coords_[j] = static_cast<float>(ix) / static_cast<float>(config_.width);
      coords_[config_.height * config_.width + j] =
          static_cast<float>(iy) / static_cast<float>(config_.height);
    }
  }
}

TensorF DeepONet::trunk_forward() {
  TensorF h = coords_;
  for (std::size_t l = 0; l < trunk_.size(); ++l) {
    h = trunk_[l]->forward(h);
    if (l < trunk_acts_.size()) h = trunk_acts_[l]->forward(h);
  }
  return h;  // (1, basis, H·W)
}

TensorF DeepONet::forward(const TensorF& x) {
  TURB_CHECK_MSG(x.rank() == 4 && x.dim(1) == config_.in_channels &&
                     x.dim(2) == config_.height && x.dim(3) == config_.width,
                 "deeponet: input must be (N, " << config_.in_channels << ", "
                                                << config_.height << ", "
                                                << config_.width << ")");
  const index_t batch = x.dim(0);
  const index_t points = config_.height * config_.width;
  const index_t p = config_.basis;
  const index_t cout = config_.out_channels;

  // Branch on the flattened window: (N, C_in·H·W, 1).
  TensorF flat = x;
  flat.reshape({batch, config_.in_channels * points, 1});
  branch_out_ = branch2_.forward(branch_act_.forward(branch1_.forward(flat)));
  trunk_out_ = trunk_forward();

  // y[n, c, j] = Σ_p B[n, c·p̂ + p] · T[p, j] + bias[c]
  TensorF y({batch, cout, config_.height, config_.width});
  const float* b = branch_out_.data();
  const float* t = trunk_out_.data();
  const float* bias = bias_.value.data();
  parallel_for(0, batch * cout, [&](index_t nc) {
    const index_t n = nc / cout;
    const index_t c = nc % cout;
    float* yrow = y.data() + nc * points;
    gemm_nn<float>(1, points, p, 1.0f, b + (n * cout + c) * p, p, t, points,
                   0.0f, yrow, points);
    for (index_t j = 0; j < points; ++j) yrow[j] += bias[c];
  });
  return y;
}

TensorF DeepONet::backward(const TensorF& grad_out) {
  TURB_CHECK_MSG(!branch_out_.empty(), "deeponet: backward before forward");
  const index_t batch = grad_out.dim(0);
  const index_t points = config_.height * config_.width;
  const index_t p = config_.basis;
  const index_t cout = config_.out_channels;
  TURB_CHECK(grad_out.size() == batch * cout * points);

  // dB[n,c,:] = dY[n,c,:] · Tᵀ ; dT += Σ_{n,c} B[n,c,:]ᵀ · dY[n,c,:].
  TensorF grad_branch({batch, cout * p, 1});
  TensorF grad_trunk({1, p, points});
  const float* g = grad_out.data();
  const float* b = branch_out_.data();
  const float* t = trunk_out_.data();
  for (index_t nc = 0; nc < batch * cout; ++nc) {
    const index_t n = nc / cout;
    const index_t c = nc % cout;
    // dB row: (1×points)·(points×p) — T stored (p, points) so use nt.
    gemm_nt<float>(1, p, points, 1.0f, g + nc * points, points, t, points,
                   0.0f, grad_branch.data() + (n * cout + c) * p, p);
    // dT: (p×1)·(1×points) accumulate.
    gemm_nn<float>(p, points, 1, 1.0f, b + (n * cout + c) * p, 1,
                   g + nc * points, points, 1.0f, grad_trunk.data(), points);
  }
  // Bias gradient.
  float* gb = bias_.grad.data();
  for (index_t nc = 0; nc < batch * cout; ++nc) {
    double acc = 0.0;
    for (index_t j = 0; j < points; ++j) acc += g[nc * points + j];
    gb[nc % cout] += static_cast<float>(acc);
  }

  // Backprop through the trunk (input gradient unused — coords are fixed).
  TensorF gt = grad_trunk;
  for (std::size_t l = trunk_.size(); l-- > 0;) {
    if (l < trunk_acts_.size()) gt = trunk_acts_[l]->backward(gt);
    gt = trunk_[l]->backward(gt);
  }

  // Backprop through the branch and reshape to the input layout.
  TensorF gx = branch1_.backward(
      branch_act_.backward(branch2_.backward(grad_branch)));
  gx.reshape({batch, config_.in_channels, config_.height, config_.width});
  return gx;
}

void DeepONet::collect_parameters(std::vector<Parameter*>& out) {
  branch1_.collect_parameters(out);
  branch2_.collect_parameters(out);
  for (auto& layer : trunk_) layer->collect_parameters(out);
  out.push_back(&bias_);
}

index_t deeponet_parameter_count(const DeepONetConfig& c) {
  const index_t in_dim = c.in_channels * c.height * c.width;
  index_t total = in_dim * c.branch_hidden + c.branch_hidden;
  total += c.branch_hidden * (c.out_channels * c.basis) +
           c.out_channels * c.basis;
  for (index_t l = 0; l < c.trunk_layers; ++l) {
    const index_t in = (l == 0) ? 2 : c.trunk_hidden;
    const index_t out = (l + 1 == c.trunk_layers) ? c.basis : c.trunk_hidden;
    total += in * out + out;
  }
  return total + c.out_channels;
}

}  // namespace turb::nn
