#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <map>

#include "util/common.hpp"

namespace turb::nn {

namespace {

constexpr char kMagic[4] = {'T', 'N', 'N', '1'};

template <typename T>
void write_pod(std::ofstream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  TURB_CHECK_MSG(is.good(), "truncated parameter file");
  return v;
}

}  // namespace

void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params,
                     const Metadata& metadata) {
  std::ofstream os(path, std::ios::binary);
  TURB_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  os.write(kMagic, 4);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(params.size()));
  for (const Parameter* p : params) {
    TURB_CHECK(p != nullptr);
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(p->name.size()));
    os.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(p->value.rank()));
    for (const index_t d : p->value.shape()) {
      write_pod<std::int64_t>(os, d);
    }
    os.write(reinterpret_cast<const char*>(p->value.data()),
             static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(metadata.size()));
  for (const auto& [key, value] : metadata) {
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(key.size()));
    os.write(key.data(), static_cast<std::streamsize>(key.size()));
    write_pod<double>(os, value);
  }
  TURB_CHECK_MSG(os.good(), "write failed for " << path);
}

void load_parameters(const std::string& path,
                     const std::vector<Parameter*>& params,
                     Metadata* metadata) {
  std::ifstream is(path, std::ios::binary);
  TURB_CHECK_MSG(is.good(), "cannot open " << path);
  char magic[4];
  is.read(magic, 4);
  TURB_CHECK_MSG(is.good() && std::equal(magic, magic + 4, kMagic),
                 path << " is not a TNN1 parameter file");

  std::map<std::string, Parameter*> by_name;
  for (Parameter* p : params) {
    TURB_CHECK(p != nullptr);
    TURB_CHECK_MSG(by_name.emplace(p->name, p).second,
                   "duplicate parameter name " << p->name);
  }

  const auto count = read_pod<std::uint32_t>(is);
  std::size_t matched = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint32_t>(is);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    const auto rank = read_pod<std::uint32_t>(is);
    Shape shape(rank);
    for (auto& d : shape) d = read_pod<std::int64_t>(is);

    const auto it = by_name.find(name);
    TURB_CHECK_MSG(it != by_name.end(),
                   "checkpoint parameter " << name << " not found in model");
    Parameter& p = *it->second;
    TURB_CHECK_MSG(p.value.shape() == shape,
                   "shape mismatch for " << name << ": model "
                                         << shape_to_string(p.value.shape())
                                         << " vs file "
                                         << shape_to_string(shape));
    is.read(reinterpret_cast<char*>(p.value.data()),
            static_cast<std::streamsize>(p.value.size() * sizeof(float)));
    TURB_CHECK_MSG(is.good(), "truncated payload for " << name);
    ++matched;
  }
  TURB_CHECK_MSG(matched == params.size(),
                 "checkpoint holds " << matched << " of " << params.size()
                                     << " model parameters");
  if (metadata != nullptr) {
    metadata->clear();
    const auto meta_count = read_pod<std::uint32_t>(is);
    for (std::uint32_t i = 0; i < meta_count; ++i) {
      const auto key_len = read_pod<std::uint32_t>(is);
      std::string key(key_len, '\0');
      is.read(key.data(), key_len);
      TURB_CHECK_MSG(is.good(), "truncated metadata");
      (*metadata)[key] = read_pod<double>(is);
    }
  }
}

}  // namespace turb::nn
