#include "nn/serialize.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <utility>

#include "obs/obs.hpp"
#include "util/atomic_file.hpp"
#include "util/checksum.hpp"
#include "util/common.hpp"

namespace turb::nn {

namespace {

constexpr char kMagicV1[4] = {'T', 'N', 'N', '1'};
constexpr char kMagicV2[4] = {'T', 'N', 'N', '2'};
constexpr char kMagicV3[4] = {'T', 'N', 'N', '3'};

// v3 per-parameter dtype tags (one byte between the extents and the payload).
constexpr std::uint8_t kDtypeFp32 = 0;
constexpr std::uint8_t kDtypeBf16 = 1;
constexpr std::uint8_t kDtypeFp16 = 2;

std::uint8_t dtype_tag(util::Precision p) {
  switch (p) {
    case util::Precision::kFp32: return kDtypeFp32;
    case util::Precision::kBf16: return kDtypeBf16;
    case util::Precision::kFp16: return kDtypeFp16;
  }
  return kDtypeFp32;
}

// Hard caps on header fields. Every one of these is far above anything a
// real checkpoint holds, but small enough that a corrupt header can never
// drive a multi-gigabyte allocation or an index_t overflow.
constexpr std::uint32_t kMaxParams = 1u << 20;
constexpr std::uint32_t kMaxNameLen = 4096;
constexpr std::uint32_t kMaxRank = 8;
constexpr std::int64_t kMaxElems = std::int64_t{1} << 40;

/// A corrupt (as opposed to merely mismatched) file: count it, then throw.
[[noreturn]] void reject(const std::string& path, const std::string& what) {
  obs::counter("robust/corrupt_rejected").add();
  throw CheckError("corrupt checkpoint " + path + ": " + what);
}

/// Bounds-checked section reader: every read is validated against the bytes
/// actually present in the file *before* it happens, so no header field can
/// demand more than the file holds; v2 reads also feed the running CRC.
class CheckedReader {
 public:
  CheckedReader(std::ifstream& is, const std::string& path,
                std::uint64_t body_bytes, util::Crc32* crc)
      : is_(&is), path_(&path), remaining_(body_bytes), crc_(crc) {}

  void read(void* dst, std::uint64_t n, const char* what) {
    if (n > remaining_) {
      reject(*path_, std::string("truncated (") + what + ")");
    }
    is_->read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (!is_->good()) reject(*path_, std::string("truncated (") + what + ")");
    if (crc_ != nullptr) crc_->update(dst, n);
    remaining_ -= n;
  }

  template <typename T>
  T read_pod(const char* what) {
    T v{};
    read(&v, sizeof(T), what);
    return v;
  }

  std::string read_string(std::uint32_t len, const char* what) {
    std::string s(len, '\0');
    read(s.data(), len, what);
    return s;
  }

  [[nodiscard]] std::uint64_t remaining() const { return remaining_; }

 private:
  std::ifstream* is_;
  const std::string* path_;
  std::uint64_t remaining_;
  util::Crc32* crc_;
};

}  // namespace

namespace {

/// Shared v2/v3 writer. `v3` selects the TNN3 magic plus the per-parameter
/// dtype byte and (when `precision` is not fp32) a 16-bit payload.
void save_parameters_impl(const std::string& path,
                          const std::vector<Parameter*>& params,
                          const Metadata& metadata, bool v3,
                          util::Precision precision) {
  util::AtomicFileWriter out(path);
  util::Crc32 crc;
  // CRC covers everything between the magic and the trailing checksum.
  const auto put = [&out, &crc](const void* p, std::size_t n) {
    out.write(p, n);
    crc.update(p, n);
  };
  const auto put_pod = [&put](auto v) { put(&v, sizeof(v)); };

  std::vector<std::uint16_t> compressed;  // scratch, reused per parameter
  out.write(v3 ? kMagicV3 : kMagicV2, 4);
  put_pod(static_cast<std::uint32_t>(params.size()));
  for (const Parameter* p : params) {
    TURB_CHECK(p != nullptr);
    put_pod(static_cast<std::uint32_t>(p->name.size()));
    put(p->name.data(), p->name.size());
    put_pod(static_cast<std::uint32_t>(p->value.rank()));
    for (const index_t d : p->value.shape()) {
      put_pod(static_cast<std::int64_t>(d));
    }
    const auto elems = static_cast<std::size_t>(p->value.size());
    if (v3) put_pod(dtype_tag(precision));
    if (v3 && precision != util::Precision::kFp32) {
      compressed.resize(elems);
      util::compress_floats(p->value.data(), compressed.data(), elems,
                            precision);
      put(compressed.data(), elems * sizeof(std::uint16_t));
    } else {
      put(p->value.data(), elems * sizeof(float));
    }
  }
  put_pod(static_cast<std::uint32_t>(metadata.size()));
  for (const auto& [key, value] : metadata) {
    put_pod(static_cast<std::uint32_t>(key.size()));
    put(key.data(), key.size());
    put_pod(value);
  }
  const std::uint32_t checksum = crc.value();
  out.write(&checksum, sizeof(checksum));
  out.commit();
  obs::counter("robust/checkpoint_writes").add();
}

}  // namespace

void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params,
                     const Metadata& metadata) {
  save_parameters_impl(path, params, metadata, /*v3=*/false,
                       util::Precision::kFp32);
}

void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params,
                     const Metadata& metadata, const SaveOptions& options) {
  save_parameters_impl(path, params, metadata, /*v3=*/true, options.precision);
}

void load_parameters(const std::string& path,
                     const std::vector<Parameter*>& params,
                     Metadata* metadata) {
  std::ifstream is(path, std::ios::binary);
  TURB_CHECK_MSG(is.good(), "cannot open " << path);
  is.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(is.tellg());
  is.seekg(0, std::ios::beg);
  if (file_size < 8) reject(path, "file shorter than any valid checkpoint");

  char magic[4];
  is.read(magic, 4);
  const bool v3 = is.good() && std::equal(magic, magic + 4, kMagicV3);
  const bool v2 = is.good() && std::equal(magic, magic + 4, kMagicV2);
  const bool v1 = is.good() && std::equal(magic, magic + 4, kMagicV1);
  if (!v1 && !v2 && !v3) reject(path, "not a TNN1/TNN2/TNN3 parameter file");

  const bool has_crc = v2 || v3;
  util::Crc32 crc;
  CheckedReader r(is, path, file_size - 4 - (has_crc ? 4 : 0),
                  has_crc ? &crc : nullptr);

  std::map<std::string, Parameter*> by_name;
  for (Parameter* p : params) {
    TURB_CHECK(p != nullptr);
    TURB_CHECK_MSG(by_name.emplace(p->name, p).second,
                   "duplicate parameter name " << p->name);
  }

  const auto count = r.read_pod<std::uint32_t>("parameter count");
  if (count > kMaxParams) reject(path, "implausible parameter count");

  // Payloads are staged and only copied into the model after the whole file
  // — including the CRC — has been validated: a failed load never leaves the
  // model partially overwritten.
  std::vector<std::pair<Parameter*, TensorF>> staged;
  staged.reserve(count);
  std::set<std::string> seen;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto name_len = r.read_pod<std::uint32_t>("parameter name length");
    if (name_len > kMaxNameLen) reject(path, "implausible name length");
    const std::string name = r.read_string(name_len, "parameter name");
    const auto rank = r.read_pod<std::uint32_t>("parameter rank");
    if (rank > kMaxRank) reject(path, "implausible rank for " + name);
    Shape shape(rank);
    std::int64_t elems = 1;
    for (auto& d : shape) {
      d = r.read_pod<std::int64_t>("parameter extent");
      if (d < 0 || d > kMaxElems || (d > 0 && elems > kMaxElems / d)) {
        reject(path, "implausible extents for " + name);
      }
      elems *= d;
    }
    std::uint8_t dtype = kDtypeFp32;
    if (v3) {
      dtype = r.read_pod<std::uint8_t>("parameter dtype");
      if (dtype > kDtypeFp16) reject(path, "unknown dtype for " + name);
    }
    const std::uint64_t elem_bytes =
        dtype == kDtypeFp32 ? sizeof(float) : sizeof(std::uint16_t);
    const std::uint64_t payload = static_cast<std::uint64_t>(elems) *
                                  elem_bytes;
    if (payload > r.remaining()) {
      reject(path, "truncated payload for " + name);
    }

    // A duplicate entry used to increment the matched count twice, letting a
    // checkpoint with one parameter doubled and another missing pass the
    // completeness check below with the missing one left uninitialized.
    if (!seen.insert(name).second) {
      reject(path, "duplicate parameter entry " + name);
    }
    const auto it = by_name.find(name);
    TURB_CHECK_MSG(it != by_name.end(),
                   "checkpoint parameter " << name << " not found in model");
    Parameter& p = *it->second;
    TURB_CHECK_MSG(p.value.shape() == shape,
                   "shape mismatch for " << name << ": model "
                                         << shape_to_string(p.value.shape())
                                         << " vs file "
                                         << shape_to_string(shape));
    TensorF value(shape);
    if (dtype == kDtypeFp32) {
      r.read(value.data(), payload, ("payload for " + name).c_str());
    } else {
      // Compressed payload: read the 16-bit words, then widen to fp32 in the
      // staging tensor (the model always holds fp32).
      std::vector<std::uint16_t> raw(static_cast<std::size_t>(elems));
      r.read(raw.data(), payload, ("payload for " + name).c_str());
      util::decompress_floats(raw.data(), value.data(),
                              static_cast<std::size_t>(elems),
                              dtype == kDtypeBf16 ? util::Precision::kBf16
                                                  : util::Precision::kFp16);
    }
    staged.emplace_back(&p, std::move(value));
  }
  TURB_CHECK_MSG(seen.size() == params.size(),
                 "checkpoint holds " << seen.size() << " of " << params.size()
                                     << " model parameters");

  // The metadata section is parsed unconditionally so truncation there and
  // the v2 CRC are always verified, even when the caller discards it.
  Metadata parsed_meta;
  const auto meta_count = r.read_pod<std::uint32_t>("metadata count");
  if (meta_count > kMaxParams) reject(path, "implausible metadata count");
  for (std::uint32_t i = 0; i < meta_count; ++i) {
    const auto key_len = r.read_pod<std::uint32_t>("metadata key length");
    if (key_len > kMaxNameLen) reject(path, "implausible metadata key");
    std::string key = r.read_string(key_len, "metadata key");
    parsed_meta[std::move(key)] = r.read_pod<double>("metadata value");
  }
  if (r.remaining() != 0) reject(path, "trailing bytes after metadata");
  if (has_crc) {
    std::uint32_t stored = 0;
    is.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (!is.good()) reject(path, "truncated (checksum)");
    if (stored != crc.value()) reject(path, "CRC mismatch");
  }

  for (auto& [p, value] : staged) p->value = std::move(value);
  if (metadata != nullptr) *metadata = std::move(parsed_meta);
}

}  // namespace turb::nn
