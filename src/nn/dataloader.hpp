// Mini-batch iteration over paired (input, target) tensors.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace turb::nn {

/// One training pair (copies — batches are assembled gather-style).
struct Batch {
  TensorF x;
  TensorF y;
  [[nodiscard]] index_t size() const { return x.empty() ? 0 : x.dim(0); }
};

/// Shuffling mini-batch loader over in-memory tensors whose first axis is the
/// sample axis.
class DataLoader {
 public:
  DataLoader(TensorF inputs, TensorF targets, index_t batch_size,
             bool shuffle = true, std::uint64_t seed = 0);

  [[nodiscard]] index_t num_samples() const { return inputs_.dim(0); }
  [[nodiscard]] index_t num_batches() const {
    return (num_samples() + batch_size_ - 1) / batch_size_;
  }
  [[nodiscard]] index_t batch_size() const { return batch_size_; }

  /// Reset iteration (reshuffles when shuffling is enabled).
  void start_epoch();

  /// Fetch the next batch; returns false at epoch end.
  bool next(Batch& out);

  [[nodiscard]] const TensorF& inputs() const { return inputs_; }
  [[nodiscard]] const TensorF& targets() const { return targets_; }

 private:
  TensorF inputs_;
  TensorF targets_;
  index_t batch_size_;
  bool shuffle_;
  Rng rng_;
  std::vector<index_t> order_;
  index_t cursor_ = 0;
};

}  // namespace turb::nn
