#include "nn/optimizer.hpp"

#include <cmath>

#include "obs/obs.hpp"
#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace turb::nn {

Adam::Adam(std::vector<Parameter*> params, Config config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    TURB_CHECK(p != nullptr);
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  const float b1 = static_cast<float>(config_.beta1);
  const float b2 = static_cast<float>(config_.beta2);
  const float lr = static_cast<float>(config_.lr);
  const float eps = static_cast<float>(config_.eps);
  const float wd = static_cast<float>(config_.weight_decay);
  const float inv_bc1 = static_cast<float>(1.0 / bc1);
  const float inv_bc2 = static_cast<float>(1.0 / bc2);

  TURB_TRACE_SCOPE("nn/adam_step");
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Parameter& p = *params_[pi];
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* m = m_[pi].data();
    float* v = v_[pi].data();
    const index_t n = p.size();
    // Purely elementwise — each coordinate is read and written by exactly
    // one task, so the update is bitwise identical at every thread count.
    parallel_for_chunked(0, n, [&](index_t ib, index_t ie) {
      for (index_t i = ib; i < ie; ++i) {
        // L2-coupled weight decay (PyTorch Adam semantics, not AdamW).
        const float gi = g[i] + wd * w[i];
        m[i] = b1 * m[i] + (1.0f - b1) * gi;
        v[i] = b2 * v[i] + (1.0f - b2) * gi * gi;
        const float mhat = m[i] * inv_bc1;
        const float vhat = v[i] * inv_bc2;
        w[i] -= lr * mhat / (std::sqrt(vhat) + eps);
      }
    });
  }
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->grad.zero();
}

void Adam::set_state(State state) {
  TURB_CHECK_MSG(state.m.size() == m_.size() && state.v.size() == v_.size(),
                 "optimizer state holds " << state.m.size() << " moments for "
                                          << m_.size() << " parameters");
  for (std::size_t i = 0; i < m_.size(); ++i) {
    TURB_CHECK(state.m[i].size() == m_[i].size() &&
               state.v[i].size() == v_[i].size());
  }
  m_ = std::move(state.m);
  v_ = std::move(state.v);
  t_ = state.t;
}

void StepLR::step() {
  ++epoch_;
  optimizer_->set_lr(current_lr());
}

double StepLR::current_lr() const {
  const long drops = epoch_ / step_size_;
  return base_lr_ * std::pow(gamma_, static_cast<double>(drops));
}

}  // namespace turb::nn
