// Optimizers and learning-rate schedules.
#pragma once

#include <vector>

#include "nn/parameter.hpp"

namespace turb::nn {

/// Adam (Kingma & Ba) with optional decoupled weight decay, matching the
/// PyTorch defaults used by the reference FNO training scripts.
class Adam {
 public:
  struct Config {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 1e-4;  // the neuraloperator training default
  };

  Adam(std::vector<Parameter*> params, Config config);

  /// Apply one update from the accumulated gradients.
  void step();

  /// Clear every parameter gradient.
  void zero_grad();

  [[nodiscard]] double lr() const { return config_.lr; }
  void set_lr(double lr) { config_.lr = lr; }
  [[nodiscard]] long step_count() const { return t_; }

  /// Full optimizer state (moments + step count) for exact restore after a
  /// fault — the trainer snapshots this alongside the weights so recovery
  /// from a non-finite loss resumes bitwise from the last good epoch.
  struct State {
    std::vector<TensorF> m;
    std::vector<TensorF> v;
    long t = 0;
  };
  [[nodiscard]] State state() const { return {m_, v_, t_}; }
  void set_state(State state);

 private:
  std::vector<Parameter*> params_;
  Config config_;
  std::vector<TensorF> m_;  // first moment per parameter
  std::vector<TensorF> v_;  // second moment per parameter
  long t_ = 0;
};

/// StepLR: multiply the learning rate by gamma every step_size epochs —
/// the schedule used throughout the paper (gamma 0.5, step 100).
class StepLR {
 public:
  StepLR(Adam& optimizer, long step_size, double gamma)
      : optimizer_(&optimizer), step_size_(step_size), gamma_(gamma),
        base_lr_(optimizer.lr()) {}

  /// Advance one epoch and update the optimizer's learning rate.
  void step();

  [[nodiscard]] long epoch() const { return epoch_; }
  [[nodiscard]] double current_lr() const;

 private:
  Adam* optimizer_;
  long step_size_;
  double gamma_;
  double base_lr_;
  long epoch_ = 0;
};

}  // namespace turb::nn
