// Neural-network module interface with explicit analytic backward passes.
//
// There is no taped autograd: each module caches whatever it needs during
// forward() and implements backward() as the exact vector-Jacobian product.
// Every layer is validated against finite differences (see nn/gradcheck.hpp
// and tests/test_nn_*.cpp), which gives the same correctness guarantee with
// far less machinery — and makes the training loop a plain function call
// chain that profiles cleanly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.hpp"
#include "tensor/tensor.hpp"

namespace turb::nn {

/// Slab count for batch-parallel gradient accumulation (Linear::backward,
/// SpectralConv::backward). The batch is split into at most this many
/// contiguous slabs with private scratch, folded in slot order — the count
/// is a fixed constant (never the pool width) so gradients are bitwise
/// identical at every thread count. See "Parallelism & determinism" in
/// DESIGN.md.
inline constexpr index_t kGradSlabs = 8;

class Module {
 public:
  virtual ~Module() = default;

  /// Compute outputs; caches activations needed by backward().
  virtual TensorF forward(const TensorF& x) = 0;

  /// Propagate the loss gradient: given dL/d(output), accumulate dL/dθ into
  /// parameter .grad buffers and return dL/d(input). Must be called after a
  /// matching forward() (modules are not reentrant).
  virtual TensorF backward(const TensorF& grad_out) = 0;

  /// Append raw pointers to this module's parameters (stable for the module
  /// lifetime).
  virtual void collect_parameters(std::vector<Parameter*>& out) { (void)out; }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Convenience: gather all parameters of this module tree.
  [[nodiscard]] std::vector<Parameter*> parameters() {
    std::vector<Parameter*> out;
    collect_parameters(out);
    return out;
  }

  /// Total trainable scalar count (complex weights count both components —
  /// the convention used by PyTorch's view_as_real and by the paper's
  /// Table I).
  [[nodiscard]] index_t parameter_count() {
    index_t total = 0;
    for (const Parameter* p : parameters()) total += p->size();
    return total;
  }

  /// Zero every parameter gradient.
  void zero_grad() {
    for (Parameter* p : parameters()) p->grad.zero();
  }
};

}  // namespace turb::nn
