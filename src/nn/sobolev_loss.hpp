// Sobolev (H¹-type) training loss.
//
// The paper finds that enstrophy errors grow even when kinetic-energy errors
// stay below 10%, "attributed to the fact that enstrophy is calculated from
// the gradient of velocity field while the model lacks any explicit
// mechanism to learn gradients", and proposes a gradient-aware loss as the
// remedy (§VI-C). This module implements it: a relative error in the
// spectrally weighted norm
//
//   ‖f‖²_{H,s} = Σ_k (1 + s·|k|²) |f̂_k|² / M        (k in integer modes)
//
// which up-weights exactly the high-wavenumber content that enstrophy
// measures. s = 0 recovers the plain relative L2 loss.
//
// The gradient uses the self-adjointness of Λ = irfft ∘ √w ∘ rfft for the
// real diagonal weight w (same adjoint identities as the spectral
// convolution; validated by finite differences in the tests).
#pragma once

#include "nn/loss.hpp"

namespace turb::nn {

/// Batch-averaged relative H^s loss over (N, C, H, W) predictions:
///   L = (1/N) Σ_n ‖pred_n − target_n‖_{H,s} / ‖target_n‖_{H,s}
LossResult sobolev_loss(const TensorF& pred, const TensorF& target,
                        double s = 1.0);

/// Metric-only variant.
double sobolev_error(const TensorF& pred, const TensorF& target,
                     double s = 1.0);

}  // namespace turb::nn
