// Channel-wise linear layer (pointwise / 1×1 convolution).
//
// Input (N, C_in, S₁, …, S_d) → output (N, C_out, S₁, …, S_d) with
//   y[n, o, s] = Σ_i W[o, i] · x[n, i, s] + b[o]
// applied independently at every spatial location s. This single layer plays
// three roles in the FNO: lifting MLP stage, residual skip inside each FNO
// block, and projection MLP stage.
#pragma once

#include <string>

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace turb::nn {

class Linear : public Module {
 public:
  /// @param bias  include the additive bias term (true everywhere in the
  ///              paper's architecture).
  Linear(index_t in_channels, index_t out_channels, Rng& rng,
         bool bias = true, std::string name = "linear");

  TensorF forward(const TensorF& x) override;
  TensorF backward(const TensorF& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] index_t in_channels() const { return in_channels_; }
  [[nodiscard]] index_t out_channels() const { return out_channels_; }
  [[nodiscard]] Parameter& weight() { return weight_; }
  [[nodiscard]] Parameter& bias() { return bias_; }

 private:
  index_t in_channels_;
  index_t out_channels_;
  bool has_bias_;
  std::string name_;
  Parameter weight_;  // (C_out, C_in)
  Parameter bias_;    // (C_out) — empty when has_bias_ is false
  TensorF input_;     // cached for backward
};

}  // namespace turb::nn
