#include "nn/physics_loss.hpp"

#include <cmath>
#include <mutex>
#include <numbers>

#include "fft/fftnd.hpp"
#include "util/thread_pool.hpp"

namespace turb::nn {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

using cpxf = std::complex<float>;

double deriv_freq(index_t i, index_t n) {
  if (2 * i == n) return 0.0;  // Nyquist is derivative-free (see ns ops)
  return (i <= n / 2) ? static_cast<double>(i)
                      : static_cast<double>(i) - static_cast<double>(n);
}

/// d = ∂x u1 + ∂y u2 for one (H, W) pair, float spectral derivatives.
TensorF pair_divergence(const float* u1, const float* u2, index_t h,
                        index_t w) {
  TensorF f1({h, w}), f2({h, w});
  std::copy_n(u1, h * w, f1.data());
  std::copy_n(u2, h * w, f2.data());
  Tensor<cpxf> s1 = fft::rfftn(f1, 2);
  Tensor<cpxf> s2 = fft::rfftn(f2, 2);
  for (index_t iy = 0; iy < h; ++iy) {
    const auto ky = static_cast<float>(kTwoPi * deriv_freq(iy, h));
    for (index_t ix = 0; ix < w / 2 + 1; ++ix) {
      const auto kx = static_cast<float>(kTwoPi * deriv_freq(ix, w));
      // i·kx·û1 + i·ky·û2
      s1(iy, ix) = cpxf(0.0f, kx) * s1(iy, ix) + cpxf(0.0f, ky) * s2(iy, ix);
    }
  }
  return fft::irfftn(s1, 2, w);
}

/// In-place gradient contribution: g1 -= scale·∂x d, g2 -= scale·∂y d
/// (the −∂ comes from the skew-adjointness of the spectral derivative).
void accumulate_adjoint(const TensorF& d, float scale, float* g1, float* g2,
                        index_t h, index_t w) {
  Tensor<cpxf> sd = fft::rfftn(d, 2);
  Tensor<cpxf> s1({h, w / 2 + 1}), s2({h, w / 2 + 1});
  for (index_t iy = 0; iy < h; ++iy) {
    const auto ky = static_cast<float>(kTwoPi * deriv_freq(iy, h));
    for (index_t ix = 0; ix < w / 2 + 1; ++ix) {
      const auto kx = static_cast<float>(kTwoPi * deriv_freq(ix, w));
      s1(iy, ix) = cpxf(0.0f, kx) * sd(iy, ix);
      s2(iy, ix) = cpxf(0.0f, ky) * sd(iy, ix);
    }
  }
  const TensorF d1 = fft::irfftn(s1, 2, w);
  const TensorF d2 = fft::irfftn(s2, 2, w);
  for (index_t i = 0; i < h * w; ++i) {
    g1[i] -= scale * d1[i];
    g2[i] -= scale * d2[i];
  }
}

void check_pair_shape(const TensorF& pred, index_t k_steps) {
  TURB_CHECK_MSG(pred.rank() == 4, "expected (N, 2K, H, W)");
  TURB_CHECK_MSG(pred.dim(1) == 2 * k_steps,
                 "channel dim " << pred.dim(1)
                                << " does not hold 2x" << k_steps
                                << " velocity-pair snapshots");
}

}  // namespace

LossResult divergence_penalty(const TensorF& pred, index_t k_steps) {
  check_pair_shape(pred, k_steps);
  const index_t batch = pred.dim(0);
  const index_t h = pred.dim(2);
  const index_t w = pred.dim(3);
  const index_t frame = h * w;
  const double norm = 1.0 / static_cast<double>(batch * k_steps * frame);

  LossResult res;
  res.grad = TensorF(pred.shape());
  double total = 0.0;
  std::mutex total_mutex;
  parallel_for(0, batch * k_steps, [&](index_t t) {
    const index_t n = t / k_steps;
    const index_t k = t % k_steps;
    const float* u1 = pred.data() + ((n * 2 * k_steps) + k) * frame;
    const float* u2 = pred.data() + ((n * 2 * k_steps) + k_steps + k) * frame;
    const TensorF d = pair_divergence(u1, u2, h, w);
    const double local = d.squared_norm() * norm;
    float* g1 = res.grad.data() + ((n * 2 * k_steps) + k) * frame;
    float* g2 =
        res.grad.data() + ((n * 2 * k_steps) + k_steps + k) * frame;
    accumulate_adjoint(d, static_cast<float>(2.0 * norm), g1, g2, h, w);
    std::lock_guard lock(total_mutex);
    total += local;
  });
  res.value = total;
  return res;
}

double mean_squared_divergence(const TensorF& pred, index_t k_steps) {
  check_pair_shape(pred, k_steps);
  const index_t batch = pred.dim(0);
  const index_t h = pred.dim(2);
  const index_t w = pred.dim(3);
  const index_t frame = h * w;
  double total = 0.0;
  for (index_t n = 0; n < batch; ++n) {
    for (index_t k = 0; k < k_steps; ++k) {
      const float* u1 = pred.data() + ((n * 2 * k_steps) + k) * frame;
      const float* u2 =
          pred.data() + ((n * 2 * k_steps) + k_steps + k) * frame;
      total += pair_divergence(u1, u2, h, w).squared_norm();
    }
  }
  return total / static_cast<double>(batch * k_steps * frame);
}

LossResult physics_informed_loss(const TensorF& pred, const TensorF& target,
                                 index_t k_steps, double div_weight) {
  TURB_CHECK(div_weight >= 0.0);
  LossResult data_term = relative_l2_loss(pred, target);
  if (div_weight == 0.0) return data_term;
  const LossResult div_term = divergence_penalty(pred, k_steps);
  data_term.value += div_weight * div_term.value;
  data_term.grad.add_scaled(div_term.grad, static_cast<float>(div_weight));
  return data_term;
}

}  // namespace turb::nn
