#include "serve/engine_pool.hpp"

#include "obs/obs.hpp"
#include "util/isa.hpp"

namespace turb::serve {

EnginePool::EnginePool(fno::Fno& model, infer::EngineOptions options)
    : model_(&model), options_(options) {}

infer::InferenceEngine& EnginePool::acquire(index_t batch, index_t cin,
                                            index_t h, index_t w) {
  TURB_CHECK(batch >= 1 && cin >= 1 && h >= 1 && w >= 1);
  // Serving attribution: keep isa/active live in every --metrics-out
  // snapshot the serving path produces (resolution publishes the gauge;
  // re-publishing here covers snapshots taken after a ScopedIsa restored
  // an unresolved state).
  obs::gauge("isa/active")
      .set(static_cast<double>(static_cast<int>(util::active_isa())));
  const EngineKey key{batch, cin, h, w};
  auto it = engines_.find(key);
  if (it != engines_.end()) {
    obs::counter("serve/engine_pool_hits").add();
    // plan() on a matching shape is the allocation-free fast path; it only
    // refreshes the captured thread pool (the pool may have been resized
    // between scheduling rounds).
    it->second->plan({batch, cin, h, w});
    return *it->second;
  }
  obs::counter("serve/engine_pool_misses").add();
  auto engine = std::make_unique<infer::InferenceEngine>(*model_, options_);
  engine->plan({batch, cin, h, w});
  it = engines_.emplace(key, std::move(engine)).first;
  obs::gauge("serve/engine_pool_buckets")
      .set(static_cast<double>(engines_.size()));
  return *it->second;
}

void EnginePool::refresh_weights() {
  for (auto& [key, engine] : engines_) engine->refresh_weights();
}

std::size_t EnginePool::total_arena_bytes() const {
  std::size_t total = 0;
  for (const auto& [key, engine] : engines_) total += engine->arena_bytes();
  return total;
}

}  // namespace turb::serve
