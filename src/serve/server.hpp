// Concurrent rollout serving: many RolloutRequest sessions multiplexed over
// shared inference engines.
//
// The server turns the unified request API (core/rollout_api.hpp) into a
// throughput machine:
//
//   * Admission control — submit() bounds the pending queue
//     (ServeConfig::queue_capacity) and rejects with a reason instead of
//     throwing, so overload is a normal, observable outcome
//     (serve/admission_rejects) rather than an exception storm.
//   * Scheduling — each step() round promotes pending sessions into the
//     active set (ServeConfig::max_sessions), then micro-batches every
//     ready FNO stream into chunks of at most ServeConfig::batch_window,
//     marshalled through one pooled engine per (batch, grid) bucket
//     (engine_pool.hpp) via FnoPropagator::advance_batched_into.
//   * Correctness — a session's bytes never depend on its batchmates:
//     engine kernels process batch entries on independent slabs, the
//     scheduler advances streams by the same window chunking run_rollout
//     uses, and RolloutStream re-marshals each window from the session's
//     own denormalised history. N concurrent sessions are therefore
//     bitwise identical to N sequential run_rollout calls (tests enforce
//     this at pool widths 1 and 4).
//   * Degradation — each stream owns its RolloutGuard; a tripped session
//     leaves the micro-batch and finishes on the fallback propagator
//     (PDE physics) alone while its former batchmates keep batching,
//     unperturbed.
//   * Ensemble UQ — a request with ensemble_k = K >= 2 fans into K member
//     streams (ensemble_session.hpp) that ride the same micro-batch path;
//     their windows are staged and judged together per round (optionally
//     against spread-calibrated guard bands) and the finished members reduce
//     to one mean prediction with per-snapshot variance.
//
// step()/drain() run the compute on the caller's thread; submit() and the
// introspection calls are safe from other threads (one mutex guards the
// session tables — the hot loops never touch it mid-kernel).
#pragma once

#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/fno_propagator.hpp"
#include "core/rollout_api.hpp"
#include "serve/engine_pool.hpp"
#include "serve/ensemble_session.hpp"
#include "util/precision.hpp"

namespace turb::serve {

struct ServeConfig {
  index_t max_sessions = 256;     ///< sessions advanced concurrently
  index_t queue_capacity = 1024;  ///< admitted-but-not-active bound
  index_t batch_window = 16;      ///< max streams per micro-batched forward
  /// Ensemble members per logical session drivers should request
  /// (RolloutRequest::ensemble_k): 1 = plain rollouts; K >= 2 fans each
  /// session into K member streams reduced to mean + per-snapshot spread.
  /// Advisory for request construction — submit() honours the request field.
  index_t ensemble_k = 1;
  /// Weight precision for every pooled engine (fp32 = bitwise-vs-training;
  /// bf16/fp16 = error-bounded, see DESIGN.md "Precision tiers").
  util::Precision precision = util::Precision::kFp32;
  /// Populated from the --serve-max-sessions / --serve-queue-cap /
  /// --serve-batch-window / --serve-ensemble-k / --serve-precision runtime
  /// flags (util/cli.hpp; the precision spec string is parsed — and
  /// validated — here).
  static ServeConfig from_runtime();
};

/// Nearest-rank percentile over an ascending-sorted sample. Total over its
/// whole domain: an empty sample yields 0, a single-element sample yields
/// that element for every p, and p is clamped into [0, 1] (p <= 0 → first
/// element, p >= 1 → last) so out-of-range probabilities cannot underflow
/// the rank computation.
[[nodiscard]] double nearest_rank_percentile(const std::vector<double>& sorted,
                                             double p);

using SessionId = std::int64_t;

/// submit() outcome: admitted with a session id, or rejected with a reason.
struct Admission {
  bool admitted = false;
  SessionId id = -1;
  std::string reason;  ///< non-empty iff rejected
};

enum class SessionState { queued, active, finished };

/// Point-in-time view of one session (returned by snapshot()/snapshots()).
struct SessionSnapshot {
  SessionId id = -1;
  std::string tag;
  SessionState state = SessionState::queued;
  index_t produced = 0;          ///< snapshots appended so far
  index_t steps = 0;             ///< requested horizon
  bool degraded = false;         ///< currently on the fallback propagator
  index_t guard_trips = 0;
  index_t ensemble_members = 1;  ///< 1 = plain session, K >= 2 = ensemble
  double latency_seconds = 0.0;  ///< admission → completion (0 until done)
};

class RolloutServer {
 public:
  /// @param primary  FNO propagator whose model backs the engine pool and
  ///                 whose marshalling drives every micro-batch (not owned)
  /// @param fallback guard fallback shared by server-primary sessions (not
  ///                 owned; may be null — then guarded submits are rejected).
  ///                 Its advance() re-seeds from each stream's own history,
  ///                 so one instance serves every degraded stream.
  RolloutServer(core::FnoPropagator& primary, core::Propagator* fallback,
                ServeConfig config);

  RolloutServer(const RolloutServer&) = delete;
  RolloutServer& operator=(const RolloutServer&) = delete;

  /// Admit a session for the shared FNO primary (micro-batched). Rejects —
  /// never throws — on a saturated queue or an invalid request, bumping
  /// serve/admission_rejects and explaining why in Admission::reason.
  /// A request with ensemble_k = K >= 2 fans out into K member streams
  /// (ensemble_session.hpp) co-batched like K sessions and reduced into one
  /// mean + spread result at take().
  Admission submit(core::RolloutRequest request);

  /// Admit a session driven by its own propagator pair (fault injection,
  /// heterogeneous models). Such sessions run solo — one window per
  /// scheduling round, never co-batched — so a divergent primary can trip
  /// its guard without ever sharing an engine with healthy streams.
  Admission submit_with_propagator(core::RolloutRequest request,
                                   core::Propagator& primary,
                                   core::Propagator* fallback);

  /// One scheduling round: promote pending sessions, advance every active
  /// stream by one window (micro-batched where possible), retire finished
  /// ones. Returns true while admitted work remains.
  bool step();

  /// Run scheduling rounds until every admitted session has finished.
  void drain();

  /// Ids of finished sessions whose results have not been taken yet.
  [[nodiscard]] std::vector<SessionId> finished() const;

  /// Move out a finished session's result and release the session.
  core::RolloutResult take(SessionId id);

  [[nodiscard]] SessionSnapshot snapshot(SessionId id) const;
  [[nodiscard]] std::vector<SessionSnapshot> snapshots() const;

  [[nodiscard]] index_t queue_depth() const;      ///< pending sessions
  [[nodiscard]] index_t active_sessions() const;  ///< currently scheduled

  /// Completed-session latency percentiles (nearest-rank, milliseconds).
  struct LatencyStats {
    std::int64_t completed = 0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
  };
  [[nodiscard]] LatencyStats latency_stats() const;

  /// Mean streams per micro-batched forward chunk since construction.
  [[nodiscard]] double mean_batch_occupancy() const;

  [[nodiscard]] EnginePool& engine_pool() { return pool_; }
  [[nodiscard]] const ServeConfig& config() const { return config_; }

 private:
  struct Session {
    SessionId id = -1;
    std::string tag;
    std::unique_ptr<core::RolloutStream> stream;  ///< plain (null if ensemble)
    std::unique_ptr<EnsembleSession> ensemble;    ///< K >= 2 fan-out
    bool solo = false;  ///< own propagator — never co-batched
    SessionState state = SessionState::queued;
    std::chrono::steady_clock::time_point admitted_at;
    double latency_seconds = 0.0;

    [[nodiscard]] bool done() const {
      return ensemble ? ensemble->done() : stream->done();
    }
  };

  Admission admit_locked(core::RolloutRequest&& request,
                         core::Propagator* primary,
                         core::Propagator* fallback, bool solo);
  Admission reject_locked(const std::string& reason);
  void update_gauges_locked();
  [[nodiscard]] SessionSnapshot snapshot_locked(const Session& s) const;

  core::FnoPropagator* primary_;
  core::Propagator* fallback_;
  ServeConfig config_;
  EnginePool pool_;

  mutable std::mutex mu_;
  std::map<SessionId, Session> sessions_;
  std::deque<SessionId> pending_;  ///< admission order
  std::vector<SessionId> active_;  ///< admission order
  SessionId next_id_ = 0;
  std::vector<double> completed_latencies_;
  std::int64_t batches_ = 0;
  std::int64_t batched_streams_ = 0;
};

}  // namespace turb::serve
