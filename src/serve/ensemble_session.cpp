#include "serve/ensemble_session.hpp"

#include <cmath>
#include <utility>

#include "obs/obs.hpp"

namespace turb::serve {

EnsembleSession::EnsembleSession(core::RolloutRequest base,
                                 core::Propagator* primary,
                                 core::Propagator* fallback)
    : base_(std::move(base)),
      guard_(base_.guard),
      calibrator_(base_.guard) {
  TURB_CHECK_MSG(base_.ensemble_k >= 2,
                 "EnsembleSession needs ensemble_k >= 2; K = 1 is a plain "
                 "session");
  members_.reserve(static_cast<std::size_t>(base_.ensemble_k));
  staged_.resize(static_cast<std::size_t>(base_.ensemble_k));
  for (index_t m = 0; m < base_.ensemble_k; ++m) {
    members_.push_back(std::make_unique<core::RolloutStream>(
        core::ensemble_member_request(base_, m), primary, fallback));
  }
  obs::counter("serve/ensemble_sessions").add();
  obs::counter("serve/ensemble_members").add(base_.ensemble_k);
}

void EnsembleSession::stage_window(index_t m,
                                   std::vector<core::FieldSnapshot>&& window) {
  TURB_CHECK(m >= 0 && m < members());
  TURB_CHECK_MSG(staged_[static_cast<std::size_t>(m)].empty(),
                 "member " << m << " staged twice in one round");
  TURB_CHECK(!window.empty());
  staged_[static_cast<std::size_t>(m)] = std::move(window);
  ++staged_count_;
}

void EnsembleSession::commit_round() {
  const index_t k = members();
  TURB_CHECK_MSG(staged_count_ == k,
                 "commit_round with " << staged_count_ << " of " << k
                                      << " member windows staged — members "
                                      << "fell out of lockstep");
  const std::size_t n = staged_[0].size();
  std::vector<std::vector<core::SnapshotMetrics>> metrics(
      static_cast<std::size_t>(k));
  for (index_t m = 0; m < k; ++m) {
    const auto& window = staged_[static_cast<std::size_t>(m)];
    TURB_CHECK_MSG(window.size() == n, "member " << m << " produced "
                                                 << window.size() << " vs "
                                                 << n << " snapshots");
    metrics[static_cast<std::size_t>(m)] = core::compute_metrics(window);
  }

  // Judge the K windows snapshot-by-snapshot. With spread calibration on,
  // snapshot j is judged against the spread envelope of the rounds already
  // accepted (check-then-update): its own spread is only staged with the
  // calibrator and folds into the envelope iff this round is accepted, so a
  // diverging member cannot widen the band it is judged against, and a
  // discarded round cannot poison the bands of the rounds after cooldown.
  core::GuardTrip trip = core::GuardTrip::none;
  double value = 0.0;
  std::size_t bad = 0;
  if (base_.guard.enabled) {
    std::vector<double> energies(static_cast<std::size_t>(k));
    std::vector<double> enstrophies(static_cast<std::size_t>(k));
    for (std::size_t j = 0; j < n && trip == core::GuardTrip::none; ++j) {
      if (base_.guard.spread_calibrated) {
        for (index_t m = 0; m < k; ++m) {
          energies[static_cast<std::size_t>(m)] =
              metrics[static_cast<std::size_t>(m)][j].kinetic_energy;
          enstrophies[static_cast<std::size_t>(m)] =
              metrics[static_cast<std::size_t>(m)][j].enstrophy;
        }
        const core::SpreadCalibrator::Bands bands =
            calibrator_.calibrate(energies.data(), enstrophies.data(), k);
        guard_.set_energy_band(bands.energy_min, bands.energy_max);
        guard_.set_enstrophy_max(bands.enstrophy_max);
        obs::gauge("serve/ensemble_energy_halfwidth")
            .set(bands.energy_halfwidth);
        obs::gauge("serve/ensemble_enstrophy_halfwidth")
            .set(bands.enstrophy_halfwidth);
      }
      for (index_t m = 0; m < k; ++m) {
        trip = guard_.check(staged_[static_cast<std::size_t>(m)][j],
                            metrics[static_cast<std::size_t>(m)][j], &value);
        if (trip != core::GuardTrip::none) {
          bad = j;
          break;
        }
      }
    }
  }

  if (trip != core::GuardTrip::none) {
    // Discard the whole round and hand every member to the fallback
    // together — one member leaving the consensus poisons the mean, and
    // lockstep degradation keeps the next staged round aligned. The staged
    // envelope candidates go with it: spread the guard just rejected must
    // not calibrate the bands future rounds are judged against.
    calibrator_.discard_round();
    guard_events_.push_back({produced(), staged_[0][bad].t, trip, value});
    for (index_t m = 0; m < k; ++m) {
      member(m).force_degrade(base_.guard.cooldown_snapshots);
      staged_[static_cast<std::size_t>(m)].clear();
    }
    obs::counter("serve/ensemble_guard_trips").add();
    obs::counter("robust/guard_trips").add();
  } else {
    calibrator_.commit_round();
    double energy_mean = 0.0, energy_spread = 0.0;
    std::vector<double> energies(static_cast<std::size_t>(k));
    for (index_t m = 0; m < k; ++m) {
      energies[static_cast<std::size_t>(m)] =
          metrics[static_cast<std::size_t>(m)][n - 1].kinetic_energy;
    }
    core::anchored_mean_spread(energies.data(), k, &energy_mean,
                               &energy_spread);
    last_energy_rel_spread_ =
        energy_mean != 0.0 ? energy_spread / std::abs(energy_mean) : 0.0;
    obs::gauge("serve/ensemble_energy_rel_spread")
        .set(last_energy_rel_spread_);
    for (index_t m = 0; m < k; ++m) {
      // Hand over the metrics judged above — the member stream must not
      // recompute (spectral diagnostics included) what the round already
      // paid for.
      member(m).accept_primary_window(
          std::move(staged_[static_cast<std::size_t>(m)]),
          std::move(metrics[static_cast<std::size_t>(m)]));
      staged_[static_cast<std::size_t>(m)].clear();
    }
  }
  staged_count_ = 0;
  obs::counter("serve/ensemble_rounds").add();
}

core::RolloutResult EnsembleSession::take_result() {
  TURB_CHECK_MSG(done(), "take_result on an unfinished ensemble session");
  std::vector<core::RolloutResult> member_results;
  member_results.reserve(members_.size());
  for (auto& m : members_) member_results.push_back(m->take_result());
  return core::reduce_ensemble_members(std::move(member_results),
                                       std::move(guard_events_),
                                       base_.ensemble_keep_members);
}

}  // namespace turb::serve
