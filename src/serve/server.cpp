#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/obs.hpp"
#include "util/cli.hpp"

namespace turb::serve {

double nearest_rank_percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  // Clamp before the size_t cast: ceil of a negative p·n would be cast from
  // a negative double to an unsigned rank (undefined behaviour), and p > 1
  // would index past the end were it not re-clamped below.
  p = std::min(std::max(p, 0.0), 1.0);
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(p * n));
  rank = std::min(std::max<std::size_t>(rank, 1), sorted.size());
  return sorted[rank - 1];
}

ServeConfig ServeConfig::from_runtime() {
  const ServeRuntimeOptions& opts = serve_runtime_options();
  ServeConfig cfg;
  cfg.max_sessions = opts.max_sessions;
  cfg.queue_capacity = opts.queue_capacity;
  cfg.batch_window = opts.batch_window;
  cfg.ensemble_k = opts.ensemble_k;
  cfg.precision = util::parse_precision(opts.precision);
  return cfg;
}

RolloutServer::RolloutServer(core::FnoPropagator& primary,
                             core::Propagator* fallback, ServeConfig config)
    : primary_(&primary),
      fallback_(fallback),
      config_(config),
      pool_(primary.model(), infer::EngineOptions{config.precision}) {
  TURB_CHECK(config_.max_sessions >= 1);
  TURB_CHECK(config_.queue_capacity >= 1);
  TURB_CHECK(config_.batch_window >= 1);
}

Admission RolloutServer::reject_locked(const std::string& reason) {
  obs::counter("serve/admission_rejects").add();
  Admission a;
  a.admitted = false;
  a.reason = reason;
  return a;
}

Admission RolloutServer::admit_locked(core::RolloutRequest&& request,
                                      core::Propagator* primary,
                                      core::Propagator* fallback, bool solo) {
  // Admission control validates instead of letting RolloutStream's TURB_CHECK
  // fire: overload and bad requests are expected server inputs, and a
  // rejected stream must not take the process down.
  if (static_cast<index_t>(pending_.size()) >= config_.queue_capacity) {
    return reject_locked("queue saturated: " +
                         std::to_string(pending_.size()) + " pending >= cap " +
                         std::to_string(config_.queue_capacity));
  }
  if (request.steps < 1) return reject_locked("request.steps must be >= 1");
  if (request.window < 1) return reject_locked("request.window must be >= 1");
  if (request.batch_hint < 1) {
    return reject_locked("request.batch_hint must be >= 1");
  }
  if (request.seed.empty()) return reject_locked("empty seed history");
  if (static_cast<index_t>(request.seed.size()) < primary->min_history()) {
    return reject_locked(
        "seed holds " + std::to_string(request.seed.size()) +
        " snapshots but " + primary->name() + " needs " +
        std::to_string(primary->min_history()));
  }
  if (request.max_history < primary->min_history()) {
    return reject_locked("request.max_history below the primary's window");
  }
  if (request.guard.enabled && fallback == nullptr) {
    return reject_locked("guarded request without a fallback propagator");
  }
  if (request.ensemble_k < 1) {
    return reject_locked("request.ensemble_k must be >= 1");
  }
  if (request.ensemble_k > 1 && solo) {
    return reject_locked(
        "ensemble sessions require the shared server primary "
        "(submit, not submit_with_propagator)");
  }
  if (request.ensemble_eps < 0.0) {
    return reject_locked("request.ensemble_eps must be >= 0");
  }

  Session session;
  session.id = next_id_++;
  session.tag = request.tag;
  session.solo = solo;
  session.state = SessionState::queued;
  session.admitted_at = std::chrono::steady_clock::now();
  if (request.ensemble_k > 1) {
    session.ensemble = std::make_unique<EnsembleSession>(std::move(request),
                                                         primary, fallback);
  } else {
    session.stream = std::make_unique<core::RolloutStream>(std::move(request),
                                                           primary, fallback);
  }
  const SessionId id = session.id;
  pending_.push_back(id);
  sessions_.emplace(id, std::move(session));
  obs::counter("serve/admitted").add();
  update_gauges_locked();
  Admission a;
  a.admitted = true;
  a.id = id;
  return a;
}

Admission RolloutServer::submit(core::RolloutRequest request) {
  std::lock_guard<std::mutex> lock(mu_);
  return admit_locked(std::move(request), primary_, fallback_,
                      /*solo=*/false);
}

Admission RolloutServer::submit_with_propagator(core::RolloutRequest request,
                                                core::Propagator& primary,
                                                core::Propagator* fallback) {
  std::lock_guard<std::mutex> lock(mu_);
  return admit_locked(std::move(request), &primary, fallback, /*solo=*/true);
}

bool RolloutServer::step() {
  TURB_TRACE_SCOPE("serve/round");
  std::lock_guard<std::mutex> lock(mu_);

  while (static_cast<index_t>(active_.size()) < config_.max_sessions &&
         !pending_.empty()) {
    const SessionId id = pending_.front();
    pending_.pop_front();
    sessions_.at(id).state = SessionState::active;
    active_.push_back(id);
  }

  // Partition the active set: ready server-primary streams micro-batch per
  // grid bucket; solo and degraded streams advance one window on their own
  // propagators. An ensemble session contributes each member stream as an
  // ordinary batchable entry (windows staged with the group instead of
  // accepted directly); a degraded group sends every member down the alone
  // path together. Admission order is preserved everywhere, so the schedule
  // — and the engine-pool bucket sequence — is deterministic.
  struct ReadyEntry {
    core::RolloutStream* stream;
    EnsembleSession* group;  ///< null for plain sessions
    index_t member;
  };
  std::map<std::pair<index_t, index_t>, std::vector<ReadyEntry>> ready;
  std::vector<core::RolloutStream*> alone;
  std::vector<EnsembleSession*> staged_groups;
  for (const SessionId id : active_) {
    Session& session = sessions_.at(id);
    if (session.ensemble) {
      EnsembleSession* group = session.ensemble.get();
      if (group->done()) continue;
      if (group->degraded()) {
        for (index_t m = 0; m < group->members(); ++m) {
          alone.push_back(&group->member(m));
        }
        continue;
      }
      staged_groups.push_back(group);
      for (index_t m = 0; m < group->members(); ++m) {
        core::RolloutStream* stream = &group->member(m);
        const TensorD& field = stream->history().back().u1;
        ready[{field.dim(0), field.dim(1)}].push_back({stream, group, m});
      }
      continue;
    }
    core::RolloutStream* stream = session.stream.get();
    if (stream->done()) continue;
    if (session.solo || stream->degraded()) {
      alone.push_back(stream);
      continue;
    }
    const TensorD& field = stream->history().back().u1;
    ready[{field.dim(0), field.dim(1)}].push_back({stream, nullptr, 0});
  }

  const index_t cin = primary_->model().config().in_channels;
  for (auto& [grid, entries] : ready) {
    for (std::size_t base = 0; base < entries.size();
         base += static_cast<std::size_t>(config_.batch_window)) {
      const auto k = static_cast<index_t>(
          std::min(entries.size() - base,
                   static_cast<std::size_t>(config_.batch_window)));
      std::vector<const core::History*> histories(
          static_cast<std::size_t>(k));
      std::vector<index_t> counts(static_cast<std::size_t>(k));
      std::vector<std::vector<core::FieldSnapshot>> windows(
          static_cast<std::size_t>(k));
      std::vector<std::vector<core::FieldSnapshot>*> outs(
          static_cast<std::size_t>(k));
      index_t snapshots = 0;
      for (index_t i = 0; i < k; ++i) {
        core::RolloutStream* stream = entries[base + i].stream;
        histories[i] = &stream->history();
        counts[i] = stream->next_window();
        outs[i] = &windows[i];
        snapshots += counts[i];
      }
      {
        TURB_TRACE_SCOPE("serve/batch");
        infer::InferenceEngine& engine =
            pool_.acquire(2 * k, cin, grid.first, grid.second);
        primary_->advance_batched_into(engine, histories.data(),
                                       counts.data(), k, outs.data());
      }
      batches_ += 1;
      batched_streams_ += k;
      obs::counter("serve/batches").add();
      obs::counter("serve/batched_streams").add(k);
      obs::counter("serve/snapshots").add(snapshots);
      obs::gauge("serve/batch_occupancy").set(static_cast<double>(k));
      for (index_t i = 0; i < k; ++i) {
        const ReadyEntry& entry = entries[base + i];
        if (entry.group != nullptr) {
          // Ensemble members are judged together once the whole round is in.
          entry.group->stage_window(entry.member, std::move(windows[i]));
        } else {
          entry.stream->accept_primary_window(std::move(windows[i]));
        }
      }
    }
  }

  for (core::RolloutStream* stream : alone) {
    const index_t count = stream->next_window();
    stream->step();
    obs::counter("serve/snapshots").add(count);
  }

  // All batches of this round are in: commit each staged ensemble round
  // (spread-calibrated guard check, then accept-all or degrade-all).
  for (EnsembleSession* group : staged_groups) {
    if (group->round_pending()) group->commit_round();
  }

  // Retire finished sessions, keeping the active set in admission order.
  const auto now = std::chrono::steady_clock::now();
  std::vector<SessionId> still_active;
  still_active.reserve(active_.size());
  for (const SessionId id : active_) {
    Session& session = sessions_.at(id);
    if (!session.done()) {
      still_active.push_back(id);
      continue;
    }
    session.state = SessionState::finished;
    session.latency_seconds =
        std::chrono::duration<double>(now - session.admitted_at).count();
    completed_latencies_.push_back(session.latency_seconds);
    obs::counter("serve/completed").add();
    obs::timer("serve/session_latency").record(session.latency_seconds);
  }
  active_ = std::move(still_active);
  update_gauges_locked();
  return !active_.empty() || !pending_.empty();
}

void RolloutServer::drain() {
  while (step()) {
  }
}

void RolloutServer::update_gauges_locked() {
  obs::gauge("serve/queue_depth")
      .set(static_cast<double>(pending_.size()));
  obs::gauge("serve/active_sessions")
      .set(static_cast<double>(active_.size()));
  if (!completed_latencies_.empty()) {
    std::vector<double> sorted = completed_latencies_;
    std::sort(sorted.begin(), sorted.end());
    obs::gauge("serve/latency_p50_ms").set(nearest_rank_percentile(sorted, 0.50) * 1e3);
    obs::gauge("serve/latency_p99_ms").set(nearest_rank_percentile(sorted, 0.99) * 1e3);
  }
}

std::vector<SessionId> RolloutServer::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SessionId> out;
  for (const auto& [id, session] : sessions_) {
    if (session.state == SessionState::finished) out.push_back(id);
  }
  return out;
}

core::RolloutResult RolloutServer::take(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  TURB_CHECK_MSG(it != sessions_.end(), "unknown session id " << id);
  TURB_CHECK_MSG(it->second.state == SessionState::finished,
                 "session " << id << " has not finished");
  core::RolloutResult result = it->second.ensemble
                                   ? it->second.ensemble->take_result()
                                   : it->second.stream->take_result();
  sessions_.erase(it);
  return result;
}

SessionSnapshot RolloutServer::snapshot_locked(const Session& s) const {
  SessionSnapshot snap;
  snap.id = s.id;
  snap.tag = s.tag;
  snap.state = s.state;
  if (s.ensemble) {
    snap.produced = s.ensemble->produced();
    snap.steps = s.ensemble->member(0).request().steps;
    snap.degraded = s.ensemble->degraded();
    snap.guard_trips = s.ensemble->guard_trips();
    snap.ensemble_members = s.ensemble->members();
  } else {
    snap.produced = s.stream->produced();
    snap.steps = s.stream->request().steps;
    snap.degraded = s.stream->degraded();
    snap.guard_trips = s.stream->result().guard_trips();
  }
  snap.latency_seconds = s.latency_seconds;
  return snap;
}

SessionSnapshot RolloutServer::snapshot(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  TURB_CHECK_MSG(it != sessions_.end(), "unknown session id " << id);
  return snapshot_locked(it->second);
}

std::vector<SessionSnapshot> RolloutServer::snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SessionSnapshot> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    out.push_back(snapshot_locked(session));
  }
  return out;
}

index_t RolloutServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<index_t>(pending_.size());
}

index_t RolloutServer::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<index_t>(active_.size());
}

RolloutServer::LatencyStats RolloutServer::latency_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  LatencyStats stats;
  stats.completed = static_cast<std::int64_t>(completed_latencies_.size());
  if (completed_latencies_.empty()) return stats;
  std::vector<double> sorted = completed_latencies_;
  std::sort(sorted.begin(), sorted.end());
  stats.p50_ms = nearest_rank_percentile(sorted, 0.50) * 1e3;
  stats.p99_ms = nearest_rank_percentile(sorted, 0.99) * 1e3;
  stats.max_ms = sorted.back() * 1e3;
  return stats;
}

double RolloutServer::mean_batch_occupancy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_ == 0 ? 0.0
                       : static_cast<double>(batched_streams_) /
                             static_cast<double>(batches_);
}

}  // namespace turb::serve
