// EnsembleSession — K-member ensemble UQ fan-out for one logical serving
// session (PAPERS.md, arxiv 2506.04898).
//
// A request with ensemble_k = K >= 2 becomes K member RolloutStreams built
// by core::ensemble_member_request: member 0 runs the seed unchanged,
// members 1..K-1 run deterministically perturbed copies. The server's
// scheduler co-batches the member streams through the shared engine exactly
// like K independent sessions — which is the determinism contract: an
// untripped member is bitwise identical to a solo run_rollout of that
// member's request, at any pool width.
//
// What the group adds on top of K solo streams:
//
//   * Round staging — the scheduler stages each member's freshly produced
//     window here instead of accepting it into the member stream, then calls
//     commit_round() once all members have produced. The group therefore
//     judges the K windows *together* before any member's trajectory moves.
//   * Spread-calibrated guarding — with GuardConfig::spread_calibrated, the
//     group guard's energy/enstrophy bands are re-derived per snapshot from
//     the across-member spread envelope of the rounds accepted so far
//     (core::SpreadCalibrator, check-then-update); a trip means a member
//     left the ensemble consensus. On a trip the whole round is discarded —
//     its staged envelope contribution included — and every member degrades
//     to the fallback together (cool-down or for good), keeping the members
//     in lockstep — the precondition for the next staged round to line up
//     again.
//   * Reduction — take_result() reduces the finished members into one mean
//     prediction with per-snapshot variance / relative spread
//     (core::reduce_ensemble_members), optionally keeping the member results.
#pragma once

#include <memory>
#include <vector>

#include "core/ensemble.hpp"
#include "core/rollout_api.hpp"

namespace turb::serve {

class EnsembleSession {
 public:
  /// Builds ensemble_k member streams from `base` (which must have
  /// ensemble_k >= 2; admission validates). `primary`/`fallback` are shared
  /// by every member, not owned.
  EnsembleSession(core::RolloutRequest base, core::Propagator* primary,
                  core::Propagator* fallback);

  [[nodiscard]] index_t members() const {
    return static_cast<index_t>(members_.size());
  }
  [[nodiscard]] core::RolloutStream& member(index_t m) {
    return *members_[static_cast<std::size_t>(m)];
  }

  /// Members advance in lockstep, so these mirror member 0.
  [[nodiscard]] bool done() const { return members_[0]->done(); }
  [[nodiscard]] bool degraded() const { return members_[0]->degraded(); }
  [[nodiscard]] index_t produced() const { return members_[0]->produced(); }

  /// Group-level guard events so far (take_result() moves them out).
  [[nodiscard]] index_t guard_trips() const {
    return static_cast<index_t>(guard_events_.size());
  }
  /// Energy relative spread (spread / |mean|) of the last committed
  /// snapshot — the cheap per-round trustworthiness gauge.
  [[nodiscard]] double last_energy_rel_spread() const {
    return last_energy_rel_spread_;
  }

  /// Stage member m's freshly produced primary window for this round.
  void stage_window(index_t m, std::vector<core::FieldSnapshot>&& window);

  /// True when stage_window has been called since the last commit_round.
  [[nodiscard]] bool round_pending() const { return staged_count_ > 0; }

  /// Judge the staged round: calibrate the guard bands from the member
  /// spread (when configured), check every member snapshot, then either
  /// accept all member windows or — on any trip — discard them all and
  /// degrade every member to the fallback together.
  void commit_round();

  /// Reduce the finished members into the combined ensemble result.
  [[nodiscard]] core::RolloutResult take_result();

 private:
  core::RolloutRequest base_;
  std::vector<std::unique_ptr<core::RolloutStream>> members_;
  core::RolloutGuard guard_;              ///< group-level, from base_.guard
  core::SpreadCalibrator calibrator_;
  std::vector<std::vector<core::FieldSnapshot>> staged_;
  index_t staged_count_ = 0;
  std::vector<core::GuardEvent> guard_events_;
  double last_energy_rel_spread_ = 0.0;
};

}  // namespace turb::serve
