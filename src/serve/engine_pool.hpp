// Shape-bucketed inference-engine pool for the serving layer.
//
// Micro-batching concurrent rollout sessions means driving `forward_raw`
// at many different batch widths: a full scheduling chunk of k streams
// plans (2k, C_in, H, W), the tail chunk something smaller, and mixed-grid
// workloads add (H, W) variants. InferenceEngine intentionally owns exactly
// one planned layout at a time — re-planning re-lays the arena and defeats
// the zero-steady-state-allocation contract — so the pool keeps one engine
// per distinct (batch, C_in, H, W) bucket and hands out planned engines on
// demand. Buckets are created on first use and live for the pool's
// lifetime; a steady serving mix therefore allocates nothing after the
// first round (counted by serve/engine_pool_hits vs _misses).
#pragma once

#include <map>
#include <memory>

#include "fno/fno.hpp"
#include "infer/engine.hpp"

namespace turb::serve {

/// Bucket key: the planned input shape (batch, C_in, H, W) of an engine.
struct EngineKey {
  index_t batch = 0;
  index_t cin = 0;
  index_t h = 0;
  index_t w = 0;
  auto operator<=>(const EngineKey&) const = default;
};

class EnginePool {
 public:
  /// @param model   trained FNO all pooled engines execute (not owned; must
  ///                 outlive the pool).
  /// @param options build options (precision, …) applied to every engine the
  ///                pool creates — all buckets serve at one precision.
  explicit EnginePool(fno::Fno& model, infer::EngineOptions options = {});

  EnginePool(const EnginePool&) = delete;
  EnginePool& operator=(const EnginePool&) = delete;

  /// Planned engine for input shape (batch, cin, h, w): returns the bucket's
  /// engine, creating and planning it on first use. The reference is stable
  /// for the pool's lifetime. Counters: serve/engine_pool_hits on reuse,
  /// serve/engine_pool_misses on bucket creation.
  infer::InferenceEngine& acquire(index_t batch, index_t cin, index_t h,
                                  index_t w);

  /// Re-snapshot the model's weights into every pooled engine (after
  /// further training steps).
  void refresh_weights();

  [[nodiscard]] std::size_t size() const { return engines_.size(); }
  [[nodiscard]] util::Precision precision() const {
    return options_.precision;
  }

  /// Sum of the pooled engines' arena footprints.
  [[nodiscard]] std::size_t total_arena_bytes() const;

 private:
  fno::Fno* model_;
  infer::EngineOptions options_;
  std::map<EngineKey, std::unique_ptr<infer::InferenceEngine>> engines_;
};

}  // namespace turb::serve
