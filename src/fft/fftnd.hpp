// Batched N-dimensional transforms over the trailing axes of a Tensor.
//
// rfftn/irfftn transform the trailing `ndim` axes (real last axis, complex
// for the rest), which is exactly the layout the FNO spectral convolutions
// need: (batch, channels, spatial...) with the transform applied per
// batch/channel slab. Lines are processed in parallel on the global thread
// pool.
//
// Mode-pruned transforms: callers that only consume (forward) or only
// populate (inverse) a subset of spectrum coordinates — the FNO spectral
// convolution keeps m ≪ N modes per axis — can pass a ModeMask. The c2c
// stages then skip every 1-D line whose already-transformed coordinates lie
// outside the kept set:
//
//   * forward: a skipped line's outputs are never read by the caller, and
//     the lines that are computed run the identical per-line kernel on
//     identical inputs, so kept coordinates are bitwise identical to the
//     full transform;
//   * inverse: a skipped line's inputs are exactly zero (caller contract:
//     the spectrum is zero wherever any masked coordinate is pruned), and
//     zeros propagate exactly through the butterflies, so the final real
//     output is bitwise identical to the full transform.
//
// The 1-D real stage (rfft/irfft rows) is never pruned: its lines are
// indexed by coordinates that are dense on that side of the transform.
//
// The `_into` variants write through a caller-held output tensor
// (reallocated only on shape change) and the inverse path stages through a
// workspace.hpp scratch buffer, keeping the allocator off the training hot
// path.
#pragma once

#include <algorithm>
#include <complex>
#include <cstdint>
#include <vector>

#include "fft/plan_cache.hpp"
#include "fft/real.hpp"
#include "fft/workspace.hpp"
#include "obs/obs.hpp"
#include "tensor/tensor.hpp"
#include "util/isa.hpp"
#include "util/thread_pool.hpp"

namespace turb::fft {

/// Per-trailing-axis kept-coordinate flags for mode-pruned transforms.
/// mask[j] (j = 0 for the outermost transformed axis, …, ndim-1 for the
/// rfft axis) holds one byte per spectrum coordinate of that axis — the
/// full extent for c2c axes, n/2+1 for the last — nonzero meaning "kept".
/// An empty per-axis vector keeps every coordinate of that axis.
using ModeMask = std::vector<std::vector<std::uint8_t>>;

namespace detail {

/// Flatten the per-axis masks of trailing axes [first, ndim) into keep
/// flags over their row-major product — the `inner` block of a c2c line
/// dispatch along a more-outer axis. Returns an empty vector when those
/// axes prune nothing.
inline std::vector<std::uint8_t> inner_keep_flags(const ModeMask& mask,
                                                  std::size_t first,
                                                  const Shape& spec_shape,
                                                  std::size_t ndim) {
  const std::size_t rank = spec_shape.size();
  bool any = false;
  for (std::size_t j = first; j < ndim; ++j) {
    if (!mask[j].empty()) any = true;
  }
  if (!any) return {};
  index_t inner = 1;
  for (std::size_t j = first; j < ndim; ++j) {
    inner *= spec_shape[rank - ndim + j];
  }
  std::vector<std::uint8_t> keep(static_cast<std::size_t>(inner), 1);
  for (index_t i = 0; i < inner; ++i) {
    index_t rem = i;
    for (std::size_t j = ndim; j-- > first;) {
      const index_t extent = spec_shape[rank - ndim + j];
      const index_t coord = rem % extent;
      rem /= extent;
      if (!mask[j].empty() && mask[j][static_cast<std::size_t>(coord)] == 0) {
        keep[static_cast<std::size_t>(i)] = 0;
        break;
      }
    }
  }
  return keep;
}

inline void validate_mask(const ModeMask* mask, const Shape& spec_shape,
                          int ndim) {
  if (mask == nullptr) return;
  TURB_CHECK_MSG(mask->size() == static_cast<std::size_t>(ndim),
                 "ModeMask has " << mask->size() << " axes, transform has "
                                 << ndim);
  const std::size_t rank = spec_shape.size();
  for (std::size_t j = 0; j < mask->size(); ++j) {
    const auto& axis_mask = (*mask)[j];
    const auto extent = static_cast<std::size_t>(
        spec_shape[rank - static_cast<std::size_t>(ndim) + j]);
    TURB_CHECK_MSG(axis_mask.empty() || axis_mask.size() == extent,
                   "ModeMask axis " << j << " has " << axis_mask.size()
                                    << " flags for extent " << extent);
  }
}

}  // namespace detail

/// In-place complex FFT along `axis` over every line of the tensor. With
/// `inner_keep` (one flag per flattened coordinate of the axes after
/// `axis`), lines whose inner coordinate is pruned are left untouched.
template <typename T>
void c2c_axis(Tensor<std::complex<T>>& x, std::size_t axis, bool forward,
              const std::vector<std::uint8_t>* inner_keep = nullptr) {
  using cpx = std::complex<T>;
  TURB_TRACE_SCOPE("fft/c2c");
  TURB_CHECK(axis < x.rank());
  const Shape& shape = x.shape();
  const index_t n = shape[axis];
  if (n == 1) return;
  index_t outer = 1, inner = 1;
  for (std::size_t i = 0; i < axis; ++i) outer *= shape[i];
  for (std::size_t i = axis + 1; i < shape.size(); ++i) inner *= shape[i];

  // Pruning coverage counters (exported via --metrics-out): every candidate
  // line counts toward lines_total, masked-out lines toward
  // pruned_lines_skipped.
  static obs::Counter& lines_total = obs::counter("fft/lines_total");
  static obs::Counter& lines_skipped = obs::counter("fft/pruned_lines_skipped");
  lines_total.add(outer * inner);
  util::fft_dispatch_counter(util::active_isa()).add(1);
  const std::uint8_t* keep = nullptr;
  if (inner_keep != nullptr && !inner_keep->empty()) {
    TURB_CHECK_MSG(static_cast<index_t>(inner_keep->size()) == inner,
                   "inner_keep has " << inner_keep->size()
                                     << " flags for inner extent " << inner);
    keep = inner_keep->data();
    index_t kept = 0;
    for (const std::uint8_t flag : *inner_keep) kept += (flag != 0);
    lines_skipped.add(outer * (inner - kept));
  }

  const PlanC2C<T>& p = plan<T>(n);
  cpx* data = x.data();

  // Lines are independent (disjoint read/write slices), so batch dispatch is
  // chunked over the pool: each task transforms a contiguous run of lines,
  // amortising the dispatch cost over many transforms. The skip test inside
  // the body does not move chunk boundaries, so the partition — and with it
  // the thread-count determinism contract — is unchanged.
  if (inner == 1) {
    if (keep != nullptr && keep[0] == 0) return;
    parallel_for_chunked(0, outer, [&](index_t ob, index_t oe) {
      for (index_t o = ob; o < oe; ++o) {
        cpx* line = data + o * n;
        forward ? p.forward(line) : p.inverse(line);
      }
    });
    return;
  }

  // Strided lines: collect kept lines into lane-interleaved batches of up to
  // B and run them through the lane-per-line plan path. Collection happens
  // within each chunk, so the chunk partition — and the thread-count
  // determinism contract — is unchanged; a line's bits do not depend on its
  // batch occupancy (see fft/plan.hpp), so the grouping (which shifts with
  // pruning gaps, chunk boundaries, and ragged tails) is unobservable.
  const index_t batch =
      line_batching_enabled() ? lane_count<T>(util::active_isa()) : 1;
  if (batch > 1) {
    static obs::Counter& batched_lines = obs::counter("fft/batched_lines");
    static obs::Counter& tail_lines = obs::counter("fft/batch_tail_lines");
    const bool lanes_layout = p.batch_wants_lanes();
    parallel_for_chunked(0, outer * inner, [&](index_t tb, index_t te) {
      Tensor<cpx>& buf = workspace<cpx>("fft/c2c_lanes", {n * batch});
      cpx* work = buf.data();
      cpx* lanes[kMaxLanes];
      index_t count = 0;
      // Counter deltas accumulate locally and publish once per chunk — a
      // relaxed add per flush is still a shared cache line bouncing between
      // every worker thread.
      std::int64_t my_batched = 0, my_tails = 0;
      const auto flush = [&] {
        if (count == 0) return;
        if (lanes_layout) {
          for (index_t l = 0; l < count; ++l) {
            const cpx* base = lanes[l];
            for (index_t j = 0; j < n; ++j) {
              work[j * count + l] = base[j * inner];
            }
          }
          forward ? p.forward_batch(work, count)
                  : p.inverse_batch(work, count);
          for (index_t l = 0; l < count; ++l) {
            cpx* base = lanes[l];
            for (index_t j = 0; j < n; ++j) {
              base[j * inner] = work[j * count + l];
            }
          }
        } else {
          for (index_t l = 0; l < count; ++l) {
            const cpx* base = lanes[l];
            cpx* w = work + l * n;
            for (index_t j = 0; j < n; ++j) w[j] = base[j * inner];
          }
          forward ? p.forward_lines(work, count)
                  : p.inverse_lines(work, count);
          for (index_t l = 0; l < count; ++l) {
            cpx* base = lanes[l];
            const cpx* w = work + l * n;
            for (index_t j = 0; j < n; ++j) base[j * inner] = w[j];
          }
        }
        my_batched += count;
        if (count < batch) my_tails += count;
        count = 0;
      };
      for (index_t t = tb; t < te; ++t) {
        const index_t o = t / inner;
        const index_t i = t % inner;
        if (keep != nullptr && keep[i] == 0) continue;
        lanes[count++] = data + o * n * inner + i;
        if (count == batch) flush();
      }
      flush();
      if (my_batched != 0) batched_lines.add(my_batched);
      if (my_tails != 0) tail_lines.add(my_tails);
    });
    return;
  }

  parallel_for_chunked(0, outer * inner, [&](index_t tb, index_t te) {
    thread_local std::vector<cpx> line;
    line.resize(static_cast<std::size_t>(n));
    for (index_t t = tb; t < te; ++t) {
      const index_t o = t / inner;
      const index_t i = t % inner;
      if (keep != nullptr && keep[i] == 0) continue;
      cpx* base = data + o * n * inner + i;
      for (index_t j = 0; j < n; ++j) line[static_cast<std::size_t>(j)] = base[j * inner];
      forward ? p.forward(line.data()) : p.inverse(line.data());
      for (index_t j = 0; j < n; ++j) base[j * inner] = line[static_cast<std::size_t>(j)];
    }
  });
}

/// Real-to-complex transform of the trailing `ndim` axes into `out`
/// (reallocated only when the spectrum shape changes). With a mask, spectrum
/// positions having any pruned coordinate are unspecified (they hold
/// partially transformed values); kept positions are bitwise identical to
/// the unmasked transform.
template <typename T>
void rfftn_into(const Tensor<T>& x, int ndim, Tensor<std::complex<T>>& out,
                const ModeMask* mask = nullptr) {
  using cpx = std::complex<T>;
  TURB_TRACE_SCOPE("fft/r2c");
  TURB_CHECK(ndim >= 1 && static_cast<std::size_t>(ndim) <= x.rank());
  const Shape& in_shape = x.shape();
  const std::size_t rank = in_shape.size();
  const index_t n_last = in_shape[rank - 1];
  Shape out_shape = in_shape;
  out_shape[rank - 1] = n_last / 2 + 1;
  detail::validate_mask(mask, out_shape, ndim);

  if (out.shape() != out_shape) out = Tensor<cpx>(out_shape);
  const index_t rows = numel(in_shape) / n_last;
  static obs::Counter& lines = obs::counter("fft/r2c_lines");
  static obs::Counter& lines_total = obs::counter("fft/lines_total");
  lines.add(rows);
  lines_total.add(rows);
  util::fft_dispatch_counter(util::active_isa()).add(1);
  const index_t out_row = out_shape[rank - 1];
  const T* in_data = x.data();
  cpx* out_data = out.data();
  // Every row must be transformed (the other transform axes are still in
  // spatial coordinates here), but output bins of a pruned last-axis
  // coordinate are never read downstream, so the per-row unpack skips them.
  const std::uint8_t* keep_bins = nullptr;
  if (mask != nullptr && !mask->back().empty()) {
    keep_bins = mask->back().data();
  }
  const index_t batch =
      line_batching_enabled() ? lane_count<T>(util::active_isa()) : 1;
  if (batch > 1) {
    static obs::Counter& batched_lines = obs::counter("fft/batched_lines");
    static obs::Counter& tail_lines = obs::counter("fft/batch_tail_lines");
    const index_t h = n_last / 2;
    parallel_for_chunked(0, rows, [&](index_t rb, index_t re) {
      Tensor<cpx>& zbuf = workspace<cpx>("fft/rfft_z_lanes", {h * batch});
      Tensor<cpx>& ubuf = workspace<cpx>("fft/rfft_u_lanes", {(h + 1) * batch});
      Tensor<cpx>& twbuf = workspace<cpx>("fft/rfft_tw", {h + 1});
      fill_rfft_twiddles(twbuf.data(), n_last);
      std::int64_t my_batched = 0, my_tails = 0;
      for (index_t r = rb; r < re; r += batch) {
        const index_t nl = std::min(batch, re - r);
        rfft_batch_scratch(in_data + r * n_last, n_last,
                           out_data + r * out_row, out_row, n_last, nl,
                           keep_bins, zbuf.data(), ubuf.data(), twbuf.data());
        my_batched += nl;
        if (nl < batch) my_tails += nl;
      }
      batched_lines.add(my_batched);
      if (my_tails != 0) tail_lines.add(my_tails);
    });
  } else {
    parallel_for_chunked(0, rows, [&](index_t rb, index_t re) {
      for (index_t r = rb; r < re; ++r) {
        rfft(in_data + r * n_last, out_data + r * out_row, n_last, keep_bins);
      }
    });
  }

  // Remaining (complex) transform axes, innermost-first order is arbitrary.
  // Stage d transforms trailing axis j = ndim-1-d; the axes after j are
  // already in spectral coordinates, so their masks prune whole lines.
  for (int d = 1; d < ndim; ++d) {
    const std::size_t axis = rank - 1 - static_cast<std::size_t>(d);
    std::vector<std::uint8_t> keep;
    if (mask != nullptr) {
      keep = detail::inner_keep_flags(
          *mask, static_cast<std::size_t>(ndim - d), out_shape,
          static_cast<std::size_t>(ndim));
    }
    c2c_axis(out, axis, /*forward=*/true, keep.empty() ? nullptr : &keep);
  }
}

/// Real-to-complex transform of the trailing `ndim` axes.
/// Input shape (..., S1, ..., Sd) → output (..., S1, ..., Sd/2+1).
template <typename T>
Tensor<std::complex<T>> rfftn(const Tensor<T>& x, int ndim,
                              const ModeMask* mask = nullptr) {
  Tensor<std::complex<T>> out;
  rfftn_into(x, ndim, out, mask);
  return out;
}

/// Inverse of rfftn, into `out` (reallocated only on shape change).
/// `n_last` is the original size of the last axis (it is not recoverable
/// from the truncated spectrum alone). With a mask, the caller guarantees
/// the spectrum is exactly zero at every position having any pruned
/// coordinate; the result is then bitwise identical to the unmasked
/// transform.
template <typename T>
void irfftn_into(const Tensor<std::complex<T>>& x, int ndim, index_t n_last,
                 Tensor<T>& out, const ModeMask* mask = nullptr) {
  using cpx = std::complex<T>;
  TURB_TRACE_SCOPE("fft/c2r");
  TURB_CHECK(ndim >= 1 && static_cast<std::size_t>(ndim) <= x.rank());
  const std::size_t rank = x.rank();
  TURB_CHECK_MSG(x.shape()[rank - 1] == n_last / 2 + 1,
                 "spectrum last-axis size inconsistent with n_last");
  detail::validate_mask(mask, x.shape(), ndim);

  // The inverse c2c stages run in place on a workspace copy; with ndim == 1
  // there are no c2c stages, so the rows are read straight from `x` and the
  // copy is skipped entirely.
  const cpx* spec = x.data();
  if (ndim > 1) {
    Tensor<cpx>& work = workspace<cpx>("fft/irfftn_work", x.shape());
    std::copy(x.data(), x.data() + x.size(), work.data());
    // Outermost trailing axis first; the axes after stage j's axis are still
    // untransformed spectral coordinates, so their masks prune whole lines
    // (which are exactly zero by the caller contract).
    for (int d = ndim - 1; d >= 1; --d) {
      const std::size_t axis = rank - 1 - static_cast<std::size_t>(d);
      std::vector<std::uint8_t> keep;
      if (mask != nullptr) {
        keep = detail::inner_keep_flags(
            *mask, static_cast<std::size_t>(ndim - d), x.shape(),
            static_cast<std::size_t>(ndim));
      }
      c2c_axis(work, axis, /*forward=*/false, keep.empty() ? nullptr : &keep);
    }
    spec = work.data();
  }

  Shape out_shape = x.shape();
  out_shape[rank - 1] = n_last;
  if (out.shape() != out_shape) out = Tensor<T>(out_shape);
  const index_t in_row = x.shape()[rank - 1];
  const index_t rows = numel(out_shape) / n_last;
  static obs::Counter& lines = obs::counter("fft/c2r_lines");
  static obs::Counter& lines_total = obs::counter("fft/lines_total");
  lines.add(rows);
  lines_total.add(rows);
  util::fft_dispatch_counter(util::active_isa()).add(1);
  T* out_data = out.data();
  const index_t batch =
      line_batching_enabled() ? lane_count<T>(util::active_isa()) : 1;
  if (batch > 1) {
    static obs::Counter& batched_lines = obs::counter("fft/batched_lines");
    static obs::Counter& tail_lines = obs::counter("fft/batch_tail_lines");
    const index_t h = n_last / 2;
    parallel_for_chunked(0, rows, [&](index_t rb, index_t re) {
      Tensor<cpx>& zbuf = workspace<cpx>("fft/irfft_z_lanes", {h * batch});
      Tensor<cpx>& ubuf =
          workspace<cpx>("fft/irfft_u_lanes", {(h + 1) * batch});
      Tensor<cpx>& twbuf = workspace<cpx>("fft/irfft_tw", {h});
      fill_irfft_twiddles(twbuf.data(), n_last);
      std::int64_t my_batched = 0, my_tails = 0;
      for (index_t r = rb; r < re; r += batch) {
        const index_t nl = std::min(batch, re - r);
        irfft_batch_scratch(spec + r * in_row, in_row,
                            out_data + r * n_last, n_last, n_last, nl,
                            zbuf.data(), ubuf.data(), twbuf.data());
        my_batched += nl;
        if (nl < batch) my_tails += nl;
      }
      batched_lines.add(my_batched);
      if (my_tails != 0) tail_lines.add(my_tails);
    });
  } else {
    parallel_for_chunked(0, rows, [&](index_t rb, index_t re) {
      for (index_t r = rb; r < re; ++r) {
        irfft(spec + r * in_row, out_data + r * n_last, n_last);
      }
    });
  }
}

/// Inverse of rfftn. `n_last` is the original size of the last axis.
template <typename T>
Tensor<T> irfftn(const Tensor<std::complex<T>>& x, int ndim, index_t n_last,
                 const ModeMask* mask = nullptr) {
  Tensor<T> out;
  irfftn_into(x, ndim, n_last, out, mask);
  return out;
}

}  // namespace turb::fft
