// Batched N-dimensional transforms over the trailing axes of a Tensor.
//
// rfftn/irfftn transform the trailing `ndim` axes (real last axis, complex
// for the rest), which is exactly the layout the FNO spectral convolutions
// need: (batch, channels, spatial...) with the transform applied per
// batch/channel slab. Lines are processed in parallel on the global thread
// pool.
#pragma once

#include <complex>
#include <vector>

#include "fft/plan_cache.hpp"
#include "fft/real.hpp"
#include "obs/obs.hpp"
#include "tensor/tensor.hpp"
#include "util/thread_pool.hpp"

namespace turb::fft {

/// In-place complex FFT along `axis` over every line of the tensor.
template <typename T>
void c2c_axis(Tensor<std::complex<T>>& x, std::size_t axis, bool forward) {
  using cpx = std::complex<T>;
  TURB_TRACE_SCOPE("fft/c2c");
  TURB_CHECK(axis < x.rank());
  const Shape& shape = x.shape();
  const index_t n = shape[axis];
  if (n == 1) return;
  index_t outer = 1, inner = 1;
  for (std::size_t i = 0; i < axis; ++i) outer *= shape[i];
  for (std::size_t i = axis + 1; i < shape.size(); ++i) inner *= shape[i];

  const PlanC2C<T>& p = plan<T>(n);
  cpx* data = x.data();

  // Lines are independent (disjoint read/write slices), so batch dispatch is
  // chunked over the pool: each task transforms a contiguous run of lines,
  // amortising the dispatch cost over many transforms.
  if (inner == 1) {
    parallel_for_chunked(0, outer, [&](index_t ob, index_t oe) {
      for (index_t o = ob; o < oe; ++o) {
        cpx* line = data + o * n;
        forward ? p.forward(line) : p.inverse(line);
      }
    });
    return;
  }

  parallel_for_chunked(0, outer * inner, [&](index_t tb, index_t te) {
    thread_local std::vector<cpx> line;
    line.resize(static_cast<std::size_t>(n));
    for (index_t t = tb; t < te; ++t) {
      const index_t o = t / inner;
      const index_t i = t % inner;
      cpx* base = data + o * n * inner + i;
      for (index_t j = 0; j < n; ++j) line[static_cast<std::size_t>(j)] = base[j * inner];
      forward ? p.forward(line.data()) : p.inverse(line.data());
      for (index_t j = 0; j < n; ++j) base[j * inner] = line[static_cast<std::size_t>(j)];
    }
  });
}

/// Real-to-complex transform of the trailing `ndim` axes.
/// Input shape (..., S1, ..., Sd) → output (..., S1, ..., Sd/2+1).
template <typename T>
Tensor<std::complex<T>> rfftn(const Tensor<T>& x, int ndim) {
  using cpx = std::complex<T>;
  TURB_TRACE_SCOPE("fft/r2c");
  TURB_CHECK(ndim >= 1 && static_cast<std::size_t>(ndim) <= x.rank());
  const Shape& in_shape = x.shape();
  const std::size_t rank = in_shape.size();
  const index_t n_last = in_shape[rank - 1];
  Shape out_shape = in_shape;
  out_shape[rank - 1] = n_last / 2 + 1;

  Tensor<cpx> out(out_shape);
  const index_t rows = numel(in_shape) / n_last;
  static obs::Counter& lines = obs::counter("fft/r2c_lines");
  lines.add(rows);
  const index_t out_row = out_shape[rank - 1];
  const T* in_data = x.data();
  cpx* out_data = out.data();
  parallel_for_chunked(0, rows, [&](index_t rb, index_t re) {
    for (index_t r = rb; r < re; ++r) {
      rfft(in_data + r * n_last, out_data + r * out_row, n_last);
    }
  });

  // Remaining (complex) transform axes, innermost-first order is arbitrary.
  for (int d = 1; d < ndim; ++d) {
    c2c_axis(out, rank - 1 - static_cast<std::size_t>(d), /*forward=*/true);
  }
  return out;
}

/// Inverse of rfftn. `n_last` is the original size of the last axis (it is
/// not recoverable from the truncated spectrum alone).
template <typename T>
Tensor<T> irfftn(const Tensor<std::complex<T>>& x, int ndim, index_t n_last) {
  using cpx = std::complex<T>;
  TURB_TRACE_SCOPE("fft/c2r");
  TURB_CHECK(ndim >= 1 && static_cast<std::size_t>(ndim) <= x.rank());
  const std::size_t rank = x.rank();
  TURB_CHECK_MSG(x.shape()[rank - 1] == n_last / 2 + 1,
                 "spectrum last-axis size inconsistent with n_last");

  Tensor<cpx> work = x;  // inverse c2c axes run on a copy
  for (int d = ndim - 1; d >= 1; --d) {
    c2c_axis(work, rank - 1 - static_cast<std::size_t>(d), /*forward=*/false);
  }

  Shape out_shape = x.shape();
  out_shape[rank - 1] = n_last;
  Tensor<T> out(out_shape);
  const index_t in_row = work.shape()[rank - 1];
  const index_t rows = numel(out_shape) / n_last;
  static obs::Counter& lines = obs::counter("fft/c2r_lines");
  lines.add(rows);
  const cpx* in_data = work.data();
  T* out_data = out.data();
  parallel_for_chunked(0, rows, [&](index_t rb, index_t re) {
    for (index_t r = rb; r < re; ++r) {
      irfft(in_data + r * in_row, out_data + r * n_last, n_last);
    }
  });
  return out;
}

}  // namespace turb::fft
