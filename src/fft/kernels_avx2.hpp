// AVX2/FMA kernels for the radix-2 butterfly stages (fft/plan.hpp) and the
// rfft/irfft half-length unpack loops (fft/real.hpp), behind util::isa
// runtime dispatch.
//
// Per-function target attributes keep the including TUs portable; callers
// must only reach these when util::active_isa() == Isa::kAvx2 (which implies
// CPUID AVX2+FMA). Complex data is interleaved [re, im] in memory, so a
// 256-bit register holds 4 float or 2 double complex values; complex
// products use the moveldup/movehdup (movedup/permute for doubles) broadcast
// plus fmaddsub — the fused rounding is what separates these kernels from
// the scalar reference by a few ulp (Tier B in util/isa.hpp; bounds tested
// in tests/test_isa.cpp).
//
// Determinism notes (Tier A, within avx2):
//
//   * Butterflies: each stage reads a contiguous per-stage twiddle table
//     (bitwise the same values as the strided twiddle_[j*step] reads of the
//     scalar path) and every (base, j) butterfly touches only its own pair,
//     so results are independent of threading (plans already run per line)
//     and identical for every caller of the same plan.
//   * rfft unpack: every bin k in [1, h-1] is computed by the same code
//     regardless of the ModeMask — the vector body evaluates all lanes and
//     _mm256_maskstore writes only the kept bins, leaving skipped slots
//     untouched. Pruned and full transforms therefore stay bitwise
//     identical on the kept bins, the same load-bearing property the scalar
//     path has.
//   * Stages/bins too narrow for a full vector (half < 4 floats, edge bins
//     0 and h, tail bins near h) run an in-function scalar loop; they are
//     part of the avx2 kernel's fixed operation order, not a dispatch
//     decision.
//   * Canonical fused arithmetic: every complex product on the avx2 tier —
//     vector bodies and in-kernel scalar edges alike — rounds as
//     re = fl(a·c − fl(b·d)), im = fl(a·d + fl(b·c)) (fmaddsub in vector
//     code, cmul_fused below in scalar code). This makes a value's bits
//     independent of which code shape computed it, which is what lets the
//     lane-batched kernels (element j of lane l at x[j*nlanes + l], same
//     broadcast twiddle for every lane) reproduce the within-line kernels
//     bit-for-bit on full batches, ragged lane tails, and single lines.
#pragma once

#include <bit>
#include <complex>
#include <cstdint>

#include "util/common.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define TURBFNO_HAS_AVX2_KERNELS 1

#include <immintrin.h>

namespace turb::fft::avx2 {

// Scalar complex product with the exact rounding of the vector
// _mm256_fmaddsub bodies; `a` is the operand the vector code splits into
// broadcast re/im halves (the twiddle in butterflies/unpack, d in pack).
[[gnu::target("avx2,fma")]] inline std::complex<float> cmul_fused(
    std::complex<float> a, std::complex<float> b) {
  return {std::fma(a.real(), b.real(), -(a.imag() * b.imag())),
          std::fma(a.real(), b.imag(), a.imag() * b.real())};
}

[[gnu::target("avx2,fma")]] inline std::complex<double> cmul_fused(
    std::complex<double> a, std::complex<double> b) {
  return {std::fma(a.real(), b.real(), -(a.imag() * b.imag())),
          std::fma(a.real(), b.imag(), a.imag() * b.real())};
}

// ---- Radix-2 butterfly stage ----------------------------------------------
//
// One Cooley–Tukey stage of width `len` over the whole length-n array:
//   u = x[base+j]; v = x[base+j+half] * w_j;  x[base+j] = u + v;
//   x[base+j+half] = u - v;   with w_j = tw[j] (conjugated when inverse).

[[gnu::target("avx2,fma")]] inline void radix2_stage(
    std::complex<float>* x, index_t n, index_t len,
    const std::complex<float>* tw, bool inverse) {
  const index_t half = len / 2;
  if (half < 4) {
    for (index_t base = 0; base < n; base += len) {
      for (index_t j = 0; j < half; ++j) {
        std::complex<float> w = tw[j];
        if (inverse) w = std::conj(w);
        const std::complex<float> u = x[base + j];
        const std::complex<float> v = cmul_fused(w, x[base + j + half]);
        x[base + j] = u + v;
        x[base + j + half] = u - v;
      }
    }
    return;
  }
  const __m256 conj_mask = _mm256_castsi256_ps(_mm256_setr_epi32(
      0, INT32_MIN, 0, INT32_MIN, 0, INT32_MIN, 0, INT32_MIN));
  float* xf = reinterpret_cast<float*>(x);
  const float* twf = reinterpret_cast<const float*>(tw);
  for (index_t base = 0; base < n; base += len) {
    float* top = xf + 2 * base;
    float* bot = top + 2 * half;
    for (index_t j = 0; j + 4 <= half; j += 4) {
      __m256 w = _mm256_loadu_ps(twf + 2 * j);
      if (inverse) w = _mm256_xor_ps(w, conj_mask);
      const __m256 u = _mm256_loadu_ps(top + 2 * j);
      const __m256 vin = _mm256_loadu_ps(bot + 2 * j);
      // v = vin * w (complex): re = wr·vr − wi·vi, im = wr·vi + wi·vr.
      const __m256 wr = _mm256_moveldup_ps(w);
      const __m256 wi = _mm256_movehdup_ps(w);
      const __m256 vs = _mm256_permute_ps(vin, 0xB1);  // [vi, vr] pairs
      const __m256 v = _mm256_fmaddsub_ps(wr, vin, _mm256_mul_ps(wi, vs));
      _mm256_storeu_ps(top + 2 * j, _mm256_add_ps(u, v));
      _mm256_storeu_ps(bot + 2 * j, _mm256_sub_ps(u, v));
    }
  }
}

[[gnu::target("avx2,fma")]] inline void radix2_stage(
    std::complex<double>* x, index_t n, index_t len,
    const std::complex<double>* tw, bool inverse) {
  const index_t half = len / 2;
  if (half < 2) {
    for (index_t base = 0; base < n; base += len) {
      // half == 1: w = tw[0] = (1, ∓0), every product is exact so fused and
      // plain rounding coincide; cmul_fused keeps the tier uniform.
      const std::complex<double> u = x[base];
      std::complex<double> w = tw[0];
      if (inverse) w = std::conj(w);
      const std::complex<double> v = cmul_fused(w, x[base + 1]);
      x[base] = u + v;
      x[base + 1] = u - v;
    }
    return;
  }
  const __m256d conj_mask = _mm256_castsi256_pd(
      _mm256_setr_epi64x(0, INT64_MIN, 0, INT64_MIN));
  double* xd = reinterpret_cast<double*>(x);
  const double* twd = reinterpret_cast<const double*>(tw);
  for (index_t base = 0; base < n; base += len) {
    double* top = xd + 2 * base;
    double* bot = top + 2 * half;
    for (index_t j = 0; j + 2 <= half; j += 2) {
      __m256d w = _mm256_loadu_pd(twd + 2 * j);
      if (inverse) w = _mm256_xor_pd(w, conj_mask);
      const __m256d u = _mm256_loadu_pd(top + 2 * j);
      const __m256d vin = _mm256_loadu_pd(bot + 2 * j);
      const __m256d wr = _mm256_movedup_pd(w);
      const __m256d wi = _mm256_permute_pd(w, 0xF);    // [im, im] per pair
      const __m256d vs = _mm256_permute_pd(vin, 0x5);  // [vi, vr] per pair
      const __m256d v = _mm256_fmaddsub_pd(wr, vin, _mm256_mul_pd(wi, vs));
      _mm256_storeu_pd(top + 2 * j, _mm256_add_pd(u, v));
      _mm256_storeu_pd(bot + 2 * j, _mm256_sub_pd(u, v));
    }
  }
}

// ---- rfft unpack ----------------------------------------------------------
//
// out[k] = E_k + w_k · O_k from the half-length spectrum z (h = n/2):
//   zk = z[k % h]; zc = conj(z[(h−k) % h]); E = (zk+zc)/2;
//   O = −i/2·(zk−zc); w = tw[k].
// Bins masked out by keep (ModeMask) are computed but not stored.

[[gnu::target("avx2,fma")]] inline void rfft_unpack(
    const std::complex<float>* z, std::complex<float>* out, index_t h,
    const std::uint8_t* keep, const std::complex<float>* tw) {
  using cpx = std::complex<float>;
  const auto scalar_bin = [&](index_t k) {
    if (keep != nullptr && keep[k] == 0) return;
    const cpx zk = z[k % h];
    const cpx zc = std::conj(z[(h - k) % h]);
    const cpx e = (zk + zc) * 0.5f;
    const cpx d = zk - zc;
    const cpx o(0.5f * d.imag(), -0.5f * d.real());
    out[k] = e + cmul_fused(tw[k], o);
  };
  scalar_bin(0);
  const __m256 conj_mask = _mm256_castsi256_ps(_mm256_setr_epi32(
      0, INT32_MIN, 0, INT32_MIN, 0, INT32_MIN, 0, INT32_MIN));
  const __m256 half_ps = _mm256_set1_ps(0.5f);
  const __m256 half_alt =
      _mm256_setr_ps(0.5f, -0.5f, 0.5f, -0.5f, 0.5f, -0.5f, 0.5f, -0.5f);
  const float* zf = reinterpret_cast<const float*>(z);
  const float* twf = reinterpret_cast<const float*>(tw);
  float* outf = reinterpret_cast<float*>(out);
  index_t k = 1;
  for (; k + 4 <= h; k += 4) {
    const __m256 zk = _mm256_loadu_ps(zf + 2 * k);
    // Mirror bins z[h−k−3 .. h−k], reversed to line up with lanes k..k+3,
    // then conjugated.
    __m256 zc = _mm256_loadu_ps(zf + 2 * (h - k - 3));
    zc = _mm256_permute2f128_ps(zc, zc, 0x01);
    zc = _mm256_permute_ps(zc, 0x4E);
    zc = _mm256_xor_ps(zc, conj_mask);
    const __m256 e = _mm256_mul_ps(_mm256_add_ps(zk, zc), half_ps);
    const __m256 d = _mm256_sub_ps(zk, zc);
    // O = (0.5·d.im, −0.5·d.re)
    const __m256 o = _mm256_mul_ps(_mm256_permute_ps(d, 0xB1), half_alt);
    const __m256 w = _mm256_loadu_ps(twf + 2 * k);
    const __m256 wr = _mm256_moveldup_ps(w);
    const __m256 wi = _mm256_movehdup_ps(w);
    const __m256 os = _mm256_permute_ps(o, 0xB1);
    const __m256 wo = _mm256_fmaddsub_ps(wr, o, _mm256_mul_ps(wi, os));
    const __m256 res = _mm256_add_ps(e, wo);
    if (keep == nullptr) {
      _mm256_storeu_ps(outf + 2 * k, res);
    } else {
      const __m256i mask = _mm256_setr_epi32(
          keep[k] ? -1 : 0, keep[k] ? -1 : 0, keep[k + 1] ? -1 : 0,
          keep[k + 1] ? -1 : 0, keep[k + 2] ? -1 : 0, keep[k + 2] ? -1 : 0,
          keep[k + 3] ? -1 : 0, keep[k + 3] ? -1 : 0);
      _mm256_maskstore_ps(outf + 2 * k, mask, res);
    }
  }
  for (; k <= h; ++k) scalar_bin(k);
}

[[gnu::target("avx2,fma")]] inline void rfft_unpack(
    const std::complex<double>* z, std::complex<double>* out, index_t h,
    const std::uint8_t* keep, const std::complex<double>* tw) {
  using cpx = std::complex<double>;
  const auto scalar_bin = [&](index_t k) {
    if (keep != nullptr && keep[k] == 0) return;
    const cpx zk = z[k % h];
    const cpx zc = std::conj(z[(h - k) % h]);
    const cpx e = (zk + zc) * 0.5;
    const cpx d = zk - zc;
    const cpx o(0.5 * d.imag(), -0.5 * d.real());
    out[k] = e + cmul_fused(tw[k], o);
  };
  scalar_bin(0);
  const __m256d conj_mask = _mm256_castsi256_pd(
      _mm256_setr_epi64x(0, INT64_MIN, 0, INT64_MIN));
  const __m256d half_pd = _mm256_set1_pd(0.5);
  const __m256d half_alt = _mm256_setr_pd(0.5, -0.5, 0.5, -0.5);
  const double* zd = reinterpret_cast<const double*>(z);
  const double* twd = reinterpret_cast<const double*>(tw);
  double* outd = reinterpret_cast<double*>(out);
  index_t k = 1;
  for (; k + 2 <= h; k += 2) {
    const __m256d zk = _mm256_loadu_pd(zd + 2 * k);
    __m256d zc = _mm256_loadu_pd(zd + 2 * (h - k - 1));
    zc = _mm256_permute2f128_pd(zc, zc, 0x01);
    zc = _mm256_xor_pd(zc, conj_mask);
    const __m256d e = _mm256_mul_pd(_mm256_add_pd(zk, zc), half_pd);
    const __m256d d = _mm256_sub_pd(zk, zc);
    const __m256d o = _mm256_mul_pd(_mm256_permute_pd(d, 0x5), half_alt);
    const __m256d w = _mm256_loadu_pd(twd + 2 * k);
    const __m256d wr = _mm256_movedup_pd(w);
    const __m256d wi = _mm256_permute_pd(w, 0xF);
    const __m256d os = _mm256_permute_pd(o, 0x5);
    const __m256d wo = _mm256_fmaddsub_pd(wr, o, _mm256_mul_pd(wi, os));
    const __m256d res = _mm256_add_pd(e, wo);
    if (keep == nullptr) {
      _mm256_storeu_pd(outd + 2 * k, res);
    } else {
      const __m256i mask = _mm256_setr_epi64x(
          keep[k] ? -1 : 0, keep[k] ? -1 : 0, keep[k + 1] ? -1 : 0,
          keep[k + 1] ? -1 : 0);
      _mm256_maskstore_pd(outd + 2 * k, mask, res);
    }
  }
  for (; k <= h; ++k) scalar_bin(k);
}

// ---- irfft pack -----------------------------------------------------------
//
// z[k] = E_k + i·O_k with E = (xk+xc)/2, O = (xk−xc)/2 · w_k,
// xk = in[k], xc = conj(in[h−k]) (DC/Nyquist imaginary parts dropped at
// k = 0, matching the C2R convention of the scalar path).

[[gnu::target("avx2,fma")]] inline void irfft_pack(
    const std::complex<float>* in, std::complex<float>* z, index_t h,
    const std::complex<float>* tw) {
  using cpx = std::complex<float>;
  {
    const cpx xk(in[0].real(), 0.0f);
    const cpx xc(in[h].real(), 0.0f);
    const cpx e = (xk + xc) * 0.5f;
    const cpx d = (xk - xc) * 0.5f;
    const cpx o = cmul_fused(d, tw[0]);
    z[0] = cpx(e.real() - o.imag(), e.imag() + o.real());
  }
  const __m256 conj_mask = _mm256_castsi256_ps(_mm256_setr_epi32(
      0, INT32_MIN, 0, INT32_MIN, 0, INT32_MIN, 0, INT32_MIN));
  const __m256 half_ps = _mm256_set1_ps(0.5f);
  const float* inf = reinterpret_cast<const float*>(in);
  const float* twf = reinterpret_cast<const float*>(tw);
  float* zf = reinterpret_cast<float*>(z);
  index_t k = 1;
  for (; k + 4 <= h; k += 4) {
    const __m256 xk = _mm256_loadu_ps(inf + 2 * k);
    __m256 xc = _mm256_loadu_ps(inf + 2 * (h - k - 3));
    xc = _mm256_permute2f128_ps(xc, xc, 0x01);
    xc = _mm256_permute_ps(xc, 0x4E);
    xc = _mm256_xor_ps(xc, conj_mask);
    const __m256 e = _mm256_mul_ps(_mm256_add_ps(xk, xc), half_ps);
    const __m256 d = _mm256_mul_ps(_mm256_sub_ps(xk, xc), half_ps);
    // o = d * w (complex)
    const __m256 w = _mm256_loadu_ps(twf + 2 * k);
    const __m256 dr = _mm256_moveldup_ps(d);
    const __m256 di = _mm256_movehdup_ps(d);
    const __m256 ws = _mm256_permute_ps(w, 0xB1);
    const __m256 o = _mm256_fmaddsub_ps(dr, w, _mm256_mul_ps(di, ws));
    // z = (e.re − o.im, e.im + o.re)
    const __m256 res = _mm256_addsub_ps(e, _mm256_permute_ps(o, 0xB1));
    _mm256_storeu_ps(zf + 2 * k, res);
  }
  for (; k < h; ++k) {
    const cpx xk = in[k];
    const cpx xc = std::conj(in[h - k]);
    const cpx e = (xk + xc) * 0.5f;
    const cpx d = (xk - xc) * 0.5f;
    const cpx o = cmul_fused(d, tw[k]);
    z[k] = cpx(e.real() - o.imag(), e.imag() + o.real());
  }
}

[[gnu::target("avx2,fma")]] inline void irfft_pack(
    const std::complex<double>* in, std::complex<double>* z, index_t h,
    const std::complex<double>* tw) {
  using cpx = std::complex<double>;
  {
    const cpx xk(in[0].real(), 0.0);
    const cpx xc(in[h].real(), 0.0);
    const cpx e = (xk + xc) * 0.5;
    const cpx d = (xk - xc) * 0.5;
    const cpx o = cmul_fused(d, tw[0]);
    z[0] = cpx(e.real() - o.imag(), e.imag() + o.real());
  }
  const __m256d conj_mask = _mm256_castsi256_pd(
      _mm256_setr_epi64x(0, INT64_MIN, 0, INT64_MIN));
  const __m256d half_pd = _mm256_set1_pd(0.5);
  const double* ind = reinterpret_cast<const double*>(in);
  const double* twd = reinterpret_cast<const double*>(tw);
  double* zd = reinterpret_cast<double*>(z);
  index_t k = 1;
  for (; k + 2 <= h; k += 2) {
    const __m256d xk = _mm256_loadu_pd(ind + 2 * k);
    __m256d xc = _mm256_loadu_pd(ind + 2 * (h - k - 1));
    xc = _mm256_permute2f128_pd(xc, xc, 0x01);
    xc = _mm256_xor_pd(xc, conj_mask);
    const __m256d e = _mm256_mul_pd(_mm256_add_pd(xk, xc), half_pd);
    const __m256d d = _mm256_mul_pd(_mm256_sub_pd(xk, xc), half_pd);
    const __m256d w = _mm256_loadu_pd(twd + 2 * k);
    const __m256d dr = _mm256_movedup_pd(d);
    const __m256d di = _mm256_permute_pd(d, 0xF);
    const __m256d ws = _mm256_permute_pd(w, 0x5);
    const __m256d o = _mm256_fmaddsub_pd(dr, w, _mm256_mul_pd(di, ws));
    const __m256d res = _mm256_addsub_pd(e, _mm256_permute_pd(o, 0x5));
    _mm256_storeu_pd(zd + 2 * k, res);
  }
  for (; k < h; ++k) {
    const cpx xk = in[k];
    const cpx xc = std::conj(in[h - k]);
    const cpx e = (xk + xc) * 0.5;
    const cpx d = (xk - xc) * 0.5;
    const cpx o = cmul_fused(d, tw[k]);
    z[k] = cpx(e.real() - o.imag(), e.imag() + o.real());
  }
}

// ---- Lane-batched kernels -------------------------------------------------
//
// Batched variants over `nl` independent lines held lane-interleaved
// (element j of lane l at x[j*nl + l]). Each bin/butterfly broadcasts its
// twiddle across lanes and evaluates the same fused expressions as the
// within-line kernels above, vectorizing over lanes (4 f32 / 2 f64 complex
// per register) with a cmul_fused scalar loop for ragged lane tails — so a
// lane's bits are independent of batch occupancy and identical to the
// single-line avx2 result.

[[gnu::target("avx2,fma")]] inline void radix2_stage_lanes(
    std::complex<float>* x, index_t n, index_t len,
    const std::complex<float>* tw, index_t nl, bool inverse) {
  const index_t half = len / 2;
  float* xf = reinterpret_cast<float*>(x);
  for (index_t base = 0; base < n; base += len) {
    for (index_t j = 0; j < half; ++j) {
      std::complex<float> w = tw[j];
      if (inverse) w = std::conj(w);
      const __m256 wr = _mm256_set1_ps(w.real());
      const __m256 wi = _mm256_set1_ps(w.imag());
      float* top = xf + 2 * (base + j) * nl;
      float* bot = xf + 2 * (base + j + half) * nl;
      index_t l = 0;
      for (; l + 4 <= nl; l += 4) {
        const __m256 u = _mm256_loadu_ps(top + 2 * l);
        const __m256 vin = _mm256_loadu_ps(bot + 2 * l);
        const __m256 vs = _mm256_permute_ps(vin, 0xB1);
        const __m256 v = _mm256_fmaddsub_ps(wr, vin, _mm256_mul_ps(wi, vs));
        _mm256_storeu_ps(top + 2 * l, _mm256_add_ps(u, v));
        _mm256_storeu_ps(bot + 2 * l, _mm256_sub_ps(u, v));
      }
      std::complex<float>* topc = x + (base + j) * nl;
      std::complex<float>* botc = x + (base + j + half) * nl;
      for (; l < nl; ++l) {
        const std::complex<float> u = topc[l];
        const std::complex<float> v = cmul_fused(w, botc[l]);
        topc[l] = u + v;
        botc[l] = u - v;
      }
    }
  }
}

[[gnu::target("avx2,fma")]] inline void radix2_stage_lanes(
    std::complex<double>* x, index_t n, index_t len,
    const std::complex<double>* tw, index_t nl, bool inverse) {
  const index_t half = len / 2;
  double* xd = reinterpret_cast<double*>(x);
  for (index_t base = 0; base < n; base += len) {
    for (index_t j = 0; j < half; ++j) {
      std::complex<double> w = tw[j];
      if (inverse) w = std::conj(w);
      const __m256d wr = _mm256_set1_pd(w.real());
      const __m256d wi = _mm256_set1_pd(w.imag());
      double* top = xd + 2 * (base + j) * nl;
      double* bot = xd + 2 * (base + j + half) * nl;
      index_t l = 0;
      for (; l + 2 <= nl; l += 2) {
        const __m256d u = _mm256_loadu_pd(top + 2 * l);
        const __m256d vin = _mm256_loadu_pd(bot + 2 * l);
        const __m256d vs = _mm256_permute_pd(vin, 0x5);
        const __m256d v = _mm256_fmaddsub_pd(wr, vin, _mm256_mul_pd(wi, vs));
        _mm256_storeu_pd(top + 2 * l, _mm256_add_pd(u, v));
        _mm256_storeu_pd(bot + 2 * l, _mm256_sub_pd(u, v));
      }
      std::complex<double>* topc = x + (base + j) * nl;
      std::complex<double>* botc = x + (base + j + half) * nl;
      for (; l < nl; ++l) {
        const std::complex<double> u = topc[l];
        const std::complex<double> v = cmul_fused(w, botc[l]);
        topc[l] = u + v;
        botc[l] = u - v;
      }
    }
  }
}

// Batched rfft unpack: z and out are lane-interleaved (h resp. h+1 rows of
// nl lanes); bins masked out by keep are skipped outright (their out rows
// are left untouched). Unlike the within-line kernel there are no edge-bin
// special cases — the wrap indices (k % h) handle bins 0 and h with the
// same fused formulas, vectorized across lanes.

[[gnu::target("avx2,fma")]] inline void rfft_unpack_lanes(
    const std::complex<float>* z, std::complex<float>* out, index_t h,
    const std::uint8_t* keep, const std::complex<float>* tw, index_t nl) {
  using cpx = std::complex<float>;
  const __m256 conj_mask = _mm256_castsi256_ps(_mm256_setr_epi32(
      0, INT32_MIN, 0, INT32_MIN, 0, INT32_MIN, 0, INT32_MIN));
  const __m256 half_ps = _mm256_set1_ps(0.5f);
  const __m256 half_alt =
      _mm256_setr_ps(0.5f, -0.5f, 0.5f, -0.5f, 0.5f, -0.5f, 0.5f, -0.5f);
  const float* zf = reinterpret_cast<const float*>(z);
  float* outf = reinterpret_cast<float*>(out);
  for (index_t k = 0; k <= h; ++k) {
    if (keep != nullptr && keep[k] == 0) continue;
    const index_t ki = (k % h) * nl;
    const index_t ci = ((h - k) % h) * nl;
    const cpx w = tw[k];
    const __m256 wr = _mm256_set1_ps(w.real());
    const __m256 wi = _mm256_set1_ps(w.imag());
    index_t l = 0;
    for (; l + 4 <= nl; l += 4) {
      const __m256 zk = _mm256_loadu_ps(zf + 2 * (ki + l));
      __m256 zc = _mm256_loadu_ps(zf + 2 * (ci + l));
      zc = _mm256_xor_ps(zc, conj_mask);
      const __m256 e = _mm256_mul_ps(_mm256_add_ps(zk, zc), half_ps);
      const __m256 d = _mm256_sub_ps(zk, zc);
      const __m256 o = _mm256_mul_ps(_mm256_permute_ps(d, 0xB1), half_alt);
      const __m256 os = _mm256_permute_ps(o, 0xB1);
      const __m256 wo = _mm256_fmaddsub_ps(wr, o, _mm256_mul_ps(wi, os));
      _mm256_storeu_ps(outf + 2 * (k * nl + l), _mm256_add_ps(e, wo));
    }
    for (; l < nl; ++l) {
      const cpx zk = z[ki + l];
      const cpx zc = std::conj(z[ci + l]);
      const cpx e = (zk + zc) * 0.5f;
      const cpx d = zk - zc;
      const cpx o(0.5f * d.imag(), -0.5f * d.real());
      out[k * nl + l] = e + cmul_fused(w, o);
    }
  }
}

[[gnu::target("avx2,fma")]] inline void rfft_unpack_lanes(
    const std::complex<double>* z, std::complex<double>* out, index_t h,
    const std::uint8_t* keep, const std::complex<double>* tw, index_t nl) {
  using cpx = std::complex<double>;
  const __m256d conj_mask = _mm256_castsi256_pd(
      _mm256_setr_epi64x(0, INT64_MIN, 0, INT64_MIN));
  const __m256d half_pd = _mm256_set1_pd(0.5);
  const __m256d half_alt = _mm256_setr_pd(0.5, -0.5, 0.5, -0.5);
  const double* zd = reinterpret_cast<const double*>(z);
  double* outd = reinterpret_cast<double*>(out);
  for (index_t k = 0; k <= h; ++k) {
    if (keep != nullptr && keep[k] == 0) continue;
    const index_t ki = (k % h) * nl;
    const index_t ci = ((h - k) % h) * nl;
    const cpx w = tw[k];
    const __m256d wr = _mm256_set1_pd(w.real());
    const __m256d wi = _mm256_set1_pd(w.imag());
    index_t l = 0;
    for (; l + 2 <= nl; l += 2) {
      const __m256d zk = _mm256_loadu_pd(zd + 2 * (ki + l));
      __m256d zc = _mm256_loadu_pd(zd + 2 * (ci + l));
      zc = _mm256_xor_pd(zc, conj_mask);
      const __m256d e = _mm256_mul_pd(_mm256_add_pd(zk, zc), half_pd);
      const __m256d d = _mm256_sub_pd(zk, zc);
      const __m256d o = _mm256_mul_pd(_mm256_permute_pd(d, 0x5), half_alt);
      const __m256d os = _mm256_permute_pd(o, 0x5);
      const __m256d wo = _mm256_fmaddsub_pd(wr, o, _mm256_mul_pd(wi, os));
      _mm256_storeu_pd(outd + 2 * (k * nl + l), _mm256_add_pd(e, wo));
    }
    for (; l < nl; ++l) {
      const cpx zk = z[ki + l];
      const cpx zc = std::conj(z[ci + l]);
      const cpx e = (zk + zc) * 0.5;
      const cpx d = zk - zc;
      const cpx o(0.5 * d.imag(), -0.5 * d.real());
      out[k * nl + l] = e + cmul_fused(w, o);
    }
  }
}

// Batched irfft pack: in (h+1 lane-interleaved rows) → z (h rows). Bin 0
// zeroes the DC/Nyquist imaginary parts across lanes (real_mask) instead of
// conjugating, matching the C2R convention of the scalar path.

[[gnu::target("avx2,fma")]] inline void irfft_pack_lanes(
    const std::complex<float>* in, std::complex<float>* z, index_t h,
    const std::complex<float>* tw, index_t nl) {
  using cpx = std::complex<float>;
  const __m256 conj_mask = _mm256_castsi256_ps(_mm256_setr_epi32(
      0, INT32_MIN, 0, INT32_MIN, 0, INT32_MIN, 0, INT32_MIN));
  const __m256 real_mask = _mm256_castsi256_ps(
      _mm256_setr_epi32(-1, 0, -1, 0, -1, 0, -1, 0));
  const __m256 half_ps = _mm256_set1_ps(0.5f);
  const float* inf = reinterpret_cast<const float*>(in);
  float* zf = reinterpret_cast<float*>(z);
  for (index_t k = 0; k < h; ++k) {
    const cpx w = tw[k];
    const __m256 wv =
        _mm256_castpd_ps(_mm256_set1_pd(std::bit_cast<double>(w)));
    const __m256 ws = _mm256_permute_ps(wv, 0xB1);
    index_t l = 0;
    for (; l + 4 <= nl; l += 4) {
      __m256 xk = _mm256_loadu_ps(inf + 2 * (k * nl + l));
      __m256 xc = _mm256_loadu_ps(inf + 2 * ((h - k) * nl + l));
      if (k == 0) {
        xk = _mm256_and_ps(xk, real_mask);
        xc = _mm256_and_ps(xc, real_mask);
      } else {
        xc = _mm256_xor_ps(xc, conj_mask);
      }
      const __m256 e = _mm256_mul_ps(_mm256_add_ps(xk, xc), half_ps);
      const __m256 d = _mm256_mul_ps(_mm256_sub_ps(xk, xc), half_ps);
      const __m256 dr = _mm256_moveldup_ps(d);
      const __m256 di = _mm256_movehdup_ps(d);
      const __m256 o = _mm256_fmaddsub_ps(dr, wv, _mm256_mul_ps(di, ws));
      const __m256 res = _mm256_addsub_ps(e, _mm256_permute_ps(o, 0xB1));
      _mm256_storeu_ps(zf + 2 * (k * nl + l), res);
    }
    for (; l < nl; ++l) {
      const cpx xk = (k == 0) ? cpx(in[l].real(), 0.0f) : in[k * nl + l];
      const cpx xc = (k == 0) ? cpx(in[h * nl + l].real(), 0.0f)
                              : std::conj(in[(h - k) * nl + l]);
      const cpx e = (xk + xc) * 0.5f;
      const cpx d = (xk - xc) * 0.5f;
      const cpx o = cmul_fused(d, w);
      z[k * nl + l] = cpx(e.real() - o.imag(), e.imag() + o.real());
    }
  }
}

[[gnu::target("avx2,fma")]] inline void irfft_pack_lanes(
    const std::complex<double>* in, std::complex<double>* z, index_t h,
    const std::complex<double>* tw, index_t nl) {
  using cpx = std::complex<double>;
  const __m256d conj_mask = _mm256_castsi256_pd(
      _mm256_setr_epi64x(0, INT64_MIN, 0, INT64_MIN));
  const __m256d real_mask = _mm256_castsi256_pd(
      _mm256_setr_epi64x(-1, 0, -1, 0));
  const __m256d half_pd = _mm256_set1_pd(0.5);
  const double* ind = reinterpret_cast<const double*>(in);
  double* zd = reinterpret_cast<double*>(z);
  for (index_t k = 0; k < h; ++k) {
    const cpx w = tw[k];
    const __m256d wv =
        _mm256_broadcast_pd(reinterpret_cast<const __m128d*>(&w));
    const __m256d ws = _mm256_permute_pd(wv, 0x5);
    index_t l = 0;
    for (; l + 2 <= nl; l += 2) {
      __m256d xk = _mm256_loadu_pd(ind + 2 * (k * nl + l));
      __m256d xc = _mm256_loadu_pd(ind + 2 * ((h - k) * nl + l));
      if (k == 0) {
        xk = _mm256_and_pd(xk, real_mask);
        xc = _mm256_and_pd(xc, real_mask);
      } else {
        xc = _mm256_xor_pd(xc, conj_mask);
      }
      const __m256d e = _mm256_mul_pd(_mm256_add_pd(xk, xc), half_pd);
      const __m256d d = _mm256_mul_pd(_mm256_sub_pd(xk, xc), half_pd);
      const __m256d dr = _mm256_movedup_pd(d);
      const __m256d di = _mm256_permute_pd(d, 0xF);
      const __m256d o = _mm256_fmaddsub_pd(dr, wv, _mm256_mul_pd(di, ws));
      const __m256d res = _mm256_addsub_pd(e, _mm256_permute_pd(o, 0x5));
      _mm256_storeu_pd(zd + 2 * (k * nl + l), res);
    }
    for (; l < nl; ++l) {
      const cpx xk = (k == 0) ? cpx(in[l].real(), 0.0) : in[k * nl + l];
      const cpx xc = (k == 0) ? cpx(in[h * nl + l].real(), 0.0)
                              : std::conj(in[(h - k) * nl + l]);
      const cpx e = (xk + xc) * 0.5;
      const cpx d = (xk - xc) * 0.5;
      const cpx o = cmul_fused(d, w);
      z[k * nl + l] = cpx(e.real() - o.imag(), e.imag() + o.real());
    }
  }
}

}  // namespace turb::fft::avx2

#endif  // x86
