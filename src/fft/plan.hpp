// Complex-to-complex FFT plans.
//
// Power-of-two lengths use an iterative radix-2 Cooley–Tukey transform with
// precomputed bit-reversal and twiddle tables. Arbitrary lengths fall back to
// Bluestein's chirp-z algorithm (needed for the length-10 temporal axis of
// the 3D FNO). Twiddles are always computed in double precision.
//
// Normalisation convention (NumPy/PyTorch): forward is unscaled, inverse
// divides by n.
//
// The radix-2 butterfly loop dispatches per execute() call on
// util::active_isa(): the scalar loop below is the reference, the AVX2/FMA
// stage kernel in fft/kernels_avx2.hpp the fast path. The AVX2 path reads
// per-stage contiguous twiddle tables (stage_tw_, copied bitwise from
// twiddle_ at plan build) instead of the strided twiddle_[j*step] walk.
// Bluestein lengths reach the dispatch through their power-of-two sub-plan.
#pragma once

#include <atomic>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <memory>
#include <numbers>
#include <type_traits>
#include <vector>

#include "fft/kernels_avx2.hpp"
#include "util/common.hpp"
#include "util/isa.hpp"

namespace turb::fft {

inline bool is_pow2(index_t n) { return n > 0 && (n & (n - 1)) == 0; }

inline index_t next_pow2(index_t n) {
  index_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// ---- Lane-per-line batching ------------------------------------------------
//
// The batched execution path transforms B independent lines at once from a
// lane-interleaved workspace (element j of lane l at data[j*nlanes + l]):
// every butterfly stage, Bluestein chirp multiply, and rfft/irfft pack/unpack
// bin is evaluated across lanes with the per-position twiddle broadcast, so
// each lane executes the identical per-line operation sequence. A line's
// bits therefore do not depend on how many lanes share its batch (batch
// occupancy invariance) — full batches, ragged tails, and the single-line
// path all agree bitwise per ISA tier, which is what keeps the Tier A
// determinism contract (and the scalar-tier seed fixture CRC) intact while
// the line grouping changes with thread count and mode pruning.

/// Upper bound on lanes any batched path may request; batch scratch sized
/// with this stays valid when the active ISA is switched after planning.
inline constexpr index_t kMaxLanes = 8;

/// Lanes per batched line sweep for element type T on the given ISA tier:
/// one SIMD register of lanes on avx2 (8 f32 / 4 f64), a fixed 4-lane block
/// on the scalar tier (gather/scatter locality still pays for itself).
template <typename T>
index_t lane_count(util::Isa isa) {
#if defined(TURBFNO_HAS_AVX2_KERNELS)
  if (isa == util::Isa::kAvx2) {
    return std::is_same_v<T, float> ? index_t{8} : index_t{4};
  }
#else
  (void)isa;
#endif
  return 4;
}

namespace detail {

inline std::atomic<int>& line_batching_flag() {
  static std::atomic<int> flag = [] {
    const char* env = std::getenv("TURBFNO_FFT_BATCH");
    return (env != nullptr && env[0] == '0' && env[1] == '\0') ? 0 : 1;
  }();
  return flag;
}

}  // namespace detail

/// Whether the lane-per-line batched FFT path is active (default on; set
/// TURBFNO_FFT_BATCH=0 or call set_line_batching(false) to force the
/// per-line reference path, e.g. for baseline benchmarking).
inline bool line_batching_enabled() {
  return detail::line_batching_flag().load(std::memory_order_relaxed) != 0;
}

inline void set_line_batching(bool on) {
  detail::line_batching_flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

/// RAII batching override for benches and property tests.
class ScopedLineBatching {
 public:
  explicit ScopedLineBatching(bool on) : prev_(line_batching_enabled()) {
    set_line_batching(on);
  }
  ~ScopedLineBatching() { set_line_batching(prev_); }
  ScopedLineBatching(const ScopedLineBatching&) = delete;
  ScopedLineBatching& operator=(const ScopedLineBatching&) = delete;

 private:
  bool prev_;
};

template <typename T>
class PlanC2C {
 public:
  using cpx = std::complex<T>;

  explicit PlanC2C(index_t n) : n_(n) {
    TURB_CHECK_MSG(n >= 1, "FFT length must be positive");
    if (is_pow2(n_)) {
      init_radix2();
    } else {
      init_bluestein();
    }
  }

  [[nodiscard]] index_t size() const { return n_; }

  /// In-place forward DFT (unscaled): X_k = sum_j x_j e^{-2πijk/n}.
  void forward(cpx* x) const { execute(x, /*inverse=*/false); }

  /// In-place inverse DFT (scaled by 1/n).
  void inverse(cpx* x) const { execute(x, /*inverse=*/true); }

  /// Lane-per-line batched transforms over `nlanes` independent lines held
  /// lane-interleaved in `x` (element j of lane l at x[j*nlanes + l]).
  /// Every lane's result is bitwise identical to running forward()/inverse()
  /// on that line alone under the same ISA tier (batch occupancy invariance;
  /// see the header comment). nlanes must be in [1, kMaxLanes].
  void forward_batch(cpx* x, index_t nlanes) const {
    execute_batch(x, nlanes, /*inverse=*/false);
  }

  void inverse_batch(cpx* x, index_t nlanes) const {
    execute_batch(x, nlanes, /*inverse=*/true);
  }

  /// Does this plan execute batches through lane-interleaved SIMD kernels
  /// under the currently active ISA? When false, execute_batch would just
  /// transpose to line-major and run per lane — callers that control the
  /// gather layout should instead gather line-major and use
  /// forward_lines/inverse_lines, skipping both transposes while keeping
  /// the batched gather's cache-line sharing on strided slabs.
  [[nodiscard]] bool batch_wants_lanes() const {
#if defined(TURBFNO_HAS_AVX2_KERNELS)
    if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
      return sub_ == nullptr && util::active_isa() == util::Isa::kAvx2;
    }
#endif
    return false;
  }

  /// Line-major batched transforms: `nlines` contiguous lines of length n,
  /// line l at x + l*n. Each line runs the pinned single-line path, so the
  /// results are trivially bitwise identical to forward()/inverse() per
  /// line; this is the no-transpose companion of forward_batch for tiers
  /// without lane kernels (see batch_wants_lanes).
  void forward_lines(cpx* x, index_t nlines) const {
    for (index_t l = 0; l < nlines; ++l) execute(x + l * n_, false);
  }

  void inverse_lines(cpx* x, index_t nlines) const {
    for (index_t l = 0; l < nlines; ++l) execute(x + l * n_, true);
  }

 private:
  void init_radix2() {
    // Bit-reversal permutation table.
    bitrev_.resize(static_cast<std::size_t>(n_));
    int log2n = 0;
    while ((index_t{1} << log2n) < n_) ++log2n;
    for (index_t i = 0; i < n_; ++i) {
      index_t r = 0;
      for (int b = 0; b < log2n; ++b) {
        r |= ((i >> b) & 1) << (log2n - 1 - b);
      }
      bitrev_[static_cast<std::size_t>(i)] = r;
    }
    // Twiddle table tw[k] = exp(-2πik/n), k < n/2.
    twiddle_.resize(static_cast<std::size_t>(n_ / 2));
    for (index_t k = 0; k < n_ / 2; ++k) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) /
                         static_cast<double>(n_);
      twiddle_[static_cast<std::size_t>(k)] =
          cpx(static_cast<T>(std::cos(ang)), static_cast<T>(std::sin(ang)));
    }
    // Per-stage contiguous copies for the vectorized butterflies: the stage
    // with half = len/2 butterflies owns stage_tw_[half-1 .. 2·half-2],
    // stage_tw_[half-1 + j] = twiddle_[j·step] (same bits, n-1 entries
    // total). Built unconditionally so the ISA stays switchable at runtime.
    if (n_ > 1) {
      stage_tw_.resize(static_cast<std::size_t>(n_ - 1));
      for (index_t len = 2; len <= n_; len <<= 1) {
        const index_t half = len / 2;
        const index_t step = n_ / len;
        for (index_t j = 0; j < half; ++j) {
          stage_tw_[static_cast<std::size_t>(half - 1 + j)] =
              twiddle_[static_cast<std::size_t>(j * step)];
        }
      }
    }
  }

  void init_bluestein() {
    m_ = next_pow2(2 * n_ - 1);
    sub_ = std::make_unique<PlanC2C>(m_);
    chirp_.resize(static_cast<std::size_t>(n_));
    // chirp_k = exp(-iπ k²/n); reduce k² mod 2n in exact integer arithmetic
    // so the angle stays small and accurate for large n.
    for (index_t k = 0; k < n_; ++k) {
      const index_t k2 = (k * k) % (2 * n_);
      const double ang = -std::numbers::pi * static_cast<double>(k2) /
                         static_cast<double>(n_);
      chirp_[static_cast<std::size_t>(k)] =
          cpx(static_cast<T>(std::cos(ang)), static_cast<T>(std::sin(ang)));
    }
    // bf_ = FFT_m(b) with b_k = conj(chirp_k) arranged circularly.
    bf_.assign(static_cast<std::size_t>(m_), cpx{});
    bf_[0] = std::conj(chirp_[0]);
    for (index_t k = 1; k < n_; ++k) {
      const cpx v = std::conj(chirp_[static_cast<std::size_t>(k)]);
      bf_[static_cast<std::size_t>(k)] = v;
      bf_[static_cast<std::size_t>(m_ - k)] = v;
    }
    sub_->forward(bf_.data());
  }

  // noinline+noclone pin a single compiled body for the single-line
  // transform: it is the bitwise reference for the batched fallback in
  // execute_batch, and under -O3 GCC otherwise re-contracts inlined copies
  // and constant-propagation clones (e.g. an inverse=true .constprop clone)
  // of this function differently per call site — observed for f64 — which
  // would make "the same" transform round differently depending on who
  // called it.
  __attribute__((noinline, noclone)) void execute(cpx* x,
                                                  bool inverse) const {
    if (sub_ == nullptr) {
      radix2(x, inverse);
      if (inverse) {
        const T scale = T{1} / static_cast<T>(n_);
        for (index_t i = 0; i < n_; ++i) x[i] *= scale;
      }
    } else {
      if (inverse) {
        for (index_t i = 0; i < n_; ++i) x[i] = std::conj(x[i]);
        bluestein_forward(x);
        const T scale = T{1} / static_cast<T>(n_);
        for (index_t i = 0; i < n_; ++i) x[i] = std::conj(x[i]) * scale;
      } else {
        bluestein_forward(x);
      }
    }
  }

  void radix2(cpx* x, bool inverse) const {
    // Permute.
    for (index_t i = 0; i < n_; ++i) {
      const index_t r = bitrev_[static_cast<std::size_t>(i)];
      if (i < r) std::swap(x[i], x[r]);
    }
#if defined(TURBFNO_HAS_AVX2_KERNELS)
    if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
      if (util::active_isa() == util::Isa::kAvx2) {
        for (index_t len = 2; len <= n_; len <<= 1) {
          const index_t half = len / 2;
          avx2::radix2_stage(x, n_, len, stage_tw_.data() + (half - 1),
                             inverse);
        }
        return;
      }
    }
#endif
    // Butterflies.
    for (index_t len = 2; len <= n_; len <<= 1) {
      const index_t half = len / 2;
      const index_t step = n_ / len;
      for (index_t base = 0; base < n_; base += len) {
        for (index_t j = 0; j < half; ++j) {
          cpx w = twiddle_[static_cast<std::size_t>(j * step)];
          if (inverse) w = std::conj(w);
          const cpx u = x[base + j];
          const cpx v = x[base + j + half] * w;
          x[base + j] = u + v;
          x[base + j + half] = u - v;
        }
      }
    }
  }

  // Batched execution discipline: every floating-point rounding in the
  // batched path is produced either by an intrinsics lane kernel (fixed
  // arithmetic by construction) or by the exact single-line code running on
  // a de-interleaved copy. Compiler-generated per-lane FP loops are banned —
  // under -O3 -ffp-contract=fast GCC contracts/unswitches/vectorizes the
  // "same" expressions differently per code shape (lane count, keep-mask
  // null-ness, forward/inverse constant propagation), which silently breaks
  // batch occupancy invariance. Exact operations (copies, swaps, conj,
  // componentwise scaling) are exempt: they round nothing.
  void execute_batch(cpx* x, index_t nlanes, bool inverse) const {
    TURB_CHECK_MSG(nlanes >= 1 && nlanes <= kMaxLanes,
                   "batched FFT lane count " << nlanes << " out of range");
    if (nlanes == 1) {
      // A one-lane batch is exactly the single-line layout.
      execute(x, inverse);
      return;
    }
#if defined(TURBFNO_HAS_AVX2_KERNELS)
    if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
      if (sub_ == nullptr && util::active_isa() == util::Isa::kAvx2) {
        // Permute whole lane groups (exact swaps).
        for (index_t i = 0; i < n_; ++i) {
          const index_t r = bitrev_[static_cast<std::size_t>(i)];
          if (i < r) {
            cpx* a = x + i * nlanes;
            cpx* b = x + r * nlanes;
            for (index_t l = 0; l < nlanes; ++l) std::swap(a[l], b[l]);
          }
        }
        for (index_t len = 2; len <= n_; len <<= 1) {
          const index_t half = len / 2;
          avx2::radix2_stage_lanes(x, n_, len, stage_tw_.data() + (half - 1),
                                   nlanes, inverse);
        }
        if (inverse) {
          // Componentwise scaling is exact arithmetic-shape-wise: one
          // rounding per component, independent of vectorization.
          const T scale = T{1} / static_cast<T>(n_);
          const index_t total = n_ * nlanes;
          for (index_t i = 0; i < total; ++i) x[i] *= scale;
        }
        return;
      }
    }
#endif
    // Reference fallback (scalar tier, Bluestein lengths, non-SIMD types):
    // de-interleave and run the pinned single-line path per lane. The
    // copies are exact, so equality with the single-line transform is
    // structural, and the caller still gets the batched gather's
    // cache-line sharing on strided slabs.
    thread_local std::vector<cpx> lines;
    lines.resize(static_cast<std::size_t>(n_ * nlanes));
    for (index_t j = 0; j < n_; ++j) {
      const cpx* src = x + j * nlanes;
      for (index_t l = 0; l < nlanes; ++l) lines[l * n_ + j] = src[l];
    }
    for (index_t l = 0; l < nlanes; ++l) {
      execute(lines.data() + l * n_, inverse);
    }
    for (index_t j = 0; j < n_; ++j) {
      cpx* dst = x + j * nlanes;
      for (index_t l = 0; l < nlanes; ++l) dst[l] = lines[l * n_ + j];
    }
  }

  void bluestein_forward(cpx* x) const {
    thread_local std::vector<cpx> scratch;
    scratch.assign(static_cast<std::size_t>(m_), cpx{});
    for (index_t k = 0; k < n_; ++k) {
      scratch[static_cast<std::size_t>(k)] =
          x[k] * chirp_[static_cast<std::size_t>(k)];
    }
    sub_->forward(scratch.data());
    for (index_t k = 0; k < m_; ++k) {
      scratch[static_cast<std::size_t>(k)] *= bf_[static_cast<std::size_t>(k)];
    }
    sub_->inverse(scratch.data());
    for (index_t k = 0; k < n_; ++k) {
      x[k] = scratch[static_cast<std::size_t>(k)] *
             chirp_[static_cast<std::size_t>(k)];
    }
  }

  index_t n_;
  // Radix-2 state.
  std::vector<index_t> bitrev_;
  std::vector<cpx> twiddle_;
  std::vector<cpx> stage_tw_;  ///< per-stage contiguous copies (see init)
  // Bluestein state (null sub_ means radix-2 path).
  index_t m_ = 0;
  std::unique_ptr<PlanC2C> sub_;
  std::vector<cpx> chirp_;
  std::vector<cpx> bf_;
};

}  // namespace turb::fft
