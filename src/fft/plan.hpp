// Complex-to-complex FFT plans.
//
// Power-of-two lengths use an iterative radix-2 Cooley–Tukey transform with
// precomputed bit-reversal and twiddle tables. Arbitrary lengths fall back to
// Bluestein's chirp-z algorithm (needed for the length-10 temporal axis of
// the 3D FNO). Twiddles are always computed in double precision.
//
// Normalisation convention (NumPy/PyTorch): forward is unscaled, inverse
// divides by n.
//
// The radix-2 butterfly loop dispatches per execute() call on
// util::active_isa(): the scalar loop below is the reference, the AVX2/FMA
// stage kernel in fft/kernels_avx2.hpp the fast path. The AVX2 path reads
// per-stage contiguous twiddle tables (stage_tw_, copied bitwise from
// twiddle_ at plan build) instead of the strided twiddle_[j*step] walk.
// Bluestein lengths reach the dispatch through their power-of-two sub-plan.
#pragma once

#include <cmath>
#include <complex>
#include <memory>
#include <numbers>
#include <type_traits>
#include <vector>

#include "fft/kernels_avx2.hpp"
#include "util/common.hpp"
#include "util/isa.hpp"

namespace turb::fft {

inline bool is_pow2(index_t n) { return n > 0 && (n & (n - 1)) == 0; }

inline index_t next_pow2(index_t n) {
  index_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

template <typename T>
class PlanC2C {
 public:
  using cpx = std::complex<T>;

  explicit PlanC2C(index_t n) : n_(n) {
    TURB_CHECK_MSG(n >= 1, "FFT length must be positive");
    if (is_pow2(n_)) {
      init_radix2();
    } else {
      init_bluestein();
    }
  }

  [[nodiscard]] index_t size() const { return n_; }

  /// In-place forward DFT (unscaled): X_k = sum_j x_j e^{-2πijk/n}.
  void forward(cpx* x) const { execute(x, /*inverse=*/false); }

  /// In-place inverse DFT (scaled by 1/n).
  void inverse(cpx* x) const { execute(x, /*inverse=*/true); }

 private:
  void init_radix2() {
    // Bit-reversal permutation table.
    bitrev_.resize(static_cast<std::size_t>(n_));
    int log2n = 0;
    while ((index_t{1} << log2n) < n_) ++log2n;
    for (index_t i = 0; i < n_; ++i) {
      index_t r = 0;
      for (int b = 0; b < log2n; ++b) {
        r |= ((i >> b) & 1) << (log2n - 1 - b);
      }
      bitrev_[static_cast<std::size_t>(i)] = r;
    }
    // Twiddle table tw[k] = exp(-2πik/n), k < n/2.
    twiddle_.resize(static_cast<std::size_t>(n_ / 2));
    for (index_t k = 0; k < n_ / 2; ++k) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) /
                         static_cast<double>(n_);
      twiddle_[static_cast<std::size_t>(k)] =
          cpx(static_cast<T>(std::cos(ang)), static_cast<T>(std::sin(ang)));
    }
    // Per-stage contiguous copies for the vectorized butterflies: the stage
    // with half = len/2 butterflies owns stage_tw_[half-1 .. 2·half-2],
    // stage_tw_[half-1 + j] = twiddle_[j·step] (same bits, n-1 entries
    // total). Built unconditionally so the ISA stays switchable at runtime.
    if (n_ > 1) {
      stage_tw_.resize(static_cast<std::size_t>(n_ - 1));
      for (index_t len = 2; len <= n_; len <<= 1) {
        const index_t half = len / 2;
        const index_t step = n_ / len;
        for (index_t j = 0; j < half; ++j) {
          stage_tw_[static_cast<std::size_t>(half - 1 + j)] =
              twiddle_[static_cast<std::size_t>(j * step)];
        }
      }
    }
  }

  void init_bluestein() {
    m_ = next_pow2(2 * n_ - 1);
    sub_ = std::make_unique<PlanC2C>(m_);
    chirp_.resize(static_cast<std::size_t>(n_));
    // chirp_k = exp(-iπ k²/n); reduce k² mod 2n in exact integer arithmetic
    // so the angle stays small and accurate for large n.
    for (index_t k = 0; k < n_; ++k) {
      const index_t k2 = (k * k) % (2 * n_);
      const double ang = -std::numbers::pi * static_cast<double>(k2) /
                         static_cast<double>(n_);
      chirp_[static_cast<std::size_t>(k)] =
          cpx(static_cast<T>(std::cos(ang)), static_cast<T>(std::sin(ang)));
    }
    // bf_ = FFT_m(b) with b_k = conj(chirp_k) arranged circularly.
    bf_.assign(static_cast<std::size_t>(m_), cpx{});
    bf_[0] = std::conj(chirp_[0]);
    for (index_t k = 1; k < n_; ++k) {
      const cpx v = std::conj(chirp_[static_cast<std::size_t>(k)]);
      bf_[static_cast<std::size_t>(k)] = v;
      bf_[static_cast<std::size_t>(m_ - k)] = v;
    }
    sub_->forward(bf_.data());
  }

  void execute(cpx* x, bool inverse) const {
    if (sub_ == nullptr) {
      radix2(x, inverse);
      if (inverse) {
        const T scale = T{1} / static_cast<T>(n_);
        for (index_t i = 0; i < n_; ++i) x[i] *= scale;
      }
    } else {
      if (inverse) {
        for (index_t i = 0; i < n_; ++i) x[i] = std::conj(x[i]);
        bluestein_forward(x);
        const T scale = T{1} / static_cast<T>(n_);
        for (index_t i = 0; i < n_; ++i) x[i] = std::conj(x[i]) * scale;
      } else {
        bluestein_forward(x);
      }
    }
  }

  void radix2(cpx* x, bool inverse) const {
    // Permute.
    for (index_t i = 0; i < n_; ++i) {
      const index_t r = bitrev_[static_cast<std::size_t>(i)];
      if (i < r) std::swap(x[i], x[r]);
    }
#if defined(TURBFNO_HAS_AVX2_KERNELS)
    if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
      if (util::active_isa() == util::Isa::kAvx2) {
        for (index_t len = 2; len <= n_; len <<= 1) {
          const index_t half = len / 2;
          avx2::radix2_stage(x, n_, len, stage_tw_.data() + (half - 1),
                             inverse);
        }
        return;
      }
    }
#endif
    // Butterflies.
    for (index_t len = 2; len <= n_; len <<= 1) {
      const index_t half = len / 2;
      const index_t step = n_ / len;
      for (index_t base = 0; base < n_; base += len) {
        for (index_t j = 0; j < half; ++j) {
          cpx w = twiddle_[static_cast<std::size_t>(j * step)];
          if (inverse) w = std::conj(w);
          const cpx u = x[base + j];
          const cpx v = x[base + j + half] * w;
          x[base + j] = u + v;
          x[base + j + half] = u - v;
        }
      }
    }
  }

  void bluestein_forward(cpx* x) const {
    thread_local std::vector<cpx> scratch;
    scratch.assign(static_cast<std::size_t>(m_), cpx{});
    for (index_t k = 0; k < n_; ++k) {
      scratch[static_cast<std::size_t>(k)] =
          x[k] * chirp_[static_cast<std::size_t>(k)];
    }
    sub_->forward(scratch.data());
    for (index_t k = 0; k < m_; ++k) {
      scratch[static_cast<std::size_t>(k)] *= bf_[static_cast<std::size_t>(k)];
    }
    sub_->inverse(scratch.data());
    for (index_t k = 0; k < n_; ++k) {
      x[k] = scratch[static_cast<std::size_t>(k)] *
             chirp_[static_cast<std::size_t>(k)];
    }
  }

  index_t n_;
  // Radix-2 state.
  std::vector<index_t> bitrev_;
  std::vector<cpx> twiddle_;
  std::vector<cpx> stage_tw_;  ///< per-stage contiguous copies (see init)
  // Bluestein state (null sub_ means radix-2 path).
  index_t m_ = 0;
  std::unique_ptr<PlanC2C> sub_;
  std::vector<cpx> chirp_;
  std::vector<cpx> bf_;
};

}  // namespace turb::fft
