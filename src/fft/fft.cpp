// Anchor translation unit for the header-only FFT module; instantiates the
// common plan types once so every other TU links against these symbols
// instead of re-instantiating them.
#include "fft/fftnd.hpp"

namespace turb::fft {

template class PlanC2C<float>;
template class PlanC2C<double>;

template Tensor<std::complex<float>> rfftn<float>(const Tensor<float>&, int);
template Tensor<std::complex<double>> rfftn<double>(const Tensor<double>&,
                                                    int);
template Tensor<float> irfftn<float>(const Tensor<std::complex<float>>&, int,
                                     index_t);
template Tensor<double> irfftn<double>(const Tensor<std::complex<double>>&,
                                       int, index_t);

}  // namespace turb::fft
