// Anchor translation unit for the header-only FFT module; instantiates the
// common plan types once so every other TU links against these symbols
// instead of re-instantiating them.
#include "fft/fftnd.hpp"

namespace turb::fft {

template class PlanC2C<float>;
template class PlanC2C<double>;

template Tensor<std::complex<float>> rfftn<float>(const Tensor<float>&, int,
                                                  const ModeMask*);
template Tensor<std::complex<double>> rfftn<double>(const Tensor<double>&, int,
                                                    const ModeMask*);
template Tensor<float> irfftn<float>(const Tensor<std::complex<float>>&, int,
                                     index_t, const ModeMask*);
template Tensor<double> irfftn<double>(const Tensor<std::complex<double>>&,
                                       int, index_t, const ModeMask*);

template void rfftn_into<float>(const Tensor<float>&, int,
                                Tensor<std::complex<float>>&, const ModeMask*);
template void rfftn_into<double>(const Tensor<double>&, int,
                                 Tensor<std::complex<double>>&,
                                 const ModeMask*);
template void irfftn_into<float>(const Tensor<std::complex<float>>&, int,
                                 index_t, Tensor<float>&, const ModeMask*);
template void irfftn_into<double>(const Tensor<std::complex<double>>&, int,
                                  index_t, Tensor<double>&, const ModeMask*);

}  // namespace turb::fft
