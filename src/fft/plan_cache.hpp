// Process-wide cache of FFT plans keyed by transform length.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "fft/plan.hpp"

namespace turb::fft {

/// Return a cached plan for length n (thread-safe; plans are immutable after
/// construction and live for the process lifetime).
template <typename T>
const PlanC2C<T>& plan(index_t n) {
  static std::map<index_t, std::unique_ptr<PlanC2C<T>>> cache;
  static std::mutex mutex;
  std::lock_guard lock(mutex);
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, std::make_unique<PlanC2C<T>>(n)).first;
  }
  return *it->second;
}

}  // namespace turb::fft
