// Process-wide cache of FFT plans keyed by transform length.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "fft/plan.hpp"
#include "obs/obs.hpp"

namespace turb::fft {

namespace detail {

/// Locked map lookup behind the thread-local memo in plan(). Kept out of
/// line so the fast path inlined into the row kernels stays two compares.
template <typename T>
[[gnu::noinline]] const PlanC2C<T>& plan_locked(index_t n) {
  static std::map<index_t, std::unique_ptr<PlanC2C<T>>> cache;
  static std::mutex mutex;
  static obs::Counter& hits = obs::counter("fft/plan_cache_hits");
  static obs::Counter& misses = obs::counter("fft/plan_cache_misses");
  std::lock_guard lock(mutex);
  auto it = cache.find(n);
  if (it == cache.end()) {
    misses.add(1);
    obs::ScopedTimer span(obs::timer("fft/plan_create"));
    it = cache.emplace(n, std::make_unique<PlanC2C<T>>(n)).first;
  } else {
    hits.add(1);
  }
  return *it->second;
}

}  // namespace detail

/// Return a cached plan for length n (thread-safe; plans are immutable after
/// construction and live for the process lifetime). Plan construction (twiddle
/// tables, Bluestein scratch) is timed separately from execution so profiles
/// can distinguish one-off setup cost from the per-transform work.
///
/// A per-thread memo of the most recent length short-circuits the mutex +
/// map walk: the row loops of rfftn/irfftn request the same length millions
/// of times in a row, and the lock was showing up in profiles. The
/// fft/plan_cache_hits counter therefore only counts lookups that fall
/// through the memo (length changes), not every call.
template <typename T>
const PlanC2C<T>& plan(index_t n) {
  thread_local index_t memo_n = -1;
  thread_local const PlanC2C<T>* memo = nullptr;
  if (n != memo_n) {
    memo = &detail::plan_locked<T>(n);
    memo_n = n;
  }
  return *memo;
}

}  // namespace turb::fft
