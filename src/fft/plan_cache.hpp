// Process-wide cache of FFT plans keyed by transform length.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "fft/plan.hpp"
#include "obs/obs.hpp"

namespace turb::fft {

namespace detail {

/// Locked map lookup behind the thread-local memo in plan(). Kept out of
/// line so the fast path inlined into the row kernels stays two compares.
template <typename T>
[[gnu::noinline]] const PlanC2C<T>& plan_locked(index_t n) {
  static std::map<index_t, std::unique_ptr<PlanC2C<T>>> cache;
  static std::mutex mutex;
  static obs::Counter& hits = obs::counter("fft/plan_cache_hits");
  static obs::Counter& misses = obs::counter("fft/plan_cache_misses");
  std::lock_guard lock(mutex);
  auto it = cache.find(n);
  if (it == cache.end()) {
    misses.add(1);
    obs::ScopedTimer span(obs::timer("fft/plan_create"));
    it = cache.emplace(n, std::make_unique<PlanC2C<T>>(n)).first;
  } else {
    hits.add(1);
  }
  return *it->second;
}

}  // namespace detail

/// Return a cached plan for length n (thread-safe; plans are immutable after
/// construction and live for the process lifetime). Plan construction (twiddle
/// tables, Bluestein scratch) is timed separately from execution so profiles
/// can distinguish one-off setup cost from the per-transform work.
///
/// A per-thread memo short-circuits the mutex + map walk: the row loops of
/// rfftn/irfftn request the same length millions of times in a row, and the
/// lock was showing up in profiles. The memo holds the four most recent
/// lengths (linear scan, round-robin replacement — NOT direct-mapped by low
/// bits, which would alias the all-power-of-two lengths an n-d transform
/// alternates between: last-axis half length, earlier-axis extents, and the
/// Bluestein sub-plan length). Four entries cover the working set of a 3-d
/// transform with a Bluestein axis, so alternating stages stop thrashing
/// the single-slot memo this replaced.
///
/// Counter semantics: fft/plan_cache_hits and fft/plan_cache_misses count
/// only lookups that fall through the memo (a length outside the per-thread
/// recent-four set), not every plan() call. A miss additionally means the
/// plan was constructed for the first time process-wide. Steady-state
/// traffic on fixed shapes should therefore hold both counters flat — the
/// perf smoke in scripts/check_tier1.sh asserts exactly that for misses.
template <typename T>
const PlanC2C<T>& plan(index_t n) {
  constexpr int kMemoSlots = 4;
  thread_local index_t memo_n[kMemoSlots] = {-1, -1, -1, -1};
  thread_local const PlanC2C<T>* memo[kMemoSlots] = {};
  thread_local int victim = 0;
  for (int s = 0; s < kMemoSlots; ++s) {
    if (memo_n[s] == n) return *memo[s];
  }
  const PlanC2C<T>& p = detail::plan_locked<T>(n);
  memo_n[victim] = n;
  memo[victim] = &p;
  victim = (victim + 1) % kMemoSlots;
  return p;
}

}  // namespace turb::fft
