// Reusable transform scratch buffers, keyed by call-site slot name.
//
// The FFT entry points (and their SpectralConv callers) run once per layer
// per training step; allocating the spectrum tensors fresh on every call put
// the allocator on the hot path. workspace() hands out a thread-local tensor
// per (element type, slot) pair that persists across calls: a repeat request
// with the same shape returns the same buffer (contents left from the
// previous use), a request with a different shape but equal element count
// reshapes in place without touching the storage, and only a genuine size
// change reallocates.
//
// Buffers are thread_local, so workers that end up running a transform
// serially inside a parallel region get private scratch with no locking;
// the cost is at most one buffer set per thread that calls in.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "obs/obs.hpp"
#include "tensor/tensor.hpp"

namespace turb::fft {

/// Thread-local scratch tensor for `slot`, shaped `shape`. The reference is
/// valid until the same (type, slot) pair is requested with a different
/// element count on the same thread. Contents are unspecified on a fresh
/// allocation (zero-initialised) and carried over on reuse — callers that
/// need zeros must clear explicitly.
template <typename T>
Tensor<T>& workspace(std::string_view slot, const Shape& shape) {
  thread_local std::map<std::string, Tensor<T>, std::less<>> cache;
  static obs::Counter& hits = obs::counter("fft/workspace_hits");
  static obs::Counter& misses = obs::counter("fft/workspace_misses");
  auto it = cache.find(slot);
  if (it == cache.end()) {
    misses.add(1);
    it = cache.emplace(std::string(slot), Tensor<T>(shape)).first;
    return it->second;
  }
  Tensor<T>& t = it->second;
  if (t.shape() == shape) {
    hits.add(1);
    return t;
  }
  if (numel(shape) == t.size()) {
    // Same element count: rebind the shape, keep the storage.
    hits.add(1);
    t.reshape(shape);
    return t;
  }
  misses.add(1);
  t = Tensor<T>(shape);
  return t;
}

}  // namespace turb::fft
