// Real ↔ complex 1-D transforms via the half-length complex FFT trick.
//
// rfft maps n reals to n/2+1 complex coefficients (non-negative
// frequencies); irfft inverts with the 1/n normalisation so that
// irfft(rfft(x)) == x. Lengths must be even (all grids and the temporal
// window length used in this library are even).
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "fft/plan_cache.hpp"
#include "util/common.hpp"

namespace turb::fft {

/// Forward real-to-complex DFT. `out` must hold n/2+1 elements.
///
/// `keep_bins` (optional, length n/2+1) marks which output bins the caller
/// will read; unmarked bins are skipped — their slots are left untouched.
/// Each bin's unpack is an independent function of the shared half-length
/// complex FFT, so skipping a bin cannot perturb any other bin and the kept
/// bins stay bitwise identical to the unmasked transform.
template <typename T>
void rfft(const T* in, std::complex<T>* out, index_t n,
          const std::uint8_t* keep_bins = nullptr) {
  using cpx = std::complex<T>;
  TURB_CHECK_MSG(n >= 2 && n % 2 == 0, "rfft length must be even, got " << n);
  const index_t h = n / 2;
  thread_local std::vector<cpx> z;
  z.resize(static_cast<std::size_t>(h));
  for (index_t k = 0; k < h; ++k) {
    z[static_cast<std::size_t>(k)] = cpx(in[2 * k], in[2 * k + 1]);
  }
  plan<T>(h).forward(z.data());

  for (index_t k = 0; k <= h; ++k) {
    if (keep_bins != nullptr && keep_bins[k] == 0) continue;
    const cpx zk = z[static_cast<std::size_t>(k % h)];
    const cpx zc = std::conj(z[static_cast<std::size_t>((h - k) % h)]);
    const cpx e = (zk + zc) * T{0.5};
    // O_k = (zk - zc) / (2i) = -i/2 * (zk - zc)
    const cpx d = zk - zc;
    const cpx o(T{0.5} * d.imag(), T{-0.5} * d.real());
    const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(n);
    const cpx w(static_cast<T>(std::cos(ang)), static_cast<T>(std::sin(ang)));
    out[k] = e + w * o;
  }
}

/// Inverse complex-to-real DFT (1/n scaling). `in` holds n/2+1 elements and
/// is treated as the non-negative-frequency half of a Hermitian spectrum.
template <typename T>
void irfft(const std::complex<T>* in, T* out, index_t n) {
  using cpx = std::complex<T>;
  TURB_CHECK_MSG(n >= 2 && n % 2 == 0, "irfft length must be even, got " << n);
  const index_t h = n / 2;
  thread_local std::vector<cpx> z;
  z.resize(static_cast<std::size_t>(h));
  for (index_t k = 0; k < h; ++k) {
    // The DC and Nyquist coefficients of a real signal are real; like cuFFT's
    // C2R, ignore any imaginary part there so the transform is exactly the
    // Hermitian-symmetric inverse (this makes the spectral-conv backward pass
    // an exact adjoint even when upstream produces non-Hermitian spectra).
    const cpx xk = (k == 0) ? cpx(in[0].real(), T{}) : in[k];
    const cpx xc = (k == 0) ? cpx(in[h].real(), T{})
                            : std::conj(in[h - k]);
    const cpx e = (xk + xc) * T{0.5};
    const cpx d = (xk - xc) * T{0.5};
    const double ang = 2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(n);
    const cpx w(static_cast<T>(std::cos(ang)), static_cast<T>(std::sin(ang)));
    const cpx o = d * w;
    // Z_k = E_k + i O_k
    z[static_cast<std::size_t>(k)] =
        cpx(e.real() - o.imag(), e.imag() + o.real());
  }
  plan<T>(h).inverse(z.data());
  for (index_t k = 0; k < h; ++k) {
    out[2 * k] = z[static_cast<std::size_t>(k)].real();
    out[2 * k + 1] = z[static_cast<std::size_t>(k)].imag();
  }
}

}  // namespace turb::fft
