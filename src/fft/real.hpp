// Real ↔ complex 1-D transforms via the half-length complex FFT trick.
//
// rfft maps n reals to n/2+1 complex coefficients (non-negative
// frequencies); irfft inverts with the 1/n normalisation so that
// irfft(rfft(x)) == x. Lengths must be even (all grids and the temporal
// window length used in this library are even).
//
// The unpack twiddles e^(±2πik/n) are read from a caller-provided table so
// the inference engine can compute them once at plan time; the rfft/irfft
// wrappers fill a scratch table per call (the historical cost). Both paths
// run the one shared _scratch instantiation on identical table values, so
// their outputs are bitwise identical by construction.
//
// The unpack/pack loops dispatch per call on util::active_isa() between the
// scalar reference loops below and the AVX2/FMA kernels in
// fft/kernels_avx2.hpp; dispatch sits inside the shared instantiation, so
// the training/engine bitwise identity above holds under either ISA.
#pragma once

#include <complex>
#include <cstdint>
#include <numbers>
#include <type_traits>
#include <vector>

#include "fft/kernels_avx2.hpp"
#include "fft/plan_cache.hpp"
#include "util/common.hpp"
#include "util/isa.hpp"

namespace turb::fft {

/// Fill `tw` (n/2+1 entries) with the rfft unpack twiddles
/// tw[k] = e^(-2πik/n) — the exact expressions rfft historically evaluated
/// inline per bin, so precomputed tables reproduce the same values.
template <typename T>
void fill_rfft_twiddles(std::complex<T>* tw, index_t n) {
  const index_t h = n / 2;
  for (index_t k = 0; k <= h; ++k) {
    const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(n);
    tw[k] = std::complex<T>(static_cast<T>(std::cos(ang)),
                            static_cast<T>(std::sin(ang)));
  }
}

/// Fill `tw` (n/2 entries) with the irfft pack twiddles tw[k] = e^(2πik/n).
template <typename T>
void fill_irfft_twiddles(std::complex<T>* tw, index_t n) {
  const index_t h = n / 2;
  for (index_t k = 0; k < h; ++k) {
    const double ang = 2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(n);
    tw[k] = std::complex<T>(static_cast<T>(std::cos(ang)),
                            static_cast<T>(std::sin(ang)));
  }
}

/// rfft core with caller-provided scratch `z` (n/2 elements) and twiddle
/// table `tw` (n/2+1 elements, see fill_rfft_twiddles). The inference
/// engine's arena hands in preallocated slices here; the thread_local
/// wrapper below keeps the original signature for everyone else. Both run
/// the exact same instructions, so results are bitwise identical between
/// the two entry points.
template <typename T>
void rfft_scratch(const T* in, std::complex<T>* out, index_t n,
                  const std::uint8_t* keep_bins, std::complex<T>* z,
                  const std::complex<T>* tw) {
  using cpx = std::complex<T>;
  TURB_CHECK_MSG(n >= 2 && n % 2 == 0, "rfft length must be even, got " << n);
  const index_t h = n / 2;
  for (index_t k = 0; k < h; ++k) {
    z[k] = cpx(in[2 * k], in[2 * k + 1]);
  }
  plan<T>(h).forward(z);

#if defined(TURBFNO_HAS_AVX2_KERNELS)
  if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
    if (util::active_isa() == util::Isa::kAvx2) {
      avx2::rfft_unpack(z, out, h, keep_bins, tw);
      return;
    }
  }
#endif
  for (index_t k = 0; k <= h; ++k) {
    if (keep_bins != nullptr && keep_bins[k] == 0) continue;
    const cpx zk = z[k % h];
    const cpx zc = std::conj(z[(h - k) % h]);
    const cpx e = (zk + zc) * T{0.5};
    // O_k = (zk - zc) / (2i) = -i/2 * (zk - zc)
    const cpx d = zk - zc;
    const cpx o(T{0.5} * d.imag(), T{-0.5} * d.real());
    const cpx w = tw[k];
    out[k] = e + w * o;
  }
}

/// irfft core with caller-provided scratch `z` (n/2 elements) and twiddle
/// table `tw` (n/2 elements, see fill_irfft_twiddles).
template <typename T>
void irfft_scratch(const std::complex<T>* in, T* out, index_t n,
                   std::complex<T>* z, const std::complex<T>* tw) {
  using cpx = std::complex<T>;
  TURB_CHECK_MSG(n >= 2 && n % 2 == 0, "irfft length must be even, got " << n);
  const index_t h = n / 2;
#if defined(TURBFNO_HAS_AVX2_KERNELS)
  if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
    if (util::active_isa() == util::Isa::kAvx2) {
      avx2::irfft_pack(in, z, h, tw);
      plan<T>(h).inverse(z);
      for (index_t k = 0; k < h; ++k) {
        out[2 * k] = z[k].real();
        out[2 * k + 1] = z[k].imag();
      }
      return;
    }
  }
#endif
  for (index_t k = 0; k < h; ++k) {
    // The DC and Nyquist coefficients of a real signal are real; like cuFFT's
    // C2R, ignore any imaginary part there so the transform is exactly the
    // Hermitian-symmetric inverse (this makes the spectral-conv backward pass
    // an exact adjoint even when upstream produces non-Hermitian spectra).
    const cpx xk = (k == 0) ? cpx(in[0].real(), T{}) : in[k];
    const cpx xc = (k == 0) ? cpx(in[h].real(), T{})
                            : std::conj(in[h - k]);
    const cpx e = (xk + xc) * T{0.5};
    const cpx d = (xk - xc) * T{0.5};
    const cpx w = tw[k];
    const cpx o = d * w;
    // Z_k = E_k + i O_k
    z[k] = cpx(e.real() - o.imag(), e.imag() + o.real());
  }
  plan<T>(h).inverse(z);
  for (index_t k = 0; k < h; ++k) {
    out[2 * k] = z[k].real();
    out[2 * k + 1] = z[k].imag();
  }
}

/// Lane-batched rfft over `nl` rows (nl in [1, kMaxLanes]): input row l at
/// in + l*in_stride, output row l at out + l*out_stride. z_li (n/2 · nl) and
/// u_li ((n/2+1) · nl) are caller-provided lane-interleaved scratch; tw is
/// the fill_rfft_twiddles table. Per row the result is bitwise identical to
/// rfft_scratch on that row alone under the same ISA tier: on the AVX2 tier
/// the gather/scatter are exact copies and the transform/unpack run
/// intrinsics lane kernels with fixed per-lane arithmetic; on the scalar
/// tier the rows (already contiguous) run the pinned single-line kernel one
/// lane at a time — no compiler-generated per-lane FP loops anywhere (see
/// fft/plan.hpp on batch occupancy invariance). Bins masked out by
/// keep_bins are skipped and their output slots left untouched.
template <typename T>
void rfft_batch_scratch(const T* in, index_t in_stride, std::complex<T>* out,
                        index_t out_stride, index_t n, index_t nl,
                        const std::uint8_t* keep_bins, std::complex<T>* z_li,
                        std::complex<T>* u_li, const std::complex<T>* tw) {
  using cpx = std::complex<T>;
  TURB_CHECK_MSG(n >= 2 && n % 2 == 0, "rfft length must be even, got " << n);
  const index_t h = n / 2;
  if (nl == 1) {
    rfft_scratch(in, out, n, keep_bins, z_li, tw);
    return;
  }
#if defined(TURBFNO_HAS_AVX2_KERNELS)
  if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
    if (util::active_isa() == util::Isa::kAvx2) {
      for (index_t l = 0; l < nl; ++l) {
        const T* row = in + l * in_stride;
        for (index_t k = 0; k < h; ++k) {
          z_li[k * nl + l] = cpx(row[2 * k], row[2 * k + 1]);
        }
      }
      plan<T>(h).forward_batch(z_li, nl);
      avx2::rfft_unpack_lanes(z_li, u_li, h, keep_bins, tw, nl);
      for (index_t l = 0; l < nl; ++l) {
        cpx* orow = out + l * out_stride;
        for (index_t k = 0; k <= h; ++k) {
          if (keep_bins != nullptr && keep_bins[k] == 0) continue;
          orow[k] = u_li[k * nl + l];
        }
      }
      return;
    }
  }
#endif
  // Scalar tier: each row is contiguous in memory already, so run the
  // single-line kernel per lane (z_li's first h slots serve as the per-row
  // scratch). The batch still amortises the caller's twiddle fill and
  // chunk bookkeeping.
  (void)u_li;
  for (index_t l = 0; l < nl; ++l) {
    rfft_scratch(in + l * in_stride, out + l * out_stride, n, keep_bins, z_li,
                 tw);
  }
}

/// Lane-batched irfft over `nl` rows: spectrum row l at in + l*in_stride
/// (n/2+1 elements), real output row l at out + l*out_stride. u_li holds
/// (n/2+1) · nl and z_li n/2 · nl lane-interleaved scratch; tw is the
/// fill_irfft_twiddles table. Bitwise identical per row to irfft_scratch
/// under the same ISA tier.
template <typename T>
void irfft_batch_scratch(const std::complex<T>* in, index_t in_stride, T* out,
                         index_t out_stride, index_t n, index_t nl,
                         std::complex<T>* z_li, std::complex<T>* u_li,
                         const std::complex<T>* tw) {
  using cpx = std::complex<T>;
  TURB_CHECK_MSG(n >= 2 && n % 2 == 0, "irfft length must be even, got " << n);
  const index_t h = n / 2;
  if (nl == 1) {
    irfft_scratch(in, out, n, z_li, tw);
    return;
  }
#if defined(TURBFNO_HAS_AVX2_KERNELS)
  if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
    if (util::active_isa() == util::Isa::kAvx2) {
      for (index_t l = 0; l < nl; ++l) {
        const cpx* row = in + l * in_stride;
        for (index_t k = 0; k <= h; ++k) u_li[k * nl + l] = row[k];
      }
      avx2::irfft_pack_lanes(u_li, z_li, h, tw, nl);
      plan<T>(h).inverse_batch(z_li, nl);
      for (index_t l = 0; l < nl; ++l) {
        T* orow = out + l * out_stride;
        for (index_t k = 0; k < h; ++k) {
          orow[2 * k] = z_li[k * nl + l].real();
          orow[2 * k + 1] = z_li[k * nl + l].imag();
        }
      }
      return;
    }
  }
#endif
  // Scalar tier: run the pinned single-line kernel per lane (see
  // rfft_batch_scratch for the rationale).
  (void)u_li;
  for (index_t l = 0; l < nl; ++l) {
    irfft_scratch(in + l * in_stride, out + l * out_stride, n, z_li, tw);
  }
}

/// Forward real-to-complex DFT. `out` must hold n/2+1 elements.
///
/// `keep_bins` (optional, length n/2+1) marks which output bins the caller
/// will read; unmarked bins are skipped — their slots are left untouched.
/// Each bin's unpack is an independent function of the shared half-length
/// complex FFT, so skipping a bin cannot perturb any other bin and the kept
/// bins stay bitwise identical to the unmasked transform.
template <typename T>
void rfft(const T* in, std::complex<T>* out, index_t n,
          const std::uint8_t* keep_bins = nullptr) {
  TURB_CHECK_MSG(n >= 2 && n % 2 == 0, "rfft length must be even, got " << n);
  thread_local std::vector<std::complex<T>> z;
  thread_local std::vector<std::complex<T>> tw;
  z.resize(static_cast<std::size_t>(n / 2));
  tw.resize(static_cast<std::size_t>(n / 2 + 1));
  fill_rfft_twiddles(tw.data(), n);
  rfft_scratch(in, out, n, keep_bins, z.data(), tw.data());
}

/// Inverse complex-to-real DFT (1/n scaling). `in` holds n/2+1 elements and
/// is treated as the non-negative-frequency half of a Hermitian spectrum.
template <typename T>
void irfft(const std::complex<T>* in, T* out, index_t n) {
  TURB_CHECK_MSG(n >= 2 && n % 2 == 0, "irfft length must be even, got " << n);
  thread_local std::vector<std::complex<T>> z;
  thread_local std::vector<std::complex<T>> tw;
  z.resize(static_cast<std::size_t>(n / 2));
  tw.resize(static_cast<std::size_t>(n / 2));
  fill_irfft_twiddles(tw.data(), n);
  irfft_scratch(in, out, n, z.data(), tw.data());
}

}  // namespace turb::fft
