#include "analysis/lyapunov.hpp"

#include <cmath>
#include <limits>

#include "util/common.hpp"

namespace turb::analysis {

double field_separation(const TensorD& a, const TensorD& b) {
  TURB_CHECK(a.size() == b.size() && !a.empty());
  double acc = 0.0;
  for (index_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

LyapunovEstimator::LyapunovEstimator(double delta0) : delta0_(delta0) {
  TURB_CHECK_MSG(delta0_ > 0.0, "initial separation must be positive");
}

void LyapunovEstimator::record(double t, double separation) {
  TURB_CHECK_MSG(t > 0.0, "sample time must be positive");
  TURB_CHECK_MSG(separation > 0.0, "separation must be positive");
  LyapunovPoint p;
  p.t = t;
  p.separation = separation;
  p.lambda = std::log(separation / delta0_) / t;
  series_.push_back(p);
}

void LyapunovEstimator::record_fields(double t, const TensorD& a,
                                      const TensorD& b) {
  record(t, field_separation(a, b));
}

double LyapunovEstimator::weighted_exponent(double saturation_fraction) const {
  TURB_CHECK(!series_.empty());
  double max_sep = 0.0;
  for (const auto& p : series_) max_sep = std::max(max_sep, p.separation);
  const double cutoff = saturation_fraction * max_sep;

  double num = 0.0, den = 0.0;
  for (const auto& p : series_) {
    if (p.separation > cutoff) continue;
    num += p.lambda * p.t;
    den += p.t;
  }
  TURB_CHECK_MSG(den > 0.0, "no points below saturation cutoff");
  return num / den;
}

double LyapunovEstimator::lyapunov_time(double saturation_fraction) const {
  const double lambda = weighted_exponent(saturation_fraction);
  if (lambda <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / lambda;
}

}  // namespace turb::analysis
