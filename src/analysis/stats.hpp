// Field statistics used throughout the paper's evaluation:
// vorticity mean/std/Frobenius norm (Fig. 1), L2 separation (Fig. 2),
// correlation coefficient / normalized projection (Fig. 3), and the global
// kinetic-energy / enstrophy / divergence diagnostics of Figs. 8–9.
#pragma once

#include "tensor/tensor.hpp"

namespace turb::analysis {

struct FieldStats {
  double mean = 0.0;
  double stddev = 0.0;
  double frobenius = 0.0;  ///< √(Σ f²)
};

/// Mean, standard deviation, and Frobenius norm of a field.
FieldStats field_stats(const TensorD& f);

/// Normalized projection (correlation coefficient without mean removal, as
/// in the paper's Fig. 3): ⟨a, b⟩ / (‖a‖·‖b‖).
double normalized_projection(const TensorD& a, const TensorD& b);

/// Pearson correlation coefficient (means removed).
double pearson_correlation(const TensorD& a, const TensorD& b);

/// ‖a − b‖₂ / ‖b‖₂ — the scaled separation of Fig. 2.
double relative_l2_difference(const TensorD& a, const TensorD& b);

/// Global kinetic energy  (1/2)·⟨u₁² + u₂²⟩ (domain mean).
double kinetic_energy(const TensorD& u1, const TensorD& u2);

/// Global enstrophy ⟨ω²⟩ (domain mean of squared vorticity).
double enstrophy(const TensorD& omega);

/// Affine normalisation x ↦ (x − mean)/std fitted on a reference field or
/// data set (the paper normalises each sample by its t = 0 statistics; the
/// training pipeline normalises by data-set statistics).
class Normalizer {
 public:
  Normalizer() = default;
  Normalizer(double mean, double stddev);

  /// Fit from a double field (e.g. the t = 0 snapshot of a sample).
  static Normalizer fit(const TensorD& reference);
  /// Fit from a float data set tensor.
  static Normalizer fit(const TensorF& reference);

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double stddev() const { return stddev_; }

  void apply(TensorD& f) const;
  void apply(TensorF& f) const;
  void invert(TensorD& f) const;
  void invert(TensorF& f) const;

 private:
  double mean_ = 0.0;
  double stddev_ = 1.0;
};

}  // namespace turb::analysis
