#include "analysis/stats.hpp"

#include <cmath>

#include "util/common.hpp"

namespace turb::analysis {

FieldStats field_stats(const TensorD& f) {
  TURB_CHECK(!f.empty());
  FieldStats s;
  s.mean = f.mean();
  double var = 0.0;
  for (index_t i = 0; i < f.size(); ++i) {
    const double d = f[i] - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / static_cast<double>(f.size()));
  s.frobenius = f.norm();
  return s;
}

double normalized_projection(const TensorD& a, const TensorD& b) {
  TURB_CHECK(a.size() == b.size() && !a.empty());
  double dot = 0.0;
  for (index_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
  const double denom = a.norm() * b.norm();
  TURB_CHECK_MSG(denom > 0.0, "zero-norm field in projection");
  return dot / denom;
}

double pearson_correlation(const TensorD& a, const TensorD& b) {
  TURB_CHECK(a.size() == b.size() && a.size() >= 2);
  const double ma = a.mean();
  const double mb = b.mean();
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (index_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  const double denom = std::sqrt(va * vb);
  TURB_CHECK_MSG(denom > 0.0, "constant field in correlation");
  return cov / denom;
}

double relative_l2_difference(const TensorD& a, const TensorD& b) {
  TURB_CHECK(a.size() == b.size() && !a.empty());
  double num = 0.0;
  for (index_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    num += d * d;
  }
  const double denom = b.squared_norm();
  TURB_CHECK_MSG(denom > 0.0, "zero-norm reference field");
  return std::sqrt(num / denom);
}

double kinetic_energy(const TensorD& u1, const TensorD& u2) {
  TURB_CHECK(u1.size() == u2.size() && !u1.empty());
  return 0.5 * (u1.squared_norm() + u2.squared_norm()) /
         static_cast<double>(u1.size());
}

double enstrophy(const TensorD& omega) {
  TURB_CHECK(!omega.empty());
  return omega.squared_norm() / static_cast<double>(omega.size());
}

Normalizer::Normalizer(double mean, double stddev)
    : mean_(mean), stddev_(stddev) {
  TURB_CHECK_MSG(stddev_ > 0.0, "normalizer needs positive stddev");
}

Normalizer Normalizer::fit(const TensorD& reference) {
  const FieldStats s = field_stats(reference);
  TURB_CHECK_MSG(s.stddev > 0.0, "cannot normalise a constant field");
  return Normalizer(s.mean, s.stddev);
}

Normalizer Normalizer::fit(const TensorF& reference) {
  TURB_CHECK(!reference.empty());
  const double mean = reference.mean();
  double var = 0.0;
  for (index_t i = 0; i < reference.size(); ++i) {
    const double d = static_cast<double>(reference[i]) - mean;
    var += d * d;
  }
  const double stddev = std::sqrt(var / static_cast<double>(reference.size()));
  TURB_CHECK_MSG(stddev > 0.0, "cannot normalise a constant data set");
  return Normalizer(mean, stddev);
}

void Normalizer::apply(TensorD& f) const {
  for (index_t i = 0; i < f.size(); ++i) f[i] = (f[i] - mean_) / stddev_;
}

void Normalizer::apply(TensorF& f) const {
  const auto m = static_cast<float>(mean_);
  const auto inv = static_cast<float>(1.0 / stddev_);
  for (index_t i = 0; i < f.size(); ++i) f[i] = (f[i] - m) * inv;
}

void Normalizer::invert(TensorD& f) const {
  for (index_t i = 0; i < f.size(); ++i) f[i] = f[i] * stddev_ + mean_;
}

void Normalizer::invert(TensorF& f) const {
  const auto m = static_cast<float>(mean_);
  const auto s = static_cast<float>(stddev_);
  for (index_t i = 0; i < f.size(); ++i) f[i] = f[i] * s + m;
}

}  // namespace turb::analysis
