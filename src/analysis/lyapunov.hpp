// Maximum-Lyapunov-exponent estimation (paper §IV, Eq. 1, Fig. 4).
//
// Two trajectories A and B are launched from initial conditions separated by
// δx₀ = ‖u^A(0) − u^B(0)‖₂. At each sample time tᵢ the finite-time exponent
//   λᵢ = (1/tᵢ) ln(δx(tᵢ)/δx₀)
// is recorded; the summary exponent is the time-weighted mean
//   ⟨λ⟩ = Σᵢ λᵢ tᵢ / Σᵢ tᵢ                                   (Eq. 1)
// and the Lyapunov time is T_L = 1/Λ with Λ = max⟨λ⟩ over the observed
// fields. Separations near attractor saturation can be excluded via
// `saturation_fraction`.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace turb::analysis {

struct LyapunovPoint {
  double t = 0.0;           ///< sample time
  double separation = 0.0;  ///< δx(t)
  double lambda = 0.0;      ///< finite-time exponent λᵢ
};

class LyapunovEstimator {
 public:
  /// @param delta0 initial separation δx₀ (must be > 0).
  explicit LyapunovEstimator(double delta0);

  /// Record the separation of the two trajectories at time t > 0.
  void record(double t, double separation);

  /// Record δx(t) = ‖a − b‖₂ directly from two fields.
  void record_fields(double t, const TensorD& a, const TensorD& b);

  [[nodiscard]] const std::vector<LyapunovPoint>& series() const {
    return series_;
  }

  /// Time-weighted mean exponent (Eq. 1). Points with separation above
  /// `saturation_fraction × max separation seen` are excluded (they probe
  /// the attractor size, not the local dynamics). Pass 1.0 to keep all.
  [[nodiscard]] double weighted_exponent(double saturation_fraction = 1.0) const;

  /// T_L = 1/⟨λ⟩ (weighted); infinite when the exponent is ≤ 0.
  [[nodiscard]] double lyapunov_time(double saturation_fraction = 1.0) const;

  [[nodiscard]] double delta0() const { return delta0_; }

 private:
  double delta0_;
  std::vector<LyapunovPoint> series_;
};

/// δx between velocity fields: ‖a − b‖₂ over the grid.
double field_separation(const TensorD& a, const TensorD& b);

}  // namespace turb::analysis
