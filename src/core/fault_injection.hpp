// Fault-injecting propagator wrapper for the robustness test suite and the
// tier-1 smoke check: behaves like the wrapped propagator for a configurable
// number of snapshots, then corrupts its output (NaN injection or amplitude
// blow-up) — a deterministic stand-in for an FNO surrogate drifting off the
// turbulence attractor.
#pragma once

#include <limits>

#include "core/propagator.hpp"

namespace turb::core {

class DivergentPropagator final : public Propagator {
 public:
  enum class Mode {
    nan,     ///< poison the first velocity value with a quiet NaN
    blowup,  ///< scale both velocity components by `blowup_factor`
  };

  /// @param inner              propagator to wrap (not owned; must outlive)
  /// @param healthy_snapshots  snapshots passed through before corruption
  DivergentPropagator(Propagator& inner, index_t healthy_snapshots,
                      Mode mode = Mode::nan, double blowup_factor = 1e6)
      : inner_(&inner), healthy_(healthy_snapshots), mode_(mode),
        blowup_factor_(blowup_factor) {}

  std::vector<FieldSnapshot> advance(const History& history,
                                     index_t count) override {
    std::vector<FieldSnapshot> out = inner_->advance(history, count);
    for (FieldSnapshot& snap : out) {
      if (++produced_ <= healthy_) continue;
      if (mode_ == Mode::nan) {
        snap.u1[0] = std::numeric_limits<double>::quiet_NaN();
      } else {
        for (index_t i = 0; i < snap.u1.size(); ++i) {
          snap.u1[i] *= blowup_factor_;
          snap.u2[i] *= blowup_factor_;
        }
      }
    }
    return out;
  }

  [[nodiscard]] double dt_snap() const override { return inner_->dt_snap(); }
  [[nodiscard]] index_t min_history() const override {
    return inner_->min_history();
  }
  [[nodiscard]] std::string name() const override { return "divergent"; }

  /// Snapshots produced so far (healthy + corrupted).
  [[nodiscard]] index_t produced() const { return produced_; }

 private:
  Propagator* inner_;
  index_t healthy_;
  Mode mode_;
  double blowup_factor_;
  index_t produced_ = 0;
};

}  // namespace turb::core
