#include "core/ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/rng.hpp"

namespace turb::core {

History perturb_member_seed(const History& seed, std::uint64_t ensemble_seed,
                            index_t member, double eps) {
  TURB_CHECK(member >= 0);
  TURB_CHECK(eps >= 0.0);
  if (member == 0 || eps == 0.0) return seed;
  History out;
  index_t snap_index = 0;
  for (const FieldSnapshot& snap : seed) {
    // One generator per (member, snapshot): insertion-order independent and
    // splittable, so the same member always sees the same perturbation no
    // matter how the seed was assembled.
    Rng rng(ensemble_seed +
            static_cast<std::uint64_t>(member) * 0x9E3779B97F4A7C15ull +
            static_cast<std::uint64_t>(snap_index) * 0xC2B2AE3D27D4EB4Full);
    FieldSnapshot p;
    p.t = snap.t;
    p.u1 = snap.u1;
    p.u2 = snap.u2;
    for (index_t i = 0; i < p.u1.size(); ++i) {
      p.u1[i] += eps * (2.0 * rng.uniform() - 1.0);
    }
    for (index_t i = 0; i < p.u2.size(); ++i) {
      p.u2[i] += eps * (2.0 * rng.uniform() - 1.0);
    }
    out.push_back(std::move(p));
    ++snap_index;
  }
  return out;
}

RolloutRequest ensemble_member_request(const RolloutRequest& base,
                                       index_t member) {
  TURB_CHECK(base.ensemble_k >= 1);
  TURB_CHECK_MSG(member >= 0 && member < base.ensemble_k,
                 "member " << member << " out of range for a "
                           << base.ensemble_k << "-member ensemble");
  RolloutRequest request = base;
  request.seed = perturb_member_seed(base.seed, base.ensemble_seed, member,
                                     base.ensemble_eps);
  request.ensemble_k = 1;
  request.ensemble_keep_members = false;
  // The group-level calibrated guard owns divergence detection; member
  // streams run unguarded so an untripped member is a pure primary rollout.
  request.guard = GuardConfig{};
  return request;
}

void anchored_mean_spread(const double* values, index_t k, double* mean,
                          double* spread) {
  TURB_CHECK(k >= 1);
  const double anchor = values[0];
  double dev_sum = 0.0;
  for (index_t m = 0; m < k; ++m) dev_sum += values[m] - anchor;
  const double mean_dev = dev_sum / static_cast<double>(k);
  double var = 0.0;
  for (index_t m = 0; m < k; ++m) {
    const double d = (values[m] - anchor) - mean_dev;
    var += d * d;
  }
  *mean = anchor + mean_dev;
  *spread = std::sqrt(var / static_cast<double>(k));
}

namespace {

/// Member-0-anchored per-point mean field and pooled variance accumulation
/// for one component: writes mean into `mean_out`, returns Σ_points Σ_m
/// (d_m − mean_dev)². Identical members contribute exact zeros.
double reduce_component(const std::vector<RolloutResult>& members,
                        std::size_t snap, TensorD FieldSnapshot::*component,
                        TensorD& mean_out) {
  const auto k = static_cast<index_t>(members.size());
  const TensorD& anchor = members[0].trajectory[snap].*component;
  mean_out = anchor;
  double var_sum = 0.0;
  for (index_t i = 0; i < anchor.size(); ++i) {
    double dev_sum = 0.0;
    for (index_t m = 1; m < k; ++m) {
      dev_sum +=
          (members[static_cast<std::size_t>(m)].trajectory[snap].*component)[i] -
          anchor[i];
    }
    const double mean_dev = dev_sum / static_cast<double>(k);
    mean_out[i] = anchor[i] + mean_dev;
    for (index_t m = 0; m < k; ++m) {
      const double d =
          ((members[static_cast<std::size_t>(m)].trajectory[snap].*component)[i] -
           anchor[i]) -
          mean_dev;
      var_sum += d * d;
    }
  }
  return var_sum;
}

}  // namespace

RolloutResult reduce_ensemble_members(std::vector<RolloutResult>&& members,
                                      std::vector<GuardEvent> guard_events,
                                      bool keep_members) {
  const auto k = static_cast<index_t>(members.size());
  TURB_CHECK(k >= 1);
  const std::size_t n = members[0].trajectory.size();
  for (const RolloutResult& m : members) {
    TURB_CHECK_MSG(m.trajectory.size() == n,
                   "ensemble members produced " << m.trajectory.size()
                                                << " vs " << n
                                                << " snapshots");
  }

  RolloutResult combined;
  combined.ensemble_members = k;
  combined.guard_events = std::move(guard_events);
  combined.producer = members[0].producer;
  combined.trajectory.reserve(n);
  combined.metrics.reserve(n);
  combined.spread.reserve(n);

  std::vector<double> energies(static_cast<std::size_t>(k));
  std::vector<double> enstrophies(static_cast<std::size_t>(k));
  for (std::size_t s = 0; s < n; ++s) {
    FieldSnapshot mean;
    mean.t = members[0].trajectory[s].t;
    double var_sum = reduce_component(members, s, &FieldSnapshot::u1, mean.u1);
    var_sum += reduce_component(members, s, &FieldSnapshot::u2, mean.u2);
    const auto points =
        static_cast<double>(mean.u1.size() + mean.u2.size());

    EnsembleSnapshotSpread row;
    row.variance = var_sum / (static_cast<double>(k) * points);
    const double mean_rms =
        std::sqrt((mean.u1.squared_norm() + mean.u2.squared_norm()) / points);
    row.rel_spread =
        mean_rms > 0.0 ? std::sqrt(row.variance) / mean_rms : 0.0;
    for (index_t m = 0; m < k; ++m) {
      energies[static_cast<std::size_t>(m)] =
          members[static_cast<std::size_t>(m)].metrics[s].kinetic_energy;
      enstrophies[static_cast<std::size_t>(m)] =
          members[static_cast<std::size_t>(m)].metrics[s].enstrophy;
    }
    anchored_mean_spread(energies.data(), k, &row.energy_mean,
                         &row.energy_spread);
    anchored_mean_spread(enstrophies.data(), k, &row.enstrophy_mean,
                         &row.enstrophy_spread);
    combined.spread.push_back(row);
    combined.metrics.push_back(compute_metrics(mean));
    combined.trajectory.push_back(std::move(mean));
  }

  if (keep_members) combined.member_results = std::move(members);
  return combined;
}

SpreadCalibrator::Bands SpreadCalibrator::calibrate(const double* energies,
                                                    const double* enstrophies,
                                                    index_t k) {
  double energy_mean = 0.0, energy_spread = 0.0;
  double enstrophy_mean = 0.0, enstrophy_spread = 0.0;
  anchored_mean_spread(energies, k, &energy_mean, &energy_spread);
  anchored_mean_spread(enstrophies, k, &enstrophy_mean, &enstrophy_spread);

  // Monotone envelope: the widest spread of any *accepted* snapshot so far.
  // A transient consensus must not shrink the band below the variability
  // the ensemble has already demonstrated — but the current snapshot's
  // spread is only staged (check-then-update): a diverging member widening
  // its own band in proportion to its divergence could never trip.
  if (!seeded_) {
    // Snapshot 0 seeds the baseline: it carries the deliberate member
    // perturbation, and no divergence verdict exists without a baseline.
    env_energy_ = std::max(env_energy_, energy_spread);
    env_enstrophy_ = std::max(env_enstrophy_, enstrophy_spread);
    seeded_ = true;
  } else {
    staged_energy_ = std::max(staged_energy_, energy_spread);
    staged_enstrophy_ = std::max(staged_enstrophy_, enstrophy_spread);
  }

  Bands bands;
  bands.energy_halfwidth =
      config_.spread_band_factor *
      std::max(env_energy_, config_.spread_floor_rel * std::abs(energy_mean));
  bands.enstrophy_halfwidth =
      config_.spread_band_factor *
      std::max(env_enstrophy_,
               config_.spread_floor_rel * std::abs(enstrophy_mean));
  bands.energy_min = energy_mean - bands.energy_halfwidth;
  bands.energy_max = energy_mean + bands.energy_halfwidth;
  bands.enstrophy_max = enstrophy_mean + bands.enstrophy_halfwidth;
  return bands;
}

void SpreadCalibrator::commit_round() {
  env_energy_ = std::max(env_energy_, staged_energy_);
  env_enstrophy_ = std::max(env_enstrophy_, staged_enstrophy_);
  staged_energy_ = 0.0;
  staged_enstrophy_ = 0.0;
}

void SpreadCalibrator::discard_round() {
  staged_energy_ = 0.0;
  staged_enstrophy_ = 0.0;
}

}  // namespace turb::core
