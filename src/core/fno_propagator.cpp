#include "core/fno_propagator.hpp"

#include <algorithm>

namespace turb::core {

FnoPropagator::FnoPropagator(fno::Fno& model, analysis::Normalizer normalizer,
                             double dt_snap,
                             infer::EngineOptions engine_options)
    : model_(&model),
      engine_(model, engine_options),
      normalizer_(normalizer),
      dt_snap_(dt_snap) {
  TURB_CHECK(dt_snap_ > 0.0);
  TURB_CHECK_MSG(model_->config().rank() == 2,
                 "FnoPropagator requires a rank-2 (temporal channels) model");
}

std::vector<FieldSnapshot> FnoPropagator::advance(const History& history,
                                                  index_t count) {
  std::vector<FieldSnapshot> out;
  advance_into(history, count, out);
  return out;
}

void FnoPropagator::advance_into(const History& history, index_t count,
                                 std::vector<FieldSnapshot>& out) {
  const History* h = &history;
  std::vector<FieldSnapshot>* o = &out;
  advance_batched_into(engine_, &h, &count, 1, &o);
}

void FnoPropagator::advance_batched_into(
    infer::InferenceEngine& engine, const History* const* histories,
    const index_t* counts, index_t n_streams,
    std::vector<FieldSnapshot>* const* outs) {
  const index_t cin = model_->config().in_channels;
  const index_t cout = model_->config().out_channels;
  TURB_CHECK(n_streams >= 1);
  index_t max_count = 0;
  for (index_t s = 0; s < n_streams; ++s) {
    TURB_CHECK_MSG(static_cast<index_t>(histories[s]->size()) >= cin,
                   "fno propagator needs " << cin
                                           << " history snapshots, got "
                                           << histories[s]->size());
    TURB_CHECK(counts[s] >= 1);
    max_count = std::max(max_count, counts[s]);
  }
  const TensorD& ref = histories[0]->back().u1;
  const index_t h = ref.dim(0), w = ref.dim(1);
  const index_t frame = h * w;

  // All components of all streams in one batch: (2·n, C_in, H, W) — stream
  // s's u1/u2 on batch entries 2s/2s+1 — cast + normalised directly into
  // the engine's arena window; the training-path code built a fresh tensor
  // and ran a second normalisation pass over it. The fused form applies the
  // identical per-element float chain (cast, subtract mean, multiply by
  // 1/std), so the window contents are bitwise unchanged, and batch slabs
  // are independent through every engine kernel, so each stream's bytes
  // match a solo run regardless of who it is co-batched with.
  engine.plan({2 * n_streams, cin, h, w});
  float* win = engine.window_buffer();
  const auto mf = static_cast<float>(normalizer_.mean());
  const auto invf = static_cast<float>(1.0 / normalizer_.stddev());
  for (index_t s = 0; s < n_streams; ++s) {
    const History& history = *histories[s];
    const auto first = history.size() - static_cast<std::size_t>(cin);
    for (index_t c = 0; c < cin; ++c) {
      const FieldSnapshot& snap =
          history[first + static_cast<std::size_t>(c)];
      TURB_CHECK(snap.u1.size() == frame && snap.u2.size() == frame);
      float* w1 = win + ((2 * s + 0) * cin + c) * frame;
      float* w2 = win + ((2 * s + 1) * cin + c) * frame;
      for (index_t i = 0; i < frame; ++i) {
        w1[i] = (static_cast<float>(snap.u1[i]) - mf) * invf;
        w2[i] = (static_cast<float>(snap.u2[i]) - mf) * invf;
      }
    }
    // Reuse the caller's snapshot tensors when shapes match (steady state
    // of a warm session); (re)allocate only on first use or grid change.
    std::vector<FieldSnapshot>& out = *outs[s];
    out.resize(static_cast<std::size_t>(counts[s]));
    const auto is_field = [h, w](const TensorD& t) {
      return t.rank() == 2 && t.dim(0) == h && t.dim(1) == w;
    };
    for (FieldSnapshot& snap : out) {
      if (!is_field(snap.u1)) snap.u1 = TensorD({h, w});
      if (!is_field(snap.u2)) snap.u2 = TensorD({h, w});
    }
  }

  const auto sf = static_cast<float>(normalizer_.stddev());
  const float* pred = engine.pred_buffer(0);
  index_t produced = 0;
  while (produced < max_count) {
    engine.forward_raw(win, engine.pred_buffer(0));
    // Slide the window first (it consumes the normalised prediction), then
    // de-normalise on the fly while extracting snapshots — the prediction
    // buffer itself is never modified, so the slide and the extraction read
    // the same values the training path did. Streams that already have all
    // their snapshots keep riding the batch (their slabs are computed but
    // not extracted) — dropping them mid-batch would change the planned
    // shape and force a re-plan per forward.
    engine.slide_window(win, pred, 2 * n_streams, frame);
    for (index_t s = 0; s < n_streams; ++s) {
      const index_t take =
          std::clamp<index_t>(counts[s] - produced, 0, cout);
      const double t0 = histories[s]->back().t;
      std::vector<FieldSnapshot>& out = *outs[s];
      for (index_t j = 0; j < take; ++j) {
        FieldSnapshot& snap = out[static_cast<std::size_t>(produced + j)];
        snap.t = t0 + dt_snap_ * static_cast<double>(produced + j + 1);
        const float* p1 = pred + ((2 * s + 0) * cout + j) * frame;
        const float* p2 = pred + ((2 * s + 1) * cout + j) * frame;
        for (index_t i = 0; i < frame; ++i) {
          snap.u1[i] = static_cast<double>(p1[i] * sf + mf);
          snap.u2[i] = static_cast<double>(p2[i] * sf + mf);
        }
      }
    }
    produced += cout;
  }
}

}  // namespace turb::core
