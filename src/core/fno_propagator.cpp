#include "core/fno_propagator.hpp"

#include <algorithm>

namespace turb::core {

FnoPropagator::FnoPropagator(fno::Fno& model, analysis::Normalizer normalizer,
                             double dt_snap)
    : model_(&model),
      engine_(model),
      normalizer_(normalizer),
      dt_snap_(dt_snap) {
  TURB_CHECK(dt_snap_ > 0.0);
  TURB_CHECK_MSG(model_->config().rank() == 2,
                 "FnoPropagator requires a rank-2 (temporal channels) model");
}

std::vector<FieldSnapshot> FnoPropagator::advance(const History& history,
                                                  index_t count) {
  std::vector<FieldSnapshot> out;
  advance_into(history, count, out);
  return out;
}

void FnoPropagator::advance_into(const History& history, index_t count,
                                 std::vector<FieldSnapshot>& out) {
  const index_t cin = model_->config().in_channels;
  const index_t cout = model_->config().out_channels;
  TURB_CHECK_MSG(static_cast<index_t>(history.size()) >= cin,
                 "fno propagator needs " << cin << " history snapshots, got "
                                         << history.size());
  TURB_CHECK(count >= 1);
  const TensorD& ref = history.back().u1;
  const index_t h = ref.dim(0), w = ref.dim(1);
  const index_t frame = h * w;

  // Both components in one batch: (2, C_in, H, W), cast + normalised
  // directly into the engine's arena window — the training-path code built
  // a fresh tensor and ran a second normalisation pass over it. The fused
  // form applies the identical per-element float chain (cast, subtract
  // mean, multiply by 1/std), so the window contents are bitwise unchanged.
  engine_.plan({2, cin, h, w});
  float* win = engine_.window_buffer();
  const auto mf = static_cast<float>(normalizer_.mean());
  const auto invf = static_cast<float>(1.0 / normalizer_.stddev());
  const auto first = history.size() - static_cast<std::size_t>(cin);
  for (index_t c = 0; c < cin; ++c) {
    const FieldSnapshot& snap = history[first + static_cast<std::size_t>(c)];
    TURB_CHECK(snap.u1.size() == frame && snap.u2.size() == frame);
    float* w1 = win + (0 * cin + c) * frame;
    float* w2 = win + (1 * cin + c) * frame;
    for (index_t i = 0; i < frame; ++i) {
      w1[i] = (static_cast<float>(snap.u1[i]) - mf) * invf;
      w2[i] = (static_cast<float>(snap.u2[i]) - mf) * invf;
    }
  }

  // Reuse the caller's snapshot tensors when shapes match (steady state of
  // a hybrid run); (re)allocate only on first use or resolution change.
  out.resize(static_cast<std::size_t>(count));
  const auto is_field = [h, w](const TensorD& t) {
    return t.rank() == 2 && t.dim(0) == h && t.dim(1) == w;
  };
  for (FieldSnapshot& snap : out) {
    if (!is_field(snap.u1)) snap.u1 = TensorD({h, w});
    if (!is_field(snap.u2)) snap.u2 = TensorD({h, w});
  }

  const auto sf = static_cast<float>(normalizer_.stddev());
  const double t0 = history.back().t;
  const float* pred = engine_.pred_buffer(0);
  index_t produced = 0;
  while (produced < count) {
    engine_.forward_raw(win, engine_.pred_buffer(0));
    // Slide the window first (it consumes the normalised prediction), then
    // de-normalise on the fly while extracting snapshots — the prediction
    // buffer itself is never modified, so the slide and the extraction read
    // the same values the training path did.
    const index_t take = std::min(cout, count - produced);
    for (index_t b = 0; b < 2; ++b) {
      float* wb = win + b * cin * frame;
      const float* pb = pred + b * cout * frame;
      if (cout >= cin) {
        std::copy_n(pb + (cout - cin) * frame, cin * frame, wb);
      } else {
        std::copy(wb + cout * frame, wb + cin * frame, wb);
        std::copy_n(pb, cout * frame, wb + (cin - cout) * frame);
      }
    }
    for (index_t s = 0; s < take; ++s) {
      FieldSnapshot& snap = out[static_cast<std::size_t>(produced + s)];
      snap.t = t0 + dt_snap_ * static_cast<double>(produced + s + 1);
      const float* p1 = pred + (0 * cout + s) * frame;
      const float* p2 = pred + (1 * cout + s) * frame;
      for (index_t i = 0; i < frame; ++i) {
        snap.u1[i] = static_cast<double>(p1[i] * sf + mf);
        snap.u2[i] = static_cast<double>(p2[i] * sf + mf);
      }
    }
    produced += take;
  }
}

}  // namespace turb::core
