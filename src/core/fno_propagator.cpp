#include "core/fno_propagator.hpp"

#include <algorithm>

namespace turb::core {

FnoPropagator::FnoPropagator(fno::Fno& model, analysis::Normalizer normalizer,
                             double dt_snap)
    : model_(&model), normalizer_(normalizer), dt_snap_(dt_snap) {
  TURB_CHECK(dt_snap_ > 0.0);
  TURB_CHECK_MSG(model_->config().rank() == 2,
                 "FnoPropagator requires a rank-2 (temporal channels) model");
}

std::vector<FieldSnapshot> FnoPropagator::advance(const History& history,
                                                  index_t count) {
  const index_t cin = model_->config().in_channels;
  const index_t cout = model_->config().out_channels;
  TURB_CHECK_MSG(static_cast<index_t>(history.size()) >= cin,
                 "fno propagator needs " << cin << " history snapshots, got "
                                         << history.size());
  TURB_CHECK(count >= 1);
  const TensorD& ref = history.back().u1;
  const index_t h = ref.dim(0), w = ref.dim(1);
  const index_t frame = h * w;

  // Both components in one batch: (2, C_in, H, W), normalised.
  TensorF window({2, cin, h, w});
  const auto first = history.size() - static_cast<std::size_t>(cin);
  for (index_t c = 0; c < cin; ++c) {
    const FieldSnapshot& snap = history[first + static_cast<std::size_t>(c)];
    TURB_CHECK(snap.u1.size() == frame && snap.u2.size() == frame);
    for (index_t i = 0; i < frame; ++i) {
      window[(0 * cin + c) * frame + i] = static_cast<float>(snap.u1[i]);
      window[(1 * cin + c) * frame + i] = static_cast<float>(snap.u2[i]);
    }
  }
  normalizer_.apply(window);

  std::vector<FieldSnapshot> out;
  out.reserve(static_cast<std::size_t>(count));
  const double t0 = history.back().t;
  index_t produced = 0;
  while (produced < count) {
    TensorF pred = model_->forward(window);  // (2, C_out, H, W), normalised
    // Slide the window before de-normalising.
    TensorF next({2, cin, h, w});
    if (cout >= cin) {
      for (index_t b = 0; b < 2; ++b) {
        std::copy_n(pred.data() + (b * cout + (cout - cin)) * frame,
                    cin * frame, next.data() + b * cin * frame);
      }
    } else {
      for (index_t b = 0; b < 2; ++b) {
        std::copy_n(window.data() + (b * cin + cout) * frame,
                    (cin - cout) * frame, next.data() + b * cin * frame);
        std::copy_n(pred.data() + b * cout * frame, cout * frame,
                    next.data() + (b * cin + (cin - cout)) * frame);
      }
    }
    window = std::move(next);

    normalizer_.invert(pred);
    const index_t take = std::min(cout, count - produced);
    for (index_t s = 0; s < take; ++s) {
      FieldSnapshot snap;
      snap.t = t0 + dt_snap_ * static_cast<double>(produced + s + 1);
      snap.u1 = TensorD({h, w});
      snap.u2 = TensorD({h, w});
      for (index_t i = 0; i < frame; ++i) {
        snap.u1[i] = pred[(0 * cout + s) * frame + i];
        snap.u2[i] = pred[(1 * cout + s) * frame + i];
      }
      out.push_back(std::move(snap));
    }
    produced += take;
  }
  return out;
}

}  // namespace turb::core
