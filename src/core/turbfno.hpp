// turbfno — umbrella public header.
//
// A C++20 reproduction of "Fourier neural operators for spatiotemporal
// dynamics in two-dimensional turbulence" (Atif et al., SC 2024):
//
//   * turb::lbm       — entropic D2Q9 lattice Boltzmann data generator
//   * turb::ns        — spectral & finite-difference Navier–Stokes solvers
//   * turb::fft       — radix-2/Bluestein real & complex FFTs
//   * turb::nn        — training stack (layers, Adam, losses, gradcheck)
//   * turb::fno       — FNO models (2D temporal-channels and 3D), trainer
//   * turb::data      — ensemble generation, windowing, (de)serialisation
//   * turb::analysis  — flow statistics & Lyapunov-exponent estimation
//   * turb::core      — hybrid FNO–PDE scheduler (the paper's contribution)
//
// Quickstart: see examples/quickstart.cpp.
#pragma once

#include "analysis/lyapunov.hpp"
#include "analysis/stats.hpp"
#include "core/ensemble.hpp"
#include "core/fno_propagator.hpp"
#include "core/hybrid.hpp"
#include "core/metrics.hpp"
#include "core/pde_propagator.hpp"
#include "core/propagator.hpp"
#include "core/rollout_api.hpp"
#include "core/rollout_guard.hpp"
#include "data/dataset.hpp"
#include "data/generator.hpp"
#include "data/windows.hpp"
#include "fno/fno.hpp"
#include "fno/rollout.hpp"
#include "fno/trainer.hpp"
#include "lbm/initializer.hpp"
#include "lbm/solver.hpp"
#include "nn/dataloader.hpp"
#include "nn/deeponet.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/physics_loss.hpp"
#include "nn/serialize.hpp"
#include "nn/sobolev_loss.hpp"
#include "ns/solver.hpp"
#include "ns/spectral_ops.hpp"
