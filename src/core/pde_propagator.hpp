// PDE propagator: wraps a Navier–Stokes solver behind the Propagator
// interface. Initialising from a velocity snapshot applies the Leray
// projection, which is the mechanism by which the hybrid scheme pulls FNO
// predictions back onto the divergence-free manifold (paper Fig. 8).
#pragma once

#include <memory>

#include "core/propagator.hpp"
#include "ns/solver.hpp"

namespace turb::core {

class PdePropagator final : public Propagator {
 public:
  /// @param solver   configured NS solver (its dt is the inner time step)
  /// @param dt_snap  snapshot spacing in t_c units; must be an integer
  ///                 multiple of the solver dt (checked).
  PdePropagator(std::unique_ptr<ns::NsSolver> solver, double dt_snap);

  std::vector<FieldSnapshot> advance(const History& history,
                                     index_t count) override;
  [[nodiscard]] double dt_snap() const override { return dt_snap_; }
  [[nodiscard]] index_t min_history() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "pde"; }

  [[nodiscard]] const ns::NsSolver& solver() const { return *solver_; }

 private:
  std::unique_ptr<ns::NsSolver> solver_;
  double dt_snap_;
  index_t steps_per_snap_;
};

}  // namespace turb::core
