// HybridScheduler — the paper's contribution (§V, §VI-C).
//
// The scheduler alternates between two propagators in fixed windows: the FNO
// surrogate produces `fno_snapshots` cheap predictions, then the PDE solver
// takes over for `pde_snapshots`, re-imposing the governing physics
// (divergence-free velocity, dissipation) before the surrogate resumes. With
// fno_snapshots = 0 the rollout is pure PDE; with pde_snapshots = 0 it is a
// pure FNO rollout — the three curves of Figs. 8–9 come from one code path.
#pragma once

#include <functional>
#include <memory>

#include "core/metrics.hpp"
#include "core/propagator.hpp"
#include "core/rollout_guard.hpp"

namespace turb::core {

struct HybridConfig {
  index_t fno_snapshots = 5;  ///< surrogate window length (0 = pure PDE)
  index_t pde_snapshots = 5;  ///< solver window length (0 = pure FNO)
  bool start_with_fno = true; ///< which propagator opens the alternation
  index_t max_history = 64;   ///< rolling-history truncation
  /// Optional divergence guard over FNO windows (disabled by default; with
  /// the guard off — or on but untripped — the rollout is bitwise identical
  /// to the unguarded scheduler). A tripped FNO window is discarded and
  /// replaced by a PDE cool-down, recorded as "<pde>_fallback" in
  /// RolloutResult::producer and as a GuardEvent.
  GuardConfig guard;
};

struct RolloutResult {
  std::vector<FieldSnapshot> trajectory;  ///< produced snapshots, in order
  std::vector<SnapshotMetrics> metrics;   ///< diagnostics per snapshot
  std::vector<std::string> producer;      ///< which propagator made each one
  std::vector<GuardEvent> guard_events;   ///< discarded-window trips, in order

  /// Ensemble UQ (serve::RolloutServer with RolloutRequest::ensemble_k > 1):
  /// how many member rollouts this result reduces over (1 = plain rollout),
  /// the per-snapshot spread diagnostics (one entry per trajectory snapshot;
  /// empty for plain rollouts), and — when the request asked to keep them —
  /// the individual member results (each bitwise identical to a solo rollout
  /// of that member's perturbed seed).
  index_t ensemble_members = 1;
  std::vector<EnsembleSnapshotSpread> spread;
  std::vector<RolloutResult> member_results;

  [[nodiscard]] index_t guard_trips() const {
    return static_cast<index_t>(guard_events.size());
  }
};

class HybridScheduler {
 public:
  /// Both propagators must share the same dt_snap (checked).
  HybridScheduler(Propagator& fno, Propagator& pde, HybridConfig config);

  /// Extend `seed` (the initial history, oldest first) by `total_snapshots`.
  /// The seed must satisfy the FNO's min_history when fno windows are
  /// enabled.
  RolloutResult run(const History& seed, index_t total_snapshots);

 private:
  Propagator* fno_;
  Propagator* pde_;
  HybridConfig config_;
};

/// Convenience: single-propagator rollout with metrics (pure PDE / pure FNO).
/// The seed must be non-empty and at least the propagator's min_history.
///
/// DEPRECATED: thin compat wrapper over the unified request API — prefer
/// core::run_rollout(propagator, RolloutRequest{...}) (core/rollout_api.hpp),
/// which adds guard config, fallback degradation, and scheduling hints, and
/// is what the serving layer (serve::RolloutServer) consumes. Results are
/// bitwise identical for a default request.
[[deprecated("use core::run_rollout(propagator, RolloutRequest{...})")]]
RolloutResult run_single(Propagator& propagator, const History& seed,
                         index_t total_snapshots);

}  // namespace turb::core
