// Ensemble uncertainty quantification for FNO rollouts — the core pieces
// behind serve::EnsembleSession (PAPERS.md, arxiv 2506.04898: ensemble
// spread is the principled trustworthiness signal for neural-operator
// turbulence rollouts).
//
// Three concerns live here, all deterministic and serving-agnostic:
//
//   * Member construction — `ensemble_member_request` derives member m's
//     solo request from the base request: member 0 runs the seed unchanged,
//     member m >= 1 runs an additively perturbed copy keyed by
//     (ensemble_seed, m, snapshot). A K-member serving session is therefore
//     exactly K solo rollouts that happen to share micro-batches, which is
//     what makes the member-bitwise determinism contract testable.
//   * Reduction — member trajectories reduce to a mean prediction plus
//     per-snapshot spread (EnsembleSnapshotSpread). All statistics are
//     member-0-anchored: every sum runs over deviations d_m = x_m − x_0, so
//     K = 1 and bitwise-identical members produce an exactly-zero variance
//     and a mean bitwise equal to member 0 — no rounding dust from x·K/K.
//   * Band calibration — `SpreadCalibrator` turns the rolling across-member
//     spread envelope into energy/enstrophy guard band half-widths, so
//     RolloutGuard trips become confidence-driven ("this member left the
//     ensemble consensus") instead of fixed-box heuristics.
#pragma once

#include <vector>

#include "core/hybrid.hpp"
#include "core/metrics.hpp"
#include "core/rollout_api.hpp"

namespace turb::core {

/// Member m's seed history: member 0 is `seed` unchanged (bitwise); member
/// m >= 1 adds eps·δ to every velocity sample, δ ~ U[-1, 1) from an Rng
/// keyed by (ensemble_seed, m, snapshot index). eps == 0 returns `seed`
/// unchanged for every member.
[[nodiscard]] History perturb_member_seed(const History& seed,
                                          std::uint64_t ensemble_seed,
                                          index_t member, double eps);

/// The solo request ensemble member m of `base` executes: perturbed seed,
/// ensemble_k = 1, guard disabled (divergence detection is the group-level
/// calibrated guard's job, so an untripped member is a pure primary
/// rollout — the bitwise member-vs-solo contract).
[[nodiscard]] RolloutRequest ensemble_member_request(const RolloutRequest& base,
                                                     index_t member);

/// Member-0-anchored mean and population standard deviation of k values.
void anchored_mean_spread(const double* values, index_t k, double* mean,
                          double* spread);

/// Reduce K finished member results into one combined result: mean
/// trajectory (member-0-anchored), per-snapshot EnsembleSnapshotSpread,
/// metrics recomputed on the mean fields, producer labels from member 0,
/// and the given group-level guard events. With keep_members the member
/// results are moved into RolloutResult::member_results.
[[nodiscard]] RolloutResult reduce_ensemble_members(
    std::vector<RolloutResult>&& members, std::vector<GuardEvent> guard_events,
    bool keep_members);

/// Rolling ensemble-spread envelope → guard band calibration
/// (GuardConfig::spread_calibrated). Purely a function of the member metric
/// sequences fed to it, so calibrated bands reproduce bit-for-bit across
/// runs of the same ensemble.
///
/// Check-then-update: a snapshot is judged against the envelope as it stood
/// BEFORE that snapshot — its own spread is only *staged*, and folds into
/// the committed envelope when the round is accepted (commit_round). The
/// two rules this enforces:
///
///   * A diverging member must not widen the very band it is judged
///     against. If the current spread entered the envelope first, the max
///     member deviation (bounded by spread·√(K−1)) could never exceed
///     spread_band_factor · spread for any factor ≥ √(K−1), and the
///     consensus guard would be mathematically unable to trip.
///   * A discarded round must not poison future bands. Spread observed in
///     windows the guard rejected is exactly the divergence the envelope
///     exists to detect; only accepted rounds calibrate.
///
/// The very first calibrate() call seeds the committed envelope instead of
/// judging against an empty one: snapshot 0 reflects the deliberate member
/// perturbation (the ensemble's demonstrated initial variability), and no
/// divergence verdict is possible before a baseline exists.
class SpreadCalibrator {
 public:
  explicit SpreadCalibrator(const GuardConfig& config) : config_(config) {}

  /// Calibrated bands for one cross-member snapshot.
  struct Bands {
    double energy_min = 0.0;
    double energy_max = 0.0;
    double enstrophy_max = 0.0;
    double energy_halfwidth = 0.0;
    double enstrophy_halfwidth = 0.0;
  };

  /// Bands snapshot j must be judged against, from the committed envelope
  /// as of the last accepted round —
  ///   half-width = spread_band_factor · max(envelope,
  ///                                         spread_floor_rel · |mean|)
  /// — while this snapshot's own spread is staged for commit_round().
  [[nodiscard]] Bands calibrate(const double* energies,
                                const double* enstrophies, index_t k);

  /// The round was accepted: fold the staged spread maxima into the
  /// committed envelope.
  void commit_round();

  /// The round tripped and its windows were discarded: drop the staged
  /// spread so the rejected divergence cannot widen future bands.
  void discard_round();

  [[nodiscard]] double energy_spread_envelope() const { return env_energy_; }
  [[nodiscard]] double enstrophy_spread_envelope() const {
    return env_enstrophy_;
  }

 private:
  GuardConfig config_;
  double env_energy_ = 0.0;      ///< committed: accepted rounds + seed
  double env_enstrophy_ = 0.0;
  double staged_energy_ = 0.0;   ///< this round, pending commit/discard
  double staged_enstrophy_ = 0.0;
  bool seeded_ = false;
};

}  // namespace turb::core
