#include "core/rollout_guard.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "ns/spectral_ops.hpp"

namespace turb::core {

const char* guard_trip_name(GuardTrip trip) {
  switch (trip) {
    case GuardTrip::none: return "none";
    case GuardTrip::non_finite: return "non_finite";
    case GuardTrip::energy_low: return "energy_low";
    case GuardTrip::energy_high: return "energy_high";
    case GuardTrip::enstrophy_high: return "enstrophy_high";
    case GuardTrip::spectral_tail: return "spectral_tail";
  }
  return "unknown";
}

GuardTrip RolloutGuard::check(const FieldSnapshot& snapshot,
                              const SnapshotMetrics& metrics,
                              double* offending_value) {
  const auto report = [this, offending_value](GuardTrip trip, double value) {
    if (offending_value != nullptr) *offending_value = value;
    ++stats_.trips;
    stats_.last_trip = trip;
    stats_.last_value = value;
    return trip;
  };
  if (!config_.enabled) return GuardTrip::none;

  ++stats_.checked;
  if (std::isfinite(metrics.kinetic_energy)) {
    stats_.energy_min_seen =
        std::min(stats_.energy_min_seen, metrics.kinetic_energy);
    stats_.energy_max_seen =
        std::max(stats_.energy_max_seen, metrics.kinetic_energy);
  }
  if (std::isfinite(metrics.enstrophy)) {
    stats_.enstrophy_max_seen =
        std::max(stats_.enstrophy_max_seen, metrics.enstrophy);
  }

  // Any NaN/inf in the fields propagates into these sums of squares, so the
  // finite check on the global diagnostics covers the whole snapshot.
  if (!std::isfinite(metrics.kinetic_energy) ||
      !std::isfinite(metrics.enstrophy) ||
      !std::isfinite(metrics.divergence_l2)) {
    return report(GuardTrip::non_finite, metrics.kinetic_energy);
  }
  if (metrics.kinetic_energy < config_.energy_min) {
    return report(GuardTrip::energy_low, metrics.kinetic_energy);
  }
  if (metrics.kinetic_energy > config_.energy_max) {
    return report(GuardTrip::energy_high, metrics.kinetic_energy);
  }
  if (metrics.enstrophy > config_.enstrophy_max) {
    return report(GuardTrip::enstrophy_high, metrics.enstrophy);
  }
  if (config_.tail_fraction_max < 1.0) {
    const std::vector<double> spectrum =
        ns::energy_spectrum(snapshot.u1, snapshot.u2);
    double total = 0.0;
    double tail = 0.0;
    const std::size_t k_max = spectrum.empty() ? 0 : spectrum.size() - 1;
    const std::size_t cutoff = 2 * k_max / 3;
    for (std::size_t k = 0; k < spectrum.size(); ++k) {
      total += spectrum[k];
      if (k >= cutoff) tail += spectrum[k];
    }
    if (total > 0.0 && tail / total > config_.tail_fraction_max) {
      return report(GuardTrip::spectral_tail, tail / total);
    }
  }
  return GuardTrip::none;
}

}  // namespace turb::core
