// Propagator abstraction: anything that can extend a trajectory of velocity
// snapshots — a PDE solver, a trained FNO surrogate, or the hybrid
// alternation of the two (the paper's contribution).
//
// All fields are non-dimensional (unit box, U₀ = 1); times are in units of
// the convective time t_c; snapshots are spaced `dt_snap` apart.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace turb::core {

/// One instant of the flow.
struct FieldSnapshot {
  double t = 0.0;
  TensorD u1;
  TensorD u2;
};

/// Rolling trajectory: most recent snapshot at back().
using History = std::deque<FieldSnapshot>;

class Propagator {
 public:
  virtual ~Propagator() = default;

  /// Produce `count` snapshots extending `history`, each `dt_snap()` apart.
  /// Implementations read as much of the history as they need (a PDE solver
  /// uses only the last snapshot; an FNO surrogate needs its full input
  /// window).
  virtual std::vector<FieldSnapshot> advance(const History& history,
                                             index_t count) = 0;

  /// Snapshot spacing in t_c units.
  [[nodiscard]] virtual double dt_snap() const = 0;

  /// Minimum history length advance() requires.
  [[nodiscard]] virtual index_t min_history() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace turb::core
