// RolloutGuard — physics sanity monitor for FNO rollout windows.
//
// The paper (§VI-C, Figs. 8–9) shows pure FNO rollouts drifting off the
// turbulence attractor; the hybrid scheme keeps statistics physical by
// hard-coding PDE windows at fixed intervals. The guard automates that
// handoff: each produced snapshot is scanned for non-finite values and
// physics violations (kinetic energy / enstrophy outside configurable bands,
// energy pile-up in the high-wavenumber tail of the spectrum — the aliasing
// signature of a diverging surrogate). When an FNO window trips, the
// HybridScheduler discards it and degrades to the PDE propagator for a
// cool-down, so divergence becomes a detected, recoverable event instead of
// a silently corrupted trajectory.
#pragma once

#include <limits>
#include <string>

#include "core/metrics.hpp"
#include "core/propagator.hpp"

namespace turb::core {

enum class GuardTrip {
  none = 0,
  non_finite,      ///< NaN/inf anywhere in the snapshot
  energy_low,      ///< kinetic energy below the band (flow died)
  energy_high,     ///< kinetic energy above the band (blow-up)
  enstrophy_high,  ///< enstrophy above the band
  spectral_tail,   ///< too much energy in the high-wavenumber shells
};

[[nodiscard]] const char* guard_trip_name(GuardTrip trip);

struct GuardConfig {
  bool enabled = false;  ///< default off: guarded == unguarded when untripped
  double energy_min = 0.0;
  double energy_max = std::numeric_limits<double>::infinity();
  double enstrophy_max = std::numeric_limits<double>::infinity();
  /// Maximum fraction of kinetic energy allowed in shells k ≥ ⅔·k_max.
  /// 1.0 disables the check (it costs an FFT per snapshot).
  double tail_fraction_max = 1.0;
  /// PDE snapshots produced after a trip before the FNO gets another turn;
  /// 0 falls back to the scheduler's pde_snapshots window length.
  index_t cooldown_snapshots = 0;

  /// Ensemble-spread calibration (serve::EnsembleSession, K >= 2): when set,
  /// the energy/enstrophy bands above are re-derived every snapshot from the
  /// rolling across-member spread envelope —
  ///   band = mean ± spread_band_factor · max(spread_envelope,
  ///                                          spread_floor_rel · |mean|)
  /// — so a trip means "this member left the ensemble consensus", not "this
  /// member left a hand-tuned box". The fixed limits above remain the
  /// fallback whenever no spread signal exists (K = 1, or calibration off).
  bool spread_calibrated = false;
  double spread_band_factor = 8.0;  ///< band half-width in spread units
  double spread_floor_rel = 1e-4;   ///< relative floor under the envelope
};

/// One recorded trip: where in the trajectory the discarded FNO window would
/// have started, when the offending snapshot was, and why it was rejected.
struct GuardEvent {
  index_t trajectory_index = 0;
  double t = 0.0;
  GuardTrip reason = GuardTrip::none;
  double value = 0.0;  ///< the offending metric (energy, fraction, …)
};

/// Running band statistics a guard instance accumulates across check()
/// calls — the per-stream state the serving layer keys session health on,
/// and the observed energy/enstrophy envelope band calibration starts from.
struct GuardStats {
  index_t checked = 0;            ///< snapshots inspected
  index_t trips = 0;              ///< snapshots that tripped
  GuardTrip last_trip = GuardTrip::none;
  double last_value = 0.0;        ///< offending quantity of the last trip
  double energy_min_seen = std::numeric_limits<double>::infinity();
  double energy_max_seen = -std::numeric_limits<double>::infinity();
  double enstrophy_max_seen = -std::numeric_limits<double>::infinity();
};

/// Copyable and resettable: the serving layer stamps out one instance per
/// stream (a trivial value copy), and reset() returns a reused session's
/// guard to clean band statistics without rebuilding it.
class RolloutGuard {
 public:
  RolloutGuard() = default;  ///< disabled guard (config.enabled = false)
  explicit RolloutGuard(const GuardConfig& config)
      : config_(config), base_config_(config) {}

  /// Verdict for one produced snapshot; `metrics` are the diagnostics the
  /// scheduler already computes per snapshot. When tripped and
  /// `offending_value` is non-null it receives the violating quantity.
  /// Updates the running band statistics (stats()).
  [[nodiscard]] GuardTrip check(const FieldSnapshot& snapshot,
                                const SnapshotMetrics& metrics,
                                double* offending_value = nullptr);

  /// Spread-calibration write-through (serve::EnsembleSession): replace the
  /// energy band / enstrophy ceiling for the next check() calls. reset()
  /// restores the as-constructed limits.
  void set_energy_band(double energy_min, double energy_max) {
    config_.energy_min = energy_min;
    config_.energy_max = energy_max;
  }
  void set_enstrophy_max(double enstrophy_max) {
    config_.enstrophy_max = enstrophy_max;
  }

  /// Clear the accumulated band statistics AND restore the as-constructed
  /// config: a reused session must start from the configured fixed bands,
  /// not the previous stream's calibrated (possibly razor-thin) envelope —
  /// otherwise a healthy first window can trip on stale state.
  void reset() {
    stats_ = GuardStats{};
    config_ = base_config_;
  }

  [[nodiscard]] const GuardConfig& config() const { return config_; }
  [[nodiscard]] const GuardStats& stats() const { return stats_; }

 private:
  GuardConfig config_;
  GuardConfig base_config_;  ///< as constructed; reset() restores it
  GuardStats stats_;
};

}  // namespace turb::core
