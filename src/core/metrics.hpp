// Global flow diagnostics recorded along a rollout (paper Figs. 8–9):
// kinetic energy, enstrophy, and the divergence residual that distinguishes
// physical PDE states from raw FNO predictions.
#pragma once

#include <vector>

#include "core/propagator.hpp"

namespace turb::core {

struct SnapshotMetrics {
  double t = 0.0;
  double kinetic_energy = 0.0;   ///< (1/2)⟨|u|²⟩
  double enstrophy = 0.0;        ///< ⟨ω²⟩
  double divergence_linf = 0.0;  ///< max |∇·u|
  double divergence_l2 = 0.0;    ///< √⟨(∇·u)²⟩
};

/// Diagnostics for one snapshot.
SnapshotMetrics compute_metrics(const FieldSnapshot& snapshot);

/// Diagnostics for a whole trajectory.
std::vector<SnapshotMetrics> compute_metrics(
    const std::vector<FieldSnapshot>& trajectory);

/// Percentage error |a − b|/|b| · 100 between a quantity of two trajectories
/// (paper Fig. 9 reports K.E. and enstrophy errors this way).
double percentage_error(double value, double reference);

}  // namespace turb::core
