// Global flow diagnostics recorded along a rollout (paper Figs. 8–9):
// kinetic energy, enstrophy, and the divergence residual that distinguishes
// physical PDE states from raw FNO predictions.
#pragma once

#include <vector>

#include "core/propagator.hpp"

namespace turb::core {

struct SnapshotMetrics {
  double t = 0.0;
  double kinetic_energy = 0.0;   ///< (1/2)⟨|u|²⟩
  double enstrophy = 0.0;        ///< ⟨ω²⟩
  double divergence_linf = 0.0;  ///< max |∇·u|
  double divergence_l2 = 0.0;    ///< √⟨(∇·u)²⟩
};

/// Per-snapshot uncertainty diagnostics of a K-member ensemble rollout — the
/// trustworthiness signal returned alongside the mean prediction (and the
/// quantity guard band calibration is derived from). All statistics are
/// member-0-anchored (core/ensemble.hpp), so identical members yield exact
/// zeros rather than rounding dust.
struct EnsembleSnapshotSpread {
  double variance = 0.0;     ///< grid-mean per-point across-member variance
                             ///< (u1 and u2 pooled)
  double rel_spread = 0.0;   ///< √variance / RMS of the mean field
  double energy_mean = 0.0;      ///< across-member mean kinetic energy
  double energy_spread = 0.0;    ///< population std of members' energies
  double enstrophy_mean = 0.0;   ///< across-member mean enstrophy
  double enstrophy_spread = 0.0; ///< population std of members' enstrophies
};

/// Diagnostics for one snapshot.
SnapshotMetrics compute_metrics(const FieldSnapshot& snapshot);

/// Diagnostics for a whole trajectory.
std::vector<SnapshotMetrics> compute_metrics(
    const std::vector<FieldSnapshot>& trajectory);

/// Percentage error |a − b|/|b| · 100 between a quantity of two trajectories
/// (paper Fig. 9 reports K.E. and enstrophy errors this way).
double percentage_error(double value, double reference);

}  // namespace turb::core
