// FNO propagator: a trained "2D FNO with temporal channels" model behind the
// Propagator interface. Each velocity component is advanced by the same
// operator (components ride the batch axis, matching the paper's training
// setup); inputs are normalised with the statistics the model was trained
// under and predictions are de-normalised on the way out.
//
// Serving path: the propagator owns an inference engine (src/infer) planned
// for the (2, C_in, H, W) window shape. Marshalling is fused into the
// engine's arena — history snapshots are cast + normalised straight into the
// engine's window buffer and predictions are de-normalised during snapshot
// extraction — so advance_into() performs zero heap allocations once its
// output snapshots are warm.
#pragma once

#include "analysis/stats.hpp"
#include "core/propagator.hpp"
#include "fno/fno.hpp"
#include "infer/engine.hpp"

namespace turb::core {

class FnoPropagator final : public Propagator {
 public:
  /// @param model      trained rank-2 FNO (not owned; must outlive this)
  /// @param normalizer data-set normaliser used during training
  /// @param dt_snap    snapshot spacing the model was trained at (t_c units)
  /// @param engine_options build options (precision, …) for the propagator's
  ///                   own engine — lets a solo propagator serve at the same
  ///                   reduced precision a pooled deployment uses
  FnoPropagator(fno::Fno& model, analysis::Normalizer normalizer,
                double dt_snap, infer::EngineOptions engine_options = {});

  std::vector<FieldSnapshot> advance(const History& history,
                                     index_t count) override;

  /// Allocation-free variant: writes `count` snapshots into `out`, reusing
  /// its tensors when the shapes already match (the steady state of a hybrid
  /// run). advance() wraps this. Delegates to advance_batched_into with a
  /// single stream on the propagator's own engine.
  void advance_into(const History& history, index_t count,
                    std::vector<FieldSnapshot>& out);

  /// Micro-batched serving path: advance `n_streams` independent histories
  /// through one engine planned for (2·n_streams, C_in, H, W) — stream s's
  /// velocity components ride batch entries 2s and 2s+1. Because every
  /// engine kernel processes batch entries on independent slabs, each
  /// stream's snapshots are bitwise identical to a solo advance_into() of
  /// the same history, for any co-batch composition. Streams may request
  /// heterogeneous `counts` (each >= 1); shorter streams simply stop
  /// extracting while the batch finishes the longest request. All histories
  /// must share the grid resolution. `engine` is typically drawn from a
  /// serve::EnginePool bucket; it must wrap the same model as this
  /// propagator.
  void advance_batched_into(infer::InferenceEngine& engine,
                            const History* const* histories,
                            const index_t* counts, index_t n_streams,
                            std::vector<FieldSnapshot>* const* outs);

  [[nodiscard]] double dt_snap() const override { return dt_snap_; }
  [[nodiscard]] index_t min_history() const override {
    return model_->config().in_channels;
  }
  [[nodiscard]] std::string name() const override { return "fno"; }

  /// The planned executor (arena introspection for benches/tests).
  [[nodiscard]] infer::InferenceEngine& engine() { return engine_; }

  /// The wrapped model (serve::EnginePool builds batch-width engines on it).
  [[nodiscard]] fno::Fno& model() const { return *model_; }

 private:
  fno::Fno* model_;
  infer::InferenceEngine engine_;
  analysis::Normalizer normalizer_;
  double dt_snap_;
};

}  // namespace turb::core
