// FNO propagator: a trained "2D FNO with temporal channels" model behind the
// Propagator interface. Each velocity component is advanced by the same
// operator (components ride the batch axis, matching the paper's training
// setup); inputs are normalised with the statistics the model was trained
// under and predictions are de-normalised on the way out.
#pragma once

#include "analysis/stats.hpp"
#include "core/propagator.hpp"
#include "fno/fno.hpp"

namespace turb::core {

class FnoPropagator final : public Propagator {
 public:
  /// @param model      trained rank-2 FNO (not owned; must outlive this)
  /// @param normalizer data-set normaliser used during training
  /// @param dt_snap    snapshot spacing the model was trained at (t_c units)
  FnoPropagator(fno::Fno& model, analysis::Normalizer normalizer,
                double dt_snap);

  std::vector<FieldSnapshot> advance(const History& history,
                                     index_t count) override;
  [[nodiscard]] double dt_snap() const override { return dt_snap_; }
  [[nodiscard]] index_t min_history() const override {
    return model_->config().in_channels;
  }
  [[nodiscard]] std::string name() const override { return "fno"; }

 private:
  fno::Fno* model_;
  analysis::Normalizer normalizer_;
  double dt_snap_;
};

}  // namespace turb::core
