// FNO propagator: a trained "2D FNO with temporal channels" model behind the
// Propagator interface. Each velocity component is advanced by the same
// operator (components ride the batch axis, matching the paper's training
// setup); inputs are normalised with the statistics the model was trained
// under and predictions are de-normalised on the way out.
//
// Serving path: the propagator owns an inference engine (src/infer) planned
// for the (2, C_in, H, W) window shape. Marshalling is fused into the
// engine's arena — history snapshots are cast + normalised straight into the
// engine's window buffer and predictions are de-normalised during snapshot
// extraction — so advance_into() performs zero heap allocations once its
// output snapshots are warm.
#pragma once

#include "analysis/stats.hpp"
#include "core/propagator.hpp"
#include "fno/fno.hpp"
#include "infer/engine.hpp"

namespace turb::core {

class FnoPropagator final : public Propagator {
 public:
  /// @param model      trained rank-2 FNO (not owned; must outlive this)
  /// @param normalizer data-set normaliser used during training
  /// @param dt_snap    snapshot spacing the model was trained at (t_c units)
  FnoPropagator(fno::Fno& model, analysis::Normalizer normalizer,
                double dt_snap);

  std::vector<FieldSnapshot> advance(const History& history,
                                     index_t count) override;

  /// Allocation-free variant: writes `count` snapshots into `out`, reusing
  /// its tensors when the shapes already match (the steady state of a hybrid
  /// run). advance() wraps this.
  void advance_into(const History& history, index_t count,
                    std::vector<FieldSnapshot>& out);

  [[nodiscard]] double dt_snap() const override { return dt_snap_; }
  [[nodiscard]] index_t min_history() const override {
    return model_->config().in_channels;
  }
  [[nodiscard]] std::string name() const override { return "fno"; }

  /// The planned executor (arena introspection for benches/tests).
  [[nodiscard]] infer::InferenceEngine& engine() { return engine_; }

 private:
  fno::Fno* model_;
  infer::InferenceEngine engine_;
  analysis::Normalizer normalizer_;
  double dt_snap_;
};

}  // namespace turb::core
