// Unified rollout-request API — the single entry point the serving layer,
// the examples, and the legacy convenience wrappers all drive.
//
// Historically the repo grew three overlapping ways to roll a trajectory
// forward: `fno::rollout_*` (tensor-level, engine-backed), `core::run_single`
// (snapshot-level, unguarded), and hand-driven `FnoPropagator::advance`
// loops. A serving layer multiplexing thousands of streams needs one
// request/result vocabulary instead, so:
//
//   * RolloutRequest describes a stream: seed history, horizon, guard
//     configuration, and scheduling hints (window chunk, batch hint).
//   * RolloutStream executes one request incrementally — window by window —
//     which is exactly the granularity the serving scheduler micro-batches
//     at. Guard checks, fallback cool-downs, metrics, and history rolling
//     all live here, so a request produces the same bytes whether it runs
//     synchronously (run_rollout) or multiplexed through serve::RolloutServer.
//   * run_rollout() drives a stream to completion synchronously; it is the
//     implementation behind the deprecated `run_single` wrapper.
//
// Guard semantics (primary windows only, mirroring HybridScheduler): a
// tripped window is discarded wholesale and the fallback propagator takes
// over for `guard.cooldown_snapshots` snapshots — or, when that is 0, for
// the remainder of the request (the serving degrade-for-good policy: a bad
// surrogate stream finishes on physics alone).
#pragma once

#include <memory>
#include <string>

#include "core/hybrid.hpp"
#include "core/metrics.hpp"
#include "core/propagator.hpp"
#include "core/rollout_guard.hpp"

namespace turb::core {

/// One trajectory-extension request. Consumed by run_rollout() and by
/// serve::RolloutServer::submit().
struct RolloutRequest {
  History seed;           ///< initial history, oldest first (>= min_history)
  index_t steps = 0;      ///< snapshots to produce (>= 1)
  GuardConfig guard;      ///< per-request divergence guard (default off)
  index_t max_history = 64;  ///< rolling-history truncation bound
  /// Snapshots per scheduling window — the chunk a scheduler advances a
  /// stream by per turn. 16 matches the legacy run_single chunking, so a
  /// default request is bitwise identical to the old entry point.
  index_t window = 16;
  /// Serving hint: how many sibling streams the scheduler may co-batch with
  /// this one (1 = no preference; capped by ServeConfig::batch_window).
  index_t batch_hint = 1;
  std::string tag;        ///< client label echoed through serving results

  /// Ensemble UQ (serve::RolloutServer): fan this request out into
  /// `ensemble_k` member streams — member 0 runs the seed unchanged, member
  /// m >= 1 runs a deterministically perturbed copy (core/ensemble.hpp) —
  /// micro-batched together through the shared engine and reduced into one
  /// mean-prediction result with per-snapshot spread. 1 = plain rollout.
  index_t ensemble_k = 1;
  /// Additive seed-perturbation amplitude for members >= 1 (0 = identical
  /// members; the reduction then returns exactly zero variance).
  double ensemble_eps = 1e-3;
  /// Base RNG seed the member perturbations derive from.
  std::uint64_t ensemble_seed = 0x5eedu;
  /// Keep the individual member results inside RolloutResult::member_results
  /// (each bitwise identical to a solo rollout of that member's request).
  bool ensemble_keep_members = false;
};

/// Incremental executor for one request: the scheduler-facing state machine
/// behind both run_rollout() and the serving layer's sessions. The caller
/// either lets step() drive the propagators directly, or produces primary
/// windows externally (micro-batched through a shared engine) and feeds them
/// to accept_primary_window() — the two paths run the identical metric /
/// guard / append code, which is what makes concurrent serving bitwise
/// identical to sequential rollouts.
class RolloutStream {
 public:
  /// @param primary   propagator producing normal windows (not owned)
  /// @param fallback  guard fallback (not owned; may be null iff guard off)
  RolloutStream(RolloutRequest request, Propagator* primary,
                Propagator* fallback);

  [[nodiscard]] bool done() const { return produced_ >= request_.steps; }
  /// True when the next window must come from the fallback propagator
  /// (guard cool-down in progress, or the stream degraded for good).
  [[nodiscard]] bool degraded() const {
    return !done() && (degraded_for_good_ || cooldown_left_ > 0);
  }
  /// Snapshots the next window should produce (0 when done).
  [[nodiscard]] index_t next_window() const;

  /// Feed one primary-produced window of exactly next_window() snapshots
  /// (only valid while !degraded()). Computes metrics, runs the guard, and
  /// either appends the window or discards it and arms the fallback.
  void accept_primary_window(std::vector<FieldSnapshot>&& snaps);

  /// Same, with per-snapshot metrics the caller already computed (one per
  /// snapshot, from compute_metrics on these exact fields) — the ensemble
  /// round path judges on member metrics first and must not pay for them
  /// twice.
  void accept_primary_window(std::vector<FieldSnapshot>&& snaps,
                             std::vector<SnapshotMetrics>&& metrics);

  /// Produce one window from the fallback propagator (cool-down / degraded).
  void advance_fallback_window();

  /// Externally-decided degradation (serve::EnsembleSession: a group-level
  /// spread-calibrated guard trips on one member and hands the whole group
  /// to the fallback). cooldown_snapshots > 0 arms a cool-down; 0 degrades
  /// for the remainder, mirroring the per-stream guard policy. Requires a
  /// fallback propagator.
  void force_degrade(index_t cooldown_snapshots);

  /// Advance one window through whichever side is due, driving the
  /// propagators directly. run_rollout() is a loop over this.
  void step();

  [[nodiscard]] const History& history() const { return history_; }
  [[nodiscard]] index_t produced() const { return produced_; }
  [[nodiscard]] const RolloutRequest& request() const { return request_; }
  [[nodiscard]] const RolloutResult& result() const { return result_; }
  [[nodiscard]] const RolloutGuard& guard() const { return guard_; }
  /// Move the accumulated result out (the stream must be done()).
  [[nodiscard]] RolloutResult take_result();

 private:
  void append_window(std::vector<FieldSnapshot>&& snaps,
                     std::vector<SnapshotMetrics>&& metrics,
                     const std::string& producer);

  RolloutRequest request_;
  Propagator* primary_;
  Propagator* fallback_;
  RolloutGuard guard_;
  History history_;
  RolloutResult result_;
  index_t produced_ = 0;
  index_t cooldown_left_ = 0;
  bool degraded_for_good_ = false;
};

/// Run `request` to completion against `primary`, with `fallback` taking
/// over after guard trips (required iff request.guard.enabled). The unified
/// synchronous entry point: `run_single` and the examples route through it,
/// and serve::RolloutServer produces byte-identical results per stream.
RolloutResult run_rollout(Propagator& primary, const RolloutRequest& request,
                          Propagator* fallback = nullptr);

namespace detail {
/// Advance with the per-window obs accounting every scheduler shares
/// ("hybrid/<name>_window" span + "hybrid/<name>_snapshots" counter).
std::vector<FieldSnapshot> advance_timed(Propagator& propagator,
                                         const History& history,
                                         index_t count);
}  // namespace detail

}  // namespace turb::core
