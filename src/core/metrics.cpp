#include "core/metrics.hpp"

#include <cmath>

#include "analysis/stats.hpp"
#include "ns/spectral_ops.hpp"

namespace turb::core {

SnapshotMetrics compute_metrics(const FieldSnapshot& snapshot) {
  SnapshotMetrics m;
  m.t = snapshot.t;
  m.kinetic_energy = analysis::kinetic_energy(snapshot.u1, snapshot.u2);
  const TensorD omega = ns::vorticity_from_velocity(snapshot.u1, snapshot.u2);
  m.enstrophy = analysis::enstrophy(omega);
  const TensorD div = ns::divergence(snapshot.u1, snapshot.u2);
  m.divergence_linf = div.max_abs();
  m.divergence_l2 =
      std::sqrt(div.squared_norm() / static_cast<double>(div.size()));
  return m;
}

std::vector<SnapshotMetrics> compute_metrics(
    const std::vector<FieldSnapshot>& trajectory) {
  std::vector<SnapshotMetrics> out;
  out.reserve(trajectory.size());
  for (const auto& snap : trajectory) out.push_back(compute_metrics(snap));
  return out;
}

double percentage_error(double value, double reference) {
  TURB_CHECK(reference != 0.0);
  return std::abs(value - reference) / std::abs(reference) * 100.0;
}

}  // namespace turb::core
