#include "core/hybrid.hpp"

#include <cmath>

#include "core/rollout_api.hpp"
#include "obs/obs.hpp"

namespace turb::core {

namespace {

// Wall time and snapshot count per propagator window
// ("hybrid/<name>_window" / "hybrid/<name>_snapshots") — the cost split the
// speedup claims of the paper's §VI-C rest on — is shared with the request
// API: detail::advance_timed (core/rollout_api.hpp).
using detail::advance_timed;

void append(History& history, RolloutResult& result,
            std::vector<FieldSnapshot>&& produced,
            std::vector<SnapshotMetrics>&& metrics, const std::string& name,
            index_t max_history) {
  for (std::size_t i = 0; i < produced.size(); ++i) {
    result.metrics.push_back(metrics[i]);
    result.producer.push_back(name);
    history.push_back(produced[i]);
    result.trajectory.push_back(std::move(produced[i]));
    while (static_cast<index_t>(history.size()) > max_history) {
      history.pop_front();
    }
  }
}

}  // namespace

HybridScheduler::HybridScheduler(Propagator& fno, Propagator& pde,
                                 HybridConfig config)
    : fno_(&fno), pde_(&pde), config_(config) {
  TURB_CHECK_MSG(std::abs(fno.dt_snap() - pde.dt_snap()) <
                     1e-12 * fno.dt_snap(),
                 "propagators disagree on snapshot spacing: "
                     << fno.dt_snap() << " vs " << pde.dt_snap());
  TURB_CHECK_MSG(config_.fno_snapshots > 0 || config_.pde_snapshots > 0,
                 "at least one window must be non-empty");
  TURB_CHECK(config_.max_history >= fno.min_history());
  if (config_.guard.enabled) {
    TURB_CHECK_MSG(config_.pde_snapshots > 0 ||
                       config_.guard.cooldown_snapshots > 0,
                   "guarded pure-FNO rollouts need guard.cooldown_snapshots "
                   "> 0 (no pde window to fall back to otherwise)");
  }
}

RolloutResult HybridScheduler::run(const History& seed,
                                   index_t total_snapshots) {
  TURB_CHECK(total_snapshots >= 1);
  TURB_CHECK_MSG(!seed.empty(), "empty seed history");
  if (config_.fno_snapshots > 0) {
    TURB_CHECK_MSG(static_cast<index_t>(seed.size()) >= fno_->min_history(),
                   "seed shorter than the FNO input window");
  }

  RolloutGuard guard(config_.guard);
  History history = seed;
  RolloutResult result;
  result.trajectory.reserve(static_cast<std::size_t>(total_snapshots));

  bool fno_turn = config_.start_with_fno && config_.fno_snapshots > 0;
  index_t produced = 0;
  while (produced < total_snapshots) {
    Propagator* active = fno_turn ? fno_ : pde_;
    const index_t window =
        fno_turn ? config_.fno_snapshots : config_.pde_snapshots;
    if (window == 0) {
      fno_turn = !fno_turn;
      continue;
    }
    const index_t count = std::min(window, total_snapshots - produced);
    std::vector<FieldSnapshot> snaps = advance_timed(*active, history, count);
    std::vector<SnapshotMetrics> metrics = compute_metrics(snaps);

    if (fno_turn && config_.guard.enabled) {
      GuardTrip trip = GuardTrip::none;
      double value = 0.0;
      std::size_t bad = 0;
      for (std::size_t i = 0; i < snaps.size(); ++i) {
        trip = guard.check(snaps[i], metrics[i], &value);
        if (trip != GuardTrip::none) {
          bad = i;
          break;
        }
      }
      if (trip != GuardTrip::none) {
        // Discard the whole window (even its pre-trip snapshots: the model
        // was already leaving the attractor) and degrade to the PDE for a
        // cool-down, after which the FNO gets its turn back.
        obs::counter("robust/guard_trips").add();
        result.guard_events.push_back(
            {static_cast<index_t>(result.trajectory.size()), snaps[bad].t,
             trip, value});
        const index_t cooldown = config_.guard.cooldown_snapshots > 0
                                     ? config_.guard.cooldown_snapshots
                                     : config_.pde_snapshots;
        const index_t fb_count =
            std::min(cooldown, total_snapshots - produced);
        std::vector<FieldSnapshot> fb_snaps =
            advance_timed(*pde_, history, fb_count);
        std::vector<SnapshotMetrics> fb_metrics = compute_metrics(fb_snaps);
        append(history, result, std::move(fb_snaps), std::move(fb_metrics),
               pde_->name() + "_fallback", config_.max_history);
        obs::counter("robust/fallback_windows").add();
        obs::counter("robust/fallback_snapshots").add(fb_count);
        produced += fb_count;
        fno_turn = config_.fno_snapshots > 0;
        continue;
      }
    }

    append(history, result, std::move(snaps), std::move(metrics),
           active->name(), config_.max_history);
    produced += count;
    if (config_.fno_snapshots > 0 && config_.pde_snapshots > 0) {
      fno_turn = !fno_turn;
    }
  }
  return result;
}

RolloutResult run_single(Propagator& propagator, const History& seed,
                         index_t total_snapshots) {
  // Compat shim over the unified request API: the default RolloutRequest
  // (window 16, max_history 64, guard off) reproduces the historical
  // behavior of this entry point byte for byte.
  RolloutRequest request;
  request.seed = seed;
  request.steps = total_snapshots;
  return run_rollout(propagator, request);
}

}  // namespace turb::core
