#include "core/hybrid.hpp"

#include <cmath>

#include "obs/obs.hpp"

namespace turb::core {

namespace {

/// Wall time and snapshot count per propagator window, keyed by the
/// propagator's name() — "hybrid/fno_window" vs "hybrid/pde_window" is the
/// cost split the speedup claims of the paper's §VI-C rest on.
std::vector<FieldSnapshot> advance_timed(Propagator& propagator,
                                         const History& history,
                                         index_t count) {
  obs::ScopedTimer span(
      obs::timer("hybrid/" + propagator.name() + "_window"));
  obs::counter("hybrid/" + propagator.name() + "_snapshots").add(count);
  return propagator.advance(history, count);
}

void append(History& history, RolloutResult& result,
            std::vector<FieldSnapshot>&& produced, const std::string& name,
            index_t max_history) {
  for (auto& snap : produced) {
    result.metrics.push_back(compute_metrics(snap));
    result.producer.push_back(name);
    history.push_back(snap);
    result.trajectory.push_back(std::move(snap));
    while (static_cast<index_t>(history.size()) > max_history) {
      history.pop_front();
    }
  }
}

}  // namespace

HybridScheduler::HybridScheduler(Propagator& fno, Propagator& pde,
                                 HybridConfig config)
    : fno_(&fno), pde_(&pde), config_(config) {
  TURB_CHECK_MSG(std::abs(fno.dt_snap() - pde.dt_snap()) <
                     1e-12 * fno.dt_snap(),
                 "propagators disagree on snapshot spacing: "
                     << fno.dt_snap() << " vs " << pde.dt_snap());
  TURB_CHECK_MSG(config_.fno_snapshots > 0 || config_.pde_snapshots > 0,
                 "at least one window must be non-empty");
  TURB_CHECK(config_.max_history >= fno.min_history());
}

RolloutResult HybridScheduler::run(const History& seed,
                                   index_t total_snapshots) {
  TURB_CHECK(total_snapshots >= 1);
  TURB_CHECK_MSG(!seed.empty(), "empty seed history");
  if (config_.fno_snapshots > 0) {
    TURB_CHECK_MSG(static_cast<index_t>(seed.size()) >= fno_->min_history(),
                   "seed shorter than the FNO input window");
  }

  History history = seed;
  RolloutResult result;
  result.trajectory.reserve(static_cast<std::size_t>(total_snapshots));

  bool fno_turn = config_.start_with_fno && config_.fno_snapshots > 0;
  index_t produced = 0;
  while (produced < total_snapshots) {
    Propagator* active = fno_turn ? fno_ : pde_;
    const index_t window =
        fno_turn ? config_.fno_snapshots : config_.pde_snapshots;
    if (window == 0) {
      fno_turn = !fno_turn;
      continue;
    }
    const index_t count = std::min(window, total_snapshots - produced);
    append(history, result, advance_timed(*active, history, count),
           active->name(), config_.max_history);
    produced += count;
    if (config_.fno_snapshots > 0 && config_.pde_snapshots > 0) {
      fno_turn = !fno_turn;
    }
  }
  return result;
}

RolloutResult run_single(Propagator& propagator, const History& seed,
                         index_t total_snapshots) {
  TURB_CHECK(total_snapshots >= 1);
  History history = seed;
  RolloutResult result;
  // Advance in modest windows so the rolling history stays bounded.
  const index_t window = 16;
  index_t produced = 0;
  while (produced < total_snapshots) {
    const index_t count = std::min(window, total_snapshots - produced);
    append(history, result, advance_timed(propagator, history, count),
           propagator.name(), /*max_history=*/64);
    produced += count;
  }
  return result;
}

}  // namespace turb::core
