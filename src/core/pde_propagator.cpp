#include "core/pde_propagator.hpp"

#include <cmath>

namespace turb::core {

PdePropagator::PdePropagator(std::unique_ptr<ns::NsSolver> solver,
                             double dt_snap)
    : solver_(std::move(solver)), dt_snap_(dt_snap) {
  TURB_CHECK(solver_ != nullptr);
  TURB_CHECK(dt_snap_ > 0.0);
  const double ratio = dt_snap_ / solver_->config().dt;
  steps_per_snap_ = static_cast<index_t>(std::llround(ratio));
  TURB_CHECK_MSG(steps_per_snap_ >= 1 &&
                     std::abs(ratio - static_cast<double>(steps_per_snap_)) <
                         1e-9,
                 "snapshot spacing " << dt_snap_
                                     << " is not a multiple of solver dt "
                                     << solver_->config().dt);
}

std::vector<FieldSnapshot> PdePropagator::advance(const History& history,
                                                  index_t count) {
  TURB_CHECK_MSG(!history.empty(), "pde propagator needs a seed snapshot");
  TURB_CHECK(count >= 1);
  const FieldSnapshot& seed = history.back();
  solver_->set_velocity(seed.u1, seed.u2);

  std::vector<FieldSnapshot> out;
  out.reserve(static_cast<std::size_t>(count));
  for (index_t s = 0; s < count; ++s) {
    solver_->step(steps_per_snap_);
    FieldSnapshot snap;
    snap.t = seed.t + dt_snap_ * static_cast<double>(s + 1);
    solver_->velocity(snap.u1, snap.u2);
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace turb::core
