#include "core/rollout_api.hpp"

#include <algorithm>
#include <utility>

#include "obs/obs.hpp"

namespace turb::core {

namespace detail {

std::vector<FieldSnapshot> advance_timed(Propagator& propagator,
                                         const History& history,
                                         index_t count) {
  obs::ScopedTimer span(
      obs::timer("hybrid/" + propagator.name() + "_window"));
  obs::counter("hybrid/" + propagator.name() + "_snapshots").add(count);
  return propagator.advance(history, count);
}

}  // namespace detail

RolloutStream::RolloutStream(RolloutRequest request, Propagator* primary,
                             Propagator* fallback)
    : request_(std::move(request)),
      primary_(primary),
      fallback_(fallback),
      guard_(request_.guard) {
  TURB_CHECK(primary_ != nullptr);
  TURB_CHECK(request_.steps >= 1);
  TURB_CHECK(request_.window >= 1);
  TURB_CHECK(request_.batch_hint >= 1);
  TURB_CHECK_MSG(!request_.seed.empty(), "empty seed history");
  TURB_CHECK_MSG(
      static_cast<index_t>(request_.seed.size()) >= primary_->min_history(),
      "seed holds " << request_.seed.size() << " snapshots but "
                    << primary_->name() << " needs "
                    << primary_->min_history());
  TURB_CHECK(request_.max_history >= primary_->min_history());
  TURB_CHECK_MSG(!request_.guard.enabled || fallback_ != nullptr,
                 "guarded rollout requests need a fallback propagator");
  TURB_CHECK_MSG(request_.ensemble_k == 1,
                 "a RolloutStream executes one member; K-member ensembles "
                 "are fanned out by serve::RolloutServer");
  history_ = request_.seed;
  result_.trajectory.reserve(static_cast<std::size_t>(request_.steps));
}

index_t RolloutStream::next_window() const {
  index_t w = std::min(request_.window, request_.steps - produced_);
  if (cooldown_left_ > 0) w = std::min(w, cooldown_left_);
  return std::max<index_t>(w, 0);
}

void RolloutStream::append_window(std::vector<FieldSnapshot>&& snaps,
                                  std::vector<SnapshotMetrics>&& metrics,
                                  const std::string& producer) {
  const auto count = static_cast<index_t>(snaps.size());
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    result_.metrics.push_back(metrics[i]);
    result_.producer.push_back(producer);
    history_.push_back(snaps[i]);
    result_.trajectory.push_back(std::move(snaps[i]));
    while (static_cast<index_t>(history_.size()) > request_.max_history) {
      history_.pop_front();
    }
  }
  produced_ += count;
}

void RolloutStream::accept_primary_window(
    std::vector<FieldSnapshot>&& snaps) {
  std::vector<SnapshotMetrics> metrics = compute_metrics(snaps);
  accept_primary_window(std::move(snaps), std::move(metrics));
}

void RolloutStream::accept_primary_window(
    std::vector<FieldSnapshot>&& snaps,
    std::vector<SnapshotMetrics>&& metrics) {
  TURB_CHECK_MSG(!degraded(), "primary window fed to a degraded stream");
  TURB_CHECK_MSG(static_cast<index_t>(snaps.size()) == next_window(),
                 "window holds " << snaps.size() << " snapshots, expected "
                                 << next_window());
  TURB_CHECK_MSG(metrics.size() == snaps.size(),
                 "window holds " << snaps.size() << " snapshots but "
                                 << metrics.size() << " metric rows");

  if (request_.guard.enabled) {
    GuardTrip trip = GuardTrip::none;
    double value = 0.0;
    std::size_t bad = 0;
    for (std::size_t i = 0; i < snaps.size(); ++i) {
      trip = guard_.check(snaps[i], metrics[i], &value);
      if (trip != GuardTrip::none) {
        bad = i;
        break;
      }
    }
    if (trip != GuardTrip::none) {
      // Discard the whole window (the model was already leaving the
      // attractor before the offending snapshot) and hand the stream to the
      // fallback: for a cool-down when configured, else for good.
      obs::counter("robust/guard_trips").add();
      result_.guard_events.push_back(
          {static_cast<index_t>(result_.trajectory.size()), snaps[bad].t,
           trip, value});
      if (request_.guard.cooldown_snapshots > 0) {
        cooldown_left_ = request_.guard.cooldown_snapshots;
      } else {
        degraded_for_good_ = true;
      }
      return;
    }
  }
  append_window(std::move(snaps), std::move(metrics), primary_->name());
}

void RolloutStream::advance_fallback_window() {
  TURB_CHECK_MSG(fallback_ != nullptr, "stream has no fallback propagator");
  const index_t count = next_window();
  TURB_CHECK(count >= 1);
  std::vector<FieldSnapshot> snaps =
      detail::advance_timed(*fallback_, history_, count);
  std::vector<SnapshotMetrics> metrics = compute_metrics(snaps);
  append_window(std::move(snaps), std::move(metrics),
                fallback_->name() + "_fallback");
  obs::counter("robust/fallback_windows").add();
  obs::counter("robust/fallback_snapshots").add(count);
  if (cooldown_left_ > 0) cooldown_left_ -= count;
}

void RolloutStream::force_degrade(index_t cooldown_snapshots) {
  TURB_CHECK_MSG(fallback_ != nullptr,
                 "force_degrade needs a fallback propagator");
  if (cooldown_snapshots > 0) {
    cooldown_left_ = cooldown_snapshots;
  } else {
    degraded_for_good_ = true;
  }
}

void RolloutStream::step() {
  TURB_CHECK(!done());
  if (degraded()) {
    advance_fallback_window();
  } else {
    accept_primary_window(
        detail::advance_timed(*primary_, history_, next_window()));
  }
}

RolloutResult RolloutStream::take_result() {
  TURB_CHECK_MSG(done(), "take_result on an unfinished stream");
  return std::move(result_);
}

RolloutResult run_rollout(Propagator& primary, const RolloutRequest& request,
                          Propagator* fallback) {
  RolloutStream stream(request, &primary, fallback);
  while (!stream.done()) stream.step();
  return stream.take_result();
}

}  // namespace turb::core
