#include "fno/trainer.hpp"

#include <cstdio>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace turb::fno {

TrainResult train_fno(Fno& model, nn::DataLoader& loader,
                      const TrainConfig& config) {
  nn::Adam::Config adam_cfg;
  adam_cfg.lr = config.lr;
  adam_cfg.weight_decay = config.weight_decay;
  nn::Adam optimizer(model.parameters(), adam_cfg);
  nn::StepLR scheduler(optimizer, config.scheduler_step,
                       config.scheduler_gamma);

  // The verbose printer is just the built-in epoch callback; a user
  // callback runs after it on the same stats.
  const std::function<void(const EpochStats&)> emit =
      [&config](const EpochStats& stats) {
        if (config.verbose) {
          std::printf("epoch %3lld  loss %.5f  lr %.2e  %.2fs\n",
                      static_cast<long long>(stats.epoch), stats.train_loss,
                      stats.lr, stats.seconds);
        }
        if (config.on_epoch_end) config.on_epoch_end(stats);
      };

  obs::TimerStat& span_epoch = obs::timer("train/epoch");
  obs::TimerStat& span_data = obs::timer("train/data");
  obs::TimerStat& span_forward = obs::timer("train/forward");
  obs::TimerStat& span_backward = obs::timer("train/backward");
  obs::TimerStat& span_optimizer = obs::timer("train/optimizer");
  obs::Gauge& gauge_lr = obs::gauge("train/lr");
  // Parallel width the train/* spans ran under (the spans themselves measure
  // wall time on the calling thread, so they stay correct aggregates when
  // the kernels inside them fan out over the pool).
  obs::gauge("train/threads")
      .set(static_cast<double>(ThreadPool::current().size()));

  TrainResult result;
  Timer total;
  for (index_t epoch = 0; epoch < config.epochs; ++epoch) {
    Timer epoch_timer;
    loader.start_epoch();
    nn::Batch batch;
    double loss_sum = 0.0;
    index_t batches = 0;
    EpochStats stats;
    Timer phase;
    while (true) {
      phase.reset();
      const bool more = loader.next(batch);
      stats.data_seconds += phase.seconds();
      if (!more) break;

      phase.reset();
      optimizer.zero_grad();
      const TensorF pred = model.forward(batch.x);
      const nn::LossResult loss = nn::relative_l2_loss(pred, batch.y);
      stats.forward_seconds += phase.seconds();

      phase.reset();
      (void)model.backward(loss.grad);
      stats.backward_seconds += phase.seconds();

      phase.reset();
      optimizer.step();
      stats.optimizer_seconds += phase.seconds();

      loss_sum += loss.value;
      ++batches;
    }
    scheduler.step();

    stats.epoch = epoch;
    stats.train_loss = batches > 0 ? loss_sum / static_cast<double>(batches)
                                   : 0.0;
    stats.lr = optimizer.lr();
    stats.seconds = epoch_timer.seconds();

    span_epoch.record(stats.seconds);
    span_data.record(stats.data_seconds);
    span_forward.record(stats.forward_seconds);
    span_backward.record(stats.backward_seconds);
    span_optimizer.record(stats.optimizer_seconds);
    gauge_lr.set(stats.lr);

    result.history.push_back(stats);
    emit(stats);
  }
  result.total_seconds = total.seconds();
  return result;
}

EvalResult evaluate_fno(Fno& model, const TensorF& inputs,
                        const TensorF& targets, index_t batch_size) {
  TURB_TRACE_SCOPE("train/evaluate");
  Timer timer;
  nn::DataLoader loader(inputs, targets, batch_size, /*shuffle=*/false);
  nn::Batch batch;
  double err_sum = 0.0;
  index_t count = 0;
  while (loader.next(batch)) {
    const TensorF pred = model.forward(batch.x);
    err_sum += nn::relative_l2_error(pred, batch.y) *
               static_cast<double>(batch.size());
    count += batch.size();
  }
  EvalResult result;
  result.rel_l2 = count > 0 ? err_sum / static_cast<double>(count) : 0.0;
  result.n_samples = count;
  result.seconds = timer.seconds();
  return result;
}

double evaluate_fno_error(Fno& model, const TensorF& inputs,
                          const TensorF& targets, index_t batch_size) {
  return evaluate_fno(model, inputs, targets, batch_size).rel_l2;
}

}  // namespace turb::fno
