#include "fno/trainer.hpp"

#include <cstdio>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "util/timer.hpp"

namespace turb::fno {

TrainResult train_fno(Fno& model, nn::DataLoader& loader,
                      const TrainConfig& config) {
  nn::Adam::Config adam_cfg;
  adam_cfg.lr = config.lr;
  adam_cfg.weight_decay = config.weight_decay;
  nn::Adam optimizer(model.parameters(), adam_cfg);
  nn::StepLR scheduler(optimizer, config.scheduler_step,
                       config.scheduler_gamma);

  TrainResult result;
  Timer total;
  for (index_t epoch = 0; epoch < config.epochs; ++epoch) {
    Timer epoch_timer;
    loader.start_epoch();
    nn::Batch batch;
    double loss_sum = 0.0;
    index_t batches = 0;
    while (loader.next(batch)) {
      optimizer.zero_grad();
      const TensorF pred = model.forward(batch.x);
      const nn::LossResult loss = nn::relative_l2_loss(pred, batch.y);
      (void)model.backward(loss.grad);
      optimizer.step();
      loss_sum += loss.value;
      ++batches;
    }
    scheduler.step();

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = batches > 0 ? loss_sum / static_cast<double>(batches)
                                   : 0.0;
    stats.lr = optimizer.lr();
    stats.seconds = epoch_timer.seconds();
    result.history.push_back(stats);
    if (config.verbose) {
      std::printf("epoch %3lld  loss %.5f  lr %.2e  %.2fs\n",
                  static_cast<long long>(epoch), stats.train_loss, stats.lr,
                  stats.seconds);
    }
  }
  result.total_seconds = total.seconds();
  return result;
}

double evaluate_fno(Fno& model, const TensorF& inputs, const TensorF& targets,
                    index_t batch_size) {
  nn::DataLoader loader(inputs, targets, batch_size, /*shuffle=*/false);
  nn::Batch batch;
  double err_sum = 0.0;
  index_t count = 0;
  while (loader.next(batch)) {
    const TensorF pred = model.forward(batch.x);
    err_sum += nn::relative_l2_error(pred, batch.y) *
               static_cast<double>(batch.size());
    count += batch.size();
  }
  return count > 0 ? err_sum / static_cast<double>(count) : 0.0;
}

}  // namespace turb::fno
