#include "fno/trainer.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace turb::fno {

namespace {

/// The last state known to be finite: weights, optimizer moments, and the
/// bookkeeping a checkpoint of that state would carry.
struct GoodState {
  std::vector<TensorF> values;
  nn::Adam::State opt;
  index_t epochs_done = 0;
  double train_loss = 0.0;
};

}  // namespace

TrainResult train_fno(Fno& model, nn::DataLoader& loader,
                      const TrainConfig& config) {
  nn::Adam::Config adam_cfg;
  adam_cfg.lr = config.lr;
  adam_cfg.weight_decay = config.weight_decay;
  const std::vector<nn::Parameter*> params = model.parameters();
  nn::Adam optimizer(params, adam_cfg);
  nn::StepLR scheduler(optimizer, config.scheduler_step,
                       config.scheduler_gamma);

  // The verbose printer is just the built-in epoch callback; a user
  // callback runs after it on the same stats.
  const std::function<void(const EpochStats&)> emit =
      [&config](const EpochStats& stats) {
        if (config.verbose) {
          std::printf("epoch %3lld  loss %.5f  lr %.2e  %.2fs%s\n",
                      static_cast<long long>(stats.epoch), stats.train_loss,
                      stats.lr, stats.seconds,
                      stats.recovered ? "  [recovered]" : "");
        }
        if (config.on_epoch_end) config.on_epoch_end(stats);
      };

  obs::TimerStat& span_epoch = obs::timer("train/epoch");
  obs::TimerStat& span_data = obs::timer("train/data");
  obs::TimerStat& span_forward = obs::timer("train/forward");
  obs::TimerStat& span_backward = obs::timer("train/backward");
  obs::TimerStat& span_optimizer = obs::timer("train/optimizer");
  obs::Gauge& gauge_lr = obs::gauge("train/lr");
  // Parallel width the train/* spans ran under (the spans themselves measure
  // wall time on the calling thread, so they stay correct aggregates when
  // the kernels inside them fan out over the pool).
  obs::gauge("train/threads")
      .set(static_cast<double>(ThreadPool::current().size()));

  TrainResult result;

  index_t start_epoch = 0;
  if (config.resume && !config.checkpoint_path.empty() &&
      std::ifstream(config.checkpoint_path, std::ios::binary).good()) {
    nn::Metadata meta;
    nn::load_parameters(config.checkpoint_path, params, &meta);
    const auto it = meta.find("epoch");
    if (it != meta.end()) {
      start_epoch = std::min(static_cast<index_t>(it->second), config.epochs);
      if (start_epoch < 0) start_epoch = 0;
    }
    obs::counter("robust/checkpoint_restores").add();
    if (config.verbose) {
      std::printf("resumed %s at epoch %lld\n", config.checkpoint_path.c_str(),
                  static_cast<long long>(start_epoch));
    }
  }
  result.start_epoch = start_epoch;
  for (index_t i = 0; i < start_epoch; ++i) scheduler.step();

  GoodState good;
  const auto capture = [&](index_t epochs_done, double train_loss) {
    good.values.clear();
    good.values.reserve(params.size());
    for (const nn::Parameter* p : params) good.values.push_back(p->value);
    good.opt = optimizer.state();
    good.epochs_done = epochs_done;
    good.train_loss = train_loss;
  };
  const auto restore = [&] {
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i]->value = good.values[i];
    }
    // set_state consumes its argument; keep `good` restorable again.
    nn::Adam::State state;
    state.m = good.opt.m;
    state.v = good.opt.v;
    state.t = good.opt.t;
    optimizer.set_state(std::move(state));
  };
  const auto write_checkpoint = [&](index_t epochs_done, double train_loss) {
    if (config.checkpoint_path.empty()) return;
    const nn::Metadata meta{{"epoch", static_cast<double>(epochs_done)},
                            {"lr", optimizer.lr()},
                            {"train_loss", train_loss}};
    nn::save_parameters(config.checkpoint_path, params, meta);
    ++result.checkpoints_written;
  };
  if (config.abort_on_nonfinite) capture(start_epoch, 0.0);

  double lr_scale = 1.0;  // cumulative fault backoff, re-applied over StepLR
  Timer total;
  for (index_t epoch = start_epoch; epoch < config.epochs; ++epoch) {
    Timer epoch_timer;
    loader.start_epoch();
    nn::Batch batch;
    double loss_sum = 0.0;
    index_t batches = 0;
    bool nonfinite = false;
    EpochStats stats;
    Timer phase;
    while (true) {
      phase.reset();
      const bool more = loader.next(batch);
      stats.data_seconds += phase.seconds();
      if (!more) break;

      phase.reset();
      optimizer.zero_grad();
      const TensorF pred = model.forward(batch.x);
      const nn::LossResult loss = nn::relative_l2_loss(pred, batch.y);
      stats.forward_seconds += phase.seconds();
      // Catch the explosion before it reaches EpochStats or the optimizer:
      // a non-finite loss means non-finite gradients, and one Adam step on
      // those leaves the weights unrecoverable.
      if (config.abort_on_nonfinite && !std::isfinite(loss.value)) {
        obs::counter("robust/nonfinite_batches").add();
        nonfinite = true;
        break;
      }

      phase.reset();
      (void)model.backward(loss.grad);
      stats.backward_seconds += phase.seconds();

      phase.reset();
      optimizer.step();
      stats.optimizer_seconds += phase.seconds();

      loss_sum += loss.value;
      ++batches;
    }
    if (nonfinite) {
      ++result.recoveries;
      obs::counter("robust/train_restores").add();
      restore();
      lr_scale *= config.lr_backoff;
      stats.recovered = true;
      if (result.recoveries > config.max_recoveries) {
        result.aborted = true;
        obs::counter("robust/train_aborts").add();
      }
    }
    scheduler.step();
    if (lr_scale != 1.0) optimizer.set_lr(optimizer.lr() * lr_scale);

    stats.epoch = epoch;
    stats.train_loss = batches > 0 ? loss_sum / static_cast<double>(batches)
                                   : 0.0;
    stats.lr = optimizer.lr();
    stats.seconds = epoch_timer.seconds();

    span_epoch.record(stats.seconds);
    span_data.record(stats.data_seconds);
    span_forward.record(stats.forward_seconds);
    span_backward.record(stats.backward_seconds);
    span_optimizer.record(stats.optimizer_seconds);
    gauge_lr.set(stats.lr);

    result.history.push_back(stats);
    emit(stats);

    if (!nonfinite) {
      if (config.abort_on_nonfinite) capture(epoch + 1, stats.train_loss);
      if (config.checkpoint_every > 0 && epoch + 1 < config.epochs &&
          (epoch + 1 - start_epoch) % config.checkpoint_every == 0) {
        write_checkpoint(epoch + 1, stats.train_loss);
      }
    }
    if (result.aborted) break;
  }
  // Final checkpoint reflects the weights actually in place: after a
  // recovery or an abort that is the last good epoch, not the one that blew
  // up.
  if (!config.checkpoint_path.empty()) {
    if (config.abort_on_nonfinite) {
      write_checkpoint(good.epochs_done, good.train_loss);
    } else {
      write_checkpoint(config.epochs, result.final_train_loss());
    }
  }
  result.total_seconds = total.seconds();
  return result;
}

EvalResult evaluate_fno(Fno& model, const TensorF& inputs,
                        const TensorF& targets, index_t batch_size) {
  TURB_TRACE_SCOPE("train/evaluate");
  Timer timer;
  nn::DataLoader loader(inputs, targets, batch_size, /*shuffle=*/false);
  nn::Batch batch;
  double err_sum = 0.0;
  index_t count = 0;
  while (loader.next(batch)) {
    const TensorF pred = model.forward(batch.x);
    err_sum += nn::relative_l2_error(pred, batch.y) *
               static_cast<double>(batch.size());
    count += batch.size();
  }
  EvalResult result;
  result.rel_l2 = count > 0 ? err_sum / static_cast<double>(count) : 0.0;
  result.n_samples = count;
  result.seconds = timer.seconds();
  return result;
}

double evaluate_fno_error(Fno& model, const TensorF& inputs,
                          const TensorF& targets, index_t batch_size) {
  return evaluate_fno(model, inputs, targets, batch_size).rel_l2;
}

}  // namespace turb::fno
