// Iterative (autoregressive) rollout of trained FNO models.
//
// The paper evaluates models by rolling predictions forward in time: the 2D
// channel model consumes a sliding window of `in_channels` snapshots and
// emits `out_channels` new ones; the 3D model consumes a block of 10
// snapshots and emits the next block. Fewer output channels means more model
// invocations per horizon — the source of the "compound error" the paper
// observes for 1-channel outputs (Fig. 5).
//
// All rollouts run through the inference engine (src/infer): the model is
// planned once for the rollout shape and every autoregressive step reuses
// the same arena buffers. Results are bitwise identical to stepping
// Fno::forward by hand (enforced by tests/test_infer.cpp). The Fno&
// convenience overloads build a throwaway engine; callers stepping many
// rollouts should hold an InferenceEngine and use the _into variants.
//
// DEPRECATED as a public entry point: these tensor-level helpers predate
// the unified rollout API. New code should build a core::RolloutRequest
// and call core::run_rollout (one stream) or serve::RolloutServer (many
// concurrent streams, micro-batched through a shared engine pool) — both
// add history management, guard fallback, and metrics for free. These
// helpers remain for raw-tensor callers (no History marshaling) and as
// the reference the engine-equivalence tests pin against.
#pragma once

#include "fno/fno.hpp"
#include "infer/engine.hpp"

namespace turb::fno {

/// Roll a rank-2 "temporal channels" FNO forward in time.
///
/// @param history (C_in, H, W) — the seed window, chronologically ordered
///                (oldest first). For multi-field models (e.g. u₁ and u₂
///                stacked), use one rollout per field-model pairing.
/// @param steps   number of future snapshots to produce.
/// @return (steps, H, W), chronologically ordered.
[[deprecated("use core::run_rollout or InferenceEngine::rollout_channels_into")]]
TensorF rollout_channels(Fno& model, const TensorF& history, index_t steps);

/// Roll a rank-3 FNO forward: each call maps a (T, H, W) block to the next
/// (T, H, W) block; the result is `blocks` consecutive predicted blocks
/// concatenated along time: (blocks·T, H, W).
[[deprecated("use core::run_rollout or InferenceEngine::rollout_3d_into")]]
TensorF rollout_3d(Fno& model, const TensorF& seed_block, index_t blocks);

/// Batched multi-trajectory rollout for serving throughput: histories
/// (B, C_in, H, W) → (B, steps, H, W), every trajectory bitwise identical
/// to its single-trajectory rollout.
[[deprecated(
    "use serve::RolloutServer or "
    "InferenceEngine::rollout_channels_batched_into")]]
TensorF rollout_channels_batched(infer::InferenceEngine& engine,
                                 const TensorF& histories, index_t steps);

}  // namespace turb::fno
