// Training loop for FNO models (Adam + StepLR + relative-L2 loss), mirroring
// the reference neuraloperator training scripts the paper used.
#pragma once

#include <functional>
#include <vector>

#include "fno/fno.hpp"
#include "nn/dataloader.hpp"

namespace turb::fno {

struct EpochStats {
  index_t epoch = 0;
  double train_loss = 0.0;  // mean relative-L2 over the *finite* batches
  double lr = 0.0;
  double seconds = 0.0;
  // Wall-time split of the epoch (data loading / forward / backward /
  // optimizer step); also exported as the train/* spans of obs::dump_json.
  double data_seconds = 0.0;
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;
  double optimizer_seconds = 0.0;
  /// True when the epoch was cut short by a non-finite batch loss: the
  /// offending batch never reached the optimizer or this mean, and the model
  /// was restored to its last good state.
  bool recovered = false;
};

struct TrainConfig {
  index_t epochs = 50;
  double lr = 1e-3;             // paper default
  long scheduler_step = 100;    // paper default
  double scheduler_gamma = 0.5; // paper default
  double weight_decay = 1e-4;
  bool verbose = false;
  /// Invoked after every epoch with that epoch's statistics (after the
  /// verbose line, if any, is printed). Lets callers stream metrics or
  /// implement early stopping without patching the loop.
  std::function<void(const EpochStats&)> on_epoch_end;

  // --- fault handling (robustness layer) ---------------------------------
  /// Detect a non-finite (NaN/inf) batch loss *before* it reaches the
  /// optimizer: the epoch is cut short, weights and optimizer state are
  /// restored from the last good epoch, and the learning rate is scaled by
  /// `lr_backoff`. After `max_recoveries` such events the run aborts with
  /// the last good weights in place (never NaN weights). The finite-loss
  /// path is untouched, so unguarded runs stay bitwise identical.
  bool abort_on_nonfinite = true;
  double lr_backoff = 0.5;     ///< LR multiplier applied per recovery
  index_t max_recoveries = 3;  ///< recoveries before aborting the run

  // --- checkpoint / resume ------------------------------------------------
  /// When non-empty, checkpoints (weights + {"epoch","lr","train_loss"}
  /// metadata) are written here atomically every `checkpoint_every` epochs
  /// and once at the end of training (checkpoint_every == 0 → final only).
  std::string checkpoint_path;
  index_t checkpoint_every = 0;
  /// Load `checkpoint_path` if it exists before training and fast-forward
  /// the epoch counter and LR schedule to the stored epoch. Adam moments
  /// restart from zero (the checkpoint stores weights only).
  bool resume = false;
};

struct TrainResult {
  std::vector<EpochStats> history;
  double total_seconds = 0.0;
  index_t start_epoch = 0;          ///< non-zero when resumed mid-schedule
  index_t recoveries = 0;           ///< non-finite events recovered
  bool aborted = false;             ///< gave up after max_recoveries
  index_t checkpoints_written = 0;  ///< on-disk checkpoint saves
  [[nodiscard]] double final_train_loss() const {
    return history.empty() ? 0.0 : history.back().train_loss;
  }
};

/// Train `model` in place on `loader`. Returns per-epoch statistics.
TrainResult train_fno(Fno& model, nn::DataLoader& loader,
                      const TrainConfig& config);

/// Held-out evaluation summary.
struct EvalResult {
  double rel_l2 = 0.0;     ///< mean relative-L2 error over the set
  index_t n_samples = 0;   ///< samples evaluated
  double seconds = 0.0;    ///< wall time of the evaluation
};

/// Mean relative-L2 error of the model over a held-out set, evaluated in
/// mini-batches of `batch_size`.
EvalResult evaluate_fno(Fno& model, const TensorF& inputs,
                        const TensorF& targets, index_t batch_size = 8);

/// Compatibility wrapper returning only the error scalar.
double evaluate_fno_error(Fno& model, const TensorF& inputs,
                          const TensorF& targets, index_t batch_size = 8);

}  // namespace turb::fno
