// Training loop for FNO models (Adam + StepLR + relative-L2 loss), mirroring
// the reference neuraloperator training scripts the paper used.
#pragma once

#include <vector>

#include "fno/fno.hpp"
#include "nn/dataloader.hpp"

namespace turb::fno {

struct TrainConfig {
  index_t epochs = 50;
  double lr = 1e-3;             // paper default
  long scheduler_step = 100;    // paper default
  double scheduler_gamma = 0.5; // paper default
  double weight_decay = 1e-4;
  bool verbose = false;
};

struct EpochStats {
  index_t epoch = 0;
  double train_loss = 0.0;  // mean relative-L2 over training batches
  double lr = 0.0;
  double seconds = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> history;
  double total_seconds = 0.0;
  [[nodiscard]] double final_train_loss() const {
    return history.empty() ? 0.0 : history.back().train_loss;
  }
};

/// Train `model` in place on `loader`. Returns per-epoch statistics.
TrainResult train_fno(Fno& model, nn::DataLoader& loader,
                      const TrainConfig& config);

/// Mean relative-L2 error of the model over a held-out set, evaluated in
/// mini-batches of `batch_size`.
double evaluate_fno(Fno& model, const TensorF& inputs, const TensorF& targets,
                    index_t batch_size = 8);

}  // namespace turb::fno
