#include "fno/fno.hpp"

namespace turb::fno {

Fno::Fno(FnoConfig config, Rng& rng)
    : config_(config),
      lift1_(config.in_channels, config.lifting_channels, rng, true,
             "lifting.0"),
      lift2_(config.lifting_channels, config.width, rng, true, "lifting.1"),
      proj1_(config.width, config.projection_channels, rng, true,
             "projection.0"),
      proj2_(config.projection_channels, config.out_channels, rng, true,
             "projection.1") {
  TURB_CHECK_MSG(config_.rank() == 2 || config_.rank() == 3,
                 "FNO rank must be 2 or 3");
  TURB_CHECK(config_.n_layers >= 1);
  convs_.reserve(static_cast<std::size_t>(config_.n_layers));
  skips_.reserve(static_cast<std::size_t>(config_.n_layers));
  nn::FactorizedSpectralConv* share_owner = nullptr;
  for (index_t l = 0; l < config_.n_layers; ++l) {
    const std::string base = "blocks." + std::to_string(l);
    if (config_.spectral_kind == nn::SpectralKind::kFactorized) {
      auto conv = std::make_unique<nn::FactorizedSpectralConv>(
          config_.width, config_.width, config_.n_modes, rng,
          base + ".spectral",
          config_.share_spectral_factors ? share_owner : nullptr);
      if (share_owner == nullptr) share_owner = conv.get();
      convs_.push_back(std::move(conv));
    } else {
      convs_.push_back(std::make_unique<nn::SpectralConv>(
          config_.width, config_.width, config_.n_modes, rng,
          base + ".spectral"));
    }
    skips_.push_back(std::make_unique<nn::Linear>(
        config_.width, config_.width, rng, true, base + ".skip"));
    if (l + 1 < config_.n_layers) {
      acts_.push_back(std::make_unique<nn::Gelu>(base + ".act"));
    }
  }
}

TensorF Fno::forward(const TensorF& x) {
  TURB_CHECK_MSG(x.rank() == config_.rank() + 2,
                 "fno: input must be (N, C, spatial...), got rank "
                     << x.rank());
  TensorF h = lift2_.forward(lift_act_.forward(lift1_.forward(x)));
  for (index_t l = 0; l < config_.n_layers; ++l) {
    TensorF spec = convs_[static_cast<std::size_t>(l)]->forward(h);
    TensorF skip = skips_[static_cast<std::size_t>(l)]->forward(h);
    spec += skip;
    if (l + 1 < config_.n_layers) {
      h = acts_[static_cast<std::size_t>(l)]->forward(spec);
    } else {
      h = std::move(spec);
    }
  }
  return proj2_.forward(proj_act_.forward(proj1_.forward(h)));
}

TensorF Fno::backward(const TensorF& grad_out) {
  TensorF g = proj1_.backward(proj_act_.backward(proj2_.backward(grad_out)));
  for (index_t l = config_.n_layers; l-- > 0;) {
    if (l + 1 < config_.n_layers) {
      g = acts_[static_cast<std::size_t>(l)]->backward(g);
    }
    TensorF g_spec = convs_[static_cast<std::size_t>(l)]->backward(g);
    TensorF g_skip = skips_[static_cast<std::size_t>(l)]->backward(g);
    g_spec += g_skip;
    g = std::move(g_spec);
  }
  return lift1_.backward(lift_act_.backward(lift2_.backward(g)));
}

void Fno::collect_parameters(std::vector<nn::Parameter*>& out) {
  lift1_.collect_parameters(out);
  lift2_.collect_parameters(out);
  for (index_t l = 0; l < config_.n_layers; ++l) {
    convs_[static_cast<std::size_t>(l)]->collect_parameters(out);
    skips_[static_cast<std::size_t>(l)]->collect_parameters(out);
  }
  proj1_.collect_parameters(out);
  proj2_.collect_parameters(out);
}

index_t fno_parameter_count(const FnoConfig& c) {
  const index_t lift = (c.in_channels * c.lifting_channels +
                        c.lifting_channels) +
                       (c.lifting_channels * c.width + c.width);
  const index_t proj = (c.width * c.projection_channels +
                        c.projection_channels) +
                       (c.projection_channels * c.out_channels +
                        c.out_channels);
  index_t spectral_total;
  if (c.spectral_kind == nn::SpectralKind::kFactorized) {
    // Per-axis factors: Σ_d kept_d complex values per (C_in, C_out) pair,
    // counted once when shared across layers.
    index_t kept_sum = 0;
    for (std::size_t d = 0; d + 1 < c.n_modes.size(); ++d) {
      kept_sum += c.n_modes[d];
    }
    kept_sum += c.n_modes.back() / 2 + 1;
    const index_t per_layer = c.width * c.width * kept_sum * 2;  // complex
    spectral_total = c.share_spectral_factors ? per_layer
                                              : c.n_layers * per_layer;
  } else {
    index_t kept = 1;
    for (std::size_t d = 0; d + 1 < c.n_modes.size(); ++d) {
      kept *= c.n_modes[d];
    }
    kept *= c.n_modes.back() / 2 + 1;
    spectral_total = c.n_layers * (c.width * c.width * kept * 2);  // complex
  }
  const index_t skip_per_layer = c.width * c.width + c.width;
  return lift + proj + spectral_total + c.n_layers * skip_per_layer;
}

}  // namespace turb::fno
