#include "fno/rollout.hpp"

namespace turb::fno {

TensorF rollout_channels(Fno& model, const TensorF& history, index_t steps) {
  infer::InferenceEngine engine(model);
  TensorF out;
  engine.rollout_channels_into(history, steps, out);
  return out;
}

TensorF rollout_3d(Fno& model, const TensorF& seed_block, index_t blocks) {
  infer::InferenceEngine engine(model);
  TensorF out;
  engine.rollout_3d_into(seed_block, blocks, out);
  return out;
}

TensorF rollout_channels_batched(infer::InferenceEngine& engine,
                                 const TensorF& histories, index_t steps) {
  TensorF out;
  engine.rollout_channels_batched_into(histories, steps, out);
  return out;
}

}  // namespace turb::fno
