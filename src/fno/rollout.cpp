#include "fno/rollout.hpp"

#include <algorithm>

namespace turb::fno {

TensorF rollout_channels(Fno& model, const TensorF& history, index_t steps) {
  const FnoConfig& cfg = model.config();
  TURB_CHECK_MSG(cfg.rank() == 2, "rollout_channels needs a rank-2 model");
  TURB_CHECK_MSG(history.rank() == 3 && history.dim(0) == cfg.in_channels,
                 "history must be (C_in, H, W)");
  TURB_CHECK(steps >= 1);
  const index_t h = history.dim(1);
  const index_t w = history.dim(2);
  const index_t frame = h * w;
  const index_t cin = cfg.in_channels;
  const index_t cout = cfg.out_channels;

  TensorF out({steps, h, w});
  TensorF window({1, cin, h, w});
  std::copy_n(history.data(), cin * frame, window.data());

  index_t produced = 0;
  while (produced < steps) {
    const TensorF pred = model.forward(window);  // (1, C_out, H, W)
    const index_t take = std::min(cout, steps - produced);
    std::copy_n(pred.data(), take * frame, out.data() + produced * frame);
    produced += take;
    // Slide the window: drop the oldest C_out snapshots, append predictions.
    if (cout >= cin) {
      // Window is replaced by the most recent C_in predictions.
      std::copy_n(pred.data() + (cout - cin) * frame, cin * frame,
                  window.data());
    } else {
      std::copy(window.data() + cout * frame, window.data() + cin * frame,
                window.data());
      std::copy_n(pred.data(), cout * frame,
                  window.data() + (cin - cout) * frame);
    }
  }
  return out;
}

TensorF rollout_3d(Fno& model, const TensorF& seed_block, index_t blocks) {
  const FnoConfig& cfg = model.config();
  TURB_CHECK_MSG(cfg.rank() == 3, "rollout_3d needs a rank-3 model");
  TURB_CHECK_MSG(seed_block.rank() == 3, "seed block must be (T, H, W)");
  TURB_CHECK(blocks >= 1);
  const index_t t = seed_block.dim(0);
  const index_t h = seed_block.dim(1);
  const index_t w = seed_block.dim(2);
  const index_t block_elems = t * h * w;

  TensorF out({blocks * t, h, w});
  TensorF window({1, 1, t, h, w});
  std::copy_n(seed_block.data(), block_elems, window.data());

  for (index_t b = 0; b < blocks; ++b) {
    const TensorF pred = model.forward(window);  // (1, 1, T, H, W)
    std::copy_n(pred.data(), block_elems, out.data() + b * block_elems);
    std::copy_n(pred.data(), block_elems, window.data());
  }
  return out;
}

}  // namespace turb::fno
