// The Fourier Neural Operator model (rank 2 or 3).
//
// Architecture (modern `neuraloperator` FNO — reproduces the paper's Table I
// parameter counts exactly; see tests/test_fno.cpp):
//
//   lifting:    Linear(in → lifting_channels) → GELU → Linear(→ width)
//   n_layers ×: x ← act( SpectralConv(x) + Linear_skip(x) )
//               (GELU on all blocks except the last)
//   projection: Linear(width → projection_channels) → GELU → Linear(→ out)
//
// The same class implements both model families of the paper:
//   * "2D FNO with temporal channels": rank-2 modes, time snapshots stacked
//     as input/output channels (in=10, out∈{1..10}).
//   * "3D FNO": rank-3 modes over (t, x, y), in=out=1 field channel.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/activation.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "nn/spectral_conv.hpp"
#include "util/rng.hpp"

namespace turb::fno {

struct FnoConfig {
  index_t in_channels = 10;
  index_t out_channels = 10;
  index_t width = 40;
  index_t n_layers = 4;
  std::vector<index_t> n_modes{32, 32};  // rank 2 (spatial) or 3 (t, x, y)
  index_t lifting_channels = 256;
  index_t projection_channels = 256;

  /// Weight parameterisation of the spectral blocks: dense per-mode weights
  /// (the paper's FNO) or F-FNO separable per-axis factors.
  nn::SpectralKind spectral_kind = nn::SpectralKind::kDense;
  /// Factorized only: share one set of per-axis factors across all layers
  /// (F-FNO weight sharing). Ignored for the dense parameterisation.
  bool share_spectral_factors = false;

  [[nodiscard]] std::size_t rank() const { return n_modes.size(); }
};

class Fno : public nn::Module {
 public:
  Fno(FnoConfig config, Rng& rng);

  TensorF forward(const TensorF& x) override;
  TensorF backward(const TensorF& grad_out) override;
  void collect_parameters(std::vector<nn::Parameter*>& out) override;
  [[nodiscard]] std::string name() const override { return "fno"; }

  [[nodiscard]] const FnoConfig& config() const { return config_; }

  // Layer access for the inference engine (src/infer), which prepacks the
  // weights and replays the exact forward() dataflow out of an arena.
  [[nodiscard]] nn::Linear& lift1() { return lift1_; }
  [[nodiscard]] nn::Linear& lift2() { return lift2_; }
  [[nodiscard]] nn::Linear& proj1() { return proj1_; }
  [[nodiscard]] nn::Linear& proj2() { return proj2_; }
  [[nodiscard]] nn::SpectralLayer& conv(index_t l) { return *convs_[l]; }
  [[nodiscard]] nn::Linear& skip(index_t l) { return *skips_[l]; }

 private:
  FnoConfig config_;
  nn::Linear lift1_;
  nn::Gelu lift_act_;
  nn::Linear lift2_;
  std::vector<std::unique_ptr<nn::SpectralLayer>> convs_;
  std::vector<std::unique_ptr<nn::Linear>> skips_;
  std::vector<std::unique_ptr<nn::Gelu>> acts_;  // n_layers-1 activations
  nn::Linear proj1_;
  nn::Gelu proj_act_;
  nn::Linear proj2_;
};

/// Closed-form trainable-parameter count for a config (used to cross-check
/// the instantiated model and to regenerate the paper's Table I without
/// allocating the 222M-parameter 3D models).
index_t fno_parameter_count(const FnoConfig& config);

}  // namespace turb::fno
