// Entropic D2Q9 lattice Boltzmann solver for 2-D decaying turbulence.
//
// This is the paper's data-generation substrate ([26]–[28]): the
// Navier–Stokes equations are solved in discrete-kinetic form on a periodic
// grid. Two collision operators are provided:
//   * BGK        — f ← f + ω (f^eq − f), the classical single-relaxation-time
//                  operator; unstable for under-resolved high-Re runs.
//   * Entropic   — f ← f + α β (f^eq − f) with the path length α solved per
//                  cell from the entropy-equality condition
//                  H(f + αΔ) = H(f),  H(f) = Σᵢ fᵢ ln(fᵢ/wᵢ),
//                  which keeps the discrete H-theorem and stabilises
//                  under-resolved simulations (ablation bench shows BGK
//                  blowing up where the entropic operator survives).
//
// The equilibrium is the closed-form entropy minimiser (product form), the
// same family as the paper's "essentially entropic" model.
//
// Viscosity: ν = c_s² (1/(2β) − 1/2), i.e. β = 1/(6ν + 1) in lattice units.
#pragma once

#include <vector>

#include "lbm/d2q9.hpp"
#include "tensor/tensor.hpp"

namespace turb::lbm {

enum class Collision {
  kBgk,       ///< single relaxation time
  kEntropic,  ///< per-cell α from the entropy-equality condition
  kMrt,       ///< multiple relaxation times (Lallemand–Luo moment basis)
};

struct LbmConfig {
  index_t nx = 64;
  index_t ny = 64;
  double viscosity = 1e-3;  ///< kinematic viscosity in lattice units
  Collision collision = Collision::kEntropic;
  /// Fast path: when every |Δᵢ|/fᵢ is below this, the entropic root is
  /// indistinguishable from α = 2 (the BGK limit) and the Newton solve is
  /// skipped.
  double entropic_fast_path_threshold = 1e-3;
  /// MRT relaxation rates for the non-hydrodynamic moments (energy,
  /// energy-square, heat-flux). The stress rate is set by the viscosity.
  double mrt_s_e = 1.4;
  double mrt_s_eps = 1.4;
  double mrt_s_q = 1.2;
  /// Kolmogorov body force Fx(y) = A sin(2π k_f y/ny) via the Guo scheme
  /// (second-order forcing with the half-force velocity shift). Zero = the
  /// paper's decaying setting.
  double force_amplitude = 0.0;
  index_t force_k = 1;
};

/// Per-step diagnostics of the entropic root solve.
struct EntropicStats {
  double alpha_min = 2.0;
  double alpha_max = 2.0;
  index_t newton_cells = 0;  ///< cells that needed the full root solve
};

class LbmSolver {
 public:
  explicit LbmSolver(LbmConfig config);

  [[nodiscard]] const LbmConfig& config() const { return config_; }
  [[nodiscard]] index_t nx() const { return config_.nx; }
  [[nodiscard]] index_t ny() const { return config_.ny; }

  /// Initialise populations at equilibrium with unit density and the given
  /// velocity field (each (ny, nx), lattice units, |u| ≲ 0.1 for low Mach).
  void initialize(const TensorD& u1, const TensorD& u2);

  /// Advance `steps` collide–stream cycles.
  void step(index_t steps = 1);

  /// Macroscopic moments (density and velocity), each (ny, nx).
  [[nodiscard]] TensorD density() const;
  [[nodiscard]] TensorD velocity_x() const;
  [[nodiscard]] TensorD velocity_y() const;

  /// Total kinetic energy Σ ρ|u|²/2 (lattice units).
  [[nodiscard]] double kinetic_energy() const;
  /// Total mass Σ ρ (conserved to round-off).
  [[nodiscard]] double total_mass() const;

  /// Diagnostics from the most recent step().
  [[nodiscard]] const EntropicStats& entropic_stats() const { return stats_; }

  /// Relaxation parameter β = 1/(6ν+1).
  [[nodiscard]] double beta() const { return beta_; }

  /// True if any population went non-finite (solver blow-up detector).
  [[nodiscard]] bool has_blown_up() const;

 private:
  void collide();
  void collide_mrt();
  void stream();

  /// Product-form (entropy-minimising) equilibrium for one cell.
  static void equilibrium(double rho, double ux, double uy,
                          double* feq /*[kQ]*/);

  /// Solve H(f + αΔ) = H(f) for the entropic path length α.
  static double solve_alpha(const double* f, const double* delta);

  LbmConfig config_;
  double beta_;
  index_t cells_;
  // SoA layout: population i at f_[i * cells_ + cell].
  std::vector<double> f_;
  std::vector<double> f_post_;
  EntropicStats stats_;
};

}  // namespace turb::lbm
