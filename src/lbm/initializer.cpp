#include "lbm/initializer.hpp"

#include <cmath>
#include <numbers>

#include "fft/fftnd.hpp"

namespace turb::lbm {

VelocityField random_uniform_velocity(index_t ny, index_t nx, double amplitude,
                                      Rng& rng) {
  VelocityField field{TensorD({ny, nx}), TensorD({ny, nx})};
  field.u1.fill_uniform(rng, -amplitude, amplitude);
  field.u2.fill_uniform(rng, -amplitude, amplitude);
  return field;
}

VelocityField random_vortex_velocity(index_t ny, index_t nx, double k_peak,
                                     double u_max, Rng& rng) {
  TURB_CHECK(k_peak > 0.0 && u_max > 0.0);
  const index_t nxr = nx / 2 + 1;
  TensorCD psi({ny, nxr});

  // Signed integer frequency for row index.
  const auto freq = [](index_t idx, index_t n) {
    return (idx <= n / 2) ? static_cast<double>(idx)
                          : static_cast<double>(idx) - static_cast<double>(n);
  };

  for (index_t iy = 0; iy < ny; ++iy) {
    for (index_t ix = 0; ix < nxr; ++ix) {
      // Leave the mean and the sign-ambiguous Nyquist modes empty: the
      // field stays exactly within the subspace every spectral operator in
      // this library treats losslessly.
      if (2 * iy == ny || 2 * ix == nx) continue;
      const double ky = freq(iy, ny);
      const double kx = static_cast<double>(ix);
      const double k = std::sqrt(kx * kx + ky * ky);
      if (k == 0.0) continue;
      // Streamfunction amplitude giving E(k) ∝ k⁴ exp(−2(k/k_peak)²):
      // |û| ~ k|ψ̂| and E ~ |û|² → |ψ̂| ∝ k exp(−(k/k_peak)²).
      const double amp = k * std::exp(-(k / k_peak) * (k / k_peak));
      const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
      psi(iy, ix) = std::polar(amp, phase);
    }
  }
  // Hermitian symmetry on the kx = 0 and kx = nx/2 columns so the inverse
  // transform sees a consistent real-field spectrum.
  for (index_t iy = 1; iy < ny / 2; ++iy) {
    psi(ny - iy, index_t{0}) = std::conj(psi(iy, index_t{0}));
    psi(ny - iy, nxr - 1) = std::conj(psi(iy, nxr - 1));
  }
  psi(index_t{0}, index_t{0}) = 0.0;
  psi(ny / 2, index_t{0}) = psi(ny / 2, index_t{0}).real();
  psi(index_t{0}, nxr - 1) = psi(index_t{0}, nxr - 1).real();
  psi(ny / 2, nxr - 1) = psi(ny / 2, nxr - 1).real();

  // u1 = ∂ψ/∂y, u2 = −∂ψ/∂x (spectral derivatives; 2π per box period).
  TensorCD u1_hat({ny, nxr}), u2_hat({ny, nxr});
  const double two_pi = 2.0 * std::numbers::pi;
  for (index_t iy = 0; iy < ny; ++iy) {
    for (index_t ix = 0; ix < nxr; ++ix) {
      const std::complex<double> p = psi(iy, ix);
      const std::complex<double> ik_y(0.0, two_pi * freq(iy, ny));
      const std::complex<double> ik_x(0.0, two_pi * static_cast<double>(ix));
      u1_hat(iy, ix) = ik_y * p;
      u2_hat(iy, ix) = -ik_x * p;
    }
  }
  VelocityField field;
  field.u1 = fft::irfftn(u1_hat, 2, nx);
  field.u2 = fft::irfftn(u2_hat, 2, nx);

  const double peak = std::max(field.u1.max_abs(), field.u2.max_abs());
  TURB_CHECK_MSG(peak > 0.0, "degenerate random field");
  const double scale = u_max / peak;
  field.u1 *= scale;
  field.u2 *= scale;
  return field;
}

VelocityField taylor_green_velocity(index_t ny, index_t nx, double u0) {
  VelocityField field{TensorD({ny, nx}), TensorD({ny, nx})};
  const double two_pi = 2.0 * std::numbers::pi;
  for (index_t iy = 0; iy < ny; ++iy) {
    const double y = two_pi * static_cast<double>(iy) / static_cast<double>(ny);
    for (index_t ix = 0; ix < nx; ++ix) {
      const double x =
          two_pi * static_cast<double>(ix) / static_cast<double>(nx);
      field.u1(iy, ix) = u0 * std::sin(x) * std::cos(y);
      field.u2(iy, ix) = -u0 * std::cos(x) * std::sin(y);
    }
  }
  return field;
}

}  // namespace turb::lbm
