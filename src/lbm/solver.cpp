#include "lbm/solver.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace turb::lbm {

LbmSolver::LbmSolver(LbmConfig config)
    : config_(config),
      beta_(1.0 / (6.0 * config.viscosity + 1.0)),
      cells_(config.nx * config.ny),
      f_(static_cast<std::size_t>(kQ * cells_), 0.0),
      f_post_(static_cast<std::size_t>(kQ * cells_), 0.0) {
  TURB_CHECK(config_.nx >= 4 && config_.ny >= 4);
  TURB_CHECK_MSG(config_.viscosity > 0.0, "viscosity must be positive");
}

void LbmSolver::equilibrium(double rho, double ux, double uy, double* feq) {
  // Closed-form entropy minimiser (product form). For |u| → 0 it agrees with
  // the usual second-order polynomial equilibrium to O(u³) but stays
  // positive for all |u| < 1.
  const double sx = std::sqrt(1.0 + 3.0 * ux * ux);
  const double sy = std::sqrt(1.0 + 3.0 * uy * uy);
  const double ax = 2.0 - sx;
  const double ay = 2.0 - sy;
  const double bx = (2.0 * ux + sx) / (1.0 - ux);
  const double by = (2.0 * uy + sy) / (1.0 - uy);
  const double inv_bx = 1.0 / bx;
  const double inv_by = 1.0 / by;
  const double base = rho * ax * ay;
  for (int i = 0; i < kQ; ++i) {
    double v = base * kWeights[static_cast<std::size_t>(i)];
    v *= (kCx[static_cast<std::size_t>(i)] > 0)   ? bx
         : (kCx[static_cast<std::size_t>(i)] < 0) ? inv_bx
                                                  : 1.0;
    v *= (kCy[static_cast<std::size_t>(i)] > 0)   ? by
         : (kCy[static_cast<std::size_t>(i)] < 0) ? inv_by
                                                  : 1.0;
    feq[i] = v;
  }
}

namespace {

/// Discrete H-function H(f) = Σ fᵢ ln(fᵢ/wᵢ).
double entropy(const double* f) {
  double h = 0.0;
  for (int i = 0; i < kQ; ++i) {
    h += f[i] * std::log(f[i] / kWeights[static_cast<std::size_t>(i)]);
  }
  return h;
}

}  // namespace

double LbmSolver::solve_alpha(const double* f, const double* delta) {
  // Positivity bound: f + αΔ must stay positive.
  double alpha_cap = 1e30;
  for (int i = 0; i < kQ; ++i) {
    if (delta[i] < 0.0) {
      alpha_cap = std::min(alpha_cap, -f[i] / delta[i]);
    }
  }
  alpha_cap *= 0.999;

  const double h0 = entropy(f);
  const auto g = [&](double a) {
    double h = 0.0;
    for (int i = 0; i < kQ; ++i) {
      const double fi = f[i] + a * delta[i];
      h += fi * std::log(fi / kWeights[static_cast<std::size_t>(i)]);
    }
    return h - h0;
  };
  const auto gprime = [&](double a) {
    double d = 0.0;
    for (int i = 0; i < kQ; ++i) {
      const double fi = f[i] + a * delta[i];
      d += delta[i] *
           (std::log(fi / kWeights[static_cast<std::size_t>(i)]) + 1.0);
    }
    return d;
  };

  // Bracket the nontrivial root: G(1) ≤ 0 (the equilibrium minimises H);
  // expand upward until G > 0 or the positivity cap binds.
  double lo = 1.0;
  double hi = std::min(2.0, alpha_cap);
  while (g(hi) <= 0.0) {
    if (hi >= alpha_cap) return alpha_cap;  // root beyond positivity: clamp
    lo = hi;
    hi = std::min(hi * 1.5, alpha_cap);
  }

  // Safeguarded Newton within [lo, hi].
  double alpha = std::clamp(2.0, lo, hi);
  for (int iter = 0; iter < 30; ++iter) {
    const double val = g(alpha);
    if (std::abs(val) < 1e-12) break;
    if (val > 0.0) {
      hi = alpha;
    } else {
      lo = alpha;
    }
    const double deriv = gprime(alpha);
    double next = (deriv != 0.0) ? alpha - val / deriv : 0.5 * (lo + hi);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::abs(next - alpha) < 1e-12) {
      alpha = next;
      break;
    }
    alpha = next;
  }
  return alpha;
}

void LbmSolver::collide_mrt() {
  // Lallemand–Luo D2Q9 moment basis for the velocity ordering of d2q9.hpp:
  // (ρ, e, ε, jx, qx, jy, qy, pxx, pxy). Rows are mutually orthogonal with
  // squared norms {9, 36, 36, 6, 12, 6, 12, 4, 4}.
  static constexpr double kM[9][9] = {
      {1, 1, 1, 1, 1, 1, 1, 1, 1},          // rho
      {-4, -1, -1, -1, -1, 2, 2, 2, 2},     // e
      {4, -2, -2, -2, -2, 1, 1, 1, 1},      // eps
      {0, 1, 0, -1, 0, 1, -1, -1, 1},       // jx
      {0, -2, 0, 2, 0, 1, -1, -1, 1},       // qx
      {0, 0, 1, 0, -1, 1, 1, -1, -1},       // jy
      {0, 0, -2, 0, 2, 1, 1, -1, -1},       // qy
      {0, 1, -1, 1, -1, 0, 0, 0, 0},        // pxx
      {0, 0, 0, 0, 0, 1, -1, 1, -1},        // pxy
  };
  static constexpr double kNormSq[9] = {9, 36, 36, 6, 12, 6, 12, 4, 4};

  // Stress moments relax at the viscosity rate; conserved moments at 0.
  const double s_nu = 1.0 / (3.0 * config_.viscosity + 0.5);
  const double s[9] = {0.0,          config_.mrt_s_e, config_.mrt_s_eps,
                       0.0,          config_.mrt_s_q, 0.0,
                       config_.mrt_s_q, s_nu,         s_nu};

  parallel_for_chunked(0, cells_, [&](index_t begin, index_t end) {
    double fi[kQ], m[kQ], meq[kQ];
    for (index_t c = begin; c < end; ++c) {
      for (int i = 0; i < kQ; ++i) {
        fi[i] = f_[static_cast<std::size_t>(i * cells_ + c)];
      }
      for (int k = 0; k < kQ; ++k) {
        double acc = 0.0;
        for (int i = 0; i < kQ; ++i) acc += kM[k][i] * fi[i];
        m[k] = acc;
      }
      const double rho = m[0];
      const double jx = m[3], jy = m[5];
      const double j2 = (jx * jx + jy * jy) / rho;
      meq[0] = rho;
      meq[1] = -2.0 * rho + 3.0 * j2;
      meq[2] = rho - 3.0 * j2;
      meq[3] = jx;
      meq[4] = -jx;
      meq[5] = jy;
      meq[6] = -jy;
      meq[7] = (jx * jx - jy * jy) / rho;
      meq[8] = jx * jy / rho;
      for (int k = 0; k < kQ; ++k) {
        m[k] -= s[k] * (m[k] - meq[k]);
      }
      // Inverse transform via orthogonality: f_i = Σ_k m_k M_{k,i}/‖M_k‖².
      for (int i = 0; i < kQ; ++i) {
        double acc = 0.0;
        for (int k = 0; k < kQ; ++k) acc += m[k] * kM[k][i] / kNormSq[k];
        f_[static_cast<std::size_t>(i * cells_ + c)] = acc;
      }
    }
  });
  stats_ = EntropicStats{};  // α diagnostics do not apply
}

void LbmSolver::collide() {
  if (config_.collision == Collision::kMrt) {
    TURB_CHECK_MSG(config_.force_amplitude == 0.0,
                   "body force is implemented for BGK/entropic collisions");
    collide_mrt();
    return;
  }
  const double beta = beta_;
  const bool entropic = config_.collision == Collision::kEntropic;
  const double fast_threshold = config_.entropic_fast_path_threshold;
  const bool forced = config_.force_amplitude != 0.0;

  std::mutex stats_mutex;
  EntropicStats step_stats;
  step_stats.alpha_min = 2.0;
  step_stats.alpha_max = 2.0;

  const double two_pi = 2.0 * 3.14159265358979323846;
  const index_t nx = config_.nx;

  parallel_for_chunked(0, cells_, [&](index_t begin, index_t end) {
    double local_min = 2.0, local_max = 2.0;
    index_t local_newton = 0;
    double fi[kQ], feq[kQ], delta[kQ];
    for (index_t c = begin; c < end; ++c) {
      double rho = 0.0, jx = 0.0, jy = 0.0;
      for (int i = 0; i < kQ; ++i) {
        const double v = f_[static_cast<std::size_t>(i * cells_ + c)];
        fi[i] = v;
        rho += v;
        jx += kCx[static_cast<std::size_t>(i)] * v;
        jy += kCy[static_cast<std::size_t>(i)] * v;
      }
      const double inv_rho = 1.0 / rho;
      double fx = 0.0;
      if (forced) {
        const index_t iy = c / nx;
        fx = config_.force_amplitude *
             std::sin(two_pi * static_cast<double>(config_.force_k) *
                      static_cast<double>(iy) /
                      static_cast<double>(config_.ny));
        jx += 0.5 * fx;  // Guo half-force velocity shift
      }
      const double ux = jx * inv_rho;
      const double uy = jy * inv_rho;
      equilibrium(rho, ux, uy, feq);

      double alpha = 2.0;
      if (entropic) {
        double rel = 0.0;
        for (int i = 0; i < kQ; ++i) {
          delta[i] = feq[i] - fi[i];
          rel = std::max(rel, std::abs(delta[i]) / fi[i]);
        }
        if (rel > fast_threshold) {
          alpha = solve_alpha(fi, delta);
          ++local_newton;
          local_min = std::min(local_min, alpha);
          local_max = std::max(local_max, alpha);
        }
      } else {
        for (int i = 0; i < kQ; ++i) delta[i] = feq[i] - fi[i];
      }

      const double relax = alpha * beta;
      for (int i = 0; i < kQ; ++i) {
        f_[static_cast<std::size_t>(i * cells_ + c)] = fi[i] + relax * delta[i];
      }
      if (forced) {
        // Guo forcing source: Sᵢ = (1 − relax/2)·wᵢ·[(c−u)/c_s² +
        // (c·u)c/c_s⁴]·F with F = (fx, 0).
        const double pref = 1.0 - 0.5 * relax;
        for (int i = 0; i < kQ; ++i) {
          const auto ui = static_cast<std::size_t>(i);
          const double cx = kCx[ui], cy = kCy[ui];
          const double cu = cx * ux + cy * uy;
          const double term =
              ((cx - ux) / kCs2 + cu * cx / (kCs2 * kCs2)) * fx;
          f_[static_cast<std::size_t>(i * cells_ + c)] +=
              pref * kWeights[ui] * term;
        }
      }
    }
    if (entropic) {
      std::lock_guard lock(stats_mutex);
      step_stats.alpha_min = std::min(step_stats.alpha_min, local_min);
      step_stats.alpha_max = std::max(step_stats.alpha_max, local_max);
      step_stats.newton_cells += local_newton;
    }
  });
  stats_ = step_stats;
}

void LbmSolver::stream() {
  const index_t nx = config_.nx, ny = config_.ny;
  parallel_for(0, static_cast<index_t>(kQ) * ny, [&](index_t t) {
    const int i = static_cast<int>(t / ny);
    const index_t y = t % ny;
    const int cx = kCx[static_cast<std::size_t>(i)];
    const int cy = kCy[static_cast<std::size_t>(i)];
    const index_t yd = (y + cy + ny) % ny;
    const double* src = f_.data() + static_cast<std::size_t>(i * cells_ + y * nx);
    double* dst = f_post_.data() + static_cast<std::size_t>(i * cells_ + yd * nx);
    if (cx == 0) {
      std::copy_n(src, nx, dst);
    } else if (cx == 1) {
      // dst[(x+1) mod nx] = src[x]
      std::copy_n(src, nx - 1, dst + 1);
      dst[0] = src[nx - 1];
    } else {
      std::copy_n(src + 1, nx - 1, dst);
      dst[nx - 1] = src[0];
    }
  });
  f_.swap(f_post_);
}

void LbmSolver::step(index_t steps) {
  static obs::TimerStat& collide_span = obs::timer("lbm/collide");
  static obs::TimerStat& stream_span = obs::timer("lbm/stream");
  static obs::Counter& counter = obs::counter("lbm/steps");
  counter.add(steps);
  for (index_t s = 0; s < steps; ++s) {
    {
      obs::ScopedTimer span(collide_span);
      collide();
    }
    {
      obs::ScopedTimer span(stream_span);
      stream();
    }
  }
}

void LbmSolver::initialize(const TensorD& u1, const TensorD& u2) {
  TURB_CHECK(u1.shape() == (Shape{config_.ny, config_.nx}));
  TURB_CHECK(u2.shape() == (Shape{config_.ny, config_.nx}));
  TURB_CHECK_MSG(u1.max_abs() < 0.3 && u2.max_abs() < 0.3,
                 "initial lattice velocity too large (low-Mach limit)");
  parallel_for(0, cells_, [&](index_t c) {
    double feq[kQ];
    equilibrium(1.0, u1[c], u2[c], feq);
    for (int i = 0; i < kQ; ++i) {
      f_[static_cast<std::size_t>(i * cells_ + c)] = feq[i];
    }
  });
}

TensorD LbmSolver::density() const {
  TensorD rho({config_.ny, config_.nx});
  for (index_t c = 0; c < cells_; ++c) {
    double acc = 0.0;
    for (int i = 0; i < kQ; ++i) {
      acc += f_[static_cast<std::size_t>(i * cells_ + c)];
    }
    rho[c] = acc;
  }
  return rho;
}

TensorD LbmSolver::velocity_x() const {
  TensorD u({config_.ny, config_.nx});
  const bool forced = config_.force_amplitude != 0.0;
  const double two_pi = 2.0 * 3.14159265358979323846;
  for (index_t c = 0; c < cells_; ++c) {
    double rho = 0.0, jx = 0.0;
    for (int i = 0; i < kQ; ++i) {
      const double v = f_[static_cast<std::size_t>(i * cells_ + c)];
      rho += v;
      jx += kCx[static_cast<std::size_t>(i)] * v;
    }
    if (forced) {
      // Guo macroscopic velocity includes half the body force.
      const index_t iy = c / config_.nx;
      jx += 0.5 * config_.force_amplitude *
            std::sin(two_pi * static_cast<double>(config_.force_k) *
                     static_cast<double>(iy) /
                     static_cast<double>(config_.ny));
    }
    u[c] = jx / rho;
  }
  return u;
}

TensorD LbmSolver::velocity_y() const {
  TensorD u({config_.ny, config_.nx});
  for (index_t c = 0; c < cells_; ++c) {
    double rho = 0.0, jy = 0.0;
    for (int i = 0; i < kQ; ++i) {
      const double v = f_[static_cast<std::size_t>(i * cells_ + c)];
      rho += v;
      jy += kCy[static_cast<std::size_t>(i)] * v;
    }
    u[c] = jy / rho;
  }
  return u;
}

double LbmSolver::kinetic_energy() const {
  double ke = 0.0;
  for (index_t c = 0; c < cells_; ++c) {
    double rho = 0.0, jx = 0.0, jy = 0.0;
    for (int i = 0; i < kQ; ++i) {
      const double v = f_[static_cast<std::size_t>(i * cells_ + c)];
      rho += v;
      jx += kCx[static_cast<std::size_t>(i)] * v;
      jy += kCy[static_cast<std::size_t>(i)] * v;
    }
    ke += 0.5 * (jx * jx + jy * jy) / rho;
  }
  return ke;
}

double LbmSolver::total_mass() const {
  double m = 0.0;
  for (const double v : f_) m += v;
  return m;
}

bool LbmSolver::has_blown_up() const {
  for (const double v : f_) {
    if (!std::isfinite(v) || v <= 0.0) return true;
  }
  return false;
}

}  // namespace turb::lbm
