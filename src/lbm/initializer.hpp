// Initial velocity fields for the turbulence simulations.
//
// The paper initialises each dataset sample "with different uniformly
// distributed random numbers", lets the flow evolve 0.5 t_c to dissipate the
// sharp discontinuities, and then starts sampling. We provide that
// initialiser plus a band-limited solenoidal one (divergence-free by
// construction — skips the burn-in) and the Taylor–Green vortex used for
// solver validation.
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace turb::lbm {

/// A velocity field pair on a (ny, nx) periodic grid.
struct VelocityField {
  TensorD u1;  ///< x-component
  TensorD u2;  ///< y-component
};

/// I.i.d. uniform noise on [-amplitude, amplitude] — the paper's initial
/// condition. Not solenoidal; requires burn-in before use.
VelocityField random_uniform_velocity(index_t ny, index_t nx, double amplitude,
                                      Rng& rng);

/// Band-limited random solenoidal field: streamfunction with spectrum
/// E(k) ∝ k⁴ exp(−2(k/k_peak)²) and random phases, giving several
/// counter-rotating vortices. Rescaled so max|u| = u_max.
VelocityField random_vortex_velocity(index_t ny, index_t nx, double k_peak,
                                     double u_max, Rng& rng);

/// Taylor–Green vortex u = U(sin kx cos ky, −cos kx sin ky) with one period
/// across the box; kinetic energy decays as exp(−4νk²t) — the analytic
/// benchmark for viscosity validation.
VelocityField taylor_green_velocity(index_t ny, index_t nx, double u0);

}  // namespace turb::lbm
