// D2Q9 lattice constants.
//
// Velocity set ordering: rest, the four axis directions, then diagonals —
//   0:( 0, 0)  1:( 1, 0)  2:( 0, 1)  3:(-1, 0)  4:( 0,-1)
//   5:( 1, 1)  6:(-1, 1)  7:(-1,-1)  8:( 1,-1)
// Lattice units: δx = δt = 1, speed of sound c_s² = 1/3.
#pragma once

#include <array>

namespace turb::lbm {

inline constexpr int kQ = 9;

inline constexpr std::array<int, kQ> kCx = {0, 1, 0, -1, 0, 1, -1, -1, 1};
inline constexpr std::array<int, kQ> kCy = {0, 0, 1, 0, -1, 1, 1, -1, -1};

inline constexpr std::array<double, kQ> kWeights = {
    4.0 / 9.0,  1.0 / 9.0,  1.0 / 9.0,  1.0 / 9.0, 1.0 / 9.0,
    1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0};

inline constexpr double kCs2 = 1.0 / 3.0;

/// Opposite direction (bounce-back pairing), provided for completeness.
inline constexpr std::array<int, kQ> kOpposite = {0, 3, 4, 1, 2, 7, 8, 5, 6};

}  // namespace turb::lbm
