// Explicit AVX2/FMA register-panel kernels behind util::isa runtime dispatch
// (gemm.hpp holds the scalar reference kernels and the dispatch sites).
//
// Compiled with per-function target attributes, so this header is safe to
// include from TUs built without -mavx2; the functions must only be CALLED
// when util::cpu_supports_avx2() is true (util::active_isa() guarantees it).
//
// Determinism properties (DESIGN.md "Determinism tiers"):
//
//   * Within the avx2 ISA the kernels are bitwise deterministic: every C
//     element is produced by one accumulator updated in ascending-k order,
//     independent of its neighbours, so the row partition of the thread pool
//     and the caller's column blocking (the inference engine calls the same
//     kernel over 64-wide column blocks; kColBlock is a multiple of every
//     vector group width used here) cannot change any element's rounding
//     sequence.
//   * Against the scalar kernels the results differ in the last bits: FMA
//     fuses the multiply-add rounding the scalar kernels perform in two
//     steps. tests/test_isa.cpp bounds the difference (Tier B).
//
// Column treatment mirrors the scalar panel layout: vector panels from
// column 0 (grouped 4-wide for ILP — the grouping does not affect per-lane
// arithmetic), then the scalar kernel's tail loop for the last n mod 8
// (float) / n mod 4 (double) columns.
#pragma once

#include "util/common.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define TURBFNO_HAS_AVX2_KERNELS 1

#include <immintrin.h>

namespace turb::detail::avx2 {

// ---- C-row panel update (gemm_nn / gemm_tn shapes) -------------------------
//
// ci[j] (+)= alpha * Σ_p a_of_p(p) * b[p·ldb + j]; one fused multiply-add
// per (j, p) in ascending-p order.

template <typename AOf>
[[gnu::target("avx2,fma")]] inline void row_panels_f32(
    index_t n, index_t k, float alpha, const AOf& a_of_p, const float* b,
    index_t ldb, float beta, float* ci) {
  index_t j0 = 0;
  for (; j0 + 32 <= n; j0 += 32) {
    float* c0 = ci + j0;
    __m256 acc0, acc1, acc2, acc3;
    if (beta == 0.0f) {
      acc0 = acc1 = acc2 = acc3 = _mm256_setzero_ps();
    } else if (beta == 1.0f) {
      acc0 = _mm256_loadu_ps(c0);
      acc1 = _mm256_loadu_ps(c0 + 8);
      acc2 = _mm256_loadu_ps(c0 + 16);
      acc3 = _mm256_loadu_ps(c0 + 24);
    } else {
      const __m256 vb = _mm256_set1_ps(beta);
      acc0 = _mm256_mul_ps(vb, _mm256_loadu_ps(c0));
      acc1 = _mm256_mul_ps(vb, _mm256_loadu_ps(c0 + 8));
      acc2 = _mm256_mul_ps(vb, _mm256_loadu_ps(c0 + 16));
      acc3 = _mm256_mul_ps(vb, _mm256_loadu_ps(c0 + 24));
    }
    for (index_t p = 0; p < k; ++p) {
      const __m256 va = _mm256_set1_ps(alpha * a_of_p(p));
      const float* bp = b + p * ldb + j0;
      acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bp), acc0);
      acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bp + 8), acc1);
      acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bp + 16), acc2);
      acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bp + 24), acc3);
    }
    _mm256_storeu_ps(c0, acc0);
    _mm256_storeu_ps(c0 + 8, acc1);
    _mm256_storeu_ps(c0 + 16, acc2);
    _mm256_storeu_ps(c0 + 24, acc3);
  }
  for (; j0 + 8 <= n; j0 += 8) {
    float* c0 = ci + j0;
    __m256 acc;
    if (beta == 0.0f) {
      acc = _mm256_setzero_ps();
    } else if (beta == 1.0f) {
      acc = _mm256_loadu_ps(c0);
    } else {
      acc = _mm256_mul_ps(_mm256_set1_ps(beta), _mm256_loadu_ps(c0));
    }
    for (index_t p = 0; p < k; ++p) {
      const __m256 va = _mm256_set1_ps(alpha * a_of_p(p));
      acc = _mm256_fmadd_ps(va, _mm256_loadu_ps(b + p * ldb + j0), acc);
    }
    _mm256_storeu_ps(c0, acc);
  }
  if (j0 < n) {
    // Tail columns: the scalar kernel's in-memory tail loop.
    const index_t tail = n - j0;
    float* ct = ci + j0;
    if (beta == 0.0f) {
      for (index_t j = 0; j < tail; ++j) ct[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (index_t j = 0; j < tail; ++j) ct[j] *= beta;
    }
    for (index_t p = 0; p < k; ++p) {
      const float aip = alpha * a_of_p(p);
      const float* bp = b + p * ldb + j0;
      for (index_t j = 0; j < tail; ++j) ct[j] += aip * bp[j];
    }
  }
}

template <typename AOf>
[[gnu::target("avx2,fma")]] inline void row_panels_f64(
    index_t n, index_t k, double alpha, const AOf& a_of_p, const double* b,
    index_t ldb, double beta, double* ci) {
  index_t j0 = 0;
  for (; j0 + 16 <= n; j0 += 16) {
    double* c0 = ci + j0;
    __m256d acc0, acc1, acc2, acc3;
    if (beta == 0.0) {
      acc0 = acc1 = acc2 = acc3 = _mm256_setzero_pd();
    } else if (beta == 1.0) {
      acc0 = _mm256_loadu_pd(c0);
      acc1 = _mm256_loadu_pd(c0 + 4);
      acc2 = _mm256_loadu_pd(c0 + 8);
      acc3 = _mm256_loadu_pd(c0 + 12);
    } else {
      const __m256d vb = _mm256_set1_pd(beta);
      acc0 = _mm256_mul_pd(vb, _mm256_loadu_pd(c0));
      acc1 = _mm256_mul_pd(vb, _mm256_loadu_pd(c0 + 4));
      acc2 = _mm256_mul_pd(vb, _mm256_loadu_pd(c0 + 8));
      acc3 = _mm256_mul_pd(vb, _mm256_loadu_pd(c0 + 12));
    }
    for (index_t p = 0; p < k; ++p) {
      const __m256d va = _mm256_set1_pd(alpha * a_of_p(p));
      const double* bp = b + p * ldb + j0;
      acc0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(bp), acc0);
      acc1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(bp + 4), acc1);
      acc2 = _mm256_fmadd_pd(va, _mm256_loadu_pd(bp + 8), acc2);
      acc3 = _mm256_fmadd_pd(va, _mm256_loadu_pd(bp + 12), acc3);
    }
    _mm256_storeu_pd(c0, acc0);
    _mm256_storeu_pd(c0 + 4, acc1);
    _mm256_storeu_pd(c0 + 8, acc2);
    _mm256_storeu_pd(c0 + 12, acc3);
  }
  for (; j0 + 4 <= n; j0 += 4) {
    double* c0 = ci + j0;
    __m256d acc;
    if (beta == 0.0) {
      acc = _mm256_setzero_pd();
    } else if (beta == 1.0) {
      acc = _mm256_loadu_pd(c0);
    } else {
      acc = _mm256_mul_pd(_mm256_set1_pd(beta), _mm256_loadu_pd(c0));
    }
    for (index_t p = 0; p < k; ++p) {
      const __m256d va = _mm256_set1_pd(alpha * a_of_p(p));
      acc = _mm256_fmadd_pd(va, _mm256_loadu_pd(b + p * ldb + j0), acc);
    }
    _mm256_storeu_pd(c0, acc);
  }
  if (j0 < n) {
    const index_t tail = n - j0;
    double* ct = ci + j0;
    if (beta == 0.0) {
      for (index_t j = 0; j < tail; ++j) ct[j] = 0.0;
    } else if (beta != 1.0) {
      for (index_t j = 0; j < tail; ++j) ct[j] *= beta;
    }
    for (index_t p = 0; p < k; ++p) {
      const double aip = alpha * a_of_p(p);
      const double* bp = b + p * ldb + j0;
      for (index_t j = 0; j < tail; ++j) ct[j] += aip * bp[j];
    }
  }
}

/// Type-dispatched front door for the row-panel update.
template <typename T, typename AOf>
inline void row_panels(index_t n, index_t k, T alpha, const AOf& a_of_p,
                       const T* b, index_t ldb, T beta, T* ci) {
  if constexpr (sizeof(T) == sizeof(float)) {
    row_panels_f32(n, k, alpha, a_of_p, b, ldb, beta, ci);
  } else {
    row_panels_f64(n, k, alpha, a_of_p, b, ldb, beta, ci);
  }
}

// ---- Dot-product row (gemm_nt shape) ---------------------------------------
//
// ci[j] = alpha · dot(ai, b_j) (+ beta·ci[j]); both operand rows are
// contiguous along k. The dot runs two independent FMA chains over 8-wide
// (float) / 4-wide (double) lanes, folds them in a fixed lane order, then
// adds the scalar remainder — a deterministic order that does not depend on
// threads or the caller, but differs from the scalar kernel's single
// ascending-p chain (Tier B).

[[gnu::target("avx2,fma")]] inline float dot_f32(const float* a,
                                                 const float* b, index_t k) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  index_t p = 0;
  for (; p + 16 <= k; p += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p), _mm256_loadu_ps(b + p),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p + 8),
                           _mm256_loadu_ps(b + p + 8), acc1);
  }
  for (; p + 8 <= k; p += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p), _mm256_loadu_ps(b + p),
                           acc0);
  }
  const __m256 acc = _mm256_add_ps(acc0, acc1);
  const __m128 lo = _mm256_castps256_ps128(acc);
  const __m128 hi = _mm256_extractf128_ps(acc, 1);
  const __m128 s4 = _mm_add_ps(lo, hi);
  const __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
  const __m128 s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0x55));
  float r = _mm_cvtss_f32(s1);
  for (; p < k; ++p) r += a[p] * b[p];
  return r;
}

[[gnu::target("avx2,fma")]] inline double dot_f64(const double* a,
                                                  const double* b, index_t k) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  index_t p = 0;
  for (; p + 8 <= k; p += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + p), _mm256_loadu_pd(b + p),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + p + 4),
                           _mm256_loadu_pd(b + p + 4), acc1);
  }
  for (; p + 4 <= k; p += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + p), _mm256_loadu_pd(b + p),
                           acc0);
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d s2 = _mm_add_pd(lo, hi);
  const __m128d s1 = _mm_add_sd(s2, _mm_unpackhi_pd(s2, s2));
  double r = _mm_cvtsd_f64(s1);
  for (; p < k; ++p) r += a[p] * b[p];
  return r;
}

template <typename T>
inline void nt_row(index_t n, index_t k, T alpha, const T* ai, const T* b,
                   index_t ldb, T beta, T* ci) {
  for (index_t j = 0; j < n; ++j) {
    const T* bj = b + j * ldb;
    T acc;
    if constexpr (sizeof(T) == sizeof(float)) {
      acc = dot_f32(ai, bj, k);
    } else {
      acc = dot_f64(ai, bj, k);
    }
    ci[j] = beta == T{0} ? alpha * acc : alpha * acc + beta * ci[j];
  }
}

}  // namespace turb::detail::avx2

#endif  // x86
