// Dense row-major n-dimensional tensor.
//
// This is the storage type shared by the nn/fno training stack (float), the
// PDE solvers (double), and the FFT module (std::complex). It is deliberately
// minimal: contiguous row-major data, shape/stride bookkeeping, elementwise
// helpers, and reductions. Heavy kernels (GEMM, FFT, spectral contraction)
// operate on raw spans for performance.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <initializer_list>
#include <numeric>
#include <span>
#include <vector>

#include "util/common.hpp"
#include "util/rng.hpp"

namespace turb {

using Shape = std::vector<index_t>;

/// Product of all extents.
inline index_t numel(const Shape& shape) {
  return std::accumulate(shape.begin(), shape.end(), index_t{1},
                         std::multiplies<>());
}

/// Row-major strides for a shape.
inline Shape row_major_strides(const Shape& shape) {
  Shape strides(shape.size());
  index_t acc = 1;
  for (std::size_t i = shape.size(); i-- > 0;) {
    strides[i] = acc;
    acc *= shape[i];
  }
  return strides;
}

template <typename T>
class Tensor {
 public:
  using value_type = T;

  Tensor() = default;

  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        strides_(row_major_strides(shape_)),
        data_(static_cast<std::size_t>(numel(shape_))) {
    for (const index_t d : shape_) TURB_CHECK(d >= 0);
  }

  Tensor(Shape shape, T fill_value) : Tensor(std::move(shape)) {
    std::fill(data_.begin(), data_.end(), fill_value);
  }

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }

  static Tensor full(Shape shape, T value) {
    return Tensor(std::move(shape), value);
  }

  // --- shape -------------------------------------------------------------

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] const Shape& strides() const { return strides_; }
  [[nodiscard]] index_t dim(std::size_t i) const {
    TURB_CHECK(i < shape_.size());
    return shape_[i];
  }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] index_t size() const {
    return static_cast<index_t>(data_.size());
  }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Reshape in place; the element count must be preserved.
  void reshape(Shape shape) {
    TURB_CHECK_MSG(numel(shape) == size(),
                   "reshape " << size() << " elements to incompatible shape");
    shape_ = std::move(shape);
    strides_ = row_major_strides(shape_);
  }

  // --- element access ----------------------------------------------------

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::span<T> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> span() const {
    return {data_.data(), data_.size()};
  }

  T& operator[](index_t flat) { return data_[static_cast<std::size_t>(flat)]; }
  const T& operator[](index_t flat) const {
    return data_[static_cast<std::size_t>(flat)];
  }

  template <typename... Ix>
  T& operator()(Ix... indices) {
    return data_[static_cast<std::size_t>(flat_index(indices...))];
  }

  template <typename... Ix>
  const T& operator()(Ix... indices) const {
    return data_[static_cast<std::size_t>(flat_index(indices...))];
  }

  template <typename... Ix>
  [[nodiscard]] index_t flat_index(Ix... indices) const {
    constexpr std::size_t n = sizeof...(Ix);
    TURB_CHECK_MSG(n == shape_.size(), "indexing rank mismatch");
    const std::array<index_t, n> ix{static_cast<index_t>(indices)...};
    index_t flat = 0;
    for (std::size_t i = 0; i < n; ++i) {
      flat += ix[i] * strides_[i];
    }
    return flat;
  }

  // --- mutation ----------------------------------------------------------

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  void zero() { fill(T{}); }

  /// In-place elementwise scaling.
  Tensor& operator*=(T s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  Tensor& operator+=(const Tensor& other) {
    TURB_CHECK(other.size() == size());
    for (index_t i = 0; i < size(); ++i) data_[i] += other.data_[i];
    return *this;
  }

  Tensor& operator-=(const Tensor& other) {
    TURB_CHECK(other.size() == size());
    for (index_t i = 0; i < size(); ++i) data_[i] -= other.data_[i];
    return *this;
  }

  /// this += alpha * other (axpy).
  void add_scaled(const Tensor& other, T alpha) {
    TURB_CHECK(other.size() == size());
    for (index_t i = 0; i < size(); ++i) data_[i] += alpha * other.data_[i];
  }

  /// Fill with i.i.d. uniform values on [lo, hi).
  void fill_uniform(Rng& rng, double lo, double hi) {
    for (auto& v : data_) v = static_cast<T>(rng.uniform(lo, hi));
  }

  /// Fill with i.i.d. normal values.
  void fill_normal(Rng& rng, double mean, double stddev) {
    for (auto& v : data_) v = static_cast<T>(rng.normal(mean, stddev));
  }

  // --- reductions (real element types) ------------------------------------

  [[nodiscard]] T sum() const {
    return std::accumulate(data_.begin(), data_.end(), T{});
  }

  [[nodiscard]] double mean() const {
    TURB_CHECK(!data_.empty());
    double acc = 0.0;
    for (const auto& v : data_) acc += static_cast<double>(v);
    return acc / static_cast<double>(data_.size());
  }

  /// Squared L2 norm (sum of squares), accumulated in double.
  [[nodiscard]] double squared_norm() const {
    double acc = 0.0;
    for (const auto& v : data_) {
      const double d = static_cast<double>(v);
      acc += d * d;
    }
    return acc;
  }

  [[nodiscard]] double norm() const { return std::sqrt(squared_norm()); }

  [[nodiscard]] double max_abs() const {
    double m = 0.0;
    for (const auto& v : data_) m = std::max(m, std::abs(static_cast<double>(v)));
    return m;
  }

 private:
  Shape shape_;
  Shape strides_;
  std::vector<T> data_;
};

/// Convert element type (e.g. solver double fields → nn float tensors).
template <typename To, typename From>
Tensor<To> cast(const Tensor<From>& src) {
  Tensor<To> out(src.shape());
  for (index_t i = 0; i < src.size(); ++i) {
    out[i] = static_cast<To>(src[i]);
  }
  return out;
}

/// Render a shape like [2, 3, 4] (debugging / error messages).
std::string shape_to_string(const Shape& shape);

using TensorF = Tensor<float>;
using TensorD = Tensor<double>;
using TensorCF = Tensor<std::complex<float>>;
using TensorCD = Tensor<std::complex<double>>;

}  // namespace turb
