#include "tensor/tensor.hpp"

#include <ostream>
#include <sstream>

namespace turb {

/// Render a shape like [2, 3, 4] (debugging / error messages).
std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    os << shape[i] << (i + 1 < shape.size() ? ", " : "");
  }
  os << "]";
  return os.str();
}

}  // namespace turb
