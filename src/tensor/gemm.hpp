// Small dense matrix multiply kernels (row-major).
//
// The nn Linear layers (channel-wise 1×1 convolutions) reduce to GEMMs with
// modest inner dimensions (channel counts 1–256), so a cache-aware loop
// ordering that the compiler can autovectorise is sufficient; there is no
// external BLAS dependency.
//
//   gemm_nn : C = alpha * A   * B   + beta * C   A: m×k, B: k×n, C: m×n
//   gemm_tn : C = alpha * Aᵀ  * B   + beta * C   A: k×m, B: k×n, C: m×n
//   gemm_nt : C = alpha * A   * Bᵀ  + beta * C   A: m×k, B: n×k, C: m×n
//
// The transposed variants are exactly the shapes needed by the backward
// passes (dX = Wᵀ·dY, dW = dY·Xᵀ).
#pragma once

#include "obs/obs.hpp"
#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace turb {

namespace detail {

/// Call/flop accounting shared by the three kernels. Two relaxed atomic adds
/// per GEMM call — noise next to the 2·m·n·k multiply-adds of the call
/// itself, but enough for obs::dump_json to report arithmetic throughput.
inline void count_gemm(index_t m, index_t n, index_t k) {
  static obs::Counter& calls = obs::counter("tensor/gemm_calls");
  static obs::Counter& flops = obs::counter("tensor/gemm_flops");
  calls.add(1);
  flops.add(2 * m * n * k);
}

/// Minimum multiply-add count before a GEMM is worth row-tiling over the
/// pool (below this the dispatch overhead dominates the arithmetic).
inline constexpr index_t kParallelGemmFlops = index_t{1} << 15;

/// Run body(row_begin, row_end) over [0, m), row-tiled on the pool when the
/// call is large enough and not already inside a parallel region (nested
/// calls — e.g. the per-sample GEMMs of a batch-parallel layer — run
/// serially). Every C row is produced by exactly one task with an unchanged
/// inner-loop order, so the result is bitwise identical to the serial kernel
/// at every thread count.
template <typename Body>
inline void gemm_rows(index_t m, index_t n, index_t k, const Body& body) {
  if (m >= 2 && m * n * k >= kParallelGemmFlops &&
      !ThreadPool::in_parallel_region()) {
    parallel_for_chunked(0, m, body);
  } else {
    body(0, m);
  }
}

}  // namespace detail

template <typename T>
void gemm_nn(index_t m, index_t n, index_t k, T alpha, const T* a, index_t lda,
             const T* b, index_t ldb, T beta, T* c, index_t ldc) {
  detail::count_gemm(m, n, k);
  detail::gemm_rows(m, n, k, [=](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
      T* ci = c + i * ldc;
      if (beta == T{0}) {
        for (index_t j = 0; j < n; ++j) ci[j] = T{0};
      } else if (beta != T{1}) {
        for (index_t j = 0; j < n; ++j) ci[j] *= beta;
      }
      const T* ai = a + i * lda;
      for (index_t p = 0; p < k; ++p) {
        const T aip = alpha * ai[p];
        const T* bp = b + p * ldb;
        for (index_t j = 0; j < n; ++j) {
          ci[j] += aip * bp[j];
        }
      }
    }
  });
}

template <typename T>
void gemm_tn(index_t m, index_t n, index_t k, T alpha, const T* a, index_t lda,
             const T* b, index_t ldb, T beta, T* c, index_t ldc) {
  detail::count_gemm(m, n, k);
  detail::gemm_rows(m, n, k, [=](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
      T* ci = c + i * ldc;
      if (beta == T{0}) {
        for (index_t j = 0; j < n; ++j) ci[j] = T{0};
      } else if (beta != T{1}) {
        for (index_t j = 0; j < n; ++j) ci[j] *= beta;
      }
      for (index_t p = 0; p < k; ++p) {
        const T aip = alpha * a[p * lda + i];  // Aᵀ[i,p]
        const T* bp = b + p * ldb;
        for (index_t j = 0; j < n; ++j) {
          ci[j] += aip * bp[j];
        }
      }
    }
  });
}

template <typename T>
void gemm_nt(index_t m, index_t n, index_t k, T alpha, const T* a, index_t lda,
             const T* b, index_t ldb, T beta, T* c, index_t ldc) {
  detail::count_gemm(m, n, k);
  detail::gemm_rows(m, n, k, [=](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
      const T* ai = a + i * lda;
      T* ci = c + i * ldc;
      for (index_t j = 0; j < n; ++j) {
        const T* bj = b + j * ldb;
        T acc{};
        for (index_t p = 0; p < k; ++p) {
          acc += ai[p] * bj[p];
        }
        ci[j] = alpha * acc + (beta == T{0} ? T{0} : beta * ci[j]);
      }
    }
  });
}

}  // namespace turb
