// Small dense matrix multiply kernels (row-major).
//
// The nn Linear layers (channel-wise 1×1 convolutions) reduce to GEMMs with
// modest inner dimensions (channel counts 1–256), so cache-aware loop
// orderings the compiler can autovectorise are sufficient; there is no
// external BLAS dependency.
//
//   gemm_nn : C = alpha * A   * B   + beta * C   A: m×k, B: k×n, C: m×n
//   gemm_tn : C = alpha * Aᵀ  * B   + beta * C   A: k×m, B: k×n, C: m×n
//   gemm_nt : C = alpha * A   * Bᵀ  + beta * C   A: m×k, B: n×k, C: m×n
//
// The transposed variants are exactly the shapes needed by the backward
// passes (dX = Wᵀ·dY, dW = dY·Xᵀ).
//
// gemm_nn/gemm_tn use a register-tiled panel kernel: each C row is produced
// in j-blocks of kPanel accumulators that live in registers across the whole
// k loop (one load + one store per C element instead of one load/store per
// k step). The k loop is unrolled by two with a single accumulator per
// element, so every C element still sees the multiply-adds in ascending-k
// order — the tiling changes instruction scheduling, not the rounding
// sequence, which keeps results bitwise identical to the scalar kernel and
// preserves the thread-count determinism contract.
//
// All three entry points dispatch per call on util::active_isa(): the scalar
// panel kernels above are the reference (and the only implementation off
// x86), the AVX2/FMA kernels in tensor/gemm_avx2.hpp the fast path. Dispatch
// sits inside the shared kernel, below the gemm_rows work partition, so the
// Tier A per-ISA bitwise contract (util/isa.hpp) holds at every thread count
// and for every caller, training and inference engine alike.
#pragma once

#include "obs/obs.hpp"
#include "tensor/gemm_avx2.hpp"
#include "util/common.hpp"
#include "util/isa.hpp"
#include "util/thread_pool.hpp"

namespace turb {

namespace detail {

/// Call/flop accounting shared by the three kernels. Two relaxed atomic adds
/// per GEMM call — noise next to the 2·m·n·k multiply-adds of the call
/// itself, but enough for obs::dump_json to report arithmetic throughput.
inline void count_gemm(index_t m, index_t n, index_t k) {
  static obs::Counter& calls = obs::counter("tensor/gemm_calls");
  static obs::Counter& flops = obs::counter("tensor/gemm_flops");
  calls.add(1);
  flops.add(2 * m * n * k);
}

/// Minimum multiply-add count before a GEMM is worth row-tiling over the
/// pool (below this the dispatch overhead dominates the arithmetic).
inline constexpr index_t kParallelGemmFlops = index_t{1} << 15;

/// Per-call ISA dispatch: resolves the active ISA, bumps the per-family
/// counter, and reports whether the AVX2 kernels should run (never true on
/// builds without them).
inline bool gemm_dispatch_avx2() {
  const util::Isa isa = util::active_isa();
  util::gemm_dispatch_counter(isa).add(1);
#if defined(TURBFNO_HAS_AVX2_KERNELS)
  return isa == util::Isa::kAvx2;
#else
  return false;
#endif
}

/// Register-tile width of the panel kernels: 8 floats fill one 256-bit
/// vector (two for doubles), small enough that the accumulators plus the
/// broadcast A value stay in registers on any x86-64 / aarch64 target.
inline constexpr index_t kPanel = 8;

/// Run body(row_begin, row_end) over [0, m), row-tiled on the pool when the
/// call is large enough and not already inside a parallel region (nested
/// calls — e.g. the per-sample GEMMs of a batch-parallel layer — run
/// serially). Every C row is produced by exactly one task with an unchanged
/// inner-loop order, so the result is bitwise identical to the serial kernel
/// at every thread count.
template <typename Body>
inline void gemm_rows(index_t m, index_t n, index_t k, const Body& body) {
  if (m >= 2 && m * n * k >= kParallelGemmFlops &&
      !ThreadPool::in_parallel_region()) {
    parallel_for_chunked(0, m, body);
  } else {
    body(0, m);
  }
}

/// One row of C updated as c[j] (+)= alpha * Σ_p a_of_p(p) * b[p*ldb + j],
/// j-blocked into kPanel-wide register tiles. `a_of_p` abstracts the A
/// access pattern (contiguous row for gemm_nn, strided column for gemm_tn).
template <typename T, typename AOf>
inline void gemm_row_panels(index_t n, index_t k, T alpha, const AOf& a_of_p,
                            const T* b, index_t ldb, T beta, T* ci) {
  index_t j0 = 0;
  for (; j0 + kPanel <= n; j0 += kPanel) {
    T acc[kPanel];
    if (beta == T{0}) {
      for (index_t r = 0; r < kPanel; ++r) acc[r] = T{0};
    } else if (beta == T{1}) {
      for (index_t r = 0; r < kPanel; ++r) acc[r] = ci[j0 + r];
    } else {
      for (index_t r = 0; r < kPanel; ++r) acc[r] = beta * ci[j0 + r];
    }
    index_t p = 0;
    for (; p + 2 <= k; p += 2) {
      const T a0 = alpha * a_of_p(p);
      const T a1 = alpha * a_of_p(p + 1);
      const T* b0 = b + p * ldb + j0;
      const T* b1 = b0 + ldb;
      for (index_t r = 0; r < kPanel; ++r) {
        // Two sequential adds per accumulator — ascending-k order, exactly
        // the rounding sequence of the unblocked loop.
        acc[r] += a0 * b0[r];
        acc[r] += a1 * b1[r];
      }
    }
    for (; p < k; ++p) {
      const T aip = alpha * a_of_p(p);
      const T* bp = b + p * ldb + j0;
      for (index_t r = 0; r < kPanel; ++r) acc[r] += aip * bp[r];
    }
    for (index_t r = 0; r < kPanel; ++r) ci[j0 + r] = acc[r];
  }
  if (j0 < n) {
    // Tail columns: the original in-memory kernel (same per-element order).
    const index_t tail = n - j0;
    T* ct = ci + j0;
    if (beta == T{0}) {
      for (index_t j = 0; j < tail; ++j) ct[j] = T{0};
    } else if (beta != T{1}) {
      for (index_t j = 0; j < tail; ++j) ct[j] *= beta;
    }
    for (index_t p = 0; p < k; ++p) {
      const T aip = alpha * a_of_p(p);
      const T* bp = b + p * ldb + j0;
      for (index_t j = 0; j < tail; ++j) ct[j] += aip * bp[j];
    }
  }
}

}  // namespace detail

template <typename T>
void gemm_nn(index_t m, index_t n, index_t k, T alpha, const T* a, index_t lda,
             const T* b, index_t ldb, T beta, T* c, index_t ldc) {
  detail::count_gemm(m, n, k);
  const bool use_avx2 = detail::gemm_dispatch_avx2();
  detail::gemm_rows(m, n, k, [=](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
      const T* ai = a + i * lda;
      const auto a_of_p = [ai](index_t p) { return ai[p]; };
#if defined(TURBFNO_HAS_AVX2_KERNELS)
      if (use_avx2) {
        detail::avx2::row_panels(n, k, alpha, a_of_p, b, ldb, beta,
                                 c + i * ldc);
        continue;
      }
#else
      (void)use_avx2;
#endif
      detail::gemm_row_panels(n, k, alpha, a_of_p, b, ldb, beta, c + i * ldc);
    }
  });
}

template <typename T>
void gemm_tn(index_t m, index_t n, index_t k, T alpha, const T* a, index_t lda,
             const T* b, index_t ldb, T beta, T* c, index_t ldc) {
  detail::count_gemm(m, n, k);
  const bool use_avx2 = detail::gemm_dispatch_avx2();
  detail::gemm_rows(m, n, k, [=](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
      const auto a_of_p = [a, lda, i](index_t p) { return a[p * lda + i]; };
#if defined(TURBFNO_HAS_AVX2_KERNELS)
      if (use_avx2) {
        detail::avx2::row_panels(n, k, alpha, a_of_p, b, ldb, beta,
                                 c + i * ldc);
        continue;
      }
#else
      (void)use_avx2;
#endif
      detail::gemm_row_panels(n, k, alpha, a_of_p, b, ldb, beta, c + i * ldc);
    }
  });
}

namespace detail {

/// One row of the nt kernel, j-blocked into kPanel-wide register tiles.
/// Each accumulator collects the raw dot product Σ_p a[p]·b[(j0+r)·ldb+p]
/// in ascending-p order (unrolled by two, single accumulator per element)
/// and alpha/beta are applied once at the end — the exact per-element
/// operation order of the scalar loop below it, so the tiled and scalar
/// kernels are bitwise identical.
template <typename T>
inline void gemm_nt_row_panels(index_t n, index_t k, T alpha, const T* ai,
                               const T* b, index_t ldb, T beta, T* ci) {
  index_t j0 = 0;
  for (; j0 + kPanel <= n; j0 += kPanel) {
    T acc[kPanel];
    for (index_t r = 0; r < kPanel; ++r) acc[r] = T{0};
    index_t p = 0;
    for (; p + 2 <= k; p += 2) {
      const T a0 = ai[p];
      const T a1 = ai[p + 1];
      for (index_t r = 0; r < kPanel; ++r) {
        const T* bj = b + (j0 + r) * ldb;
        acc[r] += a0 * bj[p];
        acc[r] += a1 * bj[p + 1];
      }
    }
    for (; p < k; ++p) {
      const T a0 = ai[p];
      for (index_t r = 0; r < kPanel; ++r) acc[r] += a0 * b[(j0 + r) * ldb + p];
    }
    if (beta == T{0}) {
      for (index_t r = 0; r < kPanel; ++r) ci[j0 + r] = alpha * acc[r];
    } else {
      for (index_t r = 0; r < kPanel; ++r) {
        ci[j0 + r] = alpha * acc[r] + beta * ci[j0 + r];
      }
    }
  }
  // Tail columns: the original scalar kernel (same per-element order).
  if (beta == T{0}) {
    for (index_t j = j0; j < n; ++j) {
      const T* bj = b + j * ldb;
      T acc{};
      for (index_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = alpha * acc;
    }
  } else {
    for (index_t j = j0; j < n; ++j) {
      const T* bj = b + j * ldb;
      T acc{};
      for (index_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = alpha * acc + beta * ci[j];
    }
  }
}

}  // namespace detail

template <typename T>
void gemm_nt(index_t m, index_t n, index_t k, T alpha, const T* a, index_t lda,
             const T* b, index_t ldb, T beta, T* c, index_t ldc) {
  detail::count_gemm(m, n, k);
  const bool use_avx2 = detail::gemm_dispatch_avx2();
  detail::gemm_rows(m, n, k, [=](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
#if defined(TURBFNO_HAS_AVX2_KERNELS)
      if (use_avx2) {
        detail::avx2::nt_row(n, k, alpha, a + i * lda, b, ldb, beta,
                             c + i * ldc);
        continue;
      }
#else
      (void)use_avx2;
#endif
      detail::gemm_nt_row_panels(n, k, alpha, a + i * lda, b, ldb, beta,
                                 c + i * ldc);
    }
  });
}

}  // namespace turb
