#include "util/isa.hpp"

#include <cstdlib>

#include "util/common.hpp"

namespace turb::util {

bool cpu_supports_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Isa parse_isa(const std::string& spec) {
  if (spec == "scalar") return Isa::kScalar;
  if (spec == "avx2") {
    TURB_CHECK_MSG(cpu_supports_avx2(),
                   "TURBFNO_ISA=avx2 requested but this CPU/build has no "
                   "AVX2+FMA support");
    return Isa::kAvx2;
  }
  TURB_CHECK_MSG(spec == "auto" || spec.empty(),
                 "unknown ISA '" << spec << "' (want auto|scalar|avx2)");
  return cpu_supports_avx2() ? Isa::kAvx2 : Isa::kScalar;
}

const char* isa_name(Isa isa) noexcept {
  return isa == Isa::kAvx2 ? "avx2" : "scalar";
}

namespace detail {

std::atomic<int> g_active_isa{-1};

namespace {

void publish(Isa isa) {
  obs::gauge("isa/active").set(static_cast<double>(static_cast<int>(isa)));
}

}  // namespace

Isa resolve_isa() {
  const char* env = std::getenv("TURBFNO_ISA");
  const Isa isa = parse_isa(env == nullptr ? std::string("auto") : env);
  // Last resolution wins if two threads race here — both compute the same
  // value (the env cannot change mid-race), so the store is idempotent.
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  publish(isa);
  return isa;
}

}  // namespace detail

void set_active_isa(Isa isa) {
  TURB_CHECK_MSG(isa != Isa::kAvx2 || cpu_supports_avx2(),
                 "set_active_isa(avx2) on a CPU/build without AVX2+FMA");
  detail::g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  detail::publish(isa);
}

ScopedIsa::ScopedIsa(Isa isa)
    : previous_(detail::g_active_isa.load(std::memory_order_relaxed)) {
  set_active_isa(isa);
}

ScopedIsa::~ScopedIsa() {
  detail::g_active_isa.store(previous_, std::memory_order_relaxed);
  if (previous_ >= 0) detail::publish(static_cast<Isa>(previous_));
}

obs::Counter& gemm_dispatch_counter(Isa isa) {
  static obs::Counter& scalar = obs::counter("isa/gemm_dispatch_scalar");
  static obs::Counter& avx2 = obs::counter("isa/gemm_dispatch_avx2");
  return isa == Isa::kAvx2 ? avx2 : scalar;
}

obs::Counter& fft_dispatch_counter(Isa isa) {
  static obs::Counter& scalar = obs::counter("isa/fft_dispatch_scalar");
  static obs::Counter& avx2 = obs::counter("isa/fft_dispatch_avx2");
  return isa == Isa::kAvx2 ? avx2 : scalar;
}

}  // namespace turb::util
