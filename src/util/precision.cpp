#include "util/precision.hpp"

#include "util/isa.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define TURBFNO_HAS_AVX2_PRECISION 1
#include <immintrin.h>
#endif

namespace turb::util {

const char* precision_name(Precision p) noexcept {
  switch (p) {
    case Precision::kFp32: return "fp32";
    case Precision::kBf16: return "bf16";
    case Precision::kFp16: return "fp16";
  }
  return "?";
}

Precision parse_precision(const std::string& spec) {
  if (spec == "fp32") return Precision::kFp32;
  if (spec == "bf16") return Precision::kBf16;
  if (spec == "fp16") return Precision::kFp16;
  TURB_CHECK_MSG(false, "unknown precision '" << spec
                        << "' (expected fp32 | bf16 | fp16)");
  return Precision::kFp32;  // unreachable
}

std::uint16_t float_to_fp16(float v) noexcept {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(v);
  const auto sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  const std::uint32_t abs = x & 0x7FFFFFFFu;
  if (abs >= 0x7F800000u) {  // inf / NaN (NaNs quieted)
    const auto man = static_cast<std::uint16_t>(
        (abs & 0x007FFFFFu) != 0u ? 0x0200u : 0u);
    return static_cast<std::uint16_t>(sign | 0x7C00u | man);
  }
  // 65520 = halfway between fp16 max (65504) and 2¹⁶; RNE sends it (and
  // everything above) to ±inf.
  if (abs >= 0x477FF000u) return static_cast<std::uint16_t>(sign | 0x7C00u);
  if (abs >= 0x38800000u) {  // normal fp16 range
    const std::uint32_t mant = abs & 0x007FFFFFu;
    const std::uint32_t exp = (abs >> 23) - 112u;  // rebias 127 → 15
    std::uint32_t h = (exp << 10) | (mant >> 13);
    const std::uint32_t rem = mant & 0x1FFFu;
    // Round to nearest even on the 13 dropped bits; a carry propagating into
    // the exponent is correct because adjacent binades are contiguous.
    h += static_cast<std::uint32_t>((rem > 0x1000u) ||
                                    (rem == 0x1000u && (h & 1u) != 0u));
    return static_cast<std::uint16_t>(sign | h);
  }
  if (abs < 0x33000000u) return sign;  // below 2⁻²⁵: underflows to ±0
  // Subnormal: h = round(mant24 · 2^(e-126)) in units of 2⁻²⁴.
  const std::uint32_t mant = (abs & 0x007FFFFFu) | 0x00800000u;
  const std::uint32_t shift = 126u - (abs >> 23);  // 14..24
  std::uint32_t h = mant >> shift;
  const std::uint32_t rembits = mant & ((1u << shift) - 1u);
  const std::uint32_t halfway = 1u << (shift - 1u);
  h += static_cast<std::uint32_t>((rembits > halfway) ||
                                  (rembits == halfway && (h & 1u) != 0u));
  return static_cast<std::uint16_t>(sign | h);
}

namespace {

void compress_bf16_scalar(const float* src, std::uint16_t* dst,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = float_to_bf16(src[i]);
}

void decompress_bf16_scalar(const std::uint16_t* src, float* dst,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = bf16_to_float(src[i]);
}

#ifdef TURBFNO_HAS_AVX2_PRECISION

// Vector bf16 paths: the same integer round-to-nearest-even (and NaN
// quieting) as the scalar helpers, eight lanes at a time — bit-identical
// output, so compressed payloads never depend on the dispatch tier.

[[gnu::target("avx2")]] void compress_bf16_avx2(const float* src,
                                                std::uint16_t* dst,
                                                std::size_t n) {
  std::size_t i = 0;
  const __m256i exp_mask = _mm256_set1_epi32(0x7F800000);
  const __m256i man_mask = _mm256_set1_epi32(0x007FFFFF);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i quiet = _mm256_set1_epi32(0x0040);
  const __m256i bias = _mm256_set1_epi32(0x7FFF);
  const __m256i one = _mm256_set1_epi32(1);
  for (; i + 8 <= n; i += 8) {
    const __m256i x = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(src + i));
    // NaN lanes: exponent all ones and mantissa non-zero.
    const __m256i is_exp_ones =
        _mm256_cmpeq_epi32(_mm256_and_si256(x, exp_mask), exp_mask);
    const __m256i man_nonzero = _mm256_xor_si256(
        _mm256_cmpeq_epi32(_mm256_and_si256(x, man_mask), zero),
        _mm256_set1_epi32(-1));
    const __m256i is_nan = _mm256_and_si256(is_exp_ones, man_nonzero);
    const __m256i hi = _mm256_srli_epi32(x, 16);
    const __m256i nan16 = _mm256_or_si256(hi, quiet);
    const __m256i rounded = _mm256_srli_epi32(
        _mm256_add_epi32(
            _mm256_add_epi32(x, bias), _mm256_and_si256(hi, one)),
        16);
    const __m256i r = _mm256_blendv_epi8(rounded, nan16, is_nan);
    // Narrow 8×u32 → 8×u16 (values fit in 16 bits, so packus is exact).
    const __m256i packed = _mm256_packus_epi32(r, r);
    const __m256i lanes = _mm256_permute4x64_epi64(packed, 0x08);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm256_castsi256_si128(lanes));
  }
  compress_bf16_scalar(src + i, dst + i, n - i);
}

[[gnu::target("avx2")]] void decompress_bf16_avx2(const std::uint16_t* src,
                                                  float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src + i));
    const __m256i wide = _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), wide);
  }
  decompress_bf16_scalar(src + i, dst + i, n - i);
}

#endif  // TURBFNO_HAS_AVX2_PRECISION

}  // namespace

void compress_floats(const float* src, std::uint16_t* dst, std::size_t n,
                     Precision p) {
  TURB_CHECK_MSG(p != Precision::kFp32,
                 "compress_floats: fp32 payloads are not stored as uint16");
  if (p == Precision::kBf16) {
#ifdef TURBFNO_HAS_AVX2_PRECISION
    if (active_isa() == Isa::kAvx2) {
      compress_bf16_avx2(src, dst, n);
      return;
    }
#endif
    compress_bf16_scalar(src, dst, n);
    return;
  }
  // fp16: scalar only — the conversion is exercised at plan/checkpoint time,
  // never per forward, so a vector path buys nothing.
  for (std::size_t i = 0; i < n; ++i) dst[i] = float_to_fp16(src[i]);
}

void decompress_floats(const std::uint16_t* src, float* dst, std::size_t n,
                       Precision p) {
  TURB_CHECK_MSG(p != Precision::kFp32,
                 "decompress_floats: fp32 payloads are not stored as uint16");
  if (p == Precision::kBf16) {
#ifdef TURBFNO_HAS_AVX2_PRECISION
    if (active_isa() == Isa::kAvx2) {
      decompress_bf16_avx2(src, dst, n);
      return;
    }
#endif
    decompress_bf16_scalar(src, dst, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) dst[i] = fp16_to_float(src[i]);
}

void quantize_floats(float* data, std::size_t n, Precision p) {
  if (p == Precision::kFp32) return;
  if (p == Precision::kBf16) {
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = bf16_to_float(float_to_bf16(data[i]));
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = fp16_to_float(float_to_fp16(data[i]));
    }
  }
}

}  // namespace turb::util
