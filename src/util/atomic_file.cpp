#include "util/atomic_file.hpp"

#include <cstdio>

#include "util/common.hpp"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace turb::util {

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(tmp_path_for(path_)) {
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  TURB_CHECK_MSG(file_ != nullptr,
                 "cannot open " << tmp_path_ << " for writing");
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) {
    if (file_ != nullptr) std::fclose(file_);
    std::remove(tmp_path_.c_str());
  }
}

void AtomicFileWriter::write(const void* data, std::size_t n) {
  TURB_CHECK_MSG(file_ != nullptr, "write after commit on " << tmp_path_);
  if (n == 0) return;
  TURB_CHECK_MSG(std::fwrite(data, 1, n, file_) == n,
                 "write failed for " << tmp_path_);
}

void AtomicFileWriter::commit() {
  TURB_CHECK_MSG(file_ != nullptr && !committed_,
                 "double commit on " << tmp_path_);
  bool ok = std::fflush(file_) == 0;
#ifndef _WIN32
  ok = ok && fsync(fileno(file_)) == 0;
#endif
  ok = std::fclose(file_) == 0 && ok;
  file_ = nullptr;
  if (!ok || std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    committed_ = true;  // nothing left to clean up in the destructor
    TURB_CHECK_MSG(false, "atomic commit failed for " << path_);
  }
  committed_ = true;
}

}  // namespace turb::util
