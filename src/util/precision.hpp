// Reduced-precision storage formats for the weight-compressed serving path.
//
// Training is fp32 everywhere; at engine plan time the spectral (and
// factorized) weights can be compressed to bf16 or fp16 and widened back to
// fp32 inside the contraction inner loop. This file owns the storage-format
// definitions and conversions:
//
//   * bf16 — the top 16 bits of an IEEE fp32 (8 exponent / 7 mantissa bits),
//     compressed with round-to-nearest-even on the dropped 16 bits and
//     widened by a single left shift. ~2.8 decimal digits; relative error
//     per weight ≤ 2⁻⁸.
//   * fp16 — IEEE binary16 (5 exponent / 10 mantissa bits), software
//     converted (F16C is not assumed) with round-to-nearest-even,
//     gradual underflow, and overflow to ±inf. Relative error per normal
//     weight ≤ 2⁻¹¹, but dynamic range is only ±65504.
//
// Both conversions are exact, deterministic bit manipulations — identical
// results on every ISA tier — so compressed engines keep Tier A (bitwise
// within a fixed ISA) determinism; only the fp32 ↔ compressed comparison is
// error-bounded (DESIGN.md "Precision tiers").
//
// The bulk entry points dispatch on util::active_isa(): bf16 has AVX2
// vector paths (bit-identical to the scalar ones — the rounding is integer
// arithmetic), fp16's scalar conversion runs everywhere (it is plan-time
// only, never on the per-forward hot path).
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "util/common.hpp"

namespace turb::util {

/// Storage precision of engine-prepacked weights. kFp32 is the bitwise
/// serving tier; kBf16/kFp16 trade bounded relative error for a halved
/// weight working set.
enum class Precision : int { kFp32 = 0, kBf16 = 1, kFp16 = 2 };

[[nodiscard]] const char* precision_name(Precision p) noexcept;

/// Parse "fp32" | "bf16" | "fp16" (throws CheckError on anything else).
[[nodiscard]] Precision parse_precision(const std::string& spec);

/// fp32 → bf16 with round-to-nearest-even; NaNs are quieted, infinities and
/// zeros pass through exactly.
[[nodiscard]] inline std::uint16_t float_to_bf16(float v) noexcept {
  std::uint32_t x = std::bit_cast<std::uint32_t>(v);
  if ((x & 0x7F800000u) == 0x7F800000u && (x & 0x007FFFFFu) != 0u) {
    return static_cast<std::uint16_t>((x >> 16) | 0x0040u);  // quiet the NaN
  }
  x += 0x7FFFu + ((x >> 16) & 1u);
  return static_cast<std::uint16_t>(x >> 16);
}

[[nodiscard]] inline float bf16_to_float(std::uint16_t b) noexcept {
  return std::bit_cast<float>(static_cast<std::uint32_t>(b) << 16);
}

/// fp32 → IEEE binary16 with round-to-nearest-even, gradual underflow, and
/// overflow to ±inf; NaNs are quieted.
[[nodiscard]] std::uint16_t float_to_fp16(float v) noexcept;

/// IEEE binary16 → fp32, exact (every fp16 value is representable). Inline:
/// this is the widening the compressed contraction runs per weight element.
[[nodiscard]] inline float fp16_to_float(std::uint16_t h) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  std::uint32_t exp = (h >> 10) & 0x1Fu;
  std::uint32_t man = h & 0x03FFu;
  std::uint32_t bits;
  if (exp == 0u) {
    if (man == 0u) {
      bits = sign;  // ±0
    } else {
      // Subnormal: renormalise the mantissa into fp32's hidden-bit form.
      int shift = 0;
      while ((man & 0x0400u) == 0u) {
        man <<= 1;
        ++shift;
      }
      man &= 0x03FFu;
      bits = sign |
             ((static_cast<std::uint32_t>(127 - 15 - shift)) << 23) |
             (man << 13);
    }
  } else if (exp == 31u) {
    bits = sign | 0x7F800000u | (man << 13);  // inf / NaN
  } else {
    bits = sign | ((exp - 15u + 127u) << 23) | (man << 13);
  }
  return std::bit_cast<float>(bits);
}

/// Widen one stored element back to fp32 (kFp32 is invalid here — fp32
/// payloads are never stored as uint16).
[[nodiscard]] inline float widen(std::uint16_t v, Precision p) noexcept {
  return p == Precision::kBf16 ? bf16_to_float(v) : fp16_to_float(v);
}

/// Bulk fp32 → compressed. Dispatches on util::active_isa(); every tier
/// produces identical bytes (the rounding is exact integer arithmetic).
void compress_floats(const float* src, std::uint16_t* dst, std::size_t n,
                     Precision p);

/// Bulk compressed → fp32 (exact widening).
void decompress_floats(const std::uint16_t* src, float* dst, std::size_t n,
                       Precision p);

/// Round-trip fp32 → compressed → fp32 in place: the values an engine or
/// checkpoint at precision `p` will actually serve. No-op for kFp32.
void quantize_floats(float* data, std::size_t n, Precision p);

}  // namespace turb::util
