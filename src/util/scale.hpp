// Benchmark scale selection.
//
// The paper's experiments ran on 256² grids, 5000-sample datasets, and an
// A6000 GPU. The default `ci` scale shrinks grids/ensembles/epochs so every
// bench completes on a single CPU core in O(minute); `TURBFNO_SCALE=paper`
// restores paper-scale parameters for users with the hardware budget.
#pragma once

#include <string>

namespace turb {

enum class BenchScale {
  kCi,     ///< small grids, tiny ensembles — minutes on one CPU core
  kFull,   ///< intermediate (overnight CPU)
  kPaper,  ///< parameters as published
};

/// Read TURBFNO_SCALE (ci | full | paper); defaults to ci.
BenchScale bench_scale();

/// Human-readable name of the active scale.
std::string bench_scale_name();

}  // namespace turb
