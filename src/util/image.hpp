// PPM/PGM image emission for visualising scalar fields (vorticity maps).
#pragma once

#include <span>
#include <string>

namespace turb {

/// Write a grayscale PGM (P5) image; values are min-max normalised.
void write_pgm(const std::string& path, std::span<const double> field,
               int height, int width);

/// Write a color PPM (P6) using a blue-white-red diverging colormap centred
/// at zero (symmetric range ±max|field|), the conventional rendering for
/// vorticity fields.
void write_ppm_diverging(const std::string& path,
                         std::span<const double> field, int height, int width);

}  // namespace turb
