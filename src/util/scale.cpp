#include "util/scale.hpp"

#include <cstdlib>

namespace turb {

BenchScale bench_scale() {
  const char* env = std::getenv("TURBFNO_SCALE");
  if (env == nullptr) return BenchScale::kCi;
  const std::string s(env);
  if (s == "paper") return BenchScale::kPaper;
  if (s == "full") return BenchScale::kFull;
  return BenchScale::kCi;
}

std::string bench_scale_name() {
  switch (bench_scale()) {
    case BenchScale::kPaper:
      return "paper";
    case BenchScale::kFull:
      return "full";
    case BenchScale::kCi:
      break;
  }
  return "ci";
}

}  // namespace turb
