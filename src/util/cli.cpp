#include "util/cli.hpp"

#include <cstdlib>

#include "obs/obs.hpp"
#include "util/common.hpp"
#include "util/isa.hpp"
#include "util/thread_pool.hpp"

namespace turb {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "true";  // bare flag
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  return options_.count(key) > 0;
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

long CliArgs::get_int(const std::string& key, long fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  TURB_CHECK_MSG(end != it->second.c_str(), "not an integer: --" << key);
  return v;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  TURB_CHECK_MSG(end != it->second.c_str(), "not a number: --" << key);
  return v;
}

namespace {

ServeRuntimeOptions g_serve_options;

}  // namespace

const ServeRuntimeOptions& serve_runtime_options() { return g_serve_options; }

void apply_runtime_flags(const CliArgs& args) {
  if (args.has("threads")) {
    const long threads = args.get_int("threads", 0);
    TURB_CHECK_MSG(threads >= 1, "--threads must be >= 1, got " << threads);
    set_global_threads(static_cast<std::size_t>(threads));
  }
  if (args.has("isa")) {
    util::set_active_isa(util::parse_isa(args.get("isa", "auto")));
  }
  const std::string metrics = args.get("metrics-out", "");
  if (!metrics.empty()) obs::dump_json_at_exit(metrics);

  const auto serve_knob = [&args](const char* key, long* slot) {
    if (!args.has(key)) return;
    const long v = args.get_int(key, 0);
    TURB_CHECK_MSG(v >= 1, "--" << key << " must be >= 1, got " << v);
    *slot = v;
  };
  serve_knob("serve-max-sessions", &g_serve_options.max_sessions);
  serve_knob("serve-queue-cap", &g_serve_options.queue_capacity);
  serve_knob("serve-batch-window", &g_serve_options.batch_window);
  serve_knob("serve-ensemble-k", &g_serve_options.ensemble_k);

  // Precision: flag wins, TURBFNO_PRECISION env is the fallback. Validation
  // (the fp32|bf16|fp16 vocabulary) happens at parse time in ServeConfig so
  // a typo fails loudly where the engine is built, not silently here.
  if (args.has("serve-precision")) {
    g_serve_options.precision = args.get("serve-precision", "fp32");
  } else if (const char* env = std::getenv("TURBFNO_PRECISION")) {
    if (env[0] != '\0') g_serve_options.precision = env;
  }
}

bool CliArgs::get_flag(const std::string& key, bool fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes" ||
         it->second == "on";
}

}  // namespace turb
