// CSV / aligned-table emission for bench harnesses.
//
// Every bench prints the series a paper figure plots as a CSV block wrapped
// in `# begin-csv <name>` / `# end-csv` markers so downstream tooling can
// extract and plot them.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace turb {

/// Column-oriented numeric table with string row labels.
class SeriesTable {
 public:
  explicit SeriesTable(std::string name) : name_(std::move(name)) {}

  /// Define columns before adding rows.
  void set_columns(std::vector<std::string> columns);

  /// Append a data row (must match column count; label column optional).
  void add_row(const std::vector<double>& values);
  void add_row(const std::string& label, const std::vector<double>& values);

  /// Emit `# begin-csv <name>` ... CSV ... `# end-csv` to the stream.
  void print_csv(std::ostream& os) const;

  /// Emit an aligned human-readable table.
  void print_pretty(std::ostream& os) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  struct Row {
    std::string label;
    std::vector<double> values;
  };
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
  bool has_labels_ = false;
};

}  // namespace turb
