// Runtime ISA dispatch for the hand-vectorized microkernels.
//
// The library ships two implementations of every hot kernel family (the GEMM
// register panels in tensor/gemm.hpp, the radix-2 c2c butterflies in
// fft/plan.hpp, and the rfft/irfft unpack in fft/real.hpp):
//
//   * scalar — the portable C++ kernels, unchanged from before this layer
//     existed. Always available, and the reference the determinism fixture
//     dumps are pinned to (see tests/test_determinism.cpp).
//   * avx2   — explicit AVX2/FMA intrinsics, compiled with per-function
//     target attributes so the translation units themselves stay portable.
//
// The choice is process-wide and resolved once, at the first dispatched
// kernel call, from the TURBFNO_ISA environment variable
// (auto | scalar | avx2; auto picks avx2 when CPUID reports AVX2+FMA) or an
// earlier set_active_isa() call (the --isa runtime flag). Forcing avx2 on a
// CPU without it is an error, not a silent downgrade.
//
// Determinism contract (DESIGN.md "Determinism tiers"):
//
//   Tier A (bitwise, per ISA) — with the ISA fixed, every kernel is bitwise
//     deterministic across thread counts and across the training vs.
//     inference engine paths: dispatch happens inside the one shared kernel
//     instantiation, below the row/line work partition, so the partition and
//     the per-element operation order never depend on the pool width or the
//     caller.
//   Tier B (bounded, cross-ISA) — scalar and avx2 agree within a tested
//     relative-error bound on every kernel (tests/test_isa.cpp); they are
//     NOT bitwise identical (FMA fuses the multiply-add rounding).
//
// Observability: the resolved choice is exported as the `isa/active` gauge
// (0 = scalar, 1 = avx2) and every dispatch site bumps a per-family counter
// (`isa/gemm_dispatch_{scalar,avx2}`, `isa/fft_dispatch_{scalar,avx2}`) so
// bench/metrics JSON rows are attributable to the kernels that produced them.
#pragma once

#include <atomic>
#include <string>

#include "obs/obs.hpp"

namespace turb::util {

enum class Isa : int { kScalar = 0, kAvx2 = 1 };

/// True when the running CPU (and this build) can execute the AVX2/FMA
/// kernels. Always false on non-x86 builds.
[[nodiscard]] bool cpu_supports_avx2() noexcept;

/// Parse "auto" | "scalar" | "avx2" (throws CheckError on anything else).
/// "auto" resolves to avx2 when supported, scalar otherwise.
[[nodiscard]] Isa parse_isa(const std::string& spec);

[[nodiscard]] const char* isa_name(Isa isa) noexcept;

namespace detail {

/// -1 = unresolved; otherwise static_cast<int>(Isa).
extern std::atomic<int> g_active_isa;

/// Resolve from TURBFNO_ISA (or auto) and publish the isa/active gauge.
Isa resolve_isa();

}  // namespace detail

/// The process-wide kernel choice, resolved on first call (see file header).
/// One relaxed atomic load on the hot path after resolution.
inline Isa active_isa() {
  const int v = detail::g_active_isa.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Isa>(v);
  return detail::resolve_isa();
}

/// Force the choice (tests, --isa flag). Overrides TURBFNO_ISA and any
/// earlier resolution; throws CheckError if `isa` is avx2 on a CPU without
/// AVX2/FMA. Kernels dispatched after this call use the new choice — callers
/// switching mid-process (the per-ISA benches, the equivalence tests) own
/// the consistency of their own comparisons.
void set_active_isa(Isa isa);

/// RAII ISA override for tests and benches: forces `isa` on construction,
/// restores the previous resolution state on destruction.
class ScopedIsa {
 public:
  explicit ScopedIsa(Isa isa);
  ~ScopedIsa();
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;

 private:
  int previous_;
};

/// Per-family dispatch counters (cached references; see file header).
[[nodiscard]] obs::Counter& gemm_dispatch_counter(Isa isa);
[[nodiscard]] obs::Counter& fft_dispatch_counter(Isa isa);

}  // namespace turb::util
