// Minimal command-line argument parser for examples and benches.
//
// Supports `--key value`, `--key=value`, and boolean flags `--key`.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace turb {

/// Parsed command-line options with typed, defaulted lookups.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& key, long fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_flag(const std::string& key,
                              bool fallback = false) const;

  /// Positional (non `--`) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

/// Serving-layer knobs shared by every driver that builds a
/// serve::RolloutServer (ServeConfig::from_runtime() reads them).
struct ServeRuntimeOptions {
  long max_sessions = 256;     ///< --serve-max-sessions
  long queue_capacity = 1024;  ///< --serve-queue-cap
  long batch_window = 16;      ///< --serve-batch-window
  /// --serve-ensemble-k: members per logical session drivers should request
  /// (1 = plain rollouts, K >= 2 = ensemble UQ fan-out with mean + spread).
  long ensemble_k = 1;
  /// --serve-precision fp32|bf16|fp16 (TURBFNO_PRECISION env as fallback):
  /// weight precision for every pooled serving engine. Stored as the spec
  /// string so util/cli.hpp stays free of the precision header; ServeConfig
  /// parses it.
  std::string precision = "fp32";
};

/// Process-wide snapshot of the --serve-* flags (defaults until
/// apply_runtime_flags sees them).
[[nodiscard]] const ServeRuntimeOptions& serve_runtime_options();

/// Apply the process-wide flags every driver (examples, benches) shares:
///   --threads N             size the global thread pool (must precede the
///                           first parallel region; errors otherwise)
///   --isa auto|scalar|avx2  force the microkernel ISA (overrides the
///                           TURBFNO_ISA env; avx2 errors when unsupported)
///   --metrics-out F         dump the obs metrics registry to F as JSON when
///                           the process exits normally
///   --serve-max-sessions N  serving: concurrently active session bound
///   --serve-queue-cap N     serving: pending-queue admission bound
///   --serve-batch-window N  serving: max streams per micro-batched forward
///   --serve-ensemble-k K    serving: ensemble members per logical session
///                           (1 = plain rollouts)
///   --serve-precision P     serving: engine weight precision
///                           (fp32 | bf16 | fp16; TURBFNO_PRECISION env is
///                           the fallback when the flag is absent)
void apply_runtime_flags(const CliArgs& args);

}  // namespace turb
