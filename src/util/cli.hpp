// Minimal command-line argument parser for examples and benches.
//
// Supports `--key value`, `--key=value`, and boolean flags `--key`.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace turb {

/// Parsed command-line options with typed, defaulted lookups.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& key, long fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_flag(const std::string& key,
                              bool fallback = false) const;

  /// Positional (non `--`) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

/// Apply the process-wide flags every driver (examples, benches) shares:
///   --threads N       size the global thread pool (must precede the first
///                     parallel region; errors otherwise)
///   --metrics-out F   dump the obs metrics registry to F as JSON when the
///                     process exits normally
void apply_runtime_flags(const CliArgs& args);

}  // namespace turb
