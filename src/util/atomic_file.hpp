// Crash-safe file writes: write to `<path>.tmp`, fsync, then rename onto the
// final path. A reader therefore only ever sees the complete previous file or
// the complete new one — a crash mid-write leaves at worst a stale `.tmp`
// that no loader opens. POSIX rename(2) within one directory is atomic; on
// platforms without fsync the flush-before-rename is best effort.
#pragma once

#include <cstdio>
#include <string>

namespace turb::util {

class AtomicFileWriter {
 public:
  /// Opens `<path>.tmp` for binary writing. Throws CheckError on failure.
  explicit AtomicFileWriter(std::string path);

  /// Removes the tmp file if commit() was never reached; the final path is
  /// left exactly as it was before construction.
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Appends `n` bytes. Throws CheckError on I/O failure.
  void write(const void* data, std::size_t n);

  /// Flush + fsync + close + rename onto the final path. Throws CheckError
  /// if any step fails (the tmp file is removed in that case).
  void commit();

  [[nodiscard]] const std::string& tmp_path() const { return tmp_path_; }

  /// The tmp name `save` uses for `path` (exposed for crash-simulation
  /// tests).
  [[nodiscard]] static std::string tmp_path_for(const std::string& path) {
    return path + ".tmp";
  }

 private:
  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  bool committed_ = false;
};

}  // namespace turb::util
