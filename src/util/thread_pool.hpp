// Shared-memory parallelism: a lazily-started thread pool with a
// parallel_for that chunks an index range over the workers.
//
// The pool is the single parallel substrate for the whole library (FFT
// batches, GEMM tiles, LBM row sweeps, per-sample dataset generation), in the
// spirit of the OpenMP worksharing idiom but without an OpenMP dependency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/common.hpp"

namespace turb {

/// Fixed-size worker pool executing [begin, end) index-range tasks.
class ThreadPool {
 public:
  /// @param num_threads worker count; 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Run body(i) for i in [begin, end), splitting the range across workers.
  /// Blocks until every index has been processed. Exceptions thrown by the
  /// body are captured and rethrown (first one wins) on the calling thread.
  void parallel_for(index_t begin, index_t end,
                    const std::function<void(index_t)>& body);

  /// Chunked variant: body(chunk_begin, chunk_end) — lets the body amortise
  /// per-call overhead over a contiguous subrange.
  void parallel_for_chunked(
      index_t begin, index_t end,
      const std::function<void(index_t, index_t)>& body);

  /// Process-wide default pool. Sized by set_global_threads() when called
  /// before first use, else by TURBFNO_THREADS, else hardware_concurrency().
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(index_t, index_t)>* body = nullptr;
    index_t begin = 0;
    index_t end = 0;
    index_t chunk = 1;
    std::atomic<index_t> next{0};
    std::atomic<index_t> remaining{0};
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void worker_loop();
  static void run_task(Task& task);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Task* current_ = nullptr;
  std::size_t generation_ = 0;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Size the global pool explicitly (overrides the TURBFNO_THREADS env var).
/// Must be called before the first use of ThreadPool::global() — throws
/// CheckError once the pool exists, since workers cannot be resized.
void set_global_threads(std::size_t num_threads);

/// Convenience wrapper over the global pool.
void parallel_for(index_t begin, index_t end,
                  const std::function<void(index_t)>& body);

/// Chunked convenience wrapper over the global pool.
void parallel_for_chunked(index_t begin, index_t end,
                          const std::function<void(index_t, index_t)>& body);

}  // namespace turb
