// Shared-memory parallelism: a lazily-started thread pool with a
// parallel_for that chunks an index range over the workers.
//
// The pool is the single parallel substrate for the whole library (FFT
// batches, GEMM tiles, LBM row sweeps, per-sample dataset generation), in the
// spirit of the OpenMP worksharing idiom but without an OpenMP dependency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/common.hpp"

namespace turb {

/// Fixed-size worker pool executing [begin, end) index-range tasks.
class ThreadPool {
 public:
  /// @param num_threads worker count; 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Run body(i) for i in [begin, end), splitting the range across workers.
  /// Blocks until every index has been processed. Exceptions thrown by the
  /// body are captured and rethrown (first one wins) on the calling thread.
  /// Called from inside another parallel region, the body runs serially on
  /// the calling thread (the pool dispatches one task at a time, so nested
  /// submission would deadlock — and serial nesting keeps results
  /// independent of where a kernel happens to be invoked from).
  void parallel_for(index_t begin, index_t end,
                    const std::function<void(index_t)>& body);

  /// Chunked variant: body(chunk_begin, chunk_end) — lets the body amortise
  /// per-call overhead over a contiguous subrange.
  void parallel_for_chunked(
      index_t begin, index_t end,
      const std::function<void(index_t, index_t)>& body);

  /// Raw chunked dispatch: fn(ctx, chunk_begin, chunk_end). Identical
  /// semantics to the std::function overload (which wraps this), but the
  /// call path constructs nothing — no std::function, no capture copy — so
  /// allocation-free hot loops (the inference engine's steady state) can
  /// dispatch without touching the heap.
  void parallel_for_chunked(index_t begin, index_t end,
                            void (*fn)(void*, index_t, index_t), void* ctx);

  /// Number of distinct values scratch_slot() can return for this pool:
  /// size() (workers plus the submitting thread).
  [[nodiscard]] std::size_t slot_count() const { return size(); }

  /// Stable scratch-slot index of the calling thread with respect to this
  /// pool: workers get 1..size()-1, any other thread gets 0. Threads that
  /// can concurrently execute a parallel_for body on this pool (its workers
  /// plus the single submitting thread) therefore hold disjoint slots, so
  /// per-slot scratch buffers sized by slot_count() are race-free without
  /// thread_local storage — which lets a planner preallocate every worker's
  /// scratch up front instead of lazily on first touch per thread.
  [[nodiscard]] std::size_t scratch_slot() const;

  /// Process-wide default pool. Sized by set_global_threads() when called
  /// before first use, else by TURBFNO_THREADS, else hardware_concurrency().
  static ThreadPool& global();

  /// Pool the free-function wrappers dispatch to: the innermost active
  /// Scope's pool on this thread, else the global pool.
  static ThreadPool& current();

  /// True while the calling thread is executing a parallel_for body (as the
  /// submitting thread or a worker). Kernels use this to fall back to their
  /// serial path instead of nesting a second parallel region.
  [[nodiscard]] static bool in_parallel_region() noexcept;

  /// RAII override of the pool used by the free-function wrappers on the
  /// constructing thread. Lets tests and benches run the same code at
  /// several parallel widths inside one process (the global pool cannot be
  /// resized once its workers exist). Scopes nest; the innermost wins.
  class Scope {
   public:
    /// Dispatch to an owned temporary pool of `num_threads` width.
    explicit Scope(std::size_t num_threads);
    /// Dispatch to an existing pool (not owned).
    explicit Scope(ThreadPool& pool);
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    std::unique_ptr<ThreadPool> owned_;
    ThreadPool* previous_;
  };

 private:
  struct Task {
    void (*invoke)(void*, index_t, index_t) = nullptr;
    void* ctx = nullptr;
    index_t begin = 0;
    index_t end = 0;
    index_t chunk = 1;
    std::atomic<index_t> next{0};
    std::atomic<index_t> remaining{0};
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void worker_loop(std::size_t slot);
  static void run_task(Task& task);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Task* current_ = nullptr;
  std::size_t generation_ = 0;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Size the global pool explicitly (overrides the TURBFNO_THREADS env var).
/// Must be called before the first use of ThreadPool::global() — throws
/// CheckError once the pool exists, since workers cannot be resized.
void set_global_threads(std::size_t num_threads);

/// Convenience wrapper over the global pool.
void parallel_for(index_t begin, index_t end,
                  const std::function<void(index_t)>& body);

/// Chunked convenience wrapper over the global pool.
void parallel_for_chunked(index_t begin, index_t end,
                          const std::function<void(index_t, index_t)>& body);

/// Deterministic-reduction work partition: split [begin, end) into exactly
/// min(slots, end - begin) contiguous slabs whose boundaries depend only on
/// the range and `slots` — never on the pool width — and run
/// body(slot, slab_begin, slab_end) for each slab, in parallel when a pool
/// is available.
///
/// This is the primitive behind the thread-count determinism contract: a
/// parallel floating-point reduction accumulates each slab into its own
/// scratch buffer (written by exactly one task) and then folds the slabs in
/// ascending slot order on the calling thread. Because the partition and the
/// fold order are fixed, the result is bitwise identical at any thread
/// count — including 1.
void parallel_for_slabs(
    index_t begin, index_t end, index_t slots,
    const std::function<void(index_t, index_t, index_t)>& body);

/// Number of slabs parallel_for_slabs will actually use for a range
/// (min(slots, end - begin), at least 0) — callers size scratch with this.
[[nodiscard]] index_t slab_count(index_t begin, index_t end, index_t slots);

}  // namespace turb
