// Common definitions shared across the turbfno library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace turb {

using index_t = std::int64_t;

/// Thrown on precondition violations detected by TURB_CHECK.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "TURB_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace turb

/// Precondition check that stays on in release builds. Library entry points
/// validate their inputs with this; hot inner loops do not.
#define TURB_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) ::turb::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define TURB_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream os_;                                         \
      os_ << msg;                                                     \
      ::turb::detail::check_failed(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                 \
  } while (0)
