#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/common.hpp"

namespace turb {

namespace {

std::string format_value(double v) {
  std::ostringstream os;
  // Integers print exactly; everything else in compact scientific-ish form.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os << std::setprecision(8) << v;
  }
  return os.str();
}

}  // namespace

void SeriesTable::set_columns(std::vector<std::string> columns) {
  TURB_CHECK(rows_.empty());
  columns_ = std::move(columns);
}

void SeriesTable::add_row(const std::vector<double>& values) {
  TURB_CHECK_MSG(values.size() == columns_.size(),
                 "row width " << values.size() << " != column count "
                              << columns_.size());
  rows_.push_back({"", values});
}

void SeriesTable::add_row(const std::string& label,
                          const std::vector<double>& values) {
  TURB_CHECK_MSG(values.size() == columns_.size(),
                 "row width " << values.size() << " != column count "
                              << columns_.size());
  has_labels_ = true;
  rows_.push_back({label, values});
}

void SeriesTable::print_csv(std::ostream& os) const {
  os << "# begin-csv " << name_ << "\n";
  if (has_labels_) os << "label,";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << columns_[c] << (c + 1 < columns_.size() ? "," : "");
  }
  os << "\n";
  for (const auto& row : rows_) {
    if (has_labels_) os << row.label << ",";
    for (std::size_t c = 0; c < row.values.size(); ++c) {
      os << format_value(row.values[c]) << (c + 1 < row.values.size() ? "," : "");
    }
    os << "\n";
  }
  os << "# end-csv\n";
}

void SeriesTable::print_pretty(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  std::size_t label_width = 0;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    label_width = std::max(label_width, row.label.size());
    std::vector<std::string> line;
    line.reserve(row.values.size());
    for (std::size_t c = 0; c < row.values.size(); ++c) {
      line.push_back(format_value(row.values[c]));
      widths[c] = std::max(widths[c], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  os << "== " << name_ << " ==\n";
  if (has_labels_) os << std::setw(static_cast<int>(label_width)) << "" << "  ";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << std::setw(static_cast<int>(widths[c])) << columns_[c] << "  ";
  }
  os << "\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (has_labels_) {
      os << std::setw(static_cast<int>(label_width)) << rows_[r].label << "  ";
    }
    for (std::size_t c = 0; c < cells[r].size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << cells[r][c] << "  ";
    }
    os << "\n";
  }
}

}  // namespace turb
