// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte streams.
//
// Used by the v2 checkpoint formats (TNN2/TDS2) to detect torn or bit-flipped
// files before any of their content is trusted. Incremental: feed sections as
// they are written/read and finalise once at the end.
#pragma once

#include <cstddef>
#include <cstdint>

namespace turb::util {

class Crc32 {
 public:
  void update(const void* data, std::size_t n) noexcept;

  /// Finalised checksum of everything fed so far (does not reset state).
  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }

  void reset() noexcept { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n) noexcept;

}  // namespace turb::util
