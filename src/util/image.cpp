#include "util/image.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <vector>

#include "util/common.hpp"

namespace turb {

namespace {

struct Rgb {
  std::uint8_t r, g, b;
};

/// Piecewise-linear blue → white → red map on s in [-1, 1].
Rgb diverging_color(double s) {
  s = std::clamp(s, -1.0, 1.0);
  const auto lerp = [](double a, double b, double t) {
    return a + (b - a) * t;
  };
  // Endpoints: deep blue (0.23,0.30,0.75), white, deep red (0.71,0.02,0.15).
  double r, g, b;
  if (s < 0.0) {
    const double t = s + 1.0;  // 0 at -1, 1 at 0
    r = lerp(0.230, 1.0, t);
    g = lerp(0.299, 1.0, t);
    b = lerp(0.754, 1.0, t);
  } else {
    const double t = s;  // 0 at 0, 1 at +1
    r = lerp(1.0, 0.706, t);
    g = lerp(1.0, 0.016, t);
    b = lerp(1.0, 0.150, t);
  }
  const auto to8 = [](double v) {
    return static_cast<std::uint8_t>(std::lround(std::clamp(v, 0.0, 1.0) * 255.0));
  };
  return {to8(r), to8(g), to8(b)};
}

}  // namespace

void write_pgm(const std::string& path, std::span<const double> field,
               int height, int width) {
  TURB_CHECK(field.size() == static_cast<std::size_t>(height) * width);
  const auto [lo_it, hi_it] = std::minmax_element(field.begin(), field.end());
  const double lo = *lo_it;
  const double range = std::max(*hi_it - lo, 1e-300);

  std::ofstream os(path, std::ios::binary);
  TURB_CHECK_MSG(os.good(), "cannot open " << path);
  os << "P5\n" << width << " " << height << "\n255\n";
  std::vector<std::uint8_t> row(static_cast<std::size_t>(width));
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double v = (field[static_cast<std::size_t>(y) * width + x] - lo) / range;
      row[static_cast<std::size_t>(x)] =
          static_cast<std::uint8_t>(std::lround(v * 255.0));
    }
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
  }
}

void write_ppm_diverging(const std::string& path,
                         std::span<const double> field, int height,
                         int width) {
  TURB_CHECK(field.size() == static_cast<std::size_t>(height) * width);
  double amax = 0.0;
  for (const double v : field) amax = std::max(amax, std::abs(v));
  if (amax == 0.0) amax = 1.0;

  std::ofstream os(path, std::ios::binary);
  TURB_CHECK_MSG(os.good(), "cannot open " << path);
  os << "P6\n" << width << " " << height << "\n255\n";
  std::vector<std::uint8_t> row(static_cast<std::size_t>(width) * 3);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const Rgb c =
          diverging_color(field[static_cast<std::size_t>(y) * width + x] / amax);
      row[static_cast<std::size_t>(x) * 3 + 0] = c.r;
      row[static_cast<std::size_t>(x) * 3 + 1] = c.g;
      row[static_cast<std::size_t>(x) * 3 + 2] = c.b;
    }
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
  }
}

}  // namespace turb
