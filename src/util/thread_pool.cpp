#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace turb {

namespace {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("TURBFNO_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

// Explicit width requested via set_global_threads (0 = not requested) and
// whether the global pool has been materialised (after which a request is a
// caller error — the workers are already running).
std::atomic<std::size_t> g_requested_threads{0};
std::atomic<bool> g_global_created{false};

// Innermost Scope override on this thread (nullptr = use the global pool).
thread_local ThreadPool* t_scope_pool = nullptr;

// Depth of parallel_for bodies executing on this thread. Non-zero means a
// nested parallel_for must run serially (single-task pool → deadlock) and,
// by design, always does — so a kernel's numeric result never depends on
// whether it was reached from inside another parallel region.
thread_local int t_parallel_depth = 0;

struct ParallelRegionGuard {
  ParallelRegionGuard() noexcept { ++t_parallel_depth; }
  ~ParallelRegionGuard() { --t_parallel_depth; }
};

// Pool this thread is a worker of (a thread belongs to at most one pool)
// and its 1-based slot inside it; external threads stay at {nullptr, 0}.
thread_local const ThreadPool* t_worker_pool = nullptr;
thread_local std::size_t t_worker_slot = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_thread_count();
  // The calling thread participates in every parallel_for, so spawn one
  // fewer worker than the requested parallel width.
  const std::size_t workers = num_threads > 0 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_task(Task& task) {
  ParallelRegionGuard region;
  while (true) {
    const index_t i = task.next.fetch_add(task.chunk, std::memory_order_relaxed);
    if (i >= task.end) break;
    const index_t chunk_end = std::min<index_t>(i + task.chunk, task.end);
    try {
      task.invoke(task.ctx, i, chunk_end);
    } catch (...) {
      std::lock_guard lock(task.error_mutex);
      if (!task.error) task.error = std::current_exception();
    }
    task.remaining.fetch_sub(chunk_end - i, std::memory_order_acq_rel);
  }
}

void ThreadPool::worker_loop(std::size_t slot) {
  t_worker_pool = this;
  t_worker_slot = slot;
  std::size_t seen_generation = 0;
  while (true) {
    Task* task = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [&] {
        return stop_ || (current_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = generation_;
      task = current_;
      ++active_;
    }
    run_task(*task);
    {
      std::lock_guard lock(mutex_);
      --active_;
    }
    cv_done_.notify_all();
  }
}

void ThreadPool::parallel_for_chunked(
    index_t begin, index_t end,
    const std::function<void(index_t, index_t)>& body) {
  parallel_for_chunked(
      begin, end,
      [](void* ctx, index_t b, index_t e) {
        (*static_cast<const std::function<void(index_t, index_t)>*>(ctx))(b,
                                                                          e);
      },
      const_cast<void*>(static_cast<const void*>(&body)));
}

void ThreadPool::parallel_for_chunked(index_t begin, index_t end,
                                      void (*fn)(void*, index_t, index_t),
                                      void* ctx) {
  if (begin >= end) return;
  const index_t n = end - begin;
  if (workers_.empty() || n == 1 || t_parallel_depth > 0) {
    // Serial path: no workers, a single index, or a nested region. Mark the
    // region anyway so nesting depth behaves identically at every width.
    ParallelRegionGuard region;
    fn(ctx, begin, end);
    return;
  }

  Task task;
  task.invoke = fn;
  task.ctx = ctx;
  task.begin = begin;
  task.end = end;
  // ~4 chunks per thread for load balance without excessive contention.
  const index_t target_chunks = static_cast<index_t>(size()) * 4;
  task.chunk = std::max<index_t>(1, n / target_chunks);
  task.next.store(begin, std::memory_order_relaxed);
  task.remaining.store(n, std::memory_order_relaxed);

  {
    std::lock_guard lock(mutex_);
    current_ = &task;
    ++generation_;
  }
  cv_work_.notify_all();
  run_task(task);

  {
    // Wait until every index is processed AND no worker still holds a
    // reference to the stack-allocated task.
    std::unique_lock lock(mutex_);
    current_ = nullptr;
    cv_done_.wait(lock, [&] {
      return active_ == 0 &&
             task.remaining.load(std::memory_order_acquire) <= 0;
    });
  }
  if (task.error) std::rethrow_exception(task.error);
}

void ThreadPool::parallel_for(index_t begin, index_t end,
                              const std::function<void(index_t)>& body) {
  const std::function<void(index_t, index_t)> chunked =
      [&body](index_t b, index_t e) {
        for (index_t i = b; i < e; ++i) body(i);
      };
  parallel_for_chunked(begin, end, chunked);
}

std::size_t ThreadPool::scratch_slot() const {
  return t_worker_pool == this ? t_worker_slot : 0;
}

ThreadPool& ThreadPool::global() {
  g_global_created.store(true, std::memory_order_release);
  static ThreadPool pool(g_requested_threads.load(std::memory_order_acquire));
  return pool;
}

ThreadPool& ThreadPool::current() {
  return t_scope_pool != nullptr ? *t_scope_pool : global();
}

bool ThreadPool::in_parallel_region() noexcept { return t_parallel_depth > 0; }

ThreadPool::Scope::Scope(std::size_t num_threads)
    : owned_(std::make_unique<ThreadPool>(num_threads)),
      previous_(t_scope_pool) {
  t_scope_pool = owned_.get();
}

ThreadPool::Scope::Scope(ThreadPool& pool) : previous_(t_scope_pool) {
  t_scope_pool = &pool;
}

ThreadPool::Scope::~Scope() { t_scope_pool = previous_; }

void set_global_threads(std::size_t num_threads) {
  TURB_CHECK_MSG(num_threads >= 1, "set_global_threads: need >= 1 thread");
  TURB_CHECK_MSG(!g_global_created.load(std::memory_order_acquire),
                 "set_global_threads must run before the global pool is "
                 "first used (its workers cannot be resized)");
  g_requested_threads.store(num_threads, std::memory_order_release);
}

void parallel_for(index_t begin, index_t end,
                  const std::function<void(index_t)>& body) {
  ThreadPool::current().parallel_for(begin, end, body);
}

void parallel_for_chunked(index_t begin, index_t end,
                          const std::function<void(index_t, index_t)>& body) {
  ThreadPool::current().parallel_for_chunked(begin, end, body);
}

index_t slab_count(index_t begin, index_t end, index_t slots) {
  if (end <= begin) return 0;
  return std::min<index_t>(slots, end - begin);
}

void parallel_for_slabs(
    index_t begin, index_t end, index_t slots,
    const std::function<void(index_t, index_t, index_t)>& body) {
  const index_t slabs = slab_count(begin, end, slots);
  if (slabs <= 0) return;
  const index_t n = end - begin;
  const index_t q = n / slabs;
  const index_t r = n % slabs;
  // Slab s covers q indices (q+1 for the first r slabs) — a function of
  // (n, slots) only, so the reduction tree built on top of it is identical
  // at every pool width.
  parallel_for(0, slabs, [&](index_t s) {
    const index_t b = begin + s * q + std::min<index_t>(s, r);
    const index_t e = b + q + (s < r ? 1 : 0);
    body(s, b, e);
  });
}

}  // namespace turb
