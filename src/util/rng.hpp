// Deterministic, splittable pseudo-random number generation.
//
// xoshiro256++ (Blackman & Vigna) — fast, high-quality, and reproducible
// across platforms, unlike std::mt19937 + std::normal_distribution whose
// output is implementation-defined for the distributions.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/common.hpp"

namespace turb {

/// xoshiro256++ generator with SplitMix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 to fill the state; avoids all-zero state for any seed.
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      si = z ^ (z >> 31);
    }
    has_cached_normal_ = false;
  }

  /// Uniform on [0, 2^64).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double on [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double on [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer on [0, n).
  std::uint64_t uniform_int(std::uint64_t n) {
    TURB_CHECK(n > 0);
    // Lemire's unbiased bounded generation.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  double normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * f;
    has_cached_normal_ = true;
    return u * f;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Derive an independent stream (for per-sample / per-thread generators).
  Rng split() { return Rng(next_u64() ^ 0xD1B54A32D192ED03ull); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace turb
