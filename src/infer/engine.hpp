// Forward-only FNO inference engine: plan once per (batch, grid) shape,
// then execute with zero steady-state heap allocations.
//
// The training path (`Fno::forward`) materialises a fresh tensor per layer,
// caches every layer input for backward, and re-derives workspace per call —
// all dead weight at serving time. The engine replays the exact same
// dataflow out of a single arena (arena.hpp):
//
//   * plan(shape) sizes every activation, FFT spectrum, and per-thread
//     scratch slice up front and hands out aligned arena slices;
//   * the lifting / projection MLPs and the per-block skip path run as
//     fused column-block kernels — GEMM into a register-friendly tile,
//     bias (+GELU) applied in the tile, second GEMM straight into the
//     destination — so no (N, C_lift, S)-sized intermediate ever exists;
//   * spectral weights are prepacked k-major at engine build so the kept-mode
//     contraction reads contiguous memory — dense weights as one
//     (K, C_out, C_in) complex block, factorized (F-FNO) weights as one
//     k_d-major block per axis, composed into the per-mode weight in
//     registers while the input streams through;
//   * rollout drivers ping-pong between two arena prediction buffers and
//     shift temporal channels in place.
//
// Bitwise equality with `Fno::forward` is a hard contract at fp32 (tests
// enforce it at pool widths 1/2/4, for both the dense and factorized
// parameterisations): every floating-point value is produced by the same
// per-element operation sequence as the training path — the same gemm_nn
// instantiation on 8-aligned column blocks, the same rfft/irfft/PlanC2C
// kernels, the same ascending-k contraction order, and the same
// add-bias → add-skip → GELU rounding chain. See DESIGN.md "Inference
// engine" for the argument.
//
// Reduced-precision serving (EngineOptions::precision = bf16 | fp16)
// compresses the prepacked weights to 16-bit storage at refresh time and
// widens them to fp32 inside the contraction inner loop; linear (MLP/skip)
// weights are round-tripped through the same format but kept as fp32
// storage for the GEMM kernels. The compressed engine keeps Tier A
// determinism (bitwise within a fixed ISA and thread width) but its outputs
// are only error-bounded against the fp32 engine — the per-snapshot
// relative-L2 contract documented in DESIGN.md "Precision tiers" and
// property-tested in tests/test_infer.cpp.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "fno/fno.hpp"
#include "infer/arena.hpp"
#include "obs/obs.hpp"
#include "tensor/tensor.hpp"
#include "util/isa.hpp"
#include "util/precision.hpp"
#include "util/thread_pool.hpp"

namespace turb::infer {

/// Build-time engine knobs (see file header for the precision contract).
struct EngineOptions {
  util::Precision precision = util::Precision::kFp32;
};

class InferenceEngine {
 public:
  /// @param model trained FNO (not owned; must outlive the engine). Weights
  /// are snapshotted (prepacked, and compressed when options.precision is
  /// not fp32) at construction — call refresh_weights() after further
  /// training steps.
  explicit InferenceEngine(fno::Fno& model, EngineOptions options = {});

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Re-snapshot the model's weights into the prepacked layouts.
  void refresh_weights();

  /// Plan for input shape (N, C_in, spatial...). Idempotent per shape;
  /// re-planning an already-planned layout only refreshes the captured
  /// thread pool. Lays out the arena and copies the kept-mode map.
  void plan(const Shape& in_shape);

  /// Braced-dims variant (`plan({n, c, h, w})`): routes to the fast path
  /// without materialising a Shape when the dims already match the planned
  /// layout — keeps rollout entry points allocation-free in steady state.
  void plan(std::initializer_list<index_t> dims);

  /// Forward pass, bitwise identical to model.forward(x). Re-plans
  /// implicitly on a shape change (counted by infer/steady_state_allocs
  /// when it happens after a prior plan — the caller was supposed to plan).
  /// `y` is resized only when its shape mismatches.
  void forward(const TensorF& x, TensorF& y);

  /// Raw forward over planned-shape buffers: `x` holds N·C_in·S floats,
  /// `y` receives N·C_out·S. Zero heap allocations after warm-up. `x` and
  /// `y` may be arena slices (window_buffer(), pred_buffer()).
  void forward_raw(const float* x, float* y);

  /// Autoregressive rank-2 rollout, identical to fno::rollout_channels.
  /// history: (C_in, H, W); out is resized to (steps, H, W) only on shape
  /// change. Re-plans for batch 1 as needed.
  void rollout_channels_into(const TensorF& history, index_t steps,
                             TensorF& out);

  /// Batched multi-trajectory variant: histories (B, C_in, H, W) →
  /// out (B, steps, H, W). Each trajectory's outputs are bitwise identical
  /// to a single-trajectory rollout of the same history (batch entries ride
  /// independent slabs through every kernel).
  void rollout_channels_batched_into(const TensorF& histories, index_t steps,
                                     TensorF& out);

  /// Rank-3 block rollout, identical to fno::rollout_3d. seed: (T, H, W);
  /// out resized to (blocks·T, H, W).
  void rollout_3d_into(const TensorF& seed_block, index_t blocks,
                       TensorF& out);

  /// Arena slice for staging the model input of the planned shape
  /// (N·C_in·S floats) — lets callers (FnoPropagator) marshal external data
  /// without owning a separate buffer. Valid until the next plan().
  [[nodiscard]] float* window_buffer() const;

  /// Arena slice holding N·C_out·S floats (i ∈ {0, 1}; the rollout drivers
  /// ping-pong between the two). Valid until the next plan().
  [[nodiscard]] float* pred_buffer(int i) const;

  /// Shift temporal channels in place after a forward: for each of `batch`
  /// entries, drop the oldest inputs and append the newest predictions
  /// (`win` holds batch·C_in·frame floats, `pred` batch·C_out·frame). Public
  /// because external marshalers (FnoPropagator's batched serving path)
  /// drive forward_raw window-by-window and need the identical slide the
  /// engine's own rollout drivers use — same copy sequence, same bytes.
  void slide_window(float* win, const float* pred, index_t batch,
                    index_t frame) const;

  [[nodiscard]] const fno::FnoConfig& config() const { return cfg_; }
  [[nodiscard]] util::Precision precision() const { return precision_; }
  [[nodiscard]] std::size_t arena_bytes() const { return arena_.bytes(); }

  /// Bytes of prepacked spectral-weight storage (the serving working set
  /// the compressed path halves; linear weights are excluded — they are
  /// identical across precisions).
  [[nodiscard]] std::size_t spectral_weight_bytes() const;
  [[nodiscard]] bool planned() const { return planned_; }
  [[nodiscard]] const Shape& planned_shape() const { return in_shape_; }

  /// The microkernel ISA resolved at plan() time (the engine's kernels
  /// dispatch on the live process-wide choice; this records what was active
  /// when the plan was built, for bench/metrics attribution).
  [[nodiscard]] util::Isa planned_isa() const { return isa_; }

 private:
  using cpxf = std::complex<float>;

  /// One complex-to-complex FFT stage of the planned transform (spatial
  /// axis a < rank-1), mirroring fft::c2c_axis line geometry and pruning.
  struct C2cStage {
    index_t n = 0;      // transform length (spatial extent of the axis)
    index_t outer = 0;  // lines before the axis (includes N·width)
    index_t inner = 0;  // flattened extent after the axis
    index_t kept_inner = 0;
    std::vector<std::uint8_t> keep;  // per inner coordinate; empty = all
  };

  void lift(const float* x, float* h);
  void spectral_layer(index_t l, const float* h_in, float* h_out,
                      bool last_layer);
  void project(const float* h, float* y);
  void rfft_rows(const float* in, cpxf* out);
  void irfft_rows(const cpxf* in, float* out);
  void c2c_stage(const cpxf* src, cpxf* dst, const C2cStage& st,
                 bool forward_dir);
  void contract(index_t l, const cpxf* xs, cpxf* ys);

  fno::Fno* model_;
  fno::FnoConfig cfg_;
  util::Precision precision_ = util::Precision::kFp32;

  // Prepacked weights (snapshotted at construction / refresh_weights()).
  // Linear weights keep their (C_out, C_in) row-major layout — exactly the
  // A-operand layout the gemm_nn panel kernel consumes — in engine-owned
  // 64B-aligned storage; dense spectral weights are re-laid k-major,
  //   pw[(k·co + o)·ci·2 + 2i] = W[i, o, k]
  // so the ascending-i contraction reads contiguously (the training layout
  // strides by K per i). Factorized weights get one k_d-major block per
  // axis with the same (o, i) inner order,
  //   pf[d][(k_d·co + o)·ci·2 + 2i] = A_d[i, o, k_d].
  // At bf16/fp16 the same layouts hold uint16 payloads (pw16_/pf16_) widened
  // in the contraction inner loop.
  std::vector<float> wl1_, bl1_, wl2_, bl2_;
  std::vector<float> wp1_, bp1_, wp2_, bp2_;
  std::vector<std::vector<float>> wskip_, bskip_;
  std::vector<std::vector<float>> pw_;  // per layer, k-major dense weights
  std::vector<std::vector<std::uint16_t>> pw16_;  // compressed dense
  std::vector<std::vector<std::vector<float>>> pf_;  // [layer][axis] factors
  std::vector<std::vector<std::vector<std::uint16_t>>> pf16_;  // compressed
  std::vector<std::vector<index_t>> fidx_;  // [axis][flat k] → axis index
  std::vector<index_t> fdims_;              // per-axis kept extents

  // Plan state.
  bool planned_ = false;
  Shape in_shape_;                   // (N, C_in, spatial...)
  Shape out_shape_;                  // (N, C_out, spatial...)
  Shape spatial_;                    // trailing rank() extents
  index_t batch_ = 0;                // N
  index_t s_ = 0;                    // ∏ spatial
  index_t slab_ = 0;                 // spectrum elements per (n, c) slab
  index_t n_last_ = 0;               // last spatial extent (rfft length)
  index_t pre_rows_ = 0;             // ∏ spatial[0..rank-2] (per (n,c) rows)
  index_t kept_ = 0;                 // kept modes K
  std::vector<index_t> spec_offsets_;     // kept mode → offset in slab
  std::vector<std::uint8_t> keep_bins_;   // rfft-axis unpack mask
  std::vector<C2cStage> stages_;          // index = spatial axis a
  ThreadPool* pool_ = nullptr;            // captured at plan()
  std::size_t slots_ = 0;                 // pool_->slot_count() at layout time
  util::Isa isa_ = util::Isa::kScalar;    // resolved at plan()

  // Arena slices (byte offsets; pointers resolved after commit()).
  Arena arena_;
  std::size_t off_h0_ = 0, off_h1_ = 0;
  std::size_t off_win_ = 0, off_pred0_ = 0, off_pred1_ = 0;
  std::size_t off_xspec_ = 0, off_yspec_ = 0, off_work_ = 0;
  std::size_t off_twf_ = 0, off_twi_ = 0;  // rfft/irfft twiddle tables
  std::vector<std::size_t> off_tile_, off_z_, off_line_, off_xg_;  // per slot
  // Per-slot lane-interleaved scratch for batched line FFTs, sized for
  // fft::kMaxLanes so the runtime lane count (ISA- and type-dependent)
  // always fits without reallocation.
  std::vector<std::size_t> off_zl_, off_ul_, off_lanes_;  // per slot
  index_t tile_rows_ = 0;   // max channel count staged in a tile
  index_t line_len_ = 0;    // max c2c extent

  // Metrics (registry references cached so the hot path never locks).
  obs::Counter& forward_calls_;
  obs::Counter& replans_;
  obs::Counter& steady_allocs_;
  obs::Gauge& arena_gauge_;
  obs::Counter& fft_lines_total_;
  obs::Counter& fft_lines_skipped_;
  obs::Counter& fft_r2c_lines_;
  obs::Counter& fft_c2r_lines_;
  obs::Counter& fft_batched_lines_;
  obs::Counter& fft_batch_tail_lines_;
};

}  // namespace turb::infer
