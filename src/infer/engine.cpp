#include "infer/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "fft/fftnd.hpp"
#include "fft/plan_cache.hpp"
#include "fft/real.hpp"
#include "tensor/gemm.hpp"

namespace turb::infer {

namespace {

/// Column-block width of the fused MLP/skip kernels. A multiple of the GEMM
/// panel width (8) so in-block panel boundaries land on the same global
/// columns as a full-width gemm_nn call — the load-bearing property for
/// bitwise equality with the training path (panel membership decides which
/// columns take the register-tiled vs tail code path).
constexpr index_t kColBlock = 64;

/// Exact GELU, the same expression Gelu::forward evaluates per element.
inline float gelu(float v) {
  constexpr float inv_sqrt2 = 0.70710678118654752f;
  return 0.5f * v * (1.0f + std::erf(v * inv_sqrt2));
}

/// Allocation-free chunked dispatch: passes the lambda by address through
/// the pool's raw (fn, ctx) overload — no std::function, no capture copy.
template <typename Body>
void run_chunks(ThreadPool& pool, index_t n, const Body& body) {
  pool.parallel_for_chunked(
      0, n,
      [](void* ctx, index_t b, index_t e) {
        (*static_cast<const Body*>(ctx))(b, e);
      },
      const_cast<void*>(static_cast<const void*>(&body)));
}

/// Element-wise shape check without materialising a Shape (no allocation).
bool shape_is(const Shape& s, std::initializer_list<index_t> want) {
  return s.size() == want.size() && std::equal(s.begin(), s.end(), want.begin());
}

void copy_linear(nn::Linear& layer, std::vector<float>& w,
                 std::vector<float>& b) {
  const TensorF& wv = layer.weight().value;
  w.assign(wv.data(), wv.data() + wv.size());
  const TensorF& bv = layer.bias().value;
  b.assign(bv.data(), bv.data() + bv.size());
}

}  // namespace

InferenceEngine::InferenceEngine(fno::Fno& model, EngineOptions options)
    : model_(&model),
      cfg_(model.config()),
      precision_(options.precision),
      forward_calls_(obs::counter("infer/forward_calls")),
      replans_(obs::counter("infer/replans")),
      steady_allocs_(obs::counter("infer/steady_state_allocs")),
      arena_gauge_(obs::gauge("infer/arena_bytes")),
      fft_lines_total_(obs::counter("fft/lines_total")),
      fft_lines_skipped_(obs::counter("fft/pruned_lines_skipped")),
      fft_r2c_lines_(obs::counter("fft/r2c_lines")),
      fft_c2r_lines_(obs::counter("fft/c2r_lines")),
      fft_batched_lines_(obs::counter("fft/batched_lines")),
      fft_batch_tail_lines_(obs::counter("fft/batch_tail_lines")) {
  wskip_.resize(static_cast<std::size_t>(cfg_.n_layers));
  bskip_.resize(static_cast<std::size_t>(cfg_.n_layers));
  pw_.resize(static_cast<std::size_t>(cfg_.n_layers));
  pw16_.resize(static_cast<std::size_t>(cfg_.n_layers));
  pf_.resize(static_cast<std::size_t>(cfg_.n_layers));
  pf16_.resize(static_cast<std::size_t>(cfg_.n_layers));
  if (cfg_.spectral_kind == nn::SpectralKind::kFactorized) {
    // Per-axis kept extents and the flat kept index → per-axis index table
    // (row-major over the kept extents — the layer's enumeration order).
    const std::size_t r = cfg_.rank();
    fdims_.resize(r);
    index_t kept = 1;
    for (std::size_t d = 0; d < r; ++d) {
      fdims_[d] = d + 1 < r ? cfg_.n_modes[d] : cfg_.n_modes.back() / 2 + 1;
      kept *= fdims_[d];
    }
    fidx_.assign(r, {});
    for (std::size_t d = 0; d < r; ++d) {
      fidx_[d].resize(static_cast<std::size_t>(kept));
    }
    std::vector<index_t> k(r, 0);
    for (index_t flat = 0; flat < kept; ++flat) {
      for (std::size_t d = 0; d < r; ++d) {
        fidx_[d][static_cast<std::size_t>(flat)] = k[d];
      }
      for (std::size_t d = r; d-- > 0;) {
        if (++k[d] < fdims_[d]) break;
        k[d] = 0;
      }
    }
  }
  refresh_weights();
}

void InferenceEngine::refresh_weights() {
  copy_linear(model_->lift1(), wl1_, bl1_);
  copy_linear(model_->lift2(), wl2_, bl2_);
  copy_linear(model_->proj1(), wp1_, bp1_);
  copy_linear(model_->proj2(), wp2_, bp2_);
  const index_t w = cfg_.width;
  const bool compressed = precision_ != util::Precision::kFp32;
  if (compressed) {
    // Linear weights stay fp32 storage (the GEMM kernels are untouched) but
    // are round-tripped through the serving precision, so a compressed
    // engine's outputs depend only on the compressed payload — exactly what
    // a checkpoint-v3 load at this precision would serve.
    for (std::vector<float>* v :
         {&wl1_, &bl1_, &wl2_, &bl2_, &wp1_, &bp1_, &wp2_, &bp2_}) {
      util::quantize_floats(v->data(), v->size(), precision_);
    }
  }
  for (index_t l = 0; l < cfg_.n_layers; ++l) {
    const auto ls = static_cast<std::size_t>(l);
    copy_linear(model_->skip(l), wskip_[ls], bskip_[ls]);
    if (compressed) {
      util::quantize_floats(wskip_[ls].data(), wskip_[ls].size(), precision_);
      util::quantize_floats(bskip_[ls].data(), bskip_[ls].size(), precision_);
    }
    nn::SpectralLayer& conv = model_->conv(l);
    const index_t K = conv.kept_modes();
    if (conv.kind() == nn::SpectralKind::kDense) {
      auto& dc = static_cast<nn::SpectralConv&>(conv);
      const float* src = dc.weight().value.data();
      // Training layout W[i, o, k] strides by K per input channel; re-lay
      // k-major so the contraction's ascending-i inner loop is contiguous.
      // A pure gather: every value is copied verbatim, so the arithmetic
      // downstream sees identical operands in identical order.
      std::vector<float>& pw = pw_[ls];
      pw.resize(static_cast<std::size_t>(K * w * w * 2));
      for (index_t k = 0; k < K; ++k) {
        for (index_t o = 0; o < w; ++o) {
          float* dst = pw.data() + (k * w + o) * w * 2;
          for (index_t i = 0; i < w; ++i) {
            const float* wk = src + ((i * w + o) * K + k) * 2;
            dst[2 * i] = wk[0];
            dst[2 * i + 1] = wk[1];
          }
        }
      }
      if (compressed) {
        pw16_[ls].resize(pw.size());
        util::compress_floats(pw.data(), pw16_[ls].data(), pw.size(),
                              precision_);
        pw.clear();
        pw.shrink_to_fit();
      }
    } else {
      // Factorized: one k_d-major block per axis, same (o, i) inner order
      // as the dense pack. The contraction composes the per-mode weight in
      // registers with the training path's left-to-right product order.
      auto& fc = static_cast<nn::FactorizedSpectralConv&>(conv);
      const std::size_t r = cfg_.rank();
      pf_[ls].resize(r);
      pf16_[ls].resize(r);
      for (std::size_t d = 0; d < r; ++d) {
        const float* src = fc.factor(d).value.data();  // (C_in, C_out, m_d, 2)
        const index_t m = fdims_[d];
        std::vector<float>& pf = pf_[ls][d];
        pf.resize(static_cast<std::size_t>(m * w * w * 2));
        for (index_t kd = 0; kd < m; ++kd) {
          for (index_t o = 0; o < w; ++o) {
            float* dst = pf.data() + (kd * w + o) * w * 2;
            for (index_t i = 0; i < w; ++i) {
              const float* fk = src + ((i * w + o) * m + kd) * 2;
              dst[2 * i] = fk[0];
              dst[2 * i + 1] = fk[1];
            }
          }
        }
        if (compressed) {
          pf16_[ls][d].resize(pf.size());
          util::compress_floats(pf.data(), pf16_[ls][d].data(), pf.size(),
                                precision_);
          pf.clear();
          pf.shrink_to_fit();
        }
      }
    }
  }
}

std::size_t InferenceEngine::spectral_weight_bytes() const {
  std::size_t bytes = 0;
  for (const auto& v : pw_) bytes += v.size() * sizeof(float);
  for (const auto& v : pw16_) bytes += v.size() * sizeof(std::uint16_t);
  for (const auto& axes : pf_) {
    for (const auto& v : axes) bytes += v.size() * sizeof(float);
  }
  for (const auto& axes : pf16_) {
    for (const auto& v : axes) bytes += v.size() * sizeof(std::uint16_t);
  }
  return bytes;
}

void InferenceEngine::plan(std::initializer_list<index_t> dims) {
  if (planned_ && shape_is(in_shape_, dims)) {
    plan(in_shape_);  // fast path: only rebinds the current pool
  } else {
    plan(Shape(dims));
  }
}

void InferenceEngine::plan(const Shape& in_shape) {
  TURB_TRACE_SCOPE("nn/infer_plan");
  ThreadPool& pool = ThreadPool::current();
  if (planned_ && in_shape == in_shape_ && slots_ == pool.slot_count()) {
    // Same layout — only refresh the captured pool (a Scope may have
    // switched to a different pool object of the same width).
    pool_ = &pool;
    return;
  }
  const std::size_t rank = cfg_.rank();
  TURB_CHECK_MSG(in_shape.size() == rank + 2,
                 "infer: plan shape must be (N, C_in, spatial...)");
  TURB_CHECK(in_shape[0] >= 1 && in_shape[1] == cfg_.in_channels);

  replans_.add(1);
  // Plan-time kernel selection: resolving the ISA here publishes the
  // isa/active gauge even before the first kernel dispatch, so every
  // --metrics-out snapshot that contains a plan also names its kernels.
  isa_ = util::active_isa();
  batch_ = in_shape[0];
  spatial_.assign(in_shape.begin() + 2, in_shape.end());
  n_last_ = spatial_.back();
  s_ = 1;
  for (const index_t e : spatial_) s_ *= e;
  pre_rows_ = s_ / n_last_;
  slab_ = pre_rows_ * (n_last_ / 2 + 1);

  // Kept-mode map: identical for every layer (same modes, same grid), so
  // take it from layer 0 and snapshot it — the conv may later rebuild its
  // map for a different training shape without invalidating this plan.
  nn::SpectralLayer& conv = model_->conv(0);
  conv.ensure_mode_map(spatial_);
  kept_ = conv.kept_modes();
  spec_offsets_ = conv.spec_offsets();
  const fft::ModeMask& mask = conv.mode_mask();
  keep_bins_ = mask.back();

  // c2c stage geometry over the (N, width, spec...) spectrum tensor,
  // mirroring fft::c2c_axis line decomposition and inner_keep pruning.
  Shape spec_full{batch_, cfg_.width};
  for (std::size_t d = 0; d < rank; ++d) {
    spec_full.push_back(d + 1 < rank ? spatial_[d] : n_last_ / 2 + 1);
  }
  stages_.assign(rank - 1, C2cStage{});
  line_len_ = 0;
  for (std::size_t a = 0; a + 1 < rank; ++a) {
    C2cStage& st = stages_[a];
    st.n = spatial_[a];
    st.outer = batch_ * cfg_.width;
    for (std::size_t d = 0; d < a; ++d) st.outer *= spec_full[2 + d];
    st.inner = 1;
    for (std::size_t d = a + 1; d < rank; ++d) st.inner *= spec_full[2 + d];
    st.keep = fft::detail::inner_keep_flags(mask, a + 1, spec_full, rank);
    st.kept_inner = 0;
    for (const std::uint8_t f : st.keep) st.kept_inner += (f != 0);
    line_len_ = std::max(line_len_, st.n);
  }

  // Arena layout. Activation ping-pong pair, rollout window + prediction
  // pair, three spectrum slabs, and per-slot kernel scratch.
  const index_t w = cfg_.width;
  const index_t spec_elems = batch_ * w * slab_;
  tile_rows_ = std::max({cfg_.lifting_channels, cfg_.projection_channels, w});
  slots_ = pool.slot_count();
  arena_.begin_layout();
  off_h0_ = arena_.reserve<float>(batch_ * w * s_);
  off_h1_ = arena_.reserve<float>(batch_ * w * s_);
  off_win_ = arena_.reserve<float>(batch_ * cfg_.in_channels * s_);
  off_pred0_ = arena_.reserve<float>(batch_ * cfg_.out_channels * s_);
  off_pred1_ = arena_.reserve<float>(batch_ * cfg_.out_channels * s_);
  off_xspec_ = arena_.reserve<cpxf>(spec_elems);
  off_yspec_ = arena_.reserve<cpxf>(spec_elems);
  off_work_ = arena_.reserve<cpxf>(spec_elems);
  off_twf_ = arena_.reserve<cpxf>(n_last_ / 2 + 1);
  off_twi_ = arena_.reserve<cpxf>(n_last_ / 2);
  off_tile_.assign(slots_, 0);
  off_z_.assign(slots_, 0);
  off_line_.assign(slots_, 0);
  off_xg_.assign(slots_, 0);
  off_zl_.assign(slots_, 0);
  off_ul_.assign(slots_, 0);
  off_lanes_.assign(slots_, 0);
  const index_t h = n_last_ / 2;
  for (std::size_t t = 0; t < slots_; ++t) {
    off_tile_[t] = arena_.reserve<float>(tile_rows_ * kColBlock);
    off_z_[t] = arena_.reserve<cpxf>(h);
    off_line_[t] = arena_.reserve<cpxf>(line_len_);
    off_xg_[t] = arena_.reserve<cpxf>(w);
    off_zl_[t] = arena_.reserve<cpxf>(h * fft::kMaxLanes);
    off_ul_[t] = arena_.reserve<cpxf>((h + 1) * fft::kMaxLanes);
    off_lanes_[t] = arena_.reserve<cpxf>(line_len_ * fft::kMaxLanes);
  }
  arena_.commit();  // zero-fill: establishes the y_spec zero invariant
  arena_gauge_.set(static_cast<double>(arena_.bytes()));

  // Twiddle tables, computed once here instead of per rfft/irfft call — the
  // fill helpers evaluate the exact expressions the per-call wrappers use,
  // so table-fed transforms stay bitwise identical to the training path.
  fft::fill_rfft_twiddles(arena_.at<cpxf>(off_twf_), n_last_);
  fft::fill_irfft_twiddles(arena_.at<cpxf>(off_twi_), n_last_);

  pool_ = &pool;
  in_shape_ = in_shape;
  out_shape_ = in_shape;
  out_shape_[1] = cfg_.out_channels;
  planned_ = true;
}

float* InferenceEngine::window_buffer() const {
  TURB_CHECK_MSG(planned_, "infer: window_buffer before plan");
  return arena_.at<float>(off_win_);
}

float* InferenceEngine::pred_buffer(int i) const {
  TURB_CHECK_MSG(planned_, "infer: pred_buffer before plan");
  return arena_.at<float>(i == 0 ? off_pred0_ : off_pred1_);
}

void InferenceEngine::forward(const TensorF& x, TensorF& y) {
  // Implicit replan inside the hot path: the caller skipped plan(). The
  // counter lets the zero-alloc CI gate catch accidental shape churn;
  // explicit plan() calls (benches sweeping shapes) do not count. plan()
  // itself is a cheap no-op on the planned shape but still rebinds the
  // current pool, so a ThreadPool::Scope change between calls stays safe.
  if (planned_ && x.shape() != in_shape_) steady_allocs_.add(1);
  plan(x.shape());
  if (y.shape() != out_shape_) y = TensorF(out_shape_);
  forward_raw(x.data(), y.data());
}

void InferenceEngine::forward_raw(const float* x, float* y) {
  TURB_TRACE_SCOPE("nn/infer_forward");
  TURB_CHECK_MSG(planned_, "infer: forward before plan");
  forward_calls_.add(1);
  float* h0 = arena_.at<float>(off_h0_);
  float* h1 = arena_.at<float>(off_h1_);
  lift(x, h0);
  float* cur = h0;
  float* nxt = h1;
  for (index_t l = 0; l < cfg_.n_layers; ++l) {
    spectral_layer(l, cur, nxt, l + 1 == cfg_.n_layers);
    std::swap(cur, nxt);
  }
  project(cur, y);
}

void InferenceEngine::lift(const float* x, float* h) {
  TURB_TRACE_SCOPE("nn/infer_lift");
  const index_t cin = cfg_.in_channels, cl = cfg_.lifting_channels;
  const index_t w = cfg_.width, s = s_;
  const index_t nblocks = (s + kColBlock - 1) / kColBlock;
  const float* wl1 = wl1_.data();
  const float* bl1 = bl1_.data();
  const float* wl2 = wl2_.data();
  const float* bl2 = bl2_.data();
  run_chunks(*pool_, batch_ * nblocks, [&](index_t tb, index_t te) {
    const std::size_t slot = pool_->scratch_slot();
    float* tile = arena_.at<float>(off_tile_[slot]);
    for (index_t t = tb; t < te; ++t) {
      const index_t n = t / nblocks;
      const index_t j0 = (t % nblocks) * kColBlock;
      const index_t bs = std::min(kColBlock, s - j0);
      // lift1 GEMM into the tile, bias + GELU fused in the tile, lift2 GEMM
      // straight into h (strided), bias in place — the (N, C_lift, S)
      // intermediate of the training path never exists.
      gemm_nn<float>(cl, bs, cin, 1.0f, wl1, cin, x + n * cin * s + j0, s,
                     0.0f, tile, bs);
      for (index_t o = 0; o < cl; ++o) {
        float* row = tile + o * bs;
        const float b = bl1[o];
        for (index_t j = 0; j < bs; ++j) row[j] = gelu(row[j] + b);
      }
      gemm_nn<float>(w, bs, cl, 1.0f, wl2, cl, tile, bs, 0.0f,
                     h + n * w * s + j0, s);
      for (index_t o = 0; o < w; ++o) {
        float* row = h + n * w * s + o * s + j0;
        const float b = bl2[o];
        for (index_t j = 0; j < bs; ++j) row[j] += b;
      }
    }
  });
}

void InferenceEngine::project(const float* h, float* y) {
  TURB_TRACE_SCOPE("nn/infer_project");
  const index_t w = cfg_.width, cp = cfg_.projection_channels;
  const index_t cout = cfg_.out_channels, s = s_;
  const index_t nblocks = (s + kColBlock - 1) / kColBlock;
  const float* wp1 = wp1_.data();
  const float* bp1 = bp1_.data();
  const float* wp2 = wp2_.data();
  const float* bp2 = bp2_.data();
  run_chunks(*pool_, batch_ * nblocks, [&](index_t tb, index_t te) {
    const std::size_t slot = pool_->scratch_slot();
    float* tile = arena_.at<float>(off_tile_[slot]);
    for (index_t t = tb; t < te; ++t) {
      const index_t n = t / nblocks;
      const index_t j0 = (t % nblocks) * kColBlock;
      const index_t bs = std::min(kColBlock, s - j0);
      gemm_nn<float>(cp, bs, w, 1.0f, wp1, w, h + n * w * s + j0, s, 0.0f,
                     tile, bs);
      for (index_t o = 0; o < cp; ++o) {
        float* row = tile + o * bs;
        const float b = bp1[o];
        for (index_t j = 0; j < bs; ++j) row[j] = gelu(row[j] + b);
      }
      gemm_nn<float>(cout, bs, cp, 1.0f, wp2, cp, tile, bs, 0.0f,
                     y + n * cout * s + j0, s);
      for (index_t o = 0; o < cout; ++o) {
        float* row = y + n * cout * s + o * s + j0;
        const float b = bp2[o];
        for (index_t j = 0; j < bs; ++j) row[j] += b;
      }
    }
  });
}

void InferenceEngine::rfft_rows(const float* in, cpxf* out) {
  const index_t rows = batch_ * cfg_.width * pre_rows_;
  const index_t out_row = n_last_ / 2 + 1;
  fft_r2c_lines_.add(rows);
  fft_lines_total_.add(rows);
  util::fft_dispatch_counter(util::active_isa()).add(1);
  const std::uint8_t* keep = keep_bins_.empty() ? nullptr : keep_bins_.data();
  const cpxf* tw = arena_.at<cpxf>(off_twf_);
  const index_t b =
      fft::line_batching_enabled() ? fft::lane_count<float>(isa_) : 1;
  if (b > 1) {
    run_chunks(*pool_, rows, [&](index_t rb, index_t re) {
      const std::size_t slot = pool_->scratch_slot();
      cpxf* zl = arena_.at<cpxf>(off_zl_[slot]);
      cpxf* ul = arena_.at<cpxf>(off_ul_[slot]);
      std::int64_t my_batched = 0, my_tails = 0;
      for (index_t r = rb; r < re; r += b) {
        const index_t nl = std::min(b, re - r);
        fft::rfft_batch_scratch(in + r * n_last_, n_last_, out + r * out_row,
                                out_row, n_last_, nl, keep, zl, ul, tw);
        my_batched += nl;
        if (nl < b) my_tails += nl;
      }
      fft_batched_lines_.add(my_batched);
      if (my_tails != 0) fft_batch_tail_lines_.add(my_tails);
    });
    return;
  }
  run_chunks(*pool_, rows, [&](index_t rb, index_t re) {
    cpxf* z = arena_.at<cpxf>(off_z_[pool_->scratch_slot()]);
    for (index_t r = rb; r < re; ++r) {
      fft::rfft_scratch(in + r * n_last_, out + r * out_row, n_last_, keep, z,
                        tw);
    }
  });
}

void InferenceEngine::irfft_rows(const cpxf* in, float* out) {
  const index_t rows = batch_ * cfg_.width * pre_rows_;
  const index_t in_row = n_last_ / 2 + 1;
  fft_c2r_lines_.add(rows);
  fft_lines_total_.add(rows);
  util::fft_dispatch_counter(util::active_isa()).add(1);
  const cpxf* tw = arena_.at<cpxf>(off_twi_);
  const index_t b =
      fft::line_batching_enabled() ? fft::lane_count<float>(isa_) : 1;
  if (b > 1) {
    run_chunks(*pool_, rows, [&](index_t rb, index_t re) {
      const std::size_t slot = pool_->scratch_slot();
      cpxf* zl = arena_.at<cpxf>(off_zl_[slot]);
      cpxf* ul = arena_.at<cpxf>(off_ul_[slot]);
      std::int64_t my_batched = 0, my_tails = 0;
      for (index_t r = rb; r < re; r += b) {
        const index_t nl = std::min(b, re - r);
        fft::irfft_batch_scratch(in + r * in_row, in_row, out + r * n_last_,
                                 n_last_, n_last_, nl, zl, ul, tw);
        my_batched += nl;
        if (nl < b) my_tails += nl;
      }
      fft_batched_lines_.add(my_batched);
      if (my_tails != 0) fft_batch_tail_lines_.add(my_tails);
    });
    return;
  }
  run_chunks(*pool_, rows, [&](index_t rb, index_t re) {
    cpxf* z = arena_.at<cpxf>(off_z_[pool_->scratch_slot()]);
    for (index_t r = rb; r < re; ++r) {
      fft::irfft_scratch(in + r * in_row, out + r * n_last_, n_last_, z, tw);
    }
  });
}

void InferenceEngine::c2c_stage(const cpxf* src, cpxf* dst, const C2cStage& st,
                                bool forward_dir) {
  if (st.n == 1) return;  // mirrors c2c_axis: counted only when transformed
  fft_lines_total_.add(st.outer * st.inner);
  util::fft_dispatch_counter(util::active_isa()).add(1);
  const std::uint8_t* keep = nullptr;
  if (!st.keep.empty()) {
    keep = st.keep.data();
    fft_lines_skipped_.add(st.outer * (st.inner - st.kept_inner));
  }
  const fft::PlanC2C<float>& p = fft::plan<float>(st.n);
  const index_t n = st.n, inner = st.inner;
  if (inner == 1 && src == dst) {
    if (keep != nullptr && keep[0] == 0) return;
    run_chunks(*pool_, st.outer, [&](index_t ob, index_t oe) {
      for (index_t o = ob; o < oe; ++o) {
        cpxf* line = dst + o * n;
        forward_dir ? p.forward(line) : p.inverse(line);
      }
    });
    return;
  }
  // Gather line → transform → scatter. src may differ from dst (the first
  // inverse stage reads y_spec and writes the workspace directly, replacing
  // a slab-sized memcpy); the gathered values and the transform are the
  // same either way, and skipped lines leave dst untouched — zero by the
  // arena-commit invariant, exactly what the in-place path would hold.
  //
  // With line batching on, kept lines are collected into lane-interleaved
  // batches of up to B within each chunk (mirroring fft::c2c_axis), so the
  // chunk partition and thread-count determinism are unchanged; batch
  // occupancy invariance (fft/plan.hpp) makes the grouping unobservable in
  // the output bits.
  const index_t b =
      fft::line_batching_enabled() ? fft::lane_count<float>(isa_) : 1;
  if (b > 1) {
    const bool lanes_layout = p.batch_wants_lanes();
    run_chunks(*pool_, st.outer * inner, [&](index_t tb, index_t te) {
      cpxf* work = arena_.at<cpxf>(off_lanes_[pool_->scratch_slot()]);
      const cpxf* in_lanes[fft::kMaxLanes];
      cpxf* out_lanes[fft::kMaxLanes];
      index_t count = 0;
      std::int64_t my_batched = 0, my_tails = 0;
      const auto flush = [&] {
        if (count == 0) return;
        if (lanes_layout) {
          for (index_t l = 0; l < count; ++l) {
            const cpxf* base = in_lanes[l];
            for (index_t j = 0; j < n; ++j) {
              work[j * count + l] = base[j * inner];
            }
          }
          forward_dir ? p.forward_batch(work, count)
                      : p.inverse_batch(work, count);
          for (index_t l = 0; l < count; ++l) {
            cpxf* base = out_lanes[l];
            for (index_t j = 0; j < n; ++j) {
              base[j * inner] = work[j * count + l];
            }
          }
        } else {
          for (index_t l = 0; l < count; ++l) {
            const cpxf* base = in_lanes[l];
            cpxf* w = work + l * n;
            for (index_t j = 0; j < n; ++j) w[j] = base[j * inner];
          }
          forward_dir ? p.forward_lines(work, count)
                      : p.inverse_lines(work, count);
          for (index_t l = 0; l < count; ++l) {
            cpxf* base = out_lanes[l];
            const cpxf* w = work + l * n;
            for (index_t j = 0; j < n; ++j) base[j * inner] = w[j];
          }
        }
        my_batched += count;
        if (count < b) my_tails += count;
        count = 0;
      };
      for (index_t t = tb; t < te; ++t) {
        const index_t o = t / inner;
        const index_t i = t % inner;
        if (keep != nullptr && keep[i] == 0) continue;
        in_lanes[count] = src + o * n * inner + i;
        out_lanes[count] = dst + o * n * inner + i;
        if (++count == b) flush();
      }
      flush();
      fft_batched_lines_.add(my_batched);
      if (my_tails != 0) fft_batch_tail_lines_.add(my_tails);
    });
    return;
  }
  run_chunks(*pool_, st.outer * inner, [&](index_t tb, index_t te) {
    cpxf* line = arena_.at<cpxf>(off_line_[pool_->scratch_slot()]);
    for (index_t t = tb; t < te; ++t) {
      const index_t o = t / inner;
      const index_t i = t % inner;
      if (keep != nullptr && keep[i] == 0) continue;
      const cpxf* in_base = src + o * n * inner + i;
      cpxf* out_base = dst + o * n * inner + i;
      for (index_t j = 0; j < n; ++j) line[j] = in_base[j * inner];
      forward_dir ? p.forward(line) : p.inverse(line);
      for (index_t j = 0; j < n; ++j) out_base[j * inner] = line[j];
    }
  });
}

void InferenceEngine::contract(index_t l, const cpxf* xs, cpxf* ys) {
  const index_t w = cfg_.width, K = kept_, slab = slab_;
  const index_t* offs = spec_offsets_.data();
  const auto ls = static_cast<std::size_t>(l);
  const bool factorized =
      cfg_.spectral_kind == nn::SpectralKind::kFactorized;

  if (!factorized) {
    // Dense contraction over the k-major pack; `load` widens one stored
    // weight component to fp32 (identity at fp32, bf16/fp16 widening on the
    // compressed path — the only arithmetic difference between the tiers).
    auto dense_contract = [&](const auto* pw, auto load) {
      run_chunks(*pool_, batch_ * K, [&](index_t tb, index_t te) {
        cpxf* xg = arena_.at<cpxf>(off_xg_[pool_->scratch_slot()]);
        for (index_t t = tb; t < te; ++t) {
          const index_t n = t / K;
          const index_t k = t % K;
          const index_t off = offs[k];
          const cpxf* xn = xs + n * w * slab;
          cpxf* yn = ys + n * w * slab;
          // Gather the input channels of this mode once (a verbatim copy),
          // then run the training contraction: for every output channel,
          // accumulate over input channels in ascending order — the
          // identical per-element expression and rounding sequence as the
          // training forward, just with contiguous (prepacked) weight reads.
          for (index_t i = 0; i < w; ++i) xg[i] = xn[i * slab + off];
          const auto* pk = pw + k * w * w * 2;
          for (index_t o = 0; o < w; ++o) {
            const auto* po = pk + o * w * 2;
            float ar = 0.0f, ai = 0.0f;
            for (index_t i = 0; i < w; ++i) {
              const cpxf xv = xg[i];
              const float wr = load(po[2 * i]);
              const float wi = load(po[2 * i + 1]);
              ar += wr * xv.real() - wi * xv.imag();
              ai += wr * xv.imag() + wi * xv.real();
            }
            yn[o * slab + off] = cpxf(ar, ai);
          }
        }
      });
    };
    if (precision_ == util::Precision::kFp32) {
      dense_contract(pw_[ls].data(), [](float v) { return v; });
    } else if (precision_ == util::Precision::kBf16) {
      dense_contract(pw16_[ls].data(),
                     [](std::uint16_t v) { return util::bf16_to_float(v); });
    } else {
      dense_contract(pw16_[ls].data(),
                     [](std::uint16_t v) { return util::fp16_to_float(v); });
    }
    return;
  }

  // Factorized contraction: compose the per-mode weight from the per-axis
  // k_d-major packs in registers while the gathered input streams through —
  // the factors' small working set (Σ m_d instead of ∏ m_d rows) is the
  // bandwidth win. The left-to-right complex product matches the training
  // layer's materialisation order, but because that layer rounds the
  // product through memory in a separate loop, -ffp-contract=fast may fuse
  // the two contexts differently (DESIGN.md codegen caveat): the factorized
  // fp32 tier promises bounded agreement with Fno::forward plus strict
  // bitwise reproducibility across thread counts and repeats.
  const std::size_t r = cfg_.rank();
  auto fact_contract = [&](const auto& packs, auto load) {
    const index_t* fx[3] = {nullptr, nullptr, nullptr};
    for (std::size_t d = 0; d < r; ++d) fx[d] = fidx_[d].data();
    run_chunks(*pool_, batch_ * K, [&](index_t tb, index_t te) {
      cpxf* xg = arena_.at<cpxf>(off_xg_[pool_->scratch_slot()]);
      for (index_t t = tb; t < te; ++t) {
        const index_t n = t / K;
        const index_t k = t % K;
        const index_t off = offs[k];
        const cpxf* xn = xs + n * w * slab;
        cpxf* yn = ys + n * w * slab;
        for (index_t i = 0; i < w; ++i) xg[i] = xn[i * slab + off];
        for (index_t o = 0; o < w; ++o) {
          decltype(packs[0].data()) row[3] = {nullptr, nullptr, nullptr};
          for (std::size_t d = 0; d < r; ++d) {
            row[d] = packs[d].data() + (fx[d][k] * w + o) * w * 2;
          }
          float ar = 0.0f, ai = 0.0f;
          for (index_t i = 0; i < w; ++i) {
            float wr = load(row[0][2 * i]);
            float wi = load(row[0][2 * i + 1]);
            for (std::size_t d = 1; d < r; ++d) {
              const float fr = load(row[d][2 * i]);
              const float fi = load(row[d][2 * i + 1]);
              const float nr = wr * fr - wi * fi;
              const float ni = wr * fi + wi * fr;
              wr = nr;
              wi = ni;
            }
            const cpxf xv = xg[i];
            ar += wr * xv.real() - wi * xv.imag();
            ai += wr * xv.imag() + wi * xv.real();
          }
          yn[o * slab + off] = cpxf(ar, ai);
        }
      }
    });
  };
  if (precision_ == util::Precision::kFp32) {
    fact_contract(pf_[ls], [](float v) { return v; });
  } else if (precision_ == util::Precision::kBf16) {
    fact_contract(pf16_[ls],
                  [](std::uint16_t v) { return util::bf16_to_float(v); });
  } else {
    fact_contract(pf16_[ls],
                  [](std::uint16_t v) { return util::fp16_to_float(v); });
  }
}

void InferenceEngine::spectral_layer(index_t l, const float* h_in,
                                     float* h_out, bool last_layer) {
  TURB_TRACE_SCOPE("nn/infer_spectral");
  cpxf* xspec = arena_.at<cpxf>(off_xspec_);
  cpxf* yspec = arena_.at<cpxf>(off_yspec_);
  cpxf* work = arena_.at<cpxf>(off_work_);
  const std::size_t rank = cfg_.rank();

  // Forward transform of h_in (rfft rows, then c2c stages innermost-first —
  // the rfftn_into stage order).
  rfft_rows(h_in, xspec);
  for (std::size_t a = rank - 1; a-- > 0;) {
    c2c_stage(xspec, xspec, stages_[a], /*forward_dir=*/true);
  }

  // Kept-mode contraction into y_spec (zero outside kept offsets by the
  // arena-commit invariant), then the irfftn path into h_out. y_spec must
  // stay pristine — the next layer's contraction rewrites only kept
  // offsets — so inverse stages never run in place on it. Rank 2 has a
  // single c2c stage, which reads y_spec and writes the workspace directly
  // (skipped lines leave workspace zeros that match the zeros a fresh copy
  // would hold, because skipped ⊆ outside the product mask). With two or
  // more stages that shortcut is unsound — a later stage writes positions
  // an earlier stage skips, so layer-stale values would survive where the
  // training path sees zeros — hence the slab copy.
  contract(l, xspec, yspec);
  if (rank == 2) {
    c2c_stage(yspec, work, stages_[0], /*forward_dir=*/false);
  } else {
    std::memcpy(work, yspec,
                static_cast<std::size_t>(batch_ * cfg_.width * slab_) *
                    sizeof(cpxf));
    for (std::size_t a = 0; a + 1 < rank; ++a) {
      c2c_stage(work, work, stages_[a], /*forward_dir=*/false);
    }
  }
  irfft_rows(work, h_out);

  // Fused skip path: 1×1 skip GEMM into the tile, then per element the
  // training rounding chain — skip = fl(gemm + bias); v = fl(spat + skip);
  // GELU except on the last block — written in place over the irfft output.
  // (A beta=1 GEMM accumulating into h_out would round as
  // fl(fl(spat + Σ) + bias) instead — a different sequence; forbidden.)
  // A per-spatial-row irfft+skip fusion (one pass over h_out) was measured
  // and lost: it trades the h_out re-read for strided transform I/O, a net
  // regression over the streaming two-pass layout below.
  const index_t w = cfg_.width, s = s_;
  const float* wsk = wskip_[static_cast<std::size_t>(l)].data();
  const float* bsk = bskip_[static_cast<std::size_t>(l)].data();
  const index_t nblocks = (s + kColBlock - 1) / kColBlock;
  run_chunks(*pool_, batch_ * nblocks, [&](index_t tb, index_t te) {
    const std::size_t slot = pool_->scratch_slot();
    float* tile = arena_.at<float>(off_tile_[slot]);
    for (index_t t = tb; t < te; ++t) {
      const index_t n = t / nblocks;
      const index_t j0 = (t % nblocks) * kColBlock;
      const index_t bs = std::min(kColBlock, s - j0);
      gemm_nn<float>(w, bs, w, 1.0f, wsk, w, h_in + n * w * s + j0, s, 0.0f,
                     tile, bs);
      for (index_t o = 0; o < w; ++o) {
        const float* srow = tile + o * bs;
        float* drow = h_out + n * w * s + o * s + j0;
        const float b = bsk[o];
        if (last_layer) {
          for (index_t j = 0; j < bs; ++j) drow[j] += srow[j] + b;
        } else {
          for (index_t j = 0; j < bs; ++j) {
            drow[j] = gelu(drow[j] + (srow[j] + b));
          }
        }
      }
    }
  });
}

void InferenceEngine::slide_window(float* win, const float* pred,
                                   index_t batch, index_t frame) const {
  const index_t cin = cfg_.in_channels, cout = cfg_.out_channels;
  for (index_t b = 0; b < batch; ++b) {
    float* wb = win + b * cin * frame;
    const float* pb = pred + b * cout * frame;
    if (cout >= cin) {
      std::copy_n(pb + (cout - cin) * frame, cin * frame, wb);
    } else {
      // Overlapping forward copy: dest < src, reads stay ahead of writes.
      std::copy(wb + cout * frame, wb + cin * frame, wb);
      std::copy_n(pb, cout * frame, wb + (cin - cout) * frame);
    }
  }
}

void InferenceEngine::rollout_channels_into(const TensorF& history,
                                            index_t steps, TensorF& out) {
  TURB_TRACE_SCOPE("nn/infer_rollout");
  TURB_CHECK_MSG(cfg_.rank() == 2, "rollout_channels needs a rank-2 model");
  TURB_CHECK_MSG(history.rank() == 3 && history.dim(0) == cfg_.in_channels,
                 "history must be (C_in, H, W)");
  TURB_CHECK(steps >= 1);
  const index_t h = history.dim(1), w = history.dim(2);
  const index_t frame = h * w;
  const index_t cin = cfg_.in_channels, cout = cfg_.out_channels;
  plan({1, cin, h, w});
  if (!shape_is(out.shape(), {steps, h, w})) out = TensorF({steps, h, w});

  float* win = window_buffer();
  std::copy_n(history.data(), cin * frame, win);
  const float* cur_in = win;
  int pp = 0;
  index_t produced = 0;
  while (produced < steps) {
    float* pred = pred_buffer(pp);
    forward_raw(cur_in, pred);
    const index_t take = std::min(cout, steps - produced);
    std::copy_n(pred, take * frame, out.data() + produced * frame);
    produced += take;
    if (cout >= cin) {
      // The next window is a suffix of this prediction: point straight into
      // the ping buffer and write the next step into the pong buffer.
      cur_in = pred + (cout - cin) * frame;
      pp ^= 1;
    } else {
      slide_window(win, pred, 1, frame);
      cur_in = win;  // input and output buffers stay disjoint; no flip
    }
  }
}

void InferenceEngine::rollout_channels_batched_into(const TensorF& histories,
                                                    index_t steps,
                                                    TensorF& out) {
  TURB_TRACE_SCOPE("nn/infer_rollout");
  TURB_CHECK_MSG(cfg_.rank() == 2, "batched rollout needs a rank-2 model");
  TURB_CHECK_MSG(histories.rank() == 4 && histories.dim(1) == cfg_.in_channels,
                 "histories must be (B, C_in, H, W)");
  TURB_CHECK(steps >= 1);
  const index_t nb = histories.dim(0);
  const index_t h = histories.dim(2), w = histories.dim(3);
  const index_t frame = h * w;
  const index_t cin = cfg_.in_channels, cout = cfg_.out_channels;
  plan({nb, cin, h, w});
  if (!shape_is(out.shape(), {nb, steps, h, w})) {
    out = TensorF({nb, steps, h, w});
  }

  float* win = window_buffer();
  std::copy_n(histories.data(), nb * cin * frame, win);
  float* pred = pred_buffer(0);
  index_t produced = 0;
  while (produced < steps) {
    forward_raw(win, pred);
    const index_t take = std::min(cout, steps - produced);
    for (index_t b = 0; b < nb; ++b) {
      std::copy_n(pred + b * cout * frame, take * frame,
                  out.data() + (b * steps + produced) * frame);
    }
    slide_window(win, pred, nb, frame);
    produced += take;
  }
}

void InferenceEngine::rollout_3d_into(const TensorF& seed_block,
                                      index_t blocks, TensorF& out) {
  TURB_TRACE_SCOPE("nn/infer_rollout");
  TURB_CHECK_MSG(cfg_.rank() == 3, "rollout_3d needs a rank-3 model");
  TURB_CHECK_MSG(seed_block.rank() == 3, "seed block must be (T, H, W)");
  TURB_CHECK(blocks >= 1);
  const index_t t = seed_block.dim(0);
  const index_t h = seed_block.dim(1), w = seed_block.dim(2);
  const index_t block_elems = t * h * w;
  plan({1, 1, t, h, w});
  if (!shape_is(out.shape(), {blocks * t, h, w})) {
    out = TensorF({blocks * t, h, w});
  }

  float* win = window_buffer();
  std::copy_n(seed_block.data(), block_elems, win);
  const float* cur = win;
  int pp = 0;
  for (index_t b = 0; b < blocks; ++b) {
    float* pred = pred_buffer(pp);
    forward_raw(cur, pred);
    std::copy_n(pred, block_elems, out.data() + b * block_elems);
    cur = pred;  // next block consumes this prediction in place
    pp ^= 1;
  }
}

}  // namespace turb::infer
