// Bump-pointer arena backing the inference engine.
//
// All activation, spectrum, and per-thread scratch buffers of a planned FNO
// execution are laid out once (reserve calls between begin_layout and
// commit) and then served as aligned slices of one heap block. The block is
// grow-only: replanning to a larger shape reallocates, replanning to a
// smaller or equal footprint reuses the existing storage — so the steady
// state of any fixed shape performs zero heap allocations.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>

#include "util/common.hpp"

namespace turb::infer {

class Arena {
 public:
  /// Every slice starts on a 64-byte boundary (cache line; covers any vector
  /// width the compiler picks for the kernels).
  static constexpr std::size_t kAlign = 64;

  Arena() = default;
  ~Arena() { release(); }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Start a new layout. Previously handed-out offsets become invalid;
  /// the underlying storage is kept for reuse.
  void begin_layout() { used_ = 0; }

  /// Reserve `count` elements of T; returns the slice's byte offset,
  /// resolvable via at<T>() after commit().
  template <typename T>
  [[nodiscard]] std::size_t reserve(index_t count) {
    TURB_CHECK(count >= 0);
    used_ = (used_ + kAlign - 1) / kAlign * kAlign;
    const std::size_t off = used_;
    used_ += static_cast<std::size_t>(count) * sizeof(T);
    return off;
  }

  /// Materialise the layout: grow the block if needed (the only point at
  /// which the arena may touch the heap) and zero-fill the used region —
  /// which is what establishes the "unkept spectrum positions are exactly
  /// zero" invariant the pruned inverse FFT relies on.
  void commit() {
    if (used_ > capacity_) {
      release();
      data_ = static_cast<std::byte*>(
          ::operator new(used_, std::align_val_t{kAlign}));
      capacity_ = used_;
    }
    if (used_ > 0) std::memset(data_, 0, used_);
  }

  template <typename T>
  [[nodiscard]] T* at(std::size_t offset) const {
    return reinterpret_cast<T*>(data_ + offset);
  }

  /// Bytes of the committed layout (what the infer/arena_bytes gauge reports).
  [[nodiscard]] std::size_t bytes() const { return used_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  void release() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kAlign});
      data_ = nullptr;
    }
    capacity_ = 0;
  }

  std::byte* data_ = nullptr;
  std::size_t used_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace turb::infer
