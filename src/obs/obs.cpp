#include "obs/obs.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace turb::obs {

namespace {

std::atomic<bool> g_enabled{true};

/// Node-based maps keep metric addresses stable across later insertions.
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<TimerStat>, std::less<>> timers;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives atexit dumps
  return *r;
}

template <typename T>
T& find_or_create(std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
                  std::mutex& mutex, std::string_view name) {
  std::lock_guard lock(mutex);
  const auto it = map.find(name);
  if (it != map.end()) return *it->second;
  return *map.emplace(std::string(name), std::make_unique<T>()).first->second;
}

void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_double(std::ostringstream& os, double v) {
  // JSON has no Infinity/NaN; min_seconds is +inf before the first record.
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    os << buf;
  } else {
    os << "null";
  }
}

std::string& dump_path() {
  static std::string* path = new std::string();
  return *path;
}

std::mutex& dump_path_mutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

}  // namespace

Counter& counter(std::string_view name) {
  Registry& r = registry();
  return find_or_create(r.counters, r.mutex, name);
}

Gauge& gauge(std::string_view name) {
  Registry& r = registry();
  return find_or_create(r.gauges, r.mutex, name);
}

TimerStat& timer(std::string_view name) {
  Registry& r = registry();
  return find_or_create(r.timers, r.mutex, name);
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void reset() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, g] : r.gauges) g->reset();
  for (auto& [name, t] : r.timers) t->reset();
}

std::string to_json() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::ostringstream os;
  os << "{\n  \"version\": 1,\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : r.counters) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    append_escaped(os, name);
    os << ": " << c->value();
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : r.gauges) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    append_escaped(os, name);
    os << ": ";
    append_double(os, g->value());
  }
  os << (first ? "" : "\n  ") << "},\n  \"spans\": {";
  first = true;
  for (const auto& [name, t] : r.timers) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    append_escaped(os, name);
    const std::int64_t n = t->count();
    os << ": {\"count\": " << n << ", \"total_seconds\": ";
    append_double(os, t->total_seconds());
    os << ", \"min_seconds\": ";
    append_double(os, t->min_seconds());
    os << ", \"max_seconds\": ";
    append_double(os, t->max_seconds());
    os << ", \"mean_seconds\": ";
    append_double(os, n > 0 ? t->total_seconds() / static_cast<double>(n)
                            : 0.0);
    os << "}";
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

bool dump_json(const std::string& path) {
  const std::string json = to_json();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << json;
  return static_cast<bool>(out);
}

void dump_json_at_exit(const std::string& path) {
  {
    std::lock_guard lock(dump_path_mutex());
    dump_path() = path;
  }
  static const int registered = [] {
    std::atexit([] {
      std::string path_copy;
      {
        std::lock_guard lock(dump_path_mutex());
        path_copy = dump_path();
      }
      if (!path_copy.empty() && !dump_json(path_copy)) {
        std::fprintf(stderr, "obs: failed to write metrics to %s\n",
                     path_copy.c_str());
      }
    });
    return 0;
  }();
  (void)registered;
}

}  // namespace turb::obs
