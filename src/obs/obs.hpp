// Observability: a process-wide metrics registry plus scoped trace spans.
//
// Three metric kinds, all safe to update concurrently from thread-pool
// workers without locks on the hot path:
//
//   * Counter   — monotonically increasing integer (events, flops, lines)
//   * Gauge     — last-written double (learning rate, active threads)
//   * TimerStat — histogram-style duration accumulator (count/total/min/max)
//
// Metric objects are created on first lookup and live for the process
// lifetime at a stable address, so call sites cache a reference once (the
// TURB_TRACE_SCOPE macro does this with a function-local static) and the
// per-event cost is a handful of relaxed atomics — no registry lock.
//
// Span naming convention: `subsystem/op`, e.g. "fft/r2c", "nn/linear_fwd",
// "train/forward", "hybrid/pde_window". dump_json() exports every metric as
//
//   { "version": 1,
//     "counters": {"tensor/gemm_calls": 123, ...},
//     "gauges":   {"train/lr": 1e-3, ...},
//     "spans":    {"fft/r2c": {"count": 10, "total_seconds": 0.5,
//                              "min_seconds": ..., "max_seconds": ...,
//                              "mean_seconds": ...}, ...} }
//
// Tracing is on by default; set_enabled(false) turns ScopedTimer into a
// no-op (counters and explicit record() calls still work).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

namespace turb::obs {

namespace detail {

/// Relaxed-order add for atomic<double> via CAS (portable where
/// fetch_add on floating atomics is not yet available).
inline void atomic_add(std::atomic<double>& a, double delta) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

inline void atomic_min(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

class Counter {
 public:
  void add(std::int64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Duration accumulator: count, total, min, max — enough for a phase
/// breakdown without per-sample storage.
class TimerStat {
 public:
  void record(double seconds) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add(total_, seconds);
    detail::atomic_min(min_, seconds);
    detail::atomic_max(max_, seconds);
  }
  [[nodiscard]] std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double total_seconds() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  /// +inf until the first record().
  [[nodiscard]] double min_seconds() const noexcept {
    return min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max_seconds() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    count_.store(0, std::memory_order_relaxed);
    total_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> total_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0.0};
};

/// Find-or-create; the returned reference is stable for the process
/// lifetime. Lookup takes the registry lock — cache the reference at hot
/// call sites.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
TimerStat& timer(std::string_view name);

/// Globally enable/disable scoped tracing (default: enabled).
void set_enabled(bool on) noexcept;
[[nodiscard]] bool enabled() noexcept;

/// Zero every registered metric (registrations — and therefore cached
/// references — stay valid).
void reset();

/// Serialise the whole registry (schema in the file header).
[[nodiscard]] std::string to_json();

/// Write to_json() to `path`; returns false on I/O failure.
bool dump_json(const std::string& path);

/// Register an atexit hook that dumps the registry to `path` when the
/// process exits normally (later calls just replace the path).
void dump_json_at_exit(const std::string& path);

/// RAII span: records wall time into a TimerStat on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerStat& stat) noexcept
      : stat_(&stat), active_(enabled()) {
    if (active_) start_ = clock::now();
  }
  ~ScopedTimer() {
    if (active_) {
      stat_->record(
          std::chrono::duration<double>(clock::now() - start_).count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  using clock = std::chrono::steady_clock;
  TimerStat* stat_;
  bool active_;
  clock::time_point start_;
};

}  // namespace turb::obs

#define TURB_OBS_CONCAT_INNER(a, b) a##b
#define TURB_OBS_CONCAT(a, b) TURB_OBS_CONCAT_INNER(a, b)

/// Time the enclosing scope into the span `name` (a `subsystem/op` string
/// literal). The TimerStat lookup happens once per call site.
#define TURB_TRACE_SCOPE(name)                                      \
  static ::turb::obs::TimerStat& TURB_OBS_CONCAT(                   \
      turb_obs_stat_, __LINE__) = ::turb::obs::timer(name);         \
  ::turb::obs::ScopedTimer TURB_OBS_CONCAT(turb_obs_scope_,         \
                                           __LINE__)(               \
      TURB_OBS_CONCAT(turb_obs_stat_, __LINE__))
