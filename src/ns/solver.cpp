#include "ns/solver.hpp"

#include <cmath>
#include <numbers>
#include <string>

#include "fft/fftnd.hpp"
#include "ns/spectral_ops.hpp"
#include "obs/obs.hpp"

namespace turb::ns {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

void NsSolver::set_velocity(const TensorD& u1, const TensorD& u2) {
  TensorD p1 = u1, p2 = u2;
  leray_project(p1, p2);
  set_vorticity(vorticity_from_velocity(p1, p2));
}

void NsSolver::velocity(TensorD& u1, TensorD& u2) const {
  velocity_from_vorticity(vorticity(), u1, u2);
}

double NsSolver::suggest_dt(double u_max, double cfl) const {
  TURB_CHECK(u_max > 0.0);
  const double dx = 1.0 / static_cast<double>(config_.n);
  // Advective CFL plus an explicit-diffusion bound dt ≤ dx²/(4ν).
  const double dt_adv = cfl * dx / u_max;
  const double dt_diff = 0.25 * dx * dx / config_.viscosity;
  return std::min(dt_adv, dt_diff);
}

// --- spectral ----------------------------------------------------------------

SpectralNsSolver::SpectralNsSolver(NsConfig config)
    : NsSolver(config), what_({config.n, config.n / 2 + 1}) {}

void SpectralNsSolver::set_vorticity(const TensorD& omega) {
  TURB_CHECK(omega.shape() == (Shape{config_.n, config_.n}));
  what_ = fft::rfftn(omega, 2);
  time_ = 0.0;
}

SpectralNsSolver::SpecD SpectralNsSolver::nonlinear(const SpecD& what) const {
  const index_t n = config_.n;
  const index_t nxr = n / 2 + 1;
  // Velocity and vorticity gradients in spectral space.
  SpecD u1h({n, nxr}), u2h({n, nxr}), wxh({n, nxr}), wyh({n, nxr});
  for (index_t iy = 0; iy < n; ++iy) {
    const double ky = kTwoPi * deriv_freq(iy, n);
    for (index_t ix = 0; ix < nxr; ++ix) {
      const double kx = kTwoPi * deriv_freq(ix, n);
      const double k2 = kx * kx + ky * ky;
      const std::complex<double> w = what(iy, ix);
      const std::complex<double> psi = (k2 == 0.0) ? 0.0 : w / k2;
      u1h(iy, ix) = std::complex<double>(0.0, ky) * psi;
      u2h(iy, ix) = std::complex<double>(0.0, -kx) * psi;
      wxh(iy, ix) = std::complex<double>(0.0, kx) * w;
      wyh(iy, ix) = std::complex<double>(0.0, ky) * w;
    }
  }
  const TensorD u1 = fft::irfftn(u1h, 2, n);
  const TensorD u2 = fft::irfftn(u2h, 2, n);
  const TensorD wx = fft::irfftn(wxh, 2, n);
  const TensorD wy = fft::irfftn(wyh, 2, n);

  // Nonlinear term in physical space.
  TensorD adv({n, n});
  for (index_t i = 0; i < adv.size(); ++i) {
    adv[i] = -(u1[i] * wx[i] + u2[i] * wy[i]);
  }
  SpecD advh = fft::rfftn(adv, 2);

  // Kolmogorov forcing enters the vorticity equation as
  // −A·2πk_f·cos(2πk_f y): a purely real contribution at (±k_f, 0).
  if (config_.forcing_amplitude != 0.0) {
    const double kf = kTwoPi * static_cast<double>(config_.forcing_k);
    // cos(2πk_f y) has coefficients M/2 at rows ±k_f, column 0 (rfft
    // forward convention is unscaled sums; the irfft divides by M).
    const double coeff = -config_.forcing_amplitude * kf *
                         static_cast<double>(n) * static_cast<double>(n) / 2.0;
    advh(config_.forcing_k, index_t{0}) += coeff;
    advh(n - config_.forcing_k, index_t{0}) += coeff;
  }

  // 2/3-rule dealiasing.
  const double kcut = config_.dealias ? static_cast<double>(n) / 3.0
                                      : static_cast<double>(n);
  for (index_t iy = 0; iy < n; ++iy) {
    const double my = fft_freq(iy, n);
    for (index_t ix = 0; ix < nxr; ++ix) {
      const double mx = static_cast<double>(ix);
      if (std::abs(my) > kcut || mx > kcut) {
        advh(iy, ix) = 0.0;
      }
    }
  }
  return advh;
}

SpectralNsSolver::SpecD SpectralNsSolver::rhs(const SpecD& what) const {
  const index_t n = config_.n;
  SpecD out = nonlinear(what);
  for (index_t iy = 0; iy < n; ++iy) {
    const double ky = kTwoPi * fft_freq(iy, n);
    for (index_t ix = 0; ix < n / 2 + 1; ++ix) {
      const double kx = kTwoPi * static_cast<double>(ix);
      out(iy, ix) -= config_.viscosity * (kx * kx + ky * ky) * what(iy, ix);
    }
  }
  return out;
}

void SpectralNsSolver::step(index_t steps) {
  TURB_TRACE_SCOPE("ns/step");
  static obs::Counter& counter = obs::counter("ns/steps");
  counter.add(steps);
  for (index_t s = 0; s < steps; ++s) {
    if (config_.integrating_factor) {
      step_ifrk4();
    } else {
      step_rk4();
    }
    time_ += config_.dt;
  }
}

void SpectralNsSolver::step_ifrk4() {
  const double dt = config_.dt;
  const index_t n = config_.n;
  const index_t nxr = n / 2 + 1;
  if (if_half_.empty()) {
    // exp(−νk²·dt/2) / exp(−νk²·dt) tables, built once per solver.
    if_half_ = TensorD({n, nxr});
    if_full_ = TensorD({n, nxr});
    for (index_t iy = 0; iy < n; ++iy) {
      const double ky = kTwoPi * fft_freq(iy, n);
      for (index_t ix = 0; ix < nxr; ++ix) {
        const double kx = kTwoPi * static_cast<double>(ix);
        const double decay = config_.viscosity * (kx * kx + ky * ky);
        if_half_(iy, ix) = std::exp(-decay * dt / 2.0);
        if_full_(iy, ix) = std::exp(-decay * dt);
      }
    }
  }
  // Classical integrating-factor RK4 (the viscous semigroup E is applied
  // analytically; N is the dealiased nonlinear + forcing term):
  //   k1 = N(ω);              k2 = N(E(ω + h/2 k1))
  //   k3 = N(Eω + h/2 k2);    k4 = N(E²ω + h·E k3)
  //   ω⁺ = E²ω + h/6 (E²k1 + 2E(k2 + k3) + k4)
  const SpecD k1 = nonlinear(what_);
  SpecD stage = what_;
  for (index_t i = 0; i < stage.size(); ++i) {
    stage[i] = (what_[i] + dt / 2.0 * k1[i]) * if_half_[i];
  }
  const SpecD k2 = nonlinear(stage);
  for (index_t i = 0; i < stage.size(); ++i) {
    stage[i] = what_[i] * if_half_[i] + dt / 2.0 * k2[i];
  }
  const SpecD k3 = nonlinear(stage);
  for (index_t i = 0; i < stage.size(); ++i) {
    stage[i] = what_[i] * if_full_[i] + dt * if_half_[i] * k3[i];
  }
  const SpecD k4 = nonlinear(stage);
  for (index_t i = 0; i < what_.size(); ++i) {
    what_[i] = what_[i] * if_full_[i] +
               dt / 6.0 *
                   (if_full_[i] * k1[i] +
                    2.0 * if_half_[i] * (k2[i] + k3[i]) + k4[i]);
  }
}

void SpectralNsSolver::step_rk4() {
  const double dt = config_.dt;
  {
    // Classic RK4.
    SpecD k1 = rhs(what_);
    SpecD k2w = what_;
    for (index_t i = 0; i < k2w.size(); ++i) k2w[i] += 0.5 * dt * k1[i];
    SpecD k2 = rhs(k2w);
    SpecD k3w = what_;
    for (index_t i = 0; i < k3w.size(); ++i) k3w[i] += 0.5 * dt * k2[i];
    SpecD k3 = rhs(k3w);
    SpecD k4w = what_;
    for (index_t i = 0; i < k4w.size(); ++i) k4w[i] += dt * k3[i];
    SpecD k4 = rhs(k4w);
    for (index_t i = 0; i < what_.size(); ++i) {
      what_[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
  }
}

TensorD SpectralNsSolver::vorticity() const {
  return fft::irfftn(what_, 2, config_.n);
}

// --- finite difference ---------------------------------------------------------

FdNsSolver::FdNsSolver(NsConfig config)
    : NsSolver(config), omega_({config.n, config.n}) {}

void FdNsSolver::set_vorticity(const TensorD& omega) {
  TURB_CHECK(omega.shape() == (Shape{config_.n, config_.n}));
  omega_ = omega;
  time_ = 0.0;
}

TensorD FdNsSolver::rhs(const TensorD& omega) const {
  const index_t n = config_.n;
  const double dx = 1.0 / static_cast<double>(n);

  // Streamfunction from the spectral Poisson solve: ∇²ψ = −ω.
  // (The paper's PR-DNS is finite-difference in space but also relies on a
  // fast elliptic solve; reusing the FFT here keeps the Jacobian and
  // Laplacian — the turbulence-relevant terms — strictly 2nd-order FD.)
  const index_t nxr = n / 2 + 1;
  Tensor<std::complex<double>> wh = fft::rfftn(omega, 2);
  for (index_t iy = 0; iy < n; ++iy) {
    const double ky = kTwoPi * fft_freq(iy, n);
    for (index_t ix = 0; ix < nxr; ++ix) {
      const double kx = kTwoPi * static_cast<double>(ix);
      const double k2 = kx * kx + ky * ky;
      wh(iy, ix) = (k2 == 0.0) ? 0.0 : wh(iy, ix) / k2;
    }
  }
  const TensorD psi = fft::irfftn(wh, 2, n);

  TensorD out({n, n});
  const double inv_12dx2 = 1.0 / (12.0 * dx * dx);
  const double inv_dx2 = 1.0 / (dx * dx);
  const auto idx = [n](index_t iy, index_t ix) {
    return ((iy + n) % n) * n + ((ix + n) % n);
  };
  for (index_t iy = 0; iy < n; ++iy) {
    for (index_t ix = 0; ix < n; ++ix) {
      // Arakawa (1966) 9-point Jacobian J(ψ, ω): conserves mean vorticity,
      // energy, and enstrophy in the inviscid limit.
      const double p_e = psi[idx(iy, ix + 1)], p_w = psi[idx(iy, ix - 1)];
      const double p_n = psi[idx(iy + 1, ix)], p_s = psi[idx(iy - 1, ix)];
      const double p_ne = psi[idx(iy + 1, ix + 1)];
      const double p_nw = psi[idx(iy + 1, ix - 1)];
      const double p_se = psi[idx(iy - 1, ix + 1)];
      const double p_sw = psi[idx(iy - 1, ix - 1)];
      const double w_c = omega[idx(iy, ix)];
      const double w_e = omega[idx(iy, ix + 1)], w_w = omega[idx(iy, ix - 1)];
      const double w_n = omega[idx(iy + 1, ix)], w_s = omega[idx(iy - 1, ix)];
      const double w_ne = omega[idx(iy + 1, ix + 1)];
      const double w_nw = omega[idx(iy + 1, ix - 1)];
      const double w_se = omega[idx(iy - 1, ix + 1)];
      const double w_sw = omega[idx(iy - 1, ix - 1)];

      const double jpp = (p_e - p_w) * (w_n - w_s) - (p_n - p_s) * (w_e - w_w);
      const double jpx = p_e * (w_ne - w_se) - p_w * (w_nw - w_sw) -
                         p_n * (w_ne - w_nw) + p_s * (w_se - w_sw);
      const double jxp = w_n * (p_ne - p_nw) - w_s * (p_se - p_sw) -
                         w_e * (p_ne - p_se) + w_w * (p_nw - p_sw);
      // ∂ω/∂t = −u·∇ω = +J(ψ, ω) with u = (∂ψ/∂y, −∂ψ/∂x) and
      // J(ψ,ω) = ψ_x ω_y − ψ_y ω_x; each sub-Jacobian carries 1/(4d²) and
      // the Arakawa average 1/3, hence 1/(12d²) overall.
      const double jac = (jpp + jpx + jxp) * inv_12dx2;

      const double lap = (w_e + w_w + w_n + w_s - 4.0 * w_c) * inv_dx2;
      out[idx(iy, ix)] = jac + config_.viscosity * lap;
    }
  }
  if (config_.forcing_amplitude != 0.0) {
    const double kf = kTwoPi * static_cast<double>(config_.forcing_k);
    for (index_t iy = 0; iy < n; ++iy) {
      const double y = static_cast<double>(iy) * dx;
      const double source = -config_.forcing_amplitude * kf * std::cos(kf * y);
      for (index_t ix = 0; ix < n; ++ix) {
        out[iy * n + ix] += source;
      }
    }
  }
  return out;
}

void FdNsSolver::step(index_t steps) {
  TURB_TRACE_SCOPE("ns/step");
  static obs::Counter& counter = obs::counter("ns/steps");
  counter.add(steps);
  const double dt = config_.dt;
  for (index_t s = 0; s < steps; ++s) {
    // SSP-RK3 (Shu–Osher).
    const TensorD k1 = rhs(omega_);
    TensorD w1 = omega_;
    w1.add_scaled(k1, dt);
    const TensorD k2 = rhs(w1);
    TensorD w2({config_.n, config_.n});
    for (index_t i = 0; i < w2.size(); ++i) {
      w2[i] = 0.75 * omega_[i] + 0.25 * (w1[i] + dt * k2[i]);
    }
    const TensorD k3 = rhs(w2);
    for (index_t i = 0; i < omega_.size(); ++i) {
      omega_[i] = omega_[i] / 3.0 + 2.0 / 3.0 * (w2[i] + dt * k3[i]);
    }
    time_ += dt;
  }
}

TensorD FdNsSolver::vorticity() const { return omega_; }

std::unique_ptr<NsSolver> make_ns_solver(const std::string& scheme,
                                         NsConfig config) {
  if (scheme == "spectral") return std::make_unique<SpectralNsSolver>(config);
  if (scheme == "fd") return std::make_unique<FdNsSolver>(config);
  TURB_CHECK_MSG(false, "unknown NS scheme: " << scheme);
  return nullptr;
}

}  // namespace turb::ns
