// Incompressible 2-D Navier–Stokes solvers (vorticity–streamfunction form)
// on the periodic unit box.
//
//   ∂ω/∂t + u·∇ω = ν ∇²ω,   ∇²ψ = −ω,   u = (∂ψ/∂y, −∂ψ/∂x)
//
// Two discretisations share one interface:
//   * SpectralNsSolver — pseudo-spectral, 2/3-rule dealiased, RK4. The
//     reference solution.
//   * FdNsSolver — 2nd-order finite differences with the Arakawa Jacobian
//     (conserves energy and enstrophy discretely) and an FFT Poisson solve,
//     SSP-RK3. Stands in for the paper's finite-difference PR-DNS partner;
//     training on LBM data and coupling with this solver reproduces the
//     paper's cross-solver generalisation setup.
#pragma once

#include <memory>

#include "tensor/tensor.hpp"

namespace turb::ns {

struct NsConfig {
  index_t n = 64;           ///< grid points per side
  double viscosity = 1e-4;  ///< kinematic viscosity (unit-box units)
  double dt = 1e-3;         ///< time step
  bool dealias = true;      ///< 2/3-rule dealiasing (spectral scheme only);
                            ///< exposed for the aliasing ablation bench
  /// Kolmogorov forcing f = (A sin(2π k_f y), 0), i.e. a vorticity source
  /// −A·2πk_f·cos(2π k_f y). Zero amplitude = decaying turbulence (the
  /// paper's setting); nonzero exercises the forced-turbulence extension
  /// the paper names in its outlook.
  double forcing_amplitude = 0.0;
  index_t forcing_k = 4;
  /// Integrating-factor RK4 (spectral scheme only): the viscous term is
  /// integrated exactly via exp(−νk²t), removing the explicit-diffusion
  /// time-step limit. Pure-viscous decay becomes exact to round-off.
  bool integrating_factor = false;
};

class NsSolver {
 public:
  explicit NsSolver(NsConfig config) : config_(config) {
    TURB_CHECK(config_.n >= 8 && config_.n % 2 == 0);
    TURB_CHECK(config_.viscosity > 0.0 && config_.dt > 0.0);
  }
  virtual ~NsSolver() = default;

  [[nodiscard]] const NsConfig& config() const { return config_; }

  /// Set the state from a vorticity field (ny, nx).
  virtual void set_vorticity(const TensorD& omega) = 0;

  /// Set the state from a velocity field; a Leray projection is applied
  /// first, so slightly-divergent inputs (e.g. FNO predictions) are
  /// admissible — this is the mechanism by which the hybrid scheme restores
  /// the divergence-free condition.
  void set_velocity(const TensorD& u1, const TensorD& u2);

  /// Advance `steps` time steps of size config().dt.
  virtual void step(index_t steps = 1) = 0;

  [[nodiscard]] virtual TensorD vorticity() const = 0;

  /// Velocity reconstructed from the current vorticity.
  void velocity(TensorD& u1, TensorD& u2) const;

  [[nodiscard]] double time() const { return time_; }

  /// CFL-stable time step for velocity scale u_max: dt = cfl·Δx/u_max.
  [[nodiscard]] double suggest_dt(double u_max, double cfl = 0.4) const;

 protected:
  NsConfig config_;
  double time_ = 0.0;
};

class SpectralNsSolver final : public NsSolver {
 public:
  explicit SpectralNsSolver(NsConfig config);
  void set_vorticity(const TensorD& omega) override;
  void step(index_t steps = 1) override;
  [[nodiscard]] TensorD vorticity() const override;

 private:
  using SpecD = Tensor<std::complex<double>>;
  /// Nonlinear + forcing part: −dealias(FFT(u·∇ω)) + F̂.
  SpecD nonlinear(const SpecD& what) const;
  /// Full right-hand side: nonlinear(ω̂) − νk²ω̂.
  SpecD rhs(const SpecD& what) const;
  void step_rk4();
  void step_ifrk4();

  SpecD what_;  // ω̂, (n, n/2+1)
  // Integrating-factor tables exp(−νk²·dt/2) and exp(−νk²·dt).
  TensorD if_half_;
  TensorD if_full_;
};

class FdNsSolver final : public NsSolver {
 public:
  explicit FdNsSolver(NsConfig config);
  void set_vorticity(const TensorD& omega) override;
  void step(index_t steps = 1) override;
  [[nodiscard]] TensorD vorticity() const override;

 private:
  /// dω/dt = −J(ψ, ω) + ν ∇²ω with the Arakawa Jacobian and the 5-point
  /// Laplacian; ψ solved spectrally each evaluation.
  TensorD rhs(const TensorD& omega) const;

  TensorD omega_;
};

/// Factory for the scheme requested by name ("spectral" | "fd").
std::unique_ptr<NsSolver> make_ns_solver(const std::string& scheme,
                                         NsConfig config);

}  // namespace turb::ns
