// Spectral differential operators on periodic [0,1)² grids.
//
// Shared by the Navier–Stokes solvers (streamfunction inversion, spectral
// derivatives) and by the analysis module (vorticity/divergence of predicted
// velocity fields). Wavenumbers are 2π·m for integer mode m; fields are
// (ny, nx) double tensors.
#pragma once

#include <complex>

#include "tensor/tensor.hpp"

namespace turb::ns {

/// Signed integer frequency for index i of an n-point axis.
inline double fft_freq(index_t i, index_t n) {
  return (i <= n / 2) ? static_cast<double>(i)
                      : static_cast<double>(i) - static_cast<double>(n);
}

/// Frequency used by derivative-like operators: the Nyquist mode (whose
/// wavevector sign is ambiguous on an even grid) is treated as derivative-
/// free, the standard pseudo-spectral convention. Without this, operators
/// like the Leray projection break Hermitian symmetry at k = ±N/2 and the
/// real inverse transform silently discards the inconsistency.
inline double deriv_freq(index_t i, index_t n) {
  return (2 * i == n) ? 0.0 : fft_freq(i, n);
}

/// Spectral x-derivative ∂f/∂x.
TensorD derivative_x(const TensorD& f);

/// Spectral y-derivative ∂f/∂y.
TensorD derivative_y(const TensorD& f);

/// Vorticity ω = ∂u₂/∂x − ∂u₁/∂y.
TensorD vorticity_from_velocity(const TensorD& u1, const TensorD& u2);

/// Divergence ∇·u = ∂u₁/∂x + ∂u₂/∂y (≈0 for incompressible fields).
TensorD divergence(const TensorD& u1, const TensorD& u2);

/// Invert ∇²ψ = −ω with zero-mean ψ, then u = (∂ψ/∂y, −∂ψ/∂x).
/// This is the Biot–Savart reconstruction of an incompressible velocity
/// field from its vorticity.
void velocity_from_vorticity(const TensorD& omega, TensorD& u1, TensorD& u2);

/// Project a velocity field onto its divergence-free part (Helmholtz–Leray).
void leray_project(TensorD& u1, TensorD& u2);

/// Spectrally exact upsampling by an integer factor (Fourier zero-padding).
/// Nyquist modes of the coarse grid are dropped (sign-ambiguous). The result
/// interpolates the input at the original collocation points.
TensorD spectral_upsample(const TensorD& f, index_t factor);

/// Isotropic energy spectrum E(k) binned over integer shells k = 0..n/2.
/// Input is a velocity pair; output vector index is the shell number.
std::vector<double> energy_spectrum(const TensorD& u1, const TensorD& u2);

}  // namespace turb::ns
