#include "ns/spectral_ops.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "fft/fftnd.hpp"

namespace turb::ns {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

using SpecD = Tensor<std::complex<double>>;

void check_field(const TensorD& f) {
  TURB_CHECK_MSG(f.rank() == 2, "expected a (ny, nx) field");
  TURB_CHECK(f.dim(0) >= 4 && f.dim(1) >= 4);
}

}  // namespace

TensorD derivative_x(const TensorD& f) {
  check_field(f);
  const index_t ny = f.dim(0), nx = f.dim(1);
  SpecD fh = fft::rfftn(f, 2);
  for (index_t iy = 0; iy < ny; ++iy) {
    for (index_t ix = 0; ix < nx / 2 + 1; ++ix) {
      fh(iy, ix) *= std::complex<double>(0.0, kTwoPi * deriv_freq(ix, nx));
    }
  }
  return fft::irfftn(fh, 2, nx);
}

TensorD derivative_y(const TensorD& f) {
  check_field(f);
  const index_t ny = f.dim(0), nx = f.dim(1);
  SpecD fh = fft::rfftn(f, 2);
  for (index_t iy = 0; iy < ny; ++iy) {
    const std::complex<double> iky(0.0, kTwoPi * deriv_freq(iy, ny));
    for (index_t ix = 0; ix < nx / 2 + 1; ++ix) {
      fh(iy, ix) *= iky;
    }
  }
  return fft::irfftn(fh, 2, nx);
}

TensorD vorticity_from_velocity(const TensorD& u1, const TensorD& u2) {
  TensorD w = derivative_x(u2);
  w -= derivative_y(u1);
  return w;
}

TensorD divergence(const TensorD& u1, const TensorD& u2) {
  TensorD d = derivative_x(u1);
  d += derivative_y(u2);
  return d;
}

void velocity_from_vorticity(const TensorD& omega, TensorD& u1, TensorD& u2) {
  check_field(omega);
  const index_t ny = omega.dim(0), nx = omega.dim(1);
  SpecD wh = fft::rfftn(omega, 2);
  SpecD u1h({ny, nx / 2 + 1}), u2h({ny, nx / 2 + 1});
  for (index_t iy = 0; iy < ny; ++iy) {
    const double ky = kTwoPi * deriv_freq(iy, ny);
    for (index_t ix = 0; ix < nx / 2 + 1; ++ix) {
      const double kx = kTwoPi * deriv_freq(ix, nx);
      const double k2 = kx * kx + ky * ky;
      if (k2 == 0.0) {
        // Mean mode and Nyquist modes carry no recoverable velocity.
        u1h(iy, ix) = 0.0;
        u2h(iy, ix) = 0.0;
        continue;
      }
      // ψ̂ = ω̂/k²; û₁ = i k_y ψ̂, û₂ = −i k_x ψ̂.
      const std::complex<double> psi = wh(iy, ix) / k2;
      u1h(iy, ix) = std::complex<double>(0.0, ky) * psi;
      u2h(iy, ix) = std::complex<double>(0.0, -kx) * psi;
    }
  }
  u1 = fft::irfftn(u1h, 2, nx);
  u2 = fft::irfftn(u2h, 2, nx);
}

void leray_project(TensorD& u1, TensorD& u2) {
  check_field(u1);
  TURB_CHECK(u1.shape() == u2.shape());
  const index_t ny = u1.dim(0), nx = u1.dim(1);
  SpecD u1h = fft::rfftn(u1, 2);
  SpecD u2h = fft::rfftn(u2, 2);
  for (index_t iy = 0; iy < ny; ++iy) {
    const bool ny_nyquist = (2 * iy == ny);
    const double ky = kTwoPi * deriv_freq(iy, ny);
    for (index_t ix = 0; ix < nx / 2 + 1; ++ix) {
      if (ny_nyquist || 2 * ix == nx) {
        // Nyquist modes have sign-ambiguous wavevectors; projecting them
        // breaks Hermitian symmetry, so they are removed instead (they are
        // pure grid-scale noise in any resolved field).
        u1h(iy, ix) = 0.0;
        u2h(iy, ix) = 0.0;
        continue;
      }
      const double kx = kTwoPi * static_cast<double>(ix);
      const double k2 = kx * kx + ky * ky;
      if (k2 == 0.0) continue;  // mean flow is divergence-free already
      // u ← u − k (k·u)/k²
      const std::complex<double> kdotu = kx * u1h(iy, ix) + ky * u2h(iy, ix);
      u1h(iy, ix) -= kx * kdotu / k2;
      u2h(iy, ix) -= ky * kdotu / k2;
    }
  }
  u1 = fft::irfftn(u1h, 2, nx);
  u2 = fft::irfftn(u2h, 2, nx);
}

TensorD spectral_upsample(const TensorD& f, index_t factor) {
  check_field(f);
  TURB_CHECK(factor >= 1);
  if (factor == 1) return f;
  const index_t ny = f.dim(0), nx = f.dim(1);
  const index_t fy = ny * factor, fx = nx * factor;
  const SpecD coarse = fft::rfftn(f, 2);
  SpecD fine({fy, fx / 2 + 1});
  const double scale = static_cast<double>(fy) * static_cast<double>(fx) /
                       (static_cast<double>(ny) * static_cast<double>(nx));
  for (index_t iy = 0; iy < ny; ++iy) {
    if (2 * iy == ny) continue;  // drop the ambiguous Nyquist row
    const index_t oy = (iy <= ny / 2) ? iy : iy + (fy - ny);
    for (index_t ix = 0; ix < nx / 2 + 1; ++ix) {
      if (2 * ix == nx) continue;
      fine(oy, ix) = coarse(iy, ix) * scale;
    }
  }
  return fft::irfftn(fine, 2, fx);
}

std::vector<double> energy_spectrum(const TensorD& u1, const TensorD& u2) {
  check_field(u1);
  TURB_CHECK(u1.shape() == u2.shape());
  const index_t ny = u1.dim(0), nx = u1.dim(1);
  const SpecD u1h = fft::rfftn(u1, 2);
  const SpecD u2h = fft::rfftn(u2, 2);
  const double norm = static_cast<double>(nx) * static_cast<double>(ny);
  const index_t kmax = std::min(nx, ny) / 2;
  std::vector<double> spectrum(static_cast<std::size_t>(kmax + 1), 0.0);
  for (index_t iy = 0; iy < ny; ++iy) {
    const double ky = fft_freq(iy, ny);
    for (index_t ix = 0; ix < nx / 2 + 1; ++ix) {
      const double kx = static_cast<double>(ix);
      const index_t shell =
          static_cast<index_t>(std::lround(std::sqrt(kx * kx + ky * ky)));
      if (shell > kmax) continue;
      // rfft stores one of each Hermitian pair for interior kx columns.
      const double mult = (ix == 0 || ix == nx / 2) ? 1.0 : 2.0;
      const double e = 0.5 * mult *
                       (std::norm(u1h(iy, ix)) + std::norm(u2h(iy, ix))) /
                       (norm * norm);
      spectrum[static_cast<std::size_t>(shell)] += e;
    }
  }
  return spectrum;
}

}  // namespace turb::ns
