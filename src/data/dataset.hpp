// In-memory turbulence data set (paper §III).
//
// A sample is one decaying-turbulence simulation: velocity components and
// vorticity sampled at a fixed cadence in convective-time units. The
// ensemble of samples differs only in the random initial condition, exactly
// as in the paper's 5000-run data set.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace turb::data {

/// One simulation's trajectory: (T, H, W) per field, times in units of t_c.
struct SnapshotSeries {
  std::vector<double> times;
  TensorF u1;     ///< (T, H, W) x-velocity (non-dimensional, U₀ = 1 scale)
  TensorF u2;     ///< (T, H, W) y-velocity
  TensorF omega;  ///< (T, H, W) vorticity

  [[nodiscard]] index_t steps() const { return u1.empty() ? 0 : u1.dim(0); }
  [[nodiscard]] index_t height() const { return u1.dim(1); }
  [[nodiscard]] index_t width() const { return u1.dim(2); }
};

/// An ensemble of trajectories with identical shape and cadence.
struct TurbulenceDataset {
  std::vector<SnapshotSeries> samples;
  double dt_tc = 0.0;  ///< snapshot spacing in units of t_c

  [[nodiscard]] index_t num_samples() const {
    return static_cast<index_t>(samples.size());
  }
};

/// Serialise to the binary .tds format (magic "TDS2", little-endian,
/// CRC-32 trailer, atomic tmp + rename write).
void save_dataset(const std::string& path, const TurbulenceDataset& dataset);

/// Load a .tds file (TDS2 or legacy TDS1). Header extents are validated
/// against the file size before any allocation; corrupt files throw
/// CheckError and increment `robust/corrupt_rejected`.
TurbulenceDataset load_dataset(const std::string& path);

}  // namespace turb::data
