// Sliding-window extraction: turn trajectories into (input, target) training
// pairs for the "2D FNO with temporal channels" and 3D FNO model families.
//
// The paper trains all channel counts on *equal data volume*: a model with
// fewer output channels sees more windows extracted from the same
// trajectories (§VI-A). `make_channel_windows` implements exactly that —
// the caller bounds the data volume via `max_windows`, and the stride-1
// window extraction naturally yields more pairs when in+out is smaller.
#pragma once

#include "data/dataset.hpp"
#include "nn/dataloader.hpp"

namespace turb::data {

/// Which field the windows are built from.
enum class Field { kU1, kU2, kOmega };

struct WindowSpec {
  index_t in_channels = 10;
  index_t out_channels = 5;
  index_t stride = 1;       ///< start-index stride between windows
  index_t max_windows = 0;  ///< 0 = unlimited (bounds total data volume)
};

/// Extract (X, Y) pairs from every sample of a data set:
///   X: (n_windows, in_channels, H, W), Y: (n_windows, out_channels, H, W).
/// Windows are chronological: X covers snapshots [s, s+in), Y covers
/// [s+in, s+in+out).
void make_channel_windows(const TurbulenceDataset& dataset, Field field,
                          const WindowSpec& spec, TensorF& inputs,
                          TensorF& targets);

/// Extract consecutive block pairs for the 3D FNO: X and Y are both
/// (n_windows, 1, block, H, W); Y is the block immediately after X.
void make_block_windows(const TurbulenceDataset& dataset, Field field,
                        index_t block, TensorF& inputs, TensorF& targets,
                        index_t max_windows = 0);

/// Velocity windows with both components folded into the sample axis
/// (one operator serves u₁ and u₂, matching the paper's channel counts).
void make_velocity_channel_windows(const TurbulenceDataset& dataset,
                                   const WindowSpec& spec, TensorF& inputs,
                                   TensorF& targets);

/// Velocity-pair windows: X is (n, 2·in, H, W) holding `in` chronological u₁
/// snapshots followed by `in` u₂ snapshots (same instants); Y likewise with
/// `out`. This layout lets the physics-informed loss evaluate ∇·u on each
/// predicted instant (see nn/physics_loss.hpp).
void make_velocity_pair_windows(const TurbulenceDataset& dataset,
                                const WindowSpec& spec, TensorF& inputs,
                                TensorF& targets);

}  // namespace turb::data
