// Ensemble generation of 2-D decaying turbulence with the entropic LBM —
// the paper's data pipeline (§III): random initial condition → burn-in of
// 0.5 t_c to dissipate discontinuities → reset t = 0 → sample u and ω every
// `dt_tc` convective-time units up to `t_end_tc`.
#pragma once

#include "data/dataset.hpp"
#include "lbm/solver.hpp"
#include "util/rng.hpp"

namespace turb::data {

enum class InitKind {
  kUniformNoise,  ///< the paper's i.i.d. uniform initialisation (needs burn-in)
  kVortexField,   ///< band-limited solenoidal field (cleaner spin-up)
};

struct GeneratorConfig {
  index_t grid = 64;              ///< points per side (paper: 256)
  double u0 = 0.05;               ///< characteristic lattice velocity
  double reynolds = 2000.0;       ///< Re = u0·N/ν (paper: 7000–8000)
  double burn_in_tc = 0.5;        ///< pre-sampling evolution (paper: 0.5 t_c)
  double t_end_tc = 1.0;          ///< sampling horizon (paper: 1 t_c)
  double dt_tc = 0.01;            ///< snapshot cadence (paper: 0.005 t_c)
  InitKind init = InitKind::kVortexField;
  double vortex_k_peak = 4.0;     ///< spectral peak of the vortex initialiser
  lbm::Collision collision = lbm::Collision::kEntropic;
  std::uint64_t seed = 12345;
};

/// Generate one trajectory with the sample-specific RNG stream.
SnapshotSeries generate_sample(const GeneratorConfig& config,
                               std::uint64_t sample_index);

/// Generate an ensemble of `n_samples` trajectories (samples differ only in
/// their initial condition, as in the paper).
TurbulenceDataset generate_ensemble(const GeneratorConfig& config,
                                    index_t n_samples);

/// Convective time t_c = L/U₀ in lattice steps for a config.
double convective_time_steps(const GeneratorConfig& config);

}  // namespace turb::data
