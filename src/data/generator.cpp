#include "data/generator.hpp"

#include <cmath>

#include "lbm/initializer.hpp"
#include "ns/spectral_ops.hpp"

namespace turb::data {

double convective_time_steps(const GeneratorConfig& config) {
  return static_cast<double>(config.grid) / config.u0;
}

SnapshotSeries generate_sample(const GeneratorConfig& config,
                               std::uint64_t sample_index) {
  TURB_CHECK(config.grid >= 16);
  TURB_CHECK(config.u0 > 0.0 && config.u0 < 0.15);
  TURB_CHECK(config.reynolds > 0.0);
  TURB_CHECK(config.dt_tc > 0.0 && config.t_end_tc >= config.dt_tc);

  const index_t n = config.grid;
  lbm::LbmConfig lbm_cfg;
  lbm_cfg.nx = n;
  lbm_cfg.ny = n;
  lbm_cfg.viscosity = config.u0 * static_cast<double>(n) / config.reynolds;
  lbm_cfg.collision = config.collision;
  lbm::LbmSolver solver(lbm_cfg);

  // Independent RNG stream per sample (deterministic across runs and thread
  // counts).
  Rng rng(config.seed ^ (0x9E3779B97F4A7C15ull * (sample_index + 1)));
  const lbm::VelocityField init =
      config.init == InitKind::kUniformNoise
          ? lbm::random_uniform_velocity(n, n, config.u0, rng)
          : lbm::random_vortex_velocity(n, n, config.vortex_k_peak, config.u0,
                                        rng);
  solver.initialize(init.u1, init.u2);

  const double tc_steps = convective_time_steps(config);
  const auto burn_steps =
      static_cast<index_t>(std::llround(config.burn_in_tc * tc_steps));
  solver.step(burn_steps);
  TURB_CHECK_MSG(!solver.has_blown_up(),
                 "LBM blew up during burn-in (sample " << sample_index << ")");

  const auto interval =
      static_cast<index_t>(std::llround(config.dt_tc * tc_steps));
  TURB_CHECK_MSG(interval >= 1, "dt_tc below one lattice step");
  const auto n_snapshots =
      static_cast<index_t>(std::llround(config.t_end_tc / config.dt_tc)) + 1;

  SnapshotSeries series;
  series.times.reserve(static_cast<std::size_t>(n_snapshots));
  series.u1 = TensorF({n_snapshots, n, n});
  series.u2 = TensorF({n_snapshots, n, n});
  series.omega = TensorF({n_snapshots, n, n});

  const double inv_u0 = 1.0 / config.u0;  // non-dimensionalise to U₀ = 1
  for (index_t s = 0; s < n_snapshots; ++s) {
    if (s > 0) {
      solver.step(interval);
      TURB_CHECK_MSG(!solver.has_blown_up(),
                     "LBM blew up at snapshot " << s << " (sample "
                                                << sample_index << ")");
    }
    const TensorD u1 = solver.velocity_x();
    const TensorD u2 = solver.velocity_y();
    // ω in convective units: the unit box spans N lattice cells, so the
    // spectral curl on the unit box already includes the 1/L factor.
    TensorD u1n = u1, u2n = u2;
    u1n *= inv_u0;
    u2n *= inv_u0;
    const TensorD omega = ns::vorticity_from_velocity(u1n, u2n);

    series.times.push_back(config.dt_tc * static_cast<double>(s));
    const index_t frame = n * n;
    for (index_t i = 0; i < frame; ++i) {
      series.u1[s * frame + i] = static_cast<float>(u1n[i]);
      series.u2[s * frame + i] = static_cast<float>(u2n[i]);
      series.omega[s * frame + i] = static_cast<float>(omega[i]);
    }
  }
  return series;
}

TurbulenceDataset generate_ensemble(const GeneratorConfig& config,
                                    index_t n_samples) {
  TURB_CHECK(n_samples >= 1);
  TurbulenceDataset dataset;
  dataset.dt_tc = config.dt_tc;
  dataset.samples.reserve(static_cast<std::size_t>(n_samples));
  for (index_t s = 0; s < n_samples; ++s) {
    dataset.samples.push_back(
        generate_sample(config, static_cast<std::uint64_t>(s)));
  }
  return dataset;
}

}  // namespace turb::data
