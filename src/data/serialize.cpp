#include <cstdint>
#include <fstream>

#include "data/dataset.hpp"
#include "util/common.hpp"

namespace turb::data {

namespace {

constexpr char kMagic[4] = {'T', 'D', 'S', '1'};

template <typename T>
void write_pod(std::ofstream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  TURB_CHECK_MSG(is.good(), "truncated dataset file");
  return v;
}

void write_tensor(std::ofstream& os, const TensorF& t) {
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.size() * sizeof(float)));
}

TensorF read_tensor(std::ifstream& is, Shape shape) {
  TensorF t(std::move(shape));
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
  TURB_CHECK_MSG(is.good(), "truncated dataset payload");
  return t;
}

}  // namespace

void save_dataset(const std::string& path, const TurbulenceDataset& dataset) {
  TURB_CHECK(dataset.num_samples() >= 1);
  std::ofstream os(path, std::ios::binary);
  TURB_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  os.write(kMagic, 4);
  write_pod<double>(os, dataset.dt_tc);
  write_pod<std::int64_t>(os, dataset.num_samples());
  const SnapshotSeries& first = dataset.samples.front();
  write_pod<std::int64_t>(os, first.steps());
  write_pod<std::int64_t>(os, first.height());
  write_pod<std::int64_t>(os, first.width());
  for (const SnapshotSeries& s : dataset.samples) {
    TURB_CHECK_MSG(s.steps() == first.steps() &&
                       s.height() == first.height() &&
                       s.width() == first.width(),
                   "inhomogeneous ensemble");
    for (const double t : s.times) write_pod<double>(os, t);
    write_tensor(os, s.u1);
    write_tensor(os, s.u2);
    write_tensor(os, s.omega);
  }
  TURB_CHECK_MSG(os.good(), "write failed for " << path);
}

TurbulenceDataset load_dataset(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  TURB_CHECK_MSG(is.good(), "cannot open " << path);
  char magic[4];
  is.read(magic, 4);
  TURB_CHECK_MSG(is.good() && std::equal(magic, magic + 4, kMagic),
                 path << " is not a TDS1 dataset");
  TurbulenceDataset dataset;
  dataset.dt_tc = read_pod<double>(is);
  const auto n_samples = read_pod<std::int64_t>(is);
  const auto steps = read_pod<std::int64_t>(is);
  const auto h = read_pod<std::int64_t>(is);
  const auto w = read_pod<std::int64_t>(is);
  TURB_CHECK(n_samples >= 1 && steps >= 1 && h >= 1 && w >= 1);
  dataset.samples.reserve(static_cast<std::size_t>(n_samples));
  for (std::int64_t s = 0; s < n_samples; ++s) {
    SnapshotSeries series;
    series.times.resize(static_cast<std::size_t>(steps));
    for (auto& t : series.times) t = read_pod<double>(is);
    series.u1 = read_tensor(is, {steps, h, w});
    series.u2 = read_tensor(is, {steps, h, w});
    series.omega = read_tensor(is, {steps, h, w});
    dataset.samples.push_back(std::move(series));
  }
  return dataset;
}

}  // namespace turb::data
