#include <algorithm>
#include <cstdint>
#include <fstream>

#include "data/dataset.hpp"
#include "obs/obs.hpp"
#include "util/atomic_file.hpp"
#include "util/checksum.hpp"
#include "util/common.hpp"

namespace turb::data {

namespace {

constexpr char kMagicV1[4] = {'T', 'D', 'S', '1'};
constexpr char kMagicV2[4] = {'T', 'D', 'S', '2'};

// Caps on header extents: generous for any real ensemble, small enough that
// a corrupt header cannot overflow index_t or demand absurd allocations
// before the size cross-check below rejects it.
constexpr std::int64_t kMaxExtent = std::int64_t{1} << 30;

[[noreturn]] void reject(const std::string& path, const std::string& what) {
  obs::counter("robust/corrupt_rejected").add();
  throw CheckError("corrupt dataset " + path + ": " + what);
}

class CheckedReader {
 public:
  CheckedReader(std::ifstream& is, const std::string& path,
                std::uint64_t body_bytes, util::Crc32* crc)
      : is_(&is), path_(&path), remaining_(body_bytes), crc_(crc) {}

  void read(void* dst, std::uint64_t n, const char* what) {
    if (n > remaining_) {
      reject(*path_, std::string("truncated (") + what + ")");
    }
    is_->read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (!is_->good()) reject(*path_, std::string("truncated (") + what + ")");
    if (crc_ != nullptr) crc_->update(dst, n);
    remaining_ -= n;
  }

  template <typename T>
  T read_pod(const char* what) {
    T v{};
    read(&v, sizeof(T), what);
    return v;
  }

  [[nodiscard]] std::uint64_t remaining() const { return remaining_; }

 private:
  std::ifstream* is_;
  const std::string* path_;
  std::uint64_t remaining_;
  util::Crc32* crc_;
};

}  // namespace

void save_dataset(const std::string& path, const TurbulenceDataset& dataset) {
  TURB_CHECK(dataset.num_samples() >= 1);
  util::AtomicFileWriter out(path);
  util::Crc32 crc;
  const auto put = [&out, &crc](const void* p, std::size_t n) {
    out.write(p, n);
    crc.update(p, n);
  };
  const auto put_pod = [&put](auto v) { put(&v, sizeof(v)); };

  out.write(kMagicV2, 4);
  put_pod(dataset.dt_tc);
  put_pod(static_cast<std::int64_t>(dataset.num_samples()));
  const SnapshotSeries& first = dataset.samples.front();
  put_pod(static_cast<std::int64_t>(first.steps()));
  put_pod(static_cast<std::int64_t>(first.height()));
  put_pod(static_cast<std::int64_t>(first.width()));
  for (const SnapshotSeries& s : dataset.samples) {
    TURB_CHECK_MSG(s.steps() == first.steps() &&
                       s.height() == first.height() &&
                       s.width() == first.width(),
                   "inhomogeneous ensemble");
    for (const double t : s.times) put_pod(t);
    put(s.u1.data(), static_cast<std::size_t>(s.u1.size()) * sizeof(float));
    put(s.u2.data(), static_cast<std::size_t>(s.u2.size()) * sizeof(float));
    put(s.omega.data(),
        static_cast<std::size_t>(s.omega.size()) * sizeof(float));
  }
  const std::uint32_t checksum = crc.value();
  out.write(&checksum, sizeof(checksum));
  out.commit();
}

TurbulenceDataset load_dataset(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  TURB_CHECK_MSG(is.good(), "cannot open " << path);
  is.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(is.tellg());
  is.seekg(0, std::ios::beg);
  // Magic + dt + four extents is the smallest possible header.
  if (file_size < 4 + 8 + 4 * 8) {
    reject(path, "file shorter than any valid dataset");
  }

  char magic[4];
  is.read(magic, 4);
  const bool v2 = is.good() && std::equal(magic, magic + 4, kMagicV2);
  const bool v1 = is.good() && std::equal(magic, magic + 4, kMagicV1);
  if (!v1 && !v2) reject(path, "not a TDS1/TDS2 dataset");

  util::Crc32 crc;
  CheckedReader r(is, path, file_size - 4 - (v2 ? 4 : 0),
                  v2 ? &crc : nullptr);

  TurbulenceDataset dataset;
  dataset.dt_tc = r.read_pod<double>("dt header");
  const auto n_samples = r.read_pod<std::int64_t>("sample count");
  const auto steps = r.read_pod<std::int64_t>("step count");
  const auto h = r.read_pod<std::int64_t>("height");
  const auto w = r.read_pod<std::int64_t>("width");
  if (n_samples < 1 || steps < 1 || h < 1 || w < 1 ||
      n_samples > kMaxExtent || steps > kMaxExtent || h > kMaxExtent ||
      w > kMaxExtent) {
    reject(path, "implausible header extents");
  }
  // Cross-check the header against the bytes actually present before any
  // field allocation: steps·h·w products on a corrupt file used to demand
  // multi-GB allocations (or overflow index_t) inside read_tensor.
  const auto u_steps = static_cast<unsigned __int128>(steps);
  const unsigned __int128 field_elems =
      u_steps * static_cast<unsigned __int128>(h) *
      static_cast<unsigned __int128>(w);
  if (field_elems > static_cast<unsigned __int128>(kMaxExtent)) {
    reject(path, "implausible snapshot volume");
  }
  const unsigned __int128 per_sample =
      u_steps * sizeof(double) + 3 * field_elems * sizeof(float);
  const unsigned __int128 expected =
      static_cast<unsigned __int128>(n_samples) * per_sample;
  if (expected != r.remaining()) {
    reject(path, "header extents disagree with file size");
  }

  dataset.samples.reserve(static_cast<std::size_t>(n_samples));
  for (std::int64_t s = 0; s < n_samples; ++s) {
    SnapshotSeries series;
    series.times.resize(static_cast<std::size_t>(steps));
    r.read(series.times.data(),
           static_cast<std::uint64_t>(steps) * sizeof(double), "times");
    const Shape shape{steps, h, w};
    for (TensorF* field : {&series.u1, &series.u2, &series.omega}) {
      TensorF t(shape);
      r.read(t.data(), static_cast<std::uint64_t>(t.size()) * sizeof(float),
             "field payload");
      *field = std::move(t);
    }
    dataset.samples.push_back(std::move(series));
  }
  if (r.remaining() != 0) reject(path, "trailing bytes after payload");
  if (v2) {
    std::uint32_t stored = 0;
    is.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (!is.good()) reject(path, "truncated (checksum)");
    if (stored != crc.value()) reject(path, "CRC mismatch");
  }
  return dataset;
}

}  // namespace turb::data
