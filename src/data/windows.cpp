#include "data/windows.hpp"

#include <algorithm>

namespace turb::data {

namespace {

const TensorF& select_field(const SnapshotSeries& series, Field field) {
  switch (field) {
    case Field::kU1:
      return series.u1;
    case Field::kU2:
      return series.u2;
    case Field::kOmega:
      break;
  }
  return series.omega;
}

struct WindowRef {
  index_t sample;
  index_t start;
  Field field;
};

/// Enumerate window start positions across the ensemble, round-robin over
/// samples so a `max_windows` cap draws evenly from every trajectory.
std::vector<WindowRef> enumerate_windows(const TurbulenceDataset& dataset,
                                         const std::vector<Field>& fields,
                                         index_t window, index_t stride,
                                         index_t max_windows) {
  TURB_CHECK(dataset.num_samples() >= 1);
  TURB_CHECK(stride >= 1);
  std::vector<WindowRef> refs;
  const index_t steps = dataset.samples.front().steps();
  TURB_CHECK_MSG(steps >= window,
                 "trajectories too short for window " << window);
  const index_t per_sample = (steps - window) / stride + 1;
  for (index_t w = 0; w < per_sample; ++w) {
    for (index_t s = 0; s < dataset.num_samples(); ++s) {
      for (const Field f : fields) {
        refs.push_back({s, w * stride, f});
      }
    }
  }
  if (max_windows > 0 && static_cast<index_t>(refs.size()) > max_windows) {
    refs.resize(static_cast<std::size_t>(max_windows));
  }
  return refs;
}

void fill_windows(const TurbulenceDataset& dataset,
                  const std::vector<WindowRef>& refs, index_t in_channels,
                  index_t out_channels, TensorF& inputs, TensorF& targets) {
  const index_t h = dataset.samples.front().height();
  const index_t w = dataset.samples.front().width();
  const index_t frame = h * w;
  const auto n = static_cast<index_t>(refs.size());
  inputs = TensorF({n, in_channels, h, w});
  targets = TensorF({n, out_channels, h, w});
  for (index_t r = 0; r < n; ++r) {
    const WindowRef& ref = refs[static_cast<std::size_t>(r)];
    const TensorF& src = select_field(dataset.samples[static_cast<std::size_t>(ref.sample)], ref.field);
    std::copy_n(src.data() + ref.start * frame, in_channels * frame,
                inputs.data() + r * in_channels * frame);
    std::copy_n(src.data() + (ref.start + in_channels) * frame,
                out_channels * frame,
                targets.data() + r * out_channels * frame);
  }
}

}  // namespace

void make_channel_windows(const TurbulenceDataset& dataset, Field field,
                          const WindowSpec& spec, TensorF& inputs,
                          TensorF& targets) {
  TURB_CHECK(spec.in_channels >= 1 && spec.out_channels >= 1);
  const auto refs = enumerate_windows(
      dataset, {field}, spec.in_channels + spec.out_channels, spec.stride,
      spec.max_windows);
  fill_windows(dataset, refs, spec.in_channels, spec.out_channels, inputs,
               targets);
}

void make_velocity_channel_windows(const TurbulenceDataset& dataset,
                                   const WindowSpec& spec, TensorF& inputs,
                                   TensorF& targets) {
  TURB_CHECK(spec.in_channels >= 1 && spec.out_channels >= 1);
  const auto refs = enumerate_windows(
      dataset, {Field::kU1, Field::kU2},
      spec.in_channels + spec.out_channels, spec.stride, spec.max_windows);
  fill_windows(dataset, refs, spec.in_channels, spec.out_channels, inputs,
               targets);
}

void make_velocity_pair_windows(const TurbulenceDataset& dataset,
                                const WindowSpec& spec, TensorF& inputs,
                                TensorF& targets) {
  TURB_CHECK(spec.in_channels >= 1 && spec.out_channels >= 1);
  const auto refs = enumerate_windows(
      dataset, {Field::kU1}, spec.in_channels + spec.out_channels,
      spec.stride, spec.max_windows);

  const index_t h = dataset.samples.front().height();
  const index_t w = dataset.samples.front().width();
  const index_t frame = h * w;
  const auto n = static_cast<index_t>(refs.size());
  const index_t cin = spec.in_channels, cout = spec.out_channels;
  inputs = TensorF({n, 2 * cin, h, w});
  targets = TensorF({n, 2 * cout, h, w});
  for (index_t r = 0; r < n; ++r) {
    const auto& ref = refs[static_cast<std::size_t>(r)];
    const SnapshotSeries& series =
        dataset.samples[static_cast<std::size_t>(ref.sample)];
    // u1 block then u2 block, identical instants.
    std::copy_n(series.u1.data() + ref.start * frame, cin * frame,
                inputs.data() + r * 2 * cin * frame);
    std::copy_n(series.u2.data() + ref.start * frame, cin * frame,
                inputs.data() + (r * 2 * cin + cin) * frame);
    std::copy_n(series.u1.data() + (ref.start + cin) * frame, cout * frame,
                targets.data() + r * 2 * cout * frame);
    std::copy_n(series.u2.data() + (ref.start + cin) * frame, cout * frame,
                targets.data() + (r * 2 * cout + cout) * frame);
  }
}

void make_block_windows(const TurbulenceDataset& dataset, Field field,
                        index_t block, TensorF& inputs, TensorF& targets,
                        index_t max_windows) {
  TURB_CHECK(block >= 2);
  const auto refs =
      enumerate_windows(dataset, {field}, 2 * block, block, max_windows);
  TensorF in4, out4;
  fill_windows(dataset, refs, block, block, in4, out4);
  // Reshape (n, block, H, W) → (n, 1, block, H, W).
  const index_t n = in4.dim(0), h = in4.dim(2), w = in4.dim(3);
  in4.reshape({n, 1, block, h, w});
  out4.reshape({n, 1, block, h, w});
  inputs = std::move(in4);
  targets = std::move(out4);
}

}  // namespace turb::data
