file(REMOVE_RECURSE
  "CMakeFiles/lyapunov_analysis.dir/lyapunov_analysis.cpp.o"
  "CMakeFiles/lyapunov_analysis.dir/lyapunov_analysis.cpp.o.d"
  "lyapunov_analysis"
  "lyapunov_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyapunov_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
