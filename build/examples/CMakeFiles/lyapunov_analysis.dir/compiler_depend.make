# Empty compiler generated dependencies file for lyapunov_analysis.
# This may be replaced when dependencies are built.
