file(REMOVE_RECURSE
  "CMakeFiles/forced_turbulence.dir/forced_turbulence.cpp.o"
  "CMakeFiles/forced_turbulence.dir/forced_turbulence.cpp.o.d"
  "forced_turbulence"
  "forced_turbulence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forced_turbulence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
