file(REMOVE_RECURSE
  "CMakeFiles/decaying_turbulence.dir/decaying_turbulence.cpp.o"
  "CMakeFiles/decaying_turbulence.dir/decaying_turbulence.cpp.o.d"
  "decaying_turbulence"
  "decaying_turbulence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decaying_turbulence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
