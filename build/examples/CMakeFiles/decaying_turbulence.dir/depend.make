# Empty dependencies file for decaying_turbulence.
# This may be replaced when dependencies are built.
