# Empty dependencies file for hybrid_longrun.
# This may be replaced when dependencies are built.
