file(REMOVE_RECURSE
  "CMakeFiles/hybrid_longrun.dir/hybrid_longrun.cpp.o"
  "CMakeFiles/hybrid_longrun.dir/hybrid_longrun.cpp.o.d"
  "hybrid_longrun"
  "hybrid_longrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_longrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
