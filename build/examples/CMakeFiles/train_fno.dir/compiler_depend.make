# Empty compiler generated dependencies file for train_fno.
# This may be replaced when dependencies are built.
