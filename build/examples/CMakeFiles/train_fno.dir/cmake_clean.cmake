file(REMOVE_RECURSE
  "CMakeFiles/train_fno.dir/train_fno.cpp.o"
  "CMakeFiles/train_fno.dir/train_fno.cpp.o.d"
  "train_fno"
  "train_fno.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_fno.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
