# Empty dependencies file for turbfno.
# This may be replaced when dependencies are built.
