
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/lyapunov.cpp" "src/CMakeFiles/turbfno.dir/analysis/lyapunov.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/analysis/lyapunov.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/CMakeFiles/turbfno.dir/analysis/stats.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/analysis/stats.cpp.o.d"
  "/root/repo/src/core/fno_propagator.cpp" "src/CMakeFiles/turbfno.dir/core/fno_propagator.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/core/fno_propagator.cpp.o.d"
  "/root/repo/src/core/hybrid.cpp" "src/CMakeFiles/turbfno.dir/core/hybrid.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/core/hybrid.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/turbfno.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/pde_propagator.cpp" "src/CMakeFiles/turbfno.dir/core/pde_propagator.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/core/pde_propagator.cpp.o.d"
  "/root/repo/src/data/generator.cpp" "src/CMakeFiles/turbfno.dir/data/generator.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/data/generator.cpp.o.d"
  "/root/repo/src/data/serialize.cpp" "src/CMakeFiles/turbfno.dir/data/serialize.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/data/serialize.cpp.o.d"
  "/root/repo/src/data/windows.cpp" "src/CMakeFiles/turbfno.dir/data/windows.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/data/windows.cpp.o.d"
  "/root/repo/src/fft/fft.cpp" "src/CMakeFiles/turbfno.dir/fft/fft.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/fft/fft.cpp.o.d"
  "/root/repo/src/fno/fno.cpp" "src/CMakeFiles/turbfno.dir/fno/fno.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/fno/fno.cpp.o.d"
  "/root/repo/src/fno/rollout.cpp" "src/CMakeFiles/turbfno.dir/fno/rollout.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/fno/rollout.cpp.o.d"
  "/root/repo/src/fno/trainer.cpp" "src/CMakeFiles/turbfno.dir/fno/trainer.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/fno/trainer.cpp.o.d"
  "/root/repo/src/lbm/initializer.cpp" "src/CMakeFiles/turbfno.dir/lbm/initializer.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/lbm/initializer.cpp.o.d"
  "/root/repo/src/lbm/solver.cpp" "src/CMakeFiles/turbfno.dir/lbm/solver.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/lbm/solver.cpp.o.d"
  "/root/repo/src/nn/activation.cpp" "src/CMakeFiles/turbfno.dir/nn/activation.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/nn/activation.cpp.o.d"
  "/root/repo/src/nn/dataloader.cpp" "src/CMakeFiles/turbfno.dir/nn/dataloader.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/nn/dataloader.cpp.o.d"
  "/root/repo/src/nn/deeponet.cpp" "src/CMakeFiles/turbfno.dir/nn/deeponet.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/nn/deeponet.cpp.o.d"
  "/root/repo/src/nn/gradcheck.cpp" "src/CMakeFiles/turbfno.dir/nn/gradcheck.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/nn/gradcheck.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/turbfno.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/turbfno.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/turbfno.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/physics_loss.cpp" "src/CMakeFiles/turbfno.dir/nn/physics_loss.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/nn/physics_loss.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/turbfno.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/nn/serialize.cpp.o.d"
  "/root/repo/src/nn/sobolev_loss.cpp" "src/CMakeFiles/turbfno.dir/nn/sobolev_loss.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/nn/sobolev_loss.cpp.o.d"
  "/root/repo/src/nn/spectral_conv.cpp" "src/CMakeFiles/turbfno.dir/nn/spectral_conv.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/nn/spectral_conv.cpp.o.d"
  "/root/repo/src/ns/solver.cpp" "src/CMakeFiles/turbfno.dir/ns/solver.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/ns/solver.cpp.o.d"
  "/root/repo/src/ns/spectral_ops.cpp" "src/CMakeFiles/turbfno.dir/ns/spectral_ops.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/ns/spectral_ops.cpp.o.d"
  "/root/repo/src/obs/obs.cpp" "src/CMakeFiles/turbfno.dir/obs/obs.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/obs/obs.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/turbfno.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/tensor/tensor.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/turbfno.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/image.cpp" "src/CMakeFiles/turbfno.dir/util/image.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/util/image.cpp.o.d"
  "/root/repo/src/util/scale.cpp" "src/CMakeFiles/turbfno.dir/util/scale.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/util/scale.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/turbfno.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/turbfno.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/turbfno.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
