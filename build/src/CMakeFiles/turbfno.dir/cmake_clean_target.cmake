file(REMOVE_RECURSE
  "libturbfno.a"
)
