# Empty dependencies file for test_fno.
# This may be replaced when dependencies are built.
