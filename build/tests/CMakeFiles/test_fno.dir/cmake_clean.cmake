file(REMOVE_RECURSE
  "CMakeFiles/test_fno.dir/test_fno.cpp.o"
  "CMakeFiles/test_fno.dir/test_fno.cpp.o.d"
  "test_fno"
  "test_fno.pdb"
  "test_fno[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fno.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
