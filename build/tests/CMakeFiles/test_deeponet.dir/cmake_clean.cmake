file(REMOVE_RECURSE
  "CMakeFiles/test_deeponet.dir/test_deeponet.cpp.o"
  "CMakeFiles/test_deeponet.dir/test_deeponet.cpp.o.d"
  "test_deeponet"
  "test_deeponet.pdb"
  "test_deeponet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deeponet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
