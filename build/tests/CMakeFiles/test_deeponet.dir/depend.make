# Empty dependencies file for test_deeponet.
# This may be replaced when dependencies are built.
