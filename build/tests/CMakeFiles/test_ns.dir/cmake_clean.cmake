file(REMOVE_RECURSE
  "CMakeFiles/test_ns.dir/test_ns.cpp.o"
  "CMakeFiles/test_ns.dir/test_ns.cpp.o.d"
  "test_ns"
  "test_ns.pdb"
  "test_ns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
