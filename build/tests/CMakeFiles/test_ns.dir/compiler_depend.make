# Empty compiler generated dependencies file for test_ns.
# This may be replaced when dependencies are built.
