# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_obs[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_fno[1]_include.cmake")
include("/root/repo/build/tests/test_lbm[1]_include.cmake")
include("/root/repo/build/tests/test_ns[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_deeponet[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
