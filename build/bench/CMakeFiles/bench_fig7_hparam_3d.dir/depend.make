# Empty dependencies file for bench_fig7_hparam_3d.
# This may be replaced when dependencies are built.
