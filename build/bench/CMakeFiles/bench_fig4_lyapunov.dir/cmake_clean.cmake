file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_lyapunov.dir/bench_fig4_lyapunov.cpp.o"
  "CMakeFiles/bench_fig4_lyapunov.dir/bench_fig4_lyapunov.cpp.o.d"
  "bench_fig4_lyapunov"
  "bench_fig4_lyapunov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_lyapunov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
