file(REMOVE_RECURSE
  "CMakeFiles/bench_inference_cost.dir/bench_inference_cost.cpp.o"
  "CMakeFiles/bench_inference_cost.dir/bench_inference_cost.cpp.o.d"
  "bench_inference_cost"
  "bench_inference_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inference_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
