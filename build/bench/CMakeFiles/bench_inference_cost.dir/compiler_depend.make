# Empty compiler generated dependencies file for bench_inference_cost.
# This may be replaced when dependencies are built.
