file(REMOVE_RECURSE
  "CMakeFiles/turbfno_bench_common.dir/common.cpp.o"
  "CMakeFiles/turbfno_bench_common.dir/common.cpp.o.d"
  "libturbfno_bench_common.a"
  "libturbfno_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbfno_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
