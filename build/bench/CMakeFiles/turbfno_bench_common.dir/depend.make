# Empty dependencies file for turbfno_bench_common.
# This may be replaced when dependencies are built.
