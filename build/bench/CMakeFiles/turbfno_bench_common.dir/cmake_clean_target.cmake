file(REMOVE_RECURSE
  "libturbfno_bench_common.a"
)
