file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_channels.dir/bench_fig5_channels.cpp.o"
  "CMakeFiles/bench_fig5_channels.dir/bench_fig5_channels.cpp.o.d"
  "bench_fig5_channels"
  "bench_fig5_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
