file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_spectral_conv.dir/bench_ablation_spectral_conv.cpp.o"
  "CMakeFiles/bench_ablation_spectral_conv.dir/bench_ablation_spectral_conv.cpp.o.d"
  "bench_ablation_spectral_conv"
  "bench_ablation_spectral_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spectral_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
