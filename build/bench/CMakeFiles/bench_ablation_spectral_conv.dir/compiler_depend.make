# Empty compiler generated dependencies file for bench_ablation_spectral_conv.
# This may be replaced when dependencies are built.
