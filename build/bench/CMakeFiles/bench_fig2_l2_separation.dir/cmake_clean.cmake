file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_l2_separation.dir/bench_fig2_l2_separation.cpp.o"
  "CMakeFiles/bench_fig2_l2_separation.dir/bench_fig2_l2_separation.cpp.o.d"
  "bench_fig2_l2_separation"
  "bench_fig2_l2_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_l2_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
