# Empty compiler generated dependencies file for bench_fig9_longterm_error.
# This may be replaced when dependencies are built.
