# Empty dependencies file for bench_fig6_hparam_2d.
# This may be replaced when dependencies are built.
