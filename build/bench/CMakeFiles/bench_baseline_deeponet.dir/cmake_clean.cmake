file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_deeponet.dir/bench_baseline_deeponet.cpp.o"
  "CMakeFiles/bench_baseline_deeponet.dir/bench_baseline_deeponet.cpp.o.d"
  "bench_baseline_deeponet"
  "bench_baseline_deeponet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_deeponet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
