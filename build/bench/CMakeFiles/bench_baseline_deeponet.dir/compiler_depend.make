# Empty compiler generated dependencies file for bench_baseline_deeponet.
# This may be replaced when dependencies are built.
