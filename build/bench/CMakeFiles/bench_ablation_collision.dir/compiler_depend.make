# Empty compiler generated dependencies file for bench_ablation_collision.
# This may be replaced when dependencies are built.
