file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_collision.dir/bench_ablation_collision.cpp.o"
  "CMakeFiles/bench_ablation_collision.dir/bench_ablation_collision.cpp.o.d"
  "bench_ablation_collision"
  "bench_ablation_collision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_collision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
