file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sobolev.dir/bench_ablation_sobolev.cpp.o"
  "CMakeFiles/bench_ablation_sobolev.dir/bench_ablation_sobolev.cpp.o.d"
  "bench_ablation_sobolev"
  "bench_ablation_sobolev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sobolev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
