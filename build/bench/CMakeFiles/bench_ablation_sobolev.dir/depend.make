# Empty dependencies file for bench_ablation_sobolev.
# This may be replaced when dependencies are built.
