file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hybrid_stats.dir/bench_fig8_hybrid_stats.cpp.o"
  "CMakeFiles/bench_fig8_hybrid_stats.dir/bench_fig8_hybrid_stats.cpp.o.d"
  "bench_fig8_hybrid_stats"
  "bench_fig8_hybrid_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hybrid_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
