# Empty dependencies file for bench_fig8_hybrid_stats.
# This may be replaced when dependencies are built.
