# Empty compiler generated dependencies file for bench_ablation_physics_loss.
# This may be replaced when dependencies are built.
