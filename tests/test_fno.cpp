#include <gtest/gtest.h>

#include "fno/fno.hpp"
#include "fno/rollout.hpp"
#include "fno/trainer.hpp"
#include "nn/dataloader.hpp"
#include "nn/gradcheck.hpp"
#include "nn/loss.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace turb::fno {
namespace {

FnoConfig small2d() {
  FnoConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 2;
  cfg.width = 6;
  cfg.n_layers = 2;
  cfg.n_modes = {4, 4};
  cfg.lifting_channels = 8;
  cfg.projection_channels = 8;
  return cfg;
}

TensorF random_input(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  TensorF x(std::move(shape));
  x.fill_normal(rng, 0.0, 1.0);
  return x;
}

TEST(Fno, ForwardShape2D) {
  Rng rng(1);
  Fno model(small2d(), rng);
  const TensorF y = model.forward(random_input({2, 3, 16, 16}, 2));
  EXPECT_EQ(y.shape(), (Shape{2, 2, 16, 16}));
}

TEST(Fno, ForwardShape3D) {
  Rng rng(3);
  FnoConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 1;
  cfg.width = 4;
  cfg.n_layers = 2;
  cfg.n_modes = {4, 4, 4};
  cfg.lifting_channels = 8;
  cfg.projection_channels = 8;
  Fno model(cfg, rng);
  const TensorF y = model.forward(random_input({1, 1, 10, 8, 8}, 4));
  EXPECT_EQ(y.shape(), (Shape{1, 1, 10, 8, 8}));
}

TEST(Fno, GradcheckInputEndToEnd) {
  Rng rng(5);
  Fno model(small2d(), rng);
  const auto res =
      nn::gradcheck_input(model, random_input({1, 3, 8, 8}, 6), 40, 2e-2f);
  EXPECT_TRUE(res.ok(3e-2)) << "max rel err " << res.max_rel_error;
}

TEST(Fno, GradcheckParametersEndToEnd) {
  Rng rng(7);
  Fno model(small2d(), rng);
  const auto res = nn::gradcheck_parameters(
      model, random_input({1, 3, 8, 8}, 8), 10, 2e-2f);
  EXPECT_TRUE(res.ok(3e-2)) << "max rel err " << res.max_rel_error;
}

TEST(Fno, GradcheckInputEndToEndPooled) {
  // Same end-to-end check with 4 pool workers and a batch wider than the
  // gradient slab count, so every per-slab scratch reduction in the chain
  // (spectral dW, linear dW/db) runs its parallel path.
  ThreadPool::Scope scope(4);
  Rng rng(5);
  Fno model(small2d(), rng);
  const auto res =
      nn::gradcheck_input(model, random_input({9, 3, 8, 8}, 6), 40, 2e-2f);
  EXPECT_TRUE(res.ok(3e-2)) << "max rel err " << res.max_rel_error;
}

TEST(Fno, GradcheckParametersEndToEndPooled) {
  ThreadPool::Scope scope(4);
  Rng rng(7);
  Fno model(small2d(), rng);
  const auto res = nn::gradcheck_parameters(
      model, random_input({9, 3, 8, 8}, 8), 10, 2e-2f);
  EXPECT_TRUE(res.ok(3e-2)) << "max rel err " << res.max_rel_error;
}

TEST(Fno, ResolutionAgnosticInference) {
  Rng rng(9);
  Fno model(small2d(), rng);
  EXPECT_EQ(model.forward(random_input({1, 3, 8, 8}, 10)).dim(2), 8);
  EXPECT_EQ(model.forward(random_input({1, 3, 32, 32}, 11)).dim(2), 32);
}

// --- Table I: exact parameter counts -----------------------------------------
//
// These twelve numbers are copied verbatim from the paper. Matching them
// exactly pins down the architecture (lifting/projection widths, single
// complex spectral weight, linear skip with bias).

struct TableRow {
  const char* label;
  index_t in_ch, out_ch, width, layers;
  index_t m1, m2, m3;  // m3 == 0 → rank-2 model
  index_t expected;
};

class TableIParams : public ::testing::TestWithParam<TableRow> {};

TEST_P(TableIParams, ClosedFormMatchesPaper) {
  const TableRow& row = GetParam();
  FnoConfig cfg;
  cfg.in_channels = row.in_ch;
  cfg.out_channels = row.out_ch;
  cfg.width = row.width;
  cfg.n_layers = row.layers;
  cfg.n_modes = row.m3 > 0 ? std::vector<index_t>{row.m1, row.m2, row.m3}
                           : std::vector<index_t>{row.m1, row.m2};
  EXPECT_EQ(fno_parameter_count(cfg), row.expected) << row.label;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable, TableIParams,
    ::testing::Values(
        TableRow{"2dfno_ch10_w40", 10, 10, 40, 4, 32, 32, 0, 6995922},
        TableRow{"2dfno_ch10_w8", 10, 10, 8, 4, 32, 32, 0, 288562},
        TableRow{"2dfno_ch5_w40", 10, 5, 40, 4, 32, 32, 0, 6994637},
        TableRow{"2dfno_ch5_w8", 10, 5, 8, 4, 32, 32, 0, 287277},
        TableRow{"2dfno_ch1_w40", 10, 1, 40, 4, 32, 32, 0, 6993609},
        TableRow{"2dfno_ch1_w8", 10, 1, 8, 4, 32, 32, 0, 286249},
        TableRow{"3dfno_w40_m32", 1, 1, 40, 4, 32, 32, 32, 222850505},
        TableRow{"3dfno_w40_m16", 1, 1, 40, 4, 16, 16, 16, 29519305},
        TableRow{"3dfno_w20_m24", 1, 1, 20, 4, 24, 24, 24, 23974565},
        TableRow{"3dfno_w8_m32", 1, 1, 8, 4, 32, 32, 32, 8918313},
        TableRow{"3dfno_w4_l8_m32", 1, 1, 4, 8, 32, 32, 32, 4459685},
        TableRow{"3dfno_w8_l8_m24", 1, 1, 8, 8, 24, 24, 24, 7673417}));

TEST(Fno, InstantiatedModelMatchesClosedForm) {
  Rng rng(12);
  // Small config instantiated for real; closed form must agree with the
  // actual allocated parameters.
  FnoConfig cfg = small2d();
  Fno model(cfg, rng);
  EXPECT_EQ(model.parameter_count(), fno_parameter_count(cfg));
}

TEST(Fno, FactorizedModelMatchesClosedForm) {
  Rng rng(12);
  FnoConfig cfg = small2d();
  cfg.spectral_kind = nn::SpectralKind::kFactorized;
  Fno model(cfg, rng);
  EXPECT_EQ(model.parameter_count(), fno_parameter_count(cfg));
  // The factorized weight is strictly smaller than the dense one.
  FnoConfig dense = small2d();
  EXPECT_LT(fno_parameter_count(cfg), fno_parameter_count(dense));
}

TEST(Fno, SharedFactorizedModelMatchesClosedForm) {
  Rng rng(12);
  FnoConfig cfg = small2d();
  cfg.spectral_kind = nn::SpectralKind::kFactorized;
  cfg.share_spectral_factors = true;
  Fno model(cfg, rng);
  EXPECT_EQ(model.parameter_count(), fno_parameter_count(cfg));
  // Sharing removes (n_layers - 1) copies of the factor set.
  FnoConfig unshared = cfg;
  unshared.share_spectral_factors = false;
  EXPECT_LT(fno_parameter_count(cfg), fno_parameter_count(unshared));
}

TEST(Fno, InstantiatedPaperModelMatchesTableI) {
  // The width-8 2D model (288,562 parameters) is small enough to allocate.
  Rng rng(13);
  FnoConfig cfg;
  cfg.in_channels = 10;
  cfg.out_channels = 10;
  cfg.width = 8;
  cfg.n_layers = 4;
  cfg.n_modes = {32, 32};
  Fno model(cfg, rng);
  EXPECT_EQ(model.parameter_count(), 288562);
}

// --- training sanity ----------------------------------------------------------

TEST(Trainer, OverfitsTinyDataset) {
  // A small FNO must drive the relative-L2 loss well below the trivial
  // predict-zero baseline (loss 1.0) on a 4-sample problem.
  Rng rng(14);
  FnoConfig cfg = small2d();
  Fno model(cfg, rng);

  TensorF x({4, 3, 8, 8}), y({4, 2, 8, 8});
  x.fill_normal(rng, 0.0, 1.0);
  // Target: a fixed linear functional of the input (learnable by FNO).
  for (index_t n = 0; n < 4; ++n) {
    for (index_t c = 0; c < 2; ++c) {
      for (index_t i = 0; i < 64; ++i) {
        y[(n * 2 + c) * 64 + i] =
            0.5f * x[(n * 3 + c) * 64 + i] - 0.25f * x[(n * 3 + 2) * 64 + i];
      }
    }
  }
  nn::DataLoader loader(x, y, 2, true, 15);
  TrainConfig tc;
  tc.epochs = 80;
  tc.lr = 4e-3;
  tc.weight_decay = 0.0;
  const TrainResult res = train_fno(model, loader, tc);
  EXPECT_LT(res.final_train_loss(), 0.25)
      << "training failed to reduce loss";
  // Loss decreased substantially from the first epochs.
  EXPECT_LT(res.history.back().train_loss,
            0.5 * res.history.front().train_loss);
}

TEST(Trainer, EvaluateMatchesManualError) {
  Rng rng(16);
  Fno model(small2d(), rng);
  TensorF x({3, 3, 8, 8}), y({3, 2, 8, 8});
  x.fill_normal(rng, 0.0, 1.0);
  y.fill_normal(rng, 0.0, 1.0);
  const EvalResult eval = evaluate_fno(model, x, y, 2);
  const TensorF pred = model.forward(x);
  EXPECT_NEAR(eval.rel_l2, nn::relative_l2_error(pred, y), 1e-6);
  EXPECT_EQ(eval.n_samples, 3);
  EXPECT_GE(eval.seconds, 0.0);
  // Thin compatibility wrapper returns the same scalar.
  EXPECT_DOUBLE_EQ(evaluate_fno_error(model, x, y, 2), eval.rel_l2);
}

// --- rollout -------------------------------------------------------------------

// These tests deliberately pin the deprecated tensor-level rollout helpers
// (the engine _into methods they wrap are covered by tests/test_infer.cpp).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(Rollout, ChannelsShapeAndWindowSlide) {
  Rng rng(17);
  FnoConfig cfg = small2d();  // in 3, out 2
  Fno model(cfg, rng);
  TensorF history({3, 8, 8});
  history.fill_normal(rng, 0.0, 1.0);
  const TensorF traj = rollout_channels(model, history, 7);
  EXPECT_EQ(traj.shape(), (Shape{7, 8, 8}));
}

TEST(Rollout, ChannelsExactMultiple) {
  Rng rng(18);
  FnoConfig cfg = small2d();
  Fno model(cfg, rng);
  TensorF history({3, 8, 8});
  history.fill_normal(rng, 0.0, 1.0);
  const TensorF traj = rollout_channels(model, history, 4);
  EXPECT_EQ(traj.dim(0), 4);
}

TEST(Rollout, SingleOutputChannelIterates) {
  Rng rng(19);
  FnoConfig cfg = small2d();
  cfg.out_channels = 1;
  Fno model(cfg, rng);
  TensorF history({3, 8, 8});
  history.fill_normal(rng, 0.0, 1.0);
  const TensorF traj = rollout_channels(model, history, 5);
  EXPECT_EQ(traj.shape(), (Shape{5, 8, 8}));
}

TEST(Rollout, OutputsExceedWindow) {
  Rng rng(20);
  FnoConfig cfg = small2d();
  cfg.in_channels = 2;
  cfg.out_channels = 4;  // C_out > C_in exercises the replace branch
  Fno model(cfg, rng);
  TensorF history({2, 8, 8});
  history.fill_normal(rng, 0.0, 1.0);
  const TensorF traj = rollout_channels(model, history, 9);
  EXPECT_EQ(traj.dim(0), 9);
}

TEST(Rollout, ThreeDBlocks) {
  Rng rng(21);
  FnoConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 1;
  cfg.width = 4;
  cfg.n_layers = 1;
  cfg.n_modes = {4, 4, 4};
  cfg.lifting_channels = 4;
  cfg.projection_channels = 4;
  Fno model(cfg, rng);
  TensorF seed({6, 8, 8});
  seed.fill_normal(rng, 0.0, 1.0);
  const TensorF traj = rollout_3d(model, seed, 3);
  EXPECT_EQ(traj.shape(), (Shape{18, 8, 8}));
}

TEST(Rollout, DeterministicGivenSameSeed) {
  Rng rng(22);
  Fno model(small2d(), rng);
  TensorF history({3, 8, 8});
  history.fill_normal(rng, 0.0, 1.0);
  const TensorF a = rollout_channels(model, history, 4);
  const TensorF b = rollout_channels(model, history, 4);
  for (index_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace turb::fno
