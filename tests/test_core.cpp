#include <gtest/gtest.h>

#include <cmath>

#include "core/fno_propagator.hpp"
#include "core/hybrid.hpp"
#include "core/metrics.hpp"
#include "core/pde_propagator.hpp"
#include "lbm/initializer.hpp"
#include "ns/spectral_ops.hpp"
#include "util/rng.hpp"

namespace turb::core {
namespace {

constexpr index_t kGrid = 32;
constexpr double kDtSnap = 0.01;

std::unique_ptr<ns::NsSolver> make_solver() {
  ns::NsConfig cfg;
  cfg.n = kGrid;
  cfg.viscosity = 1e-3;
  cfg.dt = 1e-3;
  return std::make_unique<ns::SpectralNsSolver>(cfg);
}

FieldSnapshot make_seed_snapshot(double t, std::uint64_t seed) {
  Rng rng(seed);
  const auto field = lbm::random_vortex_velocity(kGrid, kGrid, 4.0, 1.0, rng);
  FieldSnapshot snap;
  snap.t = t;
  snap.u1 = field.u1;
  snap.u2 = field.u2;
  return snap;
}

/// Seed history of `n` snapshots produced by the PDE itself.
History make_seed_history(index_t n, std::uint64_t seed) {
  History history;
  history.push_back(make_seed_snapshot(0.0, seed));
  if (n > 1) {
    PdePropagator pde(make_solver(), kDtSnap);
    auto more = pde.advance(history, n - 1);
    for (auto& s : more) history.push_back(std::move(s));
  }
  return history;
}

fno::FnoConfig tiny_fno_config() {
  fno::FnoConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 2;
  cfg.width = 6;
  cfg.n_layers = 2;
  cfg.n_modes = {8, 8};
  cfg.lifting_channels = 8;
  cfg.projection_channels = 8;
  return cfg;
}

// --- metrics -------------------------------------------------------------------

TEST(Metrics, TaylorGreenValues) {
  const auto field = lbm::taylor_green_velocity(64, 64, 1.0);
  FieldSnapshot snap;
  snap.t = 0.5;
  snap.u1 = field.u1;
  snap.u2 = field.u2;
  const SnapshotMetrics m = compute_metrics(snap);
  EXPECT_DOUBLE_EQ(m.t, 0.5);
  EXPECT_NEAR(m.kinetic_energy, 0.25, 1e-10);
  const double k = 2.0 * std::numbers::pi;
  EXPECT_NEAR(m.enstrophy, k * k, 1e-8);
  EXPECT_LT(m.divergence_linf, 1e-10);
}

TEST(Metrics, DivergenceDetectsNonSolenoidalField) {
  const index_t n = 32;
  TensorD u1({n, n}), u2({n, n});
  for (index_t iy = 0; iy < n; ++iy) {
    for (index_t ix = 0; ix < n; ++ix) {
      // Radial-ish field: strongly divergent.
      u1(iy, ix) = std::sin(2.0 * std::numbers::pi * ix / n);
      u2(iy, ix) = std::sin(2.0 * std::numbers::pi * iy / n);
    }
  }
  FieldSnapshot snap{0.0, u1, u2};
  const SnapshotMetrics m = compute_metrics(snap);
  EXPECT_GT(m.divergence_linf, 1.0);
  EXPECT_GT(m.divergence_l2, 0.5);
}

TEST(Metrics, PercentageError) {
  EXPECT_NEAR(percentage_error(1.1, 1.0), 10.0, 1e-12);
  EXPECT_NEAR(percentage_error(0.9, 1.0), 10.0, 1e-12);
  EXPECT_THROW(percentage_error(1.0, 0.0), CheckError);
}

// --- PdePropagator -------------------------------------------------------------

TEST(PdePropagator, ProducesRequestedSnapshots) {
  PdePropagator pde(make_solver(), kDtSnap);
  History history;
  history.push_back(make_seed_snapshot(0.2, 11));
  const auto traj = pde.advance(history, 5);
  ASSERT_EQ(traj.size(), 5u);
  for (std::size_t s = 0; s < traj.size(); ++s) {
    EXPECT_NEAR(traj[s].t, 0.2 + kDtSnap * static_cast<double>(s + 1), 1e-12);
    EXPECT_EQ(traj[s].u1.shape(), (Shape{kGrid, kGrid}));
  }
}

TEST(PdePropagator, OutputsAreDivergenceFree) {
  PdePropagator pde(make_solver(), kDtSnap);
  History history;
  history.push_back(make_seed_snapshot(0.0, 13));
  const auto traj = pde.advance(history, 3);
  for (const auto& snap : traj) {
    EXPECT_LT(ns::divergence(snap.u1, snap.u2).max_abs(), 1e-7);
  }
}

TEST(PdePropagator, EnergyDecays) {
  PdePropagator pde(make_solver(), kDtSnap);
  History history;
  history.push_back(make_seed_snapshot(0.0, 17));
  const auto traj = pde.advance(history, 10);
  const auto metrics = compute_metrics(traj);
  EXPECT_LT(metrics.back().kinetic_energy, metrics.front().kinetic_energy);
}

TEST(PdePropagator, RejectsNonMultipleSnapshotSpacing) {
  EXPECT_THROW(PdePropagator(make_solver(), 0.0015), CheckError);
}

TEST(PdePropagator, RejectsEmptyHistory) {
  PdePropagator pde(make_solver(), kDtSnap);
  History empty;
  EXPECT_THROW(pde.advance(empty, 1), CheckError);
}

// --- FnoPropagator -------------------------------------------------------------

TEST(FnoPropagator, ShapesTimesAndDeterminism) {
  Rng rng(19);
  fno::Fno model(tiny_fno_config(), rng);
  FnoPropagator fno_prop(model, analysis::Normalizer(0.0, 1.0), kDtSnap);
  EXPECT_EQ(fno_prop.min_history(), 4);

  const History history = make_seed_history(4, 23);
  const auto a = fno_prop.advance(history, 5);
  const auto b = fno_prop.advance(history, 5);
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_NEAR(a[s].t, history.back().t + kDtSnap * static_cast<double>(s + 1),
                1e-12);
    for (index_t i = 0; i < a[s].u1.size(); ++i) {
      ASSERT_EQ(a[s].u1[i], b[s].u1[i]);
    }
  }
}

TEST(FnoPropagator, RejectsShortHistory) {
  Rng rng(29);
  fno::Fno model(tiny_fno_config(), rng);
  FnoPropagator fno_prop(model, analysis::Normalizer(0.0, 1.0), kDtSnap);
  const History history = make_seed_history(3, 31);
  EXPECT_THROW(fno_prop.advance(history, 1), CheckError);
}

TEST(FnoPropagator, Rejects3dModel) {
  Rng rng(37);
  fno::FnoConfig cfg = tiny_fno_config();
  cfg.n_modes = {4, 4, 4};
  fno::Fno model(cfg, rng);
  EXPECT_THROW(FnoPropagator(model, analysis::Normalizer(0.0, 1.0), kDtSnap),
               CheckError);
}

// --- HybridScheduler -------------------------------------------------------------

TEST(Hybrid, AlternatesProducersInConfiguredWindows) {
  Rng rng(41);
  fno::Fno model(tiny_fno_config(), rng);
  FnoPropagator fno_prop(model, analysis::Normalizer(0.0, 1.0), kDtSnap);
  PdePropagator pde_prop(make_solver(), kDtSnap);

  HybridConfig cfg;
  cfg.fno_snapshots = 2;
  cfg.pde_snapshots = 3;
  HybridScheduler scheduler(fno_prop, pde_prop, cfg);
  const History seed = make_seed_history(4, 43);
  const RolloutResult result = scheduler.run(seed, 12);

  ASSERT_EQ(result.trajectory.size(), 12u);
  ASSERT_EQ(result.producer.size(), 12u);
  const std::vector<std::string> expected = {"fno", "fno", "pde", "pde",
                                             "pde", "fno", "fno", "pde",
                                             "pde", "pde", "fno", "fno"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.producer[i], expected[i]) << "snapshot " << i;
  }
}

TEST(Hybrid, TimesAreUniform) {
  Rng rng(47);
  fno::Fno model(tiny_fno_config(), rng);
  FnoPropagator fno_prop(model, analysis::Normalizer(0.0, 1.0), kDtSnap);
  PdePropagator pde_prop(make_solver(), kDtSnap);
  HybridConfig cfg;
  cfg.fno_snapshots = 3;
  cfg.pde_snapshots = 2;
  HybridScheduler scheduler(fno_prop, pde_prop, cfg);
  const History seed = make_seed_history(4, 53);
  const RolloutResult result = scheduler.run(seed, 10);
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    EXPECT_NEAR(result.trajectory[i].t,
                seed.back().t + kDtSnap * static_cast<double>(i + 1), 1e-9);
  }
}

TEST(Hybrid, PdeWindowRestoresDivergenceFreeFields) {
  // The central mechanism of the paper's Fig. 8: an (untrained) FNO emits
  // fields with O(1) divergence; the next PDE window projects them back.
  Rng rng(59);
  fno::Fno model(tiny_fno_config(), rng);
  FnoPropagator fno_prop(model, analysis::Normalizer(0.0, 1.0), kDtSnap);
  PdePropagator pde_prop(make_solver(), kDtSnap);
  HybridConfig cfg;
  cfg.fno_snapshots = 2;
  cfg.pde_snapshots = 2;
  HybridScheduler scheduler(fno_prop, pde_prop, cfg);
  const History seed = make_seed_history(4, 61);
  const RolloutResult result = scheduler.run(seed, 8);

  double max_fno_div = 0.0, max_pde_div = 0.0;
  for (std::size_t i = 0; i < result.metrics.size(); ++i) {
    if (result.producer[i] == "fno") {
      max_fno_div = std::max(max_fno_div, result.metrics[i].divergence_linf);
    } else {
      max_pde_div = std::max(max_pde_div, result.metrics[i].divergence_linf);
    }
  }
  EXPECT_GT(max_fno_div, 1e-3);   // raw surrogate output is unphysical
  EXPECT_LT(max_pde_div, 1e-6);   // solver window restores incompressibility
  EXPECT_LT(max_pde_div, max_fno_div * 1e-2);
}

TEST(Hybrid, PureFnoConfiguration) {
  Rng rng(67);
  fno::Fno model(tiny_fno_config(), rng);
  FnoPropagator fno_prop(model, analysis::Normalizer(0.0, 1.0), kDtSnap);
  PdePropagator pde_prop(make_solver(), kDtSnap);
  HybridConfig cfg;
  cfg.fno_snapshots = 4;
  cfg.pde_snapshots = 0;
  HybridScheduler scheduler(fno_prop, pde_prop, cfg);
  const RolloutResult result = scheduler.run(make_seed_history(4, 71), 6);
  for (const auto& p : result.producer) EXPECT_EQ(p, "fno");
}

TEST(Hybrid, PurePdeConfiguration) {
  Rng rng(73);
  fno::Fno model(tiny_fno_config(), rng);
  FnoPropagator fno_prop(model, analysis::Normalizer(0.0, 1.0), kDtSnap);
  PdePropagator pde_prop(make_solver(), kDtSnap);
  HybridConfig cfg;
  cfg.fno_snapshots = 0;
  cfg.pde_snapshots = 4;
  cfg.start_with_fno = false;
  HybridScheduler scheduler(fno_prop, pde_prop, cfg);
  const RolloutResult result = scheduler.run(make_seed_history(4, 79), 6);
  for (const auto& p : result.producer) EXPECT_EQ(p, "pde");
}

TEST(Hybrid, RunSingleMatchesPropagatorDirectly) {
  PdePropagator pde_prop(make_solver(), kDtSnap);
  History seed;
  seed.push_back(make_seed_snapshot(0.0, 83));
  // Pins the deprecated shim's behavior until it is removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const RolloutResult result = run_single(pde_prop, seed, 5);
#pragma GCC diagnostic pop
  ASSERT_EQ(result.trajectory.size(), 5u);
  ASSERT_EQ(result.metrics.size(), 5u);
  EXPECT_EQ(result.producer.front(), "pde");
}

TEST(Hybrid, MismatchedSnapshotSpacingRejected) {
  Rng rng(89);
  fno::Fno model(tiny_fno_config(), rng);
  FnoPropagator fno_prop(model, analysis::Normalizer(0.0, 1.0), 0.02);
  PdePropagator pde_prop(make_solver(), kDtSnap);
  HybridConfig cfg;
  EXPECT_THROW(HybridScheduler(fno_prop, pde_prop, cfg), CheckError);
}

TEST(Hybrid, BothWindowsZeroRejected) {
  Rng rng(97);
  fno::Fno model(tiny_fno_config(), rng);
  FnoPropagator fno_prop(model, analysis::Normalizer(0.0, 1.0), kDtSnap);
  PdePropagator pde_prop(make_solver(), kDtSnap);
  HybridConfig cfg;
  cfg.fno_snapshots = 0;
  cfg.pde_snapshots = 0;
  EXPECT_THROW(HybridScheduler(fno_prop, pde_prop, cfg), CheckError);
}

}  // namespace
}  // namespace turb::core
