// Determinism-tier contract of the util::isa dispatch layer (ISSUE 7,
// DESIGN.md "Determinism tiers"):
//
//   * Tier B (bounded, cross-ISA): for every vectorized kernel family —
//     gemm_nn/gemm_tn/gemm_nt, the radix-2 c2c butterflies (incl. the
//     Bluestein fallback, which reaches them through its power-of-two
//     sub-plan), and the rfft/irfft unpack — the scalar and AVX2 results
//     agree within a small multiple of the rounding error of the
//     accumulation depth. The property suites run odd/edge-tail shapes so
//     every vector-width remainder path (32/16/8/4-wide groups and scalar
//     tails) is exercised.
//   * Tier A (bitwise, per ISA): with the ISA pinned by ScopedIsa, kernel
//     results are bitwise identical across pool widths 1/2/4, and masked
//     (mode-pruned) rfft transforms are bitwise identical to unmasked ones
//     on the kept bins.
//
// Every avx2-side test skips (GTEST_SKIP) when the CPU lacks AVX2+FMA, so
// the suite is green on any host under both forced TURBFNO_ISA settings.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "fft/plan.hpp"
#include "fft/fftnd.hpp"
#include "fft/real.hpp"
#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"
#include "util/isa.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace turb {
namespace {

bool avx2_available() { return util::cpu_supports_avx2(); }

#define SKIP_WITHOUT_AVX2()                                            \
  if (!avx2_available()) {                                             \
    GTEST_SKIP() << "CPU lacks AVX2+FMA; scalar is the only ISA here"; \
  }

// ---------------------------------------------------------------------------
// Dispatch-layer unit tests
// ---------------------------------------------------------------------------

TEST(IsaLayer, ParseAndName) {
  EXPECT_EQ(util::parse_isa("scalar"), util::Isa::kScalar);
  EXPECT_STREQ(util::isa_name(util::Isa::kScalar), "scalar");
  EXPECT_STREQ(util::isa_name(util::Isa::kAvx2), "avx2");
  EXPECT_THROW((void)util::parse_isa("sse9"), CheckError);
  if (avx2_available()) {
    EXPECT_EQ(util::parse_isa("avx2"), util::Isa::kAvx2);
    EXPECT_EQ(util::parse_isa("auto"), util::Isa::kAvx2);
  } else {
    EXPECT_THROW((void)util::parse_isa("avx2"), CheckError);
    EXPECT_EQ(util::parse_isa("auto"), util::Isa::kScalar);
  }
}

TEST(IsaLayer, ActiveIsaIsAlwaysRunnable) {
  const util::Isa isa = util::active_isa();
  if (isa == util::Isa::kAvx2) {
    EXPECT_TRUE(avx2_available());
  }
}

TEST(IsaLayer, ScopedIsaForcesAndRestores) {
  const util::Isa before = util::active_isa();
  {
    util::ScopedIsa forced(util::Isa::kScalar);
    EXPECT_EQ(util::active_isa(), util::Isa::kScalar);
    if (avx2_available()) {
      util::ScopedIsa nested(util::Isa::kAvx2);
      EXPECT_EQ(util::active_isa(), util::Isa::kAvx2);
    }
    EXPECT_EQ(util::active_isa(), util::Isa::kScalar);
  }
  EXPECT_EQ(util::active_isa(), before);
}

TEST(IsaLayer, DispatchCountersAdvance) {
  util::ScopedIsa forced(util::Isa::kScalar);
  const double gemm0 = util::gemm_dispatch_counter(util::Isa::kScalar).value();
  std::vector<float> a(4, 1.0f), b(4, 2.0f), c(4, 0.0f);
  gemm_nn<float>(2, 2, 2, 1.0f, a.data(), 2, b.data(), 2, 0.0f, c.data(), 2);
  EXPECT_GT(util::gemm_dispatch_counter(util::Isa::kScalar).value(), gemm0);
}

// ---------------------------------------------------------------------------
// Tier B: GEMM scalar vs AVX2
// ---------------------------------------------------------------------------

struct GemmShape {
  index_t m, n, k;
};

// Shapes straddling every panel-width boundary: n < 8 (pure scalar tail),
// n = 8/16/32/64 (exact vector groups), and odd n with 32-, 8-, and
// sub-8-wide remainders; k odd, even, and 1.
const GemmShape kShapes[] = {{1, 5, 7},   {3, 8, 4},   {2, 9, 5},
                             {4, 16, 1},  {5, 23, 12}, {7, 33, 9},
                             {1, 64, 10}, {13, 17, 19}, {2, 70, 3},
                             {6, 40, 33}};

/// |scalar − avx2| for one C element must stay within a few rounding units
/// of the accumulation: every one of the k multiply-adds (plus the beta
/// term) can shift by one ulp of the running magnitude when FMA fuses it.
template <typename T>
void expect_tier_b(const std::vector<T>& ref, const std::vector<T>& alt,
                   const std::vector<double>& scale, const char* what) {
  constexpr double eps = std::numeric_limits<T>::epsilon();
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double bound = 4.0 * eps * scale[i] +
                         4.0 * std::numeric_limits<T>::min();
    EXPECT_NEAR(static_cast<double>(ref[i]), static_cast<double>(alt[i]),
                bound)
        << what << " element " << i;
  }
}

enum class GemmKind { kNn, kTn, kNt };

template <typename T>
void run_gemm(GemmKind kind, const GemmShape& s, T alpha, T beta,
              const std::vector<T>& a, const std::vector<T>& b,
              std::vector<T>& c) {
  switch (kind) {
    case GemmKind::kNn:
      gemm_nn(s.m, s.n, s.k, alpha, a.data(), s.k, b.data(), s.n, beta,
              c.data(), s.n);
      break;
    case GemmKind::kTn:
      gemm_tn(s.m, s.n, s.k, alpha, a.data(), s.m, b.data(), s.n, beta,
              c.data(), s.n);
      break;
    case GemmKind::kNt:
      gemm_nt(s.m, s.n, s.k, alpha, a.data(), s.k, b.data(), s.k, beta,
              c.data(), s.n);
      break;
  }
}

template <typename T>
void gemm_tier_b_case(GemmKind kind, const GemmShape& s, T alpha, T beta,
                      std::uint64_t seed, const char* what) {
  Rng rng(seed);
  const bool a_transposed = kind == GemmKind::kTn;
  const bool b_transposed = kind == GemmKind::kNt;
  std::vector<T> a(static_cast<std::size_t>(s.m * s.k));
  std::vector<T> b(static_cast<std::size_t>(s.k * s.n));
  std::vector<T> c0(static_cast<std::size_t>(s.m * s.n));
  for (auto& v : a) v = static_cast<T>(rng.normal());
  for (auto& v : b) v = static_cast<T>(rng.normal());
  for (auto& v : c0) v = static_cast<T>(rng.normal());

  // Per-element magnitude of the accumulation, in double: Σ_p |α·a·b| per
  // rounding step plus the beta term, times the number of steps.
  const auto a_at = [&](index_t i, index_t p) {
    return a[static_cast<std::size_t>(a_transposed ? p * s.m + i
                                                   : i * s.k + p)];
  };
  const auto b_at = [&](index_t p, index_t j) {
    return b[static_cast<std::size_t>(b_transposed ? j * s.k + p
                                                   : p * s.n + j)];
  };
  std::vector<double> scale(c0.size());
  for (index_t i = 0; i < s.m; ++i) {
    for (index_t j = 0; j < s.n; ++j) {
      double mag = std::abs(static_cast<double>(beta) *
                            c0[static_cast<std::size_t>(i * s.n + j)]);
      for (index_t p = 0; p < s.k; ++p) {
        mag += std::abs(static_cast<double>(alpha) * a_at(i, p) * b_at(p, j));
      }
      scale[static_cast<std::size_t>(i * s.n + j)] =
          static_cast<double>(s.k + 2) * mag;
    }
  }

  std::vector<T> c_scalar = c0;
  {
    util::ScopedIsa forced(util::Isa::kScalar);
    run_gemm(kind, s, alpha, beta, a, b, c_scalar);
  }
  std::vector<T> c_avx2 = c0;
  {
    util::ScopedIsa forced(util::Isa::kAvx2);
    run_gemm(kind, s, alpha, beta, a, b, c_avx2);
  }
  expect_tier_b(c_scalar, c_avx2, scale, what);
}

class GemmIsaEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(GemmIsaEquivalence, ScalarVsAvx2WithinTierB) {
  SKIP_WITHOUT_AVX2();
  const GemmShape s = kShapes[GetParam()];
  const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(GetParam());
  int variant = 0;
  for (const GemmKind kind : {GemmKind::kNn, GemmKind::kTn, GemmKind::kNt}) {
    for (const double beta : {0.0, 1.0, 0.5}) {
      ++variant;
      gemm_tier_b_case<float>(kind, s, 1.25f, static_cast<float>(beta),
                              seed * 100 + static_cast<std::uint64_t>(variant),
                              "float gemm");
      gemm_tier_b_case<double>(kind, s, 1.25, beta,
                               seed * 100 +
                                   static_cast<std::uint64_t>(50 + variant),
                               "double gemm");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmIsaEquivalence,
                         ::testing::Range(0, static_cast<int>(std::size(
                                                 kShapes))));

// ---------------------------------------------------------------------------
// Tier B: c2c FFT scalar vs AVX2 (pow2 butterflies + Bluestein fallback)
// ---------------------------------------------------------------------------

class FftIsaEquivalence : public ::testing::TestWithParam<index_t> {};

TEST_P(FftIsaEquivalence, ForwardAndInverseWithinTierB) {
  SKIP_WITHOUT_AVX2();
  const index_t n = GetParam();
  Rng rng(7000 + static_cast<std::uint64_t>(n));
  std::vector<std::complex<float>> x(static_cast<std::size_t>(n));
  double sum_abs = 0.0;
  for (auto& v : x) {
    v = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
    sum_abs += std::abs(std::complex<double>(v));
  }
  // Accumulation depth: log2 of the (sub-)transform length, with extra
  // headroom for the three chirp products and two transforms of the
  // Bluestein path. Every output bin is a ±1-weighted sum of the inputs, so
  // Σ|x| bounds the running magnitude at every stage.
  const index_t m = fft::is_pow2(n) ? n : fft::next_pow2(2 * n - 1);
  const double depth = 3.0 * (std::log2(static_cast<double>(m)) + 4.0);
  const double eps = std::numeric_limits<float>::epsilon();
  const double bound = 4.0 * eps * depth * sum_abs;

  fft::PlanC2C<float> plan(n);
  for (const bool inverse : {false, true}) {
    std::vector<std::complex<float>> y_scalar = x;
    {
      util::ScopedIsa forced(util::Isa::kScalar);
      inverse ? plan.inverse(y_scalar.data()) : plan.forward(y_scalar.data());
    }
    std::vector<std::complex<float>> y_avx2 = x;
    {
      util::ScopedIsa forced(util::Isa::kAvx2);
      inverse ? plan.inverse(y_avx2.data()) : plan.forward(y_avx2.data());
    }
    const double dir_bound =
        inverse ? bound / static_cast<double>(n) : bound;
    for (index_t k = 0; k < n; ++k) {
      EXPECT_NEAR(std::abs(std::complex<double>(y_scalar[k]) -
                           std::complex<double>(y_avx2[k])),
                  0.0, dir_bound)
          << "n=" << n << " inverse=" << inverse << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftIsaEquivalence,
                         ::testing::Values(2, 4, 8, 16, 64, 128, 256,
                                           // Bluestein lengths
                                           6, 10, 12, 20));

// ---------------------------------------------------------------------------
// Tier B: rfft / irfft scalar vs AVX2
// ---------------------------------------------------------------------------

class RealFftIsaEquivalence : public ::testing::TestWithParam<index_t> {};

TEST_P(RealFftIsaEquivalence, RfftAndIrfftWithinTierB) {
  SKIP_WITHOUT_AVX2();
  const index_t n = GetParam();
  const index_t h = n / 2;
  Rng rng(9000 + static_cast<std::uint64_t>(n));
  std::vector<float> in(static_cast<std::size_t>(n));
  double sum_abs = 0.0;
  for (auto& v : in) {
    v = static_cast<float>(rng.normal());
    sum_abs += std::abs(static_cast<double>(v));
  }
  const index_t m = (h == 0 || fft::is_pow2(h)) ? std::max<index_t>(h, 1)
                                                : fft::next_pow2(2 * h - 1);
  const double depth =
      3.0 * (std::log2(static_cast<double>(std::max<index_t>(m, 2))) + 6.0);
  const double eps = std::numeric_limits<float>::epsilon();
  const double bound = 4.0 * eps * depth * sum_abs;

  const auto run_rfft = [&](util::Isa isa) {
    util::ScopedIsa forced(isa);
    std::vector<std::complex<float>> out(static_cast<std::size_t>(h + 1));
    fft::rfft(in.data(), out.data(), n);
    return out;
  };
  const auto spec_scalar = run_rfft(util::Isa::kScalar);
  const auto spec_avx2 = run_rfft(util::Isa::kAvx2);
  for (index_t k = 0; k <= h; ++k) {
    EXPECT_NEAR(std::abs(std::complex<double>(spec_scalar[k]) -
                         std::complex<double>(spec_avx2[k])),
                0.0, bound)
        << "rfft n=" << n << " k=" << k;
  }

  // irfft: feed the scalar spectrum to both ISAs; spectrum magnitude is
  // O(Σ|x|) per bin, and the inverse renormalises by 1/n.
  const auto run_irfft = [&](util::Isa isa) {
    util::ScopedIsa forced(isa);
    std::vector<float> out(static_cast<std::size_t>(n));
    fft::irfft(spec_scalar.data(), out.data(), n);
    return out;
  };
  const auto time_scalar = run_irfft(util::Isa::kScalar);
  const auto time_avx2 = run_irfft(util::Isa::kAvx2);
  for (index_t k = 0; k < n; ++k) {
    EXPECT_NEAR(static_cast<double>(time_scalar[k]),
                static_cast<double>(time_avx2[k]), bound)
        << "irfft n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, RealFftIsaEquivalence,
                         ::testing::Values(2, 4, 6, 8, 10, 16, 20, 40, 64,
                                           128));

// ---------------------------------------------------------------------------
// Tier A: masked rfft bitwise-identical to full on kept bins, per ISA
// ---------------------------------------------------------------------------

void check_masked_rfft_bitwise(util::Isa isa) {
  util::ScopedIsa forced(isa);
  for (const index_t n : {index_t{16}, index_t{64}, index_t{20}}) {
    const index_t h = n / 2;
    Rng rng(1300 + static_cast<std::uint64_t>(n));
    std::vector<float> in(static_cast<std::size_t>(n));
    for (auto& v : in) v = static_cast<float>(rng.normal());
    std::vector<std::complex<float>> full(static_cast<std::size_t>(h + 1));
    fft::rfft(in.data(), full.data(), n);
    // Keep a ragged subset: bins 0, odd bins, and the Nyquist bin.
    std::vector<std::uint8_t> keep(static_cast<std::size_t>(h + 1), 0);
    for (index_t k = 0; k <= h; ++k) {
      keep[static_cast<std::size_t>(k)] =
          (k == 0 || k == h || (k % 2) == 1) ? 1 : 0;
    }
    const std::complex<float> sentinel(1e30f, -1e30f);
    std::vector<std::complex<float>> masked(static_cast<std::size_t>(h + 1),
                                            sentinel);
    fft::rfft(in.data(), masked.data(), n, keep.data());
    for (index_t k = 0; k <= h; ++k) {
      if (keep[static_cast<std::size_t>(k)]) {
        EXPECT_EQ(0, std::memcmp(&full[static_cast<std::size_t>(k)],
                                 &masked[static_cast<std::size_t>(k)],
                                 sizeof(std::complex<float>)))
            << util::isa_name(isa) << " n=" << n << " kept bin " << k;
      } else {
        EXPECT_EQ(0, std::memcmp(&sentinel,
                                 &masked[static_cast<std::size_t>(k)],
                                 sizeof(std::complex<float>)))
            << util::isa_name(isa) << " n=" << n << " skipped bin " << k
            << " was written";
      }
    }
  }
}

TEST(IsaTierA, MaskedRfftBitwiseScalar) {
  check_masked_rfft_bitwise(util::Isa::kScalar);
}

TEST(IsaTierA, MaskedRfftBitwiseAvx2) {
  SKIP_WITHOUT_AVX2();
  check_masked_rfft_bitwise(util::Isa::kAvx2);
}

// ---------------------------------------------------------------------------
// Tier A: bitwise identity across pool widths 1/2/4, per forced ISA
// ---------------------------------------------------------------------------

void check_gemm_thread_invariance(util::Isa isa) {
  util::ScopedIsa forced(isa);
  // Large enough to trip the row-parallel path (m·n·k ≥ 2^15, m ≥ 2), with
  // a ragged n so vector groups, 8-wide panels and scalar tails all appear.
  const index_t m = 8, n = 70, k = 64;
  Rng rng(17);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  std::vector<std::vector<float>> results;
  for (const std::size_t width : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}}) {
    ThreadPool::Scope scope(width);
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
    gemm_nn(m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(), n);
    results.push_back(std::move(c));
  }
  for (std::size_t w = 1; w < results.size(); ++w) {
    EXPECT_EQ(0, std::memcmp(results[0].data(), results[w].data(),
                             results[0].size() * sizeof(float)))
        << util::isa_name(isa) << " gemm diverged at width index " << w;
  }
}

void check_rfftn_thread_invariance(util::Isa isa) {
  util::ScopedIsa forced(isa);
  Tensor<float> x({2, 3, 16, 16});
  Rng rng(23);
  for (index_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal());
  }
  std::vector<Tensor<std::complex<float>>> specs;
  for (const std::size_t width : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}}) {
    ThreadPool::Scope scope(width);
    specs.push_back(fft::rfftn(x, 2));
  }
  for (std::size_t w = 1; w < specs.size(); ++w) {
    ASSERT_EQ(specs[0].shape(), specs[w].shape());
    EXPECT_EQ(0, std::memcmp(specs[0].data(), specs[w].data(),
                             static_cast<std::size_t>(specs[0].size()) *
                                 sizeof(std::complex<float>)))
        << util::isa_name(isa) << " rfftn diverged at width index " << w;
  }
}

TEST(IsaTierA, GemmBitwiseAcrossThreadsScalar) {
  check_gemm_thread_invariance(util::Isa::kScalar);
}

TEST(IsaTierA, GemmBitwiseAcrossThreadsAvx2) {
  SKIP_WITHOUT_AVX2();
  check_gemm_thread_invariance(util::Isa::kAvx2);
}

TEST(IsaTierA, RfftnBitwiseAcrossThreadsScalar) {
  check_rfftn_thread_invariance(util::Isa::kScalar);
}

TEST(IsaTierA, RfftnBitwiseAcrossThreadsAvx2) {
  SKIP_WITHOUT_AVX2();
  check_rfftn_thread_invariance(util::Isa::kAvx2);
}

}  // namespace
}  // namespace turb
