#include <gtest/gtest.h>

#include "nn/deeponet.hpp"
#include "nn/gradcheck.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace turb::nn {
namespace {

DeepONetConfig tiny_config() {
  DeepONetConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.basis = 6;
  cfg.branch_hidden = 16;
  cfg.trunk_hidden = 8;
  cfg.trunk_layers = 3;
  return cfg;
}

TensorF random_input(const DeepONetConfig& cfg, index_t batch,
                     std::uint64_t seed) {
  Rng rng(seed);
  TensorF x({batch, cfg.in_channels, cfg.height, cfg.width});
  x.fill_normal(rng, 0.0, 1.0);
  return x;
}

TEST(DeepONet, OutputShape) {
  Rng rng(1);
  DeepONet model(tiny_config(), rng);
  const TensorF y = model.forward(random_input(tiny_config(), 3, 2));
  EXPECT_EQ(y.shape(), (Shape{3, 2, 8, 8}));
}

TEST(DeepONet, ParameterCountMatchesClosedForm) {
  Rng rng(3);
  const DeepONetConfig cfg = tiny_config();
  DeepONet model(cfg, rng);
  EXPECT_EQ(model.parameter_count(), deeponet_parameter_count(cfg));
}

TEST(DeepONet, GradcheckInput) {
  Rng rng(5);
  DeepONet model(tiny_config(), rng);
  const auto res =
      gradcheck_input(model, random_input(tiny_config(), 2, 6), 50, 1e-2f);
  EXPECT_TRUE(res.ok(3e-2)) << "max rel err " << res.max_rel_error;
}

TEST(DeepONet, GradcheckParameters) {
  Rng rng(7);
  DeepONet model(tiny_config(), rng);
  const auto res = gradcheck_parameters(
      model, random_input(tiny_config(), 2, 8), 25, 1e-2f);
  EXPECT_TRUE(res.ok(3e-2)) << "max rel err " << res.max_rel_error;
}

TEST(DeepONet, RejectsWrongGrid) {
  Rng rng(9);
  DeepONet model(tiny_config(), rng);
  TensorF bad({1, 3, 16, 16});
  EXPECT_THROW(model.forward(bad), CheckError);
}

TEST(DeepONet, OverfitsTinyProblem) {
  Rng rng(11);
  DeepONetConfig cfg = tiny_config();
  DeepONet model(cfg, rng);
  TensorF x = random_input(cfg, 4, 12);
  TensorF y({4, 2, 8, 8});
  // A low-rank target a DeepONet can represent: a per-sample functional of
  // the input (the channel mean) modulated by a fixed spatial profile.
  for (index_t n = 0; n < 4; ++n) {
    for (index_t c = 0; c < 2; ++c) {
      double mean = 0.0;
      for (index_t j = 0; j < 64; ++j) mean += x[(n * 3 + c) * 64 + j];
      mean /= 64.0;
      for (index_t iy = 0; iy < 8; ++iy) {
        for (index_t ix = 0; ix < 8; ++ix) {
          const auto profile =
              static_cast<float>(0.5 + static_cast<double>(ix) / 8.0);
          y[(n * 2 + c) * 64 + iy * 8 + ix] =
              static_cast<float>(mean) * profile;
        }
      }
    }
  }
  Adam::Config acfg;
  acfg.lr = 5e-3;
  acfg.weight_decay = 0.0;
  Adam opt(model.parameters(), acfg);
  double first = 0.0, last = 0.0;
  for (int it = 0; it < 400; ++it) {
    opt.zero_grad();
    const TensorF pred = model.forward(x);
    const LossResult loss = relative_l2_loss(pred, y);
    (void)model.backward(loss.grad);
    opt.step();
    if (it == 0) first = loss.value;
    last = loss.value;
  }
  EXPECT_LT(last, 0.5 * first);
  EXPECT_LT(last, 0.45);
}

TEST(DeepONet, DeterministicForward) {
  Rng rng(13);
  DeepONet model(tiny_config(), rng);
  const TensorF x = random_input(tiny_config(), 1, 14);
  const TensorF a = model.forward(x);
  const TensorF b = model.forward(x);
  for (index_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace turb::nn
