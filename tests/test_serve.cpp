// Serving layer: unified rollout requests, micro-batched concurrent
// sessions, admission control, and per-stream guard degradation.
//
// The load-bearing contract is bitwise reproducibility: N sessions
// multiplexed through serve::RolloutServer must produce exactly the bytes N
// sequential core::run_single calls produce, at thread-pool widths 1 and 4,
// and a session tripping its guard must not perturb its batchmates by a
// single bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "core/ensemble.hpp"
#include "core/fault_injection.hpp"
#include "core/fno_propagator.hpp"
#include "core/hybrid.hpp"
#include "core/pde_propagator.hpp"
#include "core/rollout_api.hpp"
#include "fno/fno.hpp"
#include "lbm/initializer.hpp"
#include "ns/solver.hpp"
#include "obs/obs.hpp"
#include "serve/ensemble_session.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace turb {
namespace {

constexpr index_t kGrid = 32;
constexpr double kDtSnap = 0.01;

std::unique_ptr<ns::NsSolver> make_solver() {
  ns::NsConfig cfg;
  cfg.n = kGrid;
  cfg.viscosity = 1e-3;
  cfg.dt = 1e-3;
  return std::make_unique<ns::SpectralNsSolver>(cfg);
}

core::FieldSnapshot make_seed_snapshot(double t, std::uint64_t seed) {
  Rng rng(seed);
  const auto field = lbm::random_vortex_velocity(kGrid, kGrid, 4.0, 1.0, rng);
  core::FieldSnapshot snap;
  snap.t = t;
  snap.u1 = field.u1;
  snap.u2 = field.u2;
  return snap;
}

core::History make_seed_history(index_t n, std::uint64_t seed) {
  core::History history;
  history.push_back(make_seed_snapshot(0.0, seed));
  if (n > 1) {
    core::PdePropagator pde(make_solver(), kDtSnap);
    auto more = pde.advance(history, n - 1);
    for (auto& s : more) history.push_back(std::move(s));
  }
  return history;
}

fno::FnoConfig tiny_fno_config() {
  fno::FnoConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 2;
  cfg.width = 6;
  cfg.n_layers = 2;
  cfg.n_modes = {8, 8};
  cfg.lifting_channels = 8;
  cfg.projection_channels = 8;
  return cfg;
}

void expect_bitwise_equal(const core::RolloutResult& a,
                          const core::RolloutResult& b) {
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (std::size_t k = 0; k < a.trajectory.size(); ++k) {
    ASSERT_EQ(a.trajectory[k].t, b.trajectory[k].t);
    ASSERT_EQ(a.producer[k], b.producer[k]);
    for (index_t i = 0; i < a.trajectory[k].u1.size(); ++i) {
      ASSERT_EQ(a.trajectory[k].u1[i], b.trajectory[k].u1[i])
          << "snapshot " << k << " u1[" << i << "]";
      ASSERT_EQ(a.trajectory[k].u2[i], b.trajectory[k].u2[i])
          << "snapshot " << k << " u2[" << i << "]";
    }
  }
}

bool all_finite(const core::RolloutResult& result) {
  for (const auto& snap : result.trajectory) {
    for (index_t i = 0; i < snap.u1.size(); ++i) {
      if (!std::isfinite(snap.u1[i]) || !std::isfinite(snap.u2[i])) {
        return false;
      }
    }
  }
  return true;
}

// --- unified request API -------------------------------------------------

TEST(RolloutApi, RunRolloutMatchesLegacyWindowedLoop) {
  Rng rng(7);
  fno::Fno model(tiny_fno_config(), rng);
  core::FnoPropagator fno_prop(model, analysis::Normalizer(0.0, 1.0),
                               kDtSnap);
  const core::History seed = make_seed_history(4, 11);
  const index_t steps = 20;  // spans two window-16 chunks

  // Replica of the historical run_single loop: advance in chunks of 16 with
  // max_history 64 — the unified API's defaults must reproduce it exactly.
  core::History history = seed;
  core::RolloutResult legacy;
  index_t produced = 0;
  while (produced < steps) {
    const index_t count = std::min<index_t>(16, steps - produced);
    auto snaps = fno_prop.advance(history, count);
    for (auto& snap : snaps) {
      history.push_back(snap);
      legacy.trajectory.push_back(std::move(snap));
      legacy.producer.push_back("fno");
      while (static_cast<index_t>(history.size()) > 64) history.pop_front();
    }
    produced += count;
  }

  core::RolloutRequest request;
  request.seed = seed;
  request.steps = steps;
  const core::RolloutResult unified = core::run_rollout(fno_prop, request);
  expect_bitwise_equal(legacy, unified);

  // This test pins the deprecated shim's bytes until it is removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const core::RolloutResult shim = core::run_single(fno_prop, seed, steps);
#pragma GCC diagnostic pop
  expect_bitwise_equal(legacy, shim);
}

TEST(RolloutApi, GuardedRequestNeedsFallback) {
  core::PdePropagator pde(make_solver(), kDtSnap);
  core::RolloutRequest request;
  request.seed = make_seed_history(1, 13);
  request.steps = 4;
  request.guard.enabled = true;
  EXPECT_THROW(core::run_rollout(pde, request), CheckError);
}

TEST(RolloutApi, CooldownZeroDegradesForGood) {
  Rng rng(17);
  fno::Fno model(tiny_fno_config(), rng);
  core::FnoPropagator fno_prop(model, analysis::Normalizer(0.0, 1.0),
                               kDtSnap);
  core::DivergentPropagator divergent(fno_prop, /*healthy_snapshots=*/2,
                                      core::DivergentPropagator::Mode::nan);
  core::PdePropagator pde(make_solver(), kDtSnap);

  core::RolloutRequest request;
  request.seed = make_seed_history(4, 19);
  request.steps = 10;
  request.window = 4;
  request.guard.enabled = true;
  request.guard.cooldown_snapshots = 0;  // degrade for the remainder

  const core::RolloutResult result =
      core::run_rollout(divergent, request, &pde);
  ASSERT_EQ(result.trajectory.size(), 10u);
  EXPECT_TRUE(all_finite(result));
  ASSERT_GE(result.guard_trips(), 1);
  // The first window tripped and was discarded; every produced snapshot
  // came from the fallback.
  for (const std::string& producer : result.producer) {
    EXPECT_EQ(producer, "pde_fallback");
  }
}

TEST(RolloutApi, CooldownWindowReturnsToPrimary) {
  core::PdePropagator healthy(make_solver(), kDtSnap);
  core::DivergentPropagator divergent(healthy, /*healthy_snapshots=*/1,
                                      core::DivergentPropagator::Mode::nan);
  core::PdePropagator fallback(make_solver(), kDtSnap);

  core::RolloutRequest request;
  request.seed = make_seed_history(1, 23);
  request.steps = 8;
  request.window = 2;
  request.guard.enabled = true;
  request.guard.cooldown_snapshots = 2;

  const core::RolloutResult result =
      core::run_rollout(divergent, request, &fallback);
  ASSERT_EQ(result.trajectory.size(), 8u);
  EXPECT_TRUE(all_finite(result));
  ASSERT_GE(result.guard_trips(), 1);
  // Fallback windows appear, and the primary got another turn after the
  // cool-down (trips again, so multiple guard events accumulate).
  EXPECT_GE(result.guard_trips(), 2);
  for (const std::string& producer : result.producer) {
    EXPECT_EQ(producer, "pde_fallback");
  }
}

TEST(RolloutGuardState, StatsAccumulateCopyAndReset) {
  core::GuardConfig cfg;
  cfg.enabled = true;
  cfg.energy_max = 1e3;
  core::RolloutGuard guard(cfg);

  core::FieldSnapshot snap = make_seed_snapshot(0.0, 29);
  const core::SnapshotMetrics metrics = core::compute_metrics(snap);
  EXPECT_EQ(guard.check(snap, metrics, nullptr), core::GuardTrip::none);
  EXPECT_EQ(guard.stats().checked, 1);
  EXPECT_EQ(guard.stats().trips, 0);
  EXPECT_GT(guard.stats().energy_max_seen, 0.0);

  snap.u1[0] = std::numeric_limits<double>::quiet_NaN();
  // Re-derive the diagnostics: the guard keys its non-finite verdict on the
  // metric sums the scheduler hands it, exactly as the rollout paths do.
  EXPECT_EQ(guard.check(snap, core::compute_metrics(snap), nullptr),
            core::GuardTrip::non_finite);
  EXPECT_EQ(guard.stats().checked, 2);
  EXPECT_EQ(guard.stats().trips, 1);
  EXPECT_EQ(guard.stats().last_trip, core::GuardTrip::non_finite);

  // Per-stream cloning is a plain value copy carrying the band statistics.
  core::RolloutGuard clone = guard;
  EXPECT_EQ(clone.stats().checked, 2);
  EXPECT_EQ(clone.stats().trips, 1);

  // A reused session starts from clean statistics.
  guard.reset();
  EXPECT_EQ(guard.stats().checked, 0);
  EXPECT_EQ(guard.stats().trips, 0);
  EXPECT_EQ(guard.stats().last_trip, core::GuardTrip::none);
  EXPECT_EQ(clone.stats().checked, 2);  // the clone is unaffected
}

// --- concurrent serving --------------------------------------------------

class ServeFixture : public ::testing::Test {
 protected:
  ServeFixture()
      : rng_(41),
        model_(tiny_fno_config(), rng_),
        fno_prop_(model_, analysis::Normalizer(0.0, 1.0), kDtSnap),
        pde_prop_(make_solver(), kDtSnap) {}

  core::RolloutRequest request_for(std::uint64_t seed, index_t steps) {
    core::RolloutRequest request;
    request.seed = make_seed_history(4, seed);
    request.steps = steps;
    request.tag = "seed-" + std::to_string(seed);
    return request;
  }

  Rng rng_;
  fno::Fno model_;
  core::FnoPropagator fno_prop_;
  core::PdePropagator pde_prop_;
};

TEST_F(ServeFixture, ConcurrentSessionsBitwiseMatchSequential) {
  const std::vector<std::uint64_t> seeds = {101, 103, 107, 109, 113};
  const index_t steps = 20;  // two scheduling windows per session

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool::Scope scope(threads);

    std::vector<core::RolloutResult> sequential;
    for (const std::uint64_t seed : seeds) {
      sequential.push_back(
          core::run_rollout(fno_prop_, request_for(seed, steps)));
    }

    serve::ServeConfig cfg;
    cfg.batch_window = 3;  // forces a 3-stream chunk and a 2-stream tail
    serve::RolloutServer server(fno_prop_, &pde_prop_, cfg);
    std::vector<serve::SessionId> ids;
    for (const std::uint64_t seed : seeds) {
      const serve::Admission admission =
          server.submit(request_for(seed, steps));
      ASSERT_TRUE(admission.admitted) << admission.reason;
      ids.push_back(admission.id);
    }
    server.drain();
    EXPECT_GT(server.mean_batch_occupancy(), 1.0);

    for (std::size_t i = 0; i < seeds.size(); ++i) {
      const core::RolloutResult concurrent = server.take(ids[i]);
      expect_bitwise_equal(sequential[i], concurrent);
    }
  }
}

TEST_F(ServeFixture, TrippedSoloSessionDegradesWithoutPerturbingBatchmates) {
  const std::vector<std::uint64_t> seeds = {211, 223};
  const index_t steps = 12;

  std::vector<core::RolloutResult> sequential;
  for (const std::uint64_t seed : seeds) {
    sequential.push_back(
        core::run_rollout(fno_prop_, request_for(seed, steps)));
  }

  serve::RolloutServer server(fno_prop_, &pde_prop_, serve::ServeConfig{});
  std::vector<serve::SessionId> ids;
  for (const std::uint64_t seed : seeds) {
    ids.push_back(server.submit(request_for(seed, steps)).id);
  }

  // A divergent surrogate session rides along with its own propagator and a
  // guard; it must finish finite on the PDE fallback while the healthy
  // sessions' bytes are untouched.
  core::DivergentPropagator divergent(fno_prop_, /*healthy_snapshots=*/2,
                                      core::DivergentPropagator::Mode::nan);
  core::RolloutRequest bad = request_for(227, steps);
  bad.window = 4;
  bad.guard.enabled = true;
  bad.guard.cooldown_snapshots = 0;
  const serve::Admission bad_admission =
      server.submit_with_propagator(std::move(bad), divergent, &pde_prop_);
  ASSERT_TRUE(bad_admission.admitted) << bad_admission.reason;

  server.drain();

  const core::RolloutResult tripped = server.take(bad_admission.id);
  ASSERT_EQ(tripped.trajectory.size(), static_cast<std::size_t>(steps));
  EXPECT_TRUE(all_finite(tripped));
  EXPECT_GE(tripped.guard_trips(), 1);
  for (const std::string& producer : tripped.producer) {
    EXPECT_EQ(producer, "pde_fallback");
  }

  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const core::RolloutResult concurrent = server.take(ids[i]);
    expect_bitwise_equal(sequential[i], concurrent);
  }
}

TEST_F(ServeFixture, AdmissionRejectsAtQueueCapAndRecovers) {
  serve::ServeConfig cfg;
  cfg.queue_capacity = 2;
  serve::RolloutServer server(fno_prop_, &pde_prop_, cfg);

  const std::int64_t rejects_before =
      obs::counter("serve/admission_rejects").value();
  ASSERT_TRUE(server.submit(request_for(301, 4)).admitted);
  ASSERT_TRUE(server.submit(request_for(303, 4)).admitted);
  const serve::Admission overflow = server.submit(request_for(307, 4));
  EXPECT_FALSE(overflow.admitted);
  EXPECT_NE(overflow.reason.find("saturated"), std::string::npos)
      << overflow.reason;
  EXPECT_EQ(obs::counter("serve/admission_rejects").value(),
            rejects_before + 1);
  EXPECT_EQ(server.queue_depth(), 2);

  server.drain();
  EXPECT_EQ(server.queue_depth(), 0);
  EXPECT_TRUE(server.submit(request_for(307, 4)).admitted);
  server.drain();
  EXPECT_EQ(server.finished().size(), 3u);

  const serve::RolloutServer::LatencyStats latency = server.latency_stats();
  EXPECT_EQ(latency.completed, 3);
  EXPECT_GT(latency.p50_ms, 0.0);
  EXPECT_GE(latency.p99_ms, latency.p50_ms);
}

TEST_F(ServeFixture, InvalidRequestsRejectWithReasonInsteadOfThrowing) {
  serve::RolloutServer server(fno_prop_, &pde_prop_, serve::ServeConfig{});

  core::RolloutRequest no_steps = request_for(401, 4);
  no_steps.steps = 0;
  EXPECT_FALSE(server.submit(std::move(no_steps)).admitted);

  core::RolloutRequest short_seed = request_for(403, 4);
  short_seed.seed.resize(2);  // below the FNO's 4-snapshot window
  const serve::Admission a = server.submit(std::move(short_seed));
  EXPECT_FALSE(a.admitted);
  EXPECT_NE(a.reason.find("seed"), std::string::npos) << a.reason;

  serve::RolloutServer no_fallback(fno_prop_, nullptr, serve::ServeConfig{});
  core::RolloutRequest guarded = request_for(405, 4);
  guarded.guard.enabled = true;
  EXPECT_FALSE(no_fallback.submit(std::move(guarded)).admitted);
}

TEST_F(ServeFixture, EnginePoolReusesBucketsAndStaysAllocationFree) {
  serve::ServeConfig cfg;
  cfg.batch_window = 4;
  serve::RolloutServer server(fno_prop_, &pde_prop_, cfg);

  const auto run_wave = [this, &server](std::uint64_t base) {
    std::vector<serve::SessionId> ids;
    for (std::uint64_t s = 0; s < 4; ++s) {
      const serve::Admission admission =
          server.submit(request_for(base + s, 8));
      ASSERT_TRUE(admission.admitted) << admission.reason;
      ids.push_back(admission.id);
    }
    server.drain();
    for (const serve::SessionId id : ids) (void)server.take(id);
  };

  run_wave(501);
  // One bucket: every round batches all 4 streams at (8, C_in, H, W).
  EXPECT_EQ(server.engine_pool().size(), 1u);
  const std::int64_t misses_after_first =
      obs::counter("serve/engine_pool_misses").value();
  const std::int64_t steady_before =
      obs::counter("infer/steady_state_allocs").value();

  run_wave(601);  // warm wave: same shapes, same bucket
  EXPECT_EQ(server.engine_pool().size(), 1u);
  EXPECT_EQ(obs::counter("serve/engine_pool_misses").value(),
            misses_after_first);
  EXPECT_GT(obs::counter("serve/engine_pool_hits").value(), 0);
  // The pooled engine never re-plans once its bucket is warm.
  EXPECT_EQ(obs::counter("infer/steady_state_allocs").value(), steady_before);
  EXPECT_GT(server.engine_pool().total_arena_bytes(), 0u);
}

// --- edge cases -----------------------------------------------------------

TEST_F(ServeFixture, ZeroStepRequestRejectedWithoutConsumingQueueSlot) {
  serve::ServeConfig cfg;
  cfg.queue_capacity = 1;
  serve::RolloutServer server(fno_prop_, &pde_prop_, cfg);

  core::RolloutRequest zero = request_for(411, 4);
  zero.steps = 0;
  const serve::Admission a = server.submit(std::move(zero));
  EXPECT_FALSE(a.admitted);
  EXPECT_NE(a.reason.find("steps"), std::string::npos) << a.reason;
  // The rejected request must not occupy the (capacity-1) queue.
  ASSERT_TRUE(server.submit(request_for(413, 4)).admitted);
  server.drain();
}

TEST_F(ServeFixture, SeedExactlyMinHistoryAdmittedOneBelowRejected) {
  serve::RolloutServer server(fno_prop_, &pde_prop_, serve::ServeConfig{});
  const index_t min_history = fno_prop_.min_history();

  core::RolloutRequest exact = request_for(421, 6);
  ASSERT_EQ(static_cast<index_t>(exact.seed.size()), min_history);
  core::RolloutRequest below = request_for(421, 6);
  below.seed.resize(static_cast<std::size_t>(min_history - 1));

  EXPECT_FALSE(server.submit(std::move(below)).admitted);
  const serve::Admission a = server.submit(request_for(421, 6));
  ASSERT_TRUE(a.admitted) << a.reason;
  server.drain();
  // The boundary-length session must still match a sequential rollout.
  expect_bitwise_equal(core::run_rollout(fno_prop_, request_for(421, 6)),
                       server.take(a.id));
}

TEST_F(ServeFixture, EnginePoolAlternatingBucketsCountedOnce) {
  // Two resolutions alternate: each bucket is planned exactly once (two
  // misses total), every later wave hits its existing bucket.
  serve::ServeConfig cfg;
  cfg.batch_window = 4;
  serve::RolloutServer server(fno_prop_, &pde_prop_, cfg);

  const auto raw_history = [](index_t grid, std::uint64_t seed) {
    core::History history;
    for (index_t i = 0; i < 4; ++i) {
      Rng rng(seed * 100 + static_cast<std::uint64_t>(i));
      const auto field =
          lbm::random_vortex_velocity(grid, grid, 4.0, 1.0, rng);
      core::FieldSnapshot snap;
      snap.t = kDtSnap * static_cast<double>(i);
      snap.u1 = field.u1;
      snap.u2 = field.u2;
      history.push_back(std::move(snap));
    }
    return history;
  };
  const auto run_wave = [&](index_t grid, std::uint64_t base) {
    std::vector<serve::SessionId> ids;
    for (std::uint64_t s = 0; s < 4; ++s) {
      core::RolloutRequest request;
      request.seed = raw_history(grid, base + s);
      request.steps = 6;
      const serve::Admission admission = server.submit(std::move(request));
      ASSERT_TRUE(admission.admitted) << admission.reason;
      ids.push_back(admission.id);
    }
    server.drain();
    for (const serve::SessionId id : ids) (void)server.take(id);
  };

  const std::int64_t misses_before =
      obs::counter("serve/engine_pool_misses").value();
  const std::int64_t hits_before =
      obs::counter("serve/engine_pool_hits").value();
  run_wave(32, 701);  // miss: grid-32 bucket planned
  run_wave(16, 801);  // miss: grid-16 bucket planned
  EXPECT_EQ(server.engine_pool().size(), 2u);
  EXPECT_EQ(obs::counter("serve/engine_pool_misses").value(),
            misses_before + 2);
  run_wave(32, 901);  // hit
  run_wave(16, 1001);  // hit
  run_wave(32, 1101);  // hit
  EXPECT_EQ(server.engine_pool().size(), 2u);
  EXPECT_EQ(obs::counter("serve/engine_pool_misses").value(),
            misses_before + 2);
  EXPECT_GE(obs::counter("serve/engine_pool_hits").value() - hits_before, 3);
}

// --- reduced-precision serving --------------------------------------------

TEST_F(ServeFixture, Bf16ServingWithinBoundAndDeterministic) {
  const std::vector<std::uint64_t> seeds = {131, 137, 139};
  const index_t steps = 12;

  std::vector<core::RolloutResult> fp32;
  for (const std::uint64_t seed : seeds) {
    fp32.push_back(core::run_rollout(fno_prop_, request_for(seed, steps)));
  }

  const auto serve_bf16 = [&] {
    serve::ServeConfig cfg;
    cfg.precision = util::Precision::kBf16;
    serve::RolloutServer server(fno_prop_, &pde_prop_, cfg);
    std::vector<serve::SessionId> ids;
    for (const std::uint64_t seed : seeds) {
      const serve::Admission a = server.submit(request_for(seed, steps));
      EXPECT_TRUE(a.admitted) << a.reason;
      ids.push_back(a.id);
    }
    server.drain();
    std::vector<core::RolloutResult> out;
    for (const serve::SessionId id : ids) out.push_back(server.take(id));
    return out;
  };

  const std::vector<core::RolloutResult> bf16 = serve_bf16();
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    ASSERT_EQ(bf16[s].trajectory.size(), fp32[s].trajectory.size());
    EXPECT_TRUE(all_finite(bf16[s]));
    bool any_diff = false;
    for (std::size_t k = 0; k < fp32[s].trajectory.size(); ++k) {
      const auto& cb = bf16[s].trajectory[k];
      const auto& cf = fp32[s].trajectory[k];
      double num = 0.0, den = 0.0;
      for (index_t i = 0; i < cf.u1.size(); ++i) {
        const double d1 = cb.u1[i] - cf.u1[i];
        const double d2 = cb.u2[i] - cf.u2[i];
        num += d1 * d1 + d2 * d2;
        den += cf.u1[i] * cf.u1[i] + cf.u2[i] * cf.u2[i];
        any_diff = any_diff || d1 != 0.0 || d2 != 0.0;
      }
      const double rel = std::sqrt(num / std::max(den, 1e-300));
      // The documented per-snapshot bound for compressed serving
      // (DESIGN.md "Precision tiers").
      EXPECT_LE(rel, 0.1) << "seed " << seeds[s] << " snapshot " << k;
    }
    EXPECT_TRUE(any_diff) << "bf16 output should differ from fp32";
  }

  // Error-bounded does not mean nondeterministic: a second bf16 serve of
  // the same requests reproduces the same bytes (fixed ISA, same packs).
  const std::vector<core::RolloutResult> again = serve_bf16();
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    expect_bitwise_equal(bf16[s], again[s]);
  }
}

// --- percentile edge cases ------------------------------------------------

TEST(NearestRankPercentile, EmptySingleBoundariesAndClamping) {
  const std::vector<double> empty;
  EXPECT_EQ(serve::nearest_rank_percentile(empty, 0.5), 0.0);
  EXPECT_EQ(serve::nearest_rank_percentile(empty, 0.0), 0.0);
  EXPECT_EQ(serve::nearest_rank_percentile(empty, 1.0), 0.0);

  const std::vector<double> one = {42.0};
  EXPECT_EQ(serve::nearest_rank_percentile(one, 0.0), 42.0);
  EXPECT_EQ(serve::nearest_rank_percentile(one, 0.5), 42.0);
  EXPECT_EQ(serve::nearest_rank_percentile(one, 1.0), 42.0);

  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(serve::nearest_rank_percentile(sorted, 0.0), 1.0);
  EXPECT_EQ(serve::nearest_rank_percentile(sorted, 0.25), 1.0);
  EXPECT_EQ(serve::nearest_rank_percentile(sorted, 0.5), 2.0);
  EXPECT_EQ(serve::nearest_rank_percentile(sorted, 0.75), 3.0);
  EXPECT_EQ(serve::nearest_rank_percentile(sorted, 0.99), 4.0);
  EXPECT_EQ(serve::nearest_rank_percentile(sorted, 1.0), 4.0);
  // Out-of-range probabilities clamp instead of underflowing the rank.
  EXPECT_EQ(serve::nearest_rank_percentile(sorted, -0.5), 1.0);
  EXPECT_EQ(serve::nearest_rank_percentile(sorted, 1.5), 4.0);
}

// --- ensemble UQ serving --------------------------------------------------

void expect_spread_bitwise_equal(const core::RolloutResult& a,
                                 const core::RolloutResult& b) {
  ASSERT_EQ(a.spread.size(), b.spread.size());
  for (std::size_t k = 0; k < a.spread.size(); ++k) {
    EXPECT_EQ(a.spread[k].variance, b.spread[k].variance) << "snapshot " << k;
    EXPECT_EQ(a.spread[k].rel_spread, b.spread[k].rel_spread);
    EXPECT_EQ(a.spread[k].energy_mean, b.spread[k].energy_mean);
    EXPECT_EQ(a.spread[k].energy_spread, b.spread[k].energy_spread);
    EXPECT_EQ(a.spread[k].enstrophy_mean, b.spread[k].enstrophy_mean);
    EXPECT_EQ(a.spread[k].enstrophy_spread, b.spread[k].enstrophy_spread);
  }
}

class EnsembleServeFixture : public ServeFixture {
 protected:
  core::RolloutRequest ensemble_request(std::uint64_t seed, index_t steps,
                                        index_t k, double eps) {
    core::RolloutRequest request = request_for(seed, steps);
    request.ensemble_k = k;
    request.ensemble_eps = eps;
    request.ensemble_seed = 0xabcd + seed;
    return request;
  }

  core::RolloutResult serve_one(core::RolloutRequest request) {
    serve::RolloutServer server(fno_prop_, &pde_prop_, serve::ServeConfig{});
    const serve::Admission a = server.submit(std::move(request));
    EXPECT_TRUE(a.admitted) << a.reason;
    server.drain();
    return server.take(a.id);
  }
};

TEST_F(EnsembleServeFixture, KOneIsAPlainSessionBitwise) {
  const index_t steps = 12;
  const core::RolloutResult solo =
      core::run_rollout(fno_prop_, request_for(601, steps));
  const core::RolloutResult served =
      serve_one(ensemble_request(601, steps, /*k=*/1, /*eps=*/1e-3));
  expect_bitwise_equal(solo, served);
  EXPECT_EQ(served.ensemble_members, 1);
  EXPECT_TRUE(served.spread.empty());
  EXPECT_TRUE(served.member_results.empty());
}

TEST_F(EnsembleServeFixture, MembersBitwiseMatchSoloRolloutsAtThreads1And4) {
  const index_t steps = 20;  // two scheduling windows per member
  const index_t k = 3;

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool::Scope scope(threads);

    core::RolloutRequest base = ensemble_request(607, steps, k, 1e-3);
    base.ensemble_keep_members = true;

    // Each ensemble member must be bitwise identical to a solo rollout of
    // that member's derived request — the determinism contract that makes
    // the ensemble exactly K co-batched sessions, not an approximation.
    std::vector<core::RolloutResult> solos;
    for (index_t m = 0; m < k; ++m) {
      solos.push_back(core::run_rollout(
          fno_prop_, core::ensemble_member_request(base, m)));
    }

    const core::RolloutResult served = serve_one(std::move(base));
    EXPECT_EQ(served.ensemble_members, k);
    ASSERT_EQ(served.member_results.size(), static_cast<std::size_t>(k));
    for (index_t m = 0; m < k; ++m) {
      expect_bitwise_equal(solos[static_cast<std::size_t>(m)],
                           served.member_results[static_cast<std::size_t>(m)]);
    }
    ASSERT_EQ(served.spread.size(), static_cast<std::size_t>(steps));
    for (const auto& row : served.spread) {
      EXPECT_TRUE(std::isfinite(row.variance));
      EXPECT_GT(row.variance, 0.0);  // perturbed members genuinely differ
      EXPECT_GT(row.energy_spread, 0.0);
    }
  }
}

TEST_F(EnsembleServeFixture, IdenticalMembersReduceToExactlyZeroVariance) {
  const index_t steps = 12;
  const core::RolloutResult solo =
      core::run_rollout(fno_prop_, request_for(613, steps));

  // eps = 0: all four members run the identical seed, so the anchored
  // reduction must return a mean bitwise equal to member 0 and variance
  // exactly 0.0 — not merely small — at every snapshot.
  const core::RolloutResult served =
      serve_one(ensemble_request(613, steps, /*k=*/4, /*eps=*/0.0));
  EXPECT_EQ(served.ensemble_members, 4);
  expect_bitwise_equal(solo, served);
  ASSERT_EQ(served.spread.size(), static_cast<std::size_t>(steps));
  for (const auto& row : served.spread) {
    EXPECT_EQ(row.variance, 0.0);
    EXPECT_EQ(row.rel_spread, 0.0);
    EXPECT_EQ(row.energy_spread, 0.0);
    EXPECT_EQ(row.enstrophy_spread, 0.0);
  }
}

TEST_F(EnsembleServeFixture, SpreadCalibratedResultsReproduceAcrossServers) {
  const index_t steps = 20;
  const auto make_request = [this] {
    core::RolloutRequest request = ensemble_request(617, 20, /*k=*/4, 1e-3);
    request.guard.enabled = true;
    request.guard.spread_calibrated = true;
    request.guard.spread_band_factor = 1e6;  // wide: judged but never tripped
    return request;
  };

  const core::RolloutResult first = serve_one(make_request());
  const core::RolloutResult second = serve_one(make_request());
  ASSERT_EQ(first.trajectory.size(), static_cast<std::size_t>(steps));
  EXPECT_EQ(first.guard_trips(), 0);
  expect_bitwise_equal(first, second);
  expect_spread_bitwise_equal(first, second);
}

TEST_F(EnsembleServeFixture, ZeroWidthCalibratedBandDegradesWholeGroup) {
  const index_t steps = 12;
  core::RolloutRequest request = ensemble_request(619, steps, /*k=*/2, 1e-3);
  request.guard.enabled = true;
  request.guard.spread_calibrated = true;
  request.guard.spread_band_factor = 0.0;  // band = mean ± 0: trips round 1
  request.guard.spread_floor_rel = 0.0;
  request.guard.cooldown_snapshots = 0;  // degrade for the remainder

  const std::int64_t trips_before =
      obs::counter("serve/ensemble_guard_trips").value();
  const core::RolloutResult served = serve_one(std::move(request));
  EXPECT_EQ(obs::counter("serve/ensemble_guard_trips").value(),
            trips_before + 1);
  ASSERT_EQ(served.trajectory.size(), static_cast<std::size_t>(steps));
  EXPECT_TRUE(all_finite(served));
  EXPECT_GE(served.guard_trips(), 1);
  // The whole group fell back together: the reduced trajectory is a mean of
  // PDE member rollouts, never a mix of FNO and PDE members.
  for (const std::string& producer : served.producer) {
    EXPECT_EQ(producer, "pde_fallback");
  }
}

TEST(SpreadCalibrator, JudgesAgainstPreRoundEnvelopeCommitsOnAcceptOnly) {
  core::GuardConfig config;
  config.spread_calibrated = true;  // defaults: factor 8, floor 1e-4
  core::SpreadCalibrator cal(config);

  // Snapshot 0 seeds the envelope with the members' baseline variability
  // (K = 2: anchored spread is half the member gap).
  const double e_base[] = {1.0, 1.01};
  const double z_base[] = {2.0, 2.02};
  (void)cal.calibrate(e_base, z_base, 2);
  cal.commit_round();
  EXPECT_NEAR(cal.energy_spread_envelope(), 0.005, 1e-12);

  // A member leaving consensus by 100× the calibrated spread must fall
  // outside the bands of the very round it diverges in: check-then-update
  // keeps its own spread staged, so the half-width is still 8 × 0.005. (If
  // the current spread calibrated its own band, the max member deviation —
  // bounded by spread·√(K−1) — could never exceed 8·spread and the
  // consensus guard could never trip.)
  const double e_div[] = {1.0, 2.0};  // spread 0.5
  const core::SpreadCalibrator::Bands bands =
      cal.calibrate(e_div, z_base, 2);
  EXPECT_NEAR(bands.energy_halfwidth, 8.0 * 0.005, 1e-12);
  EXPECT_GT(e_div[1], bands.energy_max);  // diverging member outside…
  EXPECT_LT(e_div[0], bands.energy_min);  // …and it dragged the mean off 0

  // Discarding the tripped round leaves the envelope untouched, so an
  // equal-magnitude divergence after cooldown still trips — a rejected
  // round must not calibrate the bands that judge the rounds after it.
  cal.discard_round();
  EXPECT_NEAR(cal.energy_spread_envelope(), 0.005, 1e-12);
  const core::SpreadCalibrator::Bands again =
      cal.calibrate(e_div, z_base, 2);
  EXPECT_EQ(again.energy_max, bands.energy_max);
  EXPECT_GT(e_div[1], again.energy_max);
  cal.discard_round();

  // Accepted rounds do widen the monotone envelope.
  const double e_wider[] = {1.0, 1.02};
  (void)cal.calibrate(e_wider, z_base, 2);
  cal.commit_round();
  EXPECT_NEAR(cal.energy_spread_envelope(), 0.01, 1e-12);
}

// Holds the flow steady: each produced snapshot repeats the latest history
// entry (advancing t) — a neutral stand-in for primary and fallback so the
// test controls member divergence purely through what it stages.
class HoldPropagator final : public core::Propagator {
 public:
  explicit HoldPropagator(std::string name) : name_(std::move(name)) {}

  std::vector<core::FieldSnapshot> advance(const core::History& history,
                                           index_t count) override {
    std::vector<core::FieldSnapshot> out;
    core::FieldSnapshot last = history.back();
    for (index_t i = 0; i < count; ++i) {
      last.t += kDtSnap;
      out.push_back(last);
    }
    return out;
  }
  [[nodiscard]] double dt_snap() const override { return kDtSnap; }
  [[nodiscard]] index_t min_history() const override { return 1; }
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::string name_;
};

TEST_F(EnsembleServeFixture, DivergingMemberTripsAtDefaultBandFactor) {
  // A member that genuinely leaves the ensemble consensus must trip the
  // spread-calibrated guard at the DEFAULT spread_band_factor (8), not only
  // at a hand-shrunk band — and must trip AGAIN at the same magnitude after
  // the cooldown, because the discarded round's spread never calibrates the
  // envelope. Both members run a hold-steady propagator; divergence is
  // injected by scaling member 1's staged window in rounds 2 and 3.
  const index_t steps = 16;
  core::RolloutRequest request = ensemble_request(653, steps, /*k=*/2, 1e-2);
  request.window = 4;
  request.guard.enabled = true;
  request.guard.spread_calibrated = true;  // defaults: factor 8, floor 1e-4
  request.guard.cooldown_snapshots = 4;

  HoldPropagator surrogate("surrogate");
  HoldPropagator stable("stable");
  serve::EnsembleSession session(std::move(request), &surrogate, &stable);

  const std::int64_t trips_before =
      obs::counter("serve/ensemble_guard_trips").value();
  index_t round = 0;
  while (!session.done()) {
    if (session.degraded()) {
      for (index_t m = 0; m < session.members(); ++m) {
        session.member(m).advance_fallback_window();
      }
      continue;
    }
    for (index_t m = 0; m < session.members(); ++m) {
      std::vector<core::FieldSnapshot> window = surrogate.advance(
          session.member(m).history(), session.member(m).next_window());
      if (m == 1 && (round == 1 || round == 2)) {
        // Member 1 leaves the consensus: doubled velocities quadruple its
        // energy while member 0 holds, dwarfing the seed-perturbation
        // spread the envelope was calibrated on.
        for (core::FieldSnapshot& snap : window) {
          for (index_t j = 0; j < snap.u1.size(); ++j) snap.u1[j] *= 2.0;
          for (index_t j = 0; j < snap.u2.size(); ++j) snap.u2[j] *= 2.0;
        }
      }
      session.stage_window(m, std::move(window));
    }
    session.commit_round();
    ++round;
  }

  // Rounds: 0 consistent (accepted, calibrates), 1 divergent (trip +
  // 4-snapshot cooldown), 2 divergent again (the regression: with the
  // tripped round folded into the envelope, an equal-magnitude divergence
  // could never re-trip), 3 consistent (accepted).
  const core::RolloutResult served = session.take_result();
  EXPECT_EQ(served.guard_trips(), 2);
  EXPECT_EQ(obs::counter("serve/ensemble_guard_trips").value(),
            trips_before + 2);
  ASSERT_EQ(served.trajectory.size(), static_cast<std::size_t>(steps));
  EXPECT_TRUE(all_finite(served));
  for (std::size_t s = 0; s < served.producer.size(); ++s) {
    EXPECT_EQ(served.producer[s],
              s < 4 || s >= 12 ? "surrogate" : "stable_fallback")
        << "snapshot " << s;
  }
}

TEST_F(EnsembleServeFixture, CountersSnapshotsAndBatchingAccountMembers) {
  const index_t k = 4;
  const std::int64_t sessions_before =
      obs::counter("serve/ensemble_sessions").value();
  const std::int64_t members_before =
      obs::counter("serve/ensemble_members").value();

  serve::RolloutServer server(fno_prop_, &pde_prop_, serve::ServeConfig{});
  const serve::Admission a =
      server.submit(ensemble_request(631, 12, k, 1e-3));
  ASSERT_TRUE(a.admitted) << a.reason;
  EXPECT_EQ(obs::counter("serve/ensemble_sessions").value(),
            sessions_before + 1);
  EXPECT_EQ(obs::counter("serve/ensemble_members").value(),
            members_before + k);

  const serve::SessionSnapshot queued = server.snapshot(a.id);
  EXPECT_EQ(queued.ensemble_members, k);
  server.drain();
  EXPECT_EQ(server.snapshot(a.id).produced, 12);
  // The K member streams co-batch through the shared engine.
  EXPECT_GT(server.mean_batch_occupancy(), 1.0);
  (void)server.take(a.id);
}

TEST_F(EnsembleServeFixture, InvalidEnsembleRequestsRejectWithReason) {
  serve::RolloutServer server(fno_prop_, &pde_prop_, serve::ServeConfig{});

  core::RolloutRequest zero_k = ensemble_request(641, 8, 1, 1e-3);
  zero_k.ensemble_k = 0;
  const serve::Admission bad_k = server.submit(std::move(zero_k));
  EXPECT_FALSE(bad_k.admitted);
  EXPECT_NE(bad_k.reason.find("ensemble_k"), std::string::npos)
      << bad_k.reason;

  core::RolloutRequest negative_eps = ensemble_request(643, 8, 2, 1e-3);
  negative_eps.ensemble_eps = -1.0;
  EXPECT_FALSE(server.submit(std::move(negative_eps)).admitted);

  // Ensembles ride the shared-primary micro-batch path; a solo-propagator
  // ensemble has no group scheduler and must be rejected, not mis-served.
  const serve::Admission solo = server.submit_with_propagator(
      ensemble_request(647, 8, 2, 1e-3), fno_prop_, &pde_prop_);
  EXPECT_FALSE(solo.admitted);
  EXPECT_NE(solo.reason.find("shared server primary"), std::string::npos)
      << solo.reason;
}

}  // namespace
}  // namespace turb
