#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <numbers>
#include <vector>

#include "fft/fftnd.hpp"
#include "fft/plan.hpp"
#include "fft/real.hpp"
#include "fft/workspace.hpp"
#include "tensor/tensor.hpp"
#include "util/isa.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace turb::fft {
namespace {

using cpxd = std::complex<double>;

/// O(n²) reference DFT.
std::vector<cpxd> naive_dft(const std::vector<cpxd>& x, bool inverse = false) {
  const auto n = static_cast<index_t>(x.size());
  std::vector<cpxd> out(x.size());
  const double sign = inverse ? 2.0 : -2.0;
  for (index_t k = 0; k < n; ++k) {
    cpxd acc{};
    for (index_t j = 0; j < n; ++j) {
      const double ang = sign * std::numbers::pi * static_cast<double>(j * k) /
                         static_cast<double>(n);
      acc += x[static_cast<std::size_t>(j)] * cpxd(std::cos(ang), std::sin(ang));
    }
    out[static_cast<std::size_t>(k)] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

class FftLengths : public ::testing::TestWithParam<index_t> {};

TEST_P(FftLengths, ForwardMatchesNaiveDft) {
  const index_t n = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(n));
  std::vector<cpxd> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  const auto ref = naive_dft(x);

  std::vector<cpxd> y = x;
  PlanC2C<double> plan(n);
  plan.forward(y.data());
  for (index_t k = 0; k < n; ++k) {
    ASSERT_NEAR(std::abs(y[static_cast<std::size_t>(k)] -
                         ref[static_cast<std::size_t>(k)]),
                0.0, 1e-9 * static_cast<double>(n))
        << "n=" << n << " k=" << k;
  }
}

TEST_P(FftLengths, RoundTripIsIdentity) {
  const index_t n = GetParam();
  Rng rng(200 + static_cast<std::uint64_t>(n));
  std::vector<cpxd> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  std::vector<cpxd> y = x;
  PlanC2C<double> plan(n);
  plan.forward(y.data());
  plan.inverse(y.data());
  for (std::size_t k = 0; k < x.size(); ++k) {
    ASSERT_NEAR(std::abs(y[k] - x[k]), 0.0, 1e-10 * static_cast<double>(n));
  }
}

TEST_P(FftLengths, ParsevalHolds) {
  const index_t n = GetParam();
  Rng rng(300 + static_cast<std::uint64_t>(n));
  std::vector<cpxd> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  PlanC2C<double> plan(n);
  plan.forward(x.data());
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-8 * time_energy);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwoAndNot, FftLengths,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 10, 12, 16, 30,
                                           64, 100, 128, 256));

TEST(Fft, DeltaGivesFlatSpectrum) {
  const index_t n = 16;
  std::vector<cpxd> x(16, cpxd{});
  x[0] = 1.0;
  PlanC2C<double> plan(n);
  plan.forward(x.data());
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, PureToneLandsInSingleBin) {
  const index_t n = 64;
  std::vector<cpxd> x(static_cast<std::size_t>(n));
  const index_t mode = 5;
  for (index_t j = 0; j < n; ++j) {
    const double ang = 2.0 * std::numbers::pi * static_cast<double>(mode * j) /
                       static_cast<double>(n);
    x[static_cast<std::size_t>(j)] = {std::cos(ang), std::sin(ang)};
  }
  PlanC2C<double> plan(n);
  plan.forward(x.data());
  for (index_t k = 0; k < n; ++k) {
    const double expected = (k == mode) ? static_cast<double>(n) : 0.0;
    ASSERT_NEAR(std::abs(x[static_cast<std::size_t>(k)]), expected, 1e-9);
  }
}

TEST(Fft, LinearityProperty) {
  const index_t n = 40;  // Bluestein path
  Rng rng(41);
  std::vector<cpxd> a(static_cast<std::size_t>(n)), b(a), sum(a);
  for (index_t i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)] = {rng.normal(), rng.normal()};
    b[static_cast<std::size_t>(i)] = {rng.normal(), rng.normal()};
    sum[static_cast<std::size_t>(i)] = 2.0 * a[static_cast<std::size_t>(i)] -
                                       3.0 * b[static_cast<std::size_t>(i)];
  }
  PlanC2C<double> plan(n);
  plan.forward(a.data());
  plan.forward(b.data());
  plan.forward(sum.data());
  for (std::size_t k = 0; k < sum.size(); ++k) {
    ASSERT_NEAR(std::abs(sum[k] - (2.0 * a[k] - 3.0 * b[k])), 0.0, 1e-9);
  }
}

TEST(Fft, FloatPrecisionAcceptable) {
  const index_t n = 128;
  Rng rng(55);
  std::vector<std::complex<float>> x(static_cast<std::size_t>(n));
  std::vector<cpxd> xd(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    const double re = rng.normal(), im = rng.normal();
    x[static_cast<std::size_t>(i)] = {static_cast<float>(re),
                                      static_cast<float>(im)};
    xd[static_cast<std::size_t>(i)] = {re, im};
  }
  PlanC2C<float> plan(n);
  plan.forward(x.data());
  const auto ref = naive_dft(xd);
  for (std::size_t k = 0; k < x.size(); ++k) {
    ASSERT_NEAR(std::abs(cpxd(x[k]) - ref[k]), 0.0, 1e-3);
  }
}

// --- real transforms -------------------------------------------------------

class RfftLengths : public ::testing::TestWithParam<index_t> {};

TEST_P(RfftLengths, MatchesNaiveRealDft) {
  const index_t n = GetParam();
  Rng rng(400 + static_cast<std::uint64_t>(n));
  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<cpxd> xc(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = rng.normal();
    xc[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)];
  }
  const auto ref = naive_dft(xc);
  std::vector<cpxd> out(static_cast<std::size_t>(n / 2 + 1));
  rfft(x.data(), out.data(), n);
  for (index_t k = 0; k <= n / 2; ++k) {
    ASSERT_NEAR(std::abs(out[static_cast<std::size_t>(k)] -
                         ref[static_cast<std::size_t>(k)]),
                0.0, 1e-9 * static_cast<double>(n))
        << "k=" << k;
  }
}

TEST_P(RfftLengths, RoundTripIsIdentity) {
  const index_t n = GetParam();
  Rng rng(500 + static_cast<std::uint64_t>(n));
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.normal();
  std::vector<cpxd> spec(static_cast<std::size_t>(n / 2 + 1));
  rfft(x.data(), spec.data(), n);
  std::vector<double> back(static_cast<std::size_t>(n));
  irfft(spec.data(), back.data(), n);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(back[i], x[i], 1e-10 * static_cast<double>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(EvenLengths, RfftLengths,
                         ::testing::Values(2, 4, 6, 8, 10, 16, 20, 64, 256));

TEST(Rfft, OddLengthRejected) {
  std::vector<double> x(5, 0.0);
  std::vector<cpxd> out(3);
  EXPECT_THROW(rfft(x.data(), out.data(), 5), CheckError);
}

TEST(Rfft, DcBinIsMean) {
  const index_t n = 32;
  std::vector<double> x(static_cast<std::size_t>(n), 3.25);
  std::vector<cpxd> out(static_cast<std::size_t>(n / 2 + 1));
  rfft(x.data(), out.data(), n);
  EXPECT_NEAR(out[0].real(), 3.25 * static_cast<double>(n), 1e-10);
  for (std::size_t k = 1; k < out.size(); ++k) {
    ASSERT_NEAR(std::abs(out[k]), 0.0, 1e-10);
  }
}

TEST(Rfft, CosineHitsSymmetricBins) {
  const index_t n = 64;
  const index_t mode = 7;
  std::vector<double> x(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    x[static_cast<std::size_t>(j)] =
        std::cos(2.0 * std::numbers::pi * static_cast<double>(mode * j) /
                 static_cast<double>(n));
  }
  std::vector<cpxd> out(static_cast<std::size_t>(n / 2 + 1));
  rfft(x.data(), out.data(), n);
  for (index_t k = 0; k <= n / 2; ++k) {
    const double expected = (k == mode) ? static_cast<double>(n) / 2.0 : 0.0;
    ASSERT_NEAR(std::abs(out[static_cast<std::size_t>(k)]), expected, 1e-9);
  }
}

// --- N-D transforms ---------------------------------------------------------

TEST(Fftnd, Rfft2RoundTrip) {
  Rng rng(61);
  TensorD x({3, 2, 16, 12});  // (batch, channel, H, W)
  x.fill_normal(rng, 0.0, 1.0);
  const auto spec = rfftn(x, 2);
  EXPECT_EQ(spec.shape(), (Shape{3, 2, 16, 7}));
  const TensorD back = irfftn(spec, 2, 12);
  ASSERT_EQ(back.shape(), x.shape());
  for (index_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(back[i], x[i], 1e-10);
  }
}

TEST(Fftnd, Rfft3RoundTripNonPow2Axis) {
  Rng rng(62);
  TensorD x({2, 1, 10, 8, 8});  // temporal axis 10 exercises Bluestein
  x.fill_normal(rng, 0.0, 1.0);
  const auto spec = rfftn(x, 3);
  EXPECT_EQ(spec.shape(), (Shape{2, 1, 10, 8, 5}));
  const TensorD back = irfftn(spec, 3, 8);
  for (index_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(back[i], x[i], 1e-9);
  }
}

TEST(Fftnd, PlaneWaveLandsInSingleBin2D) {
  const index_t nh = 16, nw = 16;
  TensorD x({1, 1, nh, nw});
  const index_t kh = 3, kw = 2;
  for (index_t i = 0; i < nh; ++i) {
    for (index_t j = 0; j < nw; ++j) {
      x(0, 0, i, j) = std::cos(
          2.0 * std::numbers::pi *
          (static_cast<double>(kh * i) / nh + static_cast<double>(kw * j) / nw));
    }
  }
  const auto spec = rfftn(x, 2);
  // Energy should concentrate in (kh, kw) and its Hermitian partner (nh-kh, kw).
  double total = 0.0;
  for (index_t i = 0; i < spec.size(); ++i) total += std::norm(spec[i]);
  const double peak = std::norm(spec(0, 0, kh, kw)) +
                      std::norm(spec(0, 0, nh - kh, kw));
  EXPECT_NEAR(peak / total, 1.0, 1e-9);
}

TEST(Fftnd, DcBin2DIsSum) {
  TensorD x({1, 1, 8, 8});
  Rng rng(63);
  x.fill_uniform(rng, 0.0, 1.0);
  const auto spec = rfftn(x, 2);
  EXPECT_NEAR(spec(0, 0, 0, 0).real(), x.sum(), 1e-9);
  EXPECT_NEAR(spec(0, 0, 0, 0).imag(), 0.0, 1e-9);
}

TEST(Fftnd, BatchesAreIndependent) {
  Rng rng(64);
  TensorD x({2, 1, 8, 8});
  x.fill_normal(rng, 0.0, 1.0);
  // Transform of the batch must equal per-sample transforms.
  const auto spec = rfftn(x, 2);
  TensorD single({1, 1, 8, 8});
  for (index_t i = 0; i < 64; ++i) single[i] = x[64 + i];
  const auto spec1 = rfftn(single, 2);
  for (index_t i = 0; i < spec1.size(); ++i) {
    ASSERT_NEAR(std::abs(spec[spec1.size() + i] - spec1[i]), 0.0, 1e-12);
  }
}

TEST(Fftnd, C2cAxisMatchesNaivePerLine) {
  Rng rng(65);
  TensorCD x({4, 6, 3});
  for (index_t i = 0; i < x.size(); ++i) x[i] = {rng.normal(), rng.normal()};
  TensorCD y = x;
  c2c_axis(y, 1, /*forward=*/true);
  // Check one line: (batch 2, inner 1).
  std::vector<cpxd> line(6);
  for (index_t j = 0; j < 6; ++j) line[static_cast<std::size_t>(j)] = x(2, j, 1);
  const auto ref = naive_dft(line);
  for (index_t j = 0; j < 6; ++j) {
    ASSERT_NEAR(std::abs(y(2, j, 1) - ref[static_cast<std::size_t>(j)]), 0.0,
                1e-10);
  }
}

TEST(Fftnd, C2cAxisInverseRoundTrip) {
  Rng rng(66);
  TensorCD x({5, 10, 4});
  for (index_t i = 0; i < x.size(); ++i) x[i] = {rng.normal(), rng.normal()};
  TensorCD y = x;
  c2c_axis(y, 1, true);
  c2c_axis(y, 1, false);
  for (index_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10);
  }
}

// --- batched property tests across thread counts ----------------------------
//
// Round-trip and Parseval for Bluestein lines (10, 12, 15) and radix-2
// lines, on batched tensors, dispatched at pool widths 1, 2, and 4. Line
// transforms write disjoint slices, so beyond correctness the spectra must
// be bitwise identical across widths.

constexpr std::size_t kWidths[] = {1, 2, 4};

TEST(FftProperties, BatchedRoundTripBluesteinAndRadix2AcrossThreadCounts) {
  // Last axis must be even (rfft); 10 and 12 take the Bluestein path, 16 the
  // radix-2 path. The non-last axes (12, 10 / 16, 16) go through c2c lines.
  for (const auto& shape : {Shape{3, 2, 12, 10}, Shape{3, 2, 16, 16}}) {
    Rng rng(900 + shape[3]);
    TensorD x(shape);
    x.fill_normal(rng, 0.0, 1.0);
    for (const std::size_t width : kWidths) {
      ThreadPool::Scope scope(width);
      const auto spec = rfftn(x, 2);
      const TensorD back = irfftn(spec, 2, shape[3]);
      ASSERT_EQ(back.shape(), x.shape());
      for (index_t i = 0; i < x.size(); ++i) {
        ASSERT_NEAR(back[i], x[i], 1e-12)
            << "width " << width << " n_last " << shape[3] << " i " << i;
      }
    }
  }
}

TEST(FftProperties, BatchedRoundTripOddBluesteinAcrossThreadCounts) {
  // 15 is odd, so it exercises the Bluestein path through the complex
  // transform (rfft requires an even last axis).
  Rng rng(915);
  TensorCD x({6, 15, 4});
  for (index_t i = 0; i < x.size(); ++i) x[i] = {rng.normal(), rng.normal()};
  for (const std::size_t width : kWidths) {
    ThreadPool::Scope scope(width);
    TensorCD y = x;
    c2c_axis(y, 1, /*forward=*/true);
    c2c_axis(y, 1, /*forward=*/false);
    for (index_t i = 0; i < x.size(); ++i) {
      ASSERT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-12) << "width " << width;
    }
  }
}

TEST(FftProperties, BatchedParsevalAcrossThreadCounts) {
  // Real path: Σ|x|² == Σ w·|x̂|²/N per line, with Hermitian multiplicity
  // w = 2 on interior rfft bins. Checked on the whole batch at once.
  for (const index_t n_last : {index_t{10}, index_t{12}, index_t{16}}) {
    Rng rng(920 + n_last);
    TensorD x({4, 3, n_last});
    x.fill_normal(rng, 0.0, 1.0);
    const double time_energy = x.squared_norm();
    for (const std::size_t width : kWidths) {
      ThreadPool::Scope scope(width);
      const auto spec = rfftn(x, 1);
      const index_t bins = n_last / 2 + 1;
      double freq_energy = 0.0;
      for (index_t r = 0; r < 4 * 3; ++r) {
        for (index_t j = 0; j < bins; ++j) {
          const double w = (j == 0 || j == n_last / 2) ? 1.0 : 2.0;
          freq_energy += w * std::norm(spec[r * bins + j]);
        }
      }
      EXPECT_NEAR(freq_energy / static_cast<double>(n_last), time_energy,
                  1e-10 * time_energy)
          << "width " << width << " n " << n_last;
    }
  }
}

TEST(FftProperties, BatchedParsevalOddBluesteinAcrossThreadCounts) {
  Rng rng(930);
  TensorCD x({5, 15, 3});
  double time_energy = 0.0;
  for (index_t i = 0; i < x.size(); ++i) {
    x[i] = {rng.normal(), rng.normal()};
    time_energy += std::norm(x[i]);
  }
  for (const std::size_t width : kWidths) {
    ThreadPool::Scope scope(width);
    TensorCD y = x;
    c2c_axis(y, 1, /*forward=*/true);
    double freq_energy = 0.0;
    for (index_t i = 0; i < y.size(); ++i) freq_energy += std::norm(y[i]);
    EXPECT_NEAR(freq_energy / 15.0, time_energy, 1e-10 * time_energy)
        << "width " << width;
  }
}

TEST(FftProperties, SpectraBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(940);
  TensorD x({4, 2, 12, 10});
  x.fill_normal(rng, 0.0, 1.0);
  const auto ref = [&] {
    ThreadPool::Scope scope(1);
    return rfftn(x, 2);
  }();
  for (const std::size_t width : {std::size_t{2}, std::size_t{4}}) {
    ThreadPool::Scope scope(width);
    const auto spec = rfftn(x, 2);
    ASSERT_EQ(spec.shape(), ref.shape());
    for (index_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(spec[i].real(), ref[i].real()) << "width " << width;
      ASSERT_EQ(spec[i].imag(), ref[i].imag()) << "width " << width;
    }
  }
}

// --- mode-pruned transforms --------------------------------------------------
//
// The FNO keeps the low-|k| corners of the spectrum: on c2c axes the kept
// coordinates are [0, m/2) ∪ [S - m/2, S), on the rfft axis [0, m/2 + 1).
// Pruned rfftn must be bitwise identical to the full transform at every kept
// coordinate; pruned irfftn of a spectrum that is zero outside the kept set
// must be bitwise identical everywhere.

/// Kept-coordinate flags for one axis in the FNO corner pattern.
std::vector<std::uint8_t> corner_keep(index_t extent, index_t n_modes,
                                      bool rfft_axis) {
  std::vector<std::uint8_t> keep(static_cast<std::size_t>(extent), 0);
  const index_t half = n_modes / 2;
  if (rfft_axis) {
    for (index_t s = 0; s < std::min(extent, half + 1); ++s) {
      keep[static_cast<std::size_t>(s)] = 1;
    }
  } else {
    for (index_t s = 0; s < extent; ++s) {
      if (s < half || s >= extent - half) keep[static_cast<std::size_t>(s)] = 1;
    }
  }
  return keep;
}

/// FNO corner mask over the trailing `ndim` axes of a spatial shape, keeping
/// `n_modes[d]` modes per axis.
fft::ModeMask corner_mask(const Shape& spatial_shape, std::size_t ndim,
                          const std::vector<index_t>& n_modes) {
  const std::size_t rank = spatial_shape.size();
  fft::ModeMask mask(ndim);
  for (std::size_t d = 0; d < ndim; ++d) {
    const index_t extent = spatial_shape[rank - ndim + d];
    const bool last = (d == ndim - 1);
    mask[d] = corner_keep(last ? extent / 2 + 1 : extent, n_modes[d], last);
  }
  return mask;
}

/// True when the spectrum coordinate (over the trailing ndim axes of `spec`)
/// is kept by every axis of the mask.
bool coord_kept(const fft::ModeMask& mask, const Shape& spec_shape,
                std::size_t ndim, index_t flat) {
  const std::size_t rank = spec_shape.size();
  for (std::size_t d = ndim; d-- > 0;) {
    const index_t extent = spec_shape[rank - ndim + d];
    const index_t coord = flat % extent;
    flat /= extent;
    if (!mask[d].empty() && mask[d][static_cast<std::size_t>(coord)] == 0) {
      return false;
    }
  }
  return true;
}

struct PrunedCase {
  Shape shape;
  std::size_t ndim;
  std::vector<index_t> n_modes;
};

/// Shapes cover radix-2 lines ({16,16}), Bluestein c2c (12) over Bluestein
/// rfft (10), odd Bluestein 15 on the c2c axis (15 cannot be an rfft axis —
/// the last axis must be even), and a 3-D transform masked on all three axes.
const PrunedCase kPrunedCases[] = {
    {{3, 2, 16, 16}, 2, {6, 6}},
    {{3, 2, 12, 10}, 2, {6, 4}},
    {{2, 1, 15, 16}, 2, {7, 6}},
    {{2, 1, 10, 12, 16}, 3, {4, 6, 8}},
};

TEST(FftPruned, RfftnBitwiseIdenticalAtKeptCoords) {
  for (const PrunedCase& pc : kPrunedCases) {
    Rng rng(700 + pc.shape.back());
    TensorD x(pc.shape);
    x.fill_normal(rng, 0.0, 1.0);
    const fft::ModeMask mask = corner_mask(pc.shape, pc.ndim, pc.n_modes);
    const auto full = rfftn(x, static_cast<int>(pc.ndim));
    const index_t spec_block = [&] {
      index_t b = 1;
      for (std::size_t d = 0; d < pc.ndim; ++d) {
        b *= full.shape()[full.rank() - pc.ndim + d];
      }
      return b;
    }();
    for (const std::size_t width : kWidths) {
      ThreadPool::Scope scope(width);
      const auto pruned = rfftn(x, static_cast<int>(pc.ndim), &mask);
      ASSERT_EQ(pruned.shape(), full.shape());
      index_t kept = 0;
      for (index_t i = 0; i < full.size(); ++i) {
        if (!coord_kept(mask, full.shape(), pc.ndim, i % spec_block)) continue;
        ++kept;
        ASSERT_EQ(pruned[i].real(), full[i].real())
            << "width " << width << " i " << i;
        ASSERT_EQ(pruned[i].imag(), full[i].imag())
            << "width " << width << " i " << i;
      }
      ASSERT_GT(kept, 0);
      ASSERT_LT(kept, full.size());  // the mask must actually prune something
    }
  }
}

TEST(FftPruned, IrfftnBitwiseIdenticalOnCornerSpectrum) {
  for (const PrunedCase& pc : kPrunedCases) {
    Rng rng(800 + pc.shape.back());
    TensorD x(pc.shape);
    x.fill_normal(rng, 0.0, 1.0);
    const fft::ModeMask mask = corner_mask(pc.shape, pc.ndim, pc.n_modes);
    // Build a corner spectrum: full forward transform, then zero every
    // coordinate outside the kept set (the caller contract for pruned
    // irfftn).
    auto spec = rfftn(x, static_cast<int>(pc.ndim));
    index_t spec_block = 1;
    for (std::size_t d = 0; d < pc.ndim; ++d) {
      spec_block *= spec.shape()[spec.rank() - pc.ndim + d];
    }
    for (index_t i = 0; i < spec.size(); ++i) {
      if (!coord_kept(mask, spec.shape(), pc.ndim, i % spec_block)) {
        spec[i] = {};
      }
    }
    const index_t n_last = pc.shape.back();
    const TensorD full = irfftn(spec, static_cast<int>(pc.ndim), n_last);
    for (const std::size_t width : kWidths) {
      ThreadPool::Scope scope(width);
      const TensorD pruned =
          irfftn(spec, static_cast<int>(pc.ndim), n_last, &mask);
      ASSERT_EQ(pruned.shape(), full.shape());
      for (index_t i = 0; i < full.size(); ++i) {
        ASSERT_EQ(pruned[i], full[i]) << "width " << width << " i " << i;
      }
    }
  }
}

TEST(FftPruned, SkipsLinesAndCountsThem) {
  TensorD x({2, 2, 16, 16});
  Rng rng(77);
  x.fill_normal(rng, 0.0, 1.0);
  const fft::ModeMask mask = corner_mask(x.shape(), 2, {6, 6});
  auto& skipped = obs::counter("fft/pruned_lines_skipped");
  auto& total = obs::counter("fft/lines_total");
  const auto skipped0 = skipped.value();
  const auto total0 = total.value();
  (void)rfftn(x, 2, &mask);
  EXPECT_GT(skipped.value(), skipped0);
  EXPECT_GT(total.value() - total0, skipped.value() - skipped0);
  const auto skipped1 = skipped.value();
  (void)rfftn(x, 2);  // unmasked: no pruning
  EXPECT_EQ(skipped.value(), skipped1);
}

TEST(FftPruned, MaskShapeMismatchRejected) {
  TensorD x({1, 1, 8, 8});
  fft::ModeMask bad(2);
  bad[0].assign(7, 1);  // extent is 8
  EXPECT_THROW(rfftn(x, 2, &bad), CheckError);
  fft::ModeMask wrong_rank(1);
  EXPECT_THROW(rfftn(x, 2, &wrong_rank), CheckError);
}

// --- batched-vs-single bitwise equivalence -----------------------------------
//
// Batch occupancy invariance: a line's floating-point bits must not depend on
// how many other lines share its batch or which lane it lands in. Checked at
// the plan level (forward_batch/inverse_batch against per-line forward/inverse
// at lane counts 1, B-1, B, B+1) and through the drivers (c2c_axis and
// rfftn/irfftn with line batching toggled, line counts 1, B-1, B, B+1, 3B+2,
// pruned and unpruned, pool widths 1/2/4), for f32 and f64, on every ISA tier
// the host supports. B is the tier's lane count.

/// Line counts that exercise full batches and every ragged-tail shape.
template <typename T>
std::vector<index_t> ragged_line_counts() {
  const index_t b = lane_count<T>(util::active_isa());
  std::vector<index_t> counts;
  for (const index_t c : {index_t{1}, b - 1, b, b + 1, 3 * b + 2}) {
    if (c >= 1 && std::find(counts.begin(), counts.end(), c) == counts.end()) {
      counts.push_back(c);
    }
  }
  return counts;
}

template <typename T>
void expect_plan_batch_bitwise() {
  using cpx = std::complex<T>;
  const index_t b = lane_count<T>(util::active_isa());
  // 16/64 take the radix-2 path, 10/12/15 the Bluestein path.
  for (const index_t n : {index_t{16}, index_t{64}, index_t{10}, index_t{12},
                          index_t{15}}) {
    const PlanC2C<T> plan(n);
    for (const index_t nl :
         {index_t{1}, b - 1, b, std::min(b + 1, kMaxLanes)}) {
      if (nl < 1) continue;
      Rng rng(50 + static_cast<std::uint64_t>(n * 16 + nl));
      std::vector<cpx> batched(static_cast<std::size_t>(n * nl));
      std::vector<cpx> ref(static_cast<std::size_t>(n * nl));
      for (index_t l = 0; l < nl; ++l) {
        for (index_t j = 0; j < n; ++j) {
          const cpx v(static_cast<T>(rng.normal()),
                      static_cast<T>(rng.normal()));
          batched[static_cast<std::size_t>(j * nl + l)] = v;  // lane-interleaved
          ref[static_cast<std::size_t>(l * n + j)] = v;       // line-major
        }
      }
      for (const bool inverse : {false, true}) {
        auto got = batched;
        auto want = ref;
        if (inverse) {
          plan.inverse_batch(got.data(), nl);
          for (index_t l = 0; l < nl; ++l) plan.inverse(want.data() + l * n);
        } else {
          plan.forward_batch(got.data(), nl);
          for (index_t l = 0; l < nl; ++l) plan.forward(want.data() + l * n);
        }
        for (index_t l = 0; l < nl; ++l) {
          for (index_t j = 0; j < n; ++j) {
            const cpx g = got[static_cast<std::size_t>(j * nl + l)];
            const cpx w = want[static_cast<std::size_t>(l * n + j)];
            ASSERT_EQ(g.real(), w.real())
                << "n=" << n << " nl=" << nl << " l=" << l << " j=" << j
                << " inverse=" << inverse;
            ASSERT_EQ(g.imag(), w.imag())
                << "n=" << n << " nl=" << nl << " l=" << l << " j=" << j
                << " inverse=" << inverse;
          }
        }
      }
    }
  }
}

TEST(FftBatched, PlanBatchMatchesSingleBitwiseScalar) {
  util::ScopedIsa forced(util::Isa::kScalar);
  expect_plan_batch_bitwise<float>();
  expect_plan_batch_bitwise<double>();
}

TEST(FftBatched, PlanBatchMatchesSingleBitwiseAvx2) {
  if (!util::cpu_supports_avx2()) GTEST_SKIP() << "host lacks avx2";
  util::ScopedIsa forced(util::Isa::kAvx2);
  expect_plan_batch_bitwise<float>();
  expect_plan_batch_bitwise<double>();
}

template <typename T>
void expect_c2c_batch_bitwise() {
  using cpx = std::complex<T>;
  for (const index_t nlines : ragged_line_counts<T>()) {
    for (const index_t n : {index_t{16}, index_t{12}, index_t{15}}) {
      Rng rng(60 + static_cast<std::uint64_t>(n * 64 + nlines));
      // Lines along axis 1; the inner axis extent is the line count, so an
      // inner_keep mask prunes whole lines and the batch gather goes ragged.
      Tensor<cpx> x({2, n, nlines});
      for (index_t i = 0; i < x.size(); ++i) {
        x[i] = {static_cast<T>(rng.normal()), static_cast<T>(rng.normal())};
      }
      std::vector<std::uint8_t> keep(static_cast<std::size_t>(nlines), 0);
      for (index_t l = 0; l < nlines; l += 2) {
        keep[static_cast<std::size_t>(l)] = 1;
      }
      for (const std::vector<std::uint8_t>* kp :
           {static_cast<const std::vector<std::uint8_t>*>(nullptr),
            static_cast<const std::vector<std::uint8_t>*>(&keep)}) {
        for (const bool forward : {true, false}) {
          for (const std::size_t width : kWidths) {
            ThreadPool::Scope scope(width);
            Tensor<cpx> ref = x;
            {
              ScopedLineBatching off(false);
              c2c_axis(ref, 1, forward, kp);
            }
            Tensor<cpx> bat = x;
            {
              ScopedLineBatching on(true);
              c2c_axis(bat, 1, forward, kp);
            }
            for (index_t i = 0; i < ref.size(); ++i) {
              ASSERT_EQ(bat[i].real(), ref[i].real())
                  << "n=" << n << " nlines=" << nlines << " width=" << width
                  << " masked=" << (kp != nullptr) << " i=" << i;
              ASSERT_EQ(bat[i].imag(), ref[i].imag())
                  << "n=" << n << " nlines=" << nlines << " width=" << width
                  << " masked=" << (kp != nullptr) << " i=" << i;
            }
          }
        }
      }
    }
  }
}

TEST(FftBatched, C2cAxisBatchedMatchesPerLineBitwiseScalar) {
  util::ScopedIsa forced(util::Isa::kScalar);
  expect_c2c_batch_bitwise<float>();
  expect_c2c_batch_bitwise<double>();
}

TEST(FftBatched, C2cAxisBatchedMatchesPerLineBitwiseAvx2) {
  if (!util::cpu_supports_avx2()) GTEST_SKIP() << "host lacks avx2";
  util::ScopedIsa forced(util::Isa::kAvx2);
  expect_c2c_batch_bitwise<float>();
  expect_c2c_batch_bitwise<double>();
}

template <typename T>
void expect_real_batch_bitwise() {
  using cpx = std::complex<T>;
  constexpr index_t kNLast = 16;
  for (const index_t nlines : ragged_line_counts<T>()) {
    Rng rng(70 + static_cast<std::uint64_t>(nlines));
    // 2-D transform: `nlines` rfft rows over a Bluestein c2c axis. The
    // corner mask prunes lines on the c2c axis and bins on the rfft axis.
    Tensor<T> x({nlines, 12, kNLast});
    for (index_t i = 0; i < x.size(); ++i) {
      x[i] = static_cast<T>(rng.normal());
    }
    const ModeMask mask = corner_mask(x.shape(), 2, {6, 6});
    for (const ModeMask* mp : {static_cast<const ModeMask*>(nullptr), &mask}) {
      for (const std::size_t width : kWidths) {
        ThreadPool::Scope scope(width);
        const auto spec_ref = [&] {
          ScopedLineBatching off(false);
          return rfftn(x, 2, mp);
        }();
        const auto spec_bat = [&] {
          ScopedLineBatching on(true);
          return rfftn(x, 2, mp);
        }();
        ASSERT_EQ(spec_bat.shape(), spec_ref.shape());
        const index_t spec_block =
            spec_ref.shape()[1] * spec_ref.shape()[2];
        for (index_t i = 0; i < spec_ref.size(); ++i) {
          // Pruned rfftn leaves unkept coordinates unspecified; compare the
          // kept set only (everything when unmasked).
          if (mp != nullptr &&
              !coord_kept(*mp, spec_ref.shape(), 2, i % spec_block)) {
            continue;
          }
          ASSERT_EQ(spec_bat[i].real(), spec_ref[i].real())
              << "nlines=" << nlines << " width=" << width
              << " masked=" << (mp != nullptr) << " i=" << i;
          ASSERT_EQ(spec_bat[i].imag(), spec_ref[i].imag())
              << "nlines=" << nlines << " width=" << width
              << " masked=" << (mp != nullptr) << " i=" << i;
        }
        // Inverse: corner spectrum (zero outside the kept set) so pruned
        // irfftn is bitwise-defined everywhere.
        Tensor<cpx> spec = spec_ref;
        if (mp != nullptr) {
          for (index_t i = 0; i < spec.size(); ++i) {
            if (!coord_kept(*mp, spec.shape(), 2, i % spec_block)) {
              spec[i] = {};
            }
          }
        }
        const auto back_ref = [&] {
          ScopedLineBatching off(false);
          return irfftn(spec, 2, kNLast, mp);
        }();
        const auto back_bat = [&] {
          ScopedLineBatching on(true);
          return irfftn(spec, 2, kNLast, mp);
        }();
        ASSERT_EQ(back_bat.shape(), back_ref.shape());
        for (index_t i = 0; i < back_ref.size(); ++i) {
          ASSERT_EQ(back_bat[i], back_ref[i])
              << "nlines=" << nlines << " width=" << width
              << " masked=" << (mp != nullptr) << " i=" << i;
        }
      }
    }
  }
}

TEST(FftBatched, RfftnIrfftnBatchedMatchesPerLineBitwiseScalar) {
  util::ScopedIsa forced(util::Isa::kScalar);
  expect_real_batch_bitwise<float>();
  expect_real_batch_bitwise<double>();
}

TEST(FftBatched, RfftnIrfftnBatchedMatchesPerLineBitwiseAvx2) {
  if (!util::cpu_supports_avx2()) GTEST_SKIP() << "host lacks avx2";
  util::ScopedIsa forced(util::Isa::kAvx2);
  expect_real_batch_bitwise<float>();
  expect_real_batch_bitwise<double>();
}

TEST(FftBatched, BatchedLineCountersAdvance) {
  util::ScopedIsa forced(util::Isa::kScalar);
  ScopedLineBatching on(true);
  auto& batched = obs::counter("fft/batched_lines");
  auto& tails = obs::counter("fft/batch_tail_lines");
  const auto batched0 = batched.value();
  const auto tails0 = tails.value();
  const index_t b = lane_count<double>(util::Isa::kScalar);
  Tensor<std::complex<double>> x({1, 16, 3 * b + 2});
  Rng rng(81);
  for (index_t i = 0; i < x.size(); ++i) x[i] = {rng.normal(), rng.normal()};
  {
    ThreadPool::Scope scope(1);
    c2c_axis(x, 1, /*forward=*/true);
  }
  EXPECT_GT(batched.value() - batched0, 0);
  // 3B+2 total lines: however the range is chunked, at least one flush group
  // is ragged, so the tail counter must advance too.
  EXPECT_GT(tails.value() - tails0, 0);
}

// --- workspace cache ---------------------------------------------------------

TEST(FftWorkspace, SameSlotSameShapeReusesBuffer) {
  TensorD& a = fft::workspace<double>("test/ws_reuse", {4, 6});
  a(2, 3) = 42.0;
  double* ptr = a.data();
  TensorD& b = fft::workspace<double>("test/ws_reuse", {4, 6});
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b(2, 3), 42.0);  // contents carried over
}

TEST(FftWorkspace, EqualNumelReshapesInPlace) {
  TensorD& a = fft::workspace<double>("test/ws_reshape", {3, 8});
  double* ptr = a.data();
  TensorD& b = fft::workspace<double>("test/ws_reshape", {6, 4});
  EXPECT_EQ(b.data(), ptr);  // same storage, new shape
  EXPECT_EQ(b.shape(), (Shape{6, 4}));
}

TEST(FftWorkspace, DifferentNumelReallocates) {
  TensorD& a = fft::workspace<double>("test/ws_grow", {2, 2});
  EXPECT_EQ(a.size(), 4);
  TensorD& b = fft::workspace<double>("test/ws_grow", {8, 8});
  EXPECT_EQ(b.size(), 64);
  EXPECT_EQ(b.shape(), (Shape{8, 8}));
}

TEST(FftWorkspace, SlotsAreIndependent) {
  TensorD& a = fft::workspace<double>("test/ws_a", {4});
  TensorD& b = fft::workspace<double>("test/ws_b", {4});
  EXPECT_NE(a.data(), b.data());
}

TEST(Fftnd, ParsevalIn2D) {
  Rng rng(67);
  TensorD x({1, 1, 32, 32});
  x.fill_normal(rng, 0.0, 1.0);
  const auto spec = rfftn(x, 2);
  double freq_energy = 0.0;
  const index_t nh = 32, nwr = 17;
  for (index_t i = 0; i < nh; ++i) {
    for (index_t j = 0; j < nwr; ++j) {
      // Interior rfft bins represent two Hermitian-symmetric coefficients.
      const double w = (j == 0 || j == nwr - 1) ? 1.0 : 2.0;
      freq_energy += w * std::norm(spec(0, 0, i, j));
    }
  }
  EXPECT_NEAR(freq_energy / (32.0 * 32.0), x.squared_norm(),
              1e-8 * x.squared_norm());
}

}  // namespace
}  // namespace turb::fft
