#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <tuple>

#include "nn/activation.hpp"
#include "nn/dataloader.hpp"
#include "nn/gradcheck.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "nn/spectral_conv.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace turb::nn {
namespace {

TensorF random_input(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  TensorF x(std::move(shape));
  x.fill_normal(rng, 0.0, 1.0);
  return x;
}

// --- Linear -----------------------------------------------------------------

TEST(Linear, ForwardMatchesManualComputation) {
  Rng rng(1);
  Linear layer(2, 3, rng);
  // Deterministic weights for the check.
  layer.weight().value.fill(0.0f);
  layer.weight().value(0, 0) = 1.0f;
  layer.weight().value(1, 1) = 2.0f;
  layer.weight().value(2, 0) = -1.0f;
  layer.bias().value[0] = 0.5f;
  layer.bias().value[1] = 0.0f;
  layer.bias().value[2] = 0.0f;

  TensorF x({1, 2, 2, 2});
  for (index_t i = 0; i < 8; ++i) x[i] = static_cast<float>(i + 1);
  const TensorF y = layer.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 3, 2, 2}));
  // y[0,0,·] = 1*x[0,0,·] + 0.5
  EXPECT_FLOAT_EQ(y(0, 0, 0, 0), 1.5f);
  // y[0,1,·] = 2*x[0,1,·]
  EXPECT_FLOAT_EQ(y(0, 1, 1, 1), 16.0f);
  // y[0,2,·] = -x[0,0,·]
  EXPECT_FLOAT_EQ(y(0, 2, 0, 1), -2.0f);
}

TEST(Linear, GradcheckInput) {
  Rng rng(2);
  Linear layer(3, 4, rng);
  const auto res = gradcheck_input(layer, random_input({2, 3, 4, 5}, 3));
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(Linear, GradcheckParameters) {
  Rng rng(4);
  Linear layer(3, 2, rng);
  const auto res = gradcheck_parameters(layer, random_input({2, 3, 6, 6}, 5));
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(Linear, GradcheckParametersPooled) {
  // Batch 9 > kGradSlabs exercises the multi-slab dW/db scratch reduction
  // with 4 pool workers, not just the serial path.
  ThreadPool::Scope scope(4);
  Rng rng(4);
  Linear layer(3, 2, rng);
  const auto res = gradcheck_parameters(layer, random_input({9, 3, 6, 6}, 5));
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(Linear, BackwardBitwiseIdenticalAcrossThreadCounts) {
  const auto grads_at = [](std::size_t width) {
    ThreadPool::Scope scope(width);
    Rng rng(14);
    Linear layer(3, 4, rng);
    const TensorF x = random_input({9, 3, 6, 6}, 15);
    const TensorF y = layer.forward(x);
    const TensorF dx = layer.backward(random_input(y.shape(), 16));
    return std::tuple{dx, layer.weight().grad, layer.bias().grad};
  };
  const auto [dx1, dw1, db1] = grads_at(1);
  for (const std::size_t width : {std::size_t{2}, std::size_t{4}}) {
    const auto [dx, dw, db] = grads_at(width);
    for (index_t i = 0; i < dx1.size(); ++i) ASSERT_EQ(dx[i], dx1[i]) << i;
    for (index_t i = 0; i < dw1.size(); ++i) ASSERT_EQ(dw[i], dw1[i]) << i;
    for (index_t i = 0; i < db1.size(); ++i) ASSERT_EQ(db[i], db1[i]) << i;
  }
}

TEST(Linear, GradcheckNoBias) {
  Rng rng(6);
  Linear layer(2, 2, rng, /*bias=*/false);
  EXPECT_EQ(layer.parameters().size(), 1u);
  const auto res = gradcheck_parameters(layer, random_input({3, 2, 4, 4}, 7));
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(Linear, Works1DSpatial) {
  Rng rng(8);
  Linear layer(4, 4, rng);
  const TensorF y = layer.forward(random_input({2, 4, 10}, 9));
  EXPECT_EQ(y.shape(), (Shape{2, 4, 10}));
}

TEST(Linear, RejectsWrongChannelCount) {
  Rng rng(10);
  Linear layer(4, 4, rng);
  EXPECT_THROW(layer.forward(random_input({1, 3, 4, 4}, 11)), CheckError);
}

TEST(Linear, GradAccumulatesAcrossCalls) {
  Rng rng(12);
  Linear layer(2, 2, rng);
  const TensorF x = random_input({1, 2, 3, 3}, 13);
  const TensorF y = layer.forward(x);
  TensorF g(y.shape(), 1.0f);
  (void)layer.backward(g);
  const float first = layer.weight().grad[0];
  (void)layer.forward(x);
  (void)layer.backward(g);
  EXPECT_NEAR(layer.weight().grad[0], 2.0f * first, 1e-5f);
}

// --- GELU --------------------------------------------------------------------

TEST(Gelu, KnownValues) {
  Gelu act;
  TensorF x({1, 1, 3});
  x[0] = 0.0f;
  x[1] = 1.0f;
  x[2] = -1.0f;
  const TensorF y = act.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_NEAR(y[1], 0.841345f, 1e-5f);   // torch.nn.functional.gelu(1.0)
  EXPECT_NEAR(y[2], -0.158655f, 1e-5f);  // torch.nn.functional.gelu(-1.0)
}

TEST(Gelu, GradcheckInput) {
  Gelu act;
  const auto res = gradcheck_input(act, random_input({2, 3, 8}, 15), 60, 1e-2f);
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(Gelu, ApproachesIdentityForLargePositive) {
  Gelu act;
  TensorF x({1, 1, 1}, 10.0f);
  EXPECT_NEAR(act.forward(x)[0], 10.0f, 1e-5f);
}

// --- SpectralConv -------------------------------------------------------------

TEST(SpectralConv, OutputShape2D) {
  Rng rng(20);
  SpectralConv conv(3, 5, {4, 4}, rng);
  const TensorF y = conv.forward(random_input({2, 3, 8, 8}, 21));
  EXPECT_EQ(y.shape(), (Shape{2, 5, 8, 8}));
}

TEST(SpectralConv, OutputShape3D) {
  Rng rng(22);
  SpectralConv conv(2, 2, {4, 4, 4}, rng);
  const TensorF y = conv.forward(random_input({1, 2, 10, 8, 8}, 23));
  EXPECT_EQ(y.shape(), (Shape{1, 2, 10, 8, 8}));
}

TEST(SpectralConv, WeightShapeMatchesConvention) {
  Rng rng(24);
  SpectralConv conv(3, 5, {8, 6}, rng);
  // (C_in, C_out, m1, m2/2+1, 2)
  EXPECT_EQ(conv.weight().value.shape(), (Shape{3, 5, 8, 4, 2}));
  EXPECT_EQ(conv.kept_modes(), 8 * 4);
}

TEST(SpectralConv, GradcheckInput2D) {
  Rng rng(26);
  SpectralConv conv(2, 3, {4, 4}, rng);
  const auto res =
      gradcheck_input(conv, random_input({2, 2, 8, 8}, 27), 60, 2e-2f);
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(SpectralConv, GradcheckParameters2D) {
  Rng rng(28);
  SpectralConv conv(2, 2, {4, 4}, rng);
  const auto res =
      gradcheck_parameters(conv, random_input({2, 2, 8, 8}, 29), 80, 2e-2f);
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(SpectralConv, GradcheckInput2DPooled) {
  ThreadPool::Scope scope(4);
  Rng rng(26);
  SpectralConv conv(2, 2, {4, 4}, rng);
  const auto res =
      gradcheck_input(conv, random_input({9, 2, 8, 8}, 27), 60, 2e-2f);
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(SpectralConv, GradcheckParameters2DPooled) {
  // Batch 9 > kGradSlabs: the per-slab dW scratch buffers and their
  // fixed-order fold carry real concurrency here (4 workers), so the
  // analytic gradient is validated on the parallel path, not just serial.
  ThreadPool::Scope scope(4);
  Rng rng(28);
  SpectralConv conv(2, 2, {4, 4}, rng);
  const auto res =
      gradcheck_parameters(conv, random_input({9, 2, 8, 8}, 29), 80, 2e-2f);
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(SpectralConv, BackwardBitwiseIdenticalAcrossThreadCounts) {
  const auto grads_at = [](std::size_t width) {
    ThreadPool::Scope scope(width);
    Rng rng(41);
    SpectralConv conv(3, 3, {4, 4}, rng);
    const TensorF x = random_input({9, 3, 8, 8}, 43);
    const TensorF y = conv.forward(x);
    const TensorF dx = conv.backward(random_input(y.shape(), 44));
    return std::tuple{dx, conv.weight().grad};
  };
  const auto [dx1, dw1] = grads_at(1);
  for (const std::size_t width : {std::size_t{2}, std::size_t{4}}) {
    const auto [dx, dw] = grads_at(width);
    for (index_t i = 0; i < dx1.size(); ++i) ASSERT_EQ(dx[i], dx1[i]) << i;
    for (index_t i = 0; i < dw1.size(); ++i) ASSERT_EQ(dw[i], dw1[i]) << i;
  }
}

TEST(SpectralConv, GradcheckInput3D) {
  Rng rng(30);
  SpectralConv conv(2, 2, {4, 4, 4}, rng);
  const auto res =
      gradcheck_input(conv, random_input({1, 2, 6, 8, 8}, 31), 50, 2e-2f);
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(SpectralConv, GradcheckParameters3D) {
  Rng rng(32);
  SpectralConv conv(2, 2, {4, 4, 4}, rng);
  const auto res =
      gradcheck_parameters(conv, random_input({1, 2, 6, 8, 8}, 33), 80, 2e-2f);
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(SpectralConv, GradcheckFullModeCoverage) {
  // n_modes equal to the grid extent: every mode retained.
  Rng rng(34);
  SpectralConv conv(2, 2, {8, 8}, rng);
  const auto res =
      gradcheck_input(conv, random_input({1, 2, 8, 8}, 35), 60, 2e-2f);
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(SpectralConv, LowPassBehaviour) {
  // With weights = identity on kept modes, the layer acts as a low-pass
  // filter: a retained plane wave passes through, a truncated one vanishes.
  Rng rng(36);
  SpectralConv conv(1, 1, {4, 4}, rng);
  auto& w = conv.weight().value;
  w.fill(0.0f);
  // Identity weight: real part 1 for (i=0, o=0, every kept mode).
  for (index_t k = 0; k < conv.kept_modes(); ++k) {
    w[k * 2] = 1.0f;
  }
  const index_t n = 16;
  TensorF low({1, 1, n, n}), high({1, 1, n, n});
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      const double xi = static_cast<double>(i) / n;
      const double xj = static_cast<double>(j) / n;
      low(0, 0, i, j) =
          static_cast<float>(std::cos(2.0 * std::numbers::pi * (xi + xj)));
      high(0, 0, i, j) = static_cast<float>(
          std::cos(2.0 * std::numbers::pi * (6.0 * xi + 7.0 * xj)));
    }
  }
  const TensorF y_low = conv.forward(low);
  const TensorF y_high = conv.forward(high);
  double err_low = 0.0;
  for (index_t i = 0; i < y_low.size(); ++i) {
    err_low = std::max(err_low,
                       std::abs(static_cast<double>(y_low[i]) - low[i]));
  }
  EXPECT_LT(err_low, 1e-4);           // retained mode passes unchanged
  EXPECT_LT(y_high.max_abs(), 1e-4);  // truncated mode is annihilated
}

TEST(SpectralConv, RejectsOddModes) {
  Rng rng(38);
  EXPECT_THROW(SpectralConv(1, 1, {3, 4}, rng), CheckError);
}

TEST(SpectralConv, RejectsModesLargerThanGrid) {
  Rng rng(40);
  SpectralConv conv(1, 1, {16, 16}, rng);
  EXPECT_THROW(conv.forward(random_input({1, 1, 8, 8}, 41)), CheckError);
}

TEST(SpectralConv, ResolutionInvariantShapes) {
  // The same weights apply at any resolution ≥ the mode count — the
  // discretisation-agnostic property of neural operators.
  Rng rng(42);
  SpectralConv conv(1, 1, {4, 4}, rng);
  const TensorF y8 = conv.forward(random_input({1, 1, 8, 8}, 43));
  const TensorF y32 = conv.forward(random_input({1, 1, 32, 32}, 44));
  EXPECT_EQ(y8.shape(), (Shape{1, 1, 8, 8}));
  EXPECT_EQ(y32.shape(), (Shape{1, 1, 32, 32}));
}

TEST(SpectralConv, ConstantFieldScalesByDcWeight) {
  Rng rng(46);
  SpectralConv conv(1, 1, {4, 4}, rng);
  conv.weight().value.fill(0.0f);
  conv.weight().value[0] = 2.0f;  // DC mode, real part
  TensorF x({1, 1, 8, 8}, 3.0f);
  const TensorF y = conv.forward(x);
  for (index_t i = 0; i < y.size(); ++i) {
    ASSERT_NEAR(y[i], 6.0f, 1e-4f);
  }
}

// --- SpectralConv mode pruning ------------------------------------------------

/// Save/restore the process-wide pruning switch around a test body.
struct PruningGuard {
  explicit PruningGuard(bool on) : saved(SpectralConv::pruning()) {
    SpectralConv::set_pruning(on);
  }
  ~PruningGuard() { SpectralConv::set_pruning(saved); }
  bool saved;
};

TEST(SpectralConvPruning, ForwardAndBackwardBitwiseInvariant) {
  // Pruned transforms must be bitwise identical to full ones — not merely
  // close. Grid 12 exercises Bluestein lines on both axes; modes 4 leaves
  // plenty of lines to skip.
  const auto run_at = [](bool prune) {
    PruningGuard guard(prune);
    Rng rng(81);
    SpectralConv conv(2, 3, {4, 4}, rng);
    const TensorF x = random_input({2, 2, 12, 12}, 82);
    const TensorF y = conv.forward(x);
    const TensorF dx = conv.backward(random_input(y.shape(), 83));
    return std::tuple{y, dx, conv.weight().grad};
  };
  const auto [y_full, dx_full, dw_full] = run_at(false);
  const auto [y_pruned, dx_pruned, dw_pruned] = run_at(true);
  ASSERT_EQ(y_pruned.shape(), y_full.shape());
  for (index_t i = 0; i < y_full.size(); ++i) {
    ASSERT_EQ(y_pruned[i], y_full[i]) << "forward i=" << i;
  }
  for (index_t i = 0; i < dx_full.size(); ++i) {
    ASSERT_EQ(dx_pruned[i], dx_full[i]) << "dx i=" << i;
  }
  for (index_t i = 0; i < dw_full.size(); ++i) {
    ASSERT_EQ(dw_pruned[i], dw_full[i]) << "dw i=" << i;
  }
}

TEST(SpectralConvPruning, BitwiseInvariantAcrossThreadCounts3D) {
  const auto run_at = [](bool prune, std::size_t width) {
    PruningGuard guard(prune);
    ThreadPool::Scope scope(width);
    Rng rng(85);
    SpectralConv conv(2, 2, {4, 4, 4}, rng);
    const TensorF x = random_input({1, 2, 10, 8, 8}, 86);
    const TensorF y = conv.forward(x);
    const TensorF dx = conv.backward(random_input(y.shape(), 87));
    return std::tuple{y, dx};
  };
  const auto [y_ref, dx_ref] = run_at(false, 1);
  for (const std::size_t width : {std::size_t{1}, std::size_t{4}}) {
    const auto [y, dx] = run_at(true, width);
    for (index_t i = 0; i < y_ref.size(); ++i) {
      ASSERT_EQ(y[i], y_ref[i]) << "width " << width << " i " << i;
    }
    for (index_t i = 0; i < dx_ref.size(); ++i) {
      ASSERT_EQ(dx[i], dx_ref[i]) << "width " << width << " i " << i;
    }
  }
}

TEST(SpectralConvPruning, GradcheckInputPruned) {
  // Grid (12) strictly larger than modes (4) so the pruned path really skips
  // lines; the analytic gradient must still match finite differences.
  PruningGuard guard(true);
  Rng rng(90);
  SpectralConv conv(2, 2, {4, 4}, rng);
  const auto res =
      gradcheck_input(conv, random_input({2, 2, 12, 12}, 91), 60, 2e-2f);
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(SpectralConvPruning, GradcheckParametersPruned) {
  PruningGuard guard(true);
  Rng rng(92);
  SpectralConv conv(2, 2, {4, 4}, rng);
  const auto res =
      gradcheck_parameters(conv, random_input({2, 2, 12, 12}, 93), 80, 2e-2f);
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

// --- FactorizedSpectralConv ---------------------------------------------------

TEST(FactorizedSpectralConv, OutputShape2D) {
  Rng rng(120);
  FactorizedSpectralConv conv(3, 5, {4, 4}, rng);
  const TensorF y = conv.forward(random_input({2, 3, 8, 8}, 121));
  EXPECT_EQ(y.shape(), (Shape{2, 5, 8, 8}));
}

TEST(FactorizedSpectralConv, OutputShape3D) {
  Rng rng(122);
  FactorizedSpectralConv conv(2, 2, {4, 4, 4}, rng);
  const TensorF y = conv.forward(random_input({1, 2, 6, 6, 6}, 123));
  EXPECT_EQ(y.shape(), (Shape{1, 2, 6, 6, 6}));
}

TEST(FactorizedSpectralConv, FactorShapesAndParameterCount) {
  Rng rng(124);
  FactorizedSpectralConv conv(3, 5, {8, 6}, rng);
  // Axis 0 keeps all 8 modes, axis 1 (rfft) keeps 6/2+1 = 4.
  EXPECT_EQ(conv.factor(0).value.shape(), (Shape{3, 5, 8, 2}));
  EXPECT_EQ(conv.factor(1).value.shape(), (Shape{3, 5, 4, 2}));
  EXPECT_EQ(conv.factor_parameter_count(), 3 * 5 * (8 + 4) * 2);
  std::vector<Parameter*> params;
  conv.collect_parameters(params);
  ASSERT_EQ(params.size(), 2u);
  index_t total = 0;
  for (const Parameter* p : params) total += p->value.size();
  EXPECT_EQ(total, conv.factor_parameter_count());
}

TEST(FactorizedSpectralConv, GradcheckInput2D) {
  Rng rng(126);
  FactorizedSpectralConv conv(2, 3, {4, 4}, rng);
  const auto res =
      gradcheck_input(conv, random_input({2, 2, 8, 8}, 127), 60, 2e-2f);
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(FactorizedSpectralConv, GradcheckParameters2D) {
  Rng rng(128);
  FactorizedSpectralConv conv(2, 2, {4, 4}, rng);
  const auto res =
      gradcheck_parameters(conv, random_input({2, 2, 8, 8}, 129), 80, 2e-2f);
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(FactorizedSpectralConv, GradcheckInput3D) {
  Rng rng(130);
  FactorizedSpectralConv conv(2, 2, {4, 4, 4}, rng);
  const auto res =
      gradcheck_input(conv, random_input({1, 2, 6, 8, 8}, 131), 50, 2e-2f);
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(FactorizedSpectralConv, GradcheckParameters3D) {
  Rng rng(132);
  FactorizedSpectralConv conv(2, 2, {4, 4, 4}, rng);
  const auto res =
      gradcheck_parameters(conv, random_input({1, 2, 6, 8, 8}, 133), 80,
                           2e-2f);
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(FactorizedSpectralConv, GradcheckParametersPruned) {
  // Grid strictly larger than modes so the pruned transforms really skip
  // lines while the factor chain rule still matches finite differences.
  PruningGuard guard(true);
  Rng rng(134);
  FactorizedSpectralConv conv(2, 2, {4, 4}, rng);
  const auto res =
      gradcheck_parameters(conv, random_input({2, 2, 12, 12}, 135), 80, 2e-2f);
  EXPECT_TRUE(res.ok()) << "max rel err " << res.max_rel_error;
}

TEST(FactorizedSpectralConv, BackwardBitwiseIdenticalAcrossThreadCounts) {
  const auto grads_at = [](std::size_t width) {
    ThreadPool::Scope scope(width);
    Rng rng(136);
    FactorizedSpectralConv conv(3, 3, {4, 4}, rng);
    const TensorF x = random_input({9, 3, 8, 8}, 137);
    const TensorF y = conv.forward(x);
    const TensorF dx = conv.backward(random_input(y.shape(), 138));
    return std::tuple{dx, conv.factor(0).grad, conv.factor(1).grad};
  };
  const auto [dx1, da1, db1] = grads_at(1);
  for (const std::size_t width : {std::size_t{2}, std::size_t{4}}) {
    const auto [dx, da, db] = grads_at(width);
    for (index_t i = 0; i < dx1.size(); ++i) ASSERT_EQ(dx[i], dx1[i]) << i;
    for (index_t i = 0; i < da1.size(); ++i) ASSERT_EQ(da[i], da1[i]) << i;
    for (index_t i = 0; i < db1.size(); ++i) ASSERT_EQ(db[i], db1[i]) << i;
  }
}

TEST(FactorizedSpectralConv, SharedFactorsAliasOwnerParameters) {
  Rng rng(140);
  FactorizedSpectralConv owner(2, 2, {4, 4}, rng, "fact0");
  FactorizedSpectralConv sharer(2, 2, {4, 4}, rng, "fact1", &owner);
  EXPECT_FALSE(owner.shares_factors());
  EXPECT_TRUE(sharer.shares_factors());
  EXPECT_EQ(&owner.factor(0), &sharer.factor(0));
  EXPECT_EQ(&owner.factor(1), &sharer.factor(1));
  // Only the owner reports the shared parameters.
  std::vector<Parameter*> params;
  owner.collect_parameters(params);
  sharer.collect_parameters(params);
  EXPECT_EQ(params.size(), 2u);
}

TEST(FactorizedSpectralConv, SharedFactorGradientsAccumulateAcrossLayers) {
  // Chain owner → sharer on the same factors: the factor gradient must be
  // the sum of both layers' contributions. Compare against an identical
  // unshared pair whose per-layer gradients are summed by hand.
  Rng rng_a(142);
  FactorizedSpectralConv owner(2, 2, {4, 4}, rng_a, "fact0");
  FactorizedSpectralConv sharer(2, 2, {4, 4}, rng_a, "fact1", &owner);
  const TensorF x = random_input({1, 2, 8, 8}, 143);
  const TensorF mid = owner.forward(x);
  const TensorF y = sharer.forward(mid);
  TensorF g(y.shape(), 1.0f);
  const TensorF dmid = sharer.backward(g);
  (void)owner.backward(dmid);

  // Reference: two independent layers with the same weights (replay the rng
  // sequence), gradients summed manually.
  Rng rng_b(142);
  FactorizedSpectralConv ref0(2, 2, {4, 4}, rng_b, "ref0");
  // Sharer drew no weights from the rng (it aliases), so ref1 must reuse
  // ref0's values rather than drawing fresh ones.
  Rng rng_scratch(999);
  FactorizedSpectralConv ref1(2, 2, {4, 4}, rng_scratch, "ref1");
  for (std::size_t d = 0; d < 2; ++d) {
    ref1.factor(d).value = ref0.factor(d).value;
  }
  const TensorF mid_ref = ref0.forward(x);
  const TensorF y_ref = ref1.forward(mid_ref);
  for (index_t i = 0; i < y.size(); ++i) ASSERT_EQ(y[i], y_ref[i]) << i;
  const TensorF dmid_ref = ref1.backward(g);
  (void)ref0.backward(dmid_ref);
  for (std::size_t d = 0; d < 2; ++d) {
    const TensorF& shared_grad = owner.factor(d).grad;
    const TensorF& g0 = ref0.factor(d).grad;
    const TensorF& g1 = ref1.factor(d).grad;
    for (index_t i = 0; i < shared_grad.size(); ++i) {
      ASSERT_NEAR(shared_grad[i], g0[i] + g1[i], 1e-5f) << "axis " << d
                                                        << " idx " << i;
    }
  }
}

TEST(FactorizedSpectralConv, AdamStepReducesLoss) {
  // The factors must be trainable end-to-end: a few Adam steps on a tiny
  // regression problem should reduce the MSE.
  Rng rng(144);
  FactorizedSpectralConv conv(2, 2, {4, 4}, rng);
  const TensorF x = random_input({2, 2, 8, 8}, 145);
  const TensorF target = random_input({2, 2, 8, 8}, 146);
  std::vector<Parameter*> params;
  conv.collect_parameters(params);
  Adam::Config cfg;
  cfg.lr = 1e-2;
  cfg.weight_decay = 0.0;
  Adam opt(params, cfg);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 20; ++step) {
    const TensorF y = conv.forward(x);
    const LossResult loss = mse_loss(y, target);
    if (step == 0) first = loss.value;
    last = loss.value;
    opt.zero_grad();
    (void)conv.backward(loss.grad);
    opt.step();
  }
  EXPECT_LT(last, first * 0.9);
}

// --- Losses -------------------------------------------------------------------

TEST(Loss, MseValueAndGrad) {
  TensorF pred({1, 4}), target({1, 4});
  for (index_t i = 0; i < 4; ++i) {
    pred[i] = static_cast<float>(i);
    target[i] = 0.0f;
  }
  const LossResult res = mse_loss(pred, target);
  EXPECT_NEAR(res.value, (0.0 + 1.0 + 4.0 + 9.0) / 4.0, 1e-6);
  EXPECT_NEAR(res.grad[2], 2.0f * 2.0f / 4.0f, 1e-6f);
}

TEST(Loss, RelativeL2PerfectPredictionIsZero) {
  Rng rng(50);
  TensorF t({3, 8});
  t.fill_normal(rng, 0.0, 1.0);
  const LossResult res = relative_l2_loss(t, t);
  EXPECT_NEAR(res.value, 0.0, 1e-7);
}

TEST(Loss, RelativeL2ScaleInvariance) {
  // Scaling both prediction error and target by the same factor leaves the
  // relative loss unchanged.
  Rng rng(51);
  TensorF t({2, 16}), p({2, 16});
  t.fill_normal(rng, 0.0, 1.0);
  for (index_t i = 0; i < p.size(); ++i) p[i] = t[i] + 0.1f;
  const double base = relative_l2_loss(p, t).value;
  TensorF t2 = t, p2 = p;
  t2 *= 10.0f;
  for (index_t i = 0; i < p2.size(); ++i) p2[i] = t2[i] + 1.0f;
  EXPECT_NEAR(relative_l2_loss(p2, t2).value, base, 1e-5);
}

TEST(Loss, RelativeL2GradMatchesFiniteDifference) {
  Rng rng(52);
  TensorF t({2, 6}), p({2, 6});
  t.fill_normal(rng, 0.0, 1.0);
  p.fill_normal(rng, 0.0, 1.0);
  const LossResult res = relative_l2_loss(p, t);
  const float eps = 1e-3f;
  for (index_t i = 0; i < p.size(); i += 3) {
    TensorF pp = p;
    pp[i] += eps;
    const double lp = relative_l2_loss(pp, t).value;
    pp[i] -= 2 * eps;
    const double lm = relative_l2_loss(pp, t).value;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(res.grad[i], numeric, 2e-3) << "i=" << i;
  }
}

TEST(Loss, MetricMatchesLossValue) {
  Rng rng(53);
  TensorF t({4, 10}), p({4, 10});
  t.fill_normal(rng, 0.0, 1.0);
  p.fill_normal(rng, 0.0, 1.0);
  EXPECT_NEAR(relative_l2_error(p, t), relative_l2_loss(p, t).value, 1e-7);
}

// --- Optimizer ------------------------------------------------------------------

TEST(Adam, ConvergesOnQuadratic) {
  // Minimise ‖w − w*‖² for a random target w*.
  Rng rng(60);
  Parameter p("w", {8});
  p.value.fill_normal(rng, 0.0, 1.0);
  TensorF target({8});
  target.fill_normal(rng, 0.0, 1.0);

  Adam::Config cfg;
  cfg.lr = 0.05;
  cfg.weight_decay = 0.0;
  Adam opt({&p}, cfg);
  for (int iter = 0; iter < 500; ++iter) {
    opt.zero_grad();
    for (index_t i = 0; i < 8; ++i) {
      p.grad[i] = 2.0f * (p.value[i] - target[i]);
    }
    opt.step();
  }
  for (index_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(p.value[i], target[i], 1e-3f);
  }
}

TEST(Adam, FirstStepIsLrSizedSignedStep) {
  // With bias correction, the very first Adam update is ≈ lr·sign(g).
  Parameter p("w", {2});
  p.value[0] = 1.0f;
  p.value[1] = -1.0f;
  Adam::Config cfg;
  cfg.lr = 0.1;
  cfg.weight_decay = 0.0;
  Adam opt({&p}, cfg);
  p.grad[0] = 0.5f;
  p.grad[1] = -3.0f;
  opt.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f, 1e-4f);
  EXPECT_NEAR(p.value[1], -1.0f + 0.1f, 1e-4f);
}

TEST(Adam, WeightDecayPullsTowardZero) {
  Parameter p("w", {1});
  p.value[0] = 1.0f;
  Adam::Config cfg;
  cfg.lr = 0.01;
  cfg.weight_decay = 1.0;
  Adam opt({&p}, cfg);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();  // gradient identically zero; only decay acts
    opt.step();
  }
  EXPECT_LT(std::abs(p.value[0]), 0.5f);
}

TEST(StepLR, HalvesEveryStep) {
  Parameter p("w", {1});
  Adam::Config cfg;
  cfg.lr = 1e-3;
  Adam opt({&p}, cfg);
  StepLR sched(opt, 100, 0.5);
  for (int e = 0; e < 99; ++e) sched.step();
  EXPECT_DOUBLE_EQ(opt.lr(), 1e-3);  // epoch 99: not yet dropped
  sched.step();                      // epoch 100
  EXPECT_DOUBLE_EQ(opt.lr(), 5e-4);
  for (int e = 0; e < 100; ++e) sched.step();
  EXPECT_DOUBLE_EQ(opt.lr(), 2.5e-4);
}

// --- DataLoader -------------------------------------------------------------------

TEST(DataLoader, CoversAllSamplesOncePerEpoch) {
  const index_t n = 17;
  TensorF x({n, 2}), y({n, 1});
  for (index_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<float>(i);
    x(i, 1) = 0.0f;
    y(i, 0) = static_cast<float>(i);
  }
  DataLoader loader(x, y, 5, /*shuffle=*/true, 7);
  std::vector<int> seen(static_cast<std::size_t>(n), 0);
  Batch batch;
  index_t total = 0;
  while (loader.next(batch)) {
    for (index_t b = 0; b < batch.size(); ++b) {
      ++seen[static_cast<std::size_t>(batch.x(b, 0))];
      // x/y pairing must survive the shuffle
      ASSERT_EQ(batch.x(b, 0), batch.y(b, 0));
    }
    total += batch.size();
  }
  EXPECT_EQ(total, n);
  for (const int s : seen) EXPECT_EQ(s, 1);
}

TEST(DataLoader, LastBatchIsShort) {
  TensorF x({10, 1}), y({10, 1});
  DataLoader loader(x, y, 4, false);
  Batch batch;
  std::vector<index_t> sizes;
  while (loader.next(batch)) sizes.push_back(batch.size());
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[2], 2);
  EXPECT_EQ(loader.num_batches(), 3);
}

TEST(DataLoader, ShuffleChangesOrderBetweenEpochs) {
  const index_t n = 64;
  TensorF x({n, 1}), y({n, 1});
  for (index_t i = 0; i < n; ++i) x(i, 0) = static_cast<float>(i);
  DataLoader loader(x, y, n, true, 5);
  Batch a, b;
  loader.next(a);
  loader.start_epoch();
  loader.next(b);
  int diffs = 0;
  for (index_t i = 0; i < n; ++i) {
    if (a.x(i, 0) != b.x(i, 0)) ++diffs;
  }
  EXPECT_GT(diffs, 10);
}

TEST(DataLoader, NoShuffleKeepsOrder) {
  TensorF x({5, 1}), y({5, 1});
  for (index_t i = 0; i < 5; ++i) x(i, 0) = static_cast<float>(i);
  DataLoader loader(x, y, 2, false);
  Batch batch;
  loader.next(batch);
  EXPECT_EQ(batch.x(0, 0), 0.0f);
  EXPECT_EQ(batch.x(1, 0), 1.0f);
}

TEST(DataLoader, MismatchedSampleCountsRejected) {
  TensorF x({4, 1}), y({5, 1});
  EXPECT_THROW(DataLoader(x, y, 2), CheckError);
}

// --- Serialization ------------------------------------------------------------------

TEST(Serialize, RoundTripRestoresValues) {
  Rng rng(70);
  Linear a(3, 4, rng), b(3, 4, rng);
  // Give b different values, then load a's checkpoint into it.
  const std::string path = testing::TempDir() + "/params_test.tnn";
  save_parameters(path, a.parameters());
  load_parameters(path, b.parameters());
  EXPECT_EQ(b.weight().value.span().size(), a.weight().value.span().size());
  for (index_t i = 0; i < a.weight().value.size(); ++i) {
    ASSERT_EQ(a.weight().value[i], b.weight().value[i]);
  }
  for (index_t i = 0; i < a.bias().value.size(); ++i) {
    ASSERT_EQ(a.bias().value[i], b.bias().value[i]);
  }
  std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchRejected) {
  Rng rng(71);
  Linear a(3, 4, rng);
  Linear c(3, 5, rng);  // same names, different shapes
  const std::string path = testing::TempDir() + "/params_mismatch.tnn";
  save_parameters(path, a.parameters());
  EXPECT_THROW(load_parameters(path, c.parameters()), CheckError);
  std::remove(path.c_str());
}

TEST(Serialize, MetadataRoundTrip) {
  Rng rng(73);
  Linear a(2, 3, rng), b(2, 3, rng);
  const std::string path = testing::TempDir() + "/params_meta.tnn";
  const Metadata meta{{"norm_mean", -0.125}, {"norm_std", 2.5},
                      {"dt_tc", 0.005}};
  save_parameters(path, a.parameters(), meta);
  Metadata loaded;
  load_parameters(path, b.parameters(), &loaded);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded.at("norm_mean"), -0.125);
  EXPECT_DOUBLE_EQ(loaded.at("norm_std"), 2.5);
  EXPECT_DOUBLE_EQ(loaded.at("dt_tc"), 0.005);
  std::remove(path.c_str());
}

TEST(Serialize, EmptyMetadataByDefault) {
  Rng rng(74);
  Linear a(2, 2, rng);
  const std::string path = testing::TempDir() + "/params_nometa.tnn";
  save_parameters(path, a.parameters());
  Metadata loaded{{"stale", 1.0}};
  load_parameters(path, a.parameters(), &loaded);
  EXPECT_TRUE(loaded.empty());  // cleared, nothing stored
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileRejected) {
  Rng rng(72);
  Linear a(2, 2, rng);
  EXPECT_THROW(load_parameters("/nonexistent/path.tnn", a.parameters()),
               CheckError);
}

}  // namespace
}  // namespace turb::nn
