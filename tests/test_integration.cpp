// Cross-module integration tests: the pipelines the examples and benches
// rely on, exercised end-to-end at miniature scale.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/turbfno.hpp"
#include "util/rng.hpp"

namespace turb {
namespace {

TEST(Integration, DatasetVorticityIsCurlOfStoredVelocity) {
  data::GeneratorConfig gen;
  gen.grid = 16;
  gen.reynolds = 200.0;
  gen.burn_in_tc = 0.05;
  gen.t_end_tc = 0.1;
  gen.dt_tc = 0.05;
  const data::SnapshotSeries series = data::generate_sample(gen, 0);
  const index_t frame = 16 * 16;
  for (index_t s = 0; s < series.steps(); ++s) {
    TensorD u1({16, 16}), u2({16, 16});
    for (index_t i = 0; i < frame; ++i) {
      u1[i] = series.u1[s * frame + i];
      u2[i] = series.u2[s * frame + i];
    }
    const TensorD omega = ns::vorticity_from_velocity(u1, u2);
    for (index_t i = 0; i < frame; ++i) {
      // Stored as float; compare at float precision relative to the scale.
      ASSERT_NEAR(series.omega[s * frame + i], omega[i],
                  1e-4 * std::max(1.0, omega.max_abs()));
    }
  }
}

TEST(Integration, LbmAndNsAgreeOnViscousDecayRate) {
  // The unit bridge: an LBM run at Reynolds Re and an NS run at viscosity
  // 1/Re must dissipate kinetic energy at the same non-dimensional rate.
  const index_t n = 32;
  const double re = 200.0;  // well resolved at 32² so both discretisations
                            // sit in their asymptotic regime
  const double u0 = 0.05;

  lbm::LbmConfig lcfg;
  lcfg.nx = n;
  lcfg.ny = n;
  lcfg.viscosity = u0 * static_cast<double>(n) / re;
  lbm::LbmSolver lbm_solver(lcfg);
  Rng rng(5);
  const auto field = lbm::random_vortex_velocity(n, n, 3.0, u0, rng);
  lbm_solver.initialize(field.u1, field.u2);

  ns::NsConfig ncfg;
  ncfg.n = n;
  ncfg.viscosity = 1.0 / re;
  ncfg.dt = 5e-4;
  ns::SpectralNsSolver ns_solver(ncfg);
  // Non-dimensionalise the LBM IC: velocities scale by 1/u0.
  TensorD u1n = field.u1, u2n = field.u2;
  u1n *= 1.0 / u0;
  u2n *= 1.0 / u0;
  ns_solver.set_velocity(u1n, u2n);

  // Advance both for 0.2 t_c.
  const double horizon_tc = 0.2;
  const auto lbm_steps = static_cast<index_t>(
      horizon_tc * static_cast<double>(n) / u0);
  lbm_solver.step(lbm_steps);
  ns_solver.step(static_cast<index_t>(horizon_tc / ncfg.dt));

  const double lbm_ratio = [&] {
    const TensorD u1 = lbm_solver.velocity_x();
    const TensorD u2 = lbm_solver.velocity_y();
    return analysis::kinetic_energy(u1, u2) /
           analysis::kinetic_energy(field.u1, field.u2);
  }();
  TensorD v1, v2;
  ns_solver.velocity(v1, v2);
  const double ns_ratio = analysis::kinetic_energy(v1, v2) /
                          analysis::kinetic_energy(u1n, u2n);
  EXPECT_NEAR(lbm_ratio, ns_ratio, 0.05)
      << "LBM KE ratio " << lbm_ratio << " vs NS " << ns_ratio;
}

TEST(Integration, FnoLearnsPointwiseScalingAcrossResolutions) {
  // Train y = -0.5 x at 16² and evaluate at 32²: the learned operator is
  // resolution-agnostic (the neural-operator property the paper relies on).
  Rng rng(9);
  fno::FnoConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 1;
  cfg.width = 4;
  cfg.n_layers = 2;
  cfg.n_modes = {8, 8};
  cfg.lifting_channels = 8;
  cfg.projection_channels = 8;
  fno::Fno model(cfg, rng);

  TensorF x({16, 1, 16, 16});
  x.fill_normal(rng, 0.0, 1.0);
  TensorF y = x;
  y *= -0.5f;
  nn::DataLoader loader(x, y, 8, true, 3);
  fno::TrainConfig tc;
  tc.epochs = 150;
  tc.lr = 5e-3;
  tc.weight_decay = 0.0;
  const fno::TrainResult res = fno::train_fno(model, loader, tc);
  ASSERT_LT(res.final_train_loss(), 0.08) << "failed to fit the operator";

  // Same operator, finer grid, smooth input (within the trained band).
  const auto fine = lbm::random_vortex_velocity(32, 32, 3.0, 1.0, rng);
  TensorF xf({1, 1, 32, 32});
  for (index_t i = 0; i < 32 * 32; ++i) {
    xf[i] = static_cast<float>(fine.u1[i]);
  }
  const TensorF yf = model.forward(xf);
  TensorF expected = xf;
  expected *= -0.5f;
  EXPECT_LT(nn::relative_l2_error(yf, expected), 0.25);
}

/// Surrogate with controllable error: a true PDE step followed by a
/// multiplicative energy drift — a clean stand-in for an imperfect learned
/// emulator. Isolates the HybridScheduler's value from training quality
/// (the trained-model demonstration lives in bench_fig9_longterm_error).
class DriftingSurrogate final : public core::Propagator {
 public:
  DriftingSurrogate(ns::NsConfig cfg, double dt_snap, double drift)
      : solver_(cfg), pde_(std::make_unique<ns::SpectralNsSolver>(cfg),
                          dt_snap),
        drift_(drift) {}

  std::vector<core::FieldSnapshot> advance(const core::History& history,
                                           index_t count) override {
    auto out = pde_.advance(history, count);
    // Every surrogate *snapshot* loses a fraction of its energy — the
    // per-step systematic bias a data-driven emulator accumulates. Snapshot
    // i of this window compounds i+1 drift applications so the bias grows
    // per snapshot regardless of how the rollout is chunked into advances.
    double factor = 1.0;
    for (auto& snap : out) {
      factor *= 1.0 - drift_;
      snap.u1 *= factor;
      snap.u2 *= factor;
    }
    return out;
  }
  [[nodiscard]] double dt_snap() const override { return pde_.dt_snap(); }
  [[nodiscard]] index_t min_history() const override { return 1; }
  [[nodiscard]] std::string name() const override { return "surrogate"; }

 private:
  ns::SpectralNsSolver solver_;
  core::PdePropagator pde_;
  double drift_;
};

TEST(Integration, HybridBoundsSurrogateErrorAccumulation) {
  // The scheduler mechanism behind the paper's Fig. 9: a drifting surrogate
  // compounds its bias every snapshot; interleaving exact PDE windows halves
  // the number of biased steps, so the hybrid's kinetic-energy error must
  // stay strictly below the pure surrogate's.
  const index_t n = 24;
  const double dt_snap = 0.02;
  ns::NsConfig ncfg;
  ncfg.n = n;
  ncfg.viscosity = 2e-3;
  ncfg.dt = dt_snap / 10.0;

  Rng rng(11);
  const auto field = lbm::random_vortex_velocity(n, n, 3.0, 1.0, rng);
  core::History seed;
  core::FieldSnapshot snap;
  snap.t = 0.0;
  snap.u1 = field.u1;
  snap.u2 = field.u2;
  seed.push_back(std::move(snap));

  core::PdePropagator reference(std::make_unique<ns::SpectralNsSolver>(ncfg),
                                dt_snap);
  DriftingSurrogate surrogate(ncfg, dt_snap, /*drift=*/0.02);
  core::PdePropagator pde_window(std::make_unique<ns::SpectralNsSolver>(ncfg),
                                 dt_snap);

  const index_t horizon = 20;
  core::RolloutRequest roll_req;
  roll_req.seed = seed;
  roll_req.steps = horizon;
  const auto ref_run = core::run_rollout(reference, roll_req);
  const auto sur_run = core::run_rollout(surrogate, roll_req);
  core::HybridConfig hcfg;
  hcfg.fno_snapshots = 2;
  hcfg.pde_snapshots = 2;
  core::HybridScheduler scheduler(surrogate, pde_window, hcfg);
  const auto hybrid_run = scheduler.run(seed, horizon);

  double sur_err = 0.0, hybrid_err = 0.0;
  for (std::size_t i = 0; i < ref_run.metrics.size(); ++i) {
    const double ref = ref_run.metrics[i].kinetic_energy;
    sur_err += core::percentage_error(sur_run.metrics[i].kinetic_energy, ref);
    hybrid_err +=
        core::percentage_error(hybrid_run.metrics[i].kinetic_energy, ref);
  }
  EXPECT_LT(hybrid_err, 0.8 * sur_err)
      << "hybrid cumulative KE error " << hybrid_err << " vs pure surrogate "
      << sur_err;
  // Final-state error: the pure surrogate has applied the drift at every
  // snapshot, the hybrid only on its windows.
  EXPECT_LT(core::percentage_error(
                hybrid_run.metrics.back().kinetic_energy,
                ref_run.metrics.back().kinetic_energy),
            core::percentage_error(sur_run.metrics.back().kinetic_energy,
                                   ref_run.metrics.back().kinetic_energy));
}

TEST(Integration, CheckpointRoundTripPreservesPredictions) {
  Rng rng(17);
  fno::FnoConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 2;
  cfg.width = 4;
  cfg.n_layers = 2;
  cfg.n_modes = {4, 4};
  cfg.lifting_channels = 8;
  cfg.projection_channels = 8;
  fno::Fno model(cfg, rng);
  TensorF x({1, 2, 8, 8});
  x.fill_normal(rng, 0.0, 1.0);
  const TensorF before = model.forward(x);

  const std::string path = testing::TempDir() + "/fno_ckpt.tnn";
  nn::save_parameters(path, model.parameters());

  fno::Fno other(cfg, rng);  // different random init
  nn::load_parameters(path, other.parameters());
  const TensorF after = other.forward(x);
  for (index_t i = 0; i < before.size(); ++i) {
    ASSERT_EQ(before[i], after[i]);
  }
  std::remove(path.c_str());
}

TEST(Integration, EnergySpectrumOfDecayingFlowSteepens) {
  // Physical sanity: viscous decay removes small scales faster, so the
  // high-k tail of E(k) falls relative to the low-k part.
  const index_t n = 48;
  ns::NsConfig cfg;
  cfg.n = n;
  cfg.viscosity = 1e-3;
  cfg.dt = 5e-4;
  ns::SpectralNsSolver solver(cfg);
  Rng rng(23);
  const auto field = lbm::random_vortex_velocity(n, n, 8.0, 1.0, rng);
  solver.set_velocity(field.u1, field.u2);

  const auto tail_fraction = [&] {
    TensorD u1, u2;
    solver.velocity(u1, u2);
    const auto spec = ns::energy_spectrum(u1, u2);
    double low = 0.0, high = 0.0;
    for (std::size_t k = 1; k < spec.size(); ++k) {
      (k <= spec.size() / 2 ? low : high) += spec[k];
    }
    return high / (low + high);
  };
  const double before = tail_fraction();
  solver.step(800);
  const double after = tail_fraction();
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace turb
