// Parameterised property sweeps across module boundaries: invariants that
// must hold for whole families of shapes and configurations, not just the
// single instances the unit tests pin down.
#include <gtest/gtest.h>

#include <cmath>

#include "core/turbfno.hpp"
#include "fft/fftnd.hpp"
#include "nn/physics_loss.hpp"
#include "nn/sobolev_loss.hpp"
#include "util/rng.hpp"

namespace turb {
namespace {

// --- FFT: round trip over a grid of (batch, channels, H, W) shapes ----------

class FftShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(FftShapeSweep, Rfft2RoundTripIsExact) {
  const auto [n, c, h, w] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 1000 + c * 100 + h + w));
  TensorD x({n, c, h, w});
  x.fill_normal(rng, 0.0, 1.0);
  const auto spec = fft::rfftn(x, 2);
  const TensorD back = fft::irfftn(spec, 2, w);
  for (index_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(back[i], x[i], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FftShapeSweep,
    ::testing::Values(std::tuple{1, 1, 4, 4}, std::tuple{2, 3, 8, 16},
                      std::tuple{1, 2, 16, 8}, std::tuple{3, 1, 32, 32},
                      std::tuple{1, 4, 6, 10}, std::tuple{2, 2, 12, 20}));

// --- FNO: every (in, out, width, modes) family keeps shape and trains -------

struct FnoFamily {
  index_t in_ch, out_ch, width, modes, layers;
};

class FnoFamilySweep : public ::testing::TestWithParam<FnoFamily> {};

TEST_P(FnoFamilySweep, ShapeAndGradientSanity) {
  const FnoFamily fam = GetParam();
  Rng rng(99);
  fno::FnoConfig cfg;
  cfg.in_channels = fam.in_ch;
  cfg.out_channels = fam.out_ch;
  cfg.width = fam.width;
  cfg.n_layers = fam.layers;
  cfg.n_modes = {fam.modes, fam.modes};
  cfg.lifting_channels = 8;
  cfg.projection_channels = 8;
  fno::Fno model(cfg, rng);

  TensorF x({2, fam.in_ch, 16, 16});
  x.fill_normal(rng, 0.0, 1.0);
  const TensorF y = model.forward(x);
  ASSERT_EQ(y.shape(), (Shape{2, fam.out_ch, 16, 16}));
  ASSERT_TRUE(std::isfinite(static_cast<double>(y.max_abs())));

  // One backward pass produces finite, not-identically-zero gradients in
  // every parameter tensor.
  model.zero_grad();
  TensorF g(y.shape());
  g.fill_normal(rng, 0.0, 1.0);
  const TensorF gx = model.backward(g);
  ASSERT_EQ(gx.shape(), x.shape());
  for (nn::Parameter* p : model.parameters()) {
    ASSERT_TRUE(std::isfinite(p->grad.max_abs())) << p->name;
    ASSERT_GT(p->grad.max_abs(), 0.0) << p->name << " got no gradient";
  }
  // Closed-form parameter count agrees for every family member.
  ASSERT_EQ(model.parameter_count(), fno_parameter_count(cfg));
}

INSTANTIATE_TEST_SUITE_P(
    Families, FnoFamilySweep,
    ::testing::Values(FnoFamily{1, 1, 4, 4, 1}, FnoFamily{10, 5, 6, 8, 2},
                      FnoFamily{10, 10, 4, 4, 4}, FnoFamily{10, 1, 8, 8, 2},
                      FnoFamily{3, 7, 4, 12, 2}, FnoFamily{2, 2, 10, 6, 3}));

// --- rollout: total steps invariant for every (cin, cout, steps) ------------

class RolloutSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RolloutSweep, ProducesExactlyRequestedSteps) {
  const auto [cin, cout, steps] = GetParam();
  Rng rng(7);
  fno::FnoConfig cfg;
  cfg.in_channels = cin;
  cfg.out_channels = cout;
  cfg.width = 4;
  cfg.n_layers = 1;
  cfg.n_modes = {4, 4};
  cfg.lifting_channels = 4;
  cfg.projection_channels = 4;
  fno::Fno model(cfg, rng);
  TensorF history({cin, 8, 8});
  history.fill_normal(rng, 0.0, 1.0);
  infer::InferenceEngine engine(model);
  TensorF traj;
  engine.rollout_channels_into(history, steps, traj);
  EXPECT_EQ(traj.shape(), (Shape{steps, 8, 8}));
  EXPECT_TRUE(std::isfinite(static_cast<double>(traj.max_abs())));
}

INSTANTIATE_TEST_SUITE_P(Combos, RolloutSweep,
                         ::testing::Values(std::tuple{4, 1, 7},
                                           std::tuple{4, 2, 7},
                                           std::tuple{4, 4, 7},
                                           std::tuple{2, 5, 9},
                                           std::tuple{6, 3, 4},
                                           std::tuple{1, 1, 3}));

// --- LBM: conservation for every collision operator -------------------------

class CollisionSweep : public ::testing::TestWithParam<lbm::Collision> {};

TEST_P(CollisionSweep, MassAndMomentumConserved) {
  lbm::LbmConfig cfg;
  cfg.nx = 24;
  cfg.ny = 24;
  cfg.viscosity = 0.01;
  cfg.collision = GetParam();
  lbm::LbmSolver solver(cfg);
  Rng rng(17);
  const auto field = lbm::random_vortex_velocity(24, 24, 3.0, 0.03, rng);
  solver.initialize(field.u1, field.u2);
  const double m0 = solver.total_mass();
  // Total momentum of a periodic force-free lattice is conserved exactly.
  const auto momentum = [&] {
    const TensorD rho = solver.density();
    const TensorD u1 = solver.velocity_x();
    double px = 0.0;
    for (index_t c = 0; c < rho.size(); ++c) px += rho[c] * u1[c];
    return px;
  };
  const double px0 = momentum();
  solver.step(150);
  EXPECT_NEAR(solver.total_mass(), m0, 1e-9 * m0);
  EXPECT_NEAR(momentum(), px0, 1e-9 * (std::abs(px0) + 1.0));
  EXPECT_FALSE(solver.has_blown_up());
}

INSTANTIATE_TEST_SUITE_P(Operators, CollisionSweep,
                         ::testing::Values(lbm::Collision::kBgk,
                                           lbm::Collision::kEntropic,
                                           lbm::Collision::kMrt));

// --- losses: gradients descend for every loss family ------------------------

enum class LossKind { kMse, kRelL2, kSobolev, kPhysics };

class LossSweep : public ::testing::TestWithParam<LossKind> {};

TEST_P(LossSweep, GradientStepReducesLoss) {
  Rng rng(23);
  TensorF pred({2, 2, 8, 8}), target({2, 2, 8, 8});
  pred.fill_normal(rng, 0.0, 1.0);
  target.fill_normal(rng, 0.0, 1.0);
  const auto eval = [&](const TensorF& p) -> nn::LossResult {
    switch (GetParam()) {
      case LossKind::kMse:
        return nn::mse_loss(p, target);
      case LossKind::kRelL2:
        return nn::relative_l2_loss(p, target);
      case LossKind::kSobolev:
        return nn::sobolev_loss(p, target, 0.5);
      case LossKind::kPhysics:
        break;
    }
    return nn::physics_informed_loss(p, target, 1, 0.5);
  };
  const nn::LossResult res = eval(pred);
  ASSERT_GT(res.value, 0.0);
  // A small step along −grad must reduce the loss (first-order descent).
  TensorF stepped = pred;
  const double gnorm2 = res.grad.squared_norm();
  ASSERT_GT(gnorm2, 0.0);
  const float lr = static_cast<float>(0.01 * res.value / gnorm2);
  stepped.add_scaled(res.grad, -lr);
  EXPECT_LT(eval(stepped).value, res.value);
}

INSTANTIATE_TEST_SUITE_P(Kinds, LossSweep,
                         ::testing::Values(LossKind::kMse, LossKind::kRelL2,
                                           LossKind::kSobolev,
                                           LossKind::kPhysics));

// --- hybrid: snapshot count invariant across window configurations ----------

class WindowSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WindowSweep, HybridProducesExactCount) {
  const auto [fno_w, pde_w, total] = GetParam();
  Rng rng(31);
  fno::FnoConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 2;
  cfg.width = 4;
  cfg.n_layers = 1;
  cfg.n_modes = {4, 4};
  cfg.lifting_channels = 4;
  cfg.projection_channels = 4;
  fno::Fno model(cfg, rng);
  core::FnoPropagator fno_prop(model, analysis::Normalizer(0.0, 1.0), 0.01);

  ns::NsConfig ncfg;
  ncfg.n = 16;
  ncfg.viscosity = 1e-3;
  ncfg.dt = 1e-3;
  core::PdePropagator pde_prop(std::make_unique<ns::SpectralNsSolver>(ncfg),
                               0.01);

  core::History seed;
  for (int s = 0; s < 3; ++s) {
    core::FieldSnapshot snap;
    snap.t = 0.01 * s;
    const auto field = lbm::random_vortex_velocity(16, 16, 3.0, 1.0, rng);
    snap.u1 = field.u1;
    snap.u2 = field.u2;
    seed.push_back(std::move(snap));
  }
  core::HybridConfig hcfg;
  hcfg.fno_snapshots = fno_w;
  hcfg.pde_snapshots = pde_w;
  core::HybridScheduler scheduler(fno_prop, pde_prop, hcfg);
  const auto result = scheduler.run(seed, total);
  EXPECT_EQ(static_cast<int>(result.trajectory.size()), total);
  EXPECT_EQ(result.metrics.size(), result.trajectory.size());
  EXPECT_EQ(result.producer.size(), result.trajectory.size());
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(std::tuple{1, 1, 5},
                                           std::tuple{2, 3, 11},
                                           std::tuple{5, 1, 8},
                                           std::tuple{3, 0, 6},
                                           std::tuple{0, 4, 9}));

}  // namespace
}  // namespace turb
