#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <limits>

#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"
#include "util/isa.hpp"
#include "util/rng.hpp"

namespace turb {
namespace {

TEST(Shape, NumelAndStrides) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(numel(s), 24);
  const Shape strides = row_major_strides(s);
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(Shape, EmptyShapeIsScalar) {
  const Shape s{};
  EXPECT_EQ(numel(s), 1);
}

TEST(Shape, ToString) {
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_EQ(shape_to_string({}), "[]");
}

TEST(Tensor, ZeroInitialised) {
  TensorD t({3, 4});
  for (index_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0);
  EXPECT_EQ(t.size(), 12);
  EXPECT_EQ(t.rank(), 2u);
}

TEST(Tensor, FillValueConstructor) {
  TensorF t({2, 2}, 3.5f);
  for (index_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 3.5f);
}

TEST(Tensor, MultiIndexRowMajor) {
  TensorD t({2, 3, 4});
  t(1, 2, 3) = 7.0;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 7.0);
  t(0, 0, 0) = 1.0;
  EXPECT_EQ(t[0], 1.0);
}

TEST(Tensor, FlatIndexMatchesStrides) {
  TensorD t({5, 7});
  EXPECT_EQ(t.flat_index(3, 2), 3 * 7 + 2);
}

TEST(Tensor, ReshapePreservesData) {
  TensorD t({2, 6});
  for (index_t i = 0; i < 12; ++i) t[i] = static_cast<double>(i);
  t.reshape({3, 4});
  EXPECT_EQ(t(2, 3), 11.0);
  EXPECT_EQ(t.dim(0), 3);
}

TEST(Tensor, ReshapeBadCountThrows) {
  TensorD t({2, 3});
  EXPECT_THROW(t.reshape({4, 2}), CheckError);
}

TEST(Tensor, ElementwiseOps) {
  TensorD a({4}, 2.0), b({4}, 3.0);
  a += b;
  EXPECT_EQ(a[0], 5.0);
  a -= b;
  EXPECT_EQ(a[1], 2.0);
  a *= 4.0;
  EXPECT_EQ(a[2], 8.0);
  a.add_scaled(b, 0.5);
  EXPECT_EQ(a[3], 9.5);
}

TEST(Tensor, Reductions) {
  TensorD t({4});
  t[0] = 1.0; t[1] = -2.0; t[2] = 3.0; t[3] = -4.0;
  EXPECT_DOUBLE_EQ(t.sum(), -2.0);
  EXPECT_DOUBLE_EQ(t.mean(), -0.5);
  EXPECT_DOUBLE_EQ(t.squared_norm(), 30.0);
  EXPECT_DOUBLE_EQ(t.norm(), std::sqrt(30.0));
  EXPECT_DOUBLE_EQ(t.max_abs(), 4.0);
}

TEST(Tensor, RandomFills) {
  Rng rng(5);
  TensorD t({10000});
  t.fill_uniform(rng, -1.0, 1.0);
  EXPECT_NEAR(t.mean(), 0.0, 0.05);
  for (index_t i = 0; i < t.size(); ++i) {
    ASSERT_GE(t[i], -1.0);
    ASSERT_LT(t[i], 1.0);
  }
  t.fill_normal(rng, 0.0, 2.0);
  EXPECT_NEAR(t.squared_norm() / static_cast<double>(t.size()), 4.0, 0.2);
}

TEST(Tensor, CastConvertsTypes) {
  TensorD d({3}, 1.5);
  const TensorF f = cast<float>(d);
  EXPECT_EQ(f[0], 1.5f);
  EXPECT_EQ(f.shape(), d.shape());
}

TEST(Tensor, ComplexTensor) {
  TensorCF t({2, 2});
  t(0, 1) = {1.0f, -2.0f};
  EXPECT_EQ(t[1].real(), 1.0f);
  EXPECT_EQ(t[1].imag(), -2.0f);
}

// --- GEMM reference checks ------------------------------------------------

template <typename T>
void naive_gemm(index_t m, index_t n, index_t k, const T* a, const T* b,
                T* c) {
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      T acc{};
      for (index_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] = acc;
    }
  }
}

class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, NnMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(91);
  TensorD a({m, k}), b({k, n}), c({m, n}), ref({m, n});
  a.fill_normal(rng, 0.0, 1.0);
  b.fill_normal(rng, 0.0, 1.0);
  gemm_nn<double>(m, n, k, 1.0, a.data(), k, b.data(), n, 0.0, c.data(), n);
  naive_gemm<double>(m, n, k, a.data(), b.data(), ref.data());
  for (index_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], ref[i], 1e-12 * std::max(1.0, std::abs(ref[i])));
  }
}

TEST_P(GemmSizes, TnMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(92);
  TensorD at({k, m}), b({k, n}), c({m, n}), ref({m, n});
  at.fill_normal(rng, 0.0, 1.0);
  b.fill_normal(rng, 0.0, 1.0);
  // Build A = atᵀ explicitly for the reference.
  TensorD a({m, k});
  for (index_t i = 0; i < m; ++i) {
    for (index_t p = 0; p < k; ++p) a(i, p) = at(p, i);
  }
  gemm_tn<double>(m, n, k, 1.0, at.data(), m, b.data(), n, 0.0, c.data(), n);
  naive_gemm<double>(m, n, k, a.data(), b.data(), ref.data());
  for (index_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], ref[i], 1e-12 * std::max(1.0, std::abs(ref[i])));
  }
}

TEST_P(GemmSizes, NtMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(93);
  TensorD a({m, k}), bt({n, k}), c({m, n}), ref({m, n});
  a.fill_normal(rng, 0.0, 1.0);
  bt.fill_normal(rng, 0.0, 1.0);
  TensorD b({k, n});
  for (index_t p = 0; p < k; ++p) {
    for (index_t j = 0; j < n; ++j) b(p, j) = bt(j, p);
  }
  gemm_nt<double>(m, n, k, 1.0, a.data(), k, bt.data(), k, 0.0, c.data(), n);
  naive_gemm<double>(m, n, k, a.data(), b.data(), ref.data());
  for (index_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], ref[i], 1e-12 * std::max(1.0, std::abs(ref[i])));
  }
}

// n values straddle the kPanel = 8 register tile: exact multiples (8, 64,
// 24), panel + tail (17, 23), tail only (1, 5, 7, 9), and both k parities
// for the unroll-by-two loop.
INSTANTIATE_TEST_SUITE_P(Shapes, GemmSizes,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{3, 5, 7},
                                           std::tuple{8, 8, 8},
                                           std::tuple{16, 1, 32},
                                           std::tuple{1, 64, 5},
                                           std::tuple{33, 17, 9},
                                           std::tuple{2, 24, 3},
                                           std::tuple{4, 23, 6},
                                           std::tuple{5, 9, 1}));

TEST(Gemm, BetaVariantsMatchNaive) {
  // beta ∈ {0, 1, 2} hits the three accumulator-initialisation branches of
  // the panel kernel (and the hoisted branch pair in gemm_nt); n = 19 makes
  // both the panel body and the tail run.
  const index_t m = 6, n = 19, k = 5;
  Rng rng(94);
  TensorD a({m, k}), b({k, n}), at({k, m}), bt({n, k});
  a.fill_normal(rng, 0.0, 1.0);
  b.fill_normal(rng, 0.0, 1.0);
  for (index_t i = 0; i < m; ++i) {
    for (index_t p = 0; p < k; ++p) at(p, i) = a(i, p);
  }
  for (index_t p = 0; p < k; ++p) {
    for (index_t j = 0; j < n; ++j) bt(j, p) = b(p, j);
  }
  TensorD prod({m, n});
  naive_gemm<double>(m, n, k, a.data(), b.data(), prod.data());
  for (const double beta : {0.0, 1.0, 2.0}) {
    const double alpha = 1.5;
    TensorD c0({m, n});
    Rng crng(95);
    c0.fill_normal(crng, 0.0, 1.0);
    for (int variant = 0; variant < 3; ++variant) {
      TensorD c = c0;
      switch (variant) {
        case 0:
          gemm_nn<double>(m, n, k, alpha, a.data(), k, b.data(), n, beta,
                          c.data(), n);
          break;
        case 1:
          gemm_tn<double>(m, n, k, alpha, at.data(), m, b.data(), n, beta,
                          c.data(), n);
          break;
        default:
          gemm_nt<double>(m, n, k, alpha, a.data(), k, bt.data(), k, beta,
                          c.data(), n);
          break;
      }
      for (index_t i = 0; i < c.size(); ++i) {
        const double ref = alpha * prod[i] + beta * c0[i];
        ASSERT_NEAR(c[i], ref, 1e-12 * std::max(1.0, std::abs(ref)))
            << "variant " << variant << " beta " << beta << " i " << i;
      }
    }
  }
}

/// Scalar nt kernel, verbatim: per output element a single accumulator over
/// ascending p with alpha (and beta) applied once at the end. The panel
/// kernel in gemm.hpp must reproduce this bit-for-bit.
template <typename T>
void scalar_gemm_nt(index_t m, index_t n, index_t k, T alpha, const T* a,
                    index_t lda, const T* b, index_t ldb, T beta, T* c,
                    index_t ldc) {
  for (index_t i = 0; i < m; ++i) {
    const T* ai = a + i * lda;
    T* ci = c + i * ldc;
    for (index_t j = 0; j < n; ++j) {
      const T* bj = b + j * ldb;
      T acc{};
      for (index_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = beta == T{0} ? alpha * acc : alpha * acc + beta * ci[j];
    }
  }
}

/// Checks the panel kernel against the TU-local scalar reference: a bounded
/// (Tier B style) agreement is asserted unconditionally; bitwise equality is
/// *reported* (return value) rather than asserted, because the reference
/// lives in this TU and the kernel in gemm.hpp's — under -ffp-contract=fast
/// the compiler may fuse their multiply-adds differently, which is exactly
/// the per-ISA scoping of the determinism contract (DESIGN.md "Determinism
/// tiers"): bitwise identity is promised within the library's own kernels,
/// not against recompiled copies of them.
template <typename T, typename Tensor>
[[nodiscard]] bool check_nt_bit_equal(index_t m, index_t n, index_t k) {
  Rng rng(1000 + static_cast<std::uint64_t>(m * 131 + n * 17 + k));
  Tensor a({std::max<index_t>(m, 1), std::max<index_t>(k, 1)});
  Tensor bt({std::max<index_t>(n, 1), std::max<index_t>(k, 1)});
  a.fill_normal(rng, 0.0, 1.0);
  bt.fill_normal(rng, 0.0, 1.0);
  bool bitwise = true;
  for (const double beta_d : {0.0, 1.0, 2.0}) {
    const T alpha = static_cast<T>(1.25);
    const T beta = static_cast<T>(beta_d);
    Tensor c0({std::max<index_t>(m, 1), std::max<index_t>(n, 1)});
    Rng crng(7);
    c0.fill_normal(crng, 0.0, 1.0);
    Tensor got = c0, want = c0;
    gemm_nt<T>(m, n, k, alpha, a.data(), k, bt.data(), k, beta, got.data(), n);
    scalar_gemm_nt<T>(m, n, k, alpha, a.data(), k, bt.data(), k, beta,
                      want.data(), n);
    const double eps = std::numeric_limits<T>::epsilon();
    for (index_t i = 0; i < got.size(); ++i) {
      const double bound =
          4.0 * eps * static_cast<double>(k + 2) *
              std::max(1.0, std::abs(static_cast<double>(want[i]))) +
          4.0 * std::numeric_limits<T>::min();
      EXPECT_NEAR(static_cast<double>(got[i]), static_cast<double>(want[i]),
                  bound)
          << "m=" << m << " n=" << n << " k=" << k << " beta=" << beta_d
          << " i=" << i;
      bitwise = bitwise && std::memcmp(&got[i], &want[i], sizeof(T)) == 0;
    }
  }
  return bitwise;
}

TEST(Gemm, NtPanelBitEqualsScalar) {
  // Pin the scalar kernels: the bitwise claim under test is per-ISA, and
  // under avx2 the nt kernel intentionally uses a different (vector-lane)
  // reduction order.
  util::ScopedIsa forced(util::Isa::kScalar);
  // n straddles the 8-wide panel: below (5), exact (8, 16), panel+tail
  // (9, 23, 33); k odd/even exercises the unroll-2 remainder.
  bool bitwise = true;
  for (const auto [m, n, k] :
       {std::tuple<index_t, index_t, index_t>{1, 5, 7},
        {3, 8, 4},
        {2, 9, 5},
        {4, 16, 1},
        {5, 23, 12},
        {7, 33, 9},
        {1, 64, 10}}) {
    bitwise = check_nt_bit_equal<float, TensorF>(m, n, k) && bitwise;
    bitwise = check_nt_bit_equal<double, TensorD>(m, n, k) && bitwise;
  }
  if (!bitwise) {
    GTEST_SKIP()
        << "library gemm_nt and this TU's scalar reference are compiled in "
           "different translation units; -ffp-contract=fast fused their "
           "multiply-adds differently on this host, so cross-TU bitwise "
           "identity is not reproducible here (known hardware/compiler "
           "dependence — triaged in ISSUE 7). The bounded agreement asserted "
           "above held; the in-library bitwise contract is covered by "
           "test_isa.cpp and test_determinism.cpp.";
  }
}

TEST(Gemm, AlphaBetaAccumulate) {
  const index_t m = 2, n = 2, k = 2;
  TensorD a({m, k}, 1.0), b({k, n}, 1.0), c({m, n}, 10.0);
  gemm_nn<double>(m, n, k, 2.0, a.data(), k, b.data(), n, 1.0, c.data(), n);
  // c = 2*(1*1+1*1) + 10 = 14
  for (index_t i = 0; i < c.size(); ++i) EXPECT_DOUBLE_EQ(c[i], 14.0);
}

TEST(Gemm, FloatInstantiation) {
  const index_t m = 4, n = 4, k = 4;
  TensorF a({m, k}, 1.0f), b({k, n}, 2.0f), c({m, n});
  gemm_nn<float>(m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(), n);
  for (index_t i = 0; i < c.size(); ++i) EXPECT_FLOAT_EQ(c[i], 8.0f);
}

}  // namespace
}  // namespace turb
