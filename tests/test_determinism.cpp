// Thread-count determinism contract (see "Parallelism & determinism" in
// DESIGN.md): for a fixed seed, training is bitwise reproducible at any
// parallel width. The tests train the small FNO fixture for 3 epochs at
// widths 1, 2, and 4 (plus once on the process-global pool, whose width
// comes from TURBFNO_THREADS) and require identical loss curves, identical
// serialized weights, and identical held-out rel-L2 — exact equality, no
// tolerances.
//
// The per-width weight dumps are left in the working directory as
// determinism_weights_*.tnn; scripts/check_tier1.sh runs this suite under
// TURBFNO_THREADS=1 and =4 and diffs the dumps across the two runs, which
// extends the contract across processes.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fno/fno.hpp"
#include "fno/trainer.hpp"
#include "nn/dataloader.hpp"
#include "nn/serialize.hpp"
#include "util/checksum.hpp"
#include "util/isa.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace turb::fno {
namespace {

FnoConfig fixture_config() {
  FnoConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 2;
  cfg.width = 8;
  cfg.n_layers = 2;
  cfg.n_modes = {8, 8};
  cfg.lifting_channels = 16;
  cfg.projection_channels = 16;
  return cfg;
}

TensorF random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  TensorF x(std::move(shape));
  x.fill_normal(rng, 0.0, 1.0);
  return x;
}

struct RunArtifacts {
  std::vector<double> losses;     // per-epoch mean train loss
  double rel_l2 = 0.0;            // held-out evaluate_fno error
  std::string weight_bytes;       // serialized parameters, verbatim
};

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// One full fixed-seed training run (12 samples, batch 4, 3 epochs) on
/// whatever pool is current, dumping the final weights to `dump_path`.
RunArtifacts train_once(const std::string& dump_path) {
  Rng rng(123);
  Fno model(fixture_config(), rng);
  nn::DataLoader loader(random_tensor({12, 3, 16, 16}, 77),
                        random_tensor({12, 2, 16, 16}, 78),
                        /*batch_size=*/4, /*shuffle=*/true, /*seed=*/9);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.verbose = false;
  const TrainResult result = train_fno(model, loader, cfg);

  RunArtifacts art;
  for (const EpochStats& stats : result.history) {
    art.losses.push_back(stats.train_loss);
  }
  art.rel_l2 = evaluate_fno(model, random_tensor({6, 3, 16, 16}, 88),
                            random_tensor({6, 2, 16, 16}, 89), 4)
                   .rel_l2;
  nn::save_parameters(dump_path, model.parameters());
  art.weight_bytes = read_bytes(dump_path);
  return art;
}

RunArtifacts train_at_width(std::size_t width) {
  ThreadPool::Scope scope(width);
  return train_once("determinism_weights_t" + std::to_string(width) + ".tnn");
}

void expect_identical(const RunArtifacts& a, const RunArtifacts& b,
                      const std::string& label) {
  ASSERT_EQ(a.losses.size(), b.losses.size()) << label;
  for (std::size_t e = 0; e < a.losses.size(); ++e) {
    // Bitwise: EXPECT_EQ on double, not EXPECT_NEAR.
    EXPECT_EQ(a.losses[e], b.losses[e]) << label << " epoch " << e;
  }
  EXPECT_EQ(a.rel_l2, b.rel_l2) << label;
  EXPECT_TRUE(a.weight_bytes == b.weight_bytes)
      << label << ": serialized weights differ ("
      << a.weight_bytes.size() << " vs " << b.weight_bytes.size()
      << " bytes)";
}

TEST(Determinism, TrainingBitwiseIdenticalAcrossThreadCounts) {
  const RunArtifacts t1 = train_at_width(1);
  const RunArtifacts t2 = train_at_width(2);
  const RunArtifacts t4 = train_at_width(4);

  ASSERT_EQ(t1.losses.size(), 3u);
  // The fixture must actually train (regression guard against a silent
  // no-op run making the comparisons vacuous).
  EXPECT_LT(t1.losses.back(), t1.losses.front());
  EXPECT_FALSE(t1.weight_bytes.empty());

  expect_identical(t1, t2, "threads 1 vs 2");
  expect_identical(t1, t4, "threads 1 vs 4");
}

TEST(Determinism, GlobalPoolMatchesScopedRun) {
  // The global pool's width comes from TURBFNO_THREADS / --threads /
  // hardware_concurrency — whatever it is, the result must equal the
  // scoped width-1 run. check_tier1.sh additionally diffs the dump this
  // test writes across TURBFNO_THREADS=1 and =4 ctest passes.
  const RunArtifacts global_run = train_once("determinism_weights_global.tnn");
  const RunArtifacts t1 = train_at_width(1);
  expect_identical(global_run, t1, "global pool vs scoped width 1");
}

TEST(Determinism, ScalarIsaReproducesSeedFixtureDump) {
  // Golden regression for the scalar reference tier: with the SIMD dispatch
  // forced to scalar, the 3-epoch fixture run must reproduce the exact bytes
  // the pre-dispatch tree produced (recorded when the runtime-ISA layer
  // landed). Any change to the scalar kernels, the dispatch plumbing, or the
  // serialization format that perturbs even one bit shows up here. The CRC is
  // zlib-compatible (util::crc32) over the serialized parameter file.
  //
  // The golden is tied to this toolchain's code generation (-O3 with
  // -ffp-contract=fast); regenerate it deliberately — never loosen it — if
  // the compiler or flags change.
  util::ScopedIsa forced(util::Isa::kScalar);
  ThreadPool::Scope scope(1);
  const RunArtifacts run = train_once("determinism_weights_scalar_golden.tnn");
  EXPECT_EQ(run.weight_bytes.size(), 43656u);
  EXPECT_EQ(util::crc32(run.weight_bytes.data(), run.weight_bytes.size()),
            0x455DD205u);
}

TEST(Determinism, EvaluationBitwiseIdenticalAcrossThreadCounts) {
  // evaluate_fno alone (no training) across widths, fresh model.
  const auto eval_at = [](std::size_t width) {
    ThreadPool::Scope scope(width);
    Rng rng(321);
    Fno model(fixture_config(), rng);
    return evaluate_fno(model, random_tensor({8, 3, 16, 16}, 55),
                        random_tensor({8, 2, 16, 16}, 56), 4)
        .rel_l2;
  };
  const double e1 = eval_at(1);
  EXPECT_EQ(e1, eval_at(2));
  EXPECT_EQ(e1, eval_at(4));
}

}  // namespace
}  // namespace turb::fno
