#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/lyapunov.hpp"
#include "analysis/stats.hpp"
#include "lbm/initializer.hpp"
#include "ns/solver.hpp"
#include "ns/spectral_ops.hpp"
#include "util/rng.hpp"

namespace turb::analysis {
namespace {

TEST(Stats, FieldStatsOnKnownField) {
  TensorD f({4});
  f[0] = 1.0; f[1] = 2.0; f[2] = 3.0; f[3] = 4.0;
  const FieldStats s = field_stats(f);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_NEAR(s.frobenius, std::sqrt(30.0), 1e-12);
}

TEST(Stats, ProjectionOfIdenticalFieldsIsOne) {
  Rng rng(1);
  TensorD f({64});
  f.fill_normal(rng, 0.0, 1.0);
  EXPECT_NEAR(normalized_projection(f, f), 1.0, 1e-12);
}

TEST(Stats, ProjectionOfOrthogonalFieldsIsZero) {
  const index_t n = 64;
  TensorD a({n}), b({n});
  for (index_t i = 0; i < n; ++i) {
    const double x = 2.0 * std::numbers::pi * static_cast<double>(i) / n;
    a[i] = std::sin(x);
    b[i] = std::cos(x);
  }
  EXPECT_NEAR(normalized_projection(a, b), 0.0, 1e-12);
}

TEST(Stats, ProjectionOfOppositeFieldsIsMinusOne) {
  Rng rng(2);
  TensorD a({32});
  a.fill_normal(rng, 0.0, 1.0);
  TensorD b = a;
  b *= -3.0;
  EXPECT_NEAR(normalized_projection(a, b), -1.0, 1e-12);
}

TEST(Stats, PearsonInvariantToAffineMaps) {
  Rng rng(3);
  TensorD a({128});
  a.fill_normal(rng, 0.0, 1.0);
  TensorD b = a;
  b *= 2.5;
  for (index_t i = 0; i < b.size(); ++i) b[i] += 7.0;
  EXPECT_NEAR(pearson_correlation(a, b), 1.0, 1e-12);
}

TEST(Stats, PearsonOfIndependentFieldsNearZero) {
  Rng rng(4);
  TensorD a({20000}), b({20000});
  a.fill_normal(rng, 0.0, 1.0);
  b.fill_normal(rng, 0.0, 1.0);
  EXPECT_NEAR(pearson_correlation(a, b), 0.0, 0.03);
}

TEST(Stats, RelativeL2Difference) {
  TensorD a({2}), b({2});
  a[0] = 3.0; a[1] = 0.0;
  b[0] = 0.0; b[1] = 4.0;
  // ‖a−b‖ = 5, ‖b‖ = 4.
  EXPECT_NEAR(relative_l2_difference(a, b), 1.25, 1e-12);
}

TEST(Stats, KineticEnergyOfTaylorGreen) {
  const auto field = lbm::taylor_green_velocity(64, 64, 1.0);
  // ⟨sin²cos²⟩ = 1/4 per component → KE = ½(¼+¼) = ¼.
  EXPECT_NEAR(kinetic_energy(field.u1, field.u2), 0.25, 1e-12);
}

TEST(Stats, EnstrophyOfTaylorGreen) {
  const auto field = lbm::taylor_green_velocity(64, 64, 1.0);
  const TensorD omega = ns::vorticity_from_velocity(field.u1, field.u2);
  // ω = 2k sin sin with k = 2π → ⟨ω²⟩ = 4k²·¼ = k².
  const double k = 2.0 * std::numbers::pi;
  EXPECT_NEAR(enstrophy(omega), k * k, 1e-9);
}

TEST(Normalizer, FitApplyGivesUnitGaussianStats) {
  Rng rng(5);
  TensorD f({10000});
  f.fill_normal(rng, 3.0, 2.0);
  const Normalizer norm = Normalizer::fit(f);
  EXPECT_NEAR(norm.mean(), 3.0, 0.1);
  EXPECT_NEAR(norm.stddev(), 2.0, 0.1);
  norm.apply(f);
  const FieldStats s = field_stats(f);
  EXPECT_NEAR(s.mean, 0.0, 1e-10);
  EXPECT_NEAR(s.stddev, 1.0, 1e-10);
}

TEST(Normalizer, ApplyInvertRoundTrip) {
  Rng rng(6);
  TensorD f({100});
  f.fill_normal(rng, -1.0, 0.5);
  TensorD orig = f;
  const Normalizer norm(2.0, 3.0);
  norm.apply(f);
  norm.invert(f);
  for (index_t i = 0; i < f.size(); ++i) ASSERT_NEAR(f[i], orig[i], 1e-12);
}

TEST(Normalizer, FloatOverloadMatchesDouble) {
  Rng rng(7);
  TensorF f({50});
  f.fill_normal(rng, 1.0, 2.0);
  TensorF g = f;
  const Normalizer norm(0.5, 2.0);
  norm.apply(g);
  for (index_t i = 0; i < f.size(); ++i) {
    ASSERT_NEAR(g[i], (f[i] - 0.5f) / 2.0f, 1e-6f);
  }
}

TEST(Normalizer, RejectsConstantField) {
  TensorD f({10}, 5.0);
  EXPECT_THROW(Normalizer::fit(f), CheckError);
}

// --- Lyapunov ----------------------------------------------------------------

TEST(Lyapunov, RecoversExactExponentialRate) {
  const double lambda = 2.15;
  const double delta0 = 1e-2;
  LyapunovEstimator est(delta0);
  for (int i = 1; i <= 50; ++i) {
    const double t = 0.01 * i;
    est.record(t, delta0 * std::exp(lambda * t));
  }
  EXPECT_NEAR(est.weighted_exponent(), lambda, 1e-10);
  EXPECT_NEAR(est.lyapunov_time(), 1.0 / lambda, 1e-10);
}

TEST(Lyapunov, SaturationCutoffExcludesPlateau) {
  const double lambda = 1.0;
  const double delta0 = 1e-3;
  LyapunovEstimator est(delta0);
  // Exponential growth until saturation at 1.0, then plateau.
  for (int i = 1; i <= 100; ++i) {
    const double t = 0.1 * i;
    est.record(t, std::min(delta0 * std::exp(lambda * t), 1.0));
  }
  // With all points, the plateau drags the estimate down…
  const double raw = est.weighted_exponent(1.1);
  // …with the cutoff, the growth phase dominates.
  const double cut = est.weighted_exponent(0.5);
  EXPECT_LT(raw, cut);
  EXPECT_NEAR(cut, lambda, 0.05);
}

TEST(Lyapunov, FieldSeparationMatchesNorm) {
  TensorD a({3}), b({3});
  a[0] = 1.0; a[1] = 2.0; a[2] = 2.0;
  EXPECT_NEAR(field_separation(a, b), 3.0, 1e-12);
}

TEST(Lyapunov, NegativeExponentGivesInfiniteTime) {
  LyapunovEstimator est(1.0);
  for (int i = 1; i <= 10; ++i) {
    est.record(0.1 * i, std::exp(-0.5 * 0.1 * i));
  }
  EXPECT_LT(est.weighted_exponent(), 0.0);
  EXPECT_TRUE(std::isinf(est.lyapunov_time()));
}

TEST(Lyapunov, RejectsBadInputs) {
  EXPECT_THROW(LyapunovEstimator(0.0), CheckError);
  LyapunovEstimator est(1e-2);
  EXPECT_THROW(est.record(0.0, 1.0), CheckError);
  EXPECT_THROW(est.record(1.0, 0.0), CheckError);
}

TEST(Lyapunov, TurbulentFlowSeparatesPerturbedTrajectories) {
  // Integration test of the paper's §IV methodology on the real solver:
  // two NS trajectories with a small initial perturbation must separate by
  // orders of magnitude within a convective time at moderate Re.
  ns::NsConfig cfg;
  cfg.n = 48;
  cfg.viscosity = 2e-4;
  cfg.dt = 1e-3;
  ns::SpectralNsSolver a(cfg), b(cfg);
  Rng rng(8);
  const auto field = lbm::random_vortex_velocity(cfg.n, cfg.n, 4.0, 1.0, rng);
  a.set_velocity(field.u1, field.u2);

  // Band-limited perturbation: white noise would sit at high k, where it
  // decays viscously before chaotic amplification can act on it.
  TensorD u1p = field.u1;
  Rng prng(9);
  const auto bump = lbm::random_vortex_velocity(cfg.n, cfg.n, 4.0, 1.0, prng);
  u1p.add_scaled(bump.u1, 1e-6);
  b.set_velocity(u1p, field.u2);

  TensorD a1, a2, b1, b2;
  a.velocity(a1, a2);
  b.velocity(b1, b2);
  const double sep0 = field_separation(a1, b1);
  ASSERT_GT(sep0, 0.0);

  LyapunovEstimator est(sep0);
  for (int block = 0; block < 16; ++block) {
    a.step(100);
    b.step(100);
    a.velocity(a1, a2);
    b.velocity(b1, b2);
    est.record_fields(a.time(), a1, b1);
  }
  // Chaotic separation: a positive finite-time exponent and visible growth
  // over 1.6 convective times.
  EXPECT_GT(est.series().back().separation, 3.0 * sep0);
  EXPECT_GT(est.weighted_exponent(), 0.0);
}

}  // namespace
}  // namespace turb::analysis
