// Robustness layer: the fault-injection corruption matrix for the TNN/TDS
// serializers (truncation at every byte, single bit-flips, duplicate /
// missing parameters, kill-mid-write simulation, v1 backward compatibility),
// the guarded hybrid rollout (forced-divergent propagator → PDE fallback),
// and trainer fault handling (non-finite loss → restore + LR backoff,
// checkpoint/resume).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/fault_injection.hpp"
#include "core/hybrid.hpp"
#include "core/metrics.hpp"
#include "core/pde_propagator.hpp"
#include "core/rollout_api.hpp"
#include "data/generator.hpp"
#include "fno/fno.hpp"
#include "fno/trainer.hpp"
#include "lbm/initializer.hpp"
#include "nn/dataloader.hpp"
#include "nn/linear.hpp"
#include "nn/serialize.hpp"
#include "obs/obs.hpp"
#include "util/atomic_file.hpp"
#include "util/checksum.hpp"
#include "util/precision.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace turb {
namespace {

// --- byte-level helpers --------------------------------------------------

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool file_exists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).good();
}

template <typename T>
void append_pod(std::string& bytes, T v) {
  bytes.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

/// Hand-rolled legacy TNN1 writer (the pre-CRC format) for backward-compat
/// and corruption-matrix tests. Entries are (name, shape, payload) triples.
struct V1Entry {
  std::string name;
  std::vector<std::int64_t> dims;
  std::vector<float> payload;
};

std::string make_tnn1(const std::vector<V1Entry>& entries) {
  std::string bytes = "TNN1";
  append_pod<std::uint32_t>(bytes, static_cast<std::uint32_t>(entries.size()));
  for (const V1Entry& e : entries) {
    append_pod<std::uint32_t>(bytes, static_cast<std::uint32_t>(e.name.size()));
    bytes += e.name;
    append_pod<std::uint32_t>(bytes, static_cast<std::uint32_t>(e.dims.size()));
    for (const std::int64_t d : e.dims) append_pod(bytes, d);
    bytes.append(reinterpret_cast<const char*>(e.payload.data()),
                 e.payload.size() * sizeof(float));
  }
  append_pod<std::uint32_t>(bytes, 0);  // empty metadata
  return bytes;
}

V1Entry entry_from(const nn::Parameter& p) {
  V1Entry e;
  e.name = p.name;
  e.dims.assign(p.value.shape().begin(), p.value.shape().end());
  e.payload.assign(p.value.data(), p.value.data() + p.value.size());
  return e;
}

// --- TNN checkpoint corruption matrix ------------------------------------

TEST(RobustSerialize, V2RoundTripAndMagic) {
  Rng rng(1);
  nn::Linear a(3, 4, rng), b(3, 4, rng);
  const std::string path = temp_path("robust_v2.tnn");
  const nn::Metadata meta{{"dt_tc", 0.01}, {"norm_mean", -1.5}};
  nn::save_parameters(path, a.parameters(), meta);

  const std::string bytes = read_bytes(path);
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 4), "TNN2");

  nn::Metadata loaded;
  nn::load_parameters(path, b.parameters(), &loaded);
  for (index_t i = 0; i < a.weight().value.size(); ++i) {
    ASSERT_EQ(a.weight().value[i], b.weight().value[i]);
  }
  EXPECT_DOUBLE_EQ(loaded.at("dt_tc"), 0.01);
  EXPECT_DOUBLE_EQ(loaded.at("norm_mean"), -1.5);
  std::remove(path.c_str());
}

// --- TNN3 (dtype-tagged, optionally compressed) ---------------------------

TEST(RobustSerialize, V3Fp32RoundTripExactAndMagic) {
  Rng rng(50);
  nn::Linear a(3, 4, rng), b(3, 4, rng);
  const std::string path = temp_path("robust_v3_fp32.tnn");
  const nn::Metadata meta{{"dt_tc", 0.01}};
  nn::SaveOptions opts;  // fp32-tagged v3: payload bytes identical to v2's
  nn::save_parameters(path, a.parameters(), meta, opts);

  EXPECT_EQ(read_bytes(path).substr(0, 4), "TNN3");
  nn::Metadata loaded;
  nn::load_parameters(path, b.parameters(), &loaded);
  for (index_t i = 0; i < a.weight().value.size(); ++i) {
    ASSERT_EQ(a.weight().value[i], b.weight().value[i]);
  }
  EXPECT_DOUBLE_EQ(loaded.at("dt_tc"), 0.01);
  std::remove(path.c_str());
}

TEST(RobustSerialize, V3CompressedRoundTripIsQuantizedExactly) {
  // bf16/fp16 payloads load back as exactly the RNE-rounded values — the
  // quantization happens once at save time, not again at load time.
  for (const util::Precision prec :
       {util::Precision::kBf16, util::Precision::kFp16}) {
    Rng rng(51);
    nn::Linear a(3, 4, rng), b(3, 4, rng);
    const std::string path = temp_path("robust_v3_c.tnn");
    nn::SaveOptions opts;
    opts.precision = prec;
    nn::save_parameters(path, a.parameters(), {}, opts);
    EXPECT_EQ(read_bytes(path).substr(0, 4), "TNN3");
    nn::load_parameters(path, b.parameters());
    for (index_t i = 0; i < a.weight().value.size(); ++i) {
      const float x = a.weight().value[i];
      const float expected =
          prec == util::Precision::kBf16
              ? util::bf16_to_float(util::float_to_bf16(x))
              : util::fp16_to_float(util::float_to_fp16(x));
      ASSERT_EQ(expected, b.weight().value[i])
          << util::precision_name(prec) << " i=" << i;
      if (x != expected) {
        ASSERT_NE(x, b.weight().value[i]);  // quantization really happened
      }
    }
    std::remove(path.c_str());
  }
}

TEST(RobustSerialize, V3FactorizedModelRoundTrip) {
  // A factorized FNO checkpoints through v3 like any parameter set — the
  // factor tensors are ordinary named parameters.
  fno::FnoConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 1;
  cfg.width = 4;
  cfg.n_layers = 2;
  cfg.n_modes = {4, 4};
  cfg.lifting_channels = 8;
  cfg.projection_channels = 8;
  cfg.spectral_kind = nn::SpectralKind::kFactorized;
  Rng rng_a(52), rng_b(53);
  fno::Fno a(cfg, rng_a), b(cfg, rng_b);
  const std::string path = temp_path("robust_v3_fact.tnn");
  nn::SaveOptions opts;
  opts.precision = util::Precision::kBf16;
  nn::save_parameters(path, a.parameters(), {}, opts);
  nn::load_parameters(path, b.parameters());
  const auto& fa =
      dynamic_cast<const nn::FactorizedSpectralConv&>(a.conv(0));
  const auto& fb =
      dynamic_cast<const nn::FactorizedSpectralConv&>(b.conv(0));
  for (std::size_t d = 0; d < 2; ++d) {
    const TensorF& va = fa.factor(d).value;
    const TensorF& vb = fb.factor(d).value;
    for (index_t i = 0; i < va.size(); ++i) {
      ASSERT_EQ(util::bf16_to_float(util::float_to_bf16(va[i])), vb[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(RobustSerialize, V3UnknownDtypeRejected) {
  Rng rng(54);
  nn::Linear a(2, 2, rng);
  const std::string path = temp_path("robust_v3_dtype.tnn");
  nn::SaveOptions opts;
  opts.precision = util::Precision::kBf16;
  nn::save_parameters(path, a.parameters(), {}, opts);
  std::string bytes = read_bytes(path);
  // The first dtype byte sits right after magic, count, name-length, name,
  // rank, and extents of the first parameter. Find it by reconstruction:
  // 4 (magic) + 4 (count) + 4 (name len) + name + 4 (rank) + 8*rank.
  const std::string& name = a.parameters()[0]->name;
  const std::size_t pos = 4 + 4 + 4 + name.size() + 4 + 8 * 2;
  ASSERT_LT(pos, bytes.size());
  bytes[pos] = 7;  // not a known dtype tag
  // Re-stamp the trailing CRC so the corruption reaches the dtype check
  // instead of tripping the checksum gate.
  const std::uint32_t crc =
      util::crc32(bytes.data() + 4, bytes.size() - 4 - 4);
  std::memcpy(bytes.data() + bytes.size() - 4, &crc, 4);
  write_bytes(path, bytes);
  nn::Linear b(2, 2, rng);
  EXPECT_THROW(nn::load_parameters(path, b.parameters()), CheckError);
  std::remove(path.c_str());
}

TEST(RobustSerialize, SaveLeavesNoTmpFile) {
  Rng rng(2);
  nn::Linear a(2, 2, rng);
  const std::string path = temp_path("robust_notmp.tnn");
  nn::save_parameters(path, a.parameters());
  EXPECT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(util::AtomicFileWriter::tmp_path_for(path)));
  std::remove(path.c_str());
}

TEST(RobustSerialize, EveryTruncationRejected) {
  Rng rng(3);
  nn::Linear a(2, 3, rng), scratch(2, 3, rng);
  const std::string path = temp_path("robust_trunc.tnn");
  nn::save_parameters(path, a.parameters(), {{"k", 1.0}});
  const std::string good = read_bytes(path);

  // Truncation at *every* length — a superset of "every section boundary".
  for (std::size_t len = 0; len < good.size(); ++len) {
    write_bytes(path, good.substr(0, len));
    EXPECT_THROW(nn::load_parameters(path, scratch.parameters()), CheckError)
        << "truncation to " << len << " of " << good.size()
        << " bytes was accepted";
  }
  std::remove(path.c_str());
}

TEST(RobustSerialize, EveryBitFlipRejected) {
  Rng rng(4);
  nn::Linear a(2, 3, rng), scratch(2, 3, rng);
  const std::string path = temp_path("robust_flip.tnn");
  nn::save_parameters(path, a.parameters(), {{"k", 2.0}});
  const std::string good = read_bytes(path);

  // Magic flips fail the magic check; everything else — header, payload,
  // metadata, and the checksum itself — is covered by the CRC.
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (const unsigned mask : {0x01u, 0x80u}) {
      std::string bad = good;
      bad[byte] = static_cast<char>(static_cast<unsigned char>(bad[byte]) ^
                                    mask);
      write_bytes(path, bad);
      EXPECT_THROW(nn::load_parameters(path, scratch.parameters()), CheckError)
          << "bit flip (mask 0x" << std::hex << mask << std::dec
          << ") at byte " << byte << " was accepted";
    }
  }
  std::remove(path.c_str());
}

TEST(RobustSerialize, V3EveryTruncationRejected) {
  // Same exhaustive matrix against a compressed v3 file: the 16-bit payload
  // and the dtype bytes shift every section boundary.
  Rng rng(55);
  nn::Linear a(2, 3, rng), scratch(2, 3, rng);
  const std::string path = temp_path("robust_trunc_v3.tnn");
  nn::SaveOptions opts;
  opts.precision = util::Precision::kBf16;
  nn::save_parameters(path, a.parameters(), {{"k", 1.0}}, opts);
  const std::string good = read_bytes(path);

  for (std::size_t len = 0; len < good.size(); ++len) {
    write_bytes(path, good.substr(0, len));
    EXPECT_THROW(nn::load_parameters(path, scratch.parameters()), CheckError)
        << "v3 truncation to " << len << " of " << good.size()
        << " bytes was accepted";
  }
  std::remove(path.c_str());
}

TEST(RobustSerialize, V3EveryBitFlipRejected) {
  Rng rng(56);
  nn::Linear a(2, 3, rng), scratch(2, 3, rng);
  const std::string path = temp_path("robust_flip_v3.tnn");
  nn::SaveOptions opts;
  opts.precision = util::Precision::kFp16;
  nn::save_parameters(path, a.parameters(), {{"k", 2.0}}, opts);
  const std::string good = read_bytes(path);

  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (const unsigned mask : {0x01u, 0x80u}) {
      std::string bad = good;
      bad[byte] = static_cast<char>(static_cast<unsigned char>(bad[byte]) ^
                                    mask);
      write_bytes(path, bad);
      EXPECT_THROW(nn::load_parameters(path, scratch.parameters()), CheckError)
          << "v3 bit flip (mask 0x" << std::hex << mask << std::dec
          << ") at byte " << byte << " was accepted";
    }
  }
  std::remove(path.c_str());
}

TEST(RobustSerialize, FailedLoadLeavesModelUntouched) {
  Rng rng(5);
  nn::Linear a(2, 3, rng), b(2, 3, rng);
  const std::string path = temp_path("robust_strong.tnn");
  nn::save_parameters(path, a.parameters());
  std::string bad = read_bytes(path);
  bad[bad.size() - 1] = static_cast<char>(
      static_cast<unsigned char>(bad[bad.size() - 1]) ^ 0x40u);
  write_bytes(path, bad);

  const std::vector<float> before(
      b.weight().value.data(),
      b.weight().value.data() + b.weight().value.size());
  EXPECT_THROW(nn::load_parameters(path, b.parameters()), CheckError);
  for (index_t i = 0; i < b.weight().value.size(); ++i) {
    ASSERT_EQ(b.weight().value[i], before[static_cast<std::size_t>(i)])
        << "failed load mutated the model";
  }
  std::remove(path.c_str());
}

TEST(RobustSerialize, V1BackwardCompatLoads) {
  Rng rng(6);
  nn::Linear a(3, 2, rng), b(3, 2, rng);
  std::vector<V1Entry> entries;
  for (const nn::Parameter* p : a.parameters()) {
    entries.push_back(entry_from(*p));
  }
  const std::string path = temp_path("robust_v1.tnn");
  write_bytes(path, make_tnn1(entries));

  nn::load_parameters(path, b.parameters());
  for (index_t i = 0; i < a.weight().value.size(); ++i) {
    ASSERT_EQ(a.weight().value[i], b.weight().value[i]);
  }
  for (index_t i = 0; i < a.bias().value.size(); ++i) {
    ASSERT_EQ(a.bias().value[i], b.bias().value[i]);
  }
  std::remove(path.c_str());
}

TEST(RobustSerialize, DuplicateEntryMaskingMissingParameterRejected) {
  // The original bug: a checkpoint holding one parameter twice and another
  // missing satisfied the old `matched == params.size()` completeness check
  // and silently served the missing parameter from its random init.
  Rng rng(7);
  nn::Linear a(3, 2, rng), b(3, 2, rng);
  const std::vector<nn::Parameter*> params = a.parameters();
  ASSERT_EQ(params.size(), 2u);
  const V1Entry weight = entry_from(*params[0]);
  const std::string path = temp_path("robust_dup.tnn");
  write_bytes(path, make_tnn1({weight, weight}));  // weight twice, no bias

  EXPECT_THROW(nn::load_parameters(path, b.parameters()), CheckError);
  std::remove(path.c_str());
}

TEST(RobustSerialize, MissingParameterRejected) {
  Rng rng(8);
  nn::Linear a(3, 2, rng), b(3, 2, rng);
  const std::vector<nn::Parameter*> params = a.parameters();
  const std::string path = temp_path("robust_missing.tnn");
  write_bytes(path, make_tnn1({entry_from(*params[0])}));
  EXPECT_THROW(nn::load_parameters(path, b.parameters()), CheckError);
  std::remove(path.c_str());
}

TEST(RobustSerialize, HugeHeaderFieldsRejectedBeforeAllocation) {
  Rng rng(9);
  nn::Linear b(3, 2, rng);
  const std::string path = temp_path("robust_huge.tnn");

  {  // name_len far beyond the file size
    std::string bytes = "TNN1";
    append_pod<std::uint32_t>(bytes, 1);
    append_pod<std::uint32_t>(bytes, 0x7FFFFFFFu);
    write_bytes(path, bytes);
    EXPECT_THROW(nn::load_parameters(path, b.parameters()), CheckError);
  }
  {  // implausible rank
    std::string bytes = "TNN1";
    append_pod<std::uint32_t>(bytes, 1);
    append_pod<std::uint32_t>(bytes, 1);
    bytes += "w";
    append_pod<std::uint32_t>(bytes, 1000000u);
    write_bytes(path, bytes);
    EXPECT_THROW(nn::load_parameters(path, b.parameters()), CheckError);
  }
  {  // extents whose product overflows / demands a multi-TB payload
    std::string bytes = "TNN1";
    append_pod<std::uint32_t>(bytes, 1);
    append_pod<std::uint32_t>(bytes, 1);
    bytes += "w";
    append_pod<std::uint32_t>(bytes, 2);
    append_pod<std::int64_t>(bytes, std::int64_t{1} << 36);
    append_pod<std::int64_t>(bytes, std::int64_t{1} << 36);
    write_bytes(path, bytes);
    EXPECT_THROW(nn::load_parameters(path, b.parameters()), CheckError);
  }
  std::remove(path.c_str());
}

TEST(RobustSerialize, CorruptRejectionIncrementsCounter) {
  Rng rng(10);
  nn::Linear a(2, 2, rng);
  const std::string path = temp_path("robust_counter.tnn");
  nn::save_parameters(path, a.parameters());
  std::string bad = read_bytes(path);
  bad[bad.size() - 2] = static_cast<char>(
      static_cast<unsigned char>(bad[bad.size() - 2]) ^ 0x10u);
  write_bytes(path, bad);

  const std::int64_t before = obs::counter("robust/corrupt_rejected").value();
  EXPECT_THROW(nn::load_parameters(path, a.parameters()), CheckError);
  EXPECT_GT(obs::counter("robust/corrupt_rejected").value(), before);
  std::remove(path.c_str());
}

TEST(RobustSerialize, AbandonedAtomicWriteLeavesTargetIntact) {
  // Kill-mid-write simulation: an AtomicFileWriter that never commits (the
  // process "died") must leave the previous checkpoint byte-identical and
  // no tmp file behind.
  Rng rng(11);
  nn::Linear a(2, 2, rng), b(2, 2, rng);
  const std::string path = temp_path("robust_crash.tnn");
  nn::save_parameters(path, a.parameters());
  const std::string good = read_bytes(path);

  {
    util::AtomicFileWriter w(path);
    const char garbage[] = "partial garbage from a dying process";
    w.write(garbage, sizeof(garbage));
    // no commit() — the destructor is the crash cleanup path
  }
  EXPECT_EQ(read_bytes(path), good);
  EXPECT_FALSE(file_exists(util::AtomicFileWriter::tmp_path_for(path)));
  nn::load_parameters(path, b.parameters());  // still loads
  std::remove(path.c_str());
}

TEST(RobustSerialize, StaleTmpFromCrashIsIgnoredAndOverwritten) {
  // A hard kill can still leave a stale tmp (no destructor ran). Loaders
  // never open it, and the next save simply replaces it.
  Rng rng(12);
  nn::Linear a(2, 2, rng), b(2, 2, rng);
  const std::string path = temp_path("robust_stale.tnn");
  nn::save_parameters(path, a.parameters());
  write_bytes(util::AtomicFileWriter::tmp_path_for(path), "torn half-write");

  nn::load_parameters(path, b.parameters());  // final path unaffected
  nn::save_parameters(path, a.parameters());  // replaces the stale tmp
  EXPECT_FALSE(file_exists(util::AtomicFileWriter::tmp_path_for(path)));
  std::remove(path.c_str());
}

TEST(RobustSerialize, SaveLoadSaveByteIdenticalAcrossThreadWidths) {
  const std::string path_a = temp_path("robust_rt_a.tnn");
  const std::string path_b = temp_path("robust_rt_b.tnn");
  std::string first;
  for (const std::size_t width : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool::Scope scope(width);
    Rng rng(13);
    nn::Linear a(4, 5, rng), b(4, 5, rng);
    nn::save_parameters(path_a, a.parameters(), {{"dt_tc", 0.25}});
    nn::Metadata meta;
    nn::load_parameters(path_a, b.parameters(), &meta);
    nn::save_parameters(path_b, b.parameters(), meta);
    const std::string bytes_a = read_bytes(path_a);
    EXPECT_EQ(bytes_a, read_bytes(path_b)) << "width " << width;
    if (first.empty()) {
      first = bytes_a;
    } else {
      EXPECT_EQ(first, bytes_a) << "bytes differ across pool widths";
    }
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// --- TDS dataset corruption matrix ---------------------------------------

data::GeneratorConfig tiny_dataset_config() {
  data::GeneratorConfig cfg;
  cfg.grid = 16;
  cfg.u0 = 0.05;
  cfg.reynolds = 200.0;
  cfg.burn_in_tc = 0.05;
  cfg.t_end_tc = 0.15;
  cfg.dt_tc = 0.05;
  cfg.seed = 42;
  return cfg;
}

TEST(RobustDataset, V2RoundTripTruncationAndBitFlips) {
  const data::TurbulenceDataset ds =
      data::generate_ensemble(tiny_dataset_config(), 1);
  const std::string path = temp_path("robust_ds.tds");
  data::save_dataset(path, ds);
  const std::string good = read_bytes(path);
  ASSERT_GE(good.size(), 48u);
  EXPECT_EQ(good.substr(0, 4), "TDS2");

  const data::TurbulenceDataset loaded = data::load_dataset(path);
  ASSERT_EQ(loaded.num_samples(), ds.num_samples());
  for (index_t i = 0; i < ds.samples[0].u1.size(); ++i) {
    ASSERT_EQ(loaded.samples[0].u1[i], ds.samples[0].u1[i]);
  }

  // Truncation at the section boundaries: mid-magic, mid-header, mid-times,
  // mid-payload, mid-CRC.
  for (const std::size_t len :
       {std::size_t{2}, std::size_t{20}, std::size_t{46}, good.size() / 2,
        good.size() - 2}) {
    write_bytes(path, good.substr(0, len));
    EXPECT_THROW(data::load_dataset(path), CheckError)
        << "truncation to " << len << " bytes accepted";
  }
  // Bit flips in the header, payload, and checksum.
  for (const std::size_t byte :
       {std::size_t{5}, std::size_t{13}, std::size_t{60}, good.size() / 2,
        good.size() - 1}) {
    std::string bad = good;
    bad[byte] = static_cast<char>(static_cast<unsigned char>(bad[byte]) ^
                                  0x04u);
    write_bytes(path, bad);
    EXPECT_THROW(data::load_dataset(path), CheckError)
        << "bit flip at byte " << byte << " accepted";
  }
  std::remove(path.c_str());
}

TEST(RobustDataset, V1BackwardCompatLoads) {
  const data::TurbulenceDataset ds =
      data::generate_ensemble(tiny_dataset_config(), 2);
  std::string bytes = "TDS1";
  append_pod(bytes, ds.dt_tc);
  append_pod<std::int64_t>(bytes, ds.num_samples());
  append_pod<std::int64_t>(bytes, ds.samples[0].steps());
  append_pod<std::int64_t>(bytes, ds.samples[0].height());
  append_pod<std::int64_t>(bytes, ds.samples[0].width());
  for (const data::SnapshotSeries& s : ds.samples) {
    for (const double t : s.times) append_pod(bytes, t);
    for (const TensorF* f : {&s.u1, &s.u2, &s.omega}) {
      bytes.append(reinterpret_cast<const char*>(f->data()),
                   static_cast<std::size_t>(f->size()) * sizeof(float));
    }
  }
  const std::string path = temp_path("robust_ds_v1.tds");
  write_bytes(path, bytes);

  const data::TurbulenceDataset loaded = data::load_dataset(path);
  ASSERT_EQ(loaded.num_samples(), 2);
  EXPECT_DOUBLE_EQ(loaded.dt_tc, ds.dt_tc);
  for (index_t i = 0; i < ds.samples[1].omega.size(); ++i) {
    ASSERT_EQ(loaded.samples[1].omega[i], ds.samples[1].omega[i]);
  }
  std::remove(path.c_str());
}

TEST(RobustDataset, HugeHeaderExtentsRejectedBeforeAllocation) {
  const std::string path = temp_path("robust_ds_huge.tds");
  std::string bytes = "TDS1";
  append_pod(bytes, 0.05);
  append_pod<std::int64_t>(bytes, 1);                      // samples
  append_pod<std::int64_t>(bytes, std::int64_t{1} << 29);  // steps
  append_pod<std::int64_t>(bytes, std::int64_t{1} << 29);  // h: product
  append_pod<std::int64_t>(bytes, std::int64_t{1} << 29);  // w: overflows
  write_bytes(path, bytes);
  EXPECT_THROW(data::load_dataset(path), CheckError);

  // A header that merely disagrees with the actual file size.
  std::string small = "TDS1";
  append_pod(small, 0.05);
  append_pod<std::int64_t>(small, 1);
  append_pod<std::int64_t>(small, 4);
  append_pod<std::int64_t>(small, 64);
  append_pod<std::int64_t>(small, 64);
  small += "only a few payload bytes";
  write_bytes(path, small);
  EXPECT_THROW(data::load_dataset(path), CheckError);
  std::remove(path.c_str());
}

// --- guarded hybrid rollouts ---------------------------------------------

constexpr index_t kGrid = 32;
constexpr double kDtSnap = 0.01;

std::unique_ptr<ns::NsSolver> make_solver() {
  ns::NsConfig cfg;
  cfg.n = kGrid;
  cfg.viscosity = 1e-3;
  cfg.dt = 1e-3;
  return std::make_unique<ns::SpectralNsSolver>(cfg);
}

core::History make_seed(index_t n) {
  Rng rng(7);
  const auto field = lbm::random_vortex_velocity(kGrid, kGrid, 4.0, 1.0, rng);
  core::History history;
  core::FieldSnapshot snap;
  snap.t = 0.0;
  snap.u1 = field.u1;
  snap.u2 = field.u2;
  history.push_back(std::move(snap));
  if (n > 1) {
    core::PdePropagator pde(make_solver(), kDtSnap);
    for (auto& s : pde.advance(history, n - 1)) {
      history.push_back(std::move(s));
    }
  }
  return history;
}

bool all_finite(const core::RolloutResult& result) {
  for (const core::SnapshotMetrics& m : result.metrics) {
    if (!std::isfinite(m.kinetic_energy) || !std::isfinite(m.enstrophy)) {
      return false;
    }
  }
  for (const core::FieldSnapshot& s : result.trajectory) {
    for (index_t i = 0; i < s.u1.size(); ++i) {
      if (!std::isfinite(s.u1[i]) || !std::isfinite(s.u2[i])) return false;
    }
  }
  return true;
}

TEST(RolloutGuardTest, NanDivergenceTripsAndFallsBackToPde) {
  core::PdePropagator inner(make_solver(), kDtSnap);
  core::DivergentPropagator divergent(inner, /*healthy_snapshots=*/3,
                                      core::DivergentPropagator::Mode::nan);
  core::PdePropagator pde(make_solver(), kDtSnap);

  core::HybridConfig cfg;
  cfg.fno_snapshots = 4;
  cfg.pde_snapshots = 3;
  cfg.guard.enabled = true;
  cfg.guard.cooldown_snapshots = 3;
  core::HybridScheduler scheduler(divergent, pde, cfg);

  const std::int64_t trips_before = obs::counter("robust/guard_trips").value();
  const core::RolloutResult result = scheduler.run(make_seed(1), 16);

  ASSERT_EQ(result.trajectory.size(), 16u);
  EXPECT_TRUE(all_finite(result)) << "guard let a non-finite snapshot through";
  EXPECT_GT(result.guard_trips(), 0);
  EXPECT_GT(obs::counter("robust/guard_trips").value(), trips_before);
  bool saw_fallback = false;
  for (const std::string& producer : result.producer) {
    if (producer == "pde_fallback") saw_fallback = true;
    // Every surrogate window trips (snapshot 4 of the first window is
    // already past the 3 healthy ones), so no "divergent" snapshot may
    // survive into the trajectory.
    EXPECT_NE(producer, "divergent");
  }
  EXPECT_TRUE(saw_fallback);
  for (const core::GuardEvent& event : result.guard_events) {
    EXPECT_EQ(event.reason, core::GuardTrip::non_finite);
  }
}

TEST(RolloutGuardTest, EnergyBandTripsOnBlowup) {
  core::PdePropagator inner(make_solver(), kDtSnap);
  core::DivergentPropagator divergent(
      inner, /*healthy_snapshots=*/2, core::DivergentPropagator::Mode::blowup,
      /*blowup_factor=*/50.0);
  core::PdePropagator pde(make_solver(), kDtSnap);

  const core::SnapshotMetrics seed_metrics =
      core::compute_metrics(make_seed(1).front());
  core::HybridConfig cfg;
  cfg.fno_snapshots = 3;
  cfg.pde_snapshots = 3;
  cfg.guard.enabled = true;
  cfg.guard.energy_max = 10.0 * seed_metrics.kinetic_energy;
  core::HybridScheduler scheduler(divergent, pde, cfg);

  const core::RolloutResult result = scheduler.run(make_seed(1), 12);
  ASSERT_GT(result.guard_trips(), 0);
  EXPECT_EQ(result.guard_events.front().reason, core::GuardTrip::energy_high);
  // Decaying turbulence: the PDE keeps the energy inside the band, and no
  // blown-up surrogate snapshot reaches the trajectory.
  for (const core::SnapshotMetrics& m : result.metrics) {
    EXPECT_LE(m.kinetic_energy, 10.0 * seed_metrics.kinetic_energy);
  }
}

TEST(RolloutGuardTest, EnabledButUntrippedIsBitwiseIdenticalToDisabled) {
  const core::History seed = make_seed(1);

  const auto run_with = [&seed](bool guarded) {
    core::PdePropagator a(make_solver(), kDtSnap);
    core::PdePropagator b(make_solver(), kDtSnap);
    core::HybridConfig cfg;
    cfg.fno_snapshots = 3;
    cfg.pde_snapshots = 2;
    cfg.guard.enabled = guarded;  // infinite default bands: can never trip
    core::HybridScheduler scheduler(a, b, cfg);
    return scheduler.run(seed, 10);
  };
  const core::RolloutResult plain = run_with(false);
  const core::RolloutResult guarded = run_with(true);

  ASSERT_EQ(plain.trajectory.size(), guarded.trajectory.size());
  EXPECT_TRUE(guarded.guard_events.empty());
  for (std::size_t k = 0; k < plain.trajectory.size(); ++k) {
    for (index_t i = 0; i < plain.trajectory[k].u1.size(); ++i) {
      ASSERT_EQ(plain.trajectory[k].u1[i], guarded.trajectory[k].u1[i]);
      ASSERT_EQ(plain.trajectory[k].u2[i], guarded.trajectory[k].u2[i]);
    }
  }
}

TEST(RolloutGuardTest, EnvelopeStatsSurviveCopyAndClearOnReset) {
  core::GuardConfig cfg;
  cfg.enabled = true;
  core::RolloutGuard guard(cfg);

  // Pristine envelope: min at +inf, maxima at -inf, so the first observed
  // snapshot always tightens all three.
  EXPECT_EQ(guard.stats().energy_min_seen,
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(guard.stats().energy_max_seen,
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(guard.stats().enstrophy_max_seen,
            -std::numeric_limits<double>::infinity());

  const core::History seed = make_seed(3);
  for (const core::FieldSnapshot& snap : seed) {
    (void)guard.check(snap, core::compute_metrics(snap), nullptr);
  }
  const double e_min = guard.stats().energy_min_seen;
  const double e_max = guard.stats().energy_max_seen;
  const double z_max = guard.stats().enstrophy_max_seen;
  EXPECT_TRUE(std::isfinite(e_min));
  EXPECT_LE(e_min, e_max);
  EXPECT_TRUE(std::isfinite(z_max));

  // The observed envelope is part of the per-stream value copy...
  const core::RolloutGuard clone = guard;
  EXPECT_EQ(clone.stats().energy_min_seen, e_min);
  EXPECT_EQ(clone.stats().energy_max_seen, e_max);
  EXPECT_EQ(clone.stats().enstrophy_max_seen, z_max);

  // ...and reset() returns every envelope field to its pristine state; a
  // stale envelope would mislead the next stream's band calibration.
  guard.reset();
  EXPECT_EQ(guard.stats().energy_min_seen,
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(guard.stats().energy_max_seen,
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(guard.stats().enstrophy_max_seen,
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(clone.stats().energy_max_seen, e_max);  // clone unaffected
}

TEST(RolloutGuardTest, ResetRestoresConfiguredBandsAfterCalibration) {
  core::GuardConfig cfg;
  cfg.enabled = true;  // infinite default bands
  core::RolloutGuard guard(cfg);

  const core::FieldSnapshot snap = make_seed(1).front();
  const core::SnapshotMetrics metrics = core::compute_metrics(snap);
  EXPECT_EQ(guard.check(snap, metrics, nullptr), core::GuardTrip::none);

  // A spread calibrator writes a razor-thin band below the actual physics.
  guard.set_energy_band(metrics.kinetic_energy * 2.0,
                        metrics.kinetic_energy * 3.0);
  guard.set_enstrophy_max(metrics.enstrophy * 0.5);
  EXPECT_EQ(guard.check(snap, metrics, nullptr), core::GuardTrip::energy_low);

  // reset() must restore the as-constructed config, not keep the calibrated
  // band: a reused guard would otherwise trip on its first healthy window
  // from the previous stream's stale envelope.
  guard.reset();
  EXPECT_EQ(guard.config().energy_min, cfg.energy_min);
  EXPECT_EQ(guard.config().energy_max, cfg.energy_max);
  EXPECT_EQ(guard.config().enstrophy_max, cfg.enstrophy_max);
  EXPECT_EQ(guard.check(snap, metrics, nullptr), core::GuardTrip::none);
  EXPECT_EQ(guard.stats().trips, 0);
}

TEST(RolloutGuardTest, GuardedPureFnoRequiresCooldown) {
  core::PdePropagator fno_stub(make_solver(), kDtSnap);
  core::PdePropagator pde(make_solver(), kDtSnap);
  core::HybridConfig cfg;
  cfg.fno_snapshots = 4;
  cfg.pde_snapshots = 0;  // pure FNO: no window for the guard to degrade to
  cfg.guard.enabled = true;
  EXPECT_THROW(core::HybridScheduler(fno_stub, pde, cfg), CheckError);
  cfg.guard.cooldown_snapshots = 2;
  EXPECT_NO_THROW(core::HybridScheduler(fno_stub, pde, cfg));
}

TEST(RunSingle, EmptySeedRejected) {
  core::PdePropagator pde(make_solver(), kDtSnap);
  core::RolloutRequest req;
  req.steps = 4;  // seed left empty
  EXPECT_THROW(core::run_rollout(pde, req), CheckError);
}

TEST(RunSingle, SeedShorterThanMinHistoryRejected) {
  /// A propagator demanding a longer input window than the seed provides —
  /// the FNO propagator shape without the model weights.
  class WindowedStub final : public core::Propagator {
   public:
    std::vector<core::FieldSnapshot> advance(const core::History& history,
                                             index_t count) override {
      std::vector<core::FieldSnapshot> out;
      for (index_t i = 0; i < count; ++i) {
        core::FieldSnapshot snap = history.back();
        snap.t += kDtSnap * static_cast<double>(i + 1);
        out.push_back(std::move(snap));
      }
      return out;
    }
    [[nodiscard]] double dt_snap() const override { return kDtSnap; }
    [[nodiscard]] index_t min_history() const override { return 3; }
    [[nodiscard]] std::string name() const override { return "stub"; }
  };
  WindowedStub stub;
  core::RolloutRequest req;
  req.seed = make_seed(1);
  req.steps = 4;
  EXPECT_THROW(core::run_rollout(stub, req), CheckError);
  req.seed = make_seed(3);
  EXPECT_NO_THROW(core::run_rollout(stub, req));
}

// --- trainer fault handling ----------------------------------------------

fno::FnoConfig tiny_fno_config() {
  fno::FnoConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 2;
  cfg.width = 8;
  cfg.n_layers = 2;
  cfg.n_modes = {8, 8};
  cfg.lifting_channels = 16;
  cfg.projection_channels = 16;
  return cfg;
}

TensorF random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  TensorF x(std::move(shape));
  x.fill_normal(rng, 0.0, 1.0);
  return x;
}

TEST(RobustTrainer, ExplodingLrAbortsWithFiniteWeights) {
  Rng rng(123);
  fno::Fno model(tiny_fno_config(), rng);
  nn::DataLoader loader(random_tensor({8, 3, 16, 16}, 77),
                        random_tensor({8, 2, 16, 16}, 78), 4, true, 9);
  fno::TrainConfig cfg;
  cfg.epochs = 10;
  cfg.lr = 1e18;  // guaranteed float overflow within one step
  cfg.max_recoveries = 2;
  cfg.verbose = false;

  const std::int64_t restores_before =
      obs::counter("robust/train_restores").value();
  const fno::TrainResult result = fno::train_fno(model, loader, cfg);

  EXPECT_TRUE(result.aborted);
  EXPECT_GE(result.recoveries, 1);
  EXPECT_GT(obs::counter("robust/train_restores").value(), restores_before);
  for (const nn::Parameter* p : model.parameters()) {
    for (index_t i = 0; i < p->value.size(); ++i) {
      ASSERT_TRUE(std::isfinite(p->value[i]))
          << "non-finite weight survived the abort in " << p->name;
    }
  }
  for (const fno::EpochStats& stats : result.history) {
    EXPECT_TRUE(std::isfinite(stats.train_loss))
        << "a non-finite loss was averaged into EpochStats";
  }
}

TEST(RobustTrainer, FiniteTrainingUnaffectedByFaultMachinery) {
  const auto train_with = [](bool guard) {
    Rng rng(123);
    fno::Fno model(tiny_fno_config(), rng);
    nn::DataLoader loader(random_tensor({8, 3, 16, 16}, 71),
                          random_tensor({8, 2, 16, 16}, 72), 4, true, 9);
    fno::TrainConfig cfg;
    cfg.epochs = 2;
    cfg.verbose = false;
    cfg.abort_on_nonfinite = guard;
    const fno::TrainResult result = fno::train_fno(model, loader, cfg);
    std::vector<float> weights;
    for (const nn::Parameter* p : model.parameters()) {
      weights.insert(weights.end(), p->value.data(),
                     p->value.data() + p->value.size());
    }
    return std::make_pair(result.history, weights);
  };
  const auto [hist_on, weights_on] = train_with(true);
  const auto [hist_off, weights_off] = train_with(false);
  ASSERT_EQ(hist_on.size(), hist_off.size());
  for (std::size_t e = 0; e < hist_on.size(); ++e) {
    EXPECT_EQ(hist_on[e].train_loss, hist_off[e].train_loss);
  }
  EXPECT_EQ(weights_on, weights_off);
}

TEST(RobustTrainer, CheckpointResumeContinuesSchedule) {
  const std::string ckpt = temp_path("robust_resume.tnn");
  std::remove(ckpt.c_str());
  const auto make_loader = [] {
    return nn::DataLoader(random_tensor({8, 3, 16, 16}, 31),
                          random_tensor({8, 2, 16, 16}, 32), 4, true, 9);
  };

  Rng rng_a(55);
  fno::Fno model(tiny_fno_config(), rng_a);
  {
    auto loader = make_loader();
    fno::TrainConfig cfg;
    cfg.epochs = 2;
    cfg.verbose = false;
    cfg.checkpoint_path = ckpt;
    const fno::TrainResult first = fno::train_fno(model, loader, cfg);
    EXPECT_GE(first.checkpoints_written, 1);
    EXPECT_TRUE(file_exists(ckpt));
  }
  Rng rng_b(999);  // resumed weights come from the checkpoint, not this init
  fno::Fno resumed(tiny_fno_config(), rng_b);
  {
    auto loader = make_loader();
    fno::TrainConfig cfg;
    cfg.epochs = 4;
    cfg.verbose = false;
    cfg.checkpoint_path = ckpt;
    cfg.resume = true;
    const fno::TrainResult second = fno::train_fno(resumed, loader, cfg);
    EXPECT_EQ(second.start_epoch, 2);
    ASSERT_EQ(second.history.size(), 2u);
    EXPECT_EQ(second.history.front().epoch, 2);
  }
  for (const nn::Parameter* p : resumed.parameters()) {
    for (index_t i = 0; i < p->value.size(); ++i) {
      ASSERT_TRUE(std::isfinite(p->value[i]));
    }
  }
  // The final checkpoint reflects the full 4-epoch schedule.
  nn::Metadata meta;
  Rng rng_c(1);
  fno::Fno probe(tiny_fno_config(), rng_c);
  nn::load_parameters(ckpt, probe.parameters(), &meta);
  EXPECT_DOUBLE_EQ(meta.at("epoch"), 4.0);
  std::remove(ckpt.c_str());
}

TEST(RobustTrainer, PeriodicCheckpointsAreWritten) {
  const std::string ckpt = temp_path("robust_periodic.tnn");
  std::remove(ckpt.c_str());
  Rng rng(66);
  fno::Fno model(tiny_fno_config(), rng);
  nn::DataLoader loader(random_tensor({8, 3, 16, 16}, 41),
                        random_tensor({8, 2, 16, 16}, 42), 4, true, 9);
  fno::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.verbose = false;
  cfg.checkpoint_path = ckpt;
  cfg.checkpoint_every = 1;
  const fno::TrainResult result = fno::train_fno(model, loader, cfg);
  // Periodic writes after epochs 1, 2, 3 plus the final write at epoch 4.
  EXPECT_EQ(result.checkpoints_written, 4);
  EXPECT_TRUE(file_exists(ckpt));
  EXPECT_FALSE(file_exists(util::AtomicFileWriter::tmp_path_for(ckpt)));
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace turb
