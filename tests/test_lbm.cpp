#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "lbm/initializer.hpp"
#include "lbm/solver.hpp"
#include "ns/spectral_ops.hpp"
#include "util/rng.hpp"

namespace turb::lbm {
namespace {

TEST(D2q9, WeightsSumToOne) {
  double s = 0.0;
  for (const double w : kWeights) s += w;
  EXPECT_NEAR(s, 1.0, 1e-15);
}

TEST(D2q9, LatticeIsotropy) {
  // Σ wᵢ c_{iα} c_{iβ} = c_s² δ_{αβ}
  double xx = 0.0, yy = 0.0, xy = 0.0;
  for (int i = 0; i < kQ; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    xx += kWeights[ui] * kCx[ui] * kCx[ui];
    yy += kWeights[ui] * kCy[ui] * kCy[ui];
    xy += kWeights[ui] * kCx[ui] * kCy[ui];
  }
  EXPECT_NEAR(xx, kCs2, 1e-15);
  EXPECT_NEAR(yy, kCs2, 1e-15);
  EXPECT_NEAR(xy, 0.0, 1e-15);
}

TEST(D2q9, OppositeDirections) {
  for (int i = 0; i < kQ; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const auto oi = static_cast<std::size_t>(kOpposite[ui]);
    EXPECT_EQ(kCx[oi], -kCx[ui]);
    EXPECT_EQ(kCy[oi], -kCy[ui]);
  }
}

TEST(Lbm, InitializationRecoversMacroscopicFields) {
  LbmConfig cfg;
  cfg.nx = 16;
  cfg.ny = 16;
  cfg.viscosity = 0.01;
  LbmSolver solver(cfg);
  const VelocityField field = taylor_green_velocity(16, 16, 0.05);
  solver.initialize(field.u1, field.u2);

  const TensorD rho = solver.density();
  const TensorD u1 = solver.velocity_x();
  const TensorD u2 = solver.velocity_y();
  for (index_t c = 0; c < rho.size(); ++c) {
    ASSERT_NEAR(rho[c], 1.0, 1e-12);
    ASSERT_NEAR(u1[c], field.u1[c], 1e-12);
    ASSERT_NEAR(u2[c], field.u2[c], 1e-12);
  }
}

TEST(Lbm, MassConservedExactly) {
  LbmConfig cfg;
  cfg.nx = 32;
  cfg.ny = 32;
  cfg.viscosity = 0.005;
  LbmSolver solver(cfg);
  Rng rng(3);
  const VelocityField field = random_vortex_velocity(32, 32, 4.0, 0.05, rng);
  solver.initialize(field.u1, field.u2);
  const double m0 = solver.total_mass();
  solver.step(100);
  EXPECT_NEAR(solver.total_mass(), m0, 1e-9 * m0);
}

TEST(Lbm, StreamingMovesPulseCorrectly) {
  // Pure streaming (no collision effect on a uniform-density rest state
  // plus one perturbed population) translates data by cᵢ per step. We use a
  // BGK solver with ω→0 (ν→∞ is not reachable; instead verify via two steps
  // of a state at equilibrium — streaming of equilibrium is identity for
  // zero velocity).
  LbmConfig cfg;
  cfg.nx = 8;
  cfg.ny = 8;
  cfg.viscosity = 0.1;
  cfg.collision = Collision::kBgk;
  LbmSolver solver(cfg);
  TensorD zero({8, 8});
  solver.initialize(zero, zero);
  solver.step(5);
  // Rest fluid stays at rest to round-off.
  EXPECT_LT(solver.velocity_x().max_abs(), 1e-14);
  EXPECT_LT(solver.velocity_y().max_abs(), 1e-14);
  const TensorD rho = solver.density();
  for (index_t c = 0; c < rho.size(); ++c) ASSERT_NEAR(rho[c], 1.0, 1e-14);
}

class TaylorGreenDecay
    : public ::testing::TestWithParam<std::tuple<double, Collision>> {};

TEST_P(TaylorGreenDecay, MatchesAnalyticViscousDecay) {
  const auto [viscosity, collision] = GetParam();
  const index_t n = 32;
  LbmConfig cfg;
  cfg.nx = n;
  cfg.ny = n;
  cfg.viscosity = viscosity;
  cfg.collision = collision;
  LbmSolver solver(cfg);
  const VelocityField field = taylor_green_velocity(n, n, 0.02);
  solver.initialize(field.u1, field.u2);

  const double ke0 = solver.kinetic_energy();
  const index_t steps = 400;
  solver.step(steps);
  const double ke1 = solver.kinetic_energy();

  // KE(t) = KE(0) exp(−4 ν k² t), k = 2π/N (one TG period per box).
  const double k = 2.0 * std::numbers::pi / static_cast<double>(n);
  const double expected =
      ke0 * std::exp(-4.0 * viscosity * k * k * static_cast<double>(steps));
  EXPECT_NEAR(ke1 / expected, 1.0, 0.02)
      << "nu=" << viscosity << " measured/expected KE ratio off";
}

INSTANTIATE_TEST_SUITE_P(
    Viscosities, TaylorGreenDecay,
    ::testing::Values(std::tuple{0.01, Collision::kBgk},
                      std::tuple{0.05, Collision::kBgk},
                      std::tuple{0.01, Collision::kEntropic},
                      std::tuple{0.05, Collision::kEntropic}));

TEST(Lbm, EntropicMatchesBgkWhenResolved) {
  // In a well-resolved flow the entropic root is α ≈ 2 and both operators
  // coincide.
  const index_t n = 32;
  LbmConfig bgk_cfg{n, n, 0.02, Collision::kBgk, 1e-3};
  LbmConfig ent_cfg{n, n, 0.02, Collision::kEntropic, 1e-3};
  LbmSolver bgk(bgk_cfg), ent(ent_cfg);
  const VelocityField field = taylor_green_velocity(n, n, 0.02);
  bgk.initialize(field.u1, field.u2);
  ent.initialize(field.u1, field.u2);
  bgk.step(50);
  ent.step(50);
  const TensorD ub = bgk.velocity_x();
  const TensorD ue = ent.velocity_x();
  double max_diff = 0.0;
  for (index_t c = 0; c < ub.size(); ++c) {
    max_diff = std::max(max_diff, std::abs(ub[c] - ue[c]));
  }
  EXPECT_LT(max_diff, 1e-6);
}

TEST(Lbm, EntropicSurvivesUnderResolvedFlow) {
  // Under-resolved high-Re decay: the entropic stabiliser must keep the
  // populations positive and finite.
  const index_t n = 48;
  LbmConfig cfg;
  cfg.nx = n;
  cfg.ny = n;
  cfg.viscosity = 1e-4;  // Re = u·N/ν ≈ 0.08·48/1e-4 ≈ 38k
  cfg.collision = Collision::kEntropic;
  LbmSolver solver(cfg);
  Rng rng(7);
  const VelocityField field = random_vortex_velocity(n, n, 6.0, 0.08, rng);
  solver.initialize(field.u1, field.u2);
  solver.step(600);
  EXPECT_FALSE(solver.has_blown_up());
  EXPECT_TRUE(std::isfinite(solver.kinetic_energy()));
}

TEST(Lbm, EntropicAlphaDeviatesFromTwoWhenStressed) {
  const index_t n = 48;
  LbmConfig cfg;
  cfg.nx = n;
  cfg.ny = n;
  cfg.viscosity = 1e-4;
  cfg.collision = Collision::kEntropic;
  LbmSolver solver(cfg);
  Rng rng(11);
  const VelocityField field = random_vortex_velocity(n, n, 6.0, 0.08, rng);
  solver.initialize(field.u1, field.u2);
  double min_alpha = 2.0, max_alpha = 2.0;
  for (int s = 0; s < 300; ++s) {
    solver.step(1);
    min_alpha = std::min(min_alpha, solver.entropic_stats().alpha_min);
    max_alpha = std::max(max_alpha, solver.entropic_stats().alpha_max);
  }
  // The limiter must have engaged somewhere in 300 under-resolved steps.
  EXPECT_LT(min_alpha, 1.999);
}

TEST(Lbm, KineticEnergyDecaysMonotonically) {
  const index_t n = 32;
  LbmConfig cfg;
  cfg.nx = n;
  cfg.ny = n;
  cfg.viscosity = 0.01;
  LbmSolver solver(cfg);
  Rng rng(13);
  const VelocityField field = random_vortex_velocity(n, n, 4.0, 0.05, rng);
  solver.initialize(field.u1, field.u2);
  double prev = solver.kinetic_energy();
  for (int block = 0; block < 10; ++block) {
    solver.step(20);
    const double ke = solver.kinetic_energy();
    EXPECT_LT(ke, prev * 1.0001) << "block " << block;
    prev = ke;
  }
}

TEST(Lbm, BetaFromViscosity) {
  LbmConfig cfg;
  cfg.viscosity = 0.05;
  cfg.nx = cfg.ny = 8;
  LbmSolver solver(cfg);
  EXPECT_NEAR(solver.beta(), 1.0 / (6.0 * 0.05 + 1.0), 1e-15);
}

TEST(Lbm, RejectsExcessiveVelocity) {
  LbmConfig cfg;
  cfg.nx = cfg.ny = 8;
  LbmSolver solver(cfg);
  TensorD u({8, 8}, 0.5);  // far beyond low-Mach
  EXPECT_THROW(solver.initialize(u, u), CheckError);
}

// --- initializers -----------------------------------------------------------

TEST(Initializer, VortexFieldIsSolenoidal) {
  Rng rng(17);
  const VelocityField field = random_vortex_velocity(64, 64, 4.0, 0.05, rng);
  const TensorD div = ns::divergence(field.u1, field.u2);
  // Spectral construction → divergence at round-off level relative to u.
  EXPECT_LT(div.max_abs(), 1e-10);
}

TEST(Initializer, VortexFieldRespectsAmplitude) {
  Rng rng(19);
  const VelocityField field = random_vortex_velocity(32, 32, 4.0, 0.07, rng);
  const double peak = std::max(field.u1.max_abs(), field.u2.max_abs());
  EXPECT_NEAR(peak, 0.07, 1e-12);
}

TEST(Initializer, VortexFieldHasZeroMean) {
  Rng rng(23);
  const VelocityField field = random_vortex_velocity(32, 32, 4.0, 0.05, rng);
  EXPECT_NEAR(field.u1.mean(), 0.0, 1e-14);
  EXPECT_NEAR(field.u2.mean(), 0.0, 1e-14);
}

TEST(Initializer, VortexSpectrumPeaksNearRequestedShell) {
  Rng rng(29);
  const VelocityField field = random_vortex_velocity(64, 64, 6.0, 0.05, rng);
  const auto spectrum = ns::energy_spectrum(field.u1, field.u2);
  std::size_t argmax = 0;
  for (std::size_t k = 1; k < spectrum.size(); ++k) {
    if (spectrum[k] > spectrum[argmax]) argmax = k;
  }
  EXPECT_GE(argmax, 3u);
  EXPECT_LE(argmax, 9u);
}

TEST(Initializer, UniformFieldWithinBounds) {
  Rng rng(31);
  const VelocityField field = random_uniform_velocity(16, 16, 0.03, rng);
  EXPECT_LE(field.u1.max_abs(), 0.03);
  EXPECT_LE(field.u2.max_abs(), 0.03);
  EXPECT_GT(field.u1.max_abs(), 0.01);  // actually random, not zero
}

TEST(Initializer, DifferentSeedsGiveDifferentFields) {
  Rng a(1), b(2);
  const VelocityField fa = random_vortex_velocity(16, 16, 4.0, 0.05, a);
  const VelocityField fb = random_vortex_velocity(16, 16, 4.0, 0.05, b);
  double diff = 0.0;
  for (index_t i = 0; i < fa.u1.size(); ++i) {
    diff = std::max(diff, std::abs(fa.u1[i] - fb.u1[i]));
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(Initializer, TaylorGreenMatchesFormula) {
  const VelocityField field = taylor_green_velocity(8, 8, 0.1);
  const double x = 2.0 * std::numbers::pi * 3.0 / 8.0;
  const double y = 2.0 * std::numbers::pi * 5.0 / 8.0;
  EXPECT_NEAR(field.u1(5, 3), 0.1 * std::sin(x) * std::cos(y), 1e-14);
  EXPECT_NEAR(field.u2(5, 3), -0.1 * std::cos(x) * std::sin(y), 1e-14);
}

}  // namespace
}  // namespace turb::lbm
