// Observability subsystem: metric correctness under thread-pool contention,
// JSON export round-trip, trainer epoch-callback ordering, and the
// parallel_for exception-rethrow contract the registry's atomics rely on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "fno/trainer.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace turb {
namespace {

// --- metric primitives under contention -----------------------------------

TEST(Obs, CounterExactUnderContention) {
  obs::Counter& c = obs::counter("test/contended_counter");
  c.reset();
  parallel_for(0, 20000, [&](index_t) { c.add(1); });
  EXPECT_EQ(c.value(), 20000);
  c.add(5);
  EXPECT_EQ(c.value(), 20005);
}

TEST(Obs, TimerStatExactUnderContention) {
  obs::TimerStat& t = obs::timer("test/contended_timer");
  t.reset();
  parallel_for(0, 5000, [&](index_t i) {
    t.record(i % 2 == 0 ? 0.001 : 0.003);
  });
  EXPECT_EQ(t.count(), 5000);
  EXPECT_NEAR(t.total_seconds(), 2500 * 0.001 + 2500 * 0.003, 1e-9);
  EXPECT_DOUBLE_EQ(t.min_seconds(), 0.001);
  EXPECT_DOUBLE_EQ(t.max_seconds(), 0.003);
}

TEST(Obs, GaugeHoldsLastValue) {
  obs::Gauge& g = obs::gauge("test/gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Obs, MetricReferencesAreStable) {
  obs::Counter& a = obs::counter("test/stable");
  // Force additional registrations, then look the first one up again.
  for (int i = 0; i < 64; ++i) {
    obs::counter("test/churn_" + std::to_string(i)).add(1);
  }
  EXPECT_EQ(&a, &obs::counter("test/stable"));
}

TEST(Obs, ScopedTimerRecordsAndHonoursDisable) {
  obs::TimerStat& t = obs::timer("test/scoped");
  t.reset();
  {
    TURB_TRACE_SCOPE("test/scoped");
  }
  EXPECT_EQ(t.count(), 1);
  EXPECT_GE(t.total_seconds(), 0.0);

  obs::set_enabled(false);
  {
    TURB_TRACE_SCOPE("test/scoped");
  }
  obs::set_enabled(true);
  EXPECT_EQ(t.count(), 1) << "disabled spans must not record";
}

// --- JSON export -----------------------------------------------------------

/// Pull the numeric token following `"key": ` out of a JSON string.
double json_number_after(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << "missing key " << key << " in\n"
                                    << json;
  if (pos == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

TEST(Obs, JsonExportRoundTrip) {
  obs::counter("test/json_counter").reset();
  obs::counter("test/json_counter").add(42);
  obs::gauge("test/json_gauge").set(2.5);
  obs::TimerStat& t = obs::timer("test/json_span");
  t.reset();
  t.record(0.25);
  t.record(0.75);

  const std::string path = testing::TempDir() + "turbfno_obs_roundtrip.json";
  ASSERT_TRUE(obs::dump_json(path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();

  EXPECT_EQ(json_number_after(json, "test/json_counter"), 42.0);
  const auto gauge_pos = json.find("\"test/json_gauge\": 2.5");
  EXPECT_NE(gauge_pos, std::string::npos);

  // Span block: count/total/min/max/mean survive the round trip.
  const auto span_pos = json.find("\"test/json_span\"");
  ASSERT_NE(span_pos, std::string::npos);
  const auto span_end = json.find('}', span_pos);
  ASSERT_NE(span_end, std::string::npos);
  const std::string span = json.substr(span_pos, span_end - span_pos + 1);
  EXPECT_EQ(json_number_after(span, "count"), 2.0);
  EXPECT_NEAR(json_number_after(span, "total_seconds"), 1.0, 1e-9);
  EXPECT_NEAR(json_number_after(span, "min_seconds"), 0.25, 1e-9);
  EXPECT_NEAR(json_number_after(span, "max_seconds"), 0.75, 1e-9);
  EXPECT_NEAR(json_number_after(span, "mean_seconds"), 0.5, 1e-9);

  std::remove(path.c_str());
}

TEST(Obs, JsonNeverEmitsInfinity) {
  // An un-recorded timer has min = +inf; JSON must stay parseable (null).
  obs::timer("test/json_empty_span").reset();
  const std::string json = obs::to_json();
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(Obs, ResetZeroesButKeepsRegistrations) {
  obs::Counter& c = obs::counter("test/reset_me");
  c.add(7);
  obs::reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(&c, &obs::counter("test/reset_me"));
}

// --- trainer callback ordering ---------------------------------------------

TEST(TrainerCallback, EpochCallbackOrderedAndComplete) {
  Rng rng(11);
  fno::FnoConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 2;
  cfg.width = 4;
  cfg.n_layers = 2;
  cfg.n_modes = {4, 4};
  cfg.lifting_channels = 8;
  cfg.projection_channels = 8;
  fno::Fno model(cfg, rng);

  TensorF x({6, 3, 8, 8}), y({6, 2, 8, 8});
  x.fill_normal(rng, 0.0, 1.0);
  y.fill_normal(rng, 0.0, 1.0);
  nn::DataLoader loader(x, y, 2, true, 3);

  fno::TrainConfig tc;
  tc.epochs = 4;
  tc.lr = 1e-3;
  std::vector<fno::EpochStats> seen;
  tc.on_epoch_end = [&seen](const fno::EpochStats& s) {
    seen.push_back(s);
  };
  const fno::TrainResult result = fno::train_fno(model, loader, tc);

  ASSERT_EQ(seen.size(), 4u);
  for (index_t e = 0; e < 4; ++e) {
    const auto ue = static_cast<std::size_t>(e);
    EXPECT_EQ(seen[ue].epoch, e) << "callbacks must arrive in epoch order";
    EXPECT_EQ(seen[ue].epoch, result.history[ue].epoch);
    EXPECT_DOUBLE_EQ(seen[ue].train_loss, result.history[ue].train_loss);
    EXPECT_GT(seen[ue].seconds, 0.0);
    // The phase split covers real work and sums to at most the epoch time.
    const double phases = seen[ue].data_seconds + seen[ue].forward_seconds +
                          seen[ue].backward_seconds +
                          seen[ue].optimizer_seconds;
    EXPECT_GT(phases, 0.0);
    EXPECT_LE(phases, seen[ue].seconds * 1.5 + 1e-3);
  }
}

TEST(TrainerCallback, TrainEmitsObsSpans) {
  // train_fno must feed the train/* spans the benches export.
  obs::TimerStat& fwd = obs::timer("train/forward");
  const std::int64_t before = fwd.count();

  Rng rng(12);
  fno::FnoConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 2;
  cfg.width = 4;
  cfg.n_layers = 1;
  cfg.n_modes = {4, 4};
  cfg.lifting_channels = 4;
  cfg.projection_channels = 4;
  fno::Fno model(cfg, rng);
  TensorF x({2, 2, 8, 8}), y({2, 2, 8, 8});
  x.fill_normal(rng, 0.0, 1.0);
  y.fill_normal(rng, 0.0, 1.0);
  nn::DataLoader loader(x, y, 2, false);
  fno::TrainConfig tc;
  tc.epochs = 2;
  (void)fno::train_fno(model, loader, tc);

  EXPECT_EQ(fwd.count(), before + 2) << "one train/forward record per epoch";
}

// --- thread-pool regression -------------------------------------------------

TEST(ThreadPoolRegression, ParallelForRethrowsBodyException) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(0, 64, [](index_t i) {
      if (i == 17) throw std::runtime_error("body failure at 17");
    });
    FAIL() << "expected the body exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "body failure at 17");
  }
  // The pool must stay usable after the throw.
  std::atomic<int> count{0};
  pool.parallel_for(0, 32, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolRegression, SetGlobalThreadsAfterFirstUseThrows) {
  parallel_for(0, 8, [](index_t) {});  // materialise the global pool
  EXPECT_THROW(set_global_threads(4), CheckError);
}

}  // namespace
}  // namespace turb
