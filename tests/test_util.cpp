#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <vector>

#include "util/cli.hpp"
#include "util/common.hpp"
#include "util/image.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace turb {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(3);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 5e-3);
  EXPECT_NEAR(var, 1.0 / 12.0, 5e-3);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
    sum3 += x * x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 2e-2);
  EXPECT_NEAR(sum2 / n, 1.0, 3e-2);
  EXPECT_NEAR(sum3 / n, 0.0, 8e-2);
}

TEST(Rng, NormalWithParams) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 5e-2);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, UniformIntOne) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(23);
  Rng child = parent.split();
  // Child stream should not reproduce the parent stream.
  Rng parent2(23);
  parent2.next_u64();  // same advance as split() consumed
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](index_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](index_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ChunkedCoversRangeOnce) {
  ThreadPool pool(3);
  std::atomic<index_t> total{0};
  pool.parallel_for_chunked(10, 537, [&](index_t b, index_t e) {
    EXPECT_LE(b, e);
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 527);
}

TEST(ThreadPool, SingleThreadFallback) {
  ThreadPool pool(1);
  index_t sum = 0;
  pool.parallel_for(0, 100, [&](index_t i) { sum += i; });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](index_t i) {
                                   if (i == 57) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 10, [](index_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ManySequentialDispatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 37, [&](index_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 37);
  }
}

TEST(ThreadPool, GlobalPoolWorks) {
  std::atomic<index_t> sum{0};
  parallel_for(0, 1000, [&](index_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 499500);
}

TEST(ThreadPool, ScopeOverridesFreeFunctionPool) {
  ThreadPool::Scope scope(3);
  EXPECT_EQ(ThreadPool::current().size(), 3u);
  std::atomic<index_t> sum{0};
  parallel_for(0, 100, [&](index_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ScopesNestInnermostWins) {
  ThreadPool::Scope outer(2);
  EXPECT_EQ(ThreadPool::current().size(), 2u);
  {
    ThreadPool::Scope inner(4);
    EXPECT_EQ(ThreadPool::current().size(), 4u);
  }
  EXPECT_EQ(ThreadPool::current().size(), 2u);
}

TEST(ThreadPool, NestedParallelForRunsSeriallyAndCompletes) {
  ThreadPool::Scope scope(4);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
  std::atomic<index_t> total{0};
  parallel_for(0, 8, [&](index_t) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    // The nested loop runs serially on this thread, so plain (non-atomic)
    // accumulation is safe.
    index_t inner_sum = 0;
    parallel_for(0, 100, [&](index_t i) { inner_sum += i; });
    total.fetch_add(inner_sum);
  });
  EXPECT_EQ(total.load(), 8 * 4950);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ThreadPool, SlabPartitionIndependentOfPoolWidth) {
  const auto boundaries = [](std::size_t width) {
    ThreadPool::Scope scope(width);
    std::vector<std::pair<index_t, index_t>> slabs(
        static_cast<std::size_t>(slab_count(0, 37, 8)));
    parallel_for_slabs(0, 37, 8, [&](index_t s, index_t b, index_t e) {
      slabs[static_cast<std::size_t>(s)] = {b, e};
    });
    return slabs;
  };
  const auto w1 = boundaries(1);
  const auto w4 = boundaries(4);
  EXPECT_EQ(w1, w4);
  // Slabs tile [0, 37) contiguously in slot order.
  index_t cursor = 0;
  for (const auto& [b, e] : w1) {
    EXPECT_EQ(b, cursor);
    EXPECT_LT(b, e);
    cursor = e;
  }
  EXPECT_EQ(cursor, 37);
}

TEST(ThreadPool, SlabCountClampsToRange) {
  EXPECT_EQ(slab_count(0, 3, 8), 3);
  EXPECT_EQ(slab_count(0, 100, 8), 8);
  EXPECT_EQ(slab_count(5, 5, 8), 0);
  EXPECT_EQ(slab_count(7, 5, 8), 0);
}

TEST(Cli, ParsesKeyValueForms) {
  const char* argv[] = {"prog",   "--alpha", "1.5",   "--beta=2",
                        "--flag", "--gamma", "hello", "pos1"};
  CliArgs args(8, argv);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(args.get_int("beta", 0), 2);
  EXPECT_TRUE(args.get_flag("flag"));
  EXPECT_EQ(args.get("gamma", ""), "hello");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(args.get_flag("v"));
  EXPECT_FALSE(args.has("n"));
}

TEST(Cli, RejectsNonNumeric) {
  const char* argv[] = {"prog", "--n", "abc"};
  CliArgs args(3, argv);
  EXPECT_THROW(static_cast<void>(args.get_int("n", 0)), CheckError);
}

TEST(Cli, ServeEnsembleKValidatesAtFlagApplyTime) {
  // Misconfiguration must fail where the flag is applied, not later as
  // per-request admission rejections in whatever driver read the options.
  const char* zero[] = {"prog", "--serve-ensemble-k", "0"};
  EXPECT_THROW(apply_runtime_flags(CliArgs(3, zero)), CheckError);
  const char* negative[] = {"prog", "--serve-ensemble-k=-4"};
  EXPECT_THROW(apply_runtime_flags(CliArgs(2, negative)), CheckError);

  const char* four[] = {"prog", "--serve-ensemble-k", "4"};
  apply_runtime_flags(CliArgs(3, four));
  EXPECT_EQ(serve_runtime_options().ensemble_k, 4);
  // Restore the process-wide default for the rest of the suite.
  const char* one[] = {"prog", "--serve-ensemble-k", "1"};
  apply_runtime_flags(CliArgs(3, one));
  EXPECT_EQ(serve_runtime_options().ensemble_k, 1);
}

TEST(Table, CsvRoundTrip) {
  SeriesTable t("demo");
  t.set_columns({"t", "value"});
  t.add_row({0.0, 1.0});
  t.add_row({0.5, 2.5});
  std::ostringstream os;
  t.print_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("# begin-csv demo"), std::string::npos);
  EXPECT_NE(s.find("t,value"), std::string::npos);
  EXPECT_NE(s.find("0.5,2.5"), std::string::npos);
  EXPECT_NE(s.find("# end-csv"), std::string::npos);
}

TEST(Table, LabelledRows) {
  SeriesTable t("labelled");
  t.set_columns({"params"});
  t.add_row("fno-w40", {6995922.0});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("fno-w40,6995922"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  SeriesTable t("bad");
  t.set_columns({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), CheckError);
}

TEST(Image, WritesPgmHeader) {
  std::vector<double> field(16 * 8, 0.0);
  field[3] = 1.0;
  const std::string path = testing::TempDir() + "/turb_test.pgm";
  write_pgm(path, field, 8, 16);
  std::ifstream is(path, std::ios::binary);
  std::string magic, dims1, dims2, maxv;
  is >> magic >> dims1 >> dims2 >> maxv;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(dims1, "16");
  EXPECT_EQ(dims2, "8");
  EXPECT_EQ(maxv, "255");
  std::remove(path.c_str());
}

TEST(Image, WritesPpmWithExpectedSize) {
  std::vector<double> field(32 * 32);
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = std::sin(static_cast<double>(i));
  }
  const std::string path = testing::TempDir() + "/turb_test.ppm";
  write_ppm_diverging(path, field, 32, 32);
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  ASSERT_TRUE(is.good());
  // header "P6\n32 32\n255\n" = 13 bytes + payload 32*32*3
  EXPECT_EQ(static_cast<long>(is.tellg()), 13 + 32 * 32 * 3);
  std::remove(path.c_str());
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1e-9;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(Check, ThrowsWithMessage) {
  try {
    TURB_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace turb
