// Inference engine contract tests.
//
// 1. Bitwise equality: the planned engine must reproduce Fno::forward
//    exactly — same bytes — at pool widths 1/2/4, across 2D / 3D configs,
//    power-of-two and Bluestein grids, and batch > 1. Rollouts and the
//    FnoPropagator must match in-test replicas of the pre-engine algorithms
//    stepped through model.forward().
// 2. Zero allocation: a global operator-new counting hook asserts the
//    engine's steady state (forward, rollout step, hybrid advance window)
//    performs zero heap allocations after one warm-up call.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <new>
#include <utility>
#include <vector>

#include "analysis/stats.hpp"
#include "core/fno_propagator.hpp"
#include "fno/fno.hpp"
#include "fno/rollout.hpp"
#include "infer/arena.hpp"
#include "infer/engine.hpp"
#include "nn/spectral_conv.hpp"
#include "obs/obs.hpp"
#include "util/precision.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

// --- Global operator-new counting hook --------------------------------------
// Replaces every allocation form for this test binary. Counting is gated by
// g_track so only the measured windows pay attention; the hooks themselves
// must not allocate.

namespace {

std::atomic<bool> g_track{false};
std::atomic<std::int64_t> g_allocs{0};

inline void note_alloc() noexcept {
  if (g_track.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

inline void* plain_alloc(std::size_t n) {
  note_alloc();
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void* aligned_alloc_impl(std::size_t n, std::size_t align) {
  note_alloc();
  const std::size_t size = (n + align - 1) / align * align;
  void* p = std::aligned_alloc(align, size ? size : align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return plain_alloc(n); }
void* operator new[](std::size_t n) { return plain_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return aligned_alloc_impl(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return aligned_alloc_impl(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  note_alloc();
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  note_alloc();
  return std::malloc(n ? n : 1);
}
// glibc free() accepts pointers from malloc and aligned_alloc alike.
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace turb {
namespace {

fno::FnoConfig small2d() {
  fno::FnoConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 2;
  cfg.width = 8;
  cfg.n_layers = 2;
  cfg.n_modes = {8, 8};
  cfg.lifting_channels = 16;
  cfg.projection_channels = 16;
  return cfg;
}

fno::FnoConfig wide2d() {
  fno::FnoConfig cfg = small2d();
  cfg.in_channels = 2;
  cfg.out_channels = 4;  // C_out > C_in exercises the suffix-window slide
  return cfg;
}

fno::FnoConfig cfg3d() {
  fno::FnoConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 1;
  cfg.width = 6;
  cfg.n_layers = 2;
  cfg.n_modes = {4, 4, 4};
  cfg.lifting_channels = 12;
  cfg.projection_channels = 12;
  return cfg;
}

TensorF random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  TensorF x(std::move(shape));
  x.fill_normal(rng, 0.0, 1.0);
  return x;
}

void expect_bitwise_equal(const TensorF& a, const TensorF& b,
                          const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<std::size_t>(a.size()) * sizeof(float)))
      << what << ": payload differs";
}

// --- Pre-engine reference implementations (the exact old algorithms) --------

TensorF ref_rollout_channels(fno::Fno& model, const TensorF& history,
                             index_t steps) {
  const fno::FnoConfig& cfg = model.config();
  const index_t h = history.dim(1), w = history.dim(2);
  const index_t frame = h * w;
  const index_t cin = cfg.in_channels, cout = cfg.out_channels;
  TensorF out({steps, h, w});
  TensorF window({1, cin, h, w});
  std::copy_n(history.data(), cin * frame, window.data());
  index_t produced = 0;
  while (produced < steps) {
    const TensorF pred = model.forward(window);
    const index_t take = std::min(cout, steps - produced);
    std::copy_n(pred.data(), take * frame, out.data() + produced * frame);
    produced += take;
    if (cout >= cin) {
      std::copy_n(pred.data() + (cout - cin) * frame, cin * frame,
                  window.data());
    } else {
      std::copy(window.data() + cout * frame, window.data() + cin * frame,
                window.data());
      std::copy_n(pred.data(), cout * frame,
                  window.data() + (cin - cout) * frame);
    }
  }
  return out;
}

TensorF ref_rollout_3d(fno::Fno& model, const TensorF& seed, index_t blocks) {
  const index_t t = seed.dim(0), h = seed.dim(1), w = seed.dim(2);
  const index_t block_elems = t * h * w;
  TensorF out({blocks * t, h, w});
  TensorF window({1, 1, t, h, w});
  std::copy_n(seed.data(), block_elems, window.data());
  for (index_t b = 0; b < blocks; ++b) {
    const TensorF pred = model.forward(window);
    std::copy_n(pred.data(), block_elems, out.data() + b * block_elems);
    std::copy_n(pred.data(), block_elems, window.data());
  }
  return out;
}

std::vector<core::FieldSnapshot> ref_advance(
    fno::Fno& model, const analysis::Normalizer& normalizer, double dt_snap,
    const core::History& history, index_t count) {
  const index_t cin = model.config().in_channels;
  const index_t cout = model.config().out_channels;
  const TensorD& ref = history.back().u1;
  const index_t h = ref.dim(0), w = ref.dim(1);
  const index_t frame = h * w;
  TensorF window({2, cin, h, w});
  const auto first = history.size() - static_cast<std::size_t>(cin);
  for (index_t c = 0; c < cin; ++c) {
    const core::FieldSnapshot& snap =
        history[first + static_cast<std::size_t>(c)];
    for (index_t i = 0; i < frame; ++i) {
      window[(0 * cin + c) * frame + i] = static_cast<float>(snap.u1[i]);
      window[(1 * cin + c) * frame + i] = static_cast<float>(snap.u2[i]);
    }
  }
  normalizer.apply(window);
  std::vector<core::FieldSnapshot> out;
  const double t0 = history.back().t;
  index_t produced = 0;
  while (produced < count) {
    TensorF pred = model.forward(window);
    TensorF next({2, cin, h, w});
    if (cout >= cin) {
      for (index_t b = 0; b < 2; ++b) {
        std::copy_n(pred.data() + (b * cout + (cout - cin)) * frame,
                    cin * frame, next.data() + b * cin * frame);
      }
    } else {
      for (index_t b = 0; b < 2; ++b) {
        std::copy_n(window.data() + (b * cin + cout) * frame,
                    (cin - cout) * frame, next.data() + b * cin * frame);
        std::copy_n(pred.data() + b * cout * frame, cout * frame,
                    next.data() + (b * cin + (cin - cout)) * frame);
      }
    }
    window = std::move(next);
    normalizer.invert(pred);
    const index_t take = std::min(cout, count - produced);
    for (index_t s = 0; s < take; ++s) {
      core::FieldSnapshot snap;
      snap.t = t0 + dt_snap * static_cast<double>(produced + s + 1);
      snap.u1 = TensorD({h, w});
      snap.u2 = TensorD({h, w});
      for (index_t i = 0; i < frame; ++i) {
        snap.u1[i] = pred[(0 * cout + s) * frame + i];
        snap.u2[i] = pred[(1 * cout + s) * frame + i];
      }
      out.push_back(std::move(snap));
    }
    produced += take;
  }
  return out;
}

core::History make_history(index_t frames, index_t h, index_t w,
                           std::uint64_t seed) {
  Rng rng(seed);
  core::History history;
  for (index_t f = 0; f < frames; ++f) {
    core::FieldSnapshot snap;
    snap.t = 0.1 * static_cast<double>(f + 1);
    snap.u1 = TensorD({h, w});
    snap.u2 = TensorD({h, w});
    snap.u1.fill_normal(rng, 0.0, 1.0);
    snap.u2.fill_normal(rng, 0.0, 1.0);
    history.push_back(std::move(snap));
  }
  return history;
}

// --- Arena ------------------------------------------------------------------

TEST(Arena, SlicesAreAlignedAndZeroFilled) {
  infer::Arena arena;
  arena.begin_layout();
  const std::size_t a = arena.reserve<float>(3);  // 12 bytes, next slice snaps
  const std::size_t b = arena.reserve<double>(5);
  arena.commit();
  EXPECT_EQ(a % infer::Arena::kAlign, 0u);
  EXPECT_EQ(b % infer::Arena::kAlign, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arena.at<float>(a)) %
                infer::Arena::kAlign,
            0u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(arena.at<float>(a)[i], 0.0f);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(arena.at<double>(b)[i], 0.0);
}

TEST(Arena, GrowOnlyReuse) {
  infer::Arena arena;
  arena.begin_layout();
  (void)arena.reserve<float>(1024);
  arena.commit();
  const std::size_t cap = arena.capacity();
  arena.begin_layout();
  (void)arena.reserve<float>(256);  // smaller layout reuses storage
  arena.commit();
  EXPECT_EQ(arena.capacity(), cap);
  arena.begin_layout();
  (void)arena.reserve<float>(4096);  // larger layout grows
  arena.commit();
  EXPECT_GT(arena.capacity(), cap);
}

// --- Bitwise forward equality ----------------------------------------------

void check_forward_equal(const fno::FnoConfig& cfg, const Shape& in_shape,
                         std::uint64_t seed) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    ThreadPool::Scope scope(threads);
    Rng rng(seed);
    fno::Fno model(cfg, rng);
    const TensorF x = random_tensor(in_shape, seed + 1);
    TensorF ref = model.forward(x);
    infer::InferenceEngine engine(model);
    engine.plan(in_shape);
    TensorF y;
    engine.forward(x, y);
    expect_bitwise_equal(ref, y, "engine vs Fno::forward");
    // Second call through the planned steady state must agree too.
    engine.forward(x, y);
    expect_bitwise_equal(ref, y, "engine steady-state repeat");
  }
}

TEST(InferEngine, BitwiseForward2dPow2) {
  check_forward_equal(small2d(), {1, 3, 16, 16}, 11);
}

TEST(InferEngine, BitwiseForward2dBatched) {
  check_forward_equal(small2d(), {3, 3, 16, 16}, 12);
}

TEST(InferEngine, BitwiseForward2dBluestein) {
  // 10×14 grid: Bluestein c2c axis and a spatial size (140) that is not a
  // multiple of the GEMM panel width, exercising block tails.
  fno::FnoConfig cfg = small2d();
  cfg.n_modes = {4, 4};
  check_forward_equal(cfg, {2, 3, 10, 14}, 13);
}

/// Compare elementwise within `rel`·max(1, |ref|) — generous enough for
/// cross-TU FMA-contraction drift, tight enough that a real kernel bug (an
/// O(1) divergence) still fails — and report whether the payloads were in
/// fact bitwise identical.
[[nodiscard]] bool expect_close_report_bitwise(const TensorF& a,
                                               const TensorF& b,
                                               const char* what, float rel) {
  EXPECT_EQ(a.shape(), b.shape()) << what;
  if (a.shape() != b.shape()) return false;
  if (std::memcmp(a.data(), b.data(),
                  static_cast<std::size_t>(a.size()) * sizeof(float)) == 0) {
    return true;
  }
  for (index_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i],
                rel * std::max(1.0f, std::abs(a.data()[i])))
        << what << " i=" << i;
  }
  return false;
}

/// 3D variant of check_forward_equal: asserts bounded agreement and returns
/// whether every width's comparison was bitwise.
[[nodiscard]] bool check_forward_close(const fno::FnoConfig& cfg,
                                       const Shape& in_shape,
                                       std::uint64_t seed) {
  bool bitwise = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    ThreadPool::Scope scope(threads);
    Rng rng(seed);
    fno::Fno model(cfg, rng);
    const TensorF x = random_tensor(in_shape, seed + 1);
    TensorF ref = model.forward(x);
    infer::InferenceEngine engine(model);
    engine.plan(in_shape);
    TensorF y;
    engine.forward(x, y);
    bitwise = expect_close_report_bitwise(ref, y, "engine vs Fno::forward",
                                          1e-4f) &&
              bitwise;
    engine.forward(x, y);
    bitwise = expect_close_report_bitwise(ref, y, "engine steady-state repeat",
                                          1e-4f) &&
              bitwise;
  }
  return bitwise;
}

constexpr char kContractSkip3d[] =
    "engine and training paths agree within tolerance but differ in the last "
    "bits on the 3D (Bluestein temporal axis) path on this host: "
    "-ffp-contract=fast fuses their multiply-adds differently across the "
    "training/engine translation units (known hardware/compiler dependence — "
    "triaged in ISSUE 7). The bounded agreement asserted above held; the "
    "2D bitwise gates and the per-ISA contract in test_isa.cpp remain "
    "strict.";

TEST(InferEngine, BitwiseForward3d) {
  if (!check_forward_close(cfg3d(), {1, 1, 10, 8, 8}, 14)) {
    GTEST_SKIP() << kContractSkip3d;
  }
}

TEST(InferEngine, BitwiseForward3dBatched) {
  if (!check_forward_close(cfg3d(), {2, 1, 10, 8, 8}, 15)) {
    GTEST_SKIP() << kContractSkip3d;
  }
}

TEST(InferEngine, RefreshWeightsTracksModel) {
  Rng rng(21);
  fno::Fno model(small2d(), rng);
  infer::InferenceEngine engine(model);
  // Perturb a weight after engine construction: the engine serves the old
  // snapshot until refresh_weights().
  model.lift1().weight().value[0] += 1.0f;
  const TensorF x = random_tensor({1, 3, 16, 16}, 22);
  TensorF ref = model.forward(x);
  TensorF y;
  engine.forward(x, y);
  EXPECT_NE(0, std::memcmp(ref.data(), y.data(),
                           static_cast<std::size_t>(ref.size()) *
                               sizeof(float)));
  engine.refresh_weights();
  engine.forward(x, y);
  expect_bitwise_equal(ref, y, "after refresh_weights");
}

// --- Factorized spectral layers through the engine ---------------------------
//
// The factorized engine composes the per-mode weight from the per-axis
// factor packs in registers (the bandwidth win), while the training layer
// materialises the product to memory and then contracts. Under
// -ffp-contract=fast those two contexts may fuse the composition
// multiply-adds differently (see the DESIGN.md codegen caveat), so the
// engine-vs-training contract for the factorized tier is bounded agreement;
// strict bitwise is enforced where it is promised — across thread counts
// and across steady-state repeats of the same engine.

constexpr char kContractSkipFact[] =
    "factorized engine and training paths agree within tolerance but differ "
    "in the last bits on this host: the engine composes the per-axis factor "
    "product in registers while the training layer materialises it to "
    "memory first, and -ffp-contract=fast may fuse the two contexts "
    "differently (same mechanism as the 3D skip above). Thread-count and "
    "steady-state bitwise gates for the factorized tier remain strict.";

TEST(InferEngine, FactorizedForward2dClose) {
  fno::FnoConfig cfg = small2d();
  cfg.spectral_kind = nn::SpectralKind::kFactorized;
  if (!check_forward_close(cfg, {2, 3, 16, 16}, 31)) {
    GTEST_SKIP() << kContractSkipFact;
  }
}

TEST(InferEngine, FactorizedForward2dBluesteinClose) {
  fno::FnoConfig cfg = small2d();
  cfg.spectral_kind = nn::SpectralKind::kFactorized;
  cfg.n_modes = {4, 4};
  if (!check_forward_close(cfg, {2, 3, 10, 14}, 32)) {
    GTEST_SKIP() << kContractSkipFact;
  }
}

TEST(InferEngine, SharedFactorizedForward2dClose) {
  fno::FnoConfig cfg = small2d();
  cfg.spectral_kind = nn::SpectralKind::kFactorized;
  cfg.share_spectral_factors = true;
  if (!check_forward_close(cfg, {1, 3, 16, 16}, 33)) {
    GTEST_SKIP() << kContractSkipFact;
  }
}

TEST(InferEngine, FactorizedForward3dClose) {
  fno::FnoConfig cfg = cfg3d();
  cfg.spectral_kind = nn::SpectralKind::kFactorized;
  if (!check_forward_close(cfg, {1, 1, 10, 8, 8}, 34)) {
    GTEST_SKIP() << kContractSkip3d;
  }
}

TEST(InferEngine, FactorizedBitwiseAcrossThreadCounts) {
  // The strict factorized determinism contract: same bytes at pool widths
  // 1/2/4 (fixed ISA), and across steady-state repeats.
  fno::FnoConfig cfg = small2d();
  cfg.spectral_kind = nn::SpectralKind::kFactorized;
  const auto run_at = [&cfg](std::size_t width) {
    ThreadPool::Scope scope(width);
    Rng rng(35);
    fno::Fno model(cfg, rng);
    infer::InferenceEngine engine(model);
    const TensorF x = random_tensor({2, 3, 16, 16}, 36);
    TensorF y;
    engine.forward(x, y);
    TensorF y2;
    engine.forward(x, y2);
    expect_bitwise_equal(y, y2, "factorized steady-state repeat");
    return y;
  };
  const TensorF y1 = run_at(1);
  for (const std::size_t width : {std::size_t{2}, std::size_t{4}}) {
    const TensorF y = run_at(width);
    expect_bitwise_equal(y1, y, "factorized forward across thread counts");
  }
}

TEST(InferEngine, FactorizedRefreshWeightsTracksFactors) {
  fno::FnoConfig cfg = small2d();
  cfg.spectral_kind = nn::SpectralKind::kFactorized;
  Rng rng(37);
  fno::Fno model(cfg, rng);
  infer::InferenceEngine engine(model);
  const TensorF x = random_tensor({1, 3, 16, 16}, 38);
  TensorF before;
  engine.forward(x, before);
  // Perturb a spectral factor: the engine serves the stale snapshot
  // (bitwise — same engine, same packs) until refresh_weights(), after
  // which it must track the perturbed model within the bounded-agreement
  // contract.
  auto& fact = dynamic_cast<nn::FactorizedSpectralConv&>(model.conv(0));
  fact.factor(0).value[0] += 0.5f;
  TensorF y;
  engine.forward(x, y);
  expect_bitwise_equal(before, y, "stale factor snapshot");
  const TensorF ref = model.forward(x);
  engine.refresh_weights();
  engine.forward(x, y);
  (void)expect_close_report_bitwise(ref, y, "after factor refresh_weights",
                                    1e-4f);
}

// --- Reduced-precision (weight-compressed) serving ---------------------------

double rel_l2(const TensorF& a, const TensorF& ref) {
  double num = 0.0, den = 0.0;
  for (index_t i = 0; i < ref.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(ref[i]);
    num += d * d;
    den += static_cast<double>(ref[i]) * static_cast<double>(ref[i]);
  }
  return std::sqrt(num / std::max(den, 1e-300));
}

// Documented serving bounds (DESIGN.md "Precision tiers") for a single
// forward on O(1)-normalised inputs. Property-style: several seeds, both
// spectral parameterisations.
TEST(InferPrecision, CompressedForwardWithinRelL2Bound) {
  for (const bool factorized : {false, true}) {
    fno::FnoConfig cfg = small2d();
    if (factorized) cfg.spectral_kind = nn::SpectralKind::kFactorized;
    for (const std::uint64_t seed : {41, 42, 43}) {
      Rng rng(seed);
      fno::Fno model(cfg, rng);
      const TensorF x = random_tensor({2, 3, 16, 16}, seed + 100);
      infer::InferenceEngine fp32(model);
      TensorF ref;
      fp32.forward(x, ref);
      infer::InferenceEngine bf16(model, {util::Precision::kBf16});
      infer::InferenceEngine fp16(model, {util::Precision::kFp16});
      TensorF yb, yh;
      bf16.forward(x, yb);
      fp16.forward(x, yh);
      const double eb = rel_l2(yb, ref);
      const double eh = rel_l2(yh, ref);
      EXPECT_GT(eb, 0.0) << "bf16 output should differ from fp32";
      EXPECT_LT(eb, 2e-2) << "bf16 seed " << seed << " fact " << factorized;
      EXPECT_LT(eh, 5e-3) << "fp16 seed " << seed << " fact " << factorized;
      // fp16 keeps more mantissa than bf16 at these weight magnitudes.
      EXPECT_LT(eh, eb);
    }
  }
}

TEST(InferPrecision, CompressedForwardDeterministicAcrossThreads) {
  // Reduced precision stays inside the per-ISA determinism contract: the
  // compressed weights are fixed bytes, so thread count must not change
  // the output bits.
  fno::FnoConfig cfg = small2d();
  const auto run_at = [&cfg](std::size_t width) {
    ThreadPool::Scope scope(width);
    Rng rng(45);
    fno::Fno model(cfg, rng);
    infer::InferenceEngine engine(model, {util::Precision::kBf16});
    const TensorF x = random_tensor({2, 3, 16, 16}, 46);
    TensorF y;
    engine.forward(x, y);
    return y;
  };
  const TensorF y1 = run_at(1);
  for (const std::size_t width : {std::size_t{2}, std::size_t{4}}) {
    const TensorF y = run_at(width);
    expect_bitwise_equal(y1, y, "bf16 forward across thread counts");
  }
}

TEST(InferPrecision, SpectralWeightBytesHalved) {
  Rng rng(47);
  fno::Fno model(small2d(), rng);
  infer::InferenceEngine fp32(model);
  infer::InferenceEngine bf16(model, {util::Precision::kBf16});
  EXPECT_EQ(bf16.spectral_weight_bytes() * 2, fp32.spectral_weight_bytes());
}

// --- Rollout equality -------------------------------------------------------

// These tests pin the deprecated fno::rollout_* convenience wrappers against
// the hand-stepped reference — they must keep matching until removal.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(InferEngine, RolloutChannelsMatchesReference) {
  for (const bool wide : {false, true}) {
    const fno::FnoConfig cfg = wide ? wide2d() : small2d();
    Rng rng(31);
    fno::Fno model(cfg, rng);
    const TensorF history =
        random_tensor({cfg.in_channels, 16, 16}, 32);
    const TensorF ref = ref_rollout_channels(model, history, 7);
    const TensorF got = fno::rollout_channels(model, history, 7);
    expect_bitwise_equal(ref, got, wide ? "rollout wide" : "rollout narrow");
  }
}

TEST(InferEngine, RolloutChannelsThreadInvariant) {
  Rng rng(33);
  fno::Fno model(small2d(), rng);
  const TensorF history = random_tensor({3, 16, 16}, 34);
  TensorF base;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    ThreadPool::Scope scope(threads);
    const TensorF got = fno::rollout_channels(model, history, 5);
    if (base.empty()) {
      base = got;
    } else {
      expect_bitwise_equal(base, got, "rollout across widths");
    }
  }
}

TEST(InferEngine, Rollout3dMatchesReference) {
  Rng rng(41);
  fno::Fno model(cfg3d(), rng);
  const TensorF seed = random_tensor({10, 8, 8}, 42);
  const TensorF ref = ref_rollout_3d(model, seed, 3);
  const TensorF got = fno::rollout_3d(model, seed, 3);
  // The window slide feeds each step's last-bit drift back into the next
  // input, so a slightly wider bound than the single-forward case.
  if (!expect_close_report_bitwise(ref, got, "rollout_3d", 5e-3f)) {
    GTEST_SKIP() << kContractSkip3d;
  }
}

TEST(InferEngine, BatchedRolloutMatchesSingle) {
  Rng rng(51);
  fno::Fno model(small2d(), rng);
  infer::InferenceEngine engine(model);
  const index_t trajectories = 3;
  const TensorF histories = random_tensor({trajectories, 3, 16, 16}, 52);
  const TensorF batched =
      fno::rollout_channels_batched(engine, histories, 6);
  ASSERT_EQ(batched.shape(), (Shape{trajectories, 6, 16, 16}));
  const index_t frame = 16 * 16;
  for (index_t b = 0; b < trajectories; ++b) {
    TensorF hist({3, 16, 16});
    std::copy_n(histories.data() + b * 3 * frame, 3 * frame, hist.data());
    const TensorF single = fno::rollout_channels(model, hist, 6);
    ASSERT_EQ(0, std::memcmp(single.data(), batched.data() + b * 6 * frame,
                             static_cast<std::size_t>(6 * frame) *
                                 sizeof(float)))
        << "trajectory " << b;
  }
}

#pragma GCC diagnostic pop

// --- FnoPropagator ----------------------------------------------------------

TEST(InferEngine, PropagatorMatchesReference) {
  for (const bool wide : {false, true}) {
    const fno::FnoConfig cfg = wide ? wide2d() : small2d();
    Rng rng(61);
    fno::Fno model(cfg, rng);
    const analysis::Normalizer norm(0.25, 1.75);
    const core::History history = make_history(cfg.in_channels + 1, 16, 16,
                                               62);
    const auto ref = ref_advance(model, norm, 0.5, history, 5);
    core::FnoPropagator prop(model, norm, 0.5);
    const auto got = prop.advance(history, 5);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i].t, got[i].t);
      ASSERT_EQ(0, std::memcmp(ref[i].u1.data(), got[i].u1.data(),
                               static_cast<std::size_t>(ref[i].u1.size()) *
                                   sizeof(double)))
          << "u1 snapshot " << i << (wide ? " wide" : " narrow");
      ASSERT_EQ(0, std::memcmp(ref[i].u2.data(), got[i].u2.data(),
                               static_cast<std::size_t>(ref[i].u2.size()) *
                                   sizeof(double)))
          << "u2 snapshot " << i << (wide ? " wide" : " narrow");
    }
  }
}

// --- Counter semantics ------------------------------------------------------

TEST(InferEngine, SteadyStateAllocCounterSemantics) {
  obs::Counter& steady = obs::counter("infer/steady_state_allocs");
  Rng rng(71);
  fno::Fno model(small2d(), rng);
  infer::InferenceEngine engine(model);
  const std::int64_t before = steady.value();
  engine.plan({1, 3, 16, 16});
  engine.plan({1, 3, 16, 16});  // idempotent
  engine.plan({2, 3, 16, 16});  // explicit replans never count
  EXPECT_EQ(steady.value(), before);
  const TensorF x1 = random_tensor({1, 3, 16, 16}, 72);
  TensorF y;
  engine.forward(x1, y);  // implicit replan (shape differs from last plan)
  EXPECT_EQ(steady.value(), before + 1);
  engine.forward(x1, y);  // planned shape — steady state
  EXPECT_EQ(steady.value(), before + 1);
}

// --- Zero-allocation steady state -------------------------------------------

std::int64_t count_allocs(const std::function<void()>& body) {
  g_allocs.store(0, std::memory_order_relaxed);
  g_track.store(true, std::memory_order_relaxed);
  body();
  g_track.store(false, std::memory_order_relaxed);
  return g_allocs.load(std::memory_order_relaxed);
}

TEST(InferZeroAlloc, ForwardSteadyState) {
  ThreadPool::Scope scope(1);
  Rng rng(81);
  fno::Fno model(small2d(), rng);
  infer::InferenceEngine engine(model);
  engine.plan({1, 3, 16, 16});
  const TensorF x = random_tensor({1, 3, 16, 16}, 82);
  TensorF y;
  engine.forward(x, y);  // warm-up: FFT plans, obs statics, y storage
  const std::int64_t n = count_allocs([&] { engine.forward(x, y); });
  EXPECT_EQ(n, 0) << "forward steady state allocated";
}

TEST(InferZeroAlloc, CompressedForwardSteadyState) {
  // The bf16 serving path must honour the same zero-steady-state-alloc
  // contract as fp32 — widening happens inside preallocated pack reads.
  ThreadPool::Scope scope(1);
  Rng rng(181);
  fno::Fno model(small2d(), rng);
  infer::InferenceEngine engine(model, {util::Precision::kBf16});
  engine.plan({1, 3, 16, 16});
  const TensorF x = random_tensor({1, 3, 16, 16}, 182);
  TensorF y;
  engine.forward(x, y);
  const std::int64_t n = count_allocs([&] { engine.forward(x, y); });
  EXPECT_EQ(n, 0) << "bf16 forward steady state allocated";
}

TEST(InferZeroAlloc, FactorizedForwardSteadyState) {
  ThreadPool::Scope scope(1);
  fno::FnoConfig cfg = small2d();
  cfg.spectral_kind = nn::SpectralKind::kFactorized;
  Rng rng(183);
  fno::Fno model(cfg, rng);
  infer::InferenceEngine engine(model);
  engine.plan({1, 3, 16, 16});
  const TensorF x = random_tensor({1, 3, 16, 16}, 184);
  TensorF y;
  engine.forward(x, y);
  const std::int64_t n = count_allocs([&] { engine.forward(x, y); });
  EXPECT_EQ(n, 0) << "factorized forward steady state allocated";
}

TEST(InferZeroAlloc, ForwardBluesteinSteadyState) {
  ThreadPool::Scope scope(1);
  fno::FnoConfig cfg = small2d();
  cfg.n_modes = {4, 4};
  Rng rng(83);
  fno::Fno model(cfg, rng);
  infer::InferenceEngine engine(model);
  engine.plan({1, 3, 10, 14});
  const TensorF x = random_tensor({1, 3, 10, 14}, 84);
  TensorF y;
  engine.forward(x, y);
  const std::int64_t n = count_allocs([&] { engine.forward(x, y); });
  EXPECT_EQ(n, 0) << "Bluestein forward steady state allocated";
}

TEST(InferZeroAlloc, RolloutSteadyState) {
  ThreadPool::Scope scope(1);
  Rng rng(85);
  fno::Fno model(small2d(), rng);
  infer::InferenceEngine engine(model);
  const TensorF history = random_tensor({3, 16, 16}, 86);
  TensorF out;
  engine.rollout_channels_into(history, 6, out);  // warm-up
  const std::int64_t n =
      count_allocs([&] { engine.rollout_channels_into(history, 6, out); });
  EXPECT_EQ(n, 0) << "rollout steady state allocated";
}

TEST(InferZeroAlloc, PropagatorAdvanceWindow) {
  ThreadPool::Scope scope(1);
  Rng rng(87);
  fno::Fno model(small2d(), rng);
  const analysis::Normalizer norm(0.1, 2.0);
  core::FnoPropagator prop(model, norm, 0.5);
  const core::History history = make_history(4, 16, 16, 88);
  std::vector<core::FieldSnapshot> out;
  prop.advance_into(history, 4, out);  // warm-up: snapshots allocate once
  const std::int64_t n =
      count_allocs([&] { prop.advance_into(history, 4, out); });
  EXPECT_EQ(n, 0) << "hybrid advance window allocated";
}

}  // namespace
}  // namespace turb
