#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "lbm/initializer.hpp"
#include "ns/solver.hpp"
#include "ns/spectral_ops.hpp"
#include "util/rng.hpp"

namespace turb::ns {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Taylor–Green vorticity on the unit box: ω = 2k·U sin(kx)sin(ky), k = 2π.
TensorD taylor_green_vorticity(index_t n, double u0) {
  TensorD w({n, n});
  for (index_t iy = 0; iy < n; ++iy) {
    const double y = kTwoPi * static_cast<double>(iy) / static_cast<double>(n);
    for (index_t ix = 0; ix < n; ++ix) {
      const double x =
          kTwoPi * static_cast<double>(ix) / static_cast<double>(n);
      w(iy, ix) = 2.0 * kTwoPi * u0 * std::sin(x) * std::sin(y);
    }
  }
  return w;
}

double enstrophy(const TensorD& w) {
  return w.squared_norm() / static_cast<double>(w.size());
}

// --- spectral operators -----------------------------------------------------

TEST(SpectralOps, DerivativeOfSineIsCosine) {
  const index_t n = 32;
  TensorD f({n, n});
  for (index_t iy = 0; iy < n; ++iy) {
    for (index_t ix = 0; ix < n; ++ix) {
      f(iy, ix) = std::sin(kTwoPi * 3.0 * static_cast<double>(ix) / n);
    }
  }
  const TensorD fx = derivative_x(f);
  for (index_t iy = 0; iy < n; ++iy) {
    for (index_t ix = 0; ix < n; ++ix) {
      const double expected =
          3.0 * kTwoPi * std::cos(kTwoPi * 3.0 * static_cast<double>(ix) / n);
      ASSERT_NEAR(fx(iy, ix), expected, 1e-9);
    }
  }
}

TEST(SpectralOps, DerivativeYOfPlaneWave) {
  const index_t n = 32;
  TensorD f({n, n});
  for (index_t iy = 0; iy < n; ++iy) {
    for (index_t ix = 0; ix < n; ++ix) {
      f(iy, ix) = std::cos(kTwoPi * 2.0 * static_cast<double>(iy) / n);
    }
  }
  const TensorD fy = derivative_y(f);
  for (index_t iy = 0; iy < n; ++iy) {
    const double expected =
        -2.0 * kTwoPi * std::sin(kTwoPi * 2.0 * static_cast<double>(iy) / n);
    ASSERT_NEAR(fy(iy, 0), expected, 1e-9);
  }
}

TEST(SpectralOps, VorticityVelocityRoundTrip) {
  // ω → u (Biot–Savart) → ω must be the identity for zero-mean ω.
  Rng rng(41);
  const auto field = lbm::random_vortex_velocity(32, 32, 4.0, 1.0, rng);
  const TensorD omega = vorticity_from_velocity(field.u1, field.u2);
  TensorD u1, u2;
  velocity_from_vorticity(omega, u1, u2);
  for (index_t i = 0; i < u1.size(); ++i) {
    ASSERT_NEAR(u1[i], field.u1[i], 1e-9);
    ASSERT_NEAR(u2[i], field.u2[i], 1e-9);
  }
}

TEST(SpectralOps, ReconstructedVelocityIsDivergenceFree) {
  Rng rng(43);
  TensorD omega({32, 32});
  omega.fill_normal(rng, 0.0, 1.0);
  TensorD u1, u2;
  velocity_from_vorticity(omega, u1, u2);
  EXPECT_LT(divergence(u1, u2).max_abs(), 1e-9 * omega.max_abs());
}

TEST(SpectralOps, LerayProjectionKillsDivergence) {
  Rng rng(47);
  TensorD u1({32, 32}), u2({32, 32});
  u1.fill_normal(rng, 0.0, 1.0);
  u2.fill_normal(rng, 0.0, 1.0);
  EXPECT_GT(divergence(u1, u2).max_abs(), 1.0);  // generic field is divergent
  leray_project(u1, u2);
  EXPECT_LT(divergence(u1, u2).max_abs(), 1e-9);
}

TEST(SpectralOps, LerayProjectionIsIdempotent) {
  Rng rng(53);
  TensorD u1({16, 16}), u2({16, 16});
  u1.fill_normal(rng, 0.0, 1.0);
  u2.fill_normal(rng, 0.0, 1.0);
  leray_project(u1, u2);
  TensorD v1 = u1, v2 = u2;
  leray_project(v1, v2);
  for (index_t i = 0; i < u1.size(); ++i) {
    ASSERT_NEAR(v1[i], u1[i], 1e-12);
    ASSERT_NEAR(v2[i], u2[i], 1e-12);
  }
}

TEST(SpectralOps, LerayPreservesSolenoidalFields) {
  Rng rng(59);
  const auto field = lbm::random_vortex_velocity(32, 32, 4.0, 1.0, rng);
  TensorD u1 = field.u1, u2 = field.u2;
  leray_project(u1, u2);
  for (index_t i = 0; i < u1.size(); ++i) {
    ASSERT_NEAR(u1[i], field.u1[i], 1e-10);
  }
}

TEST(SpectralOps, SpectralUpsampleInterpolatesExactly) {
  Rng rng(91);
  const auto field = lbm::random_vortex_velocity(16, 16, 3.0, 1.0, rng);
  const TensorD fine = spectral_upsample(field.u1, 2);
  ASSERT_EQ(fine.shape(), (Shape{32, 32}));
  // Band-limited field: the upsampled field matches at collocation points.
  for (index_t iy = 0; iy < 16; ++iy) {
    for (index_t ix = 0; ix < 16; ++ix) {
      ASSERT_NEAR(fine(2 * iy, 2 * ix), field.u1(iy, ix), 1e-10);
    }
  }
}

TEST(SpectralOps, SpectralUpsampleFactorOneIsIdentity) {
  Rng rng(92);
  TensorD f({8, 8});
  f.fill_normal(rng, 0.0, 1.0);
  const TensorD same = spectral_upsample(f, 1);
  for (index_t i = 0; i < f.size(); ++i) ASSERT_EQ(same[i], f[i]);
}

TEST(SpectralOps, EnergySpectrumSumsToMeanSquare) {
  Rng rng(61);
  const auto field = lbm::random_vortex_velocity(64, 64, 6.0, 1.0, rng);
  const auto spec = energy_spectrum(field.u1, field.u2);
  double total = 0.0;
  for (const double e : spec) total += e;
  const double ms = 0.5 *
                    (field.u1.squared_norm() + field.u2.squared_norm()) /
                    static_cast<double>(field.u1.size());
  EXPECT_NEAR(total, ms, 1e-8 * ms);
}

TEST(SpectralOps, TaylorGreenEnergyInShellOne) {
  const auto field = lbm::taylor_green_velocity(32, 32, 1.0);
  const auto spec = energy_spectrum(field.u1, field.u2);
  double total = 0.0;
  for (const double e : spec) total += e;
  // TG modes are (±1, ±1): shell round(√2) = 1.
  EXPECT_NEAR(spec[1] / total, 1.0, 1e-10);
}

// --- solvers ------------------------------------------------------------------

class NsScheme : public ::testing::TestWithParam<std::string> {};

TEST_P(NsScheme, TaylorGreenViscousDecay) {
  NsConfig cfg;
  cfg.n = 64;
  cfg.viscosity = 1e-3;
  cfg.dt = 2e-4;
  auto solver = make_ns_solver(GetParam(), cfg);
  solver->set_vorticity(taylor_green_vorticity(cfg.n, 1.0));
  const double z0 = enstrophy(solver->vorticity());
  const index_t steps = 500;
  solver->step(steps);
  const double z1 = enstrophy(solver->vorticity());
  // Enstrophy ∝ exp(−4 ν k² t), k = 2π.
  const double t = cfg.dt * static_cast<double>(steps);
  const double expected = z0 * std::exp(-4.0 * cfg.viscosity * kTwoPi * kTwoPi * t);
  const double tol = GetParam() == "spectral" ? 1e-6 : 0.02;
  EXPECT_NEAR(z1 / expected, 1.0, tol);
}

TEST_P(NsScheme, TaylorGreenShapePreserved) {
  // TG is a steady-shape solution: the vorticity field remains proportional
  // to its initial pattern.
  NsConfig cfg;
  cfg.n = 32;
  cfg.viscosity = 1e-3;
  cfg.dt = 2e-4;
  auto solver = make_ns_solver(GetParam(), cfg);
  const TensorD w0 = taylor_green_vorticity(cfg.n, 1.0);
  solver->set_vorticity(w0);
  solver->step(300);
  const TensorD w1 = solver->vorticity();
  // Correlation coefficient with the initial field must stay ≈ 1.
  double dot = 0.0;
  for (index_t i = 0; i < w0.size(); ++i) dot += w0[i] * w1[i];
  const double corr = dot / (w0.norm() * w1.norm());
  EXPECT_NEAR(corr, 1.0, GetParam() == "spectral" ? 1e-9 : 1e-4);
}

TEST_P(NsScheme, EnergyAndEnstrophyDecay) {
  NsConfig cfg;
  cfg.n = 48;
  cfg.viscosity = 5e-4;
  cfg.dt = 2e-4;
  auto solver = make_ns_solver(GetParam(), cfg);
  Rng rng(67);
  const auto field = lbm::random_vortex_velocity(cfg.n, cfg.n, 4.0, 1.0, rng);
  solver->set_velocity(field.u1, field.u2);
  TensorD u1, u2;
  solver->velocity(u1, u2);
  double prev_ke = u1.squared_norm() + u2.squared_norm();
  double prev_z = enstrophy(solver->vorticity());
  for (int block = 0; block < 5; ++block) {
    solver->step(100);
    solver->velocity(u1, u2);
    const double ke = u1.squared_norm() + u2.squared_norm();
    const double z = enstrophy(solver->vorticity());
    EXPECT_LT(ke, prev_ke * 1.0001);
    EXPECT_LT(z, prev_z * 1.0001);
    prev_ke = ke;
    prev_z = z;
  }
}

TEST_P(NsScheme, MeanVorticityConserved) {
  NsConfig cfg;
  cfg.n = 32;
  cfg.viscosity = 1e-3;
  cfg.dt = 5e-4;
  auto solver = make_ns_solver(GetParam(), cfg);
  Rng rng(71);
  const auto field = lbm::random_vortex_velocity(cfg.n, cfg.n, 4.0, 1.0, rng);
  solver->set_velocity(field.u1, field.u2);
  solver->step(200);
  // Periodic domain: ∫ω dA = 0 for velocity-derived vorticity, and stays 0.
  EXPECT_NEAR(solver->vorticity().mean(), 0.0, 1e-10);
}

TEST_P(NsScheme, SetVelocityProjectsDivergentInput) {
  NsConfig cfg;
  cfg.n = 32;
  cfg.viscosity = 1e-3;
  cfg.dt = 5e-4;
  auto solver = make_ns_solver(GetParam(), cfg);
  Rng rng(73);
  TensorD u1({32, 32}), u2({32, 32});
  u1.fill_normal(rng, 0.0, 1.0);
  u2.fill_normal(rng, 0.0, 1.0);
  solver->set_velocity(u1, u2);  // must not throw; projection applied
  TensorD v1, v2;
  solver->velocity(v1, v2);
  EXPECT_LT(divergence(v1, v2).max_abs(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Schemes, NsScheme,
                         ::testing::Values(std::string("spectral"),
                                           std::string("fd")));

TEST(NsSolver, CrossSchemeAgreementShortTime) {
  // Both discretisations approximate the same PDE: after a short smooth
  // evolution they must agree to truncation error.
  NsConfig cfg;
  cfg.n = 64;
  cfg.viscosity = 1e-3;
  cfg.dt = 1e-4;
  SpectralNsSolver spectral(cfg);
  FdNsSolver fd(cfg);
  Rng rng(79);
  const auto field = lbm::random_vortex_velocity(cfg.n, cfg.n, 3.0, 1.0, rng);
  const TensorD w0 = vorticity_from_velocity(field.u1, field.u2);
  spectral.set_vorticity(w0);
  fd.set_vorticity(w0);
  spectral.step(100);
  fd.step(100);
  const TensorD ws = spectral.vorticity();
  const TensorD wf = fd.vorticity();
  double num = 0.0;
  for (index_t i = 0; i < ws.size(); ++i) {
    const double d = ws[i] - wf[i];
    num += d * d;
  }
  const double rel = std::sqrt(num / ws.squared_norm());
  EXPECT_LT(rel, 0.02);
}

TEST(NsSolver, FdConvergesToSpectralUnderRefinement) {
  // The FD error vs the spectral reference must shrink roughly 4× when the
  // grid is refined 2× (2nd-order accuracy).
  const auto run_error = [](index_t n) {
    NsConfig cfg;
    cfg.n = n;
    cfg.viscosity = 2e-3;
    cfg.dt = 5e-5;
    SpectralNsSolver spectral(cfg);
    FdNsSolver fd(cfg);
    // Smooth low-mode IC defined analytically at any resolution.
    TensorD w0({n, n});
    for (index_t iy = 0; iy < n; ++iy) {
      const double y = kTwoPi * static_cast<double>(iy) / n;
      for (index_t ix = 0; ix < n; ++ix) {
        const double x = kTwoPi * static_cast<double>(ix) / n;
        w0(iy, ix) = std::sin(x) * std::sin(y) + 0.5 * std::cos(2.0 * x) -
                     0.3 * std::sin(x + 2.0 * y);
      }
    }
    spectral.set_vorticity(w0);
    fd.set_vorticity(w0);
    spectral.step(200);
    fd.step(200);
    const TensorD ws = spectral.vorticity();
    const TensorD wf = fd.vorticity();
    double num = 0.0;
    for (index_t i = 0; i < ws.size(); ++i) {
      const double d = ws[i] - wf[i];
      num += d * d;
    }
    return std::sqrt(num / ws.squared_norm());
  };
  const double e32 = run_error(32);
  const double e64 = run_error(64);
  EXPECT_LT(e64, e32 / 2.5);  // comfortably better than 1st order
}

TEST(NsSolver, IntegratingFactorExactForPureViscousDecay) {
  // With IF-RK4 the linear (viscous) part is integrated analytically, so a
  // Taylor–Green decay is exact to round-off even at a huge time step.
  NsConfig cfg;
  cfg.n = 32;
  cfg.viscosity = 0.05;
  cfg.dt = 0.05;  // ~200x the explicit-diffusion limit
  cfg.integrating_factor = true;
  SpectralNsSolver solver(cfg);
  const TensorD w0 = taylor_green_vorticity(cfg.n, 1e-8);  // linear regime
  solver.set_vorticity(w0);
  solver.step(20);
  const double decay =
      std::exp(-2.0 * cfg.viscosity * kTwoPi * kTwoPi * solver.time());
  const TensorD w1 = solver.vorticity();
  for (index_t i = 0; i < w0.size(); i += 17) {
    ASSERT_NEAR(w1[i], w0[i] * decay, 1e-12 * std::abs(w0[i]) + 1e-20);
  }
}

TEST(NsSolver, IntegratingFactorMatchesRk4OnTurbulentFlow) {
  NsConfig rk_cfg;
  rk_cfg.n = 48;
  rk_cfg.viscosity = 1e-3;
  rk_cfg.dt = 1e-4;
  NsConfig if_cfg = rk_cfg;
  if_cfg.integrating_factor = true;
  SpectralNsSolver rk(rk_cfg), ifs(if_cfg);
  Rng rng(83);
  const auto field = lbm::random_vortex_velocity(48, 48, 4.0, 1.0, rng);
  const TensorD w0 = vorticity_from_velocity(field.u1, field.u2);
  rk.set_vorticity(w0);
  ifs.set_vorticity(w0);
  rk.step(300);
  ifs.step(300);
  const TensorD wa = rk.vorticity();
  const TensorD wb = ifs.vorticity();
  double num = 0.0;
  for (index_t i = 0; i < wa.size(); ++i) {
    const double d = wa[i] - wb[i];
    num += d * d;
  }
  EXPECT_LT(std::sqrt(num / wa.squared_norm()), 1e-6);
}

TEST(NsSolver, IntegratingFactorStableBeyondExplicitDiffusionLimit) {
  NsConfig cfg;
  cfg.n = 32;
  cfg.viscosity = 0.02;
  // Explicit diffusion limit is dx²/(4ν) ≈ 1.2e-2/… pick dt well above it.
  cfg.dt = 2e-3;
  cfg.integrating_factor = true;
  SpectralNsSolver solver(cfg);
  Rng rng(89);
  const auto field = lbm::random_vortex_velocity(32, 32, 3.0, 0.5, rng);
  solver.set_velocity(field.u1, field.u2);
  solver.step(500);
  const TensorD w = solver.vorticity();
  EXPECT_TRUE(std::isfinite(w.max_abs()));
  EXPECT_LT(w.max_abs(), 1e3);
}

TEST(NsSolver, SuggestDtRespectsCflAndDiffusion) {
  NsConfig cfg;
  cfg.n = 64;
  cfg.viscosity = 1e-3;
  SpectralNsSolver solver(cfg);
  const double dt = solver.suggest_dt(2.0, 0.4);
  EXPECT_LE(dt, 0.4 * (1.0 / 64.0) / 2.0 + 1e-15);
  // Diffusion-limited case.
  NsConfig cfg2;
  cfg2.n = 64;
  cfg2.viscosity = 0.5;
  SpectralNsSolver solver2(cfg2);
  EXPECT_NEAR(solver2.suggest_dt(1e-6), 0.25 / (64.0 * 64.0 * 0.5), 1e-12);
}

TEST(NsSolver, UnknownSchemeRejected) {
  NsConfig cfg;
  EXPECT_THROW(make_ns_solver("upwind", cfg), CheckError);
}

TEST(NsSolver, TimeAccumulates) {
  NsConfig cfg;
  cfg.n = 16;
  cfg.viscosity = 1e-3;
  cfg.dt = 1e-3;
  SpectralNsSolver solver(cfg);
  solver.set_vorticity(taylor_green_vorticity(16, 0.1));
  solver.step(10);
  EXPECT_NEAR(solver.time(), 1e-2, 1e-12);
  solver.set_vorticity(taylor_green_vorticity(16, 0.1));
  EXPECT_EQ(solver.time(), 0.0);  // reset on new state
}

}  // namespace
}  // namespace turb::ns
